.PHONY: all check test bench perf qor report dashboard clean

all:
	dune build @all

# tier-1 verification: full build + every test suite
check:
	dune build && dune runtest

test: check

# regenerate every paper artefact (micro/perf excluded, ~2 min)
bench:
	dune exec bench/main.exe

# evaluation-engine throughput + parallel annealing scaling
# (writes BENCH_perf.json)
perf:
	dune exec bench/main.exe -- perf

# QoR regression gate: append a fresh run ledger (E18, deterministic
# seeds) and diff it against the committed baseline; non-zero exit on
# regression. Regenerate the baseline with:
#   ANALOG_LEDGER=bench/qor_baseline.jsonl dune exec bench/main.exe -- qor
qor:
	dune exec bench/main.exe -- qor
	dune exec bin/analog_place.exe -- report BENCH_ledger.jsonl \
	  --baseline bench/qor_baseline.jsonl --svg-dir qor-svg

# trend report over the local bench ledger (no baseline)
report:
	dune exec bin/analog_place.exe -- report BENCH_ledger.jsonl

# the flight recorder: one self-contained HTML page over the local
# bench ledger, with a live instrumented place-and-route for the
# convergence and congestion panels (writes flight-recorder.html)
dashboard:
	dune exec bin/analog_place.exe -- dashboard BENCH_ledger.jsonl \
	  --out flight-recorder.html --bench miller --engine sp --route

clean:
	dune clean
