.PHONY: all check test bench perf clean

all:
	dune build @all

# tier-1 verification: full build + every test suite
check:
	dune build && dune runtest

test: check

# regenerate every paper artefact (micro/perf excluded, ~2 min)
bench:
	dune exec bench/main.exe

# evaluation-engine throughput + parallel annealing scaling
# (writes BENCH_perf.json)
perf:
	dune exec bench/main.exe -- perf

clean:
	dune clean
