let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '&' -> Buffer.add_string b "&amp;"
    | '<' -> Buffer.add_string b "&lt;"
    | '>' -> Buffer.add_string b "&gt;"
    | '"' -> Buffer.add_string b "&quot;"
    | '\'' -> Buffer.add_string b "&#39;"
    | c -> Buffer.add_char b c
  done;
  Buffer.contents b

let attrs_to_string attrs =
  List.fold_left
    (fun acc (k, v) -> acc ^ Printf.sprintf " %s=\"%s\"" k (escape v))
    "" attrs

let el name attrs children =
  Printf.sprintf "<%s%s>%s</%s>" name (attrs_to_string attrs)
    (String.concat "" children)
    name

let leaf name attrs = Printf.sprintf "<%s%s/>" name (attrs_to_string attrs)
let text = escape

let page ~title ~css body =
  String.concat ""
    [
      "<!DOCTYPE html>\n";
      "<html lang=\"en\"><head><meta charset=\"utf-8\"/>";
      el "title" [] [ text title ];
      el "style" [] [ css ];
      "</head><body>";
      String.concat "" body;
      "</body></html>\n";
    ]

(* ---- well-formedness checker ------------------------------------ *)

(* Elements that never take a closing tag in HTML; the emitters above
   always self-close them, but the checker accepts the bare form too so
   it stays useful on hand-written documents. *)
let void_elements =
  [
    "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link";
    "meta"; "param"; "source"; "track"; "wbr";
  ]

exception Bad of int * string

let check doc =
  let n = String.length doc in
  let pos = ref 0 in
  let stack = ref [] in
  let fail i msg = raise (Bad (i, msg)) in
  let peek i = if i < n then Some doc.[i] else None in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  in
  let is_name c =
    is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '_' || c = ':'
    || c = '.'
  in
  let skip_ws () =
    while !pos < n && is_ws doc.[!pos] do
      incr pos
    done
  in
  let read_name () =
    let start = !pos in
    if !pos >= n || not (is_name_start doc.[!pos]) then
      fail !pos "expected a name";
    while !pos < n && is_name doc.[!pos] do
      incr pos
    done;
    String.lowercase_ascii (String.sub doc start (!pos - start))
  in
  let read_entity start =
    (* [start] points at '&'. *)
    let i = ref (start + 1) in
    if peek !i = Some '#' then incr i;
    let len0 = !i in
    while
      !i < n
      && (let c = doc.[!i] in
          (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9'))
      && !i - start < 12
    do
      incr i
    done;
    if !i = len0 || peek !i <> Some ';' then
      fail start "bare '&' (use &amp;)";
    !i + 1
  in
  let read_quoted () =
    match peek !pos with
    | Some (('"' | '\'') as q) ->
        incr pos;
        while !pos < n && doc.[!pos] <> q && doc.[!pos] <> '<' do
          if doc.[!pos] = '&' then pos := read_entity !pos else incr pos
        done;
        if peek !pos <> Some q then fail !pos "unterminated attribute value";
        incr pos
    | _ -> fail !pos "attribute value must be quoted"
  in
  let read_raw_text name =
    (* After <style> / <script>: raw text until the matching close tag. *)
    let close = "</" ^ name in
    let cl = String.length close in
    let rec find i =
      if i + cl > n then fail !pos ("unterminated <" ^ name ^ ">")
      else if
        String.lowercase_ascii (String.sub doc i cl) = close
      then i
      else find (i + 1)
    in
    let i = find !pos in
    pos := i + cl;
    skip_ws ();
    if peek !pos <> Some '>' then fail !pos ("malformed </" ^ name ^ ">");
    incr pos
  in
  let open_tag () =
    let name = read_name () in
    let rec attrs () =
      skip_ws ();
      match peek !pos with
      | Some '>' ->
          incr pos;
          if
            (not (List.mem name void_elements))
            && name <> "style" && name <> "script"
          then stack := name :: !stack
          else if name = "style" || name = "script" then read_raw_text name
      | Some '/' ->
          incr pos;
          if peek !pos <> Some '>' then fail !pos "expected '>' after '/'";
          incr pos
      | Some c when is_name_start c ->
          let _ = read_name () in
          skip_ws ();
          if peek !pos = Some '=' then (
            incr pos;
            skip_ws ();
            read_quoted ());
          attrs ()
      | Some _ -> fail !pos "malformed attribute"
      | None -> fail !pos "unterminated tag"
    in
    attrs ()
  in
  let close_tag () =
    let name = read_name () in
    skip_ws ();
    if peek !pos <> Some '>' then fail !pos ("malformed </" ^ name ^ ">");
    incr pos;
    match !stack with
    | top :: rest when top = name -> stack := rest
    | top :: _ ->
        fail !pos (Printf.sprintf "</%s> closes <%s>" name top)
    | [] -> fail !pos (Printf.sprintf "</%s> with nothing open" name)
  in
  let comment () =
    let rec find i =
      if i + 3 > n then fail !pos "unterminated comment"
      else if String.sub doc i 3 = "-->" then i + 3
      else find (i + 1)
    in
    pos := find !pos
  in
  let declaration () =
    (* <!DOCTYPE ...> — no '<' allowed inside. *)
    while !pos < n && doc.[!pos] <> '>' do
      if doc.[!pos] = '<' then fail !pos "'<' inside declaration";
      incr pos
    done;
    if !pos >= n then fail !pos "unterminated declaration";
    incr pos
  in
  try
    while !pos < n do
      match doc.[!pos] with
      | '<' ->
          if !pos + 3 < n && String.sub doc !pos 4 = "<!--" then (
            pos := !pos + 4;
            comment ())
          else if peek (!pos + 1) = Some '!' then (
            pos := !pos + 2;
            declaration ())
          else if peek (!pos + 1) = Some '/' then (
            pos := !pos + 2;
            close_tag ())
          else (
            incr pos;
            open_tag ())
      | '&' -> pos := read_entity !pos
      | '>' -> fail !pos "stray '>' in text (use &gt;)"
      | _ -> incr pos
    done;
    match !stack with
    | [] -> Ok ()
    | top :: _ -> Error (Printf.sprintf "unclosed <%s> at end of input" top)
  with Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)
