type heatmap = {
  hm_label : string;
  hm_cols : int;
  hm_rows : int;
  hm_capacity : int array;
  hm_present : int array;
  hm_history : float array;
}

type route_iter = {
  ri_iter : int;
  ri_pres_fac : float;
  ri_overflow : int;
  ri_overused : int;
  ri_ripped : int;
  ri_pops : int;
}

type service_point = {
  sp_requests : int;
  sp_hits : int;
  sp_misses : int;
  sp_evictions : int;
  sp_neg_hits : int;
  sp_infeasible : int;
}

(* Validated categorical slots (fixed order, never cycled), the
   sequential blue ramp for magnitude, and the reserved status red for
   overuse. Text always wears ink tokens, never a series color. *)
let slot = [| "#2a78d6"; "#eb6834"; "#1baf7a"; "#eda100"; "#e87ba4" |]
let bad_color = "#e34948"

let ramp =
  [| "#cde2fb"; "#9ec5f4"; "#6da7ec"; "#3987e5"; "#256abf"; "#184f95";
     "#0d366b" |]

let blocked_color = "#52514e"
let empty_color = "#f0efec"

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

(* ---- small chart builders --------------------------------------- *)

let sparkline ?(w = 150) ?(h = 40) ~color ~label values =
  match values with
  | [] -> Html.el "span" [ ("class", "sub") ] [ Html.text "no data" ]
  | _ ->
      let vs = Array.of_list values in
      let n = Array.length vs in
      let lo = Array.fold_left min vs.(0) vs in
      let hi = Array.fold_left max vs.(0) vs in
      let pad = 5. in
      let fw = float_of_int w and fh = float_of_int h in
      let x i =
        if n = 1 then fw /. 2.
        else pad +. (float_of_int i /. float_of_int (n - 1) *. (fw -. (2. *. pad)))
      in
      let y v =
        if hi = lo then fh /. 2.
        else fh -. pad -. ((v -. lo) /. (hi -. lo) *. (fh -. (2. *. pad)))
      in
      let pts =
        String.concat " "
          (List.mapi (fun i v -> Printf.sprintf "%.1f,%.1f" (x i) (y v)) values)
      in
      let last = vs.(n - 1) in
      let tip =
        Printf.sprintf "%s: min %s, max %s, last %s (%d points)" label
          (fnum lo) (fnum hi) (fnum last) n
      in
      Html.el "svg"
        [
          ("width", string_of_int w);
          ("height", string_of_int h);
          ("viewBox", Printf.sprintf "0 0 %d %d" w h);
          ("role", "img");
          ("aria-label", tip);
        ]
        [
          Html.el "title" [] [ Html.text tip ];
          (if n = 1 then ""
           else
             Html.leaf "polyline"
               [
                 ("points", pts);
                 ("fill", "none");
                 ("stroke", color);
                 ("stroke-width", "2");
                 ("stroke-linejoin", "round");
                 ("stroke-linecap", "round");
               ]);
          Html.leaf "circle"
            [
              ("cx", Printf.sprintf "%.1f" (x (n - 1)));
              ("cy", Printf.sprintf "%.1f" (y last));
              ("r", "3.5");
              ("fill", color);
            ];
        ]

let spark_cell ~color ~label values =
  let last =
    match List.rev values with [] -> "-" | v :: _ -> fnum v
  in
  Html.el "div"
    [ ("class", "spark") ]
    [
      Html.el "div" [ ("class", "k") ] [ Html.text label ];
      sparkline ~color ~label values;
      Html.el "div" [ ("class", "v") ] [ Html.text last ];
    ]

let legend series =
  Html.el "div"
    [ ("class", "legend") ]
    (List.map
       (fun (name, color, _) ->
         Html.el "span" []
           [
             Html.el "span"
               [ ("class", "chip"); ("style", "background:" ^ color) ]
               [];
             Html.text name;
           ])
       series)

(* Multi-series line chart: one y axis, recessive gridlines, legend +
   per-series direct end labels, <title> hover tooltips. [series] is
   [(name, color, (x, y) points)]. *)
let line_chart ?(w = 540) ?(h = 190) ~x_name ~y_name series =
  let series = List.filter (fun (_, _, pts) -> pts <> []) series in
  let all = List.concat_map (fun (_, _, pts) -> pts) series in
  match all with
  | [] -> Html.el "p" [ ("class", "sub") ] [ Html.text "no data" ]
  | (x0, y0) :: _ ->
      let fold f init sel = List.fold_left (fun a p -> f a (sel p)) init all in
      let xmin = fold min x0 fst and xmax = fold max x0 fst in
      let ymin = fold min y0 snd and ymax = fold max y0 snd in
      let fw = float_of_int w and fh = float_of_int h in
      let ml = 10. and mr = 86. and mt = 10. and mb = 20. in
      let px x =
        if xmax = xmin then (ml +. (fw -. mr)) /. 2.
        else ml +. ((x -. xmin) /. (xmax -. xmin) *. (fw -. ml -. mr))
      in
      let py y =
        if ymax = ymin then fh /. 2.
        else fh -. mb -. ((y -. ymin) /. (ymax -. ymin) *. (fh -. mt -. mb))
      in
      let grid =
        List.map
          (fun k ->
            let gy = mt +. (float_of_int k *. (fh -. mt -. mb) /. 2.) in
            Html.leaf "line"
              [
                ("x1", Printf.sprintf "%.1f" ml);
                ("x2", Printf.sprintf "%.1f" (fw -. mr));
                ("y1", Printf.sprintf "%.1f" gy);
                ("y2", Printf.sprintf "%.1f" gy);
                ("stroke", "#f0efec");
                ("stroke-width", "1");
              ])
          [ 0; 1; 2 ]
      in
      let axis_labels =
        [
          Html.el "text"
            [ ("x", Printf.sprintf "%.1f" ml); ("y", Printf.sprintf "%.1f" (mt -. 2.)) ]
            [ Html.text (y_name ^ " " ^ fnum ymax) ];
          Html.el "text"
            [
              ("x", Printf.sprintf "%.1f" ml);
              ("y", Printf.sprintf "%.1f" (fh -. mb +. 12.));
            ]
            [ Html.text (fnum ymin) ];
          Html.el "text"
            [
              ("x", Printf.sprintf "%.1f" (fw -. mr));
              ("y", Printf.sprintf "%.1f" (fh -. 6.));
              ("text-anchor", "end");
            ]
            [ Html.text (x_name ^ " " ^ fnum xmax) ];
        ]
      in
      let lines =
        List.map
          (fun (name, color, pts) ->
            let pstr =
              String.concat " "
                (List.map
                   (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y))
                   pts)
            in
            let lx, ly =
              match List.rev pts with
              | (x, y) :: _ -> (px x, py y)
              | [] -> (0., 0.)
            in
            Html.el "g" []
              [
                Html.el "title" [] [ Html.text name ];
                Html.leaf "polyline"
                  [
                    ("points", pstr);
                    ("fill", "none");
                    ("stroke", color);
                    ("stroke-width", "2");
                    ("stroke-linejoin", "round");
                    ("stroke-linecap", "round");
                  ];
                Html.leaf "circle"
                  [
                    ("cx", Printf.sprintf "%.1f" lx);
                    ("cy", Printf.sprintf "%.1f" ly);
                    ("r", "3");
                    ("fill", color);
                  ];
                Html.el "text"
                  [
                    ("x", Printf.sprintf "%.1f" (lx +. 6.));
                    ("y", Printf.sprintf "%.1f" (ly +. 3.));
                  ]
                  [ Html.text name ];
              ])
          series
      in
      Html.el "div" []
        [
          legend series;
          Html.el "svg"
            [
              ("width", string_of_int w);
              ("height", string_of_int h);
              ("viewBox", Printf.sprintf "0 0 %d %d" w h);
              ("role", "img");
              ("aria-label", y_name ^ " vs " ^ x_name);
            ]
            (grid @ axis_labels @ lines);
        ]

(* ---- congestion heatmap ----------------------------------------- *)

(* Grids can run to hundreds of tracks a side; a rect per gcell would
   dominate the whole document. Two reductions keep the page small
   without losing the congestion story: cells beyond a 120-a-side
   budget are max-pooled into k-by-k blocks (utilization and history
   pool by maximum — a washed-out hotspot would defeat the panel's
   purpose), and untouched cells are not emitted at all; one full-size
   background rect carries the empty color instead. *)
let heatmap_svg ~history hm =
  let raw_cols = max 1 hm.hm_cols and raw_rows = max 1 hm.hm_rows in
  let blk =
    max 1 (max ((raw_cols + 119) / 120) ((raw_rows + 119) / 120))
  in
  let cols = (raw_cols + blk - 1) / blk and rows = (raw_rows + blk - 1) / blk in
  let cs = max 3 (min 14 (560 / cols)) in
  let gap = if cs >= 6 then 2 else 1 in
  let w = cols * cs and h = rows * cs in
  let hmax = Array.fold_left max 0. hm.hm_history in
  let tooltips = cols * rows <= 16384 in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Html.leaf "rect"
       [
         ("x", "0"); ("y", "0");
         ("width", string_of_int w);
         ("height", string_of_int h);
         ("fill", empty_color);
       ]);
  for yy = 0 to rows - 1 do
    for xx = 0 to cols - 1 do
      (* pool the block: history by max; occupancy by the worst
         utilization ratio (keeping that cell's pres/cap for the
         tooltip), blocked only when every pooled cell is blocked *)
      let cap = ref 0 and pres = ref 0 and ratio = ref 0.0 in
      let overused = ref false and all_blocked = ref true in
      let hv = ref 0.0 in
      for dy = 0 to blk - 1 do
        for dx = 0 to blk - 1 do
          let cy = (yy * blk) + dy and cx = (xx * blk) + dx in
          if cy < raw_rows && cx < raw_cols then begin
            let i = (cy * raw_cols) + cx in
            let c = hm.hm_capacity.(i) and p = hm.hm_present.(i) in
            if hm.hm_history.(i) > !hv then hv := hm.hm_history.(i);
            if c > 0 then begin
              all_blocked := false;
              if p > c then overused := true;
              let r = float_of_int p /. float_of_int c in
              if r > !ratio || !cap = 0 then begin
                ratio := r;
                cap := c;
                pres := p
              end
            end
          end
        done
      done;
      let fill, state =
        if history then
          if hmax <= 0. || !hv <= 0. then (empty_color, "history 0")
          else
            let k =
              min 6 (max 0 (int_of_float (!hv /. hmax *. 6.99)))
            in
            (ramp.(k), Printf.sprintf "history %s" (fnum !hv))
        else if !all_blocked then (blocked_color, "blocked")
        else if !overused then
          (bad_color, Printf.sprintf "OVERUSED %d/%d" !pres !cap)
        else if !pres = 0 then (empty_color, Printf.sprintf "free 0/%d" !cap)
        else
          let k = min 6 (max 0 (int_of_float (!ratio *. 6.99))) in
          (ramp.(k), Printf.sprintf "used %d/%d" !pres !cap)
      in
      if fill <> empty_color then begin
        let attrs =
          [
            ("x", string_of_int (xx * cs));
            ("y", string_of_int ((rows - 1 - yy) * cs));
            ("width", string_of_int (cs - gap));
            ("height", string_of_int (cs - gap));
            ("fill", fill);
          ]
        in
        let state =
          if blk = 1 then state
          else Printf.sprintf "%s (%dx%d block)" state blk blk
        in
        if tooltips then
          Buffer.add_string b
            (Html.el "rect" attrs
               [
                 Html.el "title" []
                   [ Html.text (Printf.sprintf "(%d,%d) %s" xx yy state) ];
               ])
        else Buffer.add_string b (Html.leaf "rect" attrs)
      end
    done
  done;
  Html.el "svg"
    [
      ("width", string_of_int w);
      ("height", string_of_int h);
      ("viewBox", Printf.sprintf "0 0 %d %d" w h);
      ("role", "img");
      ("aria-label", hm.hm_label);
    ]
    [ Buffer.contents b ]

let heatmap_legend ~history =
  let chip color txt =
    Html.el "span" []
      [
        Html.el "span" [ ("class", "chip"); ("style", "background:" ^ color) ] [];
        Html.text txt;
      ]
  in
  let ramp_strip =
    Html.el "span" []
      (Array.to_list
         (Array.map
            (fun c ->
              Html.el "span"
                [ ("class", "chip"); ("style", "background:" ^ c) ]
                [])
            ramp)
      @ [ Html.text (if history then " low \xe2\x86\x92 high history" else " low \xe2\x86\x92 full") ])
  in
  Html.el "div"
    [ ("class", "legend") ]
    (if history then [ chip empty_color "zero"; ramp_strip ]
     else
       [
         chip empty_color "free"; ramp_strip; chip blocked_color "blocked";
         chip bad_color "\xe2\x9a\xa0 overused";
       ])

(* ---- panels ------------------------------------------------------ *)

let panel ~id title sub children =
  Html.el "section"
    [ ("class", "panel"); ("id", id) ]
    (Html.el "h2" [] [ Html.text title ]
    :: Html.el "p" [ ("class", "sub") ] [ Html.text sub ]
    :: children)

let tile v k =
  Html.el "div"
    [ ("class", "tile") ]
    [
      Html.el "div" [ ("class", "v") ] [ Html.text v ];
      Html.el "div" [ ("class", "k") ] [ Html.text k ];
    ]

let td ?(num = false) s =
  Html.el "td" (if num then [ ("class", "num") ] else []) [ Html.text s ]

let th ?(num = false) s =
  Html.el "th" (if num then [ ("class", "num") ] else []) [ Html.text s ]

let opt_int = function None -> "-" | Some v -> string_of_int v

let qor_groups entries =
  let keys =
    List.fold_left
      (fun acc e ->
        let k = Regress.key_of e in
        if List.mem k acc then acc else acc @ [ k ])
      [] entries
  in
  List.map
    (fun k ->
      (k, List.filter (fun e -> Regress.key_of e = k) entries))
    keys

let trends_panel entries =
  let groups = qor_groups entries in
  let rows =
    List.map
      (fun (key, es) ->
        let qs = List.map (fun (e : Ledger.entry) -> e.Ledger.qor) es in
        let cost = List.map (fun (q : Qor.t) -> q.Qor.cost) qs in
        let hpwl = List.map (fun (q : Qor.t) -> q.Qor.hpwl) qs in
        let dead = List.map (fun (q : Qor.t) -> q.Qor.dead_space_pct) qs in
        let routed =
          List.filter_map
            (fun (q : Qor.t) ->
              Option.map float_of_int q.Qor.routed_wl)
            qs
        in
        Html.el "div"
          [ ("class", "trend-row") ]
          (Html.el "div"
             [ ("class", "trend-key") ]
             [
               Html.text key;
               Html.el "div"
                 [ ("class", "n") ]
                 [ Html.text (Printf.sprintf "%d runs" (List.length es)) ];
             ]
          :: spark_cell ~color:slot.(0) ~label:"cost" cost
          :: spark_cell ~color:slot.(1) ~label:"hpwl" hpwl
          :: spark_cell ~color:slot.(2) ~label:"dead space %" dead
          ::
          (if routed = [] then []
           else [ spark_cell ~color:slot.(3) ~label:"routed wl" routed ])))
      groups
  in
  let table =
    Html.el "details" []
      [
        Html.el "summary" [] [ Html.text "table view: every ledger entry" ];
        Html.el "table" []
          [
            Html.el "tr" []
              [
                th "configuration"; th "recorded"; th ~num:true "seed";
                th ~num:true "cost"; th ~num:true "hpwl"; th ~num:true "area";
                th ~num:true "dead %"; th ~num:true "violations";
                th ~num:true "routed wl"; th ~num:true "overflow";
              ];
            String.concat ""
              (List.map
                 (fun (e : Ledger.entry) ->
                   let q = e.Ledger.qor in
                   Html.el "tr" []
                     [
                       td (Regress.key_of e); td e.Ledger.generated_at;
                       td ~num:true (string_of_int e.Ledger.seed);
                       td ~num:true (fnum q.Qor.cost);
                       td ~num:true (fnum q.Qor.hpwl);
                       td ~num:true (string_of_int q.Qor.area);
                       td ~num:true (fnum q.Qor.dead_space_pct);
                       td ~num:true (string_of_int (Qor.violation_total q));
                       td ~num:true (opt_int q.Qor.routed_wl);
                       td ~num:true (opt_int q.Qor.route_overflow);
                     ])
                 entries);
          ];
      ]
  in
  panel ~id:"trends" "QoR trends"
    "cost / HPWL / dead-space per configuration, oldest run first"
    (rows @ [ table ])

let convergence_panel samples =
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Convergence.tid) samples)
  in
  let shown = List.filteri (fun i _ -> i < Array.length slot) tids in
  let folded = List.length tids - List.length shown in
  let series_of f =
    List.mapi
      (fun i tid ->
        ( Printf.sprintf "chain %d" tid,
          slot.(i),
          List.filter_map
            (fun s ->
              if s.Convergence.tid = tid then
                Some (float_of_int s.Convergence.round, f s)
              else None)
            samples ))
      shown
  in
  let fold_note =
    if folded = 0 then []
    else
      [
        Html.el "p"
          [ ("class", "sub") ]
          [
            Html.text
              (Printf.sprintf
                 "%d more chains not drawn (first %d shown; table view \
                  has all samples)"
                 folded (List.length shown));
          ];
      ]
  in
  panel ~id:"convergence" "SA convergence"
    "best cost and acceptance per temperature round, one series per chain"
    ([
       line_chart ~x_name:"round" ~y_name:"best cost"
         (series_of (fun s -> s.Convergence.best_cost));
       line_chart ~h:130 ~x_name:"round" ~y_name:"acceptance"
         (series_of (fun s -> s.Convergence.acceptance));
     ]
    @ fold_note)

let moves_panel move_rates =
  let rows =
    List.map
      (fun (cls, acc, rej) ->
        let tot = acc + rej in
        let pct =
          if tot = 0 then 0. else 100. *. float_of_int acc /. float_of_int tot
        in
        Html.el "tr" []
          [
            td cls;
            Html.el "td" []
              [
                Html.el "div"
                  [ ("class", "track") ]
                  [
                    Html.el "div"
                      [
                        ("class", "fill");
                        ("style", Printf.sprintf "width:%.1f%%" pct);
                      ]
                      [];
                  ];
              ];
            td ~num:true
              (Printf.sprintf "%.1f%% (%d/%d)" pct acc tot);
          ])
      move_rates
  in
  panel ~id:"moves" "Move-class accept rates"
    "accepted share of proposed moves, per perturbation class"
    [
      Html.el "table" []
        (Html.el "tr" [] [ th "class"; th "accept rate"; th ~num:true "accepted/proposed" ]
        :: rows);
    ]

let route_panel iters =
  let v f = List.map f iters in
  let last_overflow =
    match List.rev iters with [] -> 0 | it :: _ -> it.ri_overflow
  in
  let table =
    Html.el "details" []
      [
        Html.el "summary" [] [ Html.text "table view: every iteration" ];
        Html.el "table" []
          (Html.el "tr" []
             [
               th ~num:true "iter"; th ~num:true "pres_fac";
               th ~num:true "overflow"; th ~num:true "overused cells";
               th ~num:true "ripped nets"; th ~num:true "heap pops";
             ]
          :: List.map
               (fun it ->
                 Html.el "tr" []
                   [
                     td ~num:true (string_of_int it.ri_iter);
                     td ~num:true (fnum it.ri_pres_fac);
                     td ~num:true (string_of_int it.ri_overflow);
                     td ~num:true (string_of_int it.ri_overused);
                     td ~num:true (string_of_int it.ri_ripped);
                     td ~num:true (string_of_int it.ri_pops);
                   ])
               iters);
      ]
  in
  panel ~id:"route" "Route negotiation"
    (Printf.sprintf
       "PathFinder rip-up-and-reroute across %d iterations; final overflow %d"
       (List.length iters) last_overflow)
    [
      Html.el "div"
        [ ("class", "sparks") ]
        [
          spark_cell ~color:slot.(0) ~label:"overflow"
            (v (fun i -> float_of_int i.ri_overflow));
          spark_cell ~color:slot.(1) ~label:"ripped nets"
            (v (fun i -> float_of_int i.ri_ripped));
          spark_cell ~color:slot.(2) ~label:"heap pops"
            (v (fun i -> float_of_int i.ri_pops));
          spark_cell ~color:slot.(3) ~label:"pres_fac"
            (v (fun i -> i.ri_pres_fac));
        ];
      table;
    ]

let heatmaps_panel maps =
  let one hm =
    Html.el "div"
      [ ("class", "hm") ]
      [
        Html.el "h3" [] [ Html.text hm.hm_label ];
        Html.el "div"
          [ ("class", "hmwrap") ]
          [
            Html.el "div" []
              [
                heatmap_svg ~history:false hm;
                Html.el "div" [ ("class", "cap") ] [ Html.text "occupancy" ];
                heatmap_legend ~history:false;
              ];
            Html.el "div" []
              [
                heatmap_svg ~history:true hm;
                Html.el "div" [ ("class", "cap") ]
                  [ Html.text "negotiation history cost" ];
                heatmap_legend ~history:true;
              ];
          ];
      ]
  in
  panel ~id:"heatmaps" "Route congestion"
    "per-gcell occupancy and accumulated PathFinder history"
    (List.map one maps)

let service_panel points =
  let pts f =
    List.map (fun p -> (float_of_int p.sp_requests, float_of_int (f p))) points
  in
  let series =
    [
      ("hits", slot.(0), pts (fun p -> p.sp_hits));
      ("misses", slot.(1), pts (fun p -> p.sp_misses));
      ("evictions", slot.(2), pts (fun p -> p.sp_evictions));
      ("neg hits", slot.(3), pts (fun p -> p.sp_neg_hits));
      ("infeasible", slot.(4), pts (fun p -> p.sp_infeasible));
    ]
  in
  let last =
    match List.rev points with
    | p :: _ -> p
    | [] ->
        {
          sp_requests = 0; sp_hits = 0; sp_misses = 0; sp_evictions = 0;
          sp_neg_hits = 0; sp_infeasible = 0;
        }
  in
  panel ~id:"service" "Service cache"
    "cumulative cache outcomes over the request stream"
    [
      line_chart ~x_name:"requests" ~y_name:"count" series;
      Html.el "table" []
        [
          Html.el "tr" []
            [
              th ~num:true "requests"; th ~num:true "hits"; th ~num:true "misses";
              th ~num:true "evictions"; th ~num:true "neg hits";
              th ~num:true "infeasible";
            ];
          Html.el "tr" []
            [
              td ~num:true (string_of_int last.sp_requests);
              td ~num:true (string_of_int last.sp_hits);
              td ~num:true (string_of_int last.sp_misses);
              td ~num:true (string_of_int last.sp_evictions);
              td ~num:true (string_of_int last.sp_neg_hits);
              td ~num:true (string_of_int last.sp_infeasible);
            ];
        ];
    ]

let counters_panel sink =
  let counters = Sink.counters sink in
  let hists = Sink.histograms sink in
  let ctable =
    Html.el "table" []
      (Html.el "tr" [] [ th "counter"; th ~num:true "value" ]
      :: List.map
           (fun (name, v) ->
             Html.el "tr" [] [ td name; td ~num:true (string_of_int v) ])
           counters)
  in
  let htable =
    if hists = [] then ""
    else
      Html.el "table" []
        (Html.el "tr" []
           [
             th "histogram"; th ~num:true "count"; th ~num:true "mean";
             th ~num:true "p50"; th ~num:true "p90"; th ~num:true "max";
           ]
        :: List.map
             (fun (name, h) ->
               Html.el "tr" []
                 [
                   td name;
                   td ~num:true (string_of_int (Hist.count h));
                   td ~num:true (fnum (Hist.mean h));
                   td ~num:true (fnum (Hist.quantile h 0.5));
                   td ~num:true (fnum (Hist.quantile h 0.9));
                   td ~num:true (fnum (Hist.max_value h));
                 ])
             hists)
  in
  panel ~id:"counters" "Counters & histograms"
    "raw telemetry snapshot (name-sorted)"
    [ Html.el "div" [ ("class", "hmwrap") ] [ ctable; htable ] ]

(* ---- page -------------------------------------------------------- *)

let css =
  "body{font:14px/1.45 system-ui,-apple-system,'Segoe UI',sans-serif;\
   margin:0;padding:24px;background:#fcfcfb;color:#0b0b0b}\
   h1{font-size:20px;margin:0 0 4px}\
   h2{font-size:15px;margin:0 0 2px}\
   h3{font-size:13px;margin:12px 0 4px}\
   .sub{color:#52514e;margin:0 0 12px;font-size:12px}\
   .panel{background:#ffffff;border:1px solid #e7e6e2;border-radius:8px;\
   padding:16px 18px;margin:16px 0}\
   .tiles{display:flex;gap:12px;flex-wrap:wrap;margin:12px 0}\
   .tile{background:#ffffff;border:1px solid #e7e6e2;border-radius:8px;\
   padding:10px 16px;min-width:110px}\
   .tile .v{font-size:22px;font-weight:600}\
   .tile .k{font-size:11px;color:#52514e}\
   .sparks{display:flex;gap:18px;flex-wrap:wrap;align-items:flex-end}\
   .spark .k{font-size:11px;color:#52514e}\
   .spark .v{font-size:12px}\
   .trend-row{display:flex;gap:18px;align-items:center;\
   border-top:1px solid #f0efec;padding:8px 0;flex-wrap:wrap}\
   .trend-key{min-width:220px;font-size:13px}\
   .trend-key .n{color:#52514e;font-size:11px}\
   table{border-collapse:collapse;font-size:12px}\
   th,td{text-align:left;padding:3px 10px 3px 0;\
   border-bottom:1px solid #f0efec}\
   th{color:#52514e;font-weight:500}\
   td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\
   .legend{display:flex;gap:14px;font-size:12px;color:#52514e;\
   margin:4px 0;flex-wrap:wrap}\
   .chip{display:inline-block;width:10px;height:10px;border-radius:2px;\
   margin-right:4px}\
   .track{background:#f0efec;border-radius:4px;width:220px;height:8px}\
   .fill{background:#2a78d6;border-radius:4px;height:8px}\
   svg text{font:10px system-ui,sans-serif;fill:#52514e}\
   .hmwrap{display:flex;gap:28px;flex-wrap:wrap;align-items:flex-start}\
   .hm .cap{font-size:11px;color:#52514e;margin-top:4px}\
   details{margin-top:10px;font-size:12px}\
   summary{cursor:pointer;color:#52514e}"

let render ?(title = "analog_place flight recorder") ?(entries = [])
    ?(sink = Sink.null) ?(route = []) ?(heatmaps = []) ?(service = []) () =
  let samples = Sink.convergence sink in
  let counters = Sink.counters sink in
  let move_rates =
    match Qor.move_rates_of_counters counters with
    | [] ->
        let rec last_rates = function
          | [] -> []
          | (e : Ledger.entry) :: rest -> (
              match last_rates rest with
              | [] -> e.Ledger.qor.Qor.move_rates
              | r -> r)
        in
        last_rates entries
    | r -> r
  in
  let groups = qor_groups entries in
  let routed_entries =
    List.length
      (List.filter
         (fun (e : Ledger.entry) -> e.Ledger.qor.Qor.routed_wl <> None)
         entries)
  in
  let tiles =
    Html.el "div"
      [ ("class", "tiles") ]
      [
        tile (string_of_int (List.length entries)) "ledger entries";
        tile (string_of_int (List.length groups)) "configurations";
        tile (string_of_int routed_entries) "routed runs";
        tile (string_of_int (List.length samples)) "convergence samples";
      ]
  in
  let panels =
    (if entries = [] then [] else [ trends_panel entries ])
    @ (if samples = [] then [] else [ convergence_panel samples ])
    @ (if move_rates = [] then [] else [ moves_panel move_rates ])
    @ (if route = [] then [] else [ route_panel route ])
    @ (if heatmaps = [] then [] else [ heatmaps_panel heatmaps ])
    @ (if service = [] then [] else [ service_panel service ])
    @ if counters = [] then [] else [ counters_panel sink ]
  in
  let panels =
    if panels = [] then
      [
        Html.el "p"
          [ ("class", "sub") ]
          [ Html.text "no data: pass a ledger, trace or service log" ];
      ]
    else panels
  in
  Html.page ~title ~css
    (Html.el "h1" [] [ Html.text title ]
    :: Html.el "p"
         [ ("class", "sub") ]
         [
           Html.text
             "self-contained flight recorder \xe2\x80\x94 rendered from \
              ledger / trace / service data, no external assets";
         ]
    :: tiles :: panels)
