(** Log-bucketed histograms.

    Fixed geometric buckets (base [2^(1/4)], ~19% wide), so recording
    is an O(1) array increment, merging two histograms is a bucket-wise
    add — associative and commutative, which is what lets per-domain
    histograms be combined in any order — and quantiles read back
    within ~9% relative error. Quantiles delegate to
    {!Prelude.Stats.quantile_weighted} over (bucket representative,
    bucket count) pairs: the one percentile implementation in the
    repository. Observing on {!null} is a no-op costing one branch. *)

type t

val null : t
(** The dead histogram: [observe] on it does nothing. Shared. *)

val make : string -> t
(** A fresh live histogram. Normally obtained via {!Sink.histogram}. *)

val name : t -> string
val live : t -> bool

val observe : t -> float -> unit
(** Record one value. Non-positive values are kept in a dedicated zero
    bucket (they still count towards [count]/[sum]/[min_value]). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** Exact minimum observed (0 when empty). *)

val max_value : t -> float
(** Exact maximum observed (0 when empty). *)

val quantile : t -> float -> float
(** [quantile t q] — linearly interpolated quantile over the bucketed
    distribution; within the bucket resolution of the exact sample
    quantile. 0 when empty. *)

val merge : t -> t -> unit
(** [merge dst src] adds [src]'s distribution into [dst]. Bucket-wise,
    so merging any number of histograms is associative and
    order-independent (tested). No-op when either side is dead. *)
