(** QoR regression detection over ledger entries.

    Runs are grouped by key (label / engine / seed / chain count —
    everything that fixes the deterministic result; worker count is
    excluded because it does not), the baseline group's samples
    are reduced to q50/q90 via {!Prelude.Stats.quantile}, and a
    candidate regresses a metric when it lands above {e both} the
    baseline q90 and q50 scaled by the metric's tolerance — one noisy
    baseline run widens the band instead of tripping the gate.
    Violation counts get no tolerance: any count above the baseline
    maximum regresses.

    Wall time is reported but never gated — it is the one metric that
    varies across machines while cost / HPWL / area are deterministic
    for a fixed seed. *)

type thresholds = {
  cost_pct : float;  (** tolerance on final cost, percent (default 1) *)
  hpwl_pct : float;  (** tolerance on HPWL, percent (default 2) *)
  area_pct : float;  (** tolerance on bounding-box area, percent (default 2) *)
}

val default_thresholds : thresholds

type metric = {
  mname : string;
  baseline_q50 : float;
  baseline_q90 : float;
  candidate : float;
  delta_pct : float;  (** candidate vs baseline q50, percent *)
  regressed : bool;
  gated : bool;  (** false for report-only metrics (wall time) *)
}

type comparison = {
  key : string;  (** "label/engine/seed/cN" *)
  baseline_runs : int;
  metrics : metric list;
  missing_baseline : bool;
}

type verdict = {
  comparisons : comparison list;
  regressions : int;  (** gated metrics that regressed, totalled *)
}

val key_of : Ledger.entry -> string

val compare_entries :
  ?thresholds:thresholds ->
  baseline:Ledger.entry list ->
  candidate:Ledger.entry list ->
  unit ->
  verdict
(** Latest candidate entry per key versus all baseline entries sharing
    that key. Candidate keys absent from the baseline are reported with
    [missing_baseline = true] and gate nothing. *)

val ok : verdict -> bool
(** No gated metric regressed. *)

val to_json : verdict -> Json.t
(** Machine-readable verdict for bots: top-level pass/fail and
    regression count, then one object per comparison with its own
    [pass] flag and the full gated/ungated metric list (candidate,
    baseline q50/q90, delta percent). Infinite deltas are clamped to
    [±1e308] so the document always re-parses. *)

val render : verdict -> string
(** Human-readable report: one block per comparison, one line per
    metric, closed by an [OK] / [REGRESSION] verdict line. *)
