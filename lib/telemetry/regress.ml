(* Regression detection. The gate rule per metric:

     regressed  <=>  candidate > max (q90 baseline,
                                      q50 baseline * (1 + tol/100))

   q50 * tol is the signal ("meaningfully worse than typical"), q90 is
   the noise floor ("but not if the baseline itself ranges that high").
   Violations use plain max with no tolerance: constraint counts are
   small integers and any increase is a real defect. *)

type thresholds = { cost_pct : float; hpwl_pct : float; area_pct : float }

let default_thresholds = { cost_pct = 1.0; hpwl_pct = 2.0; area_pct = 2.0 }

type metric = {
  mname : string;
  baseline_q50 : float;
  baseline_q90 : float;
  candidate : float;
  delta_pct : float;
  regressed : bool;
  gated : bool;
}

type comparison = {
  key : string;
  baseline_runs : int;
  metrics : metric list;
  missing_baseline : bool;
}

type verdict = { comparisons : comparison list; regressions : int }

(* The key is everything that fixes the deterministic result: netlist,
   engine, seed, chain count (multi-start changes the computation —
   worker count does not and is deliberately excluded). *)
let key_of (e : Ledger.entry) =
  Printf.sprintf "%s/%s/%d/c%d" e.Ledger.label e.Ledger.engine e.Ledger.seed
    e.Ledger.chains

let delta_pct ~q50 ~cand =
  if q50 = 0.0 then if cand = 0.0 then 0.0 else Float.infinity
  else (cand -. q50) /. q50 *. 100.0

let tolerance_metric name tol_pct samples cand ~gated =
  let q50 = Prelude.Stats.quantile samples 0.5 in
  let q90 = Prelude.Stats.quantile samples 0.9 in
  let ceiling = Float.max q90 (q50 *. (1.0 +. (tol_pct /. 100.0))) in
  {
    mname = name;
    baseline_q50 = q50;
    baseline_q90 = q90;
    candidate = cand;
    delta_pct = delta_pct ~q50 ~cand;
    regressed = gated && cand > ceiling;
    gated;
  }

let max_metric name samples cand ~gated =
  let mx = List.fold_left Float.max 0.0 samples in
  let q50 = Prelude.Stats.quantile samples 0.5 in
  {
    mname = name;
    baseline_q50 = q50;
    baseline_q90 = mx;
    candidate = cand;
    delta_pct = delta_pct ~q50 ~cand;
    regressed = gated && cand > mx;
    gated;
  }

let metrics_of th (baseline : Ledger.entry list) (cand : Ledger.entry) =
  let pick f = List.map (fun (e : Ledger.entry) -> f e.Ledger.qor) baseline in
  let q = cand.Ledger.qor in
  [
    tolerance_metric "cost" th.cost_pct
      (pick (fun q -> q.Qor.cost))
      q.Qor.cost ~gated:true;
    tolerance_metric "hpwl" th.hpwl_pct
      (pick (fun q -> q.Qor.hpwl))
      q.Qor.hpwl ~gated:true;
    tolerance_metric "area" th.area_pct
      (pick (fun q -> float_of_int q.Qor.area))
      (float_of_int q.Qor.area) ~gated:true;
    max_metric "violations"
      (pick (fun q -> float_of_int (Qor.violation_total q)))
      (float_of_int (Qor.violation_total q))
      ~gated:true;
    tolerance_metric "wall_s" 0.0
      (pick (fun q -> q.Qor.wall_s))
      q.Qor.wall_s ~gated:false;
  ]
  (* routed wirelength gates only when both sides carry it: baselines
     written before the router (or candidates run without --route)
     simply don't grow the metric, keeping old ledgers comparable *)
  @
  match
    ( List.filter_map
        (fun (e : Ledger.entry) ->
          Option.map float_of_int e.Ledger.qor.Qor.routed_wl)
        baseline,
      q.Qor.routed_wl )
  with
  | (_ :: _ as samples), Some cand
    when List.length samples = List.length baseline ->
      [
        tolerance_metric "routed_wl" th.hpwl_pct samples (float_of_int cand)
          ~gated:true;
        max_metric "route_overflow"
          (List.map
             (fun (e : Ledger.entry) ->
               float_of_int
                 (Option.value ~default:0 e.Ledger.qor.Qor.route_overflow))
             baseline)
          (float_of_int (Option.value ~default:0 q.Qor.route_overflow))
          ~gated:true;
      ]
  | _ -> []

let compare_entries ?(thresholds = default_thresholds) ~baseline ~candidate () =
  (* latest candidate per key, in first-appearance order *)
  let latest = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      let k = key_of e in
      if not (Hashtbl.mem latest k) then order := k :: !order;
      Hashtbl.replace latest k e)
    candidate;
  let comparisons =
    List.rev_map
      (fun k ->
        let cand = Hashtbl.find latest k in
        let base = List.filter (fun e -> key_of e = k) baseline in
        if base = [] then
          { key = k; baseline_runs = 0; metrics = []; missing_baseline = true }
        else
          {
            key = k;
            baseline_runs = List.length base;
            metrics = metrics_of thresholds base cand;
            missing_baseline = false;
          })
      !order
  in
  let regressions =
    List.fold_left
      (fun acc c ->
        acc
        + List.length (List.filter (fun m -> m.regressed) c.metrics))
      0 comparisons
  in
  { comparisons; regressions }

let ok v = v.regressions = 0

(* Machine-readable verdict for bots: the same facts render prints,
   as one JSON object. Numbers go through Json.float, so re-parsing
   with Json.parse round-trips (tested); infinite deltas (q50 = 0)
   are clamped to a sentinel since JSON has no infinity literal. *)
let to_json v =
  let num f =
    if Float.is_nan f then Json.float 0.0
    else if f = Float.infinity then Json.float 1e308
    else if f = Float.neg_infinity then Json.float (-1e308)
    else Json.float f
  in
  let metric_json m =
    Json.Obj
      [
        ("name", Json.str m.mname);
        ("gated", Json.bool m.gated);
        ("regressed", Json.bool m.regressed);
        ("candidate", num m.candidate);
        ("baseline_q50", num m.baseline_q50);
        ("baseline_q90", num m.baseline_q90);
        ("delta_pct", num m.delta_pct);
      ]
  in
  let comparison_json c =
    Json.Obj
      [
        ("key", Json.str c.key);
        ("baseline_runs", Json.int c.baseline_runs);
        ("missing_baseline", Json.bool c.missing_baseline);
        ( "pass",
          Json.bool (not (List.exists (fun m -> m.regressed) c.metrics)) );
        ("metrics", Json.Arr (List.map metric_json c.metrics));
      ]
  in
  Json.Obj
    [
      ("verdict", Json.str (if ok v then "ok" else "regression"));
      ("regressions", Json.int v.regressions);
      ("comparisons", Json.Arr (List.map comparison_json v.comparisons));
    ]

let render v =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun c ->
      if c.missing_baseline then
        addf "%s: no baseline runs (candidate recorded, nothing gated)\n" c.key
      else begin
        addf "%s (%d baseline run%s):\n" c.key c.baseline_runs
          (if c.baseline_runs = 1 then "" else "s");
        List.iter
          (fun m ->
            let flag =
              if m.regressed then "REGRESSED"
              else if not m.gated then "info"
              else "ok"
            in
            let delta =
              if Float.is_integer m.delta_pct && Float.abs m.delta_pct < 1e6
              then Printf.sprintf "%+.0f%%" m.delta_pct
              else Printf.sprintf "%+.2f%%" m.delta_pct
            in
            addf "  %-12s %-9s cand=%-14.6g q50=%-14.6g q90=%-14.6g (%s)\n"
              m.mname flag m.candidate m.baseline_q50 m.baseline_q90 delta)
          c.metrics
      end)
    v.comparisons;
  if v.regressions = 0 then addf "verdict: OK (no regressions)\n"
  else
    addf "verdict: REGRESSION (%d gated metric%s regressed)\n" v.regressions
      (if v.regressions = 1 then "" else "s");
  Buffer.contents buf
