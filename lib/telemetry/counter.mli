(** Monotonic counters.

    Handles are resolved once (through {!Sink.counter}) and then
    incremented from hot paths. Operations on {!null} are no-ops
    costing one predictable branch, so instrumentation sites keep
    their handles unconditionally and cost nothing when telemetry is
    off. *)

type t

val null : t
(** The dead counter: [incr]/[add] on it do nothing. Shared. *)

val make : string -> t
(** A fresh live counter at 0. Normally obtained via {!Sink.counter},
    which registers it for export and merge. *)

val name : t -> string

val live : t -> bool
(** [false] exactly for {!null}. *)

val incr : t -> unit

val add : t -> int -> unit

val value : t -> int
