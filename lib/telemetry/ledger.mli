(** Append-only JSONL run ledger.

    One self-describing line per placement run: schema version, netlist
    hash, seed, schedule, worker/chain counts, the run {!Qor.t}, the
    per-chain {!Qor.t}s, the placed rectangles (so a report can redraw
    the layout without re-running the placer), git revision, and an
    ISO-8601 timestamp. The file is plain JSONL — append with a text
    editor, diff with [git], read with any JSON tool.

    Round-trip contract (tested): [read] followed by re-[append]ing
    every entry reproduces the file byte for byte. {!Json}'s
    lexeme-preserving numbers carry the property; this module only has
    to keep field order fixed. *)

val schema_version : int
(** Bumped whenever the line format changes shape. *)

type rect = { cell : string; x : int; y : int; w : int; h : int }
(** One placed module, enough to redraw the floorplan. *)

type entry = {
  schema : int;
  generated_at : string;  (** ISO-8601 UTC, e.g. "2026-08-05T12:00:00Z" *)
  git_rev : string;  (** short hash, or "unknown" outside a checkout *)
  label : string;  (** benchmark / design name *)
  netlist_hash : string;
  engine : string;  (** "seqpair" | "bstar" | ... *)
  seed : int;
  schedule : string;  (** rendered {!Anneal.Schedule.t} *)
  workers : int;
  chains : int;
  qor : Qor.t;
  chain_qors : Qor.t list;
  placement : rect list;
}

val make :
  ?generated_at:string ->
  ?git_rev:string ->
  ?chain_qors:Qor.t list ->
  ?placement:rect list ->
  label:string ->
  netlist_hash:string ->
  engine:string ->
  seed:int ->
  schedule:string ->
  workers:int ->
  chains:int ->
  qor:Qor.t ->
  unit ->
  entry
(** [generated_at] defaults to {!timestamp}[ ()], [git_rev] to
    {!git_rev}[ ()]. *)

val timestamp : unit -> string
(** Current UTC time, ISO-8601 with seconds precision. *)

val git_rev : unit -> string
(** [git rev-parse --short HEAD] of the working directory, or
    ["unknown"] when git is unavailable or this is not a checkout. *)

val to_line : entry -> string
(** One JSON object, no trailing newline. *)

val of_line : string -> (entry, string) result

val append : string -> entry -> (unit, string) result
(** Append one line (plus newline) to the ledger file, creating it if
    missing. Errors are returned, never raised. *)

val read : string -> (entry list, string) result
(** All entries, oldest first. Blank lines are skipped; a malformed
    line fails the whole read with its line number. *)

val last : ?n:int -> string -> (entry list, string) result
(** The last [n] entries (default 1), oldest first. *)

val constraint_sets : entry -> (string * string * int list * int) list
(** The constraint obligations the run was checked against, re-hydrated
    from the run QoR's violation list (which records every checked
    group, satisfied ones at count 0): [(name, kind, members, count)]
    with [kind] one of ["symmetry"], ["proximity"],
    ["common-centroid"] and [count] the violation count the run
    recorded — 0 is a claim of satisfaction, positive a disclosed
    violation. Member indices refer to [placement] in list order — the
    rects are written in cell order. This is what [Analysis.Verify]
    re-audits a ledger record from, independently of the engine that
    wrote it. *)
