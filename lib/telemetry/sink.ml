(* The telemetry sink: one record owning a counter/histogram registry,
   a span ring, and a convergence series.

   Zero-cost-when-off contract: [null] is a shared dead sink; every
   operation first reads [live] and returns immediately when false, so
   an instrumented hot path costs one load + predictable branch per
   site (measured: within noise of the uninstrumented path, see the
   E17 telemetry_overhead row). Handle-returning operations ([counter],
   [histogram], [register_moves]) return the corresponding dead handle,
   whose own operations are single-branch no-ops — hot paths resolve
   handles once and keep them unconditionally.

   Domain discipline: a sink is single-threaded mutable state. For
   parallel annealing, derive one [child] per chain before spawning,
   let each domain write only to its own child, and [absorb] the
   children after the join (see {!Anneal.Parallel}). *)

type t = {
  live : bool;
  tid : int;
  clock : unit -> float;
  epoch : float; (* clock at root-sink creation; children share it *)
  counters : (string, Counter.t) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  tracer : Tracer.t;
  conv : Convergence.t;
  mutable mv : Moves.t;
  mutable qors_rev : Qor.t list;
}

let null =
  {
    live = false;
    tid = 0;
    clock = (fun () -> 0.0);
    epoch = 0.0;
    counters = Hashtbl.create 1;
    hists = Hashtbl.create 1;
    tracer = Tracer.create 1;
    conv = Convergence.create ();
    mv = Moves.null;
    qors_rev = [];
  }

let default_trace_capacity = 8192

let create ?(clock = Unix.gettimeofday) ?(trace_capacity = default_trace_capacity) () =
  {
    live = true;
    tid = 0;
    clock;
    epoch = clock ();
    counters = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    tracer = Tracer.create trace_capacity;
    conv = Convergence.create ();
    mv = Moves.null;
    qors_rev = [];
  }

let live t = t.live
let tid t = t.tid
let epoch t = t.epoch

let child t ~tid =
  if not t.live then null
  else
    {
      t with
      tid;
      counters = Hashtbl.create 16;
      hists = Hashtbl.create 16;
      tracer = Tracer.create (Tracer.capacity t.tracer);
      conv = Convergence.create ();
      mv = Moves.null;
      qors_rev = [];
    }

let counter t name =
  if not t.live then Counter.null
  else
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = Counter.make name in
        Hashtbl.add t.counters name c;
        c

let histogram t name =
  if not t.live then Hist.null
  else
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hist.make name in
        Hashtbl.add t.hists name h;
        h

let now t = if t.live then t.clock () else 0.0
let span_begin = now

let span_end t name start =
  if t.live then
    let stop = t.clock () in
    Tracer.record t.tracer ~name ~ts:start ~dur:(stop -. start) ~tid:t.tid

let lap t name start =
  if t.live then begin
    let stop = t.clock () in
    Tracer.record t.tracer ~name ~ts:start ~dur:(stop -. start) ~tid:t.tid;
    stop
  end
  else 0.0

let time t name f =
  if not t.live then f ()
  else begin
    let t0 = t.clock () in
    let r = f () in
    span_end t name t0;
    r
  end

let register_moves t classes =
  if not t.live then Moves.null
  else begin
    let mk kind cls = counter t ("sa.moves." ^ cls ^ "." ^ kind) in
    let m =
      Moves.make classes
        ~accepts:(Array.map (mk "accept") classes)
        ~rejects:(Array.map (mk "reject") classes)
    in
    t.mv <- m;
    m
  end

let moves t = t.mv

let sample t ~round ~temperature ~acceptance ~best_cost =
  if t.live then
    Convergence.add t.conv
      { Convergence.tid = t.tid; round; ts = t.clock (); temperature; acceptance; best_cost }

let sorted_by_name xs = List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let counters t =
  Hashtbl.fold (fun name c acc -> (name, Counter.value c) :: acc) t.counters []
  |> sorted_by_name

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists [] |> sorted_by_name

let spans t = Tracer.spans t.tracer
let dropped_spans t = Tracer.dropped t.tracer
let convergence t = Convergence.samples t.conv

let record_qor t q = if t.live then t.qors_rev <- q :: t.qors_rev
let qors t = List.rev t.qors_rev

let absorb t c =
  if t.live && c.live then begin
    Hashtbl.iter (fun name src -> Counter.add (counter t name) (Counter.value src)) c.counters;
    Hashtbl.iter (fun name src -> Hist.merge (histogram t name) src) c.hists;
    List.iter
      (fun (s : Tracer.span) ->
        Tracer.record t.tracer ~name:s.Tracer.name ~ts:s.Tracer.ts ~dur:s.Tracer.dur
          ~tid:s.Tracer.tid)
      (Tracer.spans c.tracer);
    Tracer.add_dropped t.tracer (Tracer.dropped c.tracer);
    List.iter (Convergence.add t.conv) (Convergence.samples c.conv);
    List.iter (record_qor t) (qors c)
  end
