(** The flight recorder: one self-contained HTML+SVG dashboard over
    everything the telemetry layer records.

    [render] is a pure function of its inputs — it never reads the
    clock, the environment or the filesystem, so rendering the same
    ledger twice yields byte-identical documents (tested). All markup
    goes through {!Html}; the output embeds its own CSS, references no
    external asset and contains no script.

    Inputs mirror the recording surfaces: ledger entries give the
    per-configuration QoR trend sparklines (grouped by
    {!Regress.key_of}), a live {!Sink} gives SA convergence curves,
    per-move-class accept rates and the counter/histogram tables, the
    router's per-iteration log gives the negotiation panel, a
    {!heatmap} gives the congestion view, and {!service_point}s give
    the cache hit/miss/evict trend. Every input is optional; panels
    without data are omitted. *)

type heatmap = {
  hm_label : string;
  hm_cols : int;
  hm_rows : int;
  hm_capacity : int array;  (** row-major, index [y * cols + x] *)
  hm_present : int array;  (** current per-gcell occupancy *)
  hm_history : float array;  (** accumulated PathFinder history cost *)
}
(** A per-gcell congestion snapshot, shaped like
    [Route.Negotiate.Snapshot.t] but owned by the telemetry layer so
    the dashboard stays below the router in the dependency order. *)

type route_iter = {
  ri_iter : int;
  ri_pres_fac : float;
  ri_overflow : int;  (** total over-capacity usage after the pass *)
  ri_overused : int;  (** number of over-capacity gcells *)
  ri_ripped : int;  (** nets ripped up and rerouted in the pass *)
  ri_pops : int;  (** Dijkstra heap pops spent in the pass *)
}
(** One negotiation iteration, as logged by [Route.Router.route_all]. *)

type service_point = {
  sp_requests : int;
  sp_hits : int;
  sp_misses : int;
  sp_evictions : int;
  sp_neg_hits : int;
  sp_infeasible : int;
}
(** Cumulative service counters after [sp_requests] requests. *)

val render :
  ?title:string ->
  ?entries:Ledger.entry list ->
  ?sink:Sink.t ->
  ?route:route_iter list ->
  ?heatmaps:heatmap list ->
  ?service:service_point list ->
  unit ->
  string
(** The complete document. Self-checks are the caller's business:
    pipe the result through {!Html.check} (the CLI does, and exits
    non-zero on failure). *)
