(** Exporters over a {!Sink}. *)

val chrome_json : Sink.t -> string
(** Chrome trace_event format: a [{"traceEvents":[...]}] document with
    one ["ph":"X"] (complete) event per retained span — [ts]/[dur] in
    microseconds relative to the sink's epoch, [pid] 1, [tid] the span's
    chain id — and one ["ph":"C"] (counter) event named ["convergence"]
    per SA sample carrying temperature / acceptance / best_cost args.
    Counter totals ride in ["otherData"]. Load the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val text : Sink.t -> string
(** Human-readable summary: counters (name-sorted), histograms with
    count/mean/p50/p90/p99/max, per-name span statistics (count, total,
    duration quantiles via {!Prelude.Stats.quantile}), a
    [spans dropped: N] disclosure whenever the ring evicted anything
    (even when no spans survive to summarize), and the final
    convergence sample. Sections with no data are omitted; empty sinks
    yield [""]. *)

val conv_csv : Sink.t -> string
(** Convergence series as CSV with header
    [chain,round,temperature,acceptance,best_cost], sorted by
    (chain, round). *)

val write_file : path:string -> string -> (unit, string) result
(** Write [content] to [path], truncating. I/O failures (unwritable
    directory, permission denied, disk full) come back as
    [Error strerror] instead of a raised [Sys_error], so CLI callers
    can report one clean line and pick an exit code. *)

val check_json : string -> (unit, string) result
(** Syntax-check a complete JSON document (RFC 8259 grammar; does not
    decode escapes or build a tree). The environment has no JSON
    library, and the test suite and CLI both want to assert that
    {!chrome_json} output actually parses. *)
