(* Log-bucketed histogram.

   Bucket i holds values rounded to the nearest power of
   gamma = 2^(1/sub): index(v) = round(sub * log2 v) + offset. With
   sub = 4 a bucket spans ~19% of its value, so any quantile read back
   from the buckets is within ~9% of the exact sample quantile —
   plenty for latency distributions, and the fixed bucket layout makes
   merging two histograms a bucket-wise add (associative and
   commutative, see the merge tests). Non-positive values land in a
   dedicated zero bucket; out-of-range magnitudes clamp to the first
   or last bucket. *)

let sub = 4
let offset = 128 (* bucket 0 represents 2^-32 *)
let nbuckets = 512 (* buckets reach 2^96 *)

type t = {
  name : string;
  live : bool;
  counts : int array;
  mutable zero : int; (* observations <= 0 *)
  mutable total : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let null =
  {
    name = "";
    live = false;
    counts = [||];
    zero = 0;
    total = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let make name =
  {
    name;
    live = true;
    counts = Array.make nbuckets 0;
    zero = 0;
    total = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let name t = t.name
let live t = t.live

let bucket_of v =
  let i = offset + int_of_float (Float.round (float_of_int sub *. Float.log2 v)) in
  if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let repr i = Float.exp2 (float_of_int (i - offset) /. float_of_int sub)

let observe t v =
  if t.live then begin
    (if v <= 0.0 then t.zero <- t.zero + 1
     else
       let i = bucket_of v in
       t.counts.(i) <- t.counts.(i) + 1);
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v
  end

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0.0 else t.minv
let max_value t = if t.total = 0 then 0.0 else t.maxv

let merge dst src =
  if dst.live && src.live then begin
    Array.iteri (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.zero <- dst.zero + src.zero;
    dst.total <- dst.total + src.total;
    dst.sum <- dst.sum +. src.sum;
    if src.minv < dst.minv then dst.minv <- src.minv;
    if src.maxv > dst.maxv then dst.maxv <- src.maxv
  end

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let pts = ref [] in
    if t.zero > 0 then pts := (0.0, t.zero) :: !pts;
    Array.iteri (fun i c -> if c > 0 then pts := (repr i, c) :: !pts) t.counts;
    Prelude.Stats.quantile_weighted !pts q
  end
