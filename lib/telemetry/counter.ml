(* A monotonic counter handle. The null counter is shared and dead:
   every operation on it is a single predictable branch, which is what
   lets instrumented hot paths keep their handles unconditionally. *)

type t = { name : string; live : bool; mutable n : int }

let null = { name = ""; live = false; n = 0 }
let make name = { name; live = true; n = 0 }
let name c = c.name
let live c = c.live
let incr c = if c.live then c.n <- c.n + 1
let add c k = if c.live then c.n <- c.n + k
let value c = c.n
