(* QoR records and their JSON form. Field order in [to_json] is fixed
   and [of_json] tolerates missing optional fields, so the pair gives a
   deterministic byte-level round-trip through Json's lexeme-preserving
   values. *)

type violation = {
  group : string;
  ckind : string;
  count : int;
  members : int list;
}

type t = {
  kind : string;
  cost : float;
  wall_s : float;
  sa_rounds : int;
  evaluated : int;
  area : int;
  width : int;
  height : int;
  hpwl : float;
  term_area : float;
  term_wirelength : float;
  term_aspect : float;
  dead_space_pct : float;
  outline_fit : bool option;
  engine : string option;
  mode : string option;
  routed_wl : int option;
  route_overflow : int option;
  route_failed : int option;
  route_iterations : int option;
  violations : violation list;
  move_rates : (string * int * int) list;
}

let run ?outline_fit ?engine ?mode ?routed_wl ?route_overflow ?route_failed
    ?route_iterations ?(violations = []) ?(move_rates = []) ~cost ~wall_s
    ~sa_rounds ~evaluated ~area ~width ~height ~hpwl ~term_area
    ~term_wirelength ~term_aspect ~dead_space_pct () =
  {
    kind = "run";
    cost;
    wall_s;
    sa_rounds;
    evaluated;
    area;
    width;
    height;
    hpwl;
    term_area;
    term_wirelength;
    term_aspect;
    dead_space_pct;
    outline_fit;
    engine;
    mode;
    routed_wl;
    route_overflow;
    route_failed;
    route_iterations;
    violations;
    move_rates = List.sort compare move_rates;
  }

let chain ?engine ?mode ?(move_rates = []) ~cost ~wall_s ~sa_rounds ~evaluated
    () =
  {
    kind = "chain";
    cost;
    wall_s;
    sa_rounds;
    evaluated;
    area = 0;
    width = 0;
    height = 0;
    hpwl = 0.0;
    term_area = 0.0;
    term_wirelength = 0.0;
    term_aspect = 0.0;
    dead_space_pct = 0.0;
    outline_fit = None;
    engine;
    mode;
    routed_wl = None;
    route_overflow = None;
    route_failed = None;
    route_iterations = None;
    violations = [];
    move_rates = List.sort compare move_rates;
  }

let violation_total t =
  List.fold_left (fun acc v -> acc + v.count) 0 t.violations

let accept_rate t =
  let acc, rej =
    List.fold_left
      (fun (a, r) (_, acc, rej) -> (a + acc, r + rej))
      (0, 0) t.move_rates
  in
  if acc + rej = 0 then 0.0 else float_of_int acc /. float_of_int (acc + rej)

(* "sa.moves.<class>.accept" / ".reject" is the Sink.register_moves
   naming convention; fold a counters snapshot back into per-class
   pairs. *)
let move_rates_of_counters counters =
  let prefix = "sa.moves." in
  let plen = String.length prefix in
  let classify name =
    if String.length name > plen && String.sub name 0 plen = prefix then
      let rest = String.sub name plen (String.length name - plen) in
      match String.rindex_opt rest '.' with
      | Some i -> (
          let cls = String.sub rest 0 i in
          match String.sub rest (i + 1) (String.length rest - i - 1) with
          | "accept" -> Some (cls, `Accept)
          | "reject" -> Some (cls, `Reject)
          | _ -> None)
      | None -> None
    else None
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      match classify name with
      | None -> ()
      | Some (cls, side) ->
          let a, r = try Hashtbl.find tbl cls with Not_found -> (0, 0) in
          Hashtbl.replace tbl cls
            (match side with `Accept -> (a + v, r) | `Reject -> (a, r + v)))
    counters;
  Hashtbl.fold (fun cls (a, r) acc -> (cls, a, r) :: acc) tbl []
  |> List.sort compare

(* ---- JSON ---------------------------------------------------------- *)

let violation_to_json v =
  Json.Obj
    [
      ("group", Json.str v.group);
      ("kind", Json.str v.ckind);
      ("count", Json.int v.count);
      ("members", Json.Arr (List.map Json.int v.members));
    ]

let to_json t =
  let base =
    [
      ("kind", Json.str t.kind);
      ("cost", Json.float t.cost);
      ("wall_s", Json.float t.wall_s);
      ("sa_rounds", Json.int t.sa_rounds);
      ("evaluated", Json.int t.evaluated);
      ("area", Json.int t.area);
      ("width", Json.int t.width);
      ("height", Json.int t.height);
      ("hpwl", Json.float t.hpwl);
      ("term_area", Json.float t.term_area);
      ("term_wirelength", Json.float t.term_wirelength);
      ("term_aspect", Json.float t.term_aspect);
      ("dead_space_pct", Json.float t.dead_space_pct);
    ]
  in
  let outline =
    match t.outline_fit with
    | None -> []
    | Some b -> [ ("outline_fit", Json.bool b) ]
  in
  (* engine/mode are emitted only when present, like outline_fit, so
     records written before they existed re-emit byte-identically. *)
  let opt_str name v =
    match v with None -> [] | Some s -> [ (name, Json.str s) ]
  in
  let tags = opt_str "engine" t.engine @ opt_str "mode" t.mode in
  (* routed QoR, present only when the flow actually routed — ledgers
     written before the router existed re-emit byte-identically *)
  let opt_int name v =
    match v with None -> [] | Some i -> [ (name, Json.int i) ]
  in
  let routed =
    opt_int "routed_wl" t.routed_wl
    @ opt_int "route_overflow" t.route_overflow
    @ opt_int "route_failed" t.route_failed
    @ opt_int "route_iterations" t.route_iterations
  in
  let tail =
    [
      ("violations", Json.Arr (List.map violation_to_json t.violations));
      ( "move_rates",
        Json.Arr
          (List.map
             (fun (cls, a, r) ->
               Json.Obj
                 [
                   ("class", Json.str cls);
                   ("accepted", Json.int a);
                   ("rejected", Json.int r);
                 ])
             t.move_rates) );
    ]
  in
  Json.Obj (base @ outline @ tags @ routed @ tail)

(* of_json: each getter threads an error string so a malformed record
   names the field that broke, not just "parse error". *)
let field conv name j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad value for field %S" name))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let violation_of_json j =
  let* group = field Json.to_str "group" j in
  let* ckind = field Json.to_str "kind" j in
  let* count = field Json.to_int "count" j in
  let* members_js = field Json.to_list "members" j in
  let members = List.filter_map Json.to_int members_js in
  if List.length members <> List.length members_js then
    Error "bad value for field \"members\""
  else Ok { group; ckind; count; members }

let move_rate_of_json j =
  let* cls = field Json.to_str "class" j in
  let* a = field Json.to_int "accepted" j in
  let* r = field Json.to_int "rejected" j in
  Ok (cls, a, r)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_json j =
  let* kind = field Json.to_str "kind" j in
  let* cost = field Json.to_float "cost" j in
  let* wall_s = field Json.to_float "wall_s" j in
  let* sa_rounds = field Json.to_int "sa_rounds" j in
  let* evaluated = field Json.to_int "evaluated" j in
  let* area = field Json.to_int "area" j in
  let* width = field Json.to_int "width" j in
  let* height = field Json.to_int "height" j in
  let* hpwl = field Json.to_float "hpwl" j in
  let* term_area = field Json.to_float "term_area" j in
  let* term_wirelength = field Json.to_float "term_wirelength" j in
  let* term_aspect = field Json.to_float "term_aspect" j in
  let* dead_space_pct = field Json.to_float "dead_space_pct" j in
  let outline_fit =
    match Json.member "outline_fit" j with
    | Some v -> Json.to_bool v
    | None -> None
  in
  let opt_str name =
    match Json.member name j with Some v -> Json.to_str v | None -> None
  in
  let engine = opt_str "engine" in
  let mode = opt_str "mode" in
  let opt_int name =
    match Json.member name j with Some v -> Json.to_int v | None -> None
  in
  let routed_wl = opt_int "routed_wl" in
  let route_overflow = opt_int "route_overflow" in
  let route_failed = opt_int "route_failed" in
  let route_iterations = opt_int "route_iterations" in
  let* violations_js = field Json.to_list "violations" j in
  let* violations = map_result violation_of_json violations_js in
  let* moves_js = field Json.to_list "move_rates" j in
  let* move_rates = map_result move_rate_of_json moves_js in
  Ok
    {
      kind;
      cost;
      wall_s;
      sa_rounds;
      evaluated;
      area;
      width;
      height;
      hpwl;
      term_area;
      term_wirelength;
      term_aspect;
      dead_space_pct;
      outline_fit;
      engine;
      mode;
      routed_wl;
      route_overflow;
      route_failed;
      route_iterations;
      violations;
      move_rates;
    }
