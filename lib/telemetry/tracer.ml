(* Span tracer over a preallocated ring buffer.

   Four parallel arrays, one write cursor: recording a span is four
   stores and an index bump, no allocation. At capacity the ring
   overwrites the oldest span — the newest spans always survive — and
   counts every eviction, so exporters can say how much history was
   shed. *)

type span = { name : string; ts : float; dur : float; tid : int }

type t = {
  cap : int;
  names : string array;
  starts : float array;
  durs : float array;
  tids : int array;
  mutable next : int; (* write cursor *)
  mutable filled : int; (* <= cap *)
  mutable dropped : int;
}

let create cap =
  let cap = max 1 cap in
  {
    cap;
    names = Array.make cap "";
    starts = Array.make cap 0.0;
    durs = Array.make cap 0.0;
    tids = Array.make cap 0;
    next = 0;
    filled = 0;
    dropped = 0;
  }

let record t ~name ~ts ~dur ~tid =
  if t.filled = t.cap then t.dropped <- t.dropped + 1 else t.filled <- t.filled + 1;
  t.names.(t.next) <- name;
  t.starts.(t.next) <- ts;
  t.durs.(t.next) <- dur;
  t.tids.(t.next) <- tid;
  t.next <- (t.next + 1) mod t.cap

let length t = t.filled
let capacity t = t.cap
let dropped t = t.dropped
let add_dropped t k = if k > 0 then t.dropped <- t.dropped + k

let spans t =
  let first = if t.filled = t.cap then t.next else 0 in
  List.init t.filled (fun i ->
      let j = (first + i) mod t.cap in
      { name = t.names.(j); ts = t.starts.(j); dur = t.durs.(j); tid = t.tids.(j) })
