(** Per-move-class accept/reject tallies for the annealing engine.

    The split of responsibilities: the {e problem} knows what kind of
    move it proposed (sequence-pair swap vs rotation flip, tree move
    vs rotation, ...) and calls {!set} from its neighbor/propose
    closure; the {e engine} knows the Metropolis outcome and calls
    {!accept} or {!reject} once per move. The tally is backed by
    counters registered in a {!Sink} (named
    [sa.moves.<class>.accept]/[.reject]), so per-chain tallies merge by
    name when child sinks are absorbed. All operations on {!null} are
    single-branch no-ops. *)

type t

val null : t

val make : string array -> accepts:Counter.t array -> rejects:Counter.t array -> t
(** Normally obtained via {!Sink.register_moves}. *)

val classes : t -> string array

val set : t -> int -> unit
(** Label the move being proposed with a class index (ignored when out
    of range). Draws nothing from any rng, so instrumented problems
    keep their move trajectories bit-identical. *)

val accept : t -> unit
(** Count the last-labelled class as accepted. *)

val reject : t -> unit

val accepted : t -> int -> int
val rejected : t -> int -> int
