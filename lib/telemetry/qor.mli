(** Quality-of-results records.

    The survey evaluates every topological representation by what it
    produces — area, wirelength, satisfied symmetry / proximity /
    centroid constraints (§II–III, Tables 1–2) — and a placement
    service needs the same facts per request. A [Qor.t] is that record
    in machine-comparable form: the cost breakdown (the three
    {!Placer.Cost.compose} terms), geometric quality (dead-space %,
    outline fit), per-constraint-group violation counts, per-move-class
    accept rates, and the run's effort (rounds, evaluations, wall
    time).

    This module owns only the {e data} and its JSON round-trip; it
    depends on nothing above the telemetry layer. Extraction from a
    finished placement lives in [Placer.Qor] (which can see the cost
    function and the constraint checkers); per-chain records are minted
    by {!Anneal.Parallel} via {!chain} and ride through child
    {!Sink}s like every other telemetry stream. *)

type violation = {
  group : string;  (** constraint-group name *)
  ckind : string;  (** "symmetry" | "proximity" | "common-centroid" *)
  count : int;  (** 0 when the group holds *)
  members : int list;  (** module indices, for report-side highlighting *)
}

type t = {
  kind : string;  (** "run" for a whole placement, "chain" for one SA chain *)
  cost : float;  (** final best cost *)
  wall_s : float;
  sa_rounds : int;
  evaluated : int;
  area : int;  (** bounding-box area (0 for chain records) *)
  width : int;
  height : int;
  hpwl : float;
  term_area : float;  (** weighted area term of the cost *)
  term_wirelength : float;
  term_aspect : float;
  dead_space_pct : float;
  outline_fit : bool option;  (** fixed-outline satisfied; [None] = free *)
  engine : string option;
      (** which engine produced this ("sp" | "bstar" | "tcg" | …);
          [None] for records predating portfolio runs *)
  mode : string option;
      (** "deterministic" | "async"; [None] when not a parallel run *)
  routed_wl : int option;
      (** routed wirelength in grid cells; [None] when the flow never
          routed — the field is then omitted from the JSON so ledgers
          predating the router re-emit byte-identically *)
  route_overflow : int option;
      (** residual track over-use after negotiation (0 = legal) *)
  route_failed : int option;  (** nets the router could not connect *)
  route_iterations : int option;
      (** negotiation passes the router spent converging; omitted from
          the JSON when absent like every routed field *)
  violations : violation list;
  move_rates : (string * int * int) list;
      (** (class, accepted, rejected), name-sorted *)
}

val run :
  ?outline_fit:bool ->
  ?engine:string ->
  ?mode:string ->
  ?routed_wl:int ->
  ?route_overflow:int ->
  ?route_failed:int ->
  ?route_iterations:int ->
  ?violations:violation list ->
  ?move_rates:(string * int * int) list ->
  cost:float ->
  wall_s:float ->
  sa_rounds:int ->
  evaluated:int ->
  area:int ->
  width:int ->
  height:int ->
  hpwl:float ->
  term_area:float ->
  term_wirelength:float ->
  term_aspect:float ->
  dead_space_pct:float ->
  unit ->
  t

val chain :
  ?engine:string ->
  ?mode:string ->
  ?move_rates:(string * int * int) list ->
  cost:float ->
  wall_s:float ->
  sa_rounds:int ->
  evaluated:int ->
  unit ->
  t
(** A per-chain record: search effort and best cost only; geometric
    fields are zero (the chain's state was never materialized).
    [engine]/[mode] tag which portfolio entrant and parallel mode
    produced the chain; both are omitted from the JSON when absent, so
    pre-portfolio ledger lines still round-trip byte-identically. *)

val violation_total : t -> int
(** Sum of all violation counts. *)

val accept_rate : t -> float
(** Accepted / (accepted + rejected) over all move classes; 0 when no
    tallies were recorded. *)

val move_rates_of_counters : (string * int) list -> (string * int * int) list
(** Extract per-class (accepted, rejected) pairs from a
    {!Sink.counters} snapshot by parsing the
    [sa.moves.<class>.accept] / [.reject] naming convention
    ({!Sink.register_moves}). Name-sorted. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json q) = Ok q], and re-emitting
    a parsed record is byte-identical (tested). *)
