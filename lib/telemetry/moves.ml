(* Per-move-class accept/reject tally.

   The annealing problem labels each proposed move ([set], called from
   its neighbor/propose closure); the engine, which alone knows the
   Metropolis outcome, calls [accept]/[reject]. Counters are the
   sink's own (registered by {!Sink.register_moves}), so merging child
   sinks aggregates the tallies by class name for free. *)

type t = {
  live : bool;
  classes : string array;
  mutable current : int;
  accepts : Counter.t array;
  rejects : Counter.t array;
}

let null = { live = false; classes = [||]; current = 0; accepts = [||]; rejects = [||] }

let make classes ~accepts ~rejects = { live = true; classes; current = 0; accepts; rejects }

let classes t = t.classes

let set t i = if t.live && i >= 0 && i < Array.length t.classes then t.current <- i

let accept t = if t.live then Counter.incr t.accepts.(t.current)
let reject t = if t.live then Counter.incr t.rejects.(t.current)

let accepted t i = Counter.value t.accepts.(i)
let rejected t i = Counter.value t.rejects.(i)
