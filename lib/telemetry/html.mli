(** Minimal HTML+SVG emission and a hand-rolled well-formedness
    checker.

    The flight-recorder dashboard ({!Dashboard}) must be a single
    self-contained file with no external assets and no HTML-library
    dependency, so this module owns the two halves of that contract:
    string builders that escape everything they interpolate, and
    {!check}, an independent scanner that re-parses a finished document
    and rejects unbalanced tags, unquoted attributes and stray
    [&]/[<] — the same self-audit arrangement as {!Export.check_json}
    for traces and {!Prom.check} for metric text. *)

val escape : string -> string
(** Escape the five HTML metacharacters (ampersand, angle brackets,
    double and single quote) for text nodes and attribute values. *)

val el : string -> (string * string) list -> string list -> string
(** [el name attrs children] — an element with escaped attribute
    values and already-rendered children concatenated in order. Child
    strings are trusted markup; escape text with {!text} first. *)

val leaf : string -> (string * string) list -> string
(** Self-closing element, [<name attr="v"/>]. *)

val text : string -> string
(** An escaped text node. *)

val page : title:string -> css:string -> string list -> string
(** A complete [<!DOCTYPE html>] document: [title] (escaped) in
    [<head>], [css] inlined in a [<style>] block (must not contain
    ["</"]), body children in order. *)

val check : string -> (unit, string) result
(** Well-formedness scan of a finished document: tags balance (void
    elements excepted), attribute values are quoted, text uses
    entities for [&] and contains no bare [<], comments terminate, and
    [<style>]/[<script>] raw text reaches its closing tag. Errors name
    the byte offset. *)
