(** Prometheus text exposition of a sink snapshot.

    [render] turns a {!Sink.t} into the plain-text format every metrics
    scraper understands: counters as [counter] families, histograms as
    [summary] families (quantile-labelled samples plus [_sum]/[_count]),
    and the span ring's drop count as a gauge. Names are prefixed
    [analog_] and sanitized to the legal charset, so
    [sa.moves.seqpair.accept] becomes [analog_sa_moves_seqpair_accept].

    [check] is a hand-rolled validator for the same format — the test
    suite asserts that what we emit actually conforms, the same
    arrangement as {!Export.check_json} for the Chrome trace. *)

val metric_name : string -> string
(** [analog_] + the sink-registry name with every character outside
    [[a-zA-Z0-9_:]] replaced by ['_']. *)

val help : string -> string
(** HELP prose for a raw (dotted) sink-registry name: real text for
    the known [service.*] / [route.*] / [sa.moves.*] families, a
    generic fallback naming the metric otherwise. *)

val render : Sink.t -> string
(** Text exposition: one [# HELP] + [# TYPE] comment pair per family
    followed by its samples, families in name-sorted order, trailing
    newline. Empty sinks render to an empty string. *)

val check : string -> (unit, string) result
(** Validate a text exposition document: every sample line must parse
    (metric name, optional {name="value"} labels, a finite float value)
    and belong to a family declared by a preceding [# TYPE] line
    ([_sum]/[_count]/quantile samples attach to their summary family);
    [# HELP] lines must name a legal metric and carry text.
    Errors carry the offending line number. *)
