(** The telemetry sink: the single handle instrumented code threads
    through the placement pipeline.

    A sink owns a name-keyed registry of {!Counter.t}s and {!Hist.t}s,
    a fixed-capacity span ring ({!Tracer}), and a convergence series
    ({!Convergence}). The {!null} sink is dead: every operation on it
    (and on the dead handles it returns) is a single predictable branch,
    so instrumentation left in hot paths costs nothing measurable when
    telemetry is off — see the [telemetry_overhead] row of the E17
    benchmark.

    Sinks are single-domain mutable state. Parallel code derives one
    {!child} per worker before spawning and {!absorb}s the children
    after the join; counters and histograms merge by name. *)

type t

val null : t
(** The shared dead sink. [live null = false]; all recording operations
    are no-ops; handle lookups return dead handles. *)

val create : ?clock:(unit -> float) -> ?trace_capacity:int -> unit -> t
(** A live sink. [clock] defaults to [Unix.gettimeofday] (seconds);
    [trace_capacity] bounds the span ring (default 8192 spans — the
    ring overwrites oldest-first beyond that, see {!Tracer}). *)

val live : t -> bool
val tid : t -> int

val epoch : t -> float
(** Clock reading at root-sink creation; children share the parent's
    epoch so all span timestamps live on one axis. *)

val child : t -> tid:int -> t
(** A fresh sink tagged [tid] sharing the parent's clock and epoch but
    owning private registries and ring — safe to hand to another
    domain. [child null ~tid] is {!null}. *)

val counter : t -> string -> Counter.t
(** Find-or-create by name. Resolve once at setup; the returned handle
    is branch-cheap to bump on the hot path. On a dead sink returns
    {!Counter.null}. *)

val histogram : t -> string -> Hist.t

val now : t -> float
(** Current clock, or [0.0] when dead. *)

val span_begin : t -> float
(** Alias of {!now}, named for the idiom
    [let t0 = span_begin s in ... ; span_end s "stage" t0]. *)

val span_end : t -> string -> float -> unit
(** [span_end t name start] records a completed span
    [start .. now t]. *)

val lap : t -> string -> float -> float
(** [lap t name start] records the span and returns the stop time —
    for chains of back-to-back stages. Returns [0.0] when dead. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] runs [f] inside a span. When dead, exactly
    [f ()]. *)

val register_moves : t -> string array -> Moves.t
(** Build a per-move-class tally whose counters are registered in this
    sink as [sa.moves.<class>.accept] / [.reject], and remember it so
    the engine can retrieve it with {!moves}. *)

val moves : t -> Moves.t
(** The tally last registered via {!register_moves} ({!Moves.null}
    if none). *)

val sample :
  t -> round:int -> temperature:float -> acceptance:float -> best_cost:float -> unit
(** Append one SA convergence sample (tagged with this sink's tid and
    clock). *)

val counters : t -> (string * int) list
(** Name-sorted snapshot. *)

val histograms : t -> (string * Hist.t) list
(** Name-sorted snapshot. *)

val spans : t -> Tracer.span list
(** Oldest-first surviving spans. *)

val dropped_spans : t -> int
val convergence : t -> Convergence.sample list

val record_qor : t -> Qor.t -> unit
(** Append one QoR record (no-op on a dead sink). Engines record one
    {!Qor.chain} per SA chain; the driver records the final {!Qor.run}
    before writing a {!Ledger} entry. *)

val qors : t -> Qor.t list
(** QoR records in recording order (absorbed children's records follow
    the parent's own, in absorb order). *)

val absorb : t -> t -> unit
(** [absorb parent child] merges the child's counters (by name, summed)
    and histograms (by name, bucket-wise), re-records its spans and
    dropped-count into the parent's ring, and appends its convergence
    samples and QoR records. Call only after the child's domain has
    joined. No-op if either side is dead. *)
