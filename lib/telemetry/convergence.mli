(** Simulated-annealing convergence series: one sample per temperature
    round, recorded through {!Sink.sample} and exported as CSV
    ({!Export.conv_csv}) or as Chrome-trace counter events. *)

type sample = {
  tid : int;  (** chain id (0 = single-chain run, 1.. = parallel) *)
  round : int;
  ts : float;  (** sink clock at the end of the round *)
  temperature : float;  (** temperature the round ran at *)
  acceptance : float;  (** accepted / moves_per_round for the round *)
  best_cost : float;  (** best cost after the round *)
}

type t

val create : unit -> t
val add : t -> sample -> unit
val length : t -> int

val samples : t -> sample list
(** In recording order. *)
