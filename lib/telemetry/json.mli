(** A minimal JSON value tree — parser, canonical emitter, accessors.

    The environment carries no JSON library; {!Export.check_json}
    already hand-rolls a syntax checker, and the QoR run ledger
    ({!Ledger}) additionally needs to {e read} its own records back.
    This module is the shared value layer: numbers are kept as their
    validated source lexemes, so [parse] followed by {!emit} reproduces
    a document emitted by this module byte for byte — the property the
    ledger's deterministic round-trip rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** a validated RFC 8259 number lexeme, emitted verbatim *)
  | Str of string  (** decoded text; escaped canonically on emission *)
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved *)

val int : int -> t
val float : float -> t
(** Canonical float lexeme: integral magnitudes below 1e15 print as
    integers, otherwise the shortest of %.12g/%.15g/%.17g that parses
    back to the same float. NaN emits as 0 and infinities clamp to
    ±1e308 (JSON has no encoding for them). *)

val str : string -> t
val bool : bool -> t

val emit : t -> string
(** Compact single-line document: no insignificant whitespace, object
    fields in listed order, [Num] lexemes verbatim. *)

val parse : string -> (t, string) result
(** Full RFC 8259 parse of one document (no trailing garbage). String
    escapes are decoded ([\uXXXX] to UTF-8, surrogate pairs handled);
    numbers keep their lexeme. *)

val member : string -> t -> t option
(** First binding of the name in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** [Num] lexeme as a float. *)

val to_int : t -> int option
(** [Num] lexeme as an int (must be integral). *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
