(** Span tracing over a preallocated ring buffer.

    Recording is allocation-free (four array stores). When the ring is
    full the {e oldest} span is overwritten — the newest spans always
    survive — and every eviction is counted, so exporters can report
    how much history was shed (tested). *)

type span = {
  name : string;
  ts : float;  (** start time, sink clock units (seconds) *)
  dur : float;  (** duration, same units *)
  tid : int;  (** logical thread: 0 = main, 1.. = chains *)
}

type t

val create : int -> t
(** Ring of the given capacity (clamped to at least 1). *)

val record : t -> name:string -> ts:float -> dur:float -> tid:int -> unit

val spans : t -> span list
(** Retained spans, oldest first. *)

val length : t -> int
val capacity : t -> int

val dropped : t -> int
(** Spans evicted so far. *)

val add_dropped : t -> int -> unit
(** Fold another ring's eviction count in (used when merging child
    sinks). *)
