(* Prometheus text exposition. The format is line-oriented:

     # TYPE analog_sa_moves_seqpair_accept counter
     analog_sa_moves_seqpair_accept 4242
     # TYPE analog_eval_cost summary
     analog_eval_cost{quantile="0.5"} 1.25
     ...
     analog_eval_cost_sum 812.5
     analog_eval_cost_count 650

   [check] re-parses a document line by line and enforces the family
   discipline, so the emitter can't drift out of shape unnoticed. *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let legal c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name raw =
  let buf = Buffer.create (String.length raw + 7) in
  Buffer.add_string buf "analog_";
  String.iter (fun c -> Buffer.add_char buf (if legal c then c else '_')) raw;
  Buffer.contents buf

(* Prometheus values are floats; keep integers as digit runs and
   everything else in shortest round-trip form. *)
let value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

(* HELP text per raw metric name. Known families get real prose; the
   fallback names the raw dotted metric so every family still carries
   a HELP line ([check] validates the shape either way). *)
let help raw =
  let moves_help () =
    let pre = "sa.moves." and plen = 9 in
    if String.length raw > plen && String.sub raw 0 plen = pre then
      let rest = String.sub raw plen (String.length raw - plen) in
      match String.rindex_opt rest '.' with
      | Some i -> (
          let cls = String.sub rest 0 i in
          match String.sub rest (i + 1) (String.length rest - i - 1) with
          | "accept" -> Some ("Accepted " ^ cls ^ " SA moves.")
          | "reject" -> Some ("Rejected " ^ cls ^ " SA moves.")
          | _ -> None)
      | None -> None
    else None
  in
  match raw with
  | "service.requests" -> "Placement requests received."
  | "service.hits" -> "Requests served from the placement cache."
  | "service.misses" -> "Requests that ran a full placement."
  | "service.instantiations" -> "Cached families instantiated for a hit."
  | "service.verify_evictions" ->
      "Cache entries evicted by the verify-on-hit audit."
  | "service.unfit" -> "Requests whose outline no cached family fits."
  | "service.neg_hits" -> "Requests answered by the negative cache."
  | "service.infeasible" -> "Requests proven infeasible."
  | "service.hit_us" -> "Cache-hit service latency in microseconds."
  | "service.miss_us" -> "Cache-miss service latency in microseconds."
  | "service.instantiate_us" ->
      "Family instantiation latency in microseconds."
  | "route.iterations" -> "Negotiation passes run by the router."
  | "route.nets.routed" -> "Nets successfully routed."
  | "route.nets.failed" -> "Nets the router could not connect."
  | "route.ripped" -> "Nets ripped up and rerouted during negotiation."
  | "route.search.pops" -> "Dijkstra heap pops spent searching."
  | "route.overflow" -> "Residual over-capacity usage after negotiation."
  | "route.iter.overflow" -> "Per-iteration total overflow."
  | "route.iter.overused" -> "Per-iteration over-capacity gcell count."
  | "route.iter.ripped" -> "Per-iteration ripped-net count."
  | "route.iter.pops" -> "Per-iteration Dijkstra heap pops."
  | "route.iter.pres_fac" -> "Per-iteration present-sharing factor."
  | _ -> (
      match moves_help () with
      | Some h -> h
      | None -> "Telemetry metric " ^ raw ^ "." )

let render sink =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (raw, v) ->
      let name = metric_name raw in
      buf_addf buf "# HELP %s %s\n" name (help raw);
      buf_addf buf "# TYPE %s counter\n" name;
      buf_addf buf "%s %d\n" name v)
    (Sink.counters sink);
  List.iter
    (fun (raw, h) ->
      let name = metric_name raw in
      buf_addf buf "# HELP %s %s\n" name (help raw);
      buf_addf buf "# TYPE %s summary\n" name;
      List.iter
        (fun q ->
          buf_addf buf "%s{quantile=\"%s\"} %s\n" name q
            (value (Hist.quantile h (float_of_string q))))
        [ "0.5"; "0.9"; "0.99" ];
      buf_addf buf "%s_sum %s\n" name (value (Hist.sum h));
      buf_addf buf "%s_count %d\n" name (Hist.count h))
    (Sink.histograms sink);
  if Sink.dropped_spans sink > 0 then begin
    buf_addf buf
      "# HELP analog_trace_dropped_spans Spans overwritten in the trace \
       ring.\n";
    buf_addf buf "# TYPE analog_trace_dropped_spans gauge\n";
    buf_addf buf "analog_trace_dropped_spans %d\n" (Sink.dropped_spans sink)
  end;
  Buffer.contents buf

(* ---- validator ------------------------------------------------------ *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let split_lines s = String.split_on_char '\n' s

(* Strip a summary-sample suffix so the sample attaches to its declared
   family: analog_foo_sum -> analog_foo when analog_foo is declared. *)
let family_of declared name =
  if Hashtbl.mem declared name then Some name
  else
    let try_suffix suf =
      let ls = String.length suf and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suf then
        let base = String.sub name 0 (ln - ls) in
        if Hashtbl.mem declared base then Some base else None
      else None
    in
    match try_suffix "_sum" with
    | Some _ as r -> r
    | None -> try_suffix "_count"

let check doc =
  let declared = Hashtbl.create 16 in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_name line pos =
    let n = String.length line in
    if !pos >= n || not (is_name_start line.[!pos]) then None
    else begin
      let start = !pos in
      while !pos < n && is_name_char line.[!pos] do
        incr pos
      done;
      Some (String.sub line start (!pos - start))
    end
  in
  let parse_labels line pos =
    (* '{' name '="' ... '"' (',' ...)* '}' — values may contain any
       character except unescaped '"'. *)
    let n = String.length line in
    if !pos < n && line.[!pos] = '{' then begin
      incr pos;
      let ok = ref true and fin = ref false in
      while !ok && not !fin do
        if !pos < n && line.[!pos] = '}' then begin
          incr pos;
          fin := true
        end
        else
          match parse_name line pos with
          | None -> ok := false
          | Some _ ->
              if
                !pos + 1 < n && line.[!pos] = '=' && line.[!pos + 1] = '"'
              then begin
                pos := !pos + 2;
                while
                  !pos < n
                  && (line.[!pos] <> '"' || line.[!pos - 1] = '\\')
                do
                  incr pos
                done;
                if !pos < n then begin
                  incr pos;
                  if !pos < n && line.[!pos] = ',' then incr pos
                end
                else ok := false
              end
              else ok := false
      done;
      !ok && !fin
    end
    else true
  in
  let check_sample lineno line =
    let pos = ref 0 in
    match parse_name line pos with
    | None -> err lineno "expected metric name"
    | Some name ->
        if not (parse_labels line pos) then err lineno "malformed labels"
        else begin
          let n = String.length line in
          if !pos >= n || line.[!pos] <> ' ' then
            err lineno "expected ' ' before value"
          else begin
            let v = String.sub line (!pos + 1) (n - !pos - 1) in
            let v_ok =
              match v with
              | "+Inf" | "-Inf" | "NaN" -> true
              | _ -> float_of_string_opt v <> None
            in
            if not v_ok then err lineno (Printf.sprintf "bad value %S" v)
            else
              match family_of declared name with
              | Some _ -> Ok ()
              | None ->
                  err lineno
                    (Printf.sprintf "sample %S has no preceding # TYPE" name)
          end
        end
  in
  let check_type lineno line =
    (* "# TYPE <name> <type>" *)
    let parts = String.split_on_char ' ' line in
    match parts with
    | [ "#"; "TYPE"; name; ty ] ->
        if name = "" || not (is_name_start name.[0]) then
          err lineno "bad metric name in # TYPE"
        else if not (String.for_all is_name_char name) then
          err lineno "bad metric name in # TYPE"
        else if not (List.mem ty [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ])
        then err lineno (Printf.sprintf "unknown metric type %S" ty)
        else begin
          Hashtbl.replace declared name ();
          Ok ()
        end
    | _ -> err lineno "malformed # TYPE line"
  in
  let check_help lineno line =
    (* "# HELP <name> <text...>" — free text after the name, but the
       name itself must be a legal metric name. *)
    match String.split_on_char ' ' line with
    | "#" :: "HELP" :: name :: _ :: _ ->
        if
          name = ""
          || (not (is_name_start name.[0]))
          || not (String.for_all is_name_char name)
        then err lineno "bad metric name in # HELP"
        else Ok ()
    | _ -> err lineno "malformed # HELP line"
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
        let r =
          if line = "" then Ok ()
          else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then
            check_type lineno line
          else if String.length line >= 6 && String.sub line 0 6 = "# HELP" then
            check_help lineno line
          else if String.length line >= 1 && line.[0] = '#' then Ok ()
          else check_sample lineno line
        in
        (match r with Ok () -> go (lineno + 1) rest | Error _ as e -> e)
  in
  go 1 (split_lines doc)
