(* JSONL run ledger. Field order in [to_line] is the schema; [of_line]
   rebuilds the same record, and Json's verbatim number lexemes make
   read -> re-append byte-identical. *)

let schema_version = 1

type rect = { cell : string; x : int; y : int; w : int; h : int }

type entry = {
  schema : int;
  generated_at : string;
  git_rev : string;
  label : string;
  netlist_hash : string;
  engine : string;
  seed : int;
  schedule : string;
  workers : int;
  chains : int;
  qor : Qor.t;
  chain_qors : Qor.t list;
  placement : rect list;
}

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let make ?generated_at ?git_rev:rev ?(chain_qors = []) ?(placement = []) ~label
    ~netlist_hash ~engine ~seed ~schedule ~workers ~chains ~qor () =
  {
    schema = schema_version;
    generated_at = (match generated_at with Some t -> t | None -> timestamp ());
    git_rev = (match rev with Some r -> r | None -> git_rev ());
    label;
    netlist_hash;
    engine;
    seed;
    schedule;
    workers;
    chains;
    qor;
    chain_qors;
    placement;
  }

(* ---- serialization -------------------------------------------------- *)

let rect_to_json r =
  Json.Obj
    [
      ("cell", Json.str r.cell);
      ("x", Json.int r.x);
      ("y", Json.int r.y);
      ("w", Json.int r.w);
      ("h", Json.int r.h);
    ]

let to_line e =
  Json.emit
    (Json.Obj
       [
         ("schema", Json.int e.schema);
         ("generated_at", Json.str e.generated_at);
         ("git_rev", Json.str e.git_rev);
         ("label", Json.str e.label);
         ("netlist_hash", Json.str e.netlist_hash);
         ("engine", Json.str e.engine);
         ("seed", Json.int e.seed);
         ("schedule", Json.str e.schedule);
         ("workers", Json.int e.workers);
         ("chains", Json.int e.chains);
         ("qor", Qor.to_json e.qor);
         ("chain_qors", Json.Arr (List.map Qor.to_json e.chain_qors));
         ("placement", Json.Arr (List.map rect_to_json e.placement));
       ])

let field conv name j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad value for field %S" name))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let rect_of_json j =
  let* cell = field Json.to_str "cell" j in
  let* x = field Json.to_int "x" j in
  let* y = field Json.to_int "y" j in
  let* w = field Json.to_int "w" j in
  let* h = field Json.to_int "h" j in
  Ok { cell; x; y; w; h }

let of_line line =
  let* j = Json.parse line in
  let* schema = field Json.to_int "schema" j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported ledger schema %d (expected %d)" schema
             schema_version)
  else
    let* generated_at = field Json.to_str "generated_at" j in
    let* git_rev = field Json.to_str "git_rev" j in
    let* label = field Json.to_str "label" j in
    let* netlist_hash = field Json.to_str "netlist_hash" j in
    let* engine = field Json.to_str "engine" j in
    let* seed = field Json.to_int "seed" j in
    let* schedule = field Json.to_str "schedule" j in
    let* workers = field Json.to_int "workers" j in
    let* chains = field Json.to_int "chains" j in
    let* qor_j =
      match Json.member "qor" j with
      | Some v -> Ok v
      | None -> Error "missing field \"qor\""
    in
    let* qor = Qor.of_json qor_j in
    let* chain_js = field Json.to_list "chain_qors" j in
    let* chain_qors = map_result Qor.of_json chain_js in
    let* placement_js = field Json.to_list "placement" j in
    let* placement = map_result rect_of_json placement_js in
    Ok
      {
        schema;
        generated_at;
        git_rev;
        label;
        netlist_hash;
        engine;
        seed;
        schedule;
        workers;
        chains;
        qor;
        chain_qors;
        placement;
      }

(* ---- file I/O ------------------------------------------------------- *)

let append path e =
  match
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  with
  | exception Sys_error msg -> Error msg
  | oc ->
      let r =
        try
          output_string oc (to_line e);
          output_char oc '\n';
          Ok ()
        with Sys_error msg -> Error msg
      in
      (try close_out oc with Sys_error _ -> ());
      r

let read path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
            match of_line line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      let r = go 1 [] in
      close_in ic;
      r

let last ?(n = 1) path =
  match read path with
  | Error _ as e -> e
  | Ok entries ->
      let len = List.length entries in
      if len <= n then Ok entries
      else Ok (List.filteri (fun i _ -> i >= len - n) entries)

(* The run QoR lists every checked constraint group — satisfied ones
   included, count = 0 — so the violation list doubles as the record of
   the run's obligations. An independent verifier re-hydrates them from
   here; member indices refer to the entry's placement rects, which are
   written in cell order. *)
let constraint_sets e =
  List.map
    (fun (v : Qor.violation) ->
      (v.Qor.group, v.Qor.ckind, v.Qor.members, v.Qor.count))
    e.qor.Qor.violations
