(* Per-round SA convergence samples, one growable array per sink.
   Appended once per temperature round — the cold edge of the
   annealing loop — so doubling growth is fine here. *)

type sample = {
  tid : int;
  round : int;
  ts : float;
  temperature : float;
  acceptance : float;
  best_cost : float;
}

type t = { mutable arr : sample array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let add t s =
  if t.len = Array.length t.arr then begin
    let cap = max 64 (2 * Array.length t.arr) in
    let arr = Array.make cap s in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- s;
  t.len <- t.len + 1

let length t = t.len
let samples t = List.init t.len (fun i -> t.arr.(i))
