(* Exporters for a sink's contents: Chrome trace_event JSON (loadable
   in chrome://tracing or Perfetto), a human-readable text summary, and
   a convergence CSV. Also a minimal JSON syntax checker — the
   environment carries no JSON library, and both the test suite and the
   CLI want to assert that the trace we emit actually parses. *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* JSON string escaping per RFC 8259: the two mandatory escapes plus
   control characters. Span names are ASCII identifiers in practice,
   but the exporter must not be able to emit invalid JSON. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> buf_addf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; %.17g round-trips any finite float. *)
let num v =
  if Float.is_nan v || Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" (if Float.is_nan v then 0.0 else v)
  else if Float.abs v = Float.infinity then if v > 0.0 then "1e308" else "-1e308"
  else Printf.sprintf "%.17g" v

let usec epoch t = (t -. epoch) *. 1e6

let chrome_json sink =
  let buf = Buffer.create 4096 in
  let epoch = Sink.epoch sink in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  List.iter
    (fun (s : Tracer.span) ->
      sep ();
      buf_addf buf
        "{\"name\":\"%s\",\"cat\":\"analog_place\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d}"
        (escape s.Tracer.name)
        (num (usec epoch s.Tracer.ts))
        (num (usec epoch s.Tracer.dur))
        s.Tracer.tid)
    (Sink.spans sink);
  List.iter
    (fun (s : Convergence.sample) ->
      sep ();
      buf_addf buf
        "{\"name\":\"convergence\",\"cat\":\"analog_place\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"temperature\":%s,\"acceptance\":%s,\"best_cost\":%s}}"
        (num (usec epoch s.Convergence.ts))
        s.Convergence.tid
        (num s.Convergence.temperature)
        (num s.Convergence.acceptance)
        (num s.Convergence.best_cost))
    (Sink.convergence sink);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  let firstc = ref true in
  List.iter
    (fun (name, v) ->
      if !firstc then firstc := false else Buffer.add_char buf ',';
      buf_addf buf "\"%s\":%d" (escape name) v)
    (Sink.counters sink);
  if Sink.dropped_spans sink > 0 then begin
    if not !firstc then Buffer.add_char buf ',';
    buf_addf buf "\"dropped_spans\":%d" (Sink.dropped_spans sink)
  end;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let conv_csv sink =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "chain,round,temperature,acceptance,best_cost\n";
  let samples =
    List.sort
      (fun (a : Convergence.sample) (b : Convergence.sample) ->
        match compare a.Convergence.tid b.Convergence.tid with
        | 0 -> compare a.Convergence.round b.Convergence.round
        | c -> c)
      (Sink.convergence sink)
  in
  List.iter
    (fun (s : Convergence.sample) ->
      buf_addf buf "%d,%d,%.9g,%.6f,%.9g\n" s.Convergence.tid s.Convergence.round
        s.Convergence.temperature s.Convergence.acceptance s.Convergence.best_cost)
    samples;
  Buffer.contents buf

let text sink =
  let buf = Buffer.create 2048 in
  let counters = Sink.counters sink in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter (fun (name, v) -> buf_addf buf "  %-40s %d\n" name v) counters
  end;
  let hists = Sink.histograms sink in
  if hists <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, h) ->
        buf_addf buf "  %-40s n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n" name
          (Hist.count h) (Hist.mean h) (Hist.quantile h 0.5) (Hist.quantile h 0.9)
          (Hist.quantile h 0.99) (Hist.max_value h))
      hists
  end;
  let spans = Sink.spans sink in
  if spans <> [] then begin
    (* Aggregate the ring per span name: count, total, p50/p90/p99 of
       duration via the shared quantile helper. *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Tracer.span) ->
        let durs = try Hashtbl.find tbl s.Tracer.name with Not_found -> [] in
        Hashtbl.replace tbl s.Tracer.name (s.Tracer.dur :: durs))
      spans;
    let rows =
      Hashtbl.fold (fun name durs acc -> (name, durs) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Buffer.add_string buf "spans:\n";
    List.iter
      (fun (name, durs) ->
        let n = List.length durs in
        let total = List.fold_left ( +. ) 0.0 durs in
        let q p = Prelude.Stats.quantile durs p *. 1e6 in
        buf_addf buf
          "  %-40s n=%d total=%.3fms p50=%.1fus p90=%.1fus p99=%.1fus\n" name n
          (total *. 1e3) (q 0.5) (q 0.9) (q 0.99))
      rows
  end;
  (* Outside the spans-section guard: a ring that overflowed and was
     then drained (or absorbed into a parent whose own ring also
     overflowed) must still disclose the loss, or the statistics above
     silently describe a truncated sample. *)
  if Sink.dropped_spans sink > 0 then
    buf_addf buf
      "spans dropped: %d (ring capacity exceeded; oldest spans evicted, statistics cover survivors only)\n"
      (Sink.dropped_spans sink);
  let conv = Sink.convergence sink in
  if conv <> [] then begin
    let n = List.length conv in
    let last = List.nth conv (n - 1) in
    buf_addf buf "convergence: %d samples, final best_cost=%.6g (chain %d, round %d)\n" n
      last.Convergence.best_cost last.Convergence.tid last.Convergence.round
  end;
  Buffer.contents buf

(* --- safe file writing ------------------------------------------------ *)

(* The CLI writes traces/CSVs/SVGs to user-supplied paths; [open_out]
   raises [Sys_error] with a raw strerror. Return the message instead
   so callers can print one clean line and choose an exit code. *)
let write_file ~path content =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      let r =
        try
          output_string oc content;
          Ok ()
        with Sys_error msg -> Error msg
      in
      (try close_out oc with Sys_error _ -> ());
      r

(* --- minimal JSON syntax checker ------------------------------------- *)

exception Bad of string

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let is_hex c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when is_hex c -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let digits () =
      let seen = ref false in
      while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' -> advance (); digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let parse_lit lit =
    String.iter
      (fun c ->
        match peek () with
        | Some x when x = c -> advance ()
        | _ -> fail (Printf.sprintf "expected %s" lit))
      lit
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> parse_string ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); fin := true
            | _ -> fail "expected ',' or '}'"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); fin := true
            | _ -> fail "expected ',' or ']'"
          done
        end
    | Some 't' -> parse_lit "true"
    | Some 'f' -> parse_lit "false"
    | Some 'n' -> parse_lit "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    parse_value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok ()
  with Bad msg -> Error msg
