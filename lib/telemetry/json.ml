(* Minimal JSON values. Numbers are stored as their source lexemes and
   emitted verbatim, which is what makes write -> read -> re-write of a
   ledger byte-identical: the reader never reformats a number, and the
   emitters below are the only producers of lexemes in the first
   place. *)

type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (string_of_int i)

(* Shortest decimal representation that parses back to the same float;
   deterministic, so re-emitting a parsed value reproduces the lexeme. *)
let float_lexeme v =
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s
    else
      let s = Printf.sprintf "%.15g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v

let float v = Num (float_lexeme v)
let str s = Str s
let bool b = Bool b

(* ---- emission ------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let emit v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num lexeme -> Buffer.add_string buf lexeme
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (name, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf name;
            Buffer.add_string buf "\":";
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing ------------------------------------------------------- *)

exception Bad of string

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      (match peek () with
      | Some c -> v := (!v lsl 4) lor hex_digit c
      | None -> fail "bad \\u escape");
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          fin := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: a low surrogate must follow *)
                if
                  !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  advance ();
                  advance ();
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail "bad surrogate pair"
                  else
                    utf8_add buf
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else fail "lone high surrogate"
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then fail "lone low surrogate"
              else utf8_add buf cp
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c
    done;
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let seen = ref false in
      while
        match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false
      do
        seen := true;
        advance ()
      done;
      if not !seen then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    Num (String.sub s start (!pos - start))
  in
  let parse_lit lit v =
    String.iter
      (fun c ->
        match peek () with
        | Some x when x = c -> advance ()
        | _ -> fail (Printf.sprintf "expected %s" lit))
      lit;
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let fin = ref false in
          while not !fin do
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (name, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                fin := true
            | _ -> fail "expected ',' or '}'"
          done;
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let fin = ref false in
          while not !fin do
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                fin := true
            | _ -> fail "expected ',' or ']'"
          done;
          Arr (List.rev !items)
        end
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

(* ---- accessors ----------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function Num lexeme -> float_of_string_opt lexeme | _ -> None

let to_int = function
  | Num lexeme -> (
      match int_of_string_opt lexeme with
      | Some i -> Some i
      | None -> (
          (* the canonical emitters write integral floats as plain
             digit runs, so this branch only fires on foreign input *)
          match float_of_string_opt lexeme with
          | Some f when Float.is_integer f -> Some (int_of_float f)
          | _ -> None))
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
