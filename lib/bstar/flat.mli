(** Flat-array B*-trees: the annealing-side twin of {!Tree}.

    One tree over cells [0..n-1] stored as dense int arrays (nodes are
    indices, [-1] marks an absent link, the root carries the free
    parent slot). The node→cell labeling and its inverse are stored
    separately, so the two classic B*-tree structural moves are O(1):
    swapping two cells relabels without touching the structure, and
    relocating a leaf is constant-time pointer surgery over the
    arrays, helped by a maintained leaf set for O(1) uniform leaf
    selection. Every perturbation returns an {!undo} token; applying
    {!undo} reverts it exactly, so a rejected annealing move costs
    O(1) instead of a tree copy.

    Packing ({!pack_into}) writes coordinates straight into caller
    arrays through a mutable {!Geometry.Contour.scratch} — the same
    drops in the same pre-order as [Tree.pack], hence bit-identical
    coordinates (tested) with zero allocation.

    A flat tree is single-threaded mutable state: give each parallel
    annealing chain its own (see {!Anneal.Parallel}). *)

type t

type side = L | R

type undo =
  | U_nothing
  | U_swap of int * int
  | U_move of {
      leaf : int;
      src : int;
      src_side : side;
      dst : int;
      dst_side : side;
    }

val of_tree : Tree.t -> t
(** Pre-order node numbering. Raises [Invalid_argument] unless the
    tree's cells are exactly [0..size-1], each once. *)

val to_tree : t -> Tree.t

val size : t -> int

val copy : t -> t
(** Deep copy sharing no mutable state. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s tree. Raises [Invalid_argument] on a
    size mismatch. *)

val equal : t -> t -> bool
(** Exact structural equality, node numbering included. *)

(** {2 Structural moves} *)

val swap_cells : t -> int -> int -> undo
(** Exchange the cells held by two nodes — O(1), structure untouched. *)

val move_leaf : t -> leaf:int -> dst:int -> dst_side:side -> undo
(** Detach leaf node [leaf] and re-attach it as the [dst_side] child
    of node [dst] — O(1). Raises [Invalid_argument] when [leaf] is not
    a leaf, is the root, equals [dst], or the slot is occupied. *)

val perturb : Prelude.Rng.t -> t -> undo
(** A uniform choice of cell swap or leaf relocation (the target
    (node, side) slot drawn uniformly by rejection — at least half of
    all slots are free, so this terminates in O(1) expected draws).
    [U_nothing] on single-node trees. *)

val undo : t -> undo -> unit
(** Revert the move that produced the token, in O(1). Only valid
    immediately: tokens do not compose across later moves. *)

(** {2 Packing} *)

val pack_into :
  ?tally:Telemetry.Counter.t ->
  t ->
  Geometry.Contour.scratch ->
  w:int array ->
  h:int array ->
  x:int array ->
  y:int array ->
  unit
(** Contour-pack the tree: per-cell dimensions are read from [w]/[h]
    and the packed origin of each cell written to [x]/[y] (all indexed
    by cell). Clears and reuses [contour]; allocates nothing. [tally]
    (default {!Telemetry.Counter.null}, one dead branch) is bumped once
    per pack — {!Placer.Eval} passes its [bstar.packs] counter. *)

(** {2 Introspection} (for invariant checking and tests) *)

val root : t -> int
val cell_at : t -> int -> int
val node_of : t -> int -> int
val left_of : t -> int -> int
val right_of : t -> int -> int
val parent_of : t -> int -> int
(** Node accessors; [-1] encodes "none". *)

val is_leaf : t -> int -> bool
val leaf_count : t -> int
val leaf_nodes : t -> int list

val pp : Format.formatter -> t -> unit
