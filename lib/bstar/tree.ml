open Geometry

type t = { cell : int; left : t option; right : t option }

let leaf cell = { cell; left = None; right = None }

let row = function
  | [] -> invalid_arg "Tree.row: empty"
  | first :: rest ->
      let rec build c = function
        | [] -> leaf c
        | next :: more -> { cell = c; left = Some (build next more); right = None }
      in
      build first rest

let column = function
  | [] -> invalid_arg "Tree.column: empty"
  | first :: rest ->
      let rec build c = function
        | [] -> leaf c
        | next :: more -> { cell = c; left = None; right = Some (build next more) }
      in
      build first rest

(* Random shape: root takes the first cell, the rest split randomly
   between the subtrees. Randomizing the cell order first makes the
   root uniform as well. *)
let random rng cells =
  if cells = [] then invalid_arg "Tree.random: empty";
  let arr = Array.of_list cells in
  Prelude.Rng.shuffle rng arr;
  let rec build lo hi =
    (* cells arr.(lo..hi-1), non-empty *)
    let c = arr.(lo) in
    let rest = hi - lo - 1 in
    if rest = 0 then leaf c
    else
      let split = Prelude.Rng.int rng (rest + 1) in
      let left = if split > 0 then Some (build (lo + 1) (lo + 1 + split)) else None in
      let right = if rest - split > 0 then Some (build (lo + 1 + split) hi) else None in
      { cell = c; left; right }
  in
  build 0 (Array.length arr)

(* Pre-order, with an accumulator: the right subtree is consed first so
   a single [List.rev] restores the order. O(n), no appends. *)
let cells t =
  let rec go acc t =
    let acc = t.cell :: acc in
    let acc = match t.left with Some l -> go acc l | None -> acc in
    match t.right with Some r -> go acc r | None -> acc
  in
  List.rev (go [] t)

let rec size t =
  1
  + (match t.left with Some l -> size l | None -> 0)
  + (match t.right with Some r -> size r | None -> 0)

let rec mem t c =
  t.cell = c
  || (match t.left with Some l -> mem l c | None -> false)
  || (match t.right with Some r -> mem r c | None -> false)

let nth_cell t i =
  (* i-th cell of [cells t] without materializing the list *)
  let k = ref i in
  let rec go t =
    if !k = 0 then Some t.cell
    else begin
      decr k;
      let l = match t.left with Some l -> go l | None -> None in
      match l with
      | Some _ -> l
      | None -> ( match t.right with Some r -> go r | None -> None)
    end
  in
  match go t with
  | Some c -> c
  | None -> invalid_arg "Tree.nth_cell: out of range"

let rec map_cells f t =
  {
    cell = f t.cell;
    left = Option.map (map_cells f) t.left;
    right = Option.map (map_cells f) t.right;
  }

let pack_rects t dims =
  let out = ref [] in
  let contour = ref Contour.empty in
  let rec go node x =
    let w, h = dims node.cell in
    let y, c' = Contour.drop !contour ~x ~w ~h in
    contour := c';
    out := (node.cell, Rect.make ~x ~y ~w ~h) :: !out;
    Option.iter (fun l -> go l (x + w)) node.left;
    Option.iter (fun r -> go r x) node.right
  in
  go t 0;
  List.rev !out

let pack t dims =
  List.map
    (fun (cell, rect) -> { Transform.cell; rect; orient = Orientation.R0 })
    (pack_rects t dims)

(* [pack_rects] over a reusable contour scratch, writing origins
   straight into per-cell arrays: same traversal, same drops, identical
   coordinates (tested) — and nothing allocated. *)
let pack_into t contour ~w ~h ~x ~y =
  Contour.clear contour;
  let rec go node cx =
    let c = node.cell in
    x.(c) <- cx;
    y.(c) <- Contour.drop_into contour ~x:cx ~w:w.(c) ~h:h.(c);
    Option.iter (fun l -> go l (cx + w.(c))) node.left;
    Option.iter (fun r -> go r cx) node.right
  in
  go t 0

let rec swap_cells t a b =
  let cell = if t.cell = a then b else if t.cell = b then a else t.cell in
  {
    cell;
    left = Option.map (fun l -> swap_cells l a b) t.left;
    right = Option.map (fun r -> swap_cells r a b) t.right;
  }

(* Splice out a node: promote the left child; its own rightmost
   right-descendant adopts the removed node's right subtree. With no
   left child the right child is promoted directly. *)
let rec attach_right t sub =
  match t.right with
  | None -> { t with right = Some sub }
  | Some r -> { t with right = Some (attach_right r sub) }

let splice node =
  match (node.left, node.right) with
  | None, None -> None
  | Some l, None -> Some l
  | None, Some r -> Some r
  | Some l, Some r -> Some (attach_right l r)

(* One traversal: each subtree reports whether it held the target, so no
   per-level [mem] rescans. Untouched subtrees are shared, not rebuilt. *)
let delete t target =
  let rec go t =
    if t.cell = target then (splice t, true)
    else
      match t.left with
      | Some l -> (
          let l', found = go l in
          if found then (Some { t with left = l' }, true) else go_right t)
      | None -> go_right t
  and go_right t =
    match t.right with
    | Some r ->
        let r', found = go r in
        if found then (Some { t with right = r' }, true) else (Some t, false)
    | None -> (Some t, false)
  in
  fst (go t)

let rec insert_at t ~cell ~target ~side =
  if t.cell = target then
    match side with
    | `Left -> { t with left = Some { cell; left = t.left; right = None } }
    | `Right -> { t with right = Some { cell; left = None; right = t.right } }
  else
    {
      t with
      left = Option.map (fun l -> insert_at l ~cell ~target ~side) t.left;
      right = Option.map (fun r -> insert_at r ~cell ~target ~side) t.right;
    }

let insert_random rng t ~cell =
  let target = Prelude.Rng.choose rng (cells t) in
  let side = if Prelude.Rng.bool rng then `Left else `Right in
  insert_at t ~cell ~target ~side

let rec equal a b =
  a.cell = b.cell
  && Option.equal equal a.left b.left
  && Option.equal equal a.right b.right

let rec pp ppf t =
  match (t.left, t.right) with
  | None, None -> Format.fprintf ppf "%d" t.cell
  | _ ->
      Format.fprintf ppf "@[%d(%a,%a)@]" t.cell
        (Format.pp_print_option
           ~none:(fun ppf () -> Format.pp_print_string ppf "-")
           pp)
        t.left
        (Format.pp_print_option
           ~none:(fun ppf () -> Format.pp_print_string ppf "-")
           pp)
        t.right
