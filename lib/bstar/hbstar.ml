open Geometry
module H = Netlist.Hierarchy
module G = Constraints.Symmetry_group

type node_kind =
  | K_asf of { grp : G.t }
  | K_tree of { items : int list; proximity : bool }
  | K_centroid of { cells : int list }

type node_info = { kind : node_kind }

type tree_state = T_asf of Asf.t | T_tree of Tree.t | T_fixed

type state = {
  circuit : Netlist.Circuit.t;
  infos : node_info array;
  trees : tree_state array;
  root : int;
  proximity_groups : int list list;  (** leaf members per proximity node *)
  halo : int;
      (** empty margin kept around proximity macros (guard-ring room) *)
}

(* Pseudo-item ids: modules are [0, n); node j's packed macro is item
   [n + j]. *)

let build rng circuit hierarchy =
  let n = Netlist.Circuit.size circuit in
  let infos = ref [] and states = ref [] and next_id = ref 0 in
  let register info st =
    let id = !next_id in
    incr next_id;
    infos := (id, info) :: !infos;
    states := (id, st) :: !states;
    id
  in
  let rec build_node node =
    match node with
    | H.Leaf _ -> invalid_arg "Hbstar.build: leaf has no node state"
    | H.Node { name = _; kind; children } -> (
        match kind with
        | H.Symmetry ->
            let absorbed_pairs =
              List.filter_map
                (function
                  | H.Node
                      { kind = H.Symmetry;
                        children = [ H.Leaf a; H.Leaf b ];
                        _ } ->
                      Some (a, b)
                  | H.Node _ | H.Leaf _ -> None)
                children
            in
            let direct_leaves =
              List.filter_map
                (function H.Leaf i -> Some i | H.Node _ -> None)
                children
            in
            let nested_nodes =
              List.filter
                (function
                  | H.Node
                      { kind = H.Symmetry;
                        children = [ H.Leaf _; H.Leaf _ ];
                        _ } ->
                      false
                  | H.Node _ -> true
                  | H.Leaf _ -> false)
                children
            in
            let rec pair_up = function
              | a :: b :: rest ->
                  let ps, ss = pair_up rest in
                  ((a, b) :: ps, ss)
              | [ a ] -> ([], [ a ])
              | [] -> ([], [])
            in
            let leaf_pairs, leaf_selfs = pair_up direct_leaves in
            let nested = List.map build_node nested_nodes in
            let pseudo_selfs = List.map (fun id -> n + id) nested in
            let grp =
              G.make ~name:"hb-sym"
                ~pairs:(absorbed_pairs @ leaf_pairs)
                ~selfs:(leaf_selfs @ pseudo_selfs) ()
            in
            register
              { kind = K_asf { grp } }
              (T_asf (Asf.make rng grp))
        | H.Common_centroid ->
            let all_leaves =
              List.for_all
                (function H.Leaf _ -> true | H.Node _ -> false)
                children
            in
            let cells = List.concat_map H.leaves children in
            let matched =
              match cells with
              | [] -> false
              | c :: rest ->
                  let d = Netlist.Circuit.dims circuit c in
                  List.for_all
                    (fun c' -> Netlist.Circuit.dims circuit c' = d)
                    rest
            in
            if all_leaves && matched then
              register { kind = K_centroid { cells } } T_fixed
            else begin
              (* documented fallback: unmatched or hierarchical
                 common-centroid degrades to a free B*-tree *)
              let nested =
                List.filter_map
                  (function H.Leaf _ -> None | H.Node _ as c -> Some (build_node c))
                  children
              in
              let items =
                List.filter_map
                  (function H.Leaf i -> Some i | H.Node _ -> None)
                  children
                @ List.map (fun id -> n + id) nested
              in
              register
                { kind = K_tree { items; proximity = false } }
                (T_tree (Tree.random rng items))
            end
        | H.Free | H.Proximity ->
            let nested =
              List.filter_map
                (function H.Leaf _ -> None | H.Node _ as c -> Some (build_node c))
                children
            in
            let items =
              List.filter_map
                (function H.Leaf i -> Some i | H.Node _ -> None)
                children
              @ List.map (fun id -> n + id) nested
            in
            register
              { kind = K_tree { items; proximity = (kind = H.Proximity) } }
              (T_tree (Tree.random rng items)))
  in
  let root =
    match hierarchy with
    | H.Leaf i ->
        register
          { kind = K_tree { items = [ i ]; proximity = false } }
          (T_tree (Tree.leaf i))
    | H.Node _ -> build_node hierarchy
  in
  let count = !next_id in
  let info_arr =
    Array.init count (fun i -> List.assoc i !infos)
  in
  let state_arr =
    Array.init count (fun i -> List.assoc i !states)
  in
  (info_arr, state_arr, root)

let initial ?(halo = 0) rng circuit hierarchy =
  (match
     H.validate hierarchy ~n_modules:(Netlist.Circuit.size circuit)
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hbstar.initial: " ^ msg));
  let infos, trees, root = build rng circuit hierarchy in
  let proximity_groups =
    H.constraint_nodes hierarchy
    |> List.filter_map (fun (_, kind, leaves) ->
           match kind with
           | H.Proximity -> Some leaves
           | H.Free | H.Symmetry | H.Common_centroid -> None)
  in
  { circuit; infos; trees; root; proximity_groups; halo }

let perturb rng st =
  let perturbable =
    Array.to_list
      (Array.mapi
         (fun i t ->
           match t with T_asf _ | T_tree _ -> Some i | T_fixed -> None)
         st.trees)
    |> List.filter_map Fun.id
  in
  match perturbable with
  | [] -> st
  | _ ->
      let i = Prelude.Rng.choose rng perturbable in
      let trees = Array.copy st.trees in
      trees.(i) <-
        (match trees.(i) with
        | T_asf a -> T_asf (Asf.perturb rng a)
        | T_tree t -> T_tree (Perturb.random rng t)
        | T_fixed -> T_fixed);
      { st with trees }

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)

type macro = {
  placed : Transform.placed list;  (* module placements, macro coords *)
  width : int;
  height : int;
  top : Contour.segment list;
}

let macro_of_placed placed =
  match placed with
  | [] -> { placed; width = 0; height = 0; top = [] }
  | _ ->
      let rects = List.map (fun p -> p.Transform.rect) placed in
      let bbox = Rect.bbox_of_list rects in
      {
        placed;
        width = Rect.x_max bbox;
        height = Rect.y_max bbox;
        top = Outline.top_profile rects;
      }

(* B*-tree packing where items may carry a rectilinear top profile
   (contour nodes): the item rests flat, but only its material columns
   raise the skyline, letting later cells settle into its valleys.
   Runs on the mutable contour scratch; the scratch is per invocation
   because [lookup] can recurse into a nested macro's own pack while
   this traversal is mid-flight. *)
let pack_with_profiles tree lookup =
  let out = ref [] in
  let contour = Contour.scratch ((2 * Tree.size tree) + 1) in
  let rec go node x =
    let w, h, profile = lookup node.Tree.cell in
    let y = Contour.max_height_into contour ~x0:x ~x1:(x + w) in
    (match profile with
    | None -> Contour.raise_into contour ~x0:x ~x1:(x + w) ~y:(y + h)
    | Some segs ->
        List.iter
          (fun (s : Contour.segment) ->
            Contour.raise_into contour ~x0:(x + s.Contour.x0)
              ~x1:(x + s.Contour.x1) ~y:(y + s.Contour.y))
          segs);
    out := (node.Tree.cell, x, y) :: !out;
    Option.iter (fun l -> go l (x + w)) node.Tree.left;
    Option.iter (fun r -> go r x) node.Tree.right
  in
  go tree 0;
  List.rev !out

let pack st =
  let n = Netlist.Circuit.size st.circuit in
  let memo : macro option array = Array.make (Array.length st.infos) None in
  let rec macro_of id =
    match memo.(id) with
    | Some m -> m
    | None ->
        let m = compute id in
        memo.(id) <- Some m;
        m
  and item_dims item =
    if item < n then Netlist.Circuit.dims st.circuit item
    else
      let m = macro_of (item - n) in
      (m.width, m.height)
  and item_lookup item =
    if item < n then
      let w, h = Netlist.Circuit.dims st.circuit item in
      (w, h, None)
    else
      let m = macro_of (item - n) in
      (m.width, m.height, Some m.top)
  and splice item x y =
    if item < n then
      let w, h = Netlist.Circuit.dims st.circuit item in
      [ Transform.place ~cell:item ~x ~y ~w ~h ~orient:Orientation.R0 ]
    else
      let m = macro_of (item - n) in
      List.map (fun p -> Transform.translate p ~dx:x ~dy:y) m.placed
  and compute id =
    match (st.infos.(id).kind, st.trees.(id)) with
    | K_centroid { cells }, _ -> (
        match Centroid.place ~cells (Netlist.Circuit.dims st.circuit) with
        | Ok placed -> macro_of_placed placed
        | Error msg -> invalid_arg ("Hbstar.pack: " ^ msg))
    | K_asf _, T_asf asf ->
        let island = Asf.pack asf item_dims in
        let placed =
          List.concat_map
            (fun (p : Transform.placed) ->
              if p.cell < n then [ p ]
              else
                let m = macro_of (p.cell - n) in
                List.map
                  (fun q ->
                    Transform.translate q ~dx:p.rect.Rect.x ~dy:p.rect.Rect.y)
                  m.placed)
            island.Asf.placed
        in
        macro_of_placed placed
    | K_tree { proximity; _ }, T_tree tree ->
        let items = pack_with_profiles tree item_lookup in
        let placed =
          List.concat_map (fun (item, x, y) -> splice item x y) items
        in
        let m = macro_of_placed placed in
        if proximity && st.halo > 0 then
          (* opaque halo: room for the guard ring, no interleaving *)
          let h = st.halo in
          let placed =
            List.map (fun p -> Transform.translate p ~dx:h ~dy:h) m.placed
          in
          let width = m.width + (2 * h) and height = m.height + (2 * h) in
          {
            placed;
            width;
            height;
            top = [ { Contour.x0 = 0; x1 = width; y = height } ];
          }
        else m
    | K_asf _, (T_tree _ | T_fixed) | K_tree _, (T_asf _ | T_fixed) ->
        invalid_arg "Hbstar.pack: state/kind mismatch"
  in
  (macro_of st.root).placed

(* ------------------------------------------------------------------ *)
(* Cost and annealing                                                  *)

type weights = {
  area : float;
  wirelength : float;
  proximity_penalty : float;
}

let default_weights =
  { area = 1.0; wirelength = 0.2; proximity_penalty = 1e7 }

let evaluate st =
  let placed = pack st in
  let rects = List.map (fun p -> p.Transform.rect) placed in
  let area =
    match rects with
    | [] -> 0
    | _ ->
        let b = Rect.bbox_of_list rects in
        Rect.x_max b * Rect.y_max b
  in
  let center2 m =
    List.find_map
      (fun (p : Transform.placed) ->
        if p.cell = m then Some (Rect.center2 p.rect) else None)
      placed
  in
  let hpwl =
    Netlist.Wirelength.hpwl st.circuit.Netlist.Circuit.nets ~center2
  in
  let disconnected =
    List.length
      (List.filter
         (fun members ->
           Result.is_error
             (Constraints.Placement_check.proximity ~members placed))
         st.proximity_groups)
  in
  (placed, area, hpwl, disconnected)

let cost weights st =
  let _, area, hpwl, disconnected = evaluate st in
  (weights.area *. float_of_int area)
  +. (weights.wirelength *. hpwl)
  +. (weights.proximity_penalty *. float_of_int disconnected)

type outcome = {
  placed : Transform.placed list;
  area : int;
  hpwl : float;
  state : state;
  sa_rounds : int;
}

let place ?(weights = default_weights) ?params ?halo ~rng circuit hierarchy =
  let init = initial ?halo rng circuit hierarchy in
  let params =
    match params with
    | Some p -> p
    | None -> Anneal.Sa.default_params ~n:(Netlist.Circuit.size circuit)
  in
  let problem =
    {
      Anneal.Sa.init;
      neighbor = (fun rng st -> perturb rng st);
      cost = (fun st -> cost weights st);
    }
  in
  let result = Anneal.Sa.run ~rng params problem in
  let placed, area, hpwl, _ = evaluate result.Anneal.Sa.best in
  {
    placed;
    area;
    hpwl;
    state = result.Anneal.Sa.best;
    sa_rounds = result.Anneal.Sa.rounds;
  }
