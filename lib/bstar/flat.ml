(* Flat-array B*-trees.

   The pointer representation in {!Tree} is the right tool for
   construction and analysis, but the annealing hot path wants three
   things it cannot give: O(1) structural moves, O(1) reversal of a
   rejected move, and packing that touches no allocator. This module
   stores one tree as six int arrays. Nodes are dense indices
   [0, n); [cell]/[node] are mutually inverse relabelings, so swapping
   the cells of two nodes never touches the structure arrays, and the
   structure arrays ([left]/[right]/[parent], [-1] = absent, the root
   carrying the free parent slot) support detaching and re-attaching a
   leaf in constant time. A side array of current leaves makes the
   random leaf of the classic B*-tree move set an O(1) draw. *)

type t = {
  n : int;
  cell : int array;  (* node -> cell label *)
  node : int array;  (* cell -> node holding it (inverse of [cell]) *)
  left : int array;  (* node -> left-child node, -1 when absent *)
  right : int array;
  parent : int array;  (* node -> parent node; -1 marks the root *)
  mutable root : int;
  (* current leaves, for O(1) uniform selection: [leaves.(0 ..
     n_leaves-1)] are the leaf nodes, [leaf_pos] the inverse index
     (-1 for internal nodes) *)
  leaves : int array;
  leaf_pos : int array;
  mutable n_leaves : int;
  stack : int array;  (* pre-order traversal scratch for [pack_into] *)
}

type side = L | R

type undo =
  | U_nothing
  | U_swap of int * int  (* the two cells that exchanged nodes *)
  | U_move of {
      leaf : int;  (* the node that moved *)
      src : int;  (* its original parent *)
      src_side : side;
      dst : int;  (* where it went *)
      dst_side : side;
    }

let nil = -1
let size t = t.n
let root t = t.root
let cell_at t m = t.cell.(m)
let node_of t c = t.node.(c)
let left_of t m = t.left.(m)
let right_of t m = t.right.(m)
let parent_of t m = t.parent.(m)
let is_leaf t m = t.left.(m) = nil && t.right.(m) = nil
let leaf_count t = t.n_leaves

let leaf_nodes t = Array.to_list (Array.sub t.leaves 0 t.n_leaves)

(* ---- leaf-set bookkeeping ----------------------------------------- *)

let leaf_add t m =
  if t.leaf_pos.(m) = nil then begin
    t.leaves.(t.n_leaves) <- m;
    t.leaf_pos.(m) <- t.n_leaves;
    t.n_leaves <- t.n_leaves + 1
  end

let leaf_remove t m =
  let p = t.leaf_pos.(m) in
  if p <> nil then begin
    let last = t.leaves.(t.n_leaves - 1) in
    t.leaves.(p) <- last;
    t.leaf_pos.(last) <- p;
    t.leaf_pos.(m) <- nil;
    t.n_leaves <- t.n_leaves - 1
  end

let rebuild_leaves t =
  t.n_leaves <- 0;
  Array.fill t.leaf_pos 0 t.n nil;
  for m = 0 to t.n - 1 do
    if is_leaf t m then leaf_add t m
  done

(* ---- conversions -------------------------------------------------- *)

let of_tree tree =
  let n = Tree.size tree in
  let t =
    {
      n;
      cell = Array.make n nil;
      node = Array.make n nil;
      left = Array.make n nil;
      right = Array.make n nil;
      parent = Array.make n nil;
      root = 0;
      leaves = Array.make n nil;
      leaf_pos = Array.make n nil;
      n_leaves = 0;
      stack = Array.make n 0;
    }
  in
  (* pre-order node numbering; cells must be a permutation of [0, n) *)
  let next = ref 0 in
  let rec go (node : Tree.t) p =
    let m = !next in
    incr next;
    let c = node.Tree.cell in
    if c < 0 || c >= n || t.node.(c) <> nil then
      invalid_arg "Flat.of_tree: cells are not a permutation of 0..n-1";
    t.cell.(m) <- c;
    t.node.(c) <- m;
    t.parent.(m) <- p;
    (match node.Tree.left with Some l -> t.left.(m) <- go l m | None -> ());
    (match node.Tree.right with Some r -> t.right.(m) <- go r m | None -> ());
    m
  in
  t.root <- go tree nil;
  rebuild_leaves t;
  t

let to_tree t =
  let rec go m =
    {
      Tree.cell = t.cell.(m);
      left = (if t.left.(m) = nil then None else Some (go t.left.(m)));
      right = (if t.right.(m) = nil then None else Some (go t.right.(m)));
    }
  in
  go t.root

let copy t =
  {
    n = t.n;
    cell = Array.copy t.cell;
    node = Array.copy t.node;
    left = Array.copy t.left;
    right = Array.copy t.right;
    parent = Array.copy t.parent;
    root = t.root;
    leaves = Array.copy t.leaves;
    leaf_pos = Array.copy t.leaf_pos;
    n_leaves = t.n_leaves;
    stack = Array.make t.n 0;
  }

let blit ~src ~dst =
  if src.n <> dst.n then invalid_arg "Flat.blit: size mismatch";
  Array.blit src.cell 0 dst.cell 0 src.n;
  Array.blit src.node 0 dst.node 0 src.n;
  Array.blit src.left 0 dst.left 0 src.n;
  Array.blit src.right 0 dst.right 0 src.n;
  Array.blit src.parent 0 dst.parent 0 src.n;
  Array.blit src.leaves 0 dst.leaves 0 src.n;
  Array.blit src.leaf_pos 0 dst.leaf_pos 0 src.n;
  dst.root <- src.root;
  dst.n_leaves <- src.n_leaves

let equal a b =
  (* exact structural equality, node numbering included; the leaf-set
     array order is bookkeeping, not structure *)
  a.n = b.n && a.root = b.root && a.cell = b.cell && a.node = b.node
  && a.left = b.left && a.right = b.right && a.parent = b.parent

(* ---- O(1) perturbations ------------------------------------------- *)

let swap_cells t a b =
  let na = t.node.(a) and nb = t.node.(b) in
  t.cell.(na) <- b;
  t.cell.(nb) <- a;
  t.node.(a) <- nb;
  t.node.(b) <- na;
  U_swap (a, b)

let child t m = function L -> t.left.(m) | R -> t.right.(m)

let set_child t m side v =
  match side with L -> t.left.(m) <- v | R -> t.right.(m) <- v

let side_of t m =
  let p = t.parent.(m) in
  if t.left.(p) = m then L else R

(* Detach leaf [l] from its parent; [l] keeps its leaf-set slot, the
   parent may gain one. *)
let detach_leaf t l =
  let p = t.parent.(l) in
  let s = side_of t l in
  set_child t p s nil;
  t.parent.(l) <- nil;
  if is_leaf t p then leaf_add t p;
  (p, s)

(* Attach the detached leaf [l] under [dst] at [side] (must be free). *)
let attach_leaf t l dst side =
  if child t dst side <> nil then invalid_arg "Flat.attach_leaf: occupied";
  leaf_remove t dst;
  set_child t dst side l;
  t.parent.(l) <- dst

let move_leaf t ~leaf ~dst ~dst_side =
  if not (is_leaf t leaf) then invalid_arg "Flat.move_leaf: not a leaf";
  if leaf = t.root then invalid_arg "Flat.move_leaf: root";
  if dst = leaf then invalid_arg "Flat.move_leaf: onto itself";
  let src, src_side = detach_leaf t leaf in
  attach_leaf t leaf dst dst_side;
  U_move { leaf; src; src_side; dst; dst_side }

let undo t = function
  | U_nothing -> ()
  | U_swap (a, b) -> ignore (swap_cells t a b)
  | U_move { leaf; src; src_side; dst = _; dst_side = _ } ->
      let _ = detach_leaf t leaf in
      attach_leaf t leaf src src_side

(* Random structural move, mirroring the classic B*-tree move set: a
   cell swap or a leaf relocation, uniformly. Single-node trees have
   no structural moves. *)
let perturb rng t =
  if t.n < 2 then U_nothing
  else if Prelude.Rng.bool rng then begin
    let i = Prelude.Rng.int rng t.n in
    let j = (i + 1 + Prelude.Rng.int rng (t.n - 1)) mod t.n in
    swap_cells t i j
  end
  else begin
    let leaf = t.leaves.(Prelude.Rng.int rng t.n_leaves) in
    let src, src_side = detach_leaf t leaf in
    (* uniform (node, side) over the remaining n-1 nodes; at least half
       of the 2(n-1) slots are free, so rejection terminates fast *)
    let dst = ref nil and dst_side = ref L in
    while !dst = nil do
      let r = Prelude.Rng.int rng (t.n - 1) in
      let m = if r >= leaf then r + 1 else r in
      let s = if Prelude.Rng.bool rng then L else R in
      if child t m s = nil then begin
        dst := m;
        dst_side := s
      end
    done;
    attach_leaf t leaf !dst !dst_side;
    U_move { leaf; src; src_side; dst = !dst; dst_side = !dst_side }
  end

(* ---- allocation-free packing -------------------------------------- *)

(* Iterative pre-order over the explicit stack — the exact recursion
   order of [Tree.pack] (node, left subtree, right subtree), so the
   contour sees identical drops and the coordinates match the pointer
   path bit for bit (tested). [w]/[h] are read and [x]/[y] written per
   cell. *)
let pack_into ?(tally = Telemetry.Counter.null) t contour ~w ~h ~x ~y =
  Telemetry.Counter.incr tally;
  Geometry.Contour.clear contour;
  let stack = t.stack in
  let top = ref 0 in
  stack.(0) <- t.root;
  incr top;
  while !top > 0 do
    decr top;
    let m = stack.(!top) in
    let c = t.cell.(m) in
    let cx =
      if m = t.root then 0
      else
        let p = t.parent.(m) in
        let pc = t.cell.(p) in
        if t.left.(p) = m then x.(pc) + w.(pc) else x.(pc)
    in
    x.(c) <- cx;
    y.(c) <- Geometry.Contour.drop_into contour ~x:cx ~w:w.(c) ~h:h.(c);
    (* push right first so the left subtree is packed first *)
    if t.right.(m) <> nil then begin
      stack.(!top) <- t.right.(m);
      incr top
    end;
    if t.left.(m) <> nil then begin
      stack.(!top) <- t.left.(m);
      incr top
    end
  done

let pp ppf t = Tree.pp ppf (to_tree t)
