(** B*-trees (Chang et al., survey ref [5]).

    A B*-tree is an ordered binary tree over cells encoding a compacted
    ("admissible") placement: the root sits at the origin; a node's
    {e left} child is the lowest cell adjacent to its right edge (same
    y-search, x = parent.x + parent.w); its {e right} child is the
    lowest cell above it at the same x. Packing is a pre-order
    traversal against a skyline contour, O(n) contour updates
    amortized.

    Trees here are immutable; perturbations (see {!Perturb}) return new
    trees. *)

type t = { cell : int; left : t option; right : t option }

val leaf : int -> t

val row : int list -> t
(** Left-skewed chain: the cells side by side in one row. Raises
    [Invalid_argument] on the empty list. *)

val column : int list -> t
(** Right-skewed chain: the cells stacked in one column. *)

val random : Prelude.Rng.t -> int list -> t
(** Uniformly-shaped random tree over the given cells (first cell list
    order is randomized too). Raises [Invalid_argument] on []. *)

val cells : t -> int list
(** Pre-order cell list. O(n). *)

val size : t -> int

val mem : t -> int -> bool

val nth_cell : t -> int -> int
(** [nth_cell t i] is [List.nth (cells t) i] without building the list.
    Raises [Invalid_argument] out of range. *)

val map_cells : (int -> int) -> t -> t

val pack : t -> (int -> int * int) -> Geometry.Transform.placed list
(** Contour packing; placements are returned in pre-order. All
    orientations are [R0] — orientation choices belong to the caller
    (apply them inside the dims function and relabel afterwards). *)

val pack_rects : t -> (int -> int * int) -> (int * Geometry.Rect.t) list
(** Like {!pack} but just [(cell, rect)] pairs. *)

val pack_into :
  t ->
  Geometry.Contour.scratch ->
  w:int array ->
  h:int array ->
  x:int array ->
  y:int array ->
  unit
(** Allocation-free {!pack_rects}: dimensions are read from [w]/[h] and
    the packed origin of each cell written to [x]/[y] (all indexed by
    cell, which therefore must lie in [\[0, Array.length w)]). Clears
    and reuses the contour scratch. Coordinates are identical to
    {!pack} with the same dimensions (tested). *)

val swap_cells : t -> int -> int -> t
(** Exchange the cells at the nodes holding [a] and [b]. *)

val delete : t -> int -> t option
(** Remove the node holding the cell. An internal node is spliced by
    promoting its left child (its right subtree re-attaches at the
    promoted chain's rightmost node), preserving a valid tree. [None]
    when the tree had one node. *)

val insert_at :
  t -> cell:int -> target:int -> side:[ `Left | `Right ] -> t
(** Insert a new node holding [cell] as the [side] child of the node
    holding [target]; an existing child moves down to the same side of
    the new node. *)

val insert_random : Prelude.Rng.t -> t -> cell:int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
