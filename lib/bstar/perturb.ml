(* Index-based selection: one [Tree.size] plus [Tree.nth_cell] lookups
   replace the old per-move [Tree.cells] materialization. The rng draw
   sequence is unchanged ([Rng.choose] also draws one [int] over the
   length), so annealing trajectories are identical. *)

let swap rng t =
  let n = Tree.size t in
  if n < 2 then t
  else
    let i = Prelude.Rng.int rng n in
    let j = (i + 1 + Prelude.Rng.int rng (n - 1)) mod n in
    Tree.swap_cells t (Tree.nth_cell t i) (Tree.nth_cell t j)

let move rng t =
  let n = Tree.size t in
  if n < 2 then t
  else
    let victim = Tree.nth_cell t (Prelude.Rng.int rng n) in
    match Tree.delete t victim with
    | None -> t
    | Some t' ->
        let target = Tree.nth_cell t' (Prelude.Rng.int rng (n - 1)) in
        let side = if Prelude.Rng.bool rng then `Left else `Right in
        Tree.insert_at t' ~cell:victim ~target ~side

let random rng t =
  if Prelude.Rng.bool rng then swap rng t else move rng t
