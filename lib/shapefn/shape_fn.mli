(** Shape functions: Pareto fronts of realizable shapes.

    A shape function is the set of non-redundant (width, height) points
    a module group can realize — "placements which have a greater
    height, while having the same or even a greater width than some
    other shape are redundant and therefore removed" (survey §IV-A).
    Kept sorted by increasing width (hence strictly decreasing
    height). A capacity bound thins dense fronts to keep the
    deterministic placer polynomial; the minimum-area, minimum-width
    and minimum-height shapes always survive thinning. *)

type t

val of_shapes : ?cap:int -> Shape.t list -> t
(** Prune dominated and duplicate shapes; raises [Invalid_argument] on
    the empty list. Default [cap] is unlimited. *)

val shapes : t -> Shape.t list
(** Increasing width, decreasing height. *)

val cardinal : t -> int

val min_area : t -> Shape.t

val min_width : t -> int
(** Width of the narrowest front point — a lower bound on the width of
    {e any} realizable placement of the module group (the front is the
    Pareto-minimal shape set, so every realizable shape is dominated by
    some front point). The feasibility prover ([Analysis.Feasibility])
    compares these bounds against a fixed outline. *)

val min_height : t -> int
(** Height of the flattest front point — the matching height lower
    bound. *)

val fits : ?max_w:int -> ?max_h:int -> t -> bool
(** Does any front point fit the box? [fits] is exactly
    [best_within <> None]; when the front was built without a capacity
    bound (no thinning), [not (fits fn)] proves no placement of the
    group fits. *)

val best_within : ?max_w:int -> ?max_h:int -> t -> Shape.t option
(** Minimum-area shape honoring a fixed outline — the "pre-defined
    layout aspect ratio, or a maximum width or height" restriction of
    the survey's §V geometric constraints, applied to shape functions.
    [None] when no front point fits. *)

val instantiate :
  ?max_w:int -> ?max_h:int -> t -> Geometry.Transform.placed list option
(** Instantiate-from-curve: {!best_within} followed by
    {!Shape.realize} — the concrete placement of the minimum-area
    front point honoring the box, or [None] when no point fits. This
    is how a cached topology answers a new outline request without
    re-annealing (the placement service's rigid hit path; Badaoui &
    Vemuri's multi-placement query). *)

val points : t -> (int * int) list
(** The (w, h) Pareto points (for plotting Fig. 8). *)

val merge : ?cap:int -> t -> t -> t
(** Union of two fronts over the same module group (e.g. from the two
    addition directions), re-pruned. *)

val dominates_fn : t -> t -> bool
(** Every shape of the second front is (weakly) dominated by some shape
    of the first. *)

val pp : Format.formatter -> t -> unit
