type t = Shape.t list (* sorted by w increasing, h strictly decreasing *)

let prune_sorted sorted =
  (* sorted by (w asc, h asc): keep a shape iff its height is strictly
     below every kept shape so far (those have smaller-or-equal
     width). *)
  let rec go best_h acc = function
    | [] -> List.rev acc
    | (s : Shape.t) :: rest ->
        if s.Shape.h < best_h then go s.Shape.h (s :: acc) rest
        else go best_h acc rest
  in
  go max_int [] sorted

let thin cap front =
  let n = List.length front in
  if n <= cap then front
  else
    let arr = Array.of_list front in
    let must_keep =
      (* min width = first, min height = last, min area *)
      let min_area_idx = ref 0 in
      Array.iteri
        (fun i s ->
          if Shape.area s < Shape.area arr.(!min_area_idx) then
            min_area_idx := i)
        arr;
      [ 0; n - 1; !min_area_idx ]
    in
    let step = float_of_int (n - 1) /. float_of_int (max 1 (cap - 1)) in
    let picked =
      List.init cap (fun k -> int_of_float (Float.round (float_of_int k *. step)))
      @ must_keep
      |> List.sort_uniq Int.compare
    in
    List.map (fun i -> arr.(i)) picked

let of_shapes ?cap shapes =
  if shapes = [] then invalid_arg "Shape_fn.of_shapes: empty";
  let sorted =
    List.sort
      (fun (a : Shape.t) (b : Shape.t) ->
        let c = Int.compare a.Shape.w b.Shape.w in
        if c <> 0 then c else Int.compare a.Shape.h b.Shape.h)
      shapes
  in
  let front = prune_sorted sorted in
  match cap with Some c -> thin c front | None -> front

let shapes t = t
let cardinal = List.length

let min_area = function
  | [] -> invalid_arg "Shape_fn.min_area: empty"
  | first :: rest ->
      List.fold_left
        (fun best s -> if Shape.area s < Shape.area best then s else best)
        first rest

let min_width = function
  | [] -> invalid_arg "Shape_fn.min_width: empty"
  | (first : Shape.t) :: _ -> first.Shape.w

let min_height t =
  match List.rev t with
  | [] -> invalid_arg "Shape_fn.min_height: empty"
  | (last : Shape.t) :: _ -> last.Shape.h

let best_within ?(max_w = max_int) ?(max_h = max_int) t =
  List.filter (fun (s : Shape.t) -> s.Shape.w <= max_w && s.Shape.h <= max_h) t
  |> function
  | [] -> None
  | fits -> Some (min_area fits)

let fits ?max_w ?max_h t = best_within ?max_w ?max_h t <> None

let instantiate ?max_w ?max_h t =
  Option.map Shape.realize (best_within ?max_w ?max_h t)

let points t = List.map (fun (s : Shape.t) -> (s.Shape.w, s.Shape.h)) t
let merge ?cap a b = of_shapes ?cap (a @ b)

let dominates_fn a b =
  List.for_all
    (fun (sb : Shape.t) ->
      List.exists (fun (sa : Shape.t) -> Shape.dominates sa sb) a)
    b

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Shape.pp)
    t
