open Geometry

let default_label (p : Placement.t) m =
  let modules = p.circuit.Netlist.Circuit.modules in
  if m >= 0 && m < Array.length modules then
    modules.(m).Netlist.Circuit.name
  else string_of_int m

let device_labels (p : Placement.t) =
  let modules = p.circuit.Netlist.Circuit.modules in
  let is_mos_name n = String.length n > 1 && (n.[0] = 'M' || n.[0] = 'm') in
  let mos_names =
    Array.fold_left
      (fun acc (m : Netlist.Circuit.module_) ->
        if is_mos_name m.Netlist.Circuit.name then acc + 1 else acc)
      0 modules
  in
  fun m ->
    let name = default_label p m in
    if mos_names > 1 && is_mos_name name then
      String.sub name 1 (String.length name - 1)
    else name

let ascii ?(width = 72) ?labels p =
  let labels = Option.value labels ~default:(default_label p) in
  let bw = max 1 (Placement.width p) and bh = max 1 (Placement.height p) in
  let cols = min width bw in
  (* character cells are roughly twice as tall as wide *)
  let scale_x = float_of_int bw /. float_of_int cols in
  let rows = max 1 (int_of_float (float_of_int bh /. scale_x /. 2.0)) in
  let scale_y = float_of_int bh /. float_of_int rows in
  let grid = Array.make_matrix rows cols '.' in
  List.iter
    (fun (pl : Transform.placed) ->
      let r = pl.Transform.rect in
      let label = labels pl.Transform.cell in
      let ch = if String.length label > 0 then label.[0] else '#' in
      let c0 = int_of_float (float_of_int r.Rect.x /. scale_x) in
      let c1 =
        int_of_float (ceil (float_of_int (Rect.x_max r) /. scale_x)) - 1
      in
      let r0 = int_of_float (float_of_int r.Rect.y /. scale_y) in
      let r1 =
        int_of_float (ceil (float_of_int (Rect.y_max r) /. scale_y)) - 1
      in
      for row = max 0 r0 to min (rows - 1) (max r0 r1) do
        for col = max 0 c0 to min (cols - 1) (max c0 c1) do
          grid.(row).(col) <- ch
        done
      done)
    p.Placement.placed;
  (* y grows upward: print top row first *)
  let buf = Buffer.create (rows * (cols + 1)) in
  for row = rows - 1 downto 0 do
    Buffer.add_string buf (String.init cols (fun c -> grid.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let svg ?(scale = 0.25) ?labels p =
  let labels = Option.value labels ~default:(default_label p) in
  let s v = float_of_int v *. scale in
  let bw = s (Placement.width p) and bh = s (Placement.height p) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.1f\" \
        height=\"%.1f\" viewBox=\"0 0 %.1f %.1f\">\n"
       bw bh bw bh);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%.1f\" height=\"%.1f\" \
        fill=\"#f8f8f8\" stroke=\"#333\"/>\n"
       bw bh);
  List.iteri
    (fun i (pl : Transform.placed) ->
      let r = pl.Transform.rect in
      let hue = (i * 47) mod 360 in
      (* flip y: SVG grows downward *)
      let y = bh -. s (Rect.y_max r) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
            fill=\"hsl(%d,55%%,75%%)\" stroke=\"#222\" stroke-width=\"0.5\"/>\n"
           (s r.Rect.x) y (s r.Rect.w) (s r.Rect.h) hue);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" \
            text-anchor=\"middle\" dominant-baseline=\"middle\">%s</text>\n"
           (s r.Rect.x +. (s r.Rect.w /. 2.0))
           (y +. (s r.Rect.h /. 2.0))
           (Float.min 12.0 (Float.max 4.0 (s r.Rect.h /. 4.0)))
           (labels pl.Transform.cell)))
    p.Placement.placed;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let svg_full ?(scale = 0.25) ?(rings = []) ?(power = []) ?(wires = []) p =
  let base = svg ~scale p in
  (* splice extra elements before the closing tag *)
  let cut = String.length base - String.length "</svg>\n" in
  let head = String.sub base 0 cut in
  let s v = float_of_int v *. scale in
  let bw = s (Placement.width p) and bh = s (Placement.height p) in
  ignore bw;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf head;
  (* power rails under the signal wires: thick dark strokes, no hue
     rotation, so the supply comb reads as infrastructure *)
  List.iter
    (fun points ->
      match points with
      | [] | [ _ ] -> ()
      | _ ->
          let coords =
            String.concat " "
              (List.map
                 (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (s x) (bh -. s y))
                 points)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline points=\"%s\" fill=\"none\" stroke=\"#555\" \
                stroke-width=\"2.4\" stroke-opacity=\"0.6\" \
                stroke-linecap=\"square\"/>\n"
               coords))
    power;
  List.iter
    (fun (r : Geometry.Rect.t) ->
      let y = bh -. s (Geometry.Rect.y_max r) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
            fill=\"#888\" fill-opacity=\"0.45\" stroke=\"#444\" \
            stroke-width=\"0.4\"/>\n"
           (s r.Geometry.Rect.x) y (s r.Geometry.Rect.w) (s r.Geometry.Rect.h)))
    rings;
  List.iteri
    (fun i points ->
      match points with
      | [] -> ()
      | _ ->
          let hue = (120 + (i * 67)) mod 360 in
          let coords =
            String.concat " "
              (List.map
                 (fun (x, y) ->
                   Printf.sprintf "%.1f,%.1f" (s x) (bh -. s y))
                 points)
          in
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline points=\"%s\" fill=\"none\" \
                stroke=\"hsl(%d,80%%,35%%)\" stroke-width=\"1.2\"/>\n"
               coords hue))
    wires;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg_full ~path ?scale ?rings ?power ?wires p =
  let oc = open_out path in
  output_string oc (svg_full ?scale ?rings ?power ?wires p);
  close_out oc

let write_svg ~path ?scale p =
  let oc = open_out path in
  output_string oc (svg ?scale p);
  close_out oc

let ascii_shape_fn ?(width = 64) ?(height = 24) series =
  let all_points = List.concat series in
  match all_points with
  | [] -> ""
  | _ ->
      let max_w = List.fold_left (fun a (w, _) -> max a w) 1 all_points in
      let max_h = List.fold_left (fun a (_, h) -> max a h) 1 all_points in
      let grid = Array.make_matrix height width ' ' in
      let glyphs = [| '*'; 'o'; '+'; 'x'; '#' |] in
      List.iteri
        (fun si points ->
          let g = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (w, h) ->
              let col =
                min (width - 1) (w * (width - 1) / max_w)
              in
              let row =
                min (height - 1) (h * (height - 1) / max_h)
              in
              grid.(row).(col) <- g)
            points)
        series;
      let buf = Buffer.create (height * (width + 3)) in
      Buffer.add_string buf
        (Printf.sprintf "h (max %d) ^  series: %s\n" max_h
           (String.concat " "
              (List.mapi
                 (fun i _ ->
                   Printf.sprintf "[%d]=%c" i
                     glyphs.(i mod Array.length glyphs))
                 series)));
      for row = height - 1 downto 0 do
        Buffer.add_string buf "  |";
        Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf ("  +" ^ String.make width '-');
      Buffer.add_string buf (Printf.sprintf "> w (max %d)\n" max_w);
      Buffer.contents buf
