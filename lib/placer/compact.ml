open Geometry

(* a must stay left of b iff their y spans overlap and a currently ends
   at or before b's left edge. Cells disjoint in y are unconstrained in
   x: they cannot collide while y stays fixed. *)
let x_pass placed =
  let arr = Array.of_list placed in
  let order = Array.init (Array.length arr) Fun.id in
  Array.sort
    (fun i j ->
      Int.compare arr.(i).Transform.rect.Rect.x arr.(j).Transform.rect.Rect.x)
    order;
  let new_x = Array.make (Array.length arr) 0 in
  Array.iter
    (fun bi ->
      let b = arr.(bi).Transform.rect in
      let x = ref 0 in
      Array.iter
        (fun ai ->
          let a = arr.(ai).Transform.rect in
          if
            ai <> bi
            && Interval.overlaps (Rect.y_span a) (Rect.y_span b)
            && Rect.x_max a <= b.Rect.x
          then x := max !x (new_x.(ai) + a.Rect.w))
        order;
      new_x.(bi) <- !x)
    order;
  List.mapi
    (fun i (p : Transform.placed) ->
      { p with Transform.rect = { p.Transform.rect with Rect.x = new_x.(i) } })
    placed

let transpose placed =
  List.map
    (fun (p : Transform.placed) ->
      let r = p.Transform.rect in
      {
        p with
        Transform.rect = Rect.make ~x:r.Rect.y ~y:r.Rect.x ~w:r.Rect.h ~h:r.Rect.w;
      })
    placed

let compact_x (p : Placement.t) =
  Placement.make p.Placement.circuit (x_pass p.Placement.placed)

let compact_y (p : Placement.t) =
  Placement.make p.Placement.circuit
    (transpose (x_pass (transpose p.Placement.placed)))

let compact p =
  let rec go p k =
    let p' = compact_y (compact_x p) in
    if k = 0 || p'.Placement.placed = p.Placement.placed then p'
    else go p' (k - 1)
  in
  go p 8

let rect_of placed cell =
  List.find_map
    (fun (p : Transform.placed) ->
      if p.Transform.cell = cell then Some p.Transform.rect else None)
    placed

let preserves ?(frozen = []) (p1 : Placement.t) (p2 : Placement.t) =
  let cells =
    List.map (fun (p : Transform.placed) -> p.Transform.cell) p1.Placement.placed
  in
  let ok_pair a b =
    match
      ( rect_of p1.Placement.placed a,
        rect_of p1.Placement.placed b,
        rect_of p2.Placement.placed a,
        rect_of p2.Placement.placed b )
    with
    | Some r1a, Some r1b, Some r2a, Some r2b ->
        let x_order_kept =
          if
            Interval.overlaps (Rect.y_span r1a) (Rect.y_span r1b)
            && Rect.x_max r1a <= r1b.Rect.x
          then Rect.x_max r2a <= r2b.Rect.x
          else true
        in
        let y_order_kept =
          if
            Interval.overlaps (Rect.x_span r1a) (Rect.x_span r1b)
            && Rect.y_max r1a <= r1b.Rect.y
          then Rect.y_max r2a <= r2b.Rect.y
          else true
        in
        x_order_kept && y_order_kept
    | _ -> false
  in
  let frozen_ok =
    List.for_all
      (fun c -> rect_of p1.Placement.placed c = rect_of p2.Placement.placed c)
      frozen
  in
  frozen_ok
  && List.for_all
       (fun a -> List.for_all (fun b -> a = b || ok_pair a b) cells)
       cells
