(** Allocation-free evaluation arena for annealing placers.

    A placer's inner loop evaluates tens of thousands of candidate
    placements; the throughput of that evaluation is what makes
    topological representations practical (FAST-SP's whole pitch,
    survey ref [26]). The arena preallocates every buffer evaluation
    needs — per-cell geometry arrays, pack scratch (Fenwick/vEB),
    CSR-flattened nets — so a single cost query performs zero
    allocation: the sequence-pair is packed into the arena's
    coordinate arrays and area + HPWL are computed in one pass over
    them.

    Costs agree bit-for-bit with the list-based
    [Cost.evaluate (Placement.make ...)] path (tested), because both
    delegate to {!Cost.compose} and the packers write identical
    coordinates.

    One arena is single-threaded mutable state: give each parallel
    annealing chain its own (see {!Anneal.Parallel}). *)

type t

type estimator =
  x:int array -> y:int array -> w:int array -> h:int array -> float
(** A routing-congestion estimate over the arena's per-cell geometry
    arrays (indexed by cell, lengths [max 1 n]). Called on every cost
    query whose weights carry a non-zero [routability], so
    implementations must be allocation-light and may keep private
    mutable scratch — one closure per arena, never shared across
    domains. [Route.Estimate.estimator] is the canonical producer. *)

val create :
  ?telemetry:Telemetry.Sink.t -> ?estimator:estimator -> Netlist.Circuit.t -> t
(** Buffers sized to the circuit; nets flattened once. [estimator]
    (default none) adds a congestion addend to every cost query under
    non-zero [Cost.routability] — see {!estimator}.

    With a live [telemetry] sink (default {!Telemetry.Sink.null}) every
    cost query records nested spans — [eval.cost] over [eval.pack],
    [eval.hpwl] and [eval.compose] — and bumps [eval.costs] plus the
    packer counters ([seqpair.packs]/[seqpair.cells] or [bstar.packs]).
    All handles are resolved here, once; with the null sink each hook
    is a single predictable branch on the hot path. *)

val circuit : t -> Netlist.Circuit.t

val last_extents : t -> int * int * float
(** [(width, height, hpwl)] of the most recent cost query — the
    bounding-box extents and wirelength the cost was composed from.
    The placement service reads these to record a cached candidate's
    geometry without a second pass; meaningless before the first
    query. *)

val cost_seqpair :
  t ->
  Cost.weights ->
  ?groups:Constraints.Symmetry_group.t list ->
  Seqpair.Sp.t ->
  rot:bool array ->
  float
(** Pack the sequence-pair (with per-cell rotations; symmetric packing
    when [groups] is non-empty) into the arena and return its cost.
    Raises [Invalid_argument] if a symmetric pack is requested for a
    non-symmetric-feasible code, like the list path it replaces. *)

val cost_bstar : t -> Cost.weights -> Bstar.Flat.t -> rot:bool array -> float
(** Contour-pack the flat B*-tree (with per-cell rotations) into the
    arena and return its cost. The tree's cells must be exactly the
    circuit's [0..n-1]. Bit-identical to
    [Cost.evaluate (Placement.make (Tree.pack ...))] (tested). *)

val cost_placed : t -> Cost.weights -> Geometry.Transform.placed list -> float
(** Cost of an externally packed placement (e.g. a B*-tree pack)
    without building a [Placement.t]. Every cell must appear exactly
    once. *)

val realize_seqpair :
  t ->
  ?groups:Constraints.Symmetry_group.t list ->
  Seqpair.Sp.t ->
  rot:bool array ->
  Placement.t
(** Materialize a full [Placement.t] through the list APIs — for the
    final best state, off the hot path. *)
