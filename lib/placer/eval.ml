(* Allocation-free evaluation arena.

   Every simulated-annealing move needs the cost of one candidate
   placement and nothing else; materializing a [Transform.placed] list,
   a [Placement.t] and its cell index per move is pure garbage-collector
   traffic. The arena preallocates every buffer the evaluation needs --
   cell geometry arrays, pack scratch, flattened nets -- and computes
   area + HPWL in one pass over them. The list-returning APIs remain
   available for materializing the final best state. *)

type estimator =
  x:int array -> y:int array -> w:int array -> h:int array -> float

type t = {
  circuit : Netlist.Circuit.t;
  n : int;
  base_w : int array;  (* unrotated module dimensions *)
  base_h : int array;
  w : int array;  (* effective dimensions, refreshed per evaluation *)
  h : int array;
  x : int array;  (* packed coordinates *)
  y : int array;
  cx2 : int array;  (* doubled centers for HPWL *)
  cy2 : int array;
  scratch : Seqpair.Pack.scratch;
  contour : Geometry.Contour.scratch;  (* B*-tree packing profile *)
  nets : Netlist.Wirelength.flat;
  estimator : estimator option;  (* congestion term for [finish] *)
  tel : Telemetry.Sink.t;
  evals : Telemetry.Counter.t;  (* pre-resolved handles; dead when off *)
  bstar_packs : Telemetry.Counter.t;
  mutable last_w : int;  (* extents of the last evaluated packing *)
  mutable last_h : int;
  mutable last_hpwl : float;
}

let create ?(telemetry = Telemetry.Sink.null) ?estimator circuit =
  let n = Netlist.Circuit.size circuit in
  let base_w = Array.make (max 1 n) 0 and base_h = Array.make (max 1 n) 0 in
  for c = 0 to n - 1 do
    let w, h = Netlist.Circuit.dims circuit c in
    base_w.(c) <- w;
    base_h.(c) <- h
  done;
  {
    circuit;
    n;
    base_w;
    base_h;
    w = Array.make (max 1 n) 0;
    h = Array.make (max 1 n) 0;
    x = Array.make (max 1 n) 0;
    y = Array.make (max 1 n) 0;
    cx2 = Array.make (max 1 n) 0;
    cy2 = Array.make (max 1 n) 0;
    scratch = Seqpair.Pack.scratch ~telemetry (max 1 n);
    contour = Geometry.Contour.scratch ((2 * max 1 n) + 1);
    nets = Netlist.Wirelength.flatten circuit.Netlist.Circuit.nets;
    estimator;
    tel = telemetry;
    evals = Telemetry.Sink.counter telemetry "eval.costs";
    bstar_packs = Telemetry.Sink.counter telemetry "bstar.packs";
    last_w = 0;
    last_h = 0;
    last_hpwl = 0.0;
  }

let circuit t = t.circuit
let last_extents t = (t.last_w, t.last_h, t.last_hpwl)

let set_rotation t rot =
  for c = 0 to t.n - 1 do
    if rot.(c) then begin
      t.w.(c) <- t.base_h.(c);
      t.h.(c) <- t.base_w.(c)
    end
    else begin
      t.w.(c) <- t.base_w.(c);
      t.h.(c) <- t.base_h.(c)
    end
  done

let dims_of t rot c =
  if rot.(c) then (t.base_h.(c), t.base_w.(c)) else (t.base_w.(c), t.base_h.(c))

(* One pass over the coordinate arrays: bounding-box extents (anchored
   at the origin, as [Placement.bbox]) and doubled centers. *)
let finish t weights =
  Telemetry.Counter.incr t.evals;
  let t0 = Telemetry.Sink.span_begin t.tel in
  let width = ref 0 and height = ref 0 in
  for c = 0 to t.n - 1 do
    let xe = t.x.(c) + t.w.(c) and ye = t.y.(c) + t.h.(c) in
    if xe > !width then width := xe;
    if ye > !height then height := ye;
    t.cx2.(c) <- (2 * t.x.(c)) + t.w.(c);
    t.cy2.(c) <- (2 * t.y.(c)) + t.h.(c)
  done;
  let hpwl = Netlist.Wirelength.hpwl_flat t.nets ~cx2:t.cx2 ~cy2:t.cy2 in
  t.last_w <- !width;
  t.last_h <- !height;
  t.last_hpwl <- hpwl;
  let t1 = Telemetry.Sink.lap t.tel "eval.hpwl" t0 in
  (* the congestion estimate only runs when a non-zero weight can see
     it: a zero-weight query stays exactly the three-term cost at
     exactly the old latency *)
  let route =
    match t.estimator with
    | Some f when weights.Cost.routability <> 0.0 ->
        f ~x:t.x ~y:t.y ~w:t.w ~h:t.h
    | _ -> 0.0
  in
  let cost =
    Cost.compose_routed weights ~route ~width:!width ~height:!height ~hpwl
  in
  Telemetry.Sink.span_end t.tel "eval.compose" t1;
  cost

let cost_seqpair t weights ?(groups = []) sp ~rot =
  let t0 = Telemetry.Sink.span_begin t.tel in
  (match groups with
  | [] ->
      set_rotation t rot;
      Seqpair.Pack.pack_fast_into t.scratch sp ~w:t.w ~h:t.h ~x:t.x ~y:t.y
  | _ -> (
      match
        Seqpair.Symmetry.pack_symmetric_into ~x:t.x ~y:t.y ~w:t.w ~h:t.h sp
          (dims_of t rot) groups
      with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Sa_seqpair: " ^ msg)));
  Telemetry.Sink.span_end t.tel "eval.pack" t0;
  let cost = finish t weights in
  (* enclosing span: nests over eval.pack/eval.hpwl/eval.compose *)
  Telemetry.Sink.span_end t.tel "eval.cost" t0;
  cost

let cost_bstar t weights flat ~rot =
  let t0 = Telemetry.Sink.span_begin t.tel in
  set_rotation t rot;
  Bstar.Flat.pack_into ~tally:t.bstar_packs flat t.contour ~w:t.w ~h:t.h ~x:t.x
    ~y:t.y;
  Telemetry.Sink.span_end t.tel "eval.pack" t0;
  let cost = finish t weights in
  (* enclosing span: nests over eval.pack/eval.hpwl/eval.compose *)
  Telemetry.Sink.span_end t.tel "eval.cost" t0;
  cost

let cost_placed t weights placed =
  List.iter
    (fun (p : Geometry.Transform.placed) ->
      let r = p.Geometry.Transform.rect in
      t.x.(p.Geometry.Transform.cell) <- r.Geometry.Rect.x;
      t.y.(p.Geometry.Transform.cell) <- r.Geometry.Rect.y;
      t.w.(p.Geometry.Transform.cell) <- r.Geometry.Rect.w;
      t.h.(p.Geometry.Transform.cell) <- r.Geometry.Rect.h)
    placed;
  finish t weights

let realize_seqpair t ?(groups = []) sp ~rot =
  let dims = dims_of t rot in
  let placed =
    match groups with
    | [] -> Seqpair.Pack.pack_fast sp dims
    | _ -> (
        match Seqpair.Symmetry.pack_symmetric sp dims groups with
        | Ok placed -> placed
        | Error msg -> invalid_arg ("Sa_seqpair: " ^ msg))
  in
  Placement.make t.circuit placed
