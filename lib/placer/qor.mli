(** QoR extraction from finished placements.

    {!Telemetry.Qor} owns the record and its JSON form; this module is
    the layer that can actually fill it in, because it sees the cost
    function ({!Cost.terms}), the placement accessors, and the
    independent constraint checkers in [lib/constraints]. The split
    keeps the telemetry library free of placement dependencies. *)

val violations :
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  Placement.t ->
  Telemetry.Qor.violation list
(** One entry per constraint group, including satisfied ones
    ([count = 0]) so a report can show what was checked. Symmetry
    groups run {!Constraints.Placement_check.symmetry}; the hierarchy's
    proximity and common-centroid nodes run their checkers; hierarchy
    symmetry nodes are skipped (they are covered by [groups], which is
    how every placer consumes them). *)

val extract :
  ?weights:Cost.weights ->
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?outline:int * int ->
  ?move_rates:(string * int * int) list ->
  ?routed_wl:int ->
  ?route_overflow:int ->
  ?route_failed:int ->
  ?route_iterations:int ->
  cost:float ->
  wall_s:float ->
  sa_rounds:int ->
  evaluated:int ->
  Placement.t ->
  Telemetry.Qor.t
(** The full run-level record: cost terms recomputed via {!Cost.terms}
    (default weights {!Cost.default}), geometry from the placement,
    dead-space percentage, [outline_fit] when a fixed [(w, h)] outline
    is given, and {!violations} of the stated constraints. The routed
    QoR fields ([routed_wl] / [route_overflow] / [route_failed] /
    [route_iterations]) are passed through when the flow ran the
    router and omitted from the JSON otherwise. *)

val rects : Placement.t -> Telemetry.Ledger.rect list
(** The placed rectangles with their cell names, in cell order — what
    a ledger entry embeds so reports can redraw the floorplan without
    re-running the placer. *)
