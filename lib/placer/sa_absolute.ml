open Geometry

type cell_state = { x : int; y : int; rot : bool }

type outcome = {
  placement : Placement.t;
  raw_overlap : int;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let dims_of circuit st c =
  let w, h = Netlist.Circuit.dims circuit c in
  if st.(c).rot then (h, w) else (w, h)

let to_placed circuit st =
  List.init (Array.length st) (fun c ->
      let w, h = dims_of circuit st c in
      Transform.place ~cell:c ~x:st.(c).x ~y:st.(c).y ~w ~h
        ~orient:(if st.(c).rot then Orientation.R90 else Orientation.R0))

let total_overlap placed =
  let arr = Array.of_list placed in
  let n = Array.length arr in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc :=
        !acc
        + Rect.intersection_area arr.(i).Transform.rect arr.(j).Transform.rect
    done
  done;
  !acc

(* Greedy legalization: process by x, pushing overlapping cells right
   past the blocker; a compaction pass then reclaims the slack. *)
let legalize placement =
  let sorted =
    List.sort
      (fun (a : Transform.placed) b ->
        compare
          (a.Transform.rect.Rect.x, a.Transform.rect.Rect.y)
          (b.Transform.rect.Rect.x, b.Transform.rect.Rect.y))
      placement.Placement.placed
  in
  let fixed = ref [] in
  List.iter
    (fun (p : Transform.placed) ->
      let rec settle r =
        match
          List.find_opt
            (fun (q : Transform.placed) -> Rect.overlaps q.Transform.rect r)
            !fixed
        with
        | None -> r
        | Some q -> settle { r with Rect.x = Rect.x_max q.Transform.rect }
      in
      fixed := { p with Transform.rect = settle p.Transform.rect } :: !fixed)
    sorted;
  Compact.compact
    (Placement.make placement.Placement.circuit (List.rev !fixed))

let place ?(weights = Cost.default) ?(overlap_weight = 4.0) ?params ~rng
    circuit =
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  let die =
    int_of_float
      (1.4 *. sqrt (float_of_int (Netlist.Circuit.total_module_area circuit)))
  in
  let init =
    Array.init n (fun _ ->
        { x = Prelude.Rng.int rng (max 1 die);
          y = Prelude.Rng.int rng (max 1 die);
          rot = false })
  in
  let neighbor rng st =
    let st' = Array.copy st in
    let c = Prelude.Rng.int rng n in
    (match Prelude.Rng.int rng 10 with
    | 0 | 1 | 2 ->
        (* global jump *)
        st'.(c) <-
          { (st'.(c)) with
            x = Prelude.Rng.int rng (max 1 die);
            y = Prelude.Rng.int rng (max 1 die) }
    | 3 | 4 | 5 | 6 | 7 ->
        (* local jiggle *)
        let step () = Prelude.Rng.int_in rng (-(die / 10)) (die / 10) in
        st'.(c) <-
          { (st'.(c)) with
            x = max 0 (st'.(c).x + step ());
            y = max 0 (st'.(c).y + step ()) }
    | 8 -> st'.(c) <- { (st'.(c)) with rot = not st'.(c).rot }
    | _ ->
        (* swap two cells' positions *)
        let d = Prelude.Rng.int rng n in
        let a = st'.(c) and b = st'.(d) in
        st'.(c) <- { a with x = b.x; y = b.y };
        st'.(d) <- { b with x = a.x; y = a.y });
    st'
  in
  let cost st =
    let placement = Placement.make circuit (to_placed circuit st) in
    Cost.evaluate weights placement
    +. (overlap_weight
        *. float_of_int (total_overlap placement.Placement.placed))
  in
  let result = Anneal.Sa.run ~rng params { Anneal.Sa.init; neighbor; cost } in
  let raw = Placement.make circuit (to_placed circuit result.Anneal.Sa.best) in
  let raw_overlap = total_overlap raw.Placement.placed in
  {
    placement = legalize raw;
    raw_overlap;
    cost = result.Anneal.Sa.best_cost;
    sa_rounds = result.Anneal.Sa.rounds;
    evaluated = result.Anneal.Sa.evaluated;
  }
