(** Simulated-annealing placement over transitive closure graphs
    (survey §II, ref [15]) — the third non-slicing arm of the
    representation ablation. Limited to 62 modules (see {!Seqpair.Tcg}). *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** [telemetry] as in {!Sa_seqpair.place}: convergence samples,
    [sa.round] and [eval.cost] spans, and
    [sa.moves.tcg.*] / [sa.moves.rotation.*] tallies. *)
