(** Simulated-annealing placement over transitive closure graphs
    (survey §II, ref [15]) — the third non-slicing arm of the
    representation ablation. Limited to 62 modules (see {!Seqpair.Tcg}). *)

type state = { tcg : Seqpair.Tcg.t; rot : bool array }
(** One annealing state. Exposed so {!Portfolio} can build and
    convert chain states. *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val problem_of :
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  weights:Cost.weights ->
  Netlist.Circuit.t ->
  Telemetry.Sink.t ->
  Prelude.Rng.t ->
  state Anneal.Sa.problem
(** One annealing problem for one chain; see
    {!Sa_seqpair.problem_of}, including the per-chain [estimator]
    factory. The TCG arm evaluates through the list path, so a
    routability-weighted query copies the materialized geometry into
    per-chain arrays before estimating. *)

val evaluate : Netlist.Circuit.t -> state -> Placement.t
(** Materialize a state through the TCG packer. *)

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?workers:int ->
  ?chains:int ->
  ?mode:[ `Deterministic | `Async ] ->
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** [workers]/[chains]/[mode] enable {!Anneal.Parallel} multi-start
    annealing with the same semantics as {!Sa_seqpair.place} (the TCG
    problem is functional, so chains exchange whole graphs); without
    either parameter the classic single-chain path runs on [rng]
    directly.

    [validate] (default: the [ANALOG_VALIDATE=1] environment switch)
    audits the packed placement after every SA move and at every
    exchange — there is no separate structural TCG checker because
    {!Seqpair.Tcg} maintains closure by construction.

    [telemetry] as in {!Sa_seqpair.place}: convergence samples,
    [sa.round] and [eval.cost] spans, and
    [sa.moves.tcg.*] / [sa.moves.rotation.*] tallies. *)
