module G = Constraints.Symmetry_group

type state = { sp : Seqpair.Sp.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let dims_of circuit rot c =
  let w, h = Netlist.Circuit.dims circuit c in
  if rot.(c) then (h, w) else (w, h)

let flip_rotation rng groups rot =
  let n = Array.length rot in
  let c = Prelude.Rng.int rng n in
  let rot = Array.copy rot in
  let flip c = rot.(c) <- not rot.(c) in
  (match List.find_opt (fun g -> G.mem g c) groups with
  | Some g -> (
      match G.sym g c with
      | Some partner when partner <> c ->
          flip c;
          flip partner
      | Some _ | None -> flip c)
  | None -> flip c);
  rot

(* Sanitizer for ?validate mode: representation invariants plus a full
   audit of the exactly packed placement. Runs on the state produced by
   every SA move and on the global best at Parallel exchanges, and
   raises Analysis.Invariant.Violation with the diagnostic dump. *)
let audit ~groups circuit st =
  let n = Netlist.Circuit.size circuit in
  let rot_len =
    if Array.length st.rot = n then []
    else
      [
        Analysis.Diagnostic.error ~code:"AL101" ~subject:"rot"
          (Printf.sprintf "rotation array has length %d, circuit %d"
             (Array.length st.rot) n);
      ]
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_seqpair state"
    (rot_len
    @ Analysis.Invariant.check_sp ~n st.sp
    @ Analysis.Invariant.check_sf st.sp groups);
  let dims = dims_of circuit st.rot in
  let placed =
    match groups with
    | [] -> Seqpair.Pack.pack_fast st.sp dims
    | _ -> (
        match Seqpair.Symmetry.pack_symmetric st.sp dims groups with
        | Ok placed -> placed
        | Error msg ->
            Analysis.Invariant.raise_if_any ~context:"Sa_seqpair pack"
              [
                Analysis.Diagnostic.error ~code:"AL102"
                  ~subject:"symmetric pack" msg;
              ];
            assert false)
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_seqpair placement"
    (Analysis.Invariant.audit_placed ~groups ~n placed)

(* Materialization of the final best state, off the hot path. *)
let evaluate circuit groups st =
  let dims = dims_of circuit st.rot in
  let placed =
    match groups with
    | [] -> Seqpair.Pack.pack_fast st.sp dims
    | _ -> (
        match Seqpair.Symmetry.pack_symmetric st.sp dims groups with
        | Ok placed -> placed
        | Error msg -> invalid_arg ("Sa_seqpair: " ^ msg))
  in
  Placement.make circuit placed

(* One annealing problem per chain: its own initial code drawn from the
   chain's rng, its own evaluation arena (the arena is mutable and must
   never be shared across domains) and its own telemetry sink (ditto —
   Parallel hands each chain a private child). *)
let problem_of ?(validate = false) ?estimator ~weights ~groups circuit telemetry
    rng =
  let n = Netlist.Circuit.size circuit in
  (* the factory runs per chain: each arena gets a private estimator
     closure (they carry mutable scratch and chains cross domains) *)
  let arena = Eval.create ~telemetry ?estimator:(Option.map (fun f -> f ()) estimator) circuit in
  let mv = Telemetry.Sink.register_moves telemetry [| "seqpair"; "rotation" |] in
  let init_sp =
    match groups with
    | [] -> Seqpair.Sp.random rng n
    | _ -> Seqpair.Symmetry.random_feasible rng ~n groups
  in
  let init = { sp = init_sp; rot = Array.make n false } in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 8 then begin
      (* labels only — Moves.set draws nothing, trajectories unchanged *)
      Telemetry.Moves.set mv 0;
      let sp =
        match groups with
        | [] -> Seqpair.Moves.random_neighbor rng st.sp
        | _ -> Seqpair.Moves.random_neighbor_sf rng st.sp groups
      in
      { st with sp }
    end
    else begin
      Telemetry.Moves.set mv 1;
      { st with rot = flip_rotation rng groups st.rot }
    end
  in
  let cost st = Eval.cost_seqpair arena weights ~groups st.sp ~rot:st.rot in
  if not validate then { Anneal.Sa.init; neighbor; cost }
  else begin
    (* Debug mode: audit the initial state and the result of every
       move. When off, the closures above run untouched. *)
    audit ~groups circuit init;
    let neighbor rng st =
      let st' = neighbor rng st in
      audit ~groups circuit st';
      st'
    in
    { Anneal.Sa.init; neighbor; cost }
  end

let place ?(weights = Cost.default) ?params ?(groups = []) ?workers ?chains
    ?(mode = `Deterministic) ?validate ?estimator
    ?(telemetry = Telemetry.Sink.null) ~rng circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let problem =
        problem_of ~validate ?estimator ~weights ~groups circuit telemetry rng
      in
      let result = Anneal.Sa.run ~telemetry ~rng params problem in
      {
        placement = evaluate circuit groups result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      (* Seeds drawn from the caller's rng: deterministic for a fixed
         seed, distinct streams per chain. *)
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let check =
        if validate then Some (audit ~groups circuit) else None
      in
      let runner =
        match mode with
        | `Deterministic -> Anneal.Parallel.run
        | `Async -> Anneal.Parallel.run_async
      in
      let result =
        runner ?workers ?check ~telemetry ~engine:"sp" ~seeds params
          (problem_of ~validate ?estimator ~weights ~groups circuit)
      in
      {
        placement = evaluate circuit groups result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
