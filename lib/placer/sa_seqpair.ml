module G = Constraints.Symmetry_group

type state = { sp : Seqpair.Sp.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let dims_of circuit rot c =
  let w, h = Netlist.Circuit.dims circuit c in
  if rot.(c) then (h, w) else (w, h)

let flip_rotation rng groups rot =
  let n = Array.length rot in
  let c = Prelude.Rng.int rng n in
  let rot = Array.copy rot in
  let flip c = rot.(c) <- not rot.(c) in
  (match List.find_opt (fun g -> G.mem g c) groups with
  | Some g -> (
      match G.sym g c with
      | Some partner when partner <> c ->
          flip c;
          flip partner
      | Some _ | None -> flip c)
  | None -> flip c);
  rot

(* Materialization of the final best state, off the hot path. *)
let evaluate circuit groups st =
  let dims = dims_of circuit st.rot in
  let placed =
    match groups with
    | [] -> Seqpair.Pack.pack_fast st.sp dims
    | _ -> (
        match Seqpair.Symmetry.pack_symmetric st.sp dims groups with
        | Ok placed -> placed
        | Error msg -> invalid_arg ("Sa_seqpair: " ^ msg))
  in
  Placement.make circuit placed

(* One annealing problem per chain: its own initial code drawn from the
   chain's rng and its own evaluation arena (the arena is mutable and
   must never be shared across domains). *)
let problem_of ~weights ~groups circuit rng =
  let n = Netlist.Circuit.size circuit in
  let arena = Eval.create circuit in
  let init_sp =
    match groups with
    | [] -> Seqpair.Sp.random rng n
    | _ -> Seqpair.Symmetry.random_feasible rng ~n groups
  in
  let init = { sp = init_sp; rot = Array.make n false } in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 8 then
      let sp =
        match groups with
        | [] -> Seqpair.Moves.random_neighbor rng st.sp
        | _ -> Seqpair.Moves.random_neighbor_sf rng st.sp groups
      in
      { st with sp }
    else { st with rot = flip_rotation rng groups st.rot }
  in
  let cost st = Eval.cost_seqpair arena weights ~groups st.sp ~rot:st.rot in
  { Anneal.Sa.init; neighbor; cost }

let place ?(weights = Cost.default) ?params ?(groups = []) ?workers ?chains
    ~rng circuit =
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let problem = problem_of ~weights ~groups circuit rng in
      let result = Anneal.Sa.run ~rng params problem in
      {
        placement = evaluate circuit groups result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      (* Seeds drawn from the caller's rng: deterministic for a fixed
         seed, distinct streams per chain. *)
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let result =
        Anneal.Parallel.run ?workers ~seeds params
          (problem_of ~weights ~groups circuit)
      in
      {
        placement = evaluate circuit groups result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
