(* Fill a Telemetry.Qor.t from a finished placement: recompute the cost
   breakdown through the same Cost.terms the annealer summed, and run
   the independent constraint checkers so the record reflects verified
   properties, not the placer's own claims. *)

let check_to_violation ~group ~ckind ~members result =
  let count = match result with Ok _ -> 0 | Error _ -> 1 in
  { Telemetry.Qor.group; ckind; count; members }

let violations ?(groups = []) ?hierarchy p =
  let placed = p.Placement.placed in
  let sym =
    List.map
      (fun (g : Constraints.Symmetry_group.t) ->
        check_to_violation ~group:g.Constraints.Symmetry_group.name
          ~ckind:"symmetry"
          ~members:(Constraints.Symmetry_group.members g)
          (Constraints.Placement_check.symmetry ~group:g placed))
      groups
  in
  let hier =
    match hierarchy with
    | None -> []
    | Some h ->
        List.filter_map
          (fun (name, kind, members) ->
            match (kind : Netlist.Hierarchy.constraint_kind) with
            | Netlist.Hierarchy.Proximity ->
                Some
                  (check_to_violation ~group:name ~ckind:"proximity" ~members
                     (Constraints.Placement_check.proximity ~members placed))
            | Netlist.Hierarchy.Common_centroid ->
                Some
                  (check_to_violation ~group:name ~ckind:"common-centroid"
                     ~members
                     (Constraints.Placement_check.common_centroid ~members
                        placed))
            | Netlist.Hierarchy.Symmetry | Netlist.Hierarchy.Free -> None)
          (Netlist.Hierarchy.constraint_nodes h)
  in
  sym @ hier

let extract ?(weights = Cost.default) ?groups ?hierarchy ?outline ?move_rates
    ?routed_wl ?route_overflow ?route_failed ?route_iterations ~cost ~wall_s
    ~sa_rounds ~evaluated p =
  let width = Placement.width p and height = Placement.height p in
  let hpwl = Placement.hpwl p in
  let area = Placement.area p in
  let term_area, term_wirelength, term_aspect =
    Cost.terms weights ~width ~height ~hpwl
  in
  let dead_space_pct =
    if area = 0 then 0.0
    else float_of_int (Placement.dead_space p) /. float_of_int area *. 100.0
  in
  let outline_fit =
    match outline with
    | None -> None
    | Some (ow, oh) -> Some (width <= ow && height <= oh)
  in
  Telemetry.Qor.run
    ?outline_fit ?routed_wl ?route_overflow ?route_failed ?route_iterations
    ~violations:(violations ?groups ?hierarchy p)
    ?move_rates ~cost ~wall_s ~sa_rounds ~evaluated ~area ~width ~height ~hpwl
    ~term_area ~term_wirelength ~term_aspect ~dead_space_pct ()

let rects p =
  let c = p.Placement.circuit in
  let n = Netlist.Circuit.size c in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match Placement.rect_of p i with
    | None -> ()
    | Some (r : Geometry.Rect.t) ->
        out :=
          {
            Telemetry.Ledger.cell = c.Netlist.Circuit.modules.(i).Netlist.Circuit.name;
            x = r.Geometry.Rect.x;
            y = r.Geometry.Rect.y;
            w = r.Geometry.Rect.w;
            h = r.Geometry.Rect.h;
          }
          :: !out
  done;
  !out
