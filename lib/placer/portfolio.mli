(** Heterogeneous portfolio annealing: race the survey's topological
    representations — sequence-pair, flat B*-tree, TCG, and optionally
    the deterministic shape-function enumerator (§IV) — on one circuit
    under one cost scale, free-running on a persistent domain pool.

    The entrants trade solutions through an {!Anneal.Elite} pool whose
    currency is the placed list: each engine materializes its best to
    publish and re-encodes pulled placements into its own
    representation to adopt (strict improvement only, re-costed by its
    own evaluator). Losing engines — frozen chains, the one-shot
    enumerator — leave their final publishes in the pool as restart
    seeds for the survivors.

    The race is asynchronous by construction; results depend on domain
    interleaving except at [workers:1], where entrants run
    sequentially in order and the outcome is a pure function of the
    caller seed. For bit-identical CI placement, use the individual
    engines' deterministic mode instead. *)

type engine = Sp | Bstar | Tcg | Esf

val engine_name : engine -> string
(** "sp" | "bstar" | "tcg" | "esf" — the QoR/ledger tag. *)

type entrant = {
  engine : engine;
  seed : int;  (** chain seed drawn from the caller rng (0 for Esf) *)
  cost : float;  (** the entrant's own final best cost *)
  sa_rounds : int;
  evaluated : int;
}

type outcome = {
  placement : Placement.t;  (** globally best published solution *)
  cost : float;
  winner : engine;
      (** with [?bar]: the first entrant past the bar; otherwise the
          publisher of the best solution *)
  entrants : entrant list;  (** per-entrant results, race order *)
  evaluated : int;  (** total cost evaluations, adoptions included *)
}

val rot_of_placed :
  Netlist.Circuit.t -> Geometry.Transform.placed list -> bool array
(** Per-cell rotation flags recovered from placed rectangle dimensions
    (true where a rect's dims differ from the module's intrinsic
    ones). One of the placed-list re-encoders the race uses for elite
    adoption, exposed so the placement service can derive a cached
    topology from a winning placement. *)

val harmonize_rot :
  Constraints.Symmetry_group.t list -> bool array -> bool array
(** Copy each cell's rotation flag onto its higher-indexed symmetry
    partner, in place (symmetry pairs must rotate together); returns
    the same array. *)

val sp_of_placed : int -> Geometry.Transform.placed list -> Seqpair.Sp.t
(** Sequence-pair whose packing reproduces the placed list's relative
    order: cells sorted along the two diagonals of the doubled-center
    grid ([n] is the cell count). Not symmetric-feasible by itself —
    follow with [Seqpair.Symmetry.make_feasible] when groups apply. *)

val tree_of_placed : Geometry.Transform.placed list -> Bstar.Tree.t
(** B*-tree warm start from bottom-up rows of equal bottom edge. *)

val race :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?groups:Constraints.Symmetry_group.t list ->
  ?pool:Anneal.Pool.t ->
  ?workers:int ->
  ?chains:int ->
  ?engines:engine list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?bar:float ->
  ?exchange_every:int ->
  ?validate:bool ->
  ?feasibility_check:bool ->
  ?outline:int * int ->
  ?estimator:(unit -> Eval.estimator) ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** Race the portfolio. [chains] (default 1) annealing chains per
    engine; [workers] domains as {!Anneal.Parallel.default_workers}.
    [pool] races on a caller-owned {!Anneal.Pool} instead (left
    running afterwards; [workers] is then ignored in favor of the
    pool's width) — the placement service's miss path shares one pool
    across every request this way, so a request never pays a domain
    spawn.

    [engines] defaults to [Sp; Bstar] plus [Tcg] when the circuit has
    at most 62 modules and [Esf] when [hierarchy] is given and the
    circuit has at most 40 modules. With non-empty [groups] only the
    sequence-pair arm runs by default (the other representations are
    unconstrained, and a symmetric-infeasible placement must not win);
    [Esf] keeps hierarchical symmetry islands rigid and stays
    eligible. An explicit [Esf] entrant without [hierarchy], or an
    explicit empty list, raises [Invalid_argument].

    [bar] is the QoR bar: the first entrant to publish a cost at or
    below it wins and stops the race; without it every entrant runs to
    freezing and the best publish wins. [exchange_every] (default 32)
    is each chain's publish/pull slice length; non-positive disables
    mid-run exchange (independent restarts).

    [feasibility_check] (default false) runs the {!Analysis.Feasibility}
    prover before any entrant starts and raises
    {!Analysis.Invariant.Violation} with the proof diagnostics when the
    input is infeasible ([outline] is forwarded as the fixed-outline
    obligation) — every error the prover emits is engine-independent,
    so no entrant could have won.

    [estimator] is the per-chain congestion-estimator factory
    ({!Eval.estimator}); under a non-zero [weights.routability] every
    SA entrant (SP, B*-tree, TCG) anneals routability-driven. The
    one-shot Esf enumerator ignores it.

    [validate] (default the [ANALOG_VALIDATE=1] switch) runs each
    engine's own move-level sanitizer {e and} audits every published
    placement (overlap, coverage) on the publishing domain.

    [telemetry]: per-entrant child sinks (tid = entrant index + 1)
    carry the engine's usual streams plus ["chain.slice"] spans,
    ["chain.slice_us"] / ["chain.publishes"] / ["chain.pulls"]
    counters and one {!Telemetry.Qor.chain} record tagged with the
    engine name and mode ["async"]; children merge into [telemetry]
    after the race. *)
