type weights = {
  area : float;
  wirelength : float;
  aspect : float;
  target_aspect : float;
  routability : float;
}

let area_only =
  {
    area = 1.0;
    wirelength = 0.0;
    aspect = 0.0;
    target_aspect = 1.0;
    routability = 0.0;
  }

let default =
  {
    area = 1.0;
    wirelength = 0.2;
    aspect = 0.0;
    target_aspect = 1.0;
    routability = 0.0;
  }

(* The full weighted sum from already-computed scalars: the single
   definition both the list path ([evaluate]) and the allocation-free
   arena ({!Eval}) go through, so the two produce bit-identical costs.
   [terms] exposes the three addends separately for QoR breakdowns;
   [compose] is their left-to-right sum, preserving the original
   rounding. *)
let terms w ~width ~height ~hpwl =
  let area = float_of_int (width * height) in
  let aspect_term =
    if w.aspect = 0.0 then 0.0
    else
      let hgt = float_of_int height in
      if hgt = 0.0 then 0.0
      else
        let ratio = float_of_int width /. hgt in
        (* scale by area so the term is commensurate with the others *)
        w.aspect *. area *. abs_float (log (ratio /. w.target_aspect))
  in
  (w.area *. area, w.wirelength *. hpwl, aspect_term)

let compose w ~width ~height ~hpwl =
  let t_area, t_wl, t_aspect = terms w ~width ~height ~hpwl in
  t_area +. t_wl +. t_aspect

(* [route] is a raw congestion estimate (e.g. [Route.Estimate]); its
   addend is [routability *. route], so with the default zero weight —
   or a zero estimate — the product is +0.0 and the sum is bit-identical
   to the three-term [compose] every existing caller sees. *)
let compose_routed w ~route ~width ~height ~hpwl =
  compose w ~width ~height ~hpwl +. (w.routability *. route)

let evaluate w p =
  compose w ~width:(Placement.width p) ~height:(Placement.height p)
    ~hpwl:(Placement.hpwl p)
