open Geometry

type t = {
  circuit : Netlist.Circuit.t;
  placed : Transform.placed list;
  by_cell : Transform.placed option array;
}

(* [by_cell] indexes placements by cell id so [rect_of] (and through it
   the per-pin lookups of [hpwl]) is O(1) instead of an O(n) list scan.
   Out-of-range or duplicate cells keep the list as source of truth and
   are reported by [validate]. *)
let make circuit placed =
  let n = Netlist.Circuit.size circuit in
  let by_cell = Array.make n None in
  List.iter
    (fun (p : Transform.placed) ->
      if p.cell >= 0 && p.cell < n && by_cell.(p.cell) = None then
        by_cell.(p.cell) <- Some p)
    placed;
  { circuit; placed; by_cell }

let bbox t =
  match t.placed with
  | [] -> Rect.at_origin ~w:0 ~h:0
  | _ ->
      let b = Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) t.placed) in
      Rect.at_origin ~w:(Rect.x_max b) ~h:(Rect.y_max b)

let area t = Rect.area (bbox t)
let width t = (bbox t).Rect.w
let height t = (bbox t).Rect.h

let rect_of t m =
  if m < 0 || m >= Array.length t.by_cell then None
  else Option.map (fun (p : Transform.placed) -> p.rect) t.by_cell.(m)

let hpwl t =
  let center2 m = Option.map Rect.center2 (rect_of t m) in
  Netlist.Wirelength.hpwl t.circuit.Netlist.Circuit.nets ~center2

let dead_space t =
  area t - Outline.covered_area (List.map (fun p -> p.Transform.rect) t.placed)

let validate t =
  let n = Netlist.Circuit.size t.circuit in
  let counts = Array.make n 0 in
  let ( let* ) = Result.bind in
  let* () =
    List.fold_left
      (fun acc (p : Transform.placed) ->
        let* () = acc in
        if p.cell < 0 || p.cell >= n then
          Error (Printf.sprintf "cell %d out of range" p.cell)
        else begin
          counts.(p.cell) <- counts.(p.cell) + 1;
          if p.rect.Rect.x < 0 || p.rect.Rect.y < 0 then
            Error (Printf.sprintf "cell %d at negative coordinates" p.cell)
          else Ok ()
        end)
      (Ok ()) t.placed
  in
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i c -> if c <> 1 && !bad = None then bad := Some (i, c))
      counts;
    match !bad with
    | None -> Ok ()
    | Some (i, 0) -> Error (Printf.sprintf "module %d not placed" i)
    | Some (i, c) -> Error (Printf.sprintf "module %d placed %d times" i c)
  in
  match
    Constraints.Placement_check.overlap_free t.placed
  with
  | Ok () -> Ok ()
  | Error v ->
      Error (Format.asprintf "%a" Constraints.Placement_check.pp_violation v)

let pp ppf t =
  Format.fprintf ppf "@[<v>placement of %s: %dx%d area %d hpwl %.0f@]"
    t.circuit.Netlist.Circuit.name (width t) (height t) (area t) (hpwl t)
