(** Placement cost functions.

    The weighted sum the survey's stochastic placers minimize: chip
    area, total (weighted half-perimeter) net length, and an optional
    aspect-ratio term pulling toward a target width/height ratio. *)

type weights = {
  area : float;
  wirelength : float;
  aspect : float;  (** weight of the aspect-ratio deviation term *)
  target_aspect : float;  (** desired w/h, usually 1.0 *)
  routability : float;
      (** weight of the routing-congestion estimate (see
          [Route.Estimate] and {!Eval.create}'s [estimator]); 0 in
          {!default}, which keeps every cost bit-identical to the
          pre-routability three-term sum *)
}

val area_only : weights
val default : weights
(** area 1.0, wirelength 0.2, aspect 0, routability 0. *)

val evaluate : weights -> Placement.t -> float

val compose : weights -> width:int -> height:int -> hpwl:float -> float
(** The weighted sum from already-computed bounding-box extents and
    wirelength. [evaluate] and the allocation-free {!Eval} arena both
    delegate here, so list-based and array-based evaluation agree to
    the last bit. *)

val compose_routed :
  weights -> route:float -> width:int -> height:int -> hpwl:float -> float
(** {!compose} plus the routability addend [routability *. route],
    where [route] is a raw congestion estimate (see [Route.Estimate]
    and {!Eval.estimator}). Delegates to {!compose} for the first
    three terms, so with a zero [routability] weight or a zero
    estimate the sum is bit-identical to {!compose}. *)

val terms : weights -> width:int -> height:int -> hpwl:float -> float * float * float
(** The three addends of {!compose} — (area term, wirelength term,
    aspect term) — separately, for QoR cost breakdowns. [compose] is
    exactly their left-to-right sum. *)
