(* Heterogeneous portfolio annealing: race the survey's topological
   representations on one problem under one cost scale.

   Every entrant — sequence-pair arena chains, flat-B*-tree arena
   chains, TCG chains, and optionally the deterministic shape-function
   enumerator — runs free on the persistent domain pool and trades
   solutions through an elite pool whose currency is the placed list:
   the one form every representation can both produce (materialize its
   best) and consume (re-encode as a warm state). All annealing
   entrants cost through Cost.compose with the same weights (the arena
   evaluators are bit-identical to the list path, tested), and the
   enumerator's output is costed with the same weights at publish
   time, so elite costs are comparable across representations.

   Donation: when a chain pulls an elite entry that beats its own
   best, it re-encodes the placement into its own representation,
   re-costs it with its own evaluator (re-encoding is lossy — packing
   a converted code moves cells), and adopts only on strict
   improvement. A finished (frozen) entrant's final publish stays in
   the pool, so losing engines donate restart seeds to the survivors
   for free.

   With ?bar, the first entrant to publish a cost <= bar wins and
   raises the stop flag; everyone else exits at its next slice
   boundary. The race is free-running only: outcomes depend on domain
   interleaving (use the engines' deterministic mode when CI needs
   bit-identical results). With workers:1 the pool degenerates to
   sequential execution in entrant order, which is deterministic — the
   property the tests pin down. *)

module G = Constraints.Symmetry_group

type engine = Sp | Bstar | Tcg | Esf

let engine_name = function
  | Sp -> "sp"
  | Bstar -> "bstar"
  | Tcg -> "tcg"
  | Esf -> "esf"

type entrant = {
  engine : engine;
  seed : int;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

type outcome = {
  placement : Placement.t;
  cost : float;
  winner : engine;
  entrants : entrant list;
  evaluated : int;
}

(* ---- re-encoding converters ----------------------------------------

   placed list -> each representation, for elite adoption. Geometry
   drives the codes; centers are kept in doubled coordinates to stay
   in integers. *)

let rot_of_placed circuit placed =
  let n = Netlist.Circuit.size circuit in
  let rot = Array.make n false in
  List.iter
    (fun (p : Geometry.Transform.placed) ->
      let w, h = Netlist.Circuit.dims circuit p.cell in
      if p.rect.Geometry.Rect.w <> w || p.rect.Geometry.Rect.h <> h then
        rot.(p.cell) <- true)
    placed;
  rot

(* Symmetry pairs must rotate together; copy each cell's flag onto its
   partner so a donated rotation vector is pair-consistent. *)
let harmonize_rot groups rot =
  Array.iteri
    (fun c rc ->
      match List.find_opt (fun g -> G.mem g c) groups with
      | None -> ()
      | Some g -> (
          match G.sym g c with
          | Some partner when partner > c -> rot.(partner) <- rc
          | Some _ | None -> ()))
    rot;
  rot

(* Cells sorted along the two diagonals of the center grid: a before b
   in both sequences iff a is left of b, a after b in alpha but before
   in beta iff a is below b — exactly this repo's Sp convention. *)
let sp_of_placed n placed =
  let keys f =
    let a = Array.make n (0, 0) in
    List.iter
      (fun (p : Geometry.Transform.placed) ->
        let r = p.rect in
        let cx2 = (2 * r.Geometry.Rect.x) + r.Geometry.Rect.w in
        let cy2 = (2 * r.Geometry.Rect.y) + r.Geometry.Rect.h in
        a.(p.cell) <- (f cx2 cy2, p.cell))
      placed;
    Array.sort compare a;
    Seqpair.Perm.of_array (Array.map snd a)
  in
  let alpha = keys (fun cx cy -> cx - cy) in
  let beta = keys (fun cx cy -> cx + cy) in
  Seqpair.Sp.make ~alpha ~beta

(* Bottom-up rows of equal bottom edge. Each row is a left-skewed
   chain (cells side by side); the rows above hang off the row head's
   right child (stacked on top). Coarse, but a valid warm start whose
   packing roughly reproduces the donated geometry. *)
let tree_of_placed placed =
  let sorted =
    List.sort
      (fun (a : Geometry.Transform.placed) (b : Geometry.Transform.placed) ->
        compare
          (a.rect.Geometry.Rect.y, a.rect.Geometry.Rect.x, a.cell)
          (b.rect.Geometry.Rect.y, b.rect.Geometry.Rect.x, b.cell))
      placed
  in
  (* fold ascending (y, x) into rows; result lists the TOP row first,
     each row's cells rightmost-first *)
  let rows_top_first =
    List.fold_left
      (fun rows (p : Geometry.Transform.placed) ->
        match rows with
        | (y, cells) :: rest when y = p.rect.Geometry.Rect.y ->
            (y, p.cell :: cells) :: rest
        | _ -> (p.rect.Geometry.Rect.y, [ p.cell ]) :: rows)
      [] sorted
  in
  let rows_bottom_first =
    List.rev_map (fun (_, cells) -> List.rev cells) rows_top_first
  in
  (* Tree.row roots have no right child, so the record update never
     clobbers structure. *)
  let rec stack = function
    | [] -> invalid_arg "Portfolio: empty placement"
    | [ row ] -> Bstar.Tree.row row
    | row :: above ->
        { (Bstar.Tree.row row) with Bstar.Tree.right = Some (stack above) }
  in
  stack rows_bottom_first

(* ---- uniform entrant interface -------------------------------------

   Functional and in-place chains, plus the one-shot enumerator,
   behind one closure record the race loop can drive. *)

type runner = {
  r_step : int -> unit;  (* advance up to k rounds *)
  r_finished : unit -> bool;
  r_cost : unit -> float;
  r_placed : unit -> Geometry.Transform.placed list;
  r_adopt : Geometry.Transform.placed list -> unit;
  r_rounds : unit -> int;
  r_evaluated : unit -> int;
}

let steps ~finished ~step k =
  let budget = ref k in
  while !budget > 0 && not (finished ()) do
    step ();
    decr budget
  done

let sp_runner ~validate ?estimator ~weights ~groups ~params circuit tel seed =
  let n = Netlist.Circuit.size circuit in
  let rng = Prelude.Rng.create seed in
  let problem =
    Sa_seqpair.problem_of ~validate ?estimator ~weights ~groups circuit tel rng
  in
  let chain = Anneal.Sa.start ~telemetry:tel ~rng params problem in
  let extra = ref 0 in
  {
    r_step =
      (fun k ->
        steps k
          ~finished:(fun () -> Anneal.Sa.finished chain)
          ~step:(fun () -> Anneal.Sa.step_round chain));
    r_finished = (fun () -> Anneal.Sa.finished chain);
    r_cost = (fun () -> Anneal.Sa.best_cost chain);
    r_placed =
      (fun () ->
        (Sa_seqpair.evaluate circuit groups (Anneal.Sa.best chain))
          .Placement.placed);
    r_adopt =
      (fun placed ->
        let sp = sp_of_placed n placed in
        let sp =
          match groups with
          | [] -> sp
          | _ -> Seqpair.Symmetry.make_feasible sp groups
        in
        let rot = harmonize_rot groups (rot_of_placed circuit placed) in
        let st = { Sa_seqpair.sp; rot } in
        incr extra;
        Anneal.Sa.adopt chain ~state:st ~cost:(problem.Anneal.Sa.cost st));
    r_rounds = (fun () -> (Anneal.Sa.outcome_of_chain chain).Anneal.Sa.rounds);
    r_evaluated =
      (fun () ->
        (Anneal.Sa.outcome_of_chain chain).Anneal.Sa.evaluated + !extra);
  }

let bstar_runner ~validate ?estimator ~weights ~params circuit tel seed =
  let rng = Prelude.Rng.create seed in
  let tbl = Sa_bstar.dims_table circuit in
  let problem =
    Sa_bstar.problem_of ~validate ?estimator ~weights circuit tel rng
  in
  let chain = Anneal.Sa.mstart ~telemetry:tel ~rng params problem in
  let extra = ref 0 in
  {
    r_step =
      (fun k ->
        steps k
          ~finished:(fun () -> Anneal.Sa.mfinished chain)
          ~step:(fun () -> Anneal.Sa.mstep_round chain));
    r_finished = (fun () -> Anneal.Sa.mfinished chain);
    r_cost = (fun () -> Anneal.Sa.mbest_cost chain);
    r_placed =
      (fun () ->
        (Sa_bstar.evaluate circuit tbl (Anneal.Sa.mbest chain))
          .Placement.placed);
    r_adopt =
      (fun placed ->
        let st =
          {
            Sa_bstar.flat = Bstar.Flat.of_tree (tree_of_placed placed);
            rot = rot_of_placed circuit placed;
            last = Sa_bstar.L_none;
          }
        in
        incr extra;
        Anneal.Sa.madopt chain ~state:st ~cost:(problem.Anneal.Sa.cost st));
    r_rounds =
      (fun () -> (Anneal.Sa.moutcome_of_chain chain).Anneal.Sa.rounds);
    r_evaluated =
      (fun () ->
        (Anneal.Sa.moutcome_of_chain chain).Anneal.Sa.evaluated + !extra);
  }

let tcg_runner ~validate ?estimator ~weights ~params circuit tel seed =
  let n = Netlist.Circuit.size circuit in
  let rng = Prelude.Rng.create seed in
  let problem =
    Sa_tcg.problem_of ~validate ?estimator ~weights circuit tel rng
  in
  let chain = Anneal.Sa.start ~telemetry:tel ~rng params problem in
  let extra = ref 0 in
  {
    r_step =
      (fun k ->
        steps k
          ~finished:(fun () -> Anneal.Sa.finished chain)
          ~step:(fun () -> Anneal.Sa.step_round chain));
    r_finished = (fun () -> Anneal.Sa.finished chain);
    r_cost = (fun () -> Anneal.Sa.best_cost chain);
    r_placed =
      (fun () ->
        (Sa_tcg.evaluate circuit (Anneal.Sa.best chain)).Placement.placed);
    r_adopt =
      (fun placed ->
        let st =
          {
            Sa_tcg.tcg = Seqpair.Tcg.of_seqpair (sp_of_placed n placed);
            rot = rot_of_placed circuit placed;
          }
        in
        incr extra;
        Anneal.Sa.adopt chain ~state:st ~cost:(problem.Anneal.Sa.cost st));
    r_rounds = (fun () -> (Anneal.Sa.outcome_of_chain chain).Anneal.Sa.rounds);
    r_evaluated =
      (fun () ->
        (Anneal.Sa.outcome_of_chain chain).Anneal.Sa.evaluated + !extra);
  }

(* The deterministic enumerator: one shot, no adoption (it cannot
   restart), publishes its result under the shared cost scale. *)
let esf_runner ~weights circuit hierarchy tel =
  let result = ref None in
  let cost = ref infinity in
  {
    r_step =
      (fun _ ->
        if Option.is_none !result then begin
          let r =
            Telemetry.Sink.time tel "esf.place" (fun () ->
                Shapefn.Combine.place ~mode:Shapefn.Combine.Esf circuit
                  hierarchy)
          in
          cost :=
            Cost.evaluate weights
              (Placement.make circuit r.Shapefn.Combine.placed);
          result := Some r.Shapefn.Combine.placed
        end);
    r_finished = (fun () -> Option.is_some !result);
    r_cost = (fun () -> !cost);
    r_placed =
      (fun () -> match !result with Some p -> p | None -> []);
    r_adopt = (fun _ -> ());
    r_rounds = (fun () -> 0);
    r_evaluated = (fun () -> if Option.is_none !result then 0 else 1);
  }

(* ---- the race ------------------------------------------------------ *)

let default_engines ~n ~groups ~hierarchy =
  let sa =
    match groups with
    | [] -> Sp :: Bstar :: (if n <= 62 then [ Tcg ] else [])
    | _ ->
        (* only the sequence-pair arm explores the symmetric-feasible
           subspace; racing unconstrained engines against it would
           let a violating placement win *)
        [ Sp ]
  in
  sa @ (match hierarchy with Some _ when n <= 40 -> [ Esf ] | _ -> [])

let race ?(weights = Cost.default) ?params ?(groups = []) ?pool ?workers
    ?(chains = 1) ?engines ?hierarchy ?bar ?(exchange_every = 32) ?validate
    ?(feasibility_check = false) ?outline ?estimator
    ?(telemetry = Telemetry.Sink.null) ~rng circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  if n = 0 then invalid_arg "Portfolio.race: empty circuit";
  if feasibility_check then begin
    (* prove infeasibility before burning any annealing rounds; the
       prover's errors are engine-independent, so no entrant could
       have succeeded *)
    let proofs =
      Analysis.Feasibility.check ~groups ?hierarchy ?outline circuit
      |> List.filter (fun (d : Analysis.Diagnostic.t) ->
             d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
    in
    Analysis.Invariant.raise_if_any ~context:"Portfolio.race: infeasible input"
      proofs
  end;
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  let engines =
    match engines with
    | Some [] -> invalid_arg "Portfolio.race: empty engine list"
    | Some es -> es
    | None -> default_engines ~n ~groups ~hierarchy
  in
  let chains = max 1 chains in
  let spec =
    Array.of_list
      (List.concat_map
         (function
           | Esf -> [ Esf ]  (* deterministic: one entrant is enough *)
           | e -> List.init chains (fun _ -> e))
         engines)
  in
  let k = Array.length spec in
  (* seeds drawn from the caller's rng in entrant order: deterministic
     for a fixed caller seed *)
  let seeds = Array.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
  let workers =
    max 1
      (min k
         (match workers with
         | Some w -> w
         | None -> Anneal.Parallel.default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  let tels =
    Array.init k (fun i -> Telemetry.Sink.child telemetry ~tid:(i + 1))
  in
  let slice_us =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.slice_us")
  in
  let publishes =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.publishes")
  in
  let pulls =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.pulls")
  in
  let runners =
    Array.init k (fun i ->
        match spec.(i) with
        | Sp ->
            sp_runner ~validate ?estimator ~weights ~groups ~params circuit
              tels.(i) seeds.(i)
        | Bstar ->
            bstar_runner ~validate ?estimator ~weights ~params circuit tels.(i)
              seeds.(i)
        | Tcg ->
            tcg_runner ~validate ?estimator ~weights ~params circuit tels.(i)
              seeds.(i)
        | Esf -> (
            match hierarchy with
            | Some h -> esf_runner ~weights circuit h tels.(i)
            | None ->
                invalid_arg "Portfolio.race: Esf entrant needs ?hierarchy"))
  in
  let audit_published =
    if validate then fun placed ->
      Analysis.Invariant.raise_if_any ~context:"Portfolio publish"
        (Analysis.Invariant.audit_placed ~n placed)
    else fun _ -> ()
  in
  let elite = Anneal.Elite.create ~stripes:(min 8 k) () in
  let stop = Atomic.make false in
  let first_past = Atomic.make (-1) in
  (* reuse a caller-owned pool when given (the placement service keeps
     one across requests), else create and tear down a private one *)
  (match pool with
   | Some p -> fun f -> f p
   | None -> fun f -> Anneal.Pool.with_pool ~workers f)
    (fun pool ->
      let job i () =
        let r = runners.(i) in
        let last_published = ref infinity in
        let publish () =
          let c = r.r_cost () in
          if c < !last_published then begin
            last_published := c;
            let placed = r.r_placed () in
            audit_published placed;
            ignore (Anneal.Elite.publish elite ~origin:i ~cost:c placed);
            Telemetry.Counter.incr publishes.(i);
            match bar with
            | Some b when c <= b ->
                ignore (Atomic.compare_and_set first_past (-1) i);
                Atomic.set stop true
            | _ -> ()
          end
        in
        while
          (not (r.r_finished ()))
          && (not (Atomic.get stop))
          && not (Anneal.Pool.failed pool)
        do
          let t0 = Telemetry.Sink.span_begin tels.(i) in
          r.r_step slice;
          let t1 = Telemetry.Sink.lap tels.(i) "chain.slice" t0 in
          Telemetry.Counter.add slice_us.(i)
            (int_of_float ((t1 -. t0) *. 1e6));
          publish ();
          match Anneal.Elite.pull elite ~than:(r.r_cost ()) with
          | Some e ->
              r.r_adopt e.Anneal.Elite.state;
              Telemetry.Counter.incr pulls.(i)
          | None -> ()
        done;
        publish ()
      in
      for i = 0 to k - 1 do
        Anneal.Pool.submit pool (job i)
      done;
      Anneal.Pool.drain pool);
  let entrants =
    List.init k (fun i ->
        {
          engine = spec.(i);
          seed = seeds.(i);
          cost = runners.(i).r_cost ();
          sa_rounds = runners.(i).r_rounds ();
          evaluated = runners.(i).r_evaluated ();
        })
  in
  List.iteri
    (fun i (e : entrant) ->
      Anneal.Parallel.record_chain_qor tels.(i)
        ~engine:(engine_name e.engine) ~mode:"async" ~best_cost:e.cost
        ~rounds:e.sa_rounds ~evaluated:e.evaluated ())
    entrants;
  Array.iter (Telemetry.Sink.absorb telemetry) tels;
  match Anneal.Elite.best elite with
  | None ->
      (* every entrant was stopped before its first publish — cannot
         happen: the stop flag is only ever raised after a publish *)
      invalid_arg "Portfolio.race: no entrant published a solution"
  | Some best ->
      let widx =
        match Atomic.get first_past with
        | -1 -> best.Anneal.Elite.origin
        | i -> i
      in
      {
        placement = Placement.make circuit best.Anneal.Elite.state;
        cost = best.Anneal.Elite.cost;
        winner = spec.(widx);
        entrants;
        evaluated =
          List.fold_left (fun acc (e : entrant) -> acc + e.evaluated) 0 entrants;
      }
