type state = { tree : Bstar.Tree.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let dims_of circuit st c =
  let w, h = Netlist.Circuit.dims circuit c in
  if st.rot.(c) then (h, w) else (w, h)

let evaluate circuit st =
  Placement.make circuit (Bstar.Tree.pack st.tree (dims_of circuit st))

(* Sanitizer for ?validate mode: tree well-formedness plus a full audit
   of the contour-packed placement; see Sa_seqpair.audit. *)
let audit circuit st =
  let n = Netlist.Circuit.size circuit in
  let rot_len =
    if Array.length st.rot = n then []
    else
      [
        Analysis.Diagnostic.error ~code:"AL101" ~subject:"rot"
          (Printf.sprintf "rotation array has length %d, circuit %d"
             (Array.length st.rot) n);
      ]
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_bstar state"
    (rot_len @ Analysis.Invariant.check_bstar ~n st.tree);
  Analysis.Invariant.raise_if_any ~context:"Sa_bstar placement"
    (Analysis.Invariant.audit_placed ~n
       (Bstar.Tree.pack st.tree (dims_of circuit st)))

let problem_of ?(validate = false) ~weights circuit rng =
  let n = Netlist.Circuit.size circuit in
  let arena = Eval.create circuit in
  let init =
    { tree = Bstar.Tree.random rng (List.init n Fun.id);
      rot = Array.make n false }
  in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 7 then
      { st with tree = Bstar.Perturb.random rng st.tree }
    else begin
      let rot = Array.copy st.rot in
      let c = Prelude.Rng.int rng n in
      rot.(c) <- not rot.(c);
      { st with rot }
    end
  in
  let cost st =
    Eval.cost_placed arena weights (Bstar.Tree.pack st.tree (dims_of circuit st))
  in
  if not validate then { Anneal.Sa.init; neighbor; cost }
  else begin
    audit circuit init;
    let neighbor rng st =
      let st' = neighbor rng st in
      audit circuit st';
      st'
    in
    { Anneal.Sa.init; neighbor; cost }
  end

let place ?(weights = Cost.default) ?params ?workers ?chains ?validate ~rng
    circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let result =
        Anneal.Sa.run ~rng params (problem_of ~validate ~weights circuit rng)
      in
      {
        placement = evaluate circuit result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let check = if validate then Some (audit circuit) else None in
      let result =
        Anneal.Parallel.run ?workers ?check ~seeds params
          (problem_of ~validate ~weights circuit)
      in
      {
        placement = evaluate circuit result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
