(* The B*-tree annealer on the in-place engine: one flat-array tree and
   rotation vector per chain, mutated by O(1) perturbations and
   reverted in O(1) on rejection ({!Anneal.Sa.mproblem}), with costs
   through the arena's contour packer ({!Eval.cost_bstar}). Nothing on
   the hot path allocates. The pointer {!Bstar.Tree} representation is
   only used to seed the initial state and to materialize the final
   best placement. *)

type state = {
  flat : Bstar.Flat.t;
  rot : bool array;
  mutable last : last_move;  (* what [propose] did, for [undo] *)
}

and last_move = L_none | L_tree of Bstar.Flat.undo | L_rot of int

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

(* Per-cell dimensions for both orientations, read once from the
   circuit: row 0 unrotated, row 1 rotated. *)
let dims_table circuit =
  let n = Netlist.Circuit.size circuit in
  let tbl = Array.init 2 (fun _ -> Array.make (max 1 n) (0, 0)) in
  for c = 0 to n - 1 do
    let w, h = Netlist.Circuit.dims circuit c in
    tbl.(0).(c) <- (w, h);
    tbl.(1).(c) <- (h, w)
  done;
  tbl

let dims_of tbl rot c = tbl.(if rot.(c) then 1 else 0).(c)

let evaluate circuit tbl st =
  let tree = Bstar.Flat.to_tree st.flat in
  Placement.make circuit (Bstar.Tree.pack tree (dims_of tbl st.rot))

(* Sanitizer for ?validate mode: flat-tree well-formedness plus a full
   audit of the contour-packed placement; see Sa_seqpair.audit. *)
let audit circuit tbl st =
  let n = Netlist.Circuit.size circuit in
  let len_errs =
    (if Array.length st.rot = n then []
     else
       [
         Analysis.Diagnostic.error ~code:"AL101" ~subject:"rot"
           (Printf.sprintf "rotation array has length %d, circuit %d"
              (Array.length st.rot) n);
       ])
    @
    if Bstar.Flat.size st.flat = n then []
    else
      [
        Analysis.Diagnostic.error ~code:"AL103" ~subject:"flat b*-tree"
          (Printf.sprintf "tree has %d nodes, circuit %d"
             (Bstar.Flat.size st.flat) n);
      ]
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_bstar state"
    (len_errs @ Analysis.Invariant.check_flat st.flat);
  let tree = Bstar.Flat.to_tree st.flat in
  Analysis.Invariant.raise_if_any ~context:"Sa_bstar placement"
    (Analysis.Invariant.audit_placed ~n
       (Bstar.Tree.pack tree (dims_of tbl st.rot)))

let problem_of ?(validate = false) ?estimator ~weights circuit telemetry rng =
  let n = Netlist.Circuit.size circuit in
  (* per-chain estimator closure, as Sa_seqpair.problem_of *)
  let arena = Eval.create ~telemetry ?estimator:(Option.map (fun f -> f ()) estimator) circuit in
  let mv = Telemetry.Sink.register_moves telemetry [| "tree"; "rotation" |] in
  let tbl = dims_table circuit in
  let state =
    {
      flat = Bstar.Flat.of_tree (Bstar.Tree.random rng (List.init n Fun.id));
      rot = Array.make n false;
      last = L_none;
    }
  in
  (* 70/30 structural/rotation mix, as the list-path annealer used *)
  let propose rng st =
    if Prelude.Rng.int rng 10 < 7 then begin
      Telemetry.Moves.set mv 0;
      st.last <- L_tree (Bstar.Flat.perturb rng st.flat)
    end
    else begin
      Telemetry.Moves.set mv 1;
      let c = Prelude.Rng.int rng n in
      st.rot.(c) <- not st.rot.(c);
      st.last <- L_rot c
    end
  in
  let undo st =
    (match st.last with
    | L_none -> ()
    | L_tree u -> Bstar.Flat.undo st.flat u
    | L_rot c -> st.rot.(c) <- not st.rot.(c));
    st.last <- L_none
  in
  let cost st = Eval.cost_bstar arena weights st.flat ~rot:st.rot in
  let copy st =
    { flat = Bstar.Flat.copy st.flat; rot = Array.copy st.rot; last = L_none }
  in
  let blit ~src ~dst =
    Bstar.Flat.blit ~src:src.flat ~dst:dst.flat;
    Array.blit src.rot 0 dst.rot 0 n;
    dst.last <- L_none
  in
  if not validate then { Anneal.Sa.state; propose; undo; cost; copy; blit }
  else begin
    audit circuit tbl state;
    let propose rng st =
      propose rng st;
      audit circuit tbl st
    in
    { Anneal.Sa.state; propose; undo; cost; copy; blit }
  end

let place ?(weights = Cost.default) ?params ?workers ?chains
    ?(mode = `Deterministic) ?validate ?estimator
    ?(telemetry = Telemetry.Sink.null) ~rng circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  let tbl = dims_table circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let result =
        Anneal.Sa.run_mutable ~telemetry ~rng params
          (problem_of ~validate ?estimator ~weights circuit telemetry rng)
      in
      {
        placement = evaluate circuit tbl result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let check = if validate then Some (audit circuit tbl) else None in
      let runner =
        match mode with
        | `Deterministic -> Anneal.Parallel.run_mutable
        | `Async -> Anneal.Parallel.run_mutable_async
      in
      let result =
        runner ?workers ?check ~telemetry ~engine:"bstar" ~seeds params
          (problem_of ~validate ?estimator ~weights circuit)
      in
      {
        placement = evaluate circuit tbl result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
