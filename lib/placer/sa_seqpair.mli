(** Simulated-annealing placement over sequence-pairs (survey §II).

    The state is a sequence-pair plus per-cell rotation flags. With
    symmetry groups the exploration is restricted to the
    symmetric-feasible subspace: the initial code is repaired to S-F,
    every move applies its symmetric companion (see {!Seqpair.Moves}),
    rotations flip both cells of a pair together, and evaluation uses
    the exact symmetric packing, so every visited placement keeps all
    groups mirror-symmetric.

    Candidate costs are computed through the allocation-free
    {!Eval} arena; only the final best placement is materialized. *)

type state = { sp : Seqpair.Sp.t; rot : bool array }
(** One annealing state: a sequence-pair plus per-cell rotation flags.
    Exposed so {!Portfolio} can build and convert chain states. *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;  (** rounds of the winning chain *)
  evaluated : int;  (** total cost evaluations, all chains *)
}

val problem_of :
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  weights:Cost.weights ->
  groups:Constraints.Symmetry_group.t list ->
  Netlist.Circuit.t ->
  Telemetry.Sink.t ->
  Prelude.Rng.t ->
  state Anneal.Sa.problem
(** One annealing problem for one chain: its own initial code drawn
    from [rng], its own {!Eval} arena, its own move tallies in the
    given sink. This is what {!place} hands to {!Anneal.Parallel};
    {!Portfolio} uses it to enter sequence-pair chains in a race.
    [estimator] is a factory for per-chain congestion estimators
    (called once here, so every chain owns its scratch — see
    {!Eval.estimator}); it only affects costs under a non-zero
    [weights.routability]. *)

val evaluate :
  Netlist.Circuit.t ->
  Constraints.Symmetry_group.t list ->
  state ->
  Placement.t
(** Materialize a state with the exact packer (off the hot path). *)

val audit :
  groups:Constraints.Symmetry_group.t list ->
  Netlist.Circuit.t ->
  state ->
  unit
(** The [?validate] sanitizer: representation invariants, symmetric
    feasibility and a full placement audit; raises
    {!Analysis.Invariant.Violation} on the first corrupted state. *)

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?groups:Constraints.Symmetry_group.t list ->
  ?workers:int ->
  ?chains:int ->
  ?mode:[ `Deterministic | `Async ] ->
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** Default weights {!Cost.default}; default SA parameters scale with
    the circuit size. [estimator] makes the anneal routability-driven
    under a non-zero [weights.routability] — see {!problem_of}.

    When [workers] or [chains] is given, runs {!Anneal.Parallel}
    multi-start annealing: [chains] independent seeded chains (default
    [workers], default {!Anneal.Parallel.default_workers}) spread over
    [workers] domains with periodic best-exchange. Chain seeds are
    drawn from [rng], so a fixed caller seed gives identical results
    for any [workers] value. Without either parameter the classic
    single-chain path runs on [rng] directly.

    [mode] (default [`Deterministic]) selects the parallel exchange
    discipline: [`Deterministic] is the worker-count-invariant
    barrier schedule above; [`Async] is
    {!Anneal.Parallel.run_async} — free-running chains coupled
    through an elite pool, faster on real cores but dependent on
    domain interleaving. Ignored on the single-chain path.

    [validate] (default: the [ANALOG_VALIDATE=1] environment switch,
    see {!Analysis.Invariant}) audits every SA move and every parallel
    exchange: sequence-pair consistency, symmetric-feasibility of all
    groups, and a full audit of the exactly packed placement (overlap,
    quadrant, mirror symmetry), raising
    {!Analysis.Invariant.Violation} with a diagnostic dump on the
    first corrupted state. Off, the annealer runs the exact same
    closures as before — zero overhead.

    [telemetry] (default {!Telemetry.Sink.null}) collects the full
    pipeline picture: SA convergence samples and [sa.round] spans,
    per-evaluation [eval.pack]/[eval.hpwl]/[eval.compose] spans and
    packer counters from the arena, and per-move-class
    [sa.moves.seqpair.*] / [sa.moves.rotation.*] accept/reject
    tallies. Telemetry never draws from [rng], so results are
    bit-identical with it on or off (tested). *)
