(** Simulated-annealing placement over sequence-pairs (survey §II).

    The state is a sequence-pair plus per-cell rotation flags. With
    symmetry groups the exploration is restricted to the
    symmetric-feasible subspace: the initial code is repaired to S-F,
    every move applies its symmetric companion (see {!Seqpair.Moves}),
    rotations flip both cells of a pair together, and evaluation uses
    the exact symmetric packing, so every visited placement keeps all
    groups mirror-symmetric.

    Candidate costs are computed through the allocation-free
    {!Eval} arena; only the final best placement is materialized. *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;  (** rounds of the winning chain *)
  evaluated : int;  (** total cost evaluations, all chains *)
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?groups:Constraints.Symmetry_group.t list ->
  ?workers:int ->
  ?chains:int ->
  ?validate:bool ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** Default weights {!Cost.default}; default SA parameters scale with
    the circuit size.

    When [workers] or [chains] is given, runs {!Anneal.Parallel}
    multi-start annealing: [chains] independent seeded chains (default
    [workers], default {!Anneal.Parallel.default_workers}) spread over
    [workers] domains with periodic best-exchange. Chain seeds are
    drawn from [rng], so a fixed caller seed gives identical results
    for any [workers] value. Without either parameter the classic
    single-chain path runs on [rng] directly.

    [validate] (default: the [ANALOG_VALIDATE=1] environment switch,
    see {!Analysis.Invariant}) audits every SA move and every parallel
    exchange: sequence-pair consistency, symmetric-feasibility of all
    groups, and a full audit of the exactly packed placement (overlap,
    quadrant, mirror symmetry), raising
    {!Analysis.Invariant.Violation} with a diagnostic dump on the
    first corrupted state. Off, the annealer runs the exact same
    closures as before — zero overhead.

    [telemetry] (default {!Telemetry.Sink.null}) collects the full
    pipeline picture: SA convergence samples and [sa.round] spans,
    per-evaluation [eval.pack]/[eval.hpwl]/[eval.compose] spans and
    packer counters from the arena, and per-move-class
    [sa.moves.seqpair.*] / [sa.moves.rotation.*] accept/reject
    tallies. Telemetry never draws from [rng], so results are
    bit-identical with it on or off (tested). *)
