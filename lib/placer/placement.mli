(** Placements of a circuit: the common result type of every placer. *)

type t = private {
  circuit : Netlist.Circuit.t;
  placed : Geometry.Transform.placed list;
  by_cell : Geometry.Transform.placed option array;
      (** cell id -> placement, for O(1) [rect_of]; maintained by
          [make], hence the private row *)
}

val make : Netlist.Circuit.t -> Geometry.Transform.placed list -> t

val bbox : t -> Geometry.Rect.t
(** Bounding box anchored at the origin (covers (0,0) .. max extents). *)

val area : t -> int
val width : t -> int
val height : t -> int

val hpwl : t -> float
(** Half-perimeter wirelength over the circuit's nets. *)

val dead_space : t -> int
(** Bounding-box area not covered by modules. *)

val rect_of : t -> int -> Geometry.Rect.t option
(** Placed rectangle of a module. *)

val validate : t -> (unit, string) result
(** Every module placed exactly once, inside the first quadrant, with
    no overlaps. *)

val pp : Format.formatter -> t -> unit
