(** Simulated-annealing placement over flat B*-trees (survey §III,
    ref [5]).

    The unconstrained counterpart of {!Bstar.Hbstar}: one B*-tree over
    all modules plus rotation flags. Used as the B*-tree arm of the
    representation ablation (experiment E10). *)

type state = {
  flat : Bstar.Flat.t;
  rot : bool array;
  mutable last : last_move;  (** what [propose] did, for [undo] *)
}
(** One in-place annealing state. Exposed so {!Portfolio} can build
    and convert chain states; construct fresh states with
    [last = L_none]. *)

and last_move = L_none | L_tree of Bstar.Flat.undo | L_rot of int

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val dims_table : Netlist.Circuit.t -> (int * int) array array
(** Per-cell oriented dimensions, read once: row 0 unrotated, row 1
    rotated — the [tbl] argument of {!evaluate}. *)

val problem_of :
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  weights:Cost.weights ->
  Netlist.Circuit.t ->
  Telemetry.Sink.t ->
  Prelude.Rng.t ->
  state Anneal.Sa.mproblem
(** One in-place annealing problem for one chain (private flat tree,
    rotation vector and {!Eval} arena); see
    {!Sa_seqpair.problem_of}, including the per-chain [estimator]
    factory semantics. *)

val evaluate : Netlist.Circuit.t -> (int * int) array array -> state -> Placement.t
(** Materialize a state through the pointer-tree packer. *)

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?workers:int ->
  ?chains:int ->
  ?mode:[ `Deterministic | `Async ] ->
  ?validate:bool ->
  ?estimator:(unit -> Eval.estimator) ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** The annealer runs on flat-array trees ({!Bstar.Flat}) under the
    in-place engine ({!Anneal.Sa.run_mutable}): O(1) perturbations,
    O(1) undo of rejected moves, and allocation-free contour packing
    through the {!Eval} arena ({!Eval.cost_bstar}). [workers]/[chains]
    enable {!Anneal.Parallel} multi-start annealing with the same
    semantics as {!Sa_seqpair.place}, and [mode] selects the
    deterministic barrier schedule or the free-running elite-pool
    exchange ({!Anneal.Parallel.run_mutable_async}), as there.

    [validate] (default: the [ANALOG_VALIDATE=1] environment switch,
    see {!Analysis.Invariant}) audits the flat tree
    ({!Analysis.Invariant.check_flat}) and its packed placement after
    every SA move and at every parallel exchange, raising
    {!Analysis.Invariant.Violation} with a diagnostic dump on the
    first corrupted state. Off, the annealer runs the exact same
    closures as before — zero overhead.

    [telemetry] as in {!Sa_seqpair.place}: convergence samples,
    [sa.round] / [eval.*] spans, [bstar.packs] and
    [sa.moves.tree.*] / [sa.moves.rotation.*] tallies; never draws
    from [rng]. *)
