(** Simulated-annealing placement over flat B*-trees (survey §III,
    ref [5]).

    The unconstrained counterpart of {!Bstar.Hbstar}: one B*-tree over
    all modules plus rotation flags. Used as the B*-tree arm of the
    representation ablation (experiment E10). *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?workers:int ->
  ?chains:int ->
  ?validate:bool ->
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** The annealer runs on flat-array trees ({!Bstar.Flat}) under the
    in-place engine ({!Anneal.Sa.run_mutable}): O(1) perturbations,
    O(1) undo of rejected moves, and allocation-free contour packing
    through the {!Eval} arena ({!Eval.cost_bstar}). [workers]/[chains]
    enable {!Anneal.Parallel} multi-start annealing with the same
    semantics as {!Sa_seqpair.place}.

    [validate] (default: the [ANALOG_VALIDATE=1] environment switch,
    see {!Analysis.Invariant}) audits the flat tree
    ({!Analysis.Invariant.check_flat}) and its packed placement after
    every SA move and at every parallel exchange, raising
    {!Analysis.Invariant.Violation} with a diagnostic dump on the
    first corrupted state. Off, the annealer runs the exact same
    closures as before — zero overhead.

    [telemetry] as in {!Sa_seqpair.place}: convergence samples,
    [sa.round] / [eval.*] spans, [bstar.packs] and
    [sa.moves.tree.*] / [sa.moves.rotation.*] tallies; never draws
    from [rng]. *)
