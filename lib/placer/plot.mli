(** Rendering placements for inspection.

    ASCII art for terminals (the benchmark harness prints the paper's
    figure examples this way) and standalone SVG for everything
    larger. *)

val device_labels : Placement.t -> int -> string
(** Module names with the SPICE element prefix dropped when every name
    shares it (so "MP1"/"MN3" render as "P1"/"N3" rather than all
    'M'). *)

val ascii : ?width:int -> ?labels:(int -> string) -> Placement.t -> string
(** Scale the placement to at most [width] text columns (default 72)
    and draw each module as a box filled with its label's first
    character. [labels] defaults to the circuit's module names. *)

val svg : ?scale:float -> ?labels:(int -> string) -> Placement.t -> string
(** A standalone SVG document. [scale] converts grid units to SVG user
    units (default 0.25). *)

val write_svg : path:string -> ?scale:float -> Placement.t -> unit

val svg_full :
  ?scale:float ->
  ?rings:Geometry.Rect.t list ->
  ?power:(int * int) list list ->
  ?wires:(int * int) list list ->
  Placement.t ->
  string
(** Like {!svg} plus guard-ring segments (hatched), power-rail
    segments ([power], drawn first as thick gray strokes so the
    supply comb sits under the signals), and routed wires (colored
    polylines). All coordinates are layout units. *)

val write_svg_full :
  path:string ->
  ?scale:float ->
  ?rings:Geometry.Rect.t list ->
  ?power:(int * int) list list ->
  ?wires:(int * int) list list ->
  Placement.t ->
  unit

val ascii_shape_fn :
  ?width:int -> ?height:int -> (int * int) list list -> string
(** Overlay several shape-function fronts (lists of (w,h) Pareto
    points) in one character grid, one glyph per series — the Fig. 8
    style comparison plot. *)
