type state = { tcg : Seqpair.Tcg.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let evaluate circuit st =
  let dims c =
    let w, h = Netlist.Circuit.dims circuit c in
    if st.rot.(c) then (h, w) else (w, h)
  in
  Placement.make circuit (Seqpair.Tcg.pack st.tcg dims)

(* Sanitizer for ?validate mode: there is no structural TCG checker
   (closure is maintained by construction in Seqpair.Tcg), so the
   audit packs the graph and checks the placement. *)
let audit circuit st =
  let n = Netlist.Circuit.size circuit in
  let dims c =
    let w, h = Netlist.Circuit.dims circuit c in
    if st.rot.(c) then (h, w) else (w, h)
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_tcg placement"
    (Analysis.Invariant.audit_placed ~n (Seqpair.Tcg.pack st.tcg dims))

(* One annealing problem per chain, as Sa_seqpair.problem_of: private
   initial graph drawn from the chain's rng, private telemetry sink.
   The TCG arm evaluates through the list path; a single enclosing
   span still puts its evaluation cost on the trace. *)
let problem_of ?(validate = false) ?estimator ~weights circuit telemetry rng =
  let n = Netlist.Circuit.size circuit in
  let mv = Telemetry.Sink.register_moves telemetry [| "tcg"; "rotation" |] in
  (* the TCG arm evaluates through the list path; with a routability
     weight the congestion estimate reads per-cell geometry copied
     from the materialized placement into per-chain arrays *)
  let route_term =
    match estimator with
    | Some f when weights.Cost.routability <> 0.0 ->
        let est = f () in
        let xs = Array.make (max 1 n) 0
        and ys = Array.make (max 1 n) 0
        and ws = Array.make (max 1 n) 0
        and hs = Array.make (max 1 n) 0 in
        fun (p : Placement.t) ->
          List.iter
            (fun (pl : Geometry.Transform.placed) ->
              let r = pl.Geometry.Transform.rect in
              let c = pl.Geometry.Transform.cell in
              xs.(c) <- r.Geometry.Rect.x;
              ys.(c) <- r.Geometry.Rect.y;
              ws.(c) <- r.Geometry.Rect.w;
              hs.(c) <- r.Geometry.Rect.h)
            p.Placement.placed;
          est ~x:xs ~y:ys ~w:ws ~h:hs
    | _ -> fun _ -> 0.0
  in
  let init =
    {
      tcg = Seqpair.Tcg.of_seqpair (Seqpair.Sp.random rng n);
      rot = Array.make n false;
    }
  in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 8 then begin
      Telemetry.Moves.set mv 0;
      { st with tcg = Seqpair.Tcg.random_neighbor rng st.tcg }
    end
    else begin
      Telemetry.Moves.set mv 1;
      let rot = Array.copy st.rot in
      let c = Prelude.Rng.int rng n in
      rot.(c) <- not rot.(c);
      { st with rot }
    end
  in
  let cost st =
    Telemetry.Sink.time telemetry "eval.cost" (fun () ->
        let p = evaluate circuit st in
        let route = route_term p in
        Cost.compose_routed weights ~route ~width:(Placement.width p)
          ~height:(Placement.height p) ~hpwl:(Placement.hpwl p))
  in
  if not validate then { Anneal.Sa.init; neighbor; cost }
  else begin
    audit circuit init;
    let neighbor rng st =
      let st' = neighbor rng st in
      audit circuit st';
      st'
    in
    { Anneal.Sa.init; neighbor; cost }
  end

let place ?(weights = Cost.default) ?params ?workers ?chains
    ?(mode = `Deterministic) ?validate ?estimator
    ?(telemetry = Telemetry.Sink.null) ~rng circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let problem =
        problem_of ~validate ?estimator ~weights circuit telemetry rng
      in
      let result = Anneal.Sa.run ~telemetry ~rng params problem in
      {
        placement = evaluate circuit result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let check = if validate then Some (audit circuit) else None in
      let runner =
        match mode with
        | `Deterministic -> Anneal.Parallel.run
        | `Async -> Anneal.Parallel.run_async
      in
      let result =
        runner ?workers ?check ~telemetry ~engine:"tcg" ~seeds params
          (problem_of ~validate ?estimator ~weights circuit)
      in
      {
        placement = evaluate circuit result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
