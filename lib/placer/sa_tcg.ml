type state = { tcg : Seqpair.Tcg.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let evaluate circuit st =
  let dims c =
    let w, h = Netlist.Circuit.dims circuit c in
    if st.rot.(c) then (h, w) else (w, h)
  in
  Placement.make circuit (Seqpair.Tcg.pack st.tcg dims)

let place ?(weights = Cost.default) ?params ?(telemetry = Telemetry.Sink.null)
    ~rng circuit =
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  let mv = Telemetry.Sink.register_moves telemetry [| "tcg"; "rotation" |] in
  let init =
    {
      tcg = Seqpair.Tcg.of_seqpair (Seqpair.Sp.random rng n);
      rot = Array.make n false;
    }
  in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 8 then begin
      Telemetry.Moves.set mv 0;
      { st with tcg = Seqpair.Tcg.random_neighbor rng st.tcg }
    end
    else begin
      Telemetry.Moves.set mv 1;
      let rot = Array.copy st.rot in
      let c = Prelude.Rng.int rng n in
      rot.(c) <- not rot.(c);
      { st with rot }
    end
  in
  (* the TCG arm evaluates through the list path; a single enclosing
     span still puts its evaluation cost on the trace *)
  let cost st =
    Telemetry.Sink.time telemetry "eval.cost" (fun () ->
        Cost.evaluate weights (evaluate circuit st))
  in
  let result =
    Anneal.Sa.run ~telemetry ~rng params { Anneal.Sa.init; neighbor; cost }
  in
  let placement = evaluate circuit result.Anneal.Sa.best in
  {
    placement;
    cost = result.Anneal.Sa.best_cost;
    sa_rounds = result.Anneal.Sa.rounds;
    evaluated = result.Anneal.Sa.evaluated;
  }
