type state = { tcg : Seqpair.Tcg.t; rot : bool array }

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let evaluate circuit st =
  let dims c =
    let w, h = Netlist.Circuit.dims circuit c in
    if st.rot.(c) then (h, w) else (w, h)
  in
  Placement.make circuit (Seqpair.Tcg.pack st.tcg dims)

(* Sanitizer for ?validate mode: there is no structural TCG checker
   (closure is maintained by construction in Seqpair.Tcg), so the
   audit packs the graph and checks the placement. *)
let audit circuit st =
  let n = Netlist.Circuit.size circuit in
  let dims c =
    let w, h = Netlist.Circuit.dims circuit c in
    if st.rot.(c) then (h, w) else (w, h)
  in
  Analysis.Invariant.raise_if_any ~context:"Sa_tcg placement"
    (Analysis.Invariant.audit_placed ~n (Seqpair.Tcg.pack st.tcg dims))

(* One annealing problem per chain, as Sa_seqpair.problem_of: private
   initial graph drawn from the chain's rng, private telemetry sink.
   The TCG arm evaluates through the list path; a single enclosing
   span still puts its evaluation cost on the trace. *)
let problem_of ?(validate = false) ~weights circuit telemetry rng =
  let n = Netlist.Circuit.size circuit in
  let mv = Telemetry.Sink.register_moves telemetry [| "tcg"; "rotation" |] in
  let init =
    {
      tcg = Seqpair.Tcg.of_seqpair (Seqpair.Sp.random rng n);
      rot = Array.make n false;
    }
  in
  let neighbor rng st =
    if Prelude.Rng.int rng 10 < 8 then begin
      Telemetry.Moves.set mv 0;
      { st with tcg = Seqpair.Tcg.random_neighbor rng st.tcg }
    end
    else begin
      Telemetry.Moves.set mv 1;
      let rot = Array.copy st.rot in
      let c = Prelude.Rng.int rng n in
      rot.(c) <- not rot.(c);
      { st with rot }
    end
  in
  let cost st =
    Telemetry.Sink.time telemetry "eval.cost" (fun () ->
        Cost.evaluate weights (evaluate circuit st))
  in
  if not validate then { Anneal.Sa.init; neighbor; cost }
  else begin
    audit circuit init;
    let neighbor rng st =
      let st' = neighbor rng st in
      audit circuit st';
      st'
    in
    { Anneal.Sa.init; neighbor; cost }
  end

let place ?(weights = Cost.default) ?params ?workers ?chains
    ?(mode = `Deterministic) ?validate ?(telemetry = Telemetry.Sink.null) ~rng
    circuit =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  let n = Netlist.Circuit.size circuit in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  match (workers, chains) with
  | None, None ->
      let problem = problem_of ~validate ~weights circuit telemetry rng in
      let result = Anneal.Sa.run ~telemetry ~rng params problem in
      {
        placement = evaluate circuit result.Anneal.Sa.best;
        cost = result.Anneal.Sa.best_cost;
        sa_rounds = result.Anneal.Sa.rounds;
        evaluated = result.Anneal.Sa.evaluated;
      }
  | _ ->
      let k =
        match chains with
        | Some k -> max 1 k
        | None -> (
            match workers with
            | Some w -> max 1 w
            | None -> Anneal.Parallel.default_workers ())
      in
      let seeds = List.init k (fun _ -> Prelude.Rng.int rng 0x3FFFFFFF) in
      let check = if validate then Some (audit circuit) else None in
      let runner =
        match mode with
        | `Deterministic -> Anneal.Parallel.run
        | `Async -> Anneal.Parallel.run_async
      in
      let result =
        runner ?workers ?check ~telemetry ~engine:"tcg" ~seeds params
          (problem_of ~validate ~weights circuit)
      in
      {
        placement = evaluate circuit result.Anneal.Parallel.best;
        cost = result.Anneal.Parallel.best_cost;
        sa_rounds =
          result.Anneal.Parallel.chains.(result.Anneal.Parallel.winner)
            .Anneal.Sa.rounds;
        evaluated = result.Anneal.Parallel.evaluated;
      }
