(** Probabilistic congestion estimation for routability-driven
    placement (RUDY-style: each net's weighted HPWL demand spread
    uniformly over its pin bounding box, accumulated into a coarse bin
    grid and compared against per-bin track supply).

    This is the [Route.estimate] term the annealers fold into
    {!Placer.Cost} behind the [routability] weight: a cost query with
    the estimate stays within ~2x of the plain arena query (gated by
    the E17 bench row), because the estimate is one pass over the nets
    and a fixed 8x8 bin grid — no maze expansion.

    The score is {e smooth}: quadratic in per-bin density (sum of
    [usage^2 / capacity] over bins), so the annealer sees a gradient
    away from crowding before literal overflow appears, and placements
    with the same HPWL but better-spread nets cost less. Zero demand
    scores 0. *)

type t
(** An estimation model for one circuit plus private bin scratch.
    Mutable — never share one [t] across domains; build one per chain
    (see {!estimator}). *)

val create :
  ?bins:int -> ?pitch:int -> ?utilization:float -> Netlist.Circuit.t -> t
(** Flatten the circuit's nets (single-pin nets carry no demand) and
    allocate the [bins] x [bins] grid (default 8). [pitch] (default
    20, matching {!Router.default_pitch}) and [utilization] (default
    0.5) set the per-bin supply: one horizontal and one vertical track
    per pitch, derated by [utilization]. *)

val score :
  t -> x:int array -> y:int array -> w:int array -> h:int array -> float
(** The congestion score of the placement currently held in the
    per-cell geometry arrays (indexed by cell, as {!Placer.Eval}'s
    arena). Allocation-free and deterministic. *)

val estimator :
  ?bins:int ->
  ?pitch:int ->
  ?utilization:float ->
  Netlist.Circuit.t ->
  unit ->
  Placer.Eval.estimator
(** The per-chain factory the placer engines take as [?estimator]:
    each call builds a fresh model with private scratch, so parallel
    chains never share mutable state. *)

val score_placement : t -> Placer.Placement.t -> float
(** Convenience for benches and reports: score a materialized
    placement (allocates the geometry arrays). *)
