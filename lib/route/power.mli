(** Power/ground distribution: trunk-and-strap comb claimed on the
    routing grid {e before} any signal net routes.

    VDD trunk on the left edge column, GND trunk on the right, and
    horizontal straps alternating between the two every [strap_every]
    rows. Cells holding signal pins are carved out (straps split into
    segments around them) so the rails never swallow a pin, and the
    [channels] columns — the symmetry-axis routing channels — are
    carved from every strap so mirrored twin pairs keep a self-mirror
    crossing. Straps also leave a crossunder gap every [strap_every]
    columns (modelling layer-2 crossunders), so signal nets can cross
    a strap row away from the axis channel — without the gaps a strap
    is a wall and dense designs could never reach zero overflow. *)

type rails = {
  vdd : Grid.point list list;  (** each list is one contiguous segment *)
  gnd : Grid.point list list;
}

val default_strap_every : int
(** 8 rows between straps. *)

val distribute :
  ?strap_every:int ->
  ?channels:int list ->
  cols:int ->
  rows:int ->
  keepout:Grid.point list ->
  unit ->
  rails
(** Build the comb for a [cols] x [rows] grid, skipping [keepout]
    cells (signal pins) everywhere and [channels] columns in the
    straps (trunks are never carved). Grids too small for a comb
    (under 5 x 4) yield empty rails. Deterministic. Raises
    [Invalid_argument] when [strap_every < 2]. *)

val all_points : rails -> Grid.point list
(** Every rail cell, for claiming as obstacles. *)
