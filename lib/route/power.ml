(* Power/ground distribution.

   Analog blocks want supply rails laid down before signal routing:
   the rails are wide, immovable, and every later net must clear them.
   The plan here is the classic trunk-and-strap comb on the routing
   grid — a VDD trunk on the left edge, a GND trunk on the right, and
   horizontal straps alternating between the two every few rows so no
   module is far from either rail. Cells holding signal pins are
   carved out of the straps (splitting a strap into segments) so the
   rails never swallow a pin and strand its net, and so are the
   symmetry-axis channel columns: a mirrored twin pair can only cross
   a strap where both the crossing cell and its reflection are free,
   which is exactly the self-mirror gap at the axis.

   Straps additionally leave a crossunder gap every [strap_every]
   columns. A gap-free strap is a wall across the whole grid: every
   signal net crossing that row would have to squeeze through the few
   axis-channel cells, and anything beyond a handful of crossing nets
   could never reach zero overflow. The periodic gaps model the
   layer-2 crossunders of a real single-metal channel comb; the strap
   stays one logical rail (segments either side of a gap belong to the
   same net), the router just gets a crossing column per period.

   The router claims these cells as capacity-0 obstacles before any
   signal net routes — "claimed before signal nets" is the contract
   the QoR ledger's overflow numbers rest on. *)

type rails = {
  vdd : Grid.point list list;
  gnd : Grid.point list list;
}

let default_strap_every = 8

let segments points =
  (* split a sorted run of collinear cells at carved-out gaps *)
  let rec go cur acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | p :: rest -> (
        match cur with
        | [] -> go [ p ] acc rest
        | (pc, pr) :: _ ->
            let c, r = p in
            if abs (c - pc) + abs (r - pr) = 1 then go (p :: cur) acc rest
            else go [ p ] (List.rev cur :: acc) rest)
  in
  go [] [] points

let distribute ?(strap_every = default_strap_every) ?(channels = []) ~cols
    ~rows ~keepout () =
  if strap_every < 2 then invalid_arg "Power.distribute: strap_every < 2";
  let keep = Hashtbl.create (List.length keepout * 2) in
  List.iter (fun p -> Hashtbl.replace keep p ()) keepout;
  let channel = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace channel c ()) channels;
  let free p = not (Hashtbl.mem keep p) in
  let crossunder c = c mod strap_every = strap_every / 2 in
  let strap_free ((c, _) as p) =
    free p && (not (Hashtbl.mem channel c)) && not (crossunder c)
  in
  let column c r0 r1 =
    let pts = ref [] in
    for r = r1 downto r0 do
      if free (c, r) then pts := (c, r) :: !pts
    done;
    segments !pts
  in
  let row r c0 c1 =
    let pts = ref [] in
    for c = c1 downto c0 do
      if strap_free (c, r) then pts := (c, r) :: !pts
    done;
    segments !pts
  in
  if cols < 5 || rows < 4 then { vdd = []; gnd = [] }
  else begin
    let vdd_col = 1 and gnd_col = cols - 2 in
    let vdd = ref (column vdd_col 1 (rows - 2)) in
    let gnd = ref (column gnd_col 1 (rows - 2)) in
    (* straps between the trunks, alternating nets; each strap joins
       its own trunk and stops one cell short of the other's *)
    let k = ref 0 in
    let r = ref (1 + (strap_every / 2)) in
    while !r <= rows - 2 do
      if !k mod 2 = 0 then vdd := row !r vdd_col (gnd_col - 2) @ !vdd
      else gnd := row !r (vdd_col + 2) gnd_col @ !gnd;
      incr k;
      r := !r + strap_every
    done;
    { vdd = !vdd; gnd = !gnd }
  end

let all_points rails =
  List.concat rails.vdd @ List.concat rails.gnd
