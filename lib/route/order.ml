(* Net ordering for the negotiation loop.

   Initial order routes mirrored twins first (their paired claims are
   the hardest to place late) and otherwise shortest bounding box
   first, so cheap nets take direct tracks and long nets negotiate
   around them. Between iterations, nets whose current routes sit on
   over-used cells move to the front: the most contested nets reroute
   while the congestion picture is freshest. Both sorts are stable on
   the incoming net order, keeping the whole loop deterministic. *)

let bbox_semi pins =
  match pins with
  | [] -> 0
  | (c0, r0) :: rest ->
      let minc, maxc, minr, maxr =
        List.fold_left
          (fun (a, b, c, d) (pc, pr) ->
            (min a pc, max b pc, min c pr, max d pr))
          (c0, c0, r0, r0) rest
      in
      maxc - minc + maxr - minr

let initial ~is_twin ~pins_of nets =
  List.stable_sort
    (fun (a : Netlist.Net.t) (b : Netlist.Net.t) ->
      let twin n = if is_twin n.Netlist.Net.name then 0 else 1 in
      let c = Int.compare (twin a) (twin b) in
      if c <> 0 then c
      else Int.compare (bbox_semi (pins_of a)) (bbox_semi (pins_of b)))
    nets

let by_congestion ~overuse_of nets =
  List.stable_sort
    (fun (a : Netlist.Net.t) (b : Netlist.Net.t) ->
      (* descending overuse: most contested nets reroute first *)
      Int.compare (overuse_of b.Netlist.Net.name) (overuse_of a.Netlist.Net.name))
    nets
