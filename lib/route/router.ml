open Geometry

type route = { net : string; points : Grid.point list }

type reason =
  | Single_pin  (** fewer than two pins: nothing to connect *)
  | Unplaced of string  (** a pin's module has no placed rectangle *)
  | No_path  (** negotiation could not connect the terminals *)

type failure = { failed_net : string; reason : reason }

type iteration = {
  it_index : int;
  it_pres_fac : float;
  it_overflow : int;
  it_overused : int;
  it_ripped : int;
  it_pops : int;
}

type result = {
  routed : route list;
  failed : failure list;
  wirelength : int;
  mirrored_pairs : (string * string) list;
  overflow : int;
  iterations : int;
  negotiation : iteration list;
  occupancy : Negotiate.Snapshot.t;
  power : Grid.point list list;
  grid : Grid.t;
}

let default_pitch = 20
let default_margin = 4
let default_max_iterations = 40
let first_pres_fac = 0.5
let pres_mult = 1.8

(* Each routing cell is a gcell holding one horizontal and one
   vertical track, so two orthogonal wires may legally cross in it.
   Strictly planar capacity 1 would make zero overflow unattainable
   for any circuit whose net topology forces a crossing — which is
   nearly all of them. *)
let gcell_capacity = 2

(* pres_fac saturates here: unbounded exponential growth reaches
   [infinity] within ~40 iterations, where every congested candidate
   costs the same and Dijkstra degenerates into tie-breaking on cell
   index instead of actual congestion. 1e6 is already far beyond any
   finite detour on a realistic grid. *)
let max_pres_fac = 1.0e6
let hfac = 0.4

let reason_to_string = function
  | Single_pin -> "single-pin"
  | Unplaced m -> "unplaced:" ^ m
  | No_path -> "no-path"

let pin_point ~pitch ~margin placement m =
  match Placer.Placement.rect_of placement m with
  | None -> None
  | Some r ->
      let cx2, cy2 = Rect.center2 r in
      Some (Grid.snap ~pitch ~margin (cx2 / 2, cy2 / 2))

let net_pins ~pitch ~margin placement (net : Netlist.Net.t) =
  List.filter_map (pin_point ~pitch ~margin placement) net.Netlist.Net.pins

(* Routability triage: a net either yields its grid terminals or the
   reason it can never route. Unlike [net_pins] this refuses to drop
   an unplaced pin silently — the net goes to [failed] with the
   module's name instead of quietly routing a partial tree. *)
let classify ~pitch ~margin placement (net : Netlist.Net.t) =
  match net.Netlist.Net.pins with
  | [] | [ _ ] -> Error Single_pin
  | pins ->
      let circuit = placement.Placer.Placement.circuit in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | m :: rest -> (
            match pin_point ~pitch ~margin placement m with
            | Some p -> go (p :: acc) rest
            | None ->
                Error
                  (Unplaced circuit.Netlist.Circuit.modules.(m).Netlist.Circuit.name))
      in
      go [] pins

(* Grid-column reflection constant for a group: derived from an actual
   mirrored pair so pin images land exactly on pins. *)
let axis2_grid_of_group ~pitch ~margin placement
    (g : Constraints.Symmetry_group.t) =
  match
    Constraints.Placement_check.symmetry ~group:g
      placement.Placer.Placement.placed
  with
  | Error _ -> None
  | Ok _ -> (
      match (g.Constraints.Symmetry_group.pairs, g.Constraints.Symmetry_group.selfs) with
      | (a, b) :: _, _ -> (
          match
            ( pin_point ~pitch ~margin placement a,
              pin_point ~pitch ~margin placement b )
          with
          | Some (ca, _), Some (cb, _) -> Some (ca + cb)
          | _ -> None)
      | [], f :: _ -> (
          match pin_point ~pitch ~margin placement f with
          | Some (cf, _) -> Some (2 * cf)
          | None -> None)
      | [], [] -> None)

let close (c1, r1) (c2, r2) = abs (c1 - c2) <= 1 && abs (r1 - r2) <= 1

(* multiset match with tolerance: greedy bipartite *)
let pins_match mirrored actual =
  let rec go remaining = function
    | [] -> remaining = []
    | p :: rest -> (
        match List.partition (close p) remaining with
        | _ :: extra, others -> go (extra @ others) rest
        | [], _ -> false)
  in
  List.length mirrored = List.length actual && go actual mirrored

let mirror_twins ~axis2 ~pitch ~margin placement =
  let nets = placement.Placer.Placement.circuit.Netlist.Circuit.nets in
  (* axis2 is a doubled layout coordinate: the mirror image of layout
     point x is axis2 - x; snap the image back onto the grid *)
  let reflect (c, r) =
    let x = (c - margin) * pitch in
    let gx = fst (Grid.snap ~pitch ~margin (axis2 - x, 0)) in
    (gx, r)
  in
  let with_pins =
    List.map (fun n -> (n, net_pins ~pitch ~margin placement n)) nets
  in
  let rec pairs acc = function
    | [] -> List.rev acc
    | ((n1 : Netlist.Net.t), p1) :: rest -> (
        let mirrored = List.map reflect p1 in
        match
          List.find_opt (fun ((_ : Netlist.Net.t), p2) -> pins_match mirrored p2) rest
        with
        | Some ((n2, _) as hit) ->
            pairs
              ((n1.Netlist.Net.name, n2.Netlist.Net.name) :: acc)
              (List.filter (fun x -> x != hit) rest)
        | None -> pairs acc rest)
  in
  pairs [] with_pins

let is_mirror_route ~axis2_grid a b =
  let reflect (c, r) = (axis2_grid - c, r) in
  let norm pts = List.sort_uniq compare pts in
  norm (List.map reflect a) = norm b

let route_all ?(pitch = default_pitch) ?(margin = default_margin)
    ?(symmetric = []) ?(power = true)
    ?(max_iterations = default_max_iterations)
    ?(telemetry = Telemetry.Sink.null) placement =
  (* Instrumentation discipline, as everywhere else: handles resolved
     once, every op on a dead sink is one branch, and nothing here
     consumes randomness — traced routes are bit-identical to
     untraced ones (tested). *)
  let c_ripped = Telemetry.Sink.counter telemetry "route.ripped" in
  let c_pops = Telemetry.Sink.counter telemetry "route.search.pops" in
  let h_ovf = Telemetry.Sink.histogram telemetry "route.iter.overflow" in
  let h_ripped = Telemetry.Sink.histogram telemetry "route.iter.ripped" in
  let h_pops = Telemetry.Sink.histogram telemetry "route.iter.pops" in
  let h_pres = Telemetry.Sink.histogram telemetry "route.iter.pres_fac" in
  let t_total = Telemetry.Sink.span_begin telemetry in
  let grid = Grid.of_placement ~pitch ~margin placement in
  let nets = placement.Placer.Placement.circuit.Netlist.Circuit.nets in
  (* triage: routable nets carry terminals, the rest carry reasons *)
  let pins_tbl = Hashtbl.create 32 in
  let pre_failed = ref [] in
  let routable =
    List.filter
      (fun (net : Netlist.Net.t) ->
        match classify ~pitch ~margin placement net with
        | Ok pins ->
            Hashtbl.replace pins_tbl net.Netlist.Net.name pins;
            true
        | Error reason ->
            pre_failed :=
              { failed_net = net.Netlist.Net.name; reason } :: !pre_failed;
            false)
      nets
  in
  let pins_of (net : Netlist.Net.t) =
    Hashtbl.find pins_tbl net.Netlist.Net.name
  in
  (* twin detection per symmetry axis, first match wins, disjoint *)
  let axes =
    List.filter_map (axis2_grid_of_group ~pitch ~margin placement) symmetric
  in
  let twin_of = Hashtbl.create 8 in
  List.iter
    (fun axis2_grid ->
      let with_pins = List.map (fun n -> (n, pins_of n)) routable in
      let reflect (c, r) = (axis2_grid - c, r) in
      let rec scan = function
        | [] -> ()
        | ((n1 : Netlist.Net.t), p1) :: rest ->
            if not (Hashtbl.mem twin_of n1.Netlist.Net.name) then begin
              let mirrored = List.map reflect p1 in
              match
                List.find_opt
                  (fun ((n2 : Netlist.Net.t), p2) ->
                    (not (Hashtbl.mem twin_of n2.Netlist.Net.name))
                    && pins_match mirrored p2)
                  rest
              with
              | Some ((n2 : Netlist.Net.t), _) ->
                  Hashtbl.replace twin_of n1.Netlist.Net.name
                    (n2.Netlist.Net.name, axis2_grid);
                  Hashtbl.replace twin_of n2.Netlist.Net.name
                    (n1.Netlist.Net.name, axis2_grid);
                  scan rest
              | None -> scan rest
            end
            else scan rest
      in
      scan with_pins)
    axes;
  (* power before signals: the comb claims its cells at capacity 0, so
     every signal net negotiates around the rails from the start; each
     symmetry axis keeps a channel through the straps so twin pairs
     retain a self-mirror crossing *)
  let keepout = Hashtbl.fold (fun _ pins acc -> pins @ acc) pins_tbl [] in
  let channels =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun a -> [ (a / 2) - 1; a / 2; (a + 1) / 2; ((a + 1) / 2) + 1 ])
         axes)
  in
  let rails =
    if power then
      Power.distribute ~channels ~cols:(Grid.cols grid) ~rows:(Grid.rows grid)
        ~keepout ()
    else { Power.vdd = []; gnd = [] }
  in
  let rail_points = Power.all_points rails in
  let nego = Negotiate.of_grid ~capacity:gcell_capacity grid in
  List.iter (fun p -> Negotiate.set_capacity nego p 0) rail_points;
  (* a module center is one grid cell shared by every net pinning on
     that module; when more nets pin there than the gcell holds, give
     the cell exactly that much capacity so legitimate pin fan-out is
     neither negotiated against nor counted as residual overflow *)
  let pin_demand = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ pins ->
      List.iter
        (fun p ->
          Hashtbl.replace pin_demand p
            (1 + Option.value ~default:0 (Hashtbl.find_opt pin_demand p)))
        (List.sort_uniq compare pins))
    pins_tbl;
  Hashtbl.iter
    (fun p n -> if n > gcell_capacity then Negotiate.set_capacity nego p n)
    pin_demand;
  (* negotiation: rip up and reroute every net each iteration under a
     growing present-sharing factor until no cell is over-used *)
  let routes = Hashtbl.create 32 in
  let mirror_ok = Hashtbl.create 8 in
  let hard_failed = Hashtbl.create 8 in
  let done_this_iter = Hashtbl.create 32 in
  let iter_ripped = ref 0 in
  let rip name =
    match Hashtbl.find_opt routes name with
    | Some points ->
        Negotiate.release nego points;
        Hashtbl.remove routes name;
        incr iter_ripped
    | None -> ()
  in
  let set_route name points =
    Negotiate.claim nego points;
    Hashtbl.replace routes name points
  in
  let find_net name =
    List.find (fun (n : Netlist.Net.t) -> n.Netlist.Net.name = name) routable
  in
  let route_plain pres_fac (net : Netlist.Net.t) =
    let name = net.Netlist.Net.name in
    rip name;
    match
      Negotiate.route_tree nego ~pres_fac ~terminals:(pins_of net) ()
    with
    | Some points -> set_route name points
    | None -> Hashtbl.replace hard_failed name No_path
  in
  let process pres_fac (net : Netlist.Net.t) =
    let name = net.Netlist.Net.name in
    if Hashtbl.mem done_this_iter name || Hashtbl.mem hard_failed name then ()
    else begin
      Hashtbl.replace done_this_iter name ();
      match Hashtbl.find_opt twin_of name with
      | Some (twin, axis2_grid) when not (Hashtbl.mem hard_failed twin) ->
          Hashtbl.replace done_this_iter twin ();
          rip name;
          rip twin;
          (match
             Negotiate.route_tree nego ~mirror:axis2_grid ~pres_fac
               ~terminals:(pins_of net) ()
           with
          | Some tree ->
              let image = List.map (fun (c, r) -> (axis2_grid - c, r)) tree in
              set_route name tree;
              set_route twin image;
              Hashtbl.replace mirror_ok name twin;
              (* the pair may have been led from the other side in an
                 earlier iteration; keep exactly one direction so
                 [mirrored_pairs] lists each pair once *)
              Hashtbl.remove mirror_ok twin
          | None ->
              (* asymmetric blockage: fall back to independent routes *)
              Hashtbl.remove mirror_ok name;
              Hashtbl.remove mirror_ok twin;
              route_plain pres_fac net;
              route_plain pres_fac (find_net twin))
      | _ -> route_plain pres_fac net
    end
  in
  let overuse_of name =
    match Hashtbl.find_opt routes name with
    | None -> 0
    | Some points ->
        List.fold_left (fun acc p -> acc + Negotiate.cell_overuse nego p) 0 points
  in
  let iterations = ref 0 in
  let converged = ref (routable = []) in
  let nego_log = ref [] in
  while (not !converged) && !iterations < max_iterations do
    let t_iter = Telemetry.Sink.span_begin telemetry in
    let pops0 = Negotiate.search_pops nego in
    iter_ripped := 0;
    let pres_fac =
      min max_pres_fac (first_pres_fac *. (pres_mult ** float_of_int !iterations))
    in
    (* Iteration 0 routes everything in the initial order. Later
       iterations rip up only nets that currently sit on an over-used
       cell: rerouting clean nets too re-randomizes the whole instance
       every round and the endgame (two nets contesting one corridor)
       never settles. Every 8th iteration still reroutes everything,
       so a clean net pinned across the only escape corridor cannot
       deadlock the offenders forever. *)
    let order =
      if !iterations = 0 then
        Order.initial
          ~is_twin:(fun n -> Hashtbl.mem twin_of n)
          ~pins_of routable
      else
        let pool =
          if !iterations mod 8 = 0 then routable
          else
            List.filter
              (fun (n : Netlist.Net.t) -> overuse_of n.Netlist.Net.name > 0)
              routable
        in
        Order.by_congestion ~overuse_of pool
    in
    Hashtbl.reset done_this_iter;
    List.iter (process pres_fac) order;
    incr iterations;
    let ovf = Negotiate.overflow nego in
    if ovf = 0 then converged := true else Negotiate.add_history nego ~hfac;
    let pops = Negotiate.search_pops nego - pops0 in
    nego_log :=
      {
        it_index = !iterations;
        it_pres_fac = pres_fac;
        it_overflow = ovf;
        it_overused = Negotiate.overused_cells nego;
        it_ripped = !iter_ripped;
        it_pops = pops;
      }
      :: !nego_log;
    Telemetry.Counter.add c_ripped !iter_ripped;
    Telemetry.Counter.add c_pops pops;
    Telemetry.Hist.observe h_ovf (float_of_int ovf);
    Telemetry.Hist.observe h_ripped (float_of_int !iter_ripped);
    Telemetry.Hist.observe h_pops (float_of_int pops);
    Telemetry.Hist.observe h_pres pres_fac;
    Telemetry.Sink.span_end telemetry "route.iteration" t_iter
  done;
  (* materialize, in circuit net order for determinism *)
  let routed =
    List.filter_map
      (fun (net : Netlist.Net.t) ->
        match Hashtbl.find_opt routes net.Netlist.Net.name with
        | Some points -> Some { net = net.Netlist.Net.name; points }
        | None -> None)
      nets
  in
  let failed =
    List.filter_map
      (fun (net : Netlist.Net.t) ->
        let name = net.Netlist.Net.name in
        match Hashtbl.find_opt hard_failed name with
        | Some reason -> Some { failed_net = name; reason }
        | None ->
            List.find_opt (fun f -> f.failed_net = name) !pre_failed)
      nets
  in
  let mirrored =
    List.filter_map
      (fun (net : Netlist.Net.t) ->
        Hashtbl.find_opt mirror_ok net.Netlist.Net.name
        |> Option.map (fun twin -> (net.Netlist.Net.name, twin)))
      nets
  in
  Grid.block_many grid rail_points;
  List.iter (fun r -> Grid.block_many grid r.points) routed;
  let final_overflow = Negotiate.overflow nego in
  Telemetry.Counter.add
    (Telemetry.Sink.counter telemetry "route.iterations")
    !iterations;
  Telemetry.Counter.add
    (Telemetry.Sink.counter telemetry "route.overflow")
    final_overflow;
  Telemetry.Counter.add
    (Telemetry.Sink.counter telemetry "route.nets.routed")
    (List.length routed);
  Telemetry.Counter.add
    (Telemetry.Sink.counter telemetry "route.nets.failed")
    (List.length failed);
  Telemetry.Sink.span_end telemetry "route.total" t_total;
  {
    routed;
    failed;
    wirelength =
      List.fold_left (fun acc r -> acc + List.length r.points) 0 routed;
    mirrored_pairs = mirrored;
    overflow = final_overflow;
    iterations = !iterations;
    negotiation = List.rev !nego_log;
    occupancy = Negotiate.snapshot nego;
    power = rails.Power.vdd @ rails.Power.gnd;
    grid;
  }
