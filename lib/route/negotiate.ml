(* Negotiated-congestion routing state (PathFinder).

   Cells carry a capacity (how many nets may legally use them — 1 for
   routable track, 0 for power rails and obstacles), a present-usage
   count (how many nets use them right now) and a history cost (how
   often they have been over-used in past iterations). A net's path is
   found by Dijkstra expansion where entering cell [i] costs

     (base + history_i) * (1 + pres_fac * overuse_if_entered)

   so early iterations route through congestion cheaply (small
   [pres_fac]) and later iterations price shared cells out, while
   history keeps chronically contested cells expensive even when
   momentarily free — the classic negotiation that converges where
   one-shot sequential routing deadlocks on net ordering.

   Everything is deterministic: the heap breaks distance ties on cell
   index, terminals are expanded in caller order, and no randomness
   enters anywhere. *)

type t = {
  cols : int;
  rows : int;
  capacity : int array;
  present : int array;
  history : float array;
  (* Dijkstra scratch, epoch-stamped so searches never clear arrays *)
  dist : float array;
  parent : int array;
  seen : int array;
  handle : int array;  (* cell -> heap slot, -1 when not queued *)
  mutable epoch : int;
  (* binary min-heap of cell indices keyed by (dist, index) *)
  heap : int array;
  mutable heap_len : int;
  (* current net's tree cells, epoch-stamped *)
  tree_mark : int array;
  mutable tree_epoch : int;
  (* cumulative Dijkstra heap pops: a plain integer so counting it
     costs one increment, stays deterministic, and leaves this module
     free of any telemetry dependency — Router snapshots deltas into
     its sink *)
  mutable pops : int;
}

let base_cost = 1.0

let create ~cols ~rows =
  if cols <= 0 || rows <= 0 then
    invalid_arg "Negotiate.create: non-positive size";
  let n = cols * rows in
  {
    cols;
    rows;
    capacity = Array.make n 1;
    present = Array.make n 0;
    history = Array.make n 0.0;
    dist = Array.make n infinity;
    parent = Array.make n (-1);
    seen = Array.make n 0;
    handle = Array.make n (-1);
    epoch = 0;
    heap = Array.make n 0;
    heap_len = 0;
    tree_mark = Array.make n 0;
    tree_epoch = 0;
    pops = 0;
  }

let of_grid ?(capacity = 1) grid =
  let t = create ~cols:(Grid.cols grid) ~rows:(Grid.rows grid) in
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      t.capacity.((r * t.cols) + c) <-
        (if Grid.blocked grid (c, r) then 0 else max 0 capacity)
    done
  done;
  t

let idx t (c, r) = (r * t.cols) + c
let in_bounds t (c, r) = c >= 0 && c < t.cols && r >= 0 && r < t.rows

let set_capacity t p cap =
  if in_bounds t p then t.capacity.(idx t p) <- max 0 cap

let claim t points = List.iter (fun p -> if in_bounds t p then
    t.present.(idx t p) <- t.present.(idx t p) + 1) points

let release t points = List.iter (fun p -> if in_bounds t p then
    t.present.(idx t p) <- max 0 (t.present.(idx t p) - 1)) points

let overflow t =
  let acc = ref 0 in
  for i = 0 to Array.length t.present - 1 do
    let over = t.present.(i) - t.capacity.(i) in
    if over > 0 then acc := !acc + over
  done;
  !acc

let overused_cells t =
  let acc = ref 0 in
  for i = 0 to Array.length t.present - 1 do
    if t.present.(i) > t.capacity.(i) then incr acc
  done;
  !acc

let cell_overuse t p =
  if in_bounds t p then max 0 (t.present.(idx t p) - t.capacity.(idx t p))
  else 0

let add_history t ~hfac =
  for i = 0 to Array.length t.present - 1 do
    let over = t.present.(i) - t.capacity.(i) in
    if over > 0 then t.history.(i) <- t.history.(i) +. (hfac *. float_of_int over)
  done

let search_pops t = t.pops

module Snapshot = struct
  type t = {
    cols : int;
    rows : int;
    capacity : int array;
    present : int array;
    history : float array;
  }
end

let snapshot t =
  {
    Snapshot.cols = t.cols;
    rows = t.rows;
    capacity = Array.copy t.capacity;
    present = Array.copy t.present;
    history = Array.copy t.history;
  }

(* ---- heap ---------------------------------------------------------- *)

let less t a b = t.dist.(a) < t.dist.(b) || (t.dist.(a) = t.dist.(b) && a < b)

let swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.handle.(b) <- i;
  t.handle.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less t t.heap.(i) t.heap.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.heap_len && less t t.heap.(l) t.heap.(i) then l else i in
  let m = if r < t.heap_len && less t t.heap.(r) t.heap.(m) then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let heap_push t cell =
  t.heap.(t.heap_len) <- cell;
  t.handle.(cell) <- t.heap_len;
  t.heap_len <- t.heap_len + 1;
  sift_up t (t.heap_len - 1)

let heap_decrease t cell = sift_up t t.handle.(cell)

let heap_pop t =
  t.pops <- t.pops + 1;
  let top = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.handle.(top) <- -1;
  if t.heap_len > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_len);
    t.handle.(t.heap.(0)) <- 0;
    sift_down t 0
  end;
  top

(* ---- search -------------------------------------------------------- *)

(* Cost of one net entering cell [i] right now: the overuse is what
   the cell would carry *after* this entry (present + 1), so sharing a
   full cell is priced from the very first offender. [extra] is any
   additional use beyond that one (1 when a mirrored twin pair crosses
   the symmetry axis and both images land on the same cell). *)
let enter_cost t ~pres_fac ~extra i =
  let over = t.present.(i) + 1 + extra - t.capacity.(i) in
  let congestion =
    if over > 0 then 1.0 +. (pres_fac *. float_of_int over) else 1.0
  in
  (base_cost +. t.history.(i)) *. congestion

let impassable t i = t.capacity.(i) = 0

let clamp t (c, r) =
  (max 0 (min (t.cols - 1) c), max 0 (min (t.rows - 1) r))

(* Mirror image of a cell index under column reflection c -> axis - c,
   or -1 when the image falls off the grid. *)
let mirror_idx t ~axis i =
  let c = i mod t.cols and r = i / t.cols in
  let mc = axis - c in
  if mc < 0 || mc >= t.cols then -1 else (r * t.cols) + mc

(* One Dijkstra wave from the current tree to [target]. [mirror]
   prices (and gates) the reflected cell as well, so the path found
   for the reference net is simultaneously legal and equally costed
   for its twin. Terminal cells of this net are always enterable, as
   in Maze. Returns the target's parent chain or None. *)
let search t ~pres_fac ~mirror ~terminals ~tree ~target =
  t.epoch <- t.epoch + 1;
  let ep = t.epoch in
  t.heap_len <- 0;
  let is_terminal i =
    List.exists (fun p -> in_bounds t p && idx t p = i) terminals
  in
  List.iter
    (fun i ->
      if t.seen.(i) <> ep then begin
        t.seen.(i) <- ep;
        t.dist.(i) <- 0.0;
        t.parent.(i) <- -1;
        heap_push t i
      end)
    tree;
  let ti = idx t target in
  let found = ref false in
  while (not !found) && t.heap_len > 0 do
    let u = heap_pop t in
    if u = ti then found := true
    else begin
      let uc = u mod t.cols and ur = u / t.cols in
      let visit v =
        let blocked_v =
          impassable t v && not (is_terminal v)
        in
        let blocked_m =
          match mirror with
          | None -> false
          | Some axis -> (
              match mirror_idx t ~axis v with
              | -1 -> true
              | m -> impassable t m && not (is_terminal v))
        in
        if not (blocked_v || blocked_m) then begin
          let extra_self =
            (* a twin pair entering its own axis column uses the cell
               twice (reference + image) *)
            match mirror with
            | Some axis when mirror_idx t ~axis v = v -> 1
            | _ -> 0
          in
          let step = enter_cost t ~pres_fac ~extra:extra_self v in
          let step =
            match mirror with
            | None -> step
            | Some axis -> (
                match mirror_idx t ~axis v with
                | m when m = v -> step  (* same cell: already priced *)
                | -1 -> step
                | m -> step +. enter_cost t ~pres_fac ~extra:0 m)
          in
          let nd = t.dist.(u) +. step in
          if t.seen.(v) <> ep then begin
            t.seen.(v) <- ep;
            t.dist.(v) <- nd;
            t.parent.(v) <- u;
            heap_push t v
          end
          else if
            t.handle.(v) >= 0 && nd < t.dist.(v)
          then begin
            t.dist.(v) <- nd;
            t.parent.(v) <- u;
            heap_decrease t v
          end
        end
      in
      if uc + 1 < t.cols then visit (u + 1);
      if uc > 0 then visit (u - 1);
      if ur + 1 < t.rows then visit (u + t.cols);
      if ur > 0 then visit (u - t.cols)
    end
  done;
  if !found then begin
    let rec walk acc i = if i = -1 then acc else walk (i :: acc) t.parent.(i) in
    Some (walk [] ti)
  end
  else None

let route_tree t ?mirror ~pres_fac ~terminals () =
  match List.map (clamp t) terminals with
  | [] -> Some []
  | first :: rest ->
      t.tree_epoch <- t.tree_epoch + 1;
      let te = t.tree_epoch in
      let tree_rev = ref [ idx t first ] in
      t.tree_mark.(idx t first) <- te;
      let ok =
        List.for_all
          (fun terminal ->
            t.tree_mark.(idx t terminal) = te
            ||
            match
              search t ~pres_fac ~mirror ~terminals:(first :: rest)
                ~tree:(List.rev !tree_rev) ~target:terminal
            with
            | None -> false
            | Some path ->
                List.iter
                  (fun i ->
                    if t.tree_mark.(i) <> te then begin
                      t.tree_mark.(i) <- te;
                      tree_rev := i :: !tree_rev
                    end)
                  path;
                true)
          rest
      in
      if not ok then None
      else
        Some
          (List.rev_map
             (fun i -> (i mod t.cols, i / t.cols))
             !tree_rev)
