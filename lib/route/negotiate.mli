(** Negotiated-congestion routing state (PathFinder).

    Shared substrate for the rip-up-and-reroute loop in {!Router}:
    per-cell capacity / present-usage / history arrays and a
    deterministic Dijkstra searcher whose entering cost

    {[ (base + history) * (1 + pres_fac * overuse) ]}

    lets nets share cells cheaply in early iterations and prices the
    sharing out as [pres_fac] grows, while history accumulated on
    chronically over-used cells steers later routes around them even
    when they are momentarily free. This converges where one-shot
    sequential routing deadlocks on net ordering.

    Determinism: the heap orders by (distance, cell index), expansion
    visits neighbours in a fixed order, and nothing reads a clock or an
    RNG — identical inputs give byte-identical routes. *)

type t

val create : cols:int -> rows:int -> t
(** All cells capacity 1, no usage, no history. Raises
    [Invalid_argument] on non-positive sizes. *)

val of_grid : ?capacity:int -> Grid.t -> t
(** Same extents as the grid; blocked cells become capacity 0, open
    cells [capacity] (default 1 — a single-track cell; routers
    modelling a gcell with one horizontal and one vertical track pass
    2, which makes orthogonal crossings legal). *)

val set_capacity : t -> Grid.point -> int -> unit
(** Out-of-bounds points are ignored; capacity is clamped at 0.
    Capacity-0 cells are impassable to the search except as a net's
    own terminals. *)

val claim : t -> Grid.point list -> unit
(** Add one present use to each cell (a routed net's tree). *)

val release : t -> Grid.point list -> unit
(** Undo {!claim} before rerouting a net. *)

val overflow : t -> int
(** Total overuse: sum over cells of [max 0 (present - capacity)].
    Zero means the current routes are simultaneously legal. *)

val overused_cells : t -> int
(** Number of cells with [present > capacity]. *)

val cell_overuse : t -> Grid.point -> int

val add_history : t -> hfac:float -> unit
(** End-of-iteration update: every over-used cell's history grows by
    [hfac * overuse]. *)

val search_pops : t -> int
(** Cumulative Dijkstra heap pops across every search this state has
    run — the router diffs it per iteration for the
    [route.search.pops] counter. Plain integer bookkeeping: always on,
    deterministic, no telemetry dependency. *)

module Snapshot : sig
  type t = {
    cols : int;
    rows : int;
    capacity : int array;  (** row-major, index [r * cols + c] *)
    present : int array;
    history : float array;
  }
end

val snapshot : t -> Snapshot.t
(** Deep copy of the per-gcell capacity / occupancy / history state —
    the congestion-heatmap export. Mutating the snapshot never touches
    the live router state. *)

val route_tree :
  t ->
  ?mirror:int ->
  pres_fac:float ->
  terminals:Grid.point list ->
  unit ->
  Grid.point list option
(** Grow a Steiner-ish tree connecting [terminals] (clamped in
    bounds): route each terminal to the tree-so-far by one Dijkstra
    wave. Returns the tree's cells (deduplicated, deterministic
    order), [Some []] for no terminals, a singleton for one terminal,
    or [None] when some terminal is unreachable.

    With [~mirror:axis2_grid] every step is priced {e and} gated on
    both the cell and its reflection under [c -> axis2_grid - c]:
    the returned reference tree is legal and equally costed for the
    twin's image, which is what makes mirrored pairs identical in
    wirelength by construction. Cells on the axis column (self-mirror)
    count their own double use. The caller claims the tree (and its
    image) via {!claim}. *)
