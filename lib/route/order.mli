(** Deterministic net ordering for the negotiation loop. *)

val bbox_semi : Grid.point list -> int
(** Half-perimeter of the pins' bounding box, in grid cells. *)

val initial :
  is_twin:(string -> bool) ->
  pins_of:(Netlist.Net.t -> Grid.point list) ->
  Netlist.Net.t list ->
  Netlist.Net.t list
(** First routing order: mirrored twins first (their paired claims are
    hardest to satisfy late), then ascending pin-bbox half-perimeter.
    Stable on the incoming order. *)

val by_congestion :
  overuse_of:(string -> int) -> Netlist.Net.t list -> Netlist.Net.t list
(** Between negotiation iterations: nets by descending overuse of
    their current routes, so the most contested nets reroute while the
    congestion picture is freshest. Stable, hence deterministic. *)
