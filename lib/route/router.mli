(** Negotiated-congestion multi-net routing with mirrored symmetric
    nets and power distribution (§II: "symmetric placement (and
    routing, as well)" matches the layout-induced parasitics of the
    two differential half-circuits).

    The flow is PathFinder-shaped: the power comb ({!Power}) claims
    its cells first at capacity 0; then every signal net is ripped up
    and rerouted each iteration under a growing present-sharing factor
    ({!Negotiate}), with history accumulating on over-used cells,
    until no cell is over-used or the iteration cap is hit. Nets
    recognized as mirror twins — their pin sets map onto each other
    under a symmetry group's axis — are routed as a pair: one
    mirror-priced search produces the reference tree, its reflection
    is claimed for the twin, so both halves see {e identical}
    wirelength and topology by construction.

    Everything is deterministic: same placement, same nets, same
    options give byte-identical routes. *)

type route = { net : string; points : Grid.point list }

type reason =
  | Single_pin  (** fewer than two pins: nothing to connect *)
  | Unplaced of string  (** this pin's module has no placed rectangle *)
  | No_path  (** negotiation could not connect the terminals *)

type failure = { failed_net : string; reason : reason }

type iteration = {
  it_index : int;  (** 1-based negotiation pass number *)
  it_pres_fac : float;  (** present-sharing factor the pass ran at *)
  it_overflow : int;  (** total over-capacity usage after the pass *)
  it_overused : int;  (** over-capacity gcells after the pass *)
  it_ripped : int;  (** previously-routed nets ripped up this pass *)
  it_pops : int;  (** Dijkstra heap pops spent this pass *)
}
(** One negotiation pass, always recorded (the log is at most
    [max_iterations] entries): this is what distinguishes a healthy
    converging run from one thrashing against the iteration cap. *)

type result = {
  routed : route list;
  failed : failure list;
      (** every net that was not routed, with why — including
          single-pin and unplaced-module nets that older versions
          silently dropped *)
  wirelength : int;  (** total grid cells used by signal routes *)
  mirrored_pairs : (string * string) list;
      (** twin pairs whose final routes are mirror images *)
  overflow : int;
      (** residual over-use after the last iteration; 0 = all routes
          simultaneously legal *)
  iterations : int;  (** negotiation iterations performed *)
  negotiation : iteration list;  (** per-pass log, oldest first *)
  occupancy : Negotiate.Snapshot.t;
      (** final per-gcell capacity / occupancy / history — the
          congestion-heatmap export *)
  power : Grid.point list list;  (** claimed rail segments, VDD then GND *)
  grid : Grid.t;  (** final occupancy: rails + signal routes *)
}

val default_pitch : int
val default_margin : int
val default_max_iterations : int

val reason_to_string : reason -> string
(** ["single-pin"], ["unplaced:<module>"], ["no-path"] — stable
    strings for reports and ledgers. *)

val mirror_twins :
  axis2:int ->
  pitch:int ->
  margin:int ->
  Placer.Placement.t ->
  (string * string) list
(** Net pairs whose pin centers are mirror images about the axis
    (doubled layout coordinate [axis2]), up to grid rounding. *)

val route_all :
  ?pitch:int ->
  ?margin:int ->
  ?symmetric:Constraints.Symmetry_group.t list ->
  ?power:bool ->
  ?max_iterations:int ->
  ?telemetry:Telemetry.Sink.t ->
  Placer.Placement.t ->
  result
(** Route every net of the placement's circuit (pins at module
    centers). [symmetric] groups contribute their placement axes; twin
    nets across each axis are routed mirrored. [power] (default true)
    lays the trunk-and-strap comb before any signal net. Defaults:
    [pitch] 20 layout units per track, [margin] 4 tracks,
    [max_iterations] 40.

    [telemetry] (default {!Telemetry.Sink.null}) records
    [route.iteration] / [route.total] spans, [route.*] counters
    (iterations, ripped nets, search pops, routed / failed nets,
    residual overflow) and per-iteration [route.iter.*] histograms.
    Instrumentation draws no randomness and the null sink costs one
    branch per site: traced routes are bit-identical to untraced
    ones. *)

val is_mirror_route :
  axis2_grid:int -> Grid.point list -> Grid.point list -> bool
(** Do two routes map onto each other under grid-column reflection
    [c -> axis2_grid - c]? (Used by tests.) *)
