(* Probabilistic congestion estimation (RUDY-style).

   The annealers cannot afford a maze route per candidate placement;
   what they can afford is spreading every net's expected wire demand
   (its HPWL, weighted) uniformly over its bounding box and reading how
   much the resulting per-bin density exceeds what the routing grid can
   supply. The estimate is a smooth scalar: quadratic in per-bin
   density, so crowding several net boxes over the same region is
   penalized before it turns into literal overflow, which is what gives
   the annealer a gradient to descend while the placement is still
   routable. *)

type t = {
  n : int;
  (* CSR-flattened nets: pins of net k are pin.(off.(k)) ..
     pin.(off.(k+1)-1), demand scale is the net weight *)
  off : int array;
  pin : int array;
  weight : float array;
  bins_x : int;
  bins_y : int;
  (* private scratch: 2D difference array, (bins_x+1) * (bins_y+1).
     Net demand lands here as O(1) corner updates; one prefix-sum pass
     at the end recovers per-bin usage. *)
  diff : float array;
  pitch : float;  (* routing-track pitch in layout units *)
  utilization : float;  (* fraction of tracks available to signals *)
}

let default_bins = 8
let default_pitch = 20
let default_utilization = 0.5

let create ?(bins = default_bins) ?(pitch = default_pitch)
    ?(utilization = default_utilization) circuit =
  if bins < 1 then invalid_arg "Estimate.create: bins < 1";
  if pitch < 1 then invalid_arg "Estimate.create: pitch < 1";
  let nets = circuit.Netlist.Circuit.nets in
  let n = Netlist.Circuit.size circuit in
  (* nets with fewer than two pins carry no wire demand *)
  let routable =
    List.filter (fun (nt : Netlist.Net.t) -> List.length nt.Netlist.Net.pins >= 2) nets
  in
  let k = List.length routable in
  let off = Array.make (k + 1) 0 in
  let total =
    List.fold_left
      (fun acc (nt : Netlist.Net.t) -> acc + List.length nt.Netlist.Net.pins)
      0 routable
  in
  let pin = Array.make (max 1 total) 0 in
  let weight = Array.make (max 1 k) 1.0 in
  let i = ref 0 and p = ref 0 in
  List.iter
    (fun (nt : Netlist.Net.t) ->
      off.(!i) <- !p;
      weight.(!i) <- nt.Netlist.Net.weight;
      List.iter
        (fun c ->
          pin.(!p) <- c;
          incr p)
        nt.Netlist.Net.pins;
      incr i)
    routable;
  off.(k) <- !p;
  {
    n;
    off;
    pin;
    weight;
    bins_x = bins;
    bins_y = bins;
    diff = Array.make ((bins + 1) * (bins + 1)) 0.0;
    pitch = float_of_int pitch;
    utilization;
  }

(* None of the scored quantities can be NaN, so plain comparisons
   beat Float.min/max (which pay for NaN propagation) in this loop. *)
let[@inline] fmin (a : float) b = if a < b then a else b
let[@inline] fmax (a : float) b = if a > b then a else b

(* The congestion score of the placement currently held in the
   per-cell geometry arrays. Allocation-free and O(pins + bins): a
   net's uniform spread [demand * fx(ix) * fy(iy)] has constant
   per-axis fractions except at the two boundary bins, so its whole
   footprint decomposes into at most 3x3 constant-value rectangles,
   each a 4-corner update on the difference array — no per-bin loop
   per net. One prefix-sum pass at the end recovers bin usage. This
   runs on the annealers' move path (the E17 2x-budget row), hence
   the unsafe accesses into [t]'s own invariant-sized arrays. *)
let score t ~x ~y ~w ~h =
  let die_w = ref 0 and die_h = ref 0 in
  for c = 0 to t.n - 1 do
    let xe = x.(c) + w.(c) and ye = y.(c) + h.(c) in
    if xe > !die_w then die_w := xe;
    if ye > !die_h then die_h := ye
  done;
  if !die_w = 0 || !die_h = 0 then 0.0
  else begin
    let bw = float_of_int !die_w /. float_of_int t.bins_x in
    let bh = float_of_int !die_h /. float_of_int t.bins_y in
    let inv_bw = 1.0 /. bw and inv_bh = 1.0 /. bh in
    let stride = t.bins_x + 1 in
    let diff = t.diff in
    Array.fill diff 0 (Array.length diff) 0.0;
    (* one constant-value rectangle [ax..bx] x [ay..by]: four corner
       updates; bx+1 <= bins_x and by+1 <= bins_y fit the (+1) pad *)
    let add_box ax bx ay by v =
      let tl = (ay * stride) + ax in
      let tr = (ay * stride) + bx + 1 in
      let bl = ((by + 1) * stride) + ax in
      let br = ((by + 1) * stride) + bx + 1 in
      Array.unsafe_set diff tl (Array.unsafe_get diff tl +. v);
      Array.unsafe_set diff tr (Array.unsafe_get diff tr -. v);
      Array.unsafe_set diff bl (Array.unsafe_get diff bl -. v);
      Array.unsafe_set diff br (Array.unsafe_get diff br +. v)
    in
    (* one row of the 3x3 decomposition at vertical weight [vy] *)
    let emit_row ix0 ix1 fx_lo fx_mid fx_hi ay by vy =
      if ix0 = ix1 then add_box ix0 ix0 ay by vy
      else begin
        add_box ix0 ix0 ay by (vy *. fx_lo);
        if ix1 > ix0 + 1 then add_box (ix0 + 1) (ix1 - 1) ay by (vy *. fx_mid);
        add_box ix1 ix1 ay by (vy *. fx_hi)
      end
    in
    let nets = Array.length t.off - 1 in
    for k = 0 to nets - 1 do
      let lo = Array.unsafe_get t.off k
      and hi = Array.unsafe_get t.off (k + 1) - 1 in
      (* bbox over doubled pin centers, so rounding never splits a
         mirrored pair's demand asymmetrically *)
      let c0 = Array.unsafe_get t.pin lo in
      let minx = ref ((2 * x.(c0)) + w.(c0))
      and maxx = ref ((2 * x.(c0)) + w.(c0))
      and miny = ref ((2 * y.(c0)) + h.(c0))
      and maxy = ref ((2 * y.(c0)) + h.(c0)) in
      for p = lo + 1 to hi do
        let c = Array.unsafe_get t.pin p in
        let cx = (2 * x.(c)) + w.(c) and cy = (2 * y.(c)) + h.(c) in
        if cx < !minx then minx := cx;
        if cx > !maxx then maxx := cx;
        if cy < !miny then miny := cy;
        if cy > !maxy then maxy := cy
      done;
      let bx0 = float_of_int !minx /. 2.0
      and bx1 = float_of_int !maxx /. 2.0
      and by0 = float_of_int !miny /. 2.0
      and by1 = float_of_int !maxy /. 2.0 in
      (* demand: weighted HPWL, floored at one pitch so coincident
         pins still claim a via's worth of track *)
      let demand =
        Array.unsafe_get t.weight k
        *. fmax t.pitch (bx1 -. bx0 +. (by1 -. by0))
      in
      let ix0 = max 0 (min (t.bins_x - 1) (int_of_float (bx0 *. inv_bw)))
      and ix1 = max 0 (min (t.bins_x - 1) (int_of_float (bx1 *. inv_bw)))
      and iy0 = max 0 (min (t.bins_y - 1) (int_of_float (by0 *. inv_bh)))
      and iy1 = max 0 (min (t.bins_y - 1) (int_of_float (by1 *. inv_bh))) in
      if ix0 = ix1 && iy0 = iy1 then
        (* short net inside one bin: all the demand lands there *)
        add_box ix0 ix0 iy0 iy0 demand
      else begin
        (* spread uniformly over covered bins, proportional to
           overlap: boundary bins get their clipped fraction, interior
           bins share one constant fraction per axis *)
        let ext_x = fmax 1.0 (bx1 -. bx0) and ext_y = fmax 1.0 (by1 -. by0) in
        let inv_ext_x = 1.0 /. ext_x and inv_ext_y = 1.0 /. ext_y in
        let frac lo hi i inv_ext step =
          let a = fmax lo (float_of_int i *. step)
          and b = fmin hi (float_of_int (i + 1) *. step) in
          fmax 0.0 (fmin 1.0 ((b -. a) *. inv_ext))
        in
        let fx_lo, fx_mid, fx_hi =
          if ix0 = ix1 then (1.0, 1.0, 1.0)
          else
            ( frac bx0 bx1 ix0 inv_ext_x bw,
              fmin 1.0 (bw *. inv_ext_x),
              frac bx0 bx1 ix1 inv_ext_x bw )
        in
        if iy0 = iy1 then emit_row ix0 ix1 fx_lo fx_mid fx_hi iy0 iy0 demand
        else begin
          let fy_lo = frac by0 by1 iy0 inv_ext_y bh
          and fy_hi = frac by0 by1 iy1 inv_ext_y bh in
          emit_row ix0 ix1 fx_lo fx_mid fx_hi iy0 iy0 (demand *. fy_lo);
          if iy1 > iy0 + 1 then
            emit_row ix0 ix1 fx_lo fx_mid fx_hi (iy0 + 1) (iy1 - 1)
              (demand *. fmin 1.0 (bh *. inv_ext_y));
          emit_row ix0 ix1 fx_lo fx_mid fx_hi iy1 iy1 (demand *. fy_hi)
        end
      end
    done;
    (* prefix-sum the difference array back into per-bin usage and
       fold the quadratic score in the same sweep. Per-bin supply in
       wirelength units: one horizontal and one vertical track per
       pitch, derated by the utilization factor. *)
    let cap = t.utilization *. 2.0 *. bw *. bh /. t.pitch in
    if cap <= 0.0 then 0.0
    else begin
      for iy = 0 to t.bins_y - 1 do
        let row = iy * stride in
        for ix = 1 to t.bins_x - 1 do
          let i = row + ix in
          Array.unsafe_set diff i
            (Array.unsafe_get diff i +. Array.unsafe_get diff (i - 1))
        done
      done;
      let inv_cap = 1.0 /. cap in
      let acc = ref 0.0 in
      for ix = 0 to t.bins_x - 1 do
        let u = Array.unsafe_get diff ix in
        acc := !acc +. (u *. u)
      done;
      for iy = 1 to t.bins_y - 1 do
        let row = iy * stride in
        for ix = 0 to t.bins_x - 1 do
          let i = row + ix in
          let u = Array.unsafe_get diff i +. Array.unsafe_get diff (i - stride) in
          Array.unsafe_set diff i u;
          acc := !acc +. (u *. u)
        done
      done;
      !acc *. inv_cap
    end
  end

(* A fresh estimator closure for one annealing chain: private scratch,
   the factory shape every placer engine expects. *)
let estimator ?bins ?pitch ?utilization circuit () =
  let t = create ?bins ?pitch ?utilization circuit in
  fun ~x ~y ~w ~h -> score t ~x ~y ~w ~h

let score_placement t (p : Placer.Placement.t) =
  let n = t.n in
  let xs = Array.make (max 1 n) 0
  and ys = Array.make (max 1 n) 0
  and ws = Array.make (max 1 n) 0
  and hs = Array.make (max 1 n) 0 in
  for c = 0 to n - 1 do
    match Placer.Placement.rect_of p c with
    | None -> ()
    | Some r ->
        xs.(c) <- r.Geometry.Rect.x;
        ys.(c) <- r.Geometry.Rect.y;
        ws.(c) <- r.Geometry.Rect.w;
        hs.(c) <- r.Geometry.Rect.h
  done;
  score t ~x:xs ~y:ys ~w:ws ~h:hs
