(* Compact multi-placement structures (Badaoui & Vemuri, PAPERS.md
   arXiv:0710.4717): once a topology is fixed, a whole family of
   packings is cheap to re-instantiate, so a cache entry stores the
   winning topology — a sequence pair derived from the winning
   placement — plus a Pareto family of candidate packings (rotation
   vectors packed once at build time, and the winner itself as a rigid
   shape-function point). A hit for a different outline selects the
   best-fit family member in O(k) and re-instantiates it through the
   allocation-free arena (sequence-pair candidates) or
   [Shapefn.Shape_fn.instantiate] (the rigid fallback) — microseconds,
   not an anneal.

   Candidate order is fixed at build time (cost, then width, height),
   and selection is a deterministic fold, so repeated identical
   requests materialize byte-identical placements. *)

module G = Constraints.Symmetry_group

type topo =
  | Packing of bool array  (* rotation vector packed through [sp] *)
  | Rigid  (* realize the stored rigid curve point *)

type candidate = {
  topo : topo;
  width : int;
  height : int;
  hpwl : float;
  cost : float;
}

type t = {
  circuit : Netlist.Circuit.t;
  groups : G.t list;
  sp : Seqpair.Sp.t;
  rigid : Shapefn.Shape_fn.t;  (* the winner as a one-point RSF curve *)
  curves : Shapefn.Shape_fn.t array;  (* per-module shape alternatives *)
  candidates : candidate list;  (* Pareto front, (cost, w, h)-sorted *)
}

let candidates t = t.candidates
let curves t = t.curves

(* Pareto prune over (width, height, cost): a candidate survives iff
   no other one is at most as large in every axis (and smaller in
   one). Duplicated (w, h, cost) triples collapse to the first. *)
let pareto cands =
  let dominated a b =
    (* b dominates a *)
    b.width <= a.width && b.height <= a.height && b.cost <= a.cost
    && (b.width < a.width || b.height < a.height || b.cost < a.cost)
  in
  let sorted =
    List.sort
      (fun a b -> compare (a.cost, a.width, a.height) (b.cost, b.width, b.height))
      cands
  in
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if
          List.exists (fun o -> dominated c o) acc
          || List.exists (fun o -> dominated c o) rest
          || List.exists
               (fun o -> (o.width, o.height, o.cost) = (c.width, c.height, c.cost))
               acc
        then keep acc rest
        else keep (c :: acc) rest
  in
  keep [] sorted

(* Candidate rotation vectors: the winner's own rotations, the
   unrotated identity, all-landscape and all-portrait sweeps — each
   harmonized onto symmetry partners, deduplicated. *)
let rot_variants circuit groups base_rot =
  let n = Netlist.Circuit.size circuit in
  let orient pick =
    Array.init n (fun c ->
        let w, h = Netlist.Circuit.dims circuit c in
        pick w h)
  in
  [
    base_rot;
    Array.make n false;
    orient (fun w h -> h > w);  (* landscape: width >= height *)
    orient (fun w h -> w > h);  (* portrait *)
  ]
  |> List.map (fun r -> Placer.Portfolio.harmonize_rot groups (Array.copy r))
  |> List.fold_left
       (fun acc r -> if List.exists (fun s -> s = r) acc then acc else r :: acc)
       []
  |> List.rev

let build ?(weights = Placer.Cost.default) ~arena ~groups circuit placed =
  let n = Netlist.Circuit.size circuit in
  let curves =
    Array.init n (fun c ->
        let w, h = Netlist.Circuit.dims circuit c in
        let shapes =
          Shapefn.Shape.of_module ~cell:c ~w ~h ~rotated:false
          :: (if w = h then []
              else [ Shapefn.Shape.of_module ~cell:c ~w ~h ~rotated:true ])
        in
        Shapefn.Shape_fn.of_shapes shapes)
  in
  let sp0 = Placer.Portfolio.sp_of_placed n placed in
  let sp =
    match groups with
    | [] -> sp0
    | _ -> Seqpair.Symmetry.make_feasible sp0 groups
  in
  let base_rot =
    Placer.Portfolio.harmonize_rot groups
      (Placer.Portfolio.rot_of_placed circuit placed)
  in
  let packed =
    rot_variants circuit groups base_rot
    |> List.filter_map (fun rot ->
           match Placer.Eval.cost_seqpair arena weights ~groups sp ~rot with
           | cost ->
               let width, height, hpwl = Placer.Eval.last_extents arena in
               Some { topo = Packing rot; width; height; hpwl; cost }
           | exception Invalid_argument _ ->
               (* a variant can break pair-dimension parity; skip it *)
               None)
  in
  let rigid_cand =
    let cost = Placer.Eval.cost_placed arena weights placed in
    let width, height, hpwl = Placer.Eval.last_extents arena in
    { topo = Rigid; width; height; hpwl; cost }
  in
  {
    circuit;
    groups;
    sp;
    rigid = Shapefn.Shape_fn.of_shapes [ Shapefn.Shape.of_rigid placed ];
    curves;
    candidates = pareto (rigid_cand :: packed);
  }

(* Provable lower bounds from the per-module curves: every module must
   fit the outline on its own, and the outline must hold the total
   module area. Cheaper than trying every candidate when the request
   is hopeless. *)
let outline_infeasible t (w, h) =
  Array.exists
    (fun fn ->
      Shapefn.Shape_fn.min_width fn > w || Shapefn.Shape_fn.min_height fn > h)
    t.curves
  || Netlist.Circuit.total_module_area t.circuit > w * h

let select ?outline t =
  match t.candidates with
  | [] -> invalid_arg "Multi.select: empty candidate family"
  | first :: _ -> (
      match outline with
      | None -> (first, true)
      | Some (mw, mh) when outline_infeasible t (mw, mh) -> (first, false)
      | Some (mw, mh) -> (
          match
            List.find_opt (fun c -> c.width <= mw && c.height <= mh)
              t.candidates
          with
          | Some c -> (c, true)
          | None -> (first, false)))

let materialize ~arena t cand =
  match cand.topo with
  | Packing rot -> Placer.Eval.realize_seqpair arena ~groups:t.groups t.sp ~rot
  | Rigid -> (
      match
        Shapefn.Shape_fn.instantiate ~max_w:cand.width ~max_h:cand.height
          t.rigid
      with
      | Some placed -> Placer.Placement.make t.circuit placed
      | None -> invalid_arg "Multi.materialize: rigid point vanished")
