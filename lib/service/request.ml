(* Request/response wire format: one JSON object per line.

   A request names its circuit (a built-in bench, a netlist file, or a
   seeded synthetic design), an optional fixed outline, an effort tier
   and a seed. A response carries a [served] tag and latency in the
   envelope and everything deterministic inside [result] — identical
   requests must produce byte-identical [result] objects whether they
   were answered by the miss path or the cache, so anything that can
   legitimately differ between the two (latency, hit/miss status,
   annealing effort) stays out of [result]. *)

module J = Telemetry.Json

type source =
  | Bench of string
  | Netlist_file of string
  | Synthetic of { n : int; seed : int }

type t = {
  id : string;
  source : source;
  outline : (int * int) option;
  effort : Fingerprint.effort;
  seed : int;
}

let source_label = function
  | Bench name -> "bench:" ^ name
  | Netlist_file path -> "netlist:" ^ path
  | Synthetic { n; seed } -> Printf.sprintf "synthetic:n%d:s%d" n seed

(* ---- parsing ------------------------------------------------------- *)

let of_json json =
  let ( let* ) = Result.bind in
  let* source =
    match (J.member "bench" json, J.member "netlist" json,
           J.member "synthetic" json)
    with
    | Some b, None, None -> (
        match J.to_str b with
        | Some name -> Ok (Bench name)
        | None -> Error "\"bench\" must be a string")
    | None, Some p, None -> (
        match J.to_str p with
        | Some path -> Ok (Netlist_file path)
        | None -> Error "\"netlist\" must be a string")
    | None, None, Some s -> (
        match
          ( Option.bind (J.member "n" s) J.to_int,
            Option.bind (J.member "seed" s) J.to_int )
        with
        | Some n, Some seed when n > 0 -> Ok (Synthetic { n; seed })
        | _ -> Error "\"synthetic\" needs integer fields n > 0 and seed")
    | None, None, None ->
        Error "request needs one of \"bench\", \"netlist\", \"synthetic\""
    | _ -> Error "request must name exactly one circuit source"
  in
  let* outline =
    match J.member "outline" json with
    | None | Some J.Null -> Ok None
    | Some (J.Arr [ w; h ]) -> (
        match (J.to_int w, J.to_int h) with
        | Some w, Some h when w > 0 && h > 0 -> Ok (Some (w, h))
        | _ -> Error "\"outline\" must be [w, h] with positive integers")
    | Some _ -> Error "\"outline\" must be [w, h]"
  in
  let* effort =
    match J.member "effort" json with
    | None -> Ok Fingerprint.Standard
    | Some e -> (
        match Option.bind (J.to_str e) Fingerprint.effort_of_string with
        | Some eff -> Ok eff
        | None -> Error "\"effort\" must be quick | standard | thorough")
  in
  let* seed =
    match J.member "seed" json with
    | None -> Ok 0
    | Some s -> (
        match J.to_int s with
        | Some v -> Ok v
        | None -> Error "\"seed\" must be an integer")
  in
  let id =
    match Option.bind (J.member "id" json) J.to_str with
    | Some id -> id
    | None -> source_label source
  in
  Ok { id; source; outline; effort; seed }

let of_line line =
  match J.parse line with
  | Error e -> Error ("request line: " ^ e)
  | Ok json -> of_json json

let to_json r =
  let source_fields =
    match r.source with
    | Bench name -> [ ("bench", J.str name) ]
    | Netlist_file path -> [ ("netlist", J.str path) ]
    | Synthetic { n; seed } ->
        [ ("synthetic", J.Obj [ ("n", J.int n); ("seed", J.int seed) ]) ]
  in
  J.Obj
    (("id", J.str r.id) :: source_fields
    @ (match r.outline with
      | None -> []
      | Some (w, h) -> [ ("outline", J.Arr [ J.int w; J.int h ]) ])
    @ (("effort", J.str (Fingerprint.effort_to_string r.effort))
       :: (if r.seed = 0 then [] else [ ("seed", J.int r.seed) ])))

(* ---- circuit resolution -------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve_source = function
  | Bench name -> (
      match name with
      | "miller" -> Ok (Netlist.Benchmarks.miller ())
      | "fig2" -> Ok (Netlist.Benchmarks.fig2_design ())
      | _ -> (
          match
            List.find_opt
              (fun (b : Netlist.Benchmarks.bench) ->
                String.lowercase_ascii b.label
                = String.lowercase_ascii
                    (String.map (function '-' -> ' ' | c -> c) name))
              (Netlist.Benchmarks.table1_suite ())
          with
          | Some b -> Ok b
          | None -> Error (Printf.sprintf "unknown benchmark %S" name)))
  | Synthetic { n; seed } ->
      Ok
        (Netlist.Benchmarks.synthetic
           ~label:(Printf.sprintf "syn-n%d-s%d" n seed)
           ~n ~seed)
  | Netlist_file path -> (
      match read_file path with
      | exception Sys_error msg -> Error msg
      | contents -> (
          match Netlist.Parser.parse_string contents with
          | Error (e : Netlist.Parser.error) ->
              Error
                (Printf.sprintf "%s:%d: %s" path e.Netlist.Parser.line
                   e.Netlist.Parser.message)
          | Ok devices -> (
              let name =
                Filename.remove_extension (Filename.basename path)
              in
              let circuit = Netlist.Parser.to_circuit ~name devices in
              match Netlist.Recognize.recognize circuit with
              | exception Invalid_argument msg ->
                  Error ("structure recognition failed: " ^ msg)
              | { Netlist.Recognize.hierarchy; _ } ->
                  Ok { Netlist.Benchmarks.label = name; circuit; hierarchy })))

(* ---- responses ----------------------------------------------------- *)

type result_body = {
  label : string;
  digest : string;
  fingerprint : string;
  outline : (int * int) option;
  outline_fit : bool option;
  cost : float;
  width : int;
  height : int;
  area : int;
  hpwl : float;
  dead_space_pct : float;
  violations : int;
  placement : Telemetry.Ledger.rect list;
}

type response = {
  request_id : string;
  served : string;  (** "hit" | "miss" | "evict-miss" | "error" *)
  latency_us : int;
  sa_rounds : int;
  evaluated : int;
  body : (result_body, string) Stdlib.result;
}

let result_json (b : result_body) =
  J.Obj
    [
      ("label", J.str b.label);
      ("digest", J.str b.digest);
      ("fingerprint", J.str b.fingerprint);
      ( "outline",
        match b.outline with
        | None -> J.Null
        | Some (w, h) -> J.Arr [ J.int w; J.int h ] );
      ( "outline_fit",
        match b.outline_fit with None -> J.Null | Some f -> J.bool f );
      ("cost", J.float b.cost);
      ("width", J.int b.width);
      ("height", J.int b.height);
      ("area", J.int b.area);
      ("hpwl", J.float b.hpwl);
      ("dead_space_pct", J.float b.dead_space_pct);
      ("violations", J.int b.violations);
      ( "placement",
        J.Arr
          (List.map
             (fun (r : Telemetry.Ledger.rect) ->
               J.Obj
                 [
                   ("cell", J.str r.Telemetry.Ledger.cell);
                   ("x", J.int r.Telemetry.Ledger.x);
                   ("y", J.int r.Telemetry.Ledger.y);
                   ("w", J.int r.Telemetry.Ledger.w);
                   ("h", J.int r.Telemetry.Ledger.h);
                 ])
             b.placement) );
    ]

let response_json r =
  J.Obj
    [
      ("id", J.str r.request_id);
      ("served", J.str r.served);
      ("latency_us", J.int r.latency_us);
      ("sa_rounds", J.int r.sa_rounds);
      ("evaluated", J.int r.evaluated);
      ( (match r.body with Ok _ -> "result" | Error _ -> "error"),
        match r.body with
        | Ok b -> result_json b
        | Error msg -> J.str msg );
    ]

let response_line r = J.emit (response_json r)
