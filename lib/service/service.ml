(* The placement service engine.

   Long-lived state: one memoizing multi-placement cache, one shared
   Anneal.Pool (domains spawned once, reused by every request — the
   miss path races Placer.Portfolio on it, the hit path runs
   instantiation jobs on it), and a pool of Placer.Eval arenas keyed
   by circuit digest so a request draws a preallocated arena instead
   of building one.

   A batch runs in two phases per wave of [in_flight] requests:

   - misses first, sequentially on the caller (the anneal itself
     parallelizes across the pool; running a race from inside a pool
     job would drain the pool from a worker). Each unique fingerprint
     anneals once — identical in-flight requests share the entry.
   - then every request becomes one instantiation job on the pool:
     select the best-fit family member, re-pack it through a pooled
     arena, re-check it with Analysis.Verify. A failed re-check evicts
     the entry and marks the request; evicted requests re-anneal on
     the caller after the drain and are served from the rebuilt entry.

   Every response — miss or hit — is materialized from the cache entry
   by the same deterministic selection, so identical requests return
   byte-identical result objects regardless of which path served them.

   Telemetry: each request records into a private Sink.child (tid =
   running request ordinal); service.* counters and latency histograms
   live in the children and merge into the root sink by name when the
   wave completes, so no worker ever touches the root sink and
   per-request streams never interleave. *)

(* [service.ml] is the library's main module, so re-export the
   submodules the generated alias module would otherwise expose. *)
module Fingerprint = Fingerprint
module Multi = Multi
module Cache = Cache
module Request = Request

module G = Constraints.Symmetry_group

type t = {
  cache : Cache.t;
  pool : Anneal.Pool.t;
  arenas : (string, Placer.Eval.t list ref) Hashtbl.t;
  arenas_mutex : Mutex.t;
  telemetry : Telemetry.Sink.t;
  validate : bool;
  mutable next_tid : int;
  mutable shut : bool;
}

let create ?(workers = Anneal.Parallel.default_workers ())
    ?(cache_capacity = 256) ?validate
    ?(telemetry = Telemetry.Sink.create ()) () =
  let validate =
    match validate with
    | Some v -> v
    | None -> Analysis.Invariant.enabled_from_env ()
  in
  {
    cache = Cache.create ~capacity:cache_capacity ();
    pool = Anneal.Pool.create ~workers;
    arenas = Hashtbl.create 16;
    arenas_mutex = Mutex.create ();
    telemetry;
    validate;
    next_tid = 0;
    shut = false;
  }

let cache t = t.cache
let pool t = t.pool

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Anneal.Pool.drain t.pool;
    Anneal.Pool.shutdown t.pool
  end

let with_service ?workers ?cache_capacity ?validate ?telemetry f =
  let t = create ?workers ?cache_capacity ?validate ?telemetry () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---- arena pool ----------------------------------------------------

   Pooled arenas are shared across requests, so they carry no request
   sink (a sink bound at creation would bleed one request's counters
   into another's); request-level telemetry is recorded by the service
   itself. *)

let arena_checkout t circuit =
  let key = Netlist.Circuit.digest circuit in
  Mutex.lock t.arenas_mutex;
  let free =
    match Hashtbl.find_opt t.arenas key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.arenas key r;
        r
  in
  let arena =
    match !free with
    | a :: rest ->
        free := rest;
        Some a
    | [] -> None
  in
  Mutex.unlock t.arenas_mutex;
  match arena with Some a -> a | None -> Placer.Eval.create circuit

let arena_checkin t arena =
  let key = Netlist.Circuit.digest (Placer.Eval.circuit arena) in
  Mutex.lock t.arenas_mutex;
  (match Hashtbl.find_opt t.arenas key with
  | Some r -> r := arena :: !r
  | None -> Hashtbl.replace t.arenas key (ref [ arena ]));
  Mutex.unlock t.arenas_mutex

let with_arena t circuit f =
  let arena = arena_checkout t circuit in
  Fun.protect ~finally:(fun () -> arena_checkin t arena) (fun () -> f arena)

(* ---- request plumbing ---------------------------------------------- *)

let params_of_effort ~n = function
  | Fingerprint.Quick ->
      let p = Anneal.Sa.default_params ~n in
      {
        p with
        Anneal.Sa.max_rounds = 120;
        moves_per_round = max 32 (4 * n);
        frozen_rounds = 3;
      }
  | Fingerprint.Standard -> Anneal.Sa.default_params ~n
  | Fingerprint.Thorough ->
      let p = Anneal.Sa.default_params ~n in
      { p with Anneal.Sa.max_rounds = 2 * p.Anneal.Sa.max_rounds }

let chains_of_effort = function
  | Fingerprint.Quick | Fingerprint.Standard -> 1
  | Fingerprint.Thorough -> 2

(* The cost scale a request anneals and instantiates under: the
   outline class contributes its aspect target, so a wide-outline
   request's topology is pulled toward wide packings. Derived, not
   caller-supplied, so the fingerprint and the evaluation always
   agree. *)
let weights_of_outline outline =
  match Fingerprint.class_target_aspect (Fingerprint.classify outline) with
  | None -> Placer.Cost.default
  | Some target ->
      { Placer.Cost.default with Placer.Cost.aspect = 0.1; target_aspect = target }

(* A parsed, resolved, fingerprinted request — the unit the batch
   pipeline schedules. *)
type job = {
  req : Request.t;
  bench : Netlist.Benchmarks.bench;
  groups : G.t list;
  weights : Placer.Cost.weights;
  fp : string;
  tel : Telemetry.Sink.t;  (* private child sink *)
  mutable served : string;
  mutable sa_rounds : int;
  mutable evaluated : int;
  mutable latency_us : int;
  mutable body : (Request.result_body, string) result;
  mutable needs_anneal : bool;  (* set by a worker on verify-eviction *)
}

let finish_job job ~served ~t0 ~t1 body =
  job.served <- served;
  job.latency_us <- int_of_float ((t1 -. t0) *. 1e6);
  job.body <- body

let response_of_job (job : job) =
  {
    Request.request_id = job.req.Request.id;
    served = job.served;
    latency_us = job.latency_us;
    sa_rounds = job.sa_rounds;
    evaluated = job.evaluated;
    body = job.body;
  }

(* ---- the hit path --------------------------------------------------

   Select, re-instantiate, re-verify. Never anneals; runs on pool
   workers. Returns Error with the verify diagnostics when the entry
   must not be served. *)

let instantiate_and_verify t job multi =
  let { Netlist.Benchmarks.label; circuit; hierarchy } = job.bench in
  let outline = job.req.Request.outline in
  let cand, fit = Multi.select ?outline multi in
  let placement =
    with_arena t circuit (fun arena -> Multi.materialize ~arena multi cand)
  in
  let placed = placement.Placer.Placement.placed in
  (* verify exactly what the engines enforce: geometry, symmetry
     groups, and the outline when the served candidate claims to fit
     it. Hierarchy proximity/centroid nodes are reported as QoR
     violations below, not verify errors — no engine enforces them. *)
  let verify_outline = if fit then outline else None in
  let diags =
    Analysis.Verify.placement ~groups:job.groups ?outline:verify_outline
      circuit placed
  in
  let errors =
    List.filter
      (fun (d : Analysis.Diagnostic.t) ->
        d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
      diags
  in
  if errors <> [] then
    Error
      (String.concat "; "
         (List.map
            (fun (d : Analysis.Diagnostic.t) ->
              d.Analysis.Diagnostic.code ^ " " ^ d.Analysis.Diagnostic.message)
            errors))
  else begin
    let violations =
      Placer.Qor.violations ~groups:job.groups ~hierarchy placement
      |> List.fold_left
           (fun acc (v : Telemetry.Qor.violation) ->
             acc + v.Telemetry.Qor.count)
           0
    in
    let width = Placer.Placement.width placement in
    let height = Placer.Placement.height placement in
    let area = width * height in
    let dead_space_pct =
      if area = 0 then 0.0
      else
        100.0
        *. float_of_int (area - Netlist.Circuit.total_module_area circuit)
        /. float_of_int area
    in
    Ok
      {
        Request.label;
        digest = Netlist.Circuit.digest circuit;
        fingerprint = job.fp;
        outline;
        outline_fit = (match outline with None -> None | Some _ -> Some fit);
        cost = cand.Multi.cost;
        width;
        height;
        area;
        hpwl = cand.Multi.hpwl;
        dead_space_pct;
        violations;
        placement = Placer.Qor.rects placement;
      }
  end

(* ---- the miss path -------------------------------------------------

   Portfolio race on the shared pool, then build and insert the
   multi-placement entry. Runs on the caller only. *)

let anneal_entry t job =
  let { Netlist.Benchmarks.circuit; hierarchy; _ } = job.bench in
  let n = Netlist.Circuit.size circuit in
  let params = params_of_effort ~n job.req.Request.effort in
  let chains = chains_of_effort job.req.Request.effort in
  let rng = Prelude.Rng.create job.req.Request.seed in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Placer.Portfolio.race ~weights:job.weights ~params ~groups:job.groups
      ~pool:t.pool ~chains ~hierarchy ~validate:t.validate ~telemetry:job.tel
      ~rng circuit
  in
  job.sa_rounds <-
    List.fold_left
      (fun acc (e : Placer.Portfolio.entrant) ->
        acc + e.Placer.Portfolio.sa_rounds)
      0 outcome.Placer.Portfolio.entrants;
  job.evaluated <- outcome.Placer.Portfolio.evaluated;
  let multi =
    with_arena t circuit (fun arena ->
        Multi.build ~weights:job.weights ~arena ~groups:job.groups circuit
          outcome.Placer.Portfolio.placement.Placer.Placement.placed)
  in
  Cache.insert t.cache job.fp multi;
  let t1 = Unix.gettimeofday () in
  Telemetry.Sink.histogram job.tel "service.miss_us"
  |> fun h -> Telemetry.Hist.observe h ((t1 -. t0) *. 1e6);
  multi

(* ---- batch pipeline ------------------------------------------------ *)

let job_of_request t req =
  t.next_tid <- t.next_tid + 1;
  let tel = Telemetry.Sink.child t.telemetry ~tid:t.next_tid in
  Telemetry.Counter.incr (Telemetry.Sink.counter tel "service.requests");
  match Request.resolve_source req.Request.source with
  | Error msg ->
      Error
        {
          Request.request_id = req.Request.id;
          served = "error";
          latency_us = 0;
          sa_rounds = 0;
          evaluated = 0;
          body = Error msg;
        }
  | Ok bench ->
      let groups = G.of_hierarchy bench.Netlist.Benchmarks.hierarchy in
      let outline = req.Request.outline in
      let weights = weights_of_outline outline in
      let fp =
        Fingerprint.make ~groups ~hierarchy:bench.Netlist.Benchmarks.hierarchy
          ?outline ~weights ~seed:req.Request.seed
          ~effort:req.Request.effort bench.Netlist.Benchmarks.circuit
      in
      Ok
        {
          req;
          bench;
          groups;
          weights;
          fp;
          tel;
          served = "error";
          sa_rounds = 0;
          evaluated = 0;
          latency_us = 0;
          body = Error "unprocessed";
          needs_anneal = false;
        }

let bump job name =
  Telemetry.Counter.incr (Telemetry.Sink.counter job.tel name)

let observe job name v =
  Telemetry.Hist.observe (Telemetry.Sink.histogram job.tel name) v

(* Serve one request from a cache entry on a pool worker. [served] is
   the envelope tag to use on success. *)
let hit_job t job ~served multi () =
  let t0 = Unix.gettimeofday () in
  match instantiate_and_verify t job multi with
  | Ok body ->
      let t1 = Unix.gettimeofday () in
      bump job "service.instantiations";
      observe job "service.instantiate_us" ((t1 -. t0) *. 1e6);
      (match body.Request.outline_fit with
      | Some false -> bump job "service.unfit"
      | Some true | None -> ());
      job.evaluated <- job.evaluated + 1;
      finish_job job ~served ~t0 ~t1 (Ok body)
  | Error msg ->
      (* the re-check failed: evict and fall through to the miss path
         (re-annealed on the caller after the drain) *)
      if Sys.getenv_opt "ANALOG_SERVICE_DEBUG" <> None then
        Printf.eprintf "service: evicting %s: %s\n%!" job.fp msg;
      ignore (Cache.remove t.cache job.fp);
      bump job "service.verify_evictions";
      job.needs_anneal <- true;
      let t1 = Unix.gettimeofday () in
      finish_job job ~served:"error" ~t0 ~t1
        (Error ("cache entry failed re-verification: " ^ msg))

(* Anneal on the caller and serve from the fresh entry, through the
   same instantiation path as every other response. *)
let miss_serve t job ~served =
  let t0 = Unix.gettimeofday () in
  match anneal_entry t job with
  | exception e ->
      let t1 = Unix.gettimeofday () in
      finish_job job ~served:"error" ~t0 ~t1 (Error (Printexc.to_string e))
  | multi -> (
      match instantiate_and_verify t job multi with
      | Ok body ->
          let t1 = Unix.gettimeofday () in
          bump job "service.instantiations";
          job.evaluated <- job.evaluated + 1;
          finish_job job ~served ~t0 ~t1 (Ok body)
      | Error msg ->
          (* a freshly annealed entry failing its own re-check is an
             engine bug, not a stale cache: do not loop *)
          ignore (Cache.remove t.cache job.fp);
          bump job "service.verify_evictions";
          let t1 = Unix.gettimeofday () in
          finish_job job ~served:"error" ~t0 ~t1
            (Error ("fresh placement failed verification: " ^ msg)))

(* The negative-cache key. The fingerprint classifies the outline into
   coarse aspect classes (so near-identical outlines share placement
   entries), but a feasibility proof is relative to the {e exact} box —
   a request 1 unit wider may be perfectly placeable. Salt the key with
   the exact outline so proofs never leak across boxes. *)
let negative_key (job : job) =
  match job.req.Request.outline with
  | None -> job.fp ^ ";neg-outline:none"
  | Some (w, h) -> Printf.sprintf "%s;neg-outline:%dx%d" job.fp w h

(* Instant reject on a cached (or freshly proven) infeasibility. Only
   [Error]-severity findings count: they are sound proofs for any
   engine, while warnings are merely evidence and must not block the
   anneal. Returns true when the job was served. *)
let reject_if_infeasible t job =
  let t0 = Unix.gettimeofday () in
  let key = negative_key job in
  match Cache.find_negative t.cache key with
  | Some proof ->
      bump job "service.neg_hits";
      let t1 = Unix.gettimeofday () in
      finish_job job ~served:"infeasible" ~t0 ~t1
        (Error ("infeasible: " ^ proof));
      true
  | None -> (
      let { Netlist.Benchmarks.circuit; hierarchy; _ } = job.bench in
      let diags =
        Analysis.Feasibility.check ~groups:job.groups ~hierarchy
          ?outline:job.req.Request.outline circuit
      in
      let errors =
        List.filter
          (fun (d : Analysis.Diagnostic.t) ->
            d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
          diags
      in
      match errors with
      | [] -> false
      | _ ->
          let proof =
            String.concat "; "
              (List.map
                 (fun (d : Analysis.Diagnostic.t) ->
                   d.Analysis.Diagnostic.code ^ " "
                   ^ d.Analysis.Diagnostic.message)
                 errors)
          in
          Cache.insert_negative t.cache key proof;
          bump job "service.infeasible";
          let t1 = Unix.gettimeofday () in
          finish_job job ~served:"infeasible" ~t0 ~t1
            (Error ("infeasible: " ^ proof));
          true)

let process_wave t jobs =
  (* misses first, one anneal per unique fingerprint, on the caller —
     but a key proven unplaceable rejects instantly instead *)
  List.iter
    (fun job ->
      if not (Cache.mem t.cache job.fp) then begin
        if not (reject_if_infeasible t job) then begin
          bump job "service.misses";
          miss_serve t job ~served:"miss"
        end
      end)
    jobs;
  (* everything still unserved is a hit: instantiate concurrently *)
  let pending =
    List.filter (fun job -> job.body = Error "unprocessed") jobs
  in
  List.iter
    (fun job ->
      match Cache.find t.cache job.fp with
      | Some multi ->
          bump job "service.hits";
          let t0 = Unix.gettimeofday () in
          Anneal.Pool.submit t.pool (fun () ->
              hit_job t job ~served:"hit" multi ();
              observe job "service.hit_us"
                ((Unix.gettimeofday () -. t0) *. 1e6))
      | None ->
          (* evicted between the miss phase and here (capacity or a
             concurrent verify-eviction): anneal below *)
          job.needs_anneal <- true)
    pending;
  Anneal.Pool.drain t.pool;
  (* verify-evicted (or raced-out) requests re-anneal sequentially *)
  List.iter
    (fun job ->
      if job.needs_anneal then begin
        job.needs_anneal <- false;
        bump job "service.misses";
        miss_serve t job ~served:"evict-miss"
      end)
    pending;
  (* single-threaded again: merge the request sinks into the root *)
  List.iter (fun job -> Telemetry.Sink.absorb t.telemetry job.tel) jobs

let run_batch ?in_flight t requests =
  if t.shut then invalid_arg "Service.run_batch: service is shut down";
  let parsed = List.map (job_of_request t) requests in
  let jobs = List.filter_map Result.to_option parsed in
  let wave =
    match in_flight with
    | None -> max 1 (List.length jobs)
    | Some k -> max 1 k
  in
  let rec waves = function
    | [] -> ()
    | js ->
        let rec split i acc rest =
          match rest with
          | x :: tl when i < wave -> split (i + 1) (x :: acc) tl
          | _ -> (List.rev acc, rest)
        in
        let now, later = split 0 [] js in
        process_wave t now;
        waves later
  in
  waves jobs;
  List.map
    (function Error resp -> resp | Ok job -> response_of_job job)
    parsed

let submit t request =
  match run_batch t [ request ] with
  | [ resp ] -> resp
  | _ -> assert false

let metrics t = Telemetry.Prom.render t.telemetry

let counter_value t name =
  match List.assoc_opt name (Telemetry.Sink.counters t.telemetry) with
  | Some v -> v
  | None -> 0
