(** JSONL wire format of the placement service.

    One JSON object per line in both directions. A request names its
    circuit — a built-in bench ([{"bench":"miller"}]), a netlist file
    ([{"netlist":"path.cir"}]) or a seeded synthetic design
    ([{"synthetic":{"n":100,"seed":3}}]) — plus optional
    [outline:[w,h]], [effort] and [seed]. The response envelope
    carries the [served] tag, latency and annealing effort; everything
    deterministic lives in the [result] object, so identical requests
    produce byte-identical [result]s whether served cold or from the
    cache. *)

type source =
  | Bench of string
  | Netlist_file of string
  | Synthetic of { n : int; seed : int }

type t = {
  id : string;  (** echoed in the response; defaults to a source label *)
  source : source;
  outline : (int * int) option;
  effort : Fingerprint.effort;  (** default Standard *)
  seed : int;  (** default 0; part of the cache key *)
}

val source_label : source -> string

val of_json : Telemetry.Json.t -> (t, string) result
val of_line : string -> (t, string) result
val to_json : t -> Telemetry.Json.t

val resolve_source : source -> (Netlist.Benchmarks.bench, string) result
(** Load the circuit + hierarchy behind a source. Bench names match
    the CLI's: miller, fig2, and the Table I suite labels. *)

type result_body = {
  label : string;
  digest : string;
  fingerprint : string;
  outline : (int * int) option;
  outline_fit : bool option;  (** [None] for free-outline requests *)
  cost : float;
  width : int;
  height : int;
  area : int;
  hpwl : float;
  dead_space_pct : float;
  violations : int;
  placement : Telemetry.Ledger.rect list;
}

type response = {
  request_id : string;
  served : string;  (** "hit" | "miss" | "evict-miss" | "error" *)
  latency_us : int;
  sa_rounds : int;
  evaluated : int;
  body : (result_body, string) Stdlib.result;
}

val result_json : result_body -> Telemetry.Json.t
(** The deterministic part alone — what byte-identity is asserted
    over. *)

val response_json : response -> Telemetry.Json.t
val response_line : response -> string
(** Envelope + result (or [error]) as one JSONL line. *)
