(** The placement service engine: placement-as-a-service over a
    memoizing multi-placement cache.

    A request is (netlist, outline, constraint set, effort); a
    response is (placement, QoR summary). State held across requests:
    the {!Cache} of {!Multi} structures, one shared {!Anneal.Pool}
    (domains spawned once — no per-request spawns), and a digest-keyed
    pool of {!Placer.Eval} arenas (no per-request large allocations on
    the hit path).

    Misses anneal through {!Placer.Portfolio.race} on the shared pool,
    sequentially on the caller; hits instantiate concurrently as pool
    jobs, each re-checked by {!Analysis.Verify} before serving — a
    failed re-check evicts the entry and the request re-anneals
    ([served = "evict-miss"]). Every response is materialized from the
    cache entry by the same deterministic selection, so identical
    requests return byte-identical [result] objects on either path.

    Telemetry (merged into the root sink per wave, never touched by
    workers directly): [service.requests] / [.hits] / [.misses] /
    [.instantiations] / [.verify_evictions] / [.unfit] counters and
    [service.hit_us] / [.miss_us] / [.instantiate_us] latency
    histograms — all visible through {!Telemetry.Prom.render} (see
    {!metrics}). *)

module Fingerprint = Fingerprint
module Multi = Multi
module Cache = Cache
module Request = Request

type t

val create :
  ?workers:int ->
  ?cache_capacity:int ->
  ?validate:bool ->
  ?telemetry:Telemetry.Sink.t ->
  unit ->
  t
(** [workers] sizes the shared pool (default
    {!Anneal.Parallel.default_workers}); [cache_capacity] the LRU
    cache (default 256); [validate] the move-level sanitizers on the
    miss path (default the [ANALOG_VALIDATE=1] switch); [telemetry]
    the root sink (default a fresh live sink, so hit-rate counters
    are always available — pass {!Telemetry.Sink.null} to opt out). *)

val shutdown : t -> unit
(** Drain and join the pool. Idempotent; the service rejects batches
    afterwards. *)

val with_service :
  ?workers:int ->
  ?cache_capacity:int ->
  ?validate:bool ->
  ?telemetry:Telemetry.Sink.t ->
  (t -> 'a) ->
  'a

val cache : t -> Cache.t
val pool : t -> Anneal.Pool.t

val run_batch :
  ?in_flight:int -> t -> Request.t list -> Request.response list
(** Process a batch, responses in request order. [in_flight] bounds
    how many requests are processed concurrently (default: the whole
    batch as one wave); within a wave, identical fingerprints anneal
    at most once and every hit instantiates in parallel on the pool. *)

val submit : t -> Request.t -> Request.response
(** One-request batch. *)

val metrics : t -> string
(** Prometheus text exposition of the root sink
    ({!Telemetry.Prom.render}) — hit/miss/instantiation counters and
    latency summaries. *)

val counter_value : t -> string -> int
(** A root-sink counter by registry name (0 when absent) — e.g.
    [counter_value t "service.hits"]. *)

val weights_of_outline : (int * int) option -> Placer.Cost.weights
(** The cost scale a request is annealed and instantiated under: the
    default weights, with the outline class's aspect target mixed in
    for fixed-outline requests. Exposed so benches compare cold runs
    under identical weights. *)

val params_of_effort : n:int -> Fingerprint.effort -> Anneal.Sa.params
(** The annealing schedule each effort tier maps to at circuit size
    [n]. *)
