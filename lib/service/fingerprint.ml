(* Cache keys for the placement service.

   A key must equate exactly the requests one multi-placement entry can
   answer: same netlist content (the circuit digest), same constraint
   obligations (canonical signatures, so naming/ordering noise does not
   split the cache), same cost scale, same effort, same seed — and the
   outline *class* rather than the outline itself, because the whole
   point of the multi-placement structure is that one cached topology
   instantiates packings for many concrete outlines. Classes bucket by
   aspect so a topology annealed toward a wide box is not asked to
   answer tall requests. *)

type effort = Quick | Standard | Thorough

let effort_to_string = function
  | Quick -> "quick"
  | Standard -> "standard"
  | Thorough -> "thorough"

let effort_of_string = function
  | "quick" -> Some Quick
  | "standard" -> Some Standard
  | "thorough" -> Some Thorough
  | _ -> None

type outline_class = Free | Square | Wide | Tall

let classify = function
  | None -> Free
  | Some (w, h) ->
      if h <= 0 || w <= 0 then Square
      else
        let r = float_of_int w /. float_of_int h in
        if r >= 2.0 then Wide else if r <= 0.5 then Tall else Square

let class_to_string = function
  | Free -> "free"
  | Square -> "square"
  | Wide -> "wide"
  | Tall -> "tall"

(* The class's representative w/h ratio — the aspect target the miss
   path anneals toward when the request carries a fixed outline. *)
let class_target_aspect = function
  | Free -> None
  | Square -> Some 1.0
  | Wide -> Some 2.0
  | Tall -> Some 0.5

let canonical ?(groups = []) ?hierarchy ?outline
    ?(weights = Placer.Cost.default) ?(seed = 0) ~effort () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "groups:";
  List.map Constraints.Symmetry_group.signature groups
  |> List.sort_uniq compare
  |> List.iter (Buffer.add_string buf);
  Buffer.add_string buf ";hier:";
  (match hierarchy with
  | None -> ()
  | Some h -> Buffer.add_string buf (Netlist.Hierarchy.constraint_signature h));
  Buffer.add_string buf ";outline:";
  Buffer.add_string buf (class_to_string (classify outline));
  Buffer.add_string buf ";effort:";
  Buffer.add_string buf (effort_to_string effort);
  Buffer.add_string buf ";seed:";
  Buffer.add_string buf (string_of_int seed);
  Buffer.add_string buf
    (Printf.sprintf ";weights:%.17g,%.17g,%.17g,%.17g,%.17g"
       weights.Placer.Cost.area weights.Placer.Cost.wirelength
       weights.Placer.Cost.aspect weights.Placer.Cost.target_aspect
       weights.Placer.Cost.routability);
  Buffer.contents buf

let make ?groups ?hierarchy ?outline ?weights ?seed ~effort circuit =
  Netlist.Circuit.digest circuit
  ^ "-"
  ^ Netlist.Circuit.fnv1a
      (canonical ?groups ?hierarchy ?outline ?weights ?seed ~effort ())
