(* Memoizing multi-placement cache: fingerprint -> Multi.t with LRU
   eviction under a fixed capacity. The service's dispatch phase and
   its pool workers both touch the table (a failed hit re-check evicts
   from a worker), so every operation holds the mutex; entries
   themselves are immutable after insertion, so readers never see a
   torn Multi.t. *)

type entry = {
  multi : Multi.t;
  mutable last_used : int;  (* logical clock, not wall time *)
  mutable hits : int;
}

(* Negative entries are much smaller than Multi.t structures (one
   proof string), but still bounded by the same capacity so a stream
   of distinct infeasible requests cannot grow the table forever. *)
type negative = {
  proof : string;
  mutable neg_last_used : int;
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  negative : (string, negative) Hashtbl.t;
  mutex : Mutex.t;
  mutable clock : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    negative = Hashtbl.create 16;
    mutex = Mutex.create ();
    clock = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some e ->
          t.clock <- t.clock + 1;
          e.last_used <- t.clock;
          e.hits <- e.hits + 1;
          Some e.multi)

let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1

let insert t key multi =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some _ -> Hashtbl.remove t.table key
      | None -> ());
      while Hashtbl.length t.table >= t.capacity do
        evict_lru_locked t
      done;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.table key { multi; last_used = t.clock; hits = 0 })

let remove t key =
  locked t (fun () ->
      if Hashtbl.mem t.table key then begin
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        true
      end
      else false)

let length t = locked t (fun () -> Hashtbl.length t.table)
let evictions t = locked t (fun () -> t.evictions)
let capacity t = t.capacity

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

(* ---- negative cache ------------------------------------------------ *)

let insert_negative t key proof =
  locked t (fun () ->
      (match Hashtbl.find_opt t.negative key with
      | Some _ -> Hashtbl.remove t.negative key
      | None -> ());
      while Hashtbl.length t.negative >= t.capacity do
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, best) when best.neg_last_used <= e.neg_last_used ->
                  acc
              | _ -> Some (k, e))
            t.negative None
        in
        match victim with
        | None -> ()
        | Some (k, _) -> Hashtbl.remove t.negative k
      done;
      t.clock <- t.clock + 1;
      Hashtbl.replace t.negative key { proof; neg_last_used = t.clock })

let find_negative t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.negative key with
      | None -> None
      | Some e ->
          t.clock <- t.clock + 1;
          e.neg_last_used <- t.clock;
          Some e.proof)

let negatives t = locked t (fun () -> Hashtbl.length t.negative)
