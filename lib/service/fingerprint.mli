(** Cache keys for the placement service.

    A key is [<circuit digest>-<fnv1a of the canonical request
    rendering>]: the FNV-1a content hash of the netlist
    ({!Netlist.Circuit.digest}) joined with a hash of the constraint
    set (canonical {!Constraints.Symmetry_group.signature} /
    {!Netlist.Hierarchy.constraint_signature} renderings, so naming
    and ordering noise cannot split the cache), the cost weights, the
    effort, the request seed, and the {e outline class} — never the
    concrete outline, because one cached multi-placement structure
    answers every outline of its class by re-instantiation. *)

type effort = Quick | Standard | Thorough
(** How hard the miss path anneals (scales {!Anneal.Sa.params}). *)

val effort_to_string : effort -> string
(** ["quick"] | ["standard"] | ["thorough"]. *)

val effort_of_string : string -> effort option

type outline_class = Free | Square | Wide | Tall
(** Aspect bucket of a request outline: no outline, or w/h within
    (0.5, 2), at least 2, at most 0.5. *)

val classify : (int * int) option -> outline_class
val class_to_string : outline_class -> string

val class_target_aspect : outline_class -> float option
(** The class's representative w/h ratio — what the miss path anneals
    toward when the request is fixed-outline ([None] for {!Free}). *)

val canonical :
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?outline:int * int ->
  ?weights:Placer.Cost.weights ->
  ?seed:int ->
  effort:effort ->
  unit ->
  string
(** The canonical rendering the key hashes (exposed for the QCheck
    fingerprint-stability properties). Group signatures are sorted and
    deduplicated, so group order never matters; [seed] defaults to 0,
    [weights] to {!Placer.Cost.default}. *)

val make :
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?outline:int * int ->
  ?weights:Placer.Cost.weights ->
  ?seed:int ->
  effort:effort ->
  Netlist.Circuit.t ->
  string
(** The cache key. *)
