(** Compact multi-placement structures — the value a cache entry
    stores.

    One winning topology (a sequence pair derived from the winning
    placement, symmetric-feasible when groups apply) plus a Pareto
    family of candidate packings: rotation-vector variants packed once
    at build time through the allocation-free arena, and the winning
    placement itself as a one-point rigid {!Shapefn.Shape_fn} curve.
    Per-module shape-alternative curves provide provable outline lower
    bounds. A hit selects the best-fit family member deterministically
    and re-instantiates it in microseconds; re-annealing never happens
    on this path (Badaoui & Vemuri's multi-placement query,
    PAPERS.md arXiv:0710.4717). *)

type topo =
  | Packing of bool array
      (** re-pack the stored sequence pair under this rotation vector *)
  | Rigid  (** realize the stored rigid curve point (the winner) *)

type candidate = {
  topo : topo;
  width : int;
  height : int;
  hpwl : float;
  cost : float;
}
(** One family member: its instantiation recipe and the geometry /
    cost it packs to (recorded at build time; instantiation reproduces
    them exactly). *)

type t

val build :
  ?weights:Placer.Cost.weights ->
  arena:Placer.Eval.t ->
  groups:Constraints.Symmetry_group.t list ->
  Netlist.Circuit.t ->
  Geometry.Transform.placed list ->
  t
(** Build the structure from a winning placement: derive the sequence
    pair ({!Placer.Portfolio.sp_of_placed}, made symmetric-feasible
    under [groups]), pack the rotation variants through [arena], add
    the rigid winner point, Pareto-prune. [arena] must be an arena
    over the same circuit. *)

val candidates : t -> candidate list
(** The Pareto family, sorted by (cost, width, height) — selection
    order, fixed at build time. *)

val curves : t -> Shapefn.Shape_fn.t array
(** Per-module shape-alternative curves (both orientations unless
    square). *)

val outline_infeasible : t -> int * int -> bool
(** Provable reject from the per-module curve lower bounds and total
    module area: no placement of this circuit fits the outline, so
    re-annealing would not help either. *)

val select : ?outline:int * int -> t -> candidate * bool
(** The family member to serve: without an outline the minimum-cost
    candidate; with one, the first (cost-sorted) candidate fitting the
    box. The flag is [false] when nothing fits — the best candidate is
    returned anyway, flagged as an outline miss. Deterministic. *)

val materialize : arena:Placer.Eval.t -> t -> candidate -> Placer.Placement.t
(** Re-instantiate a family member: one arena pack for {!Packing}
    candidates, {!Shapefn.Shape_fn.instantiate} for the {!Rigid}
    point. No annealing, no large allocations beyond the placement
    being returned. *)
