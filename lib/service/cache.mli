(** Memoizing multi-placement cache.

    Maps {!Fingerprint} keys to {!Multi.t} structures under a fixed
    capacity with least-recently-used eviction (logical clock, bumped
    by hits and inserts). All operations are mutex-protected: the
    service's pool workers evict entries that fail the hit-path
    {!Analysis.Verify} re-check while the dispatcher reads. Entries
    are immutable once inserted. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256; raises [Invalid_argument] below 1. *)

val find : t -> string -> Multi.t option
(** Lookup; bumps the entry's recency and hit count. *)

val insert : t -> string -> Multi.t -> unit
(** Insert (replacing any previous binding), evicting
    least-recently-used entries while at capacity. *)

val remove : t -> string -> bool
(** Evict one key explicitly — the verify-failure path. True when the
    key was present; counts toward {!evictions}. *)

val mem : t -> string -> bool
val length : t -> int
val capacity : t -> int

val evictions : t -> int
(** Capacity and explicit evictions since creation. *)

(** {2 Negative cache}

    Keys proven infeasible by {!Analysis.Feasibility} — served as
    instant rejects so a repeated impossible request never burns an
    annealing budget twice. Negative entries live in their own table
    (a negative key can never collide with a placement entry: the
    service salts it with the exact outline, which the fingerprint
    deliberately classifies away), bounded by the same capacity with
    the same LRU rule. *)

val insert_negative : t -> string -> string -> unit
(** [insert_negative t key proof] records that [key] is infeasible,
    with the prover's diagnostics as the proof string. *)

val find_negative : t -> string -> string option
(** The cached proof, bumping recency — [Some] means "reject now". *)

val negatives : t -> int
(** Number of cached negative entries. *)
