(** Symmetric-feasible sequence-pairs (survey §II, refs [13], [2], [3]).

    A sequence-pair [(alpha, beta)] is {e symmetric-feasible} (S-F) for
    a symmetry group when for any two distinct group cells [x], [y]:

    {v alpha^-1(x) < alpha^-1(y)  <=>  beta^-1(sym y) < beta^-1(sym x) v}

    (property (1) of the survey) — equivalently, the group members
    appear in [beta] exactly in the reverse [alpha]-order of their
    symmetric counterparts. S-F codes admit packings in which every
    group is exactly mirror-symmetric about a common vertical axis. *)

type group = Constraints.Symmetry_group.t

val is_feasible : Sp.t -> group -> bool
(** Property (1) for one group. *)

val is_feasible_all : Sp.t -> group list -> bool

val count_upper_bound : n:int -> group list -> int
(** The survey's Lemma: [(n!)^2 / prod (2 p_k + s_k)!]. Raises
    [Invalid_argument] whenever an intermediate factorial or the bound
    itself overflows 63-bit integers: without groups this happens for
    [n > 12], and with group cardinalities up to 15 every [n > 17]
    overflows while [n = 17] with a cardinality-15 group still fits
    (the boundary the tests pin). *)

val count_exhaustive : n:int -> group list -> int
(** Exact count of S-F sequence-pairs by enumerating all [(n!)^2]
    codes. Feasible up to n = 7 (a few seconds); intended for
    validating the Lemma. *)

val make_feasible : Sp.t -> group list -> Sp.t
(** Minimal repair: reorder each group's members within [beta] to the
    order property (1) dictates. [alpha] and the [beta]-positions used
    by each group are preserved. *)

val random_feasible : Prelude.Rng.t -> n:int -> group list -> Sp.t
(** A uniformly random [alpha] and [beta] repaired by
    {!make_feasible}. *)

val pack_symmetric :
  Sp.t ->
  Pack.dims ->
  group list ->
  (Geometry.Transform.placed list, string) result
(** Build the minimum packing that satisfies every symmetry group
    {e exactly}: symmetric pairs mirror about their group's common
    vertical axis at equal [y]; self-symmetric cells are centered on
    it. Uses a coupled constraint-graph fixpoint: longest-path lower
    bounds alternate with per-group axis lifting until stable.

    Self-symmetric cells whose width parity disagrees with the group
    axis are padded by one grid unit so the axis falls on the integer
    half-grid (documented substitution; pads are visible in the
    returned widths). Pair cells are mirrored with orientation [MY].

    Errors if the code is not symmetric-feasible or (never observed for
    S-F codes) the fixpoint fails to converge. *)

val pack_symmetric_into :
  x:int array ->
  y:int array ->
  w:int array ->
  h:int array ->
  Sp.t ->
  Pack.dims ->
  group list ->
  (unit, string) result
(** Buffer variant of {!pack_symmetric} for the annealing arena: fills
    [w]/[h] from [dims] (self-symmetric widths may come back padded, as
    documented above) and writes the packed coordinates into [x]/[y],
    all indexed by cell. Coordinates are identical to
    {!pack_symmetric} (tested); per-pair mirror orientations are not
    reported, as cost evaluation does not need them. *)

val axis2_of : Geometry.Transform.placed list -> group -> int option
(** The doubled axis the group actually sits on, if it is symmetric. *)
