(** Van Emde Boas tree over a bounded integer universe.

    The "efficient model of priority queue" behind the survey's
    O(G * n log log n) symmetric-feasible evaluation complexity
    (refs [13], [26]): predecessor/successor queries and updates in
    O(log log U) over the universe [0, U). Keys here are beta-sequence
    positions, so U = n. *)

type t

val create : int -> t
(** [create u] — empty set over universe [0, u). *)

val universe : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val insert : t -> int -> unit
(** No-op if present. Raises [Invalid_argument] if out of range. *)

val delete : t -> int -> unit
(** No-op if absent. *)

val clear : t -> unit
(** Empty the set without reallocating. Cost is proportional to the
    number of non-empty clusters, not the universe, so a scratch tree
    can be reused across many packs. *)

val min_elt : t -> int option
val max_elt : t -> int option

val predecessor : t -> int -> int option
(** Greatest member strictly below the key. *)

val successor : t -> int -> int option
(** Least member strictly above the key. *)
