(** Sequence-pair evaluation: topological code -> placement.

    All evaluators compute, for every cell, the longest path to it in
    the horizontal (left-of) and vertical (below) constraint graphs
    implied by the sequence-pair, which is the minimum-area packing for
    the encoded topology.

    [pack] is the O(n^2) reference; [pack_fast] is the O(n log n)
    weighted-LCS formulation of FAST-SP (survey ref [26]) over a binary
    indexed tree. They produce identical placements (tested).

    Each evaluator also has an allocation-free [_into] variant that
    writes coordinates into caller-supplied buffers; these are the hot
    path of the annealing engine (see {!Placer.Eval}), where a packing
    is evaluated tens of thousands of times per search and per-move
    allocation dominates the runtime. *)

type dims = int -> int * int
(** Cell index -> (width, height). *)

type scratch
(** Reusable workspace (Fenwick tree, vEB tree, value buffers) for the
    [_into] evaluators. Allocated once, valid for any sequence-pair of
    size at most its capacity. *)

val scratch : ?telemetry:Telemetry.Sink.t -> int -> scratch
(** [scratch n] — workspace for circuits of up to [n] cells. When
    [telemetry] is a live sink, the [_into] evaluators below bump its
    [seqpair.packs] / [seqpair.cells] counters; with the default null
    sink the handles are dead and each pack pays two predictable
    branches. *)

val pack_into :
  Sp.t -> w:int array -> h:int array -> x:int array -> y:int array -> unit
(** O(n^2) reference evaluator over caller buffers: reads cell
    dimensions from [w]/[h] (indexed by cell), writes coordinates into
    [x]/[y]. Allocation-free. *)

val pack_fast_into :
  scratch ->
  Sp.t ->
  w:int array ->
  h:int array ->
  x:int array ->
  y:int array ->
  unit
(** FAST-SP over a reused Fenwick tree. Allocation-free. Raises
    [Invalid_argument] if the sequence-pair exceeds the scratch
    capacity. *)

val pack_veb_into :
  scratch ->
  Sp.t ->
  w:int array ->
  h:int array ->
  x:int array ->
  y:int array ->
  unit
(** O(n log log n) evaluator over a reused vEB tree. Allocation-free. *)

val pack : Sp.t -> dims -> Geometry.Transform.placed list
(** Placements in cell-index order, orientation [R0]. *)

val pack_fast : Sp.t -> dims -> Geometry.Transform.placed list

val pack_veb : Sp.t -> dims -> Geometry.Transform.placed list
(** The O(n log log n) evaluation the survey cites ([13] via the
    priority-queue model of [26]): a dominance-pruned match list over a
    van Emde Boas tree keyed by beta positions. Identical output to
    {!pack} (tested). *)

val bounding_box : Geometry.Transform.placed list -> Geometry.Rect.t
(** Bounding box of the placed cells ([0x0] at the origin when empty). *)
