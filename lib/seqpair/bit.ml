(* Classic Fenwick layout over 1-based internal indices; the max monoid
   only supports monotone (increase-only) updates, which is all the
   packing algorithm needs. *)
type t = { tree : int array; n : int }

let create n = { tree = Array.make (n + 1) 0; n }
let clear t = Array.fill t.tree 0 (t.n + 1) 0

(* Both traversals are the annealing hot path (2n of each per pack), so
   they run as plain loops over indices that stay within [1, n] by
   construction -- up by lowbit from i+1 >= 1, down by lowbit from
   min (i+1) n -- which justifies the unchecked accesses. *)
let update t i v =
  let tree = t.tree and n = t.n in
  let i = ref (i + 1) in
  while !i <= n do
    if Array.unsafe_get tree !i < v then Array.unsafe_set tree !i v;
    i := !i + (!i land - !i)
  done

let prefix_max t i =
  if i < 0 then 0
  else begin
    let tree = t.tree in
    let i = ref (min (i + 1) t.n) and acc = ref 0 in
    while !i > 0 do
      let v = Array.unsafe_get tree !i in
      if v > !acc then acc := v;
      i := !i - (!i land - !i)
    done;
    !acc
  end
