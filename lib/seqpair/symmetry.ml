open Geometry

type group = Constraints.Symmetry_group.t

module G = Constraints.Symmetry_group

let is_feasible sp (g : group) =
  let members = G.members g in
  let apos c = Perm.pos_of sp.Sp.alpha c in
  let bpos c = Perm.pos_of sp.Sp.beta c in
  let sym c = Option.get (G.sym g c) in
  List.for_all
    (fun x ->
      List.for_all
        (fun y ->
          x = y || Bool.equal (apos x < apos y) (bpos (sym y) < bpos (sym x)))
        members)
    members

let is_feasible_all sp groups = List.for_all (is_feasible sp) groups

let factorial n =
  let rec go acc k =
    if k <= 1 then acc
    else begin
      if acc > max_int / k then
        invalid_arg "Symmetry.count_upper_bound: overflow";
      go (acc * k) (k - 1)
    end
  in
  go 1 n

let checked_mul a b =
  if a <> 0 && b <> 0 && a > max_int / b then
    invalid_arg "Symmetry.count_upper_bound: overflow"
  else a * b

let count_upper_bound ~n groups =
  let num = factorial n in
  let den =
    List.fold_left
      (fun acc g -> checked_mul acc (factorial (G.cardinal g)))
      1 groups
  in
  (* (n!)^2 / prod: n! is divisible by the m! product of disjoint
     groups (multinomial coefficient), so dividing first is exact and
     delays overflow; the final multiply is checked so the bound
     raises instead of wrapping. *)
  checked_mul (num / den) num

(* Enumerate permutations of 0..n-1 as arrays. *)
let all_perms n =
  let rec go acc prefix remaining =
    match remaining with
    | [] -> Array.of_list (List.rev prefix) :: acc
    | _ ->
        List.fold_left
          (fun acc c ->
            go acc (c :: prefix) (List.filter (fun d -> d <> c) remaining))
          acc remaining
  in
  go [] [] (List.init n Fun.id)

let count_exhaustive ~n groups =
  let perms = all_perms n |> List.map Perm.of_array |> Array.of_list in
  let count = ref 0 in
  Array.iter
    (fun alpha ->
      Array.iter
        (fun beta ->
          let sp = Sp.make ~alpha ~beta in
          if is_feasible_all sp groups then incr count)
        perms)
    perms;
  !count

(* Property (1) says: in beta, the group members appear exactly in
   decreasing alpha-position of their symmetric counterparts. *)
let make_feasible sp groups =
  let beta =
    List.fold_left
      (fun beta (g : group) ->
        let members = G.members g in
        let order =
          List.sort
            (fun u v ->
              Int.compare
                (Perm.pos_of sp.Sp.alpha (Option.get (G.sym g v)))
                (Perm.pos_of sp.Sp.alpha (Option.get (G.sym g u))))
            members
        in
        Perm.reorder_cells beta ~cells:members ~order)
      sp.Sp.beta groups
  in
  Sp.make ~alpha:sp.Sp.alpha ~beta

let random_feasible rng ~n groups =
  make_feasible (Sp.random rng n) groups

(* ------------------------------------------------------------------ *)
(* Symmetric packing: coupled constraint-graph fixpoint.               *)

let axis2_of placed (g : group) =
  let rect c =
    List.find_map
      (fun (p : Transform.placed) -> if p.cell = c then Some p.rect else None)
      placed
  in
  let pair_axes =
    List.map
      (fun (a, b) ->
        match (rect a, rect b) with
        | Some ra, Some rb
          when ra.Rect.w = rb.Rect.w && ra.Rect.h = rb.Rect.h
               && ra.Rect.y = rb.Rect.y ->
            Some (ra.Rect.x + rb.Rect.x + ra.Rect.w)
        | _ -> None)
      g.G.pairs
  in
  let self_axes =
    List.map
      (fun f ->
        Option.map (fun (r : Rect.t) -> (2 * r.Rect.x) + r.Rect.w) (rect f))
      g.G.selfs
  in
  match pair_axes @ self_axes with
  | Some a :: rest when List.for_all (fun x -> x = Some a) rest -> Some a
  | [] | Some _ :: _ | None :: _ -> None

exception Infeasible of string
exception Diverged

(* Minimal coupled packing: longest-path lower bounds alternating with
   per-group axis lifting. Allows free cells to interleave with group
   cells, but the monotone iteration cannot inject slack on the left
   cells, so certain cross-pair chains make the axis grow without
   bound; those raise [Diverged] and the caller falls back to
   symmetry-island segregation.

   The [_into] core writes coordinates (and possibly parity-padded
   widths) into caller buffers and returns the cells placed on the
   right-hand side of their axis, so the annealing arena can evaluate
   symmetric packings without materializing placement lists. *)
let pack_coupled_into ~x ~y ~w ~h sp dims groups =
  let n = Sp.size sp in
  begin
    if not (is_feasible_all sp groups) then
      raise (Infeasible "sequence-pair is not symmetric-feasible");
    for c = 0 to n - 1 do
      let cw, ch = dims c in
      w.(c) <- cw;
      h.(c) <- ch
    done;
    Array.fill x 0 n 0;
    Array.fill y 0 n 0;
    (* Validate matched pair dimensions and orient pairs left/right. *)
    let oriented_pairs =
      List.map
        (fun (g : group) ->
          let pairs =
            List.map
              (fun (a, b) ->
                if w.(a) <> w.(b) || h.(a) <> h.(b) then
                  raise
                    (Infeasible
                       (Printf.sprintf "pair (%d,%d) dimension mismatch" a b));
                match Sp.relation sp a b with
                | Sp.Left_of -> (a, b)
                | Sp.Right_of -> (b, a)
                | Sp.Below | Sp.Above ->
                    raise
                      (Infeasible
                         (Printf.sprintf
                            "pair (%d,%d) vertically related; not S-F" a b)))
              g.G.pairs
          in
          (g, pairs))
        groups
    in
    (* Pad self-symmetric widths to a common parity per group so an
       exact integer axis exists. *)
    List.iter
      (fun (g : group) ->
        match g.G.selfs with
        | [] -> ()
        | first :: rest ->
            let parity = w.(first) land 1 in
            List.iter
              (fun f -> if w.(f) land 1 <> parity then w.(f) <- w.(f) + 1)
              rest)
      groups;
    let self_parity (g : group) =
      match g.G.selfs with [] -> None | f :: _ -> Some (w.(f) land 1)
    in
    (* Precompute the left-of and below predecessor lists. *)
    let alpha_order = Array.init n (Perm.cell_at sp.Sp.alpha) in
    let bpos c = Perm.pos_of sp.Sp.beta c in
    (* Longest-path pass respecting current values; true if anything
       rose. *)
    let propagate coord extent order =
      let changed = ref false in
      let len = Array.length order in
      for pos = 0 to len - 1 do
        let b = order.(pos) in
        for pos_a = 0 to pos - 1 do
          let a = order.(pos_a) in
          if bpos a < bpos b then begin
            let need = coord.(a) + extent.(a) in
            if coord.(b) < need then begin
              coord.(b) <- need;
              changed := true
            end
          end
        done
      done;
      !changed
    in
    let rev_alpha_order = Array.init n (fun i -> alpha_order.(n - 1 - i)) in
    let axis2 = Array.make (List.length groups) 0 in
    let lift_x () =
      let changed = ref false in
      List.iteri
        (fun gi ((g : group), pairs) ->
          let need = ref axis2.(gi) in
          List.iter
            (fun (l, r) -> need := max !need (x.(l) + x.(r) + w.(l)))
            pairs;
          List.iter
            (fun f -> need := max !need ((2 * x.(f)) + w.(f)))
            g.G.selfs;
          (match self_parity g with
          | Some p when !need land 1 <> p -> incr need
          | Some _ | None -> ());
          if !need > axis2.(gi) then axis2.(gi) <- !need;
          let a2 = axis2.(gi) in
          List.iter
            (fun (l, r) ->
              let v = a2 - x.(l) - w.(l) in
              if v <> x.(r) then begin
                (* v >= x.(r) by construction of a2 *)
                x.(r) <- v;
                changed := true
              end)
            pairs;
          List.iter
            (fun f ->
              let v = (a2 - w.(f)) / 2 in
              if v <> x.(f) then begin
                x.(f) <- v;
                changed := true
              end)
            g.G.selfs)
        oriented_pairs;
      !changed
    in
    let lift_y () =
      let changed = ref false in
      List.iter
        (fun ((_ : group), pairs) ->
          List.iter
            (fun (l, r) ->
              let m = max y.(l) y.(r) in
              if y.(l) <> m || y.(r) <> m then begin
                y.(l) <- m;
                y.(r) <- m;
                changed := true
              end)
            pairs)
        oriented_pairs;
      !changed
    in
    let max_iter = (10 * (n + List.length groups)) + 20 in
    let rec fix pass iter =
      if iter > max_iter then raise Diverged
      else begin
        let p = pass () in
        if p then fix pass (iter + 1)
      end
    in
    fix
      (fun () ->
        let a = propagate x w alpha_order in
        let b = lift_x () in
        a || b)
      0;
    fix
      (fun () ->
        let a = propagate y h rev_alpha_order in
        let b = lift_y () in
        a || b)
      0;
    List.concat_map (fun (_, pairs) -> List.map snd pairs) oriented_pairs
  end

let pack_coupled sp dims groups =
  let n = Sp.size sp in
  let x = Array.make n 0 and y = Array.make n 0 in
  let w = Array.make n 0 and h = Array.make n 0 in
  let right_cells = pack_coupled_into ~x ~y ~w ~h sp dims groups in
  List.init n (fun c ->
      let orient =
        if List.mem c right_cells then Orientation.MY else Orientation.R0
      in
      (* widths may have been padded; place with the padded size *)
      {
        Transform.cell = c;
        rect = Rect.make ~x:x.(c) ~y:y.(c) ~w:w.(c) ~h:h.(c);
        orient;
      })

(* Terminal fallback for one group: rows of mirrored pairs around a
   column of self-symmetric cells — always symmetric and overlap-free,
   never minimal. *)
let stacked_island dims (g : group) =
  let pad w = w + (w land 1) in
  let max_self_w =
    List.fold_left (fun acc f -> max acc (pad (fst (dims f)))) 0 g.G.selfs
  in
  let max_pair_w =
    List.fold_left (fun acc (a, _) -> max acc (fst (dims a))) 0 g.G.pairs
  in
  (* axis2 is even: selfs are padded to even widths *)
  let axis = max ((max_self_w + 1) / 2) max_pair_w in
  let y = ref 0 in
  let pairs =
    List.concat_map
      (fun (l, r) ->
        let w, h = dims l in
        let row_y = !y in
        y := !y + h;
        [
          {
            Transform.cell = l;
            rect = Rect.make ~x:(axis - w) ~y:row_y ~w ~h;
            orient = Orientation.MY;
          };
          {
            Transform.cell = r;
            rect = Rect.make ~x:axis ~y:row_y ~w ~h;
            orient = Orientation.R0;
          };
        ])
      g.G.pairs
  in
  let selfs =
    List.map
      (fun f ->
        let w, h = dims f in
        let w = pad w in
        let row_y = !y in
        y := !y + h;
        {
          Transform.cell = f;
          rect = Rect.make ~x:(axis - (w / 2)) ~y:row_y ~w ~h;
          orient = Orientation.R0;
        })
      g.G.selfs
  in
  pairs @ selfs

(* Segregated fallback: each group packed as a symmetry island from its
   own sub-sequence-pair, then the reduced sequence-pair (islands as
   super-cells) packed normally. Loses free-cell interleaving inside
   island bounding boxes, keeps everything else. *)
let pack_segregated sp dims groups =
  let n = Sp.size sp in
  let group_of = Array.make n None in
  List.iteri
    (fun gi g -> List.iter (fun m -> group_of.(m) <- Some gi) (G.members g))
    groups;
  (* 1. per-group islands from the restricted sequence-pair *)
  let islands =
    List.map
      (fun (g : group) ->
        let members =
          List.filter (fun c -> G.mem g c) (Perm.to_list sp.Sp.alpha)
        in
        let local_of = Hashtbl.create 8 in
        List.iteri (fun i c -> Hashtbl.replace local_of c i) members;
        let local c = Hashtbl.find local_of c in
        let to_perm order =
          Perm.of_array
            (Array.of_list (List.map local (List.filter (G.mem g) order)))
        in
        let mini_sp =
          Sp.make
            ~alpha:(to_perm (Perm.to_list sp.Sp.alpha))
            ~beta:(to_perm (Perm.to_list sp.Sp.beta))
        in
        let members_arr = Array.of_list members in
        let mini_dims i = dims members_arr.(i) in
        let mini_g =
          G.make ~name:g.G.name
            ~pairs:(List.map (fun (a, b) -> (local a, local b)) g.G.pairs)
            ~selfs:(List.map local g.G.selfs) ()
        in
        let local_placed =
          match pack_coupled mini_sp mini_dims [ mini_g ] with
          | placed -> placed
          | exception Diverged -> stacked_island mini_dims mini_g
        in
        (* back to global cell ids, normalized to the origin *)
        let placed =
          List.map
            (fun (p : Transform.placed) ->
              { p with Transform.cell = members_arr.(p.Transform.cell) })
            local_placed
        in
        let bbox =
          Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed)
        in
        let placed =
          List.map
            (fun p ->
              Transform.translate p ~dx:(-bbox.Rect.x) ~dy:(-bbox.Rect.y))
            placed
        in
        (placed,
         (Rect.x_max bbox - bbox.Rect.x, Rect.y_max bbox - bbox.Rect.y)))
      groups
  in
  (* 2. reduced sequence-pair: free cells + one super-cell per group,
     positioned at the group's first occurrence in each sequence *)
  let pseudo gi = n + gi in
  let reduce order =
    let seen = Array.make (List.length groups) false in
    List.filter_map
      (fun c ->
        match group_of.(c) with
        | None -> Some c
        | Some gi ->
            if seen.(gi) then None
            else begin
              seen.(gi) <- true;
              Some (pseudo gi)
            end)
      order
  in
  let ids = reduce (Perm.to_list sp.Sp.alpha) in
  let compact = Hashtbl.create 16 in
  List.iteri (fun i c -> Hashtbl.replace compact c i) ids;
  let to_perm order =
    Perm.of_array
      (Array.of_list (List.map (Hashtbl.find compact) (reduce order)))
  in
  let reduced_sp =
    Sp.make
      ~alpha:(to_perm (Perm.to_list sp.Sp.alpha))
      ~beta:(to_perm (Perm.to_list sp.Sp.beta))
  in
  let ids_arr = Array.of_list ids in
  let reduced_dims i =
    let c = ids_arr.(i) in
    if c < n then dims c else snd (List.nth islands (c - n))
  in
  let packed = Pack.pack_fast reduced_sp reduced_dims in
  List.concat_map
    (fun (p : Transform.placed) ->
      let c = ids_arr.(p.Transform.cell) in
      if c < n then [ { p with Transform.cell = c } ]
      else
        let island_placed, _ = List.nth islands (c - n) in
        List.map
          (fun q ->
            Transform.translate q ~dx:p.Transform.rect.Rect.x
              ~dy:p.Transform.rect.Rect.y)
          island_placed)
    packed

let pack_symmetric sp dims groups =
  match pack_coupled sp dims groups with
  | placed -> Ok placed
  | exception Infeasible msg -> Error msg
  | exception Diverged -> (
      match pack_segregated sp dims groups with
      | placed -> Ok placed
      | exception Infeasible msg -> Error msg)

(* Buffer variant for the annealing arena: identical coordinates to
   {!pack_symmetric} (tested), but written into caller arrays. The
   coupled core writes in place; only the rare [Diverged] fallback
   still materializes a list, whose coordinates are then copied. *)
let pack_symmetric_into ~x ~y ~w ~h sp dims groups =
  match pack_coupled_into ~x ~y ~w ~h sp dims groups with
  | (_ : int list) -> Ok ()
  | exception Infeasible msg -> Error msg
  | exception Diverged -> (
      match pack_segregated sp dims groups with
      | placed ->
          List.iter
            (fun (p : Transform.placed) ->
              x.(p.Transform.cell) <- p.Transform.rect.Rect.x;
              y.(p.Transform.cell) <- p.Transform.rect.Rect.y;
              w.(p.Transform.cell) <- p.Transform.rect.Rect.w;
              h.(p.Transform.cell) <- p.Transform.rect.Rect.h)
            placed;
          Ok ()
      | exception Infeasible msg -> Error msg)
