(* CLRS-style van Emde Boas tree: the minimum is kept out of the
   clusters, giving O(log log U) inserts, deletes and neighbour
   queries. Universes are rounded up to powers of two. *)

type t = {
  bits : int;  (* universe = 2^bits *)
  requested : int;  (* user-visible universe bound *)
  mutable vmin : int;  (* -1 when empty *)
  mutable vmax : int;
  summary : t option;
  clusters : t array;  (* [||] at the base *)
  low_bits : int;
}

let rec make_bits bits requested =
  if bits <= 1 then
    {
      bits = 1;
      requested;
      vmin = -1;
      vmax = -1;
      summary = None;
      clusters = [||];
      low_bits = 0;
    }
  else
    let low_bits = bits / 2 in
    let high_bits = bits - low_bits in
    {
      bits;
      requested;
      vmin = -1;
      vmax = -1;
      summary = Some (make_bits high_bits 0);
      clusters = Array.init (1 lsl high_bits) (fun _ -> make_bits low_bits 0);
      low_bits;
    }

let create u =
  if u <= 0 then invalid_arg "Veb.create: non-positive universe";
  let rec bits_for b = if 1 lsl b >= u then b else bits_for (b + 1) in
  make_bits (max 1 (bits_for 1)) u

let universe t = if t.requested > 0 then t.requested else 1 lsl t.bits
let is_empty t = t.vmin < 0
let high t x = x lsr t.low_bits
let low t x = x land ((1 lsl t.low_bits) - 1)
let index t h l = (h lsl t.low_bits) lor l

let rec mem t x =
  if t.vmin < 0 then false
  else if x = t.vmin || x = t.vmax then true
  else if t.bits = 1 then false
  else mem t.clusters.(high t x) (low t x)

let rec insert t x =
  if t.vmin < 0 then begin
    t.vmin <- x;
    t.vmax <- x
  end
  else if x <> t.vmin && x <> t.vmax then begin
    let x = if x < t.vmin then (let m = t.vmin in t.vmin <- x; m) else x in
    if t.bits > 1 then begin
      let h = high t x and l = low t x in
      let c = t.clusters.(h) in
      if c.vmin < 0 then
        Option.iter (fun s -> insert s h) t.summary;
      insert c l
    end;
    if x > t.vmax then t.vmax <- x
  end

let rec delete t x =
  if t.vmin >= 0 then
    if t.vmin = t.vmax then begin
      if x = t.vmin then begin
        t.vmin <- -1;
        t.vmax <- -1
      end
    end
    else if t.bits = 1 then begin
      (* members are exactly {0,1} here *)
      if x = 0 then t.vmin <- 1 else t.vmax <- 0;
      if t.vmin > t.vmax then begin
        t.vmin <- -1;
        t.vmax <- -1
      end
    end
    else begin
      let summary = Option.get t.summary in
      let x =
        if x = t.vmin then begin
          (* pull the true second-smallest up into vmin *)
          let first = summary.vmin in
          let next = index t first t.clusters.(first).vmin in
          t.vmin <- next;
          next
        end
        else x
      in
      let h = high t x and l = low t x in
      if mem t.clusters.(h) l then begin
        delete t.clusters.(h) l;
        if t.clusters.(h).vmin < 0 then delete summary h;
        if x = t.vmax then
          if summary.vmin < 0 then t.vmax <- t.vmin
          else
            let top = summary.vmax in
            t.vmax <- index t top t.clusters.(top).vmax
      end
      else if x = t.vmax then begin
        (* vmax duplicated vmin-side bookkeeping: recompute *)
        if summary.vmin < 0 then t.vmax <- t.vmin
        else
          let top = summary.vmax in
          t.vmax <- index t top t.clusters.(top).vmax
      end
    end

let rec clear t =
  if t.vmin >= 0 then begin
    t.vmin <- -1;
    t.vmax <- -1;
    Option.iter clear t.summary;
    Array.iter clear t.clusters
  end

let min_elt t = if t.vmin < 0 then None else Some t.vmin
let max_elt t = if t.vmin < 0 then None else Some t.vmax

let rec successor t x =
  if t.bits = 1 then
    if x = 0 && t.vmax = 1 then Some 1 else None
  else if t.vmin >= 0 && x < t.vmin then Some t.vmin
  else
    let h = high t x and l = low t x in
    let c = t.clusters.(h) in
    if c.vmin >= 0 && l < c.vmax then
      Option.map (fun l' -> index t h l') (successor c l)
    else
      match Option.get t.summary |> fun s -> successor s h with
      | None -> None
      | Some h' -> Some (index t h' t.clusters.(h').vmin)

let rec predecessor t x =
  if t.bits = 1 then
    if x = 1 && t.vmin = 0 then Some 0 else None
  else if t.vmax >= 0 && x > t.vmax then Some t.vmax
  else
    let h = high t x and l = low t x in
    let c = t.clusters.(h) in
    if c.vmin >= 0 && l > c.vmin then
      Option.map (fun l' -> index t h l') (predecessor c l)
    else
      match Option.get t.summary |> fun s -> predecessor s h with
      | Some h' -> Some (index t h' t.clusters.(h').vmax)
      | None -> if t.vmin >= 0 && x > t.vmin then Some t.vmin else None

let insert t x =
  if x < 0 || x >= universe t then invalid_arg "Veb.insert: out of range";
  insert t x

let delete t x = if x >= 0 && x < universe t then delete t x
let mem t x = x >= 0 && x < universe t && mem t x
