(** Binary indexed tree for prefix maxima.

    The O(n log n) sequence-pair evaluation (FAST-SP, survey ref [26])
    reduces coordinate computation to repeated "maximum over a prefix"
    queries with monotone point updates — exactly what a Fenwick tree
    over the max monoid provides. *)

type t

val create : int -> t
(** [create n] — indices [0 .. n-1], all values 0. *)

val clear : t -> unit
(** Reset every value to 0 without reallocating, so one tree can serve
    many packs (the evaluation arena reuses a single scratch tree). *)

val update : t -> int -> int -> unit
(** [update t i v] raises the value at [i] to [max current v]. *)

val prefix_max : t -> int -> int
(** [prefix_max t i] is the maximum over indices [0 .. i]; 0 when
    [i < 0]. *)
