open Geometry

type dims = int -> int * int

(* Reusable scratch for the buffer-variant evaluators: one Fenwick
   tree, one vEB tree and its value array, sized once for the largest
   circuit the arena will see. Nothing is allocated per pack. *)
type scratch = {
  capacity : int;
  bit : Bit.t;
  veb : Veb.t;
  value : int array;
  order : int array;  (* alpha order, reused by the vEB sweeps *)
  packs : Telemetry.Counter.t;  (* dead handles unless built with a live sink *)
  cells : Telemetry.Counter.t;
}

let scratch ?(telemetry = Telemetry.Sink.null) capacity =
  let capacity = max 1 capacity in
  {
    capacity;
    bit = Bit.create capacity;
    veb = Veb.create capacity;
    value = Array.make capacity 0;
    order = Array.make capacity 0;
    packs = Telemetry.Sink.counter telemetry "seqpair.packs";
    cells = Telemetry.Sink.counter telemetry "seqpair.cells";
  }

let check_capacity s n =
  if n > s.capacity then invalid_arg "Pack: scratch smaller than circuit"

let fill_dims sp dims ~w ~h =
  for c = 0 to Sp.size sp - 1 do
    let cw, ch = dims c in
    w.(c) <- cw;
    h.(c) <- ch
  done

let to_placed sp dims x y =
  List.init (Sp.size sp) (fun c ->
      let w, h = dims c in
      Transform.place ~cell:c ~x:x.(c) ~y:y.(c) ~w ~h
        ~orient:Orientation.R0)

(* O(n^2): explicit longest path over the left-of / below relations. *)
let pack_into sp ~w ~h ~x ~y =
  let n = Sp.size sp in
  Array.fill x 0 n 0;
  Array.fill y 0 n 0;
  (* x: process cells in alpha order; predecessors are earlier in both
     sequences. *)
  for pos = 0 to n - 1 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    for pos_a = 0 to pos - 1 do
      let a = Perm.cell_at sp.Sp.alpha pos_a in
      if Perm.pos_of sp.Sp.beta a < Perm.pos_of sp.Sp.beta b then
        x.(b) <- max x.(b) (x.(a) + w.(a))
    done
  done;
  (* y: a is below b iff a follows b in alpha and precedes it in beta;
     process in reverse alpha order. *)
  for pos = n - 1 downto 0 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    for pos_a = pos + 1 to n - 1 do
      let a = Perm.cell_at sp.Sp.alpha pos_a in
      if Perm.pos_of sp.Sp.beta a < Perm.pos_of sp.Sp.beta b then
        y.(b) <- max y.(b) (y.(a) + h.(a))
    done
  done

(* O(n log n): the longest-path recurrences only ever ask for the
   maximum over a prefix of beta positions, served by a Fenwick tree. *)
let pack_fast_into s sp ~w ~h ~x ~y =
  let n = Sp.size sp in
  check_capacity s n;
  Telemetry.Counter.incr s.packs;
  Telemetry.Counter.add s.cells n;
  Bit.clear s.bit;
  for pos = 0 to n - 1 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    let bp = Perm.pos_of sp.Sp.beta b in
    x.(b) <- Bit.prefix_max s.bit (bp - 1);
    Bit.update s.bit bp (x.(b) + w.(b))
  done;
  Bit.clear s.bit;
  for pos = n - 1 downto 0 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    let bp = Perm.pos_of sp.Sp.beta b in
    y.(b) <- Bit.prefix_max s.bit (bp - 1);
    Bit.update s.bit bp (y.(b) + h.(b))
  done

(* O(n log log n): keep only the dominant "matches" -- beta positions
   whose running coordinate strictly increases -- in a vEB tree, so the
   prefix maximum is just the value at the predecessor position. Every
   position is inserted and deleted at most once. *)
let sweep_veb set value n order rev bpos extent coord =
  Veb.clear set;
  for i = 0 to n - 1 do
    let b = order.(if rev then n - 1 - i else i) in
    let p = bpos b in
    coord.(b) <-
      (match Veb.predecessor set p with
      | Some q -> value.(q)
      | None -> 0);
    let v = coord.(b) + extent.(b) in
    let dominated =
      match if Veb.mem set p then Some p else Veb.predecessor set p with
      | Some q -> value.(q) >= v
      | None -> false
    in
    if not dominated then begin
      Veb.insert set p;
      value.(p) <- v;
      let rec prune () =
        match Veb.successor set p with
        | Some s when value.(s) <= v ->
            Veb.delete set s;
            prune ()
        | Some _ | None -> ()
      in
      prune ()
    end
  done

let pack_veb_into s sp ~w ~h ~x ~y =
  let n = Sp.size sp in
  check_capacity s n;
  Telemetry.Counter.incr s.packs;
  Telemetry.Counter.add s.cells n;
  for i = 0 to n - 1 do
    s.order.(i) <- Perm.cell_at sp.Sp.alpha i
  done;
  let bpos c = Perm.pos_of sp.Sp.beta c in
  sweep_veb s.veb s.value n s.order false bpos w x;
  sweep_veb s.veb s.value n s.order true bpos h y

(* List-returning wrappers: allocate fresh buffers, pack, materialize.
   They remain the reference API; the [_into] variants above are the
   hot path of {!Placer.Eval}. *)
let with_buffers sp dims pack =
  let n = Sp.size sp in
  let w = Array.make n 0 and h = Array.make n 0 in
  let x = Array.make n 0 and y = Array.make n 0 in
  fill_dims sp dims ~w ~h;
  pack ~w ~h ~x ~y;
  to_placed sp dims x y

let pack sp dims = with_buffers sp dims (pack_into sp)

let pack_fast sp dims =
  with_buffers sp dims (pack_fast_into (scratch (Sp.size sp)) sp)

let pack_veb sp dims =
  with_buffers sp dims (pack_veb_into (scratch (Sp.size sp)) sp)

let bounding_box placed =
  match placed with
  | [] -> Rect.at_origin ~w:0 ~h:0
  | _ -> Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed)
