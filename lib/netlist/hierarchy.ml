type constraint_kind = Free | Symmetry | Common_centroid | Proximity

type t =
  | Leaf of int
  | Node of { name : string; kind : constraint_kind; children : t list }

let node ?(kind = Free) name children =
  if children = [] then invalid_arg "Hierarchy.node: no children";
  Node { name; kind; children }

let rec leaves = function
  | Leaf i -> [ i ]
  | Node { children; _ } -> List.concat_map leaves children

let size t = List.length (leaves t)

let rec depth = function
  | Leaf _ -> 1
  | Node { children; _ } ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let validate t ~n_modules =
  let ls = leaves t in
  let seen = Array.make n_modules 0 in
  let out_of_range = List.filter (fun i -> i < 0 || i >= n_modules) ls in
  if out_of_range <> [] then
    Error
      (Printf.sprintf "leaf index %d out of range" (List.hd out_of_range))
  else begin
    List.iter (fun i -> seen.(i) <- seen.(i) + 1) ls;
    let bad = ref None in
    Array.iteri
      (fun i c -> if c <> 1 && !bad = None then bad := Some (i, c))
      seen;
    match !bad with
    | None -> Ok ()
    | Some (i, 0) -> Error (Printf.sprintf "module %d missing from hierarchy" i)
    | Some (i, c) ->
        Error (Printf.sprintf "module %d occurs %d times in hierarchy" i c)
  end

let is_leaf = function Leaf _ -> true | Node _ -> false

let rec basic_module_sets = function
  | Leaf _ -> []
  | Node { name; kind; children } ->
      if List.for_all is_leaf children then
        [ (name, kind, List.concat_map leaves children) ]
      else List.concat_map basic_module_sets children

let rec constraint_nodes = function
  | Leaf _ -> []
  | Node { name; kind; children } as n ->
      (name, kind, leaves n) :: List.concat_map constraint_nodes children

let rec map_leaves f = function
  | Leaf i -> Leaf (f i)
  | Node { name; kind; children } ->
      Node { name; kind; children = List.map (map_leaves f) children }

let kind_to_string = function
  | Free -> "free"
  | Symmetry -> "symmetry"
  | Common_centroid -> "common-centroid"
  | Proximity -> "proximity"

(* Canonical constraint rendering for cache fingerprints: node names
   and tree shape are labels, not obligations, so only (kind, member
   set) pairs enter — members sorted, Free nodes dropped, nodes sorted
   by content. Two hierarchies that impose the same obligations render
   identically no matter how their nodes are named, ordered or
   nested. *)
let constraint_signature t =
  let canon =
    constraint_nodes t
    |> List.filter_map (fun (_, kind, members) ->
           match kind with
           | Free -> None
           | _ ->
               Some
                 (kind_to_string kind, List.sort_uniq compare members))
    |> List.sort_uniq compare
  in
  let buf = Buffer.create 64 in
  List.iter
    (fun (kind, members) ->
      Buffer.add_string buf kind;
      Buffer.add_char buf '(';
      List.iteri
        (fun i m ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int m))
        members;
      Buffer.add_string buf ");")
    canon;
  Buffer.contents buf

let rec pp ppf = function
  | Leaf i -> Format.fprintf ppf "#%d" i
  | Node { name; kind; children } ->
      Format.fprintf ppf "@[<hov 2>%s[%s](%a)@]" name (kind_to_string kind)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp)
        children
