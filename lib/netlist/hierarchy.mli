(** Layout design hierarchy (survey §III-A, Fig. 2; §IV, Fig. 6).

    The hierarchy tree combines the *exact* circuit hierarchy with
    *virtual* clusters (devices grouped by model, function or
    constraint). Leaves are module indices of a {!Circuit.t}; internal
    nodes carry the layout constraint that applies to the sub-circuit:
    symmetry (possibly hierarchical), common-centroid or proximity. *)

type constraint_kind =
  | Free  (** no constraint; plain grouping *)
  | Symmetry  (** mirror placement about a vertical axis *)
  | Common_centroid  (** interdigitated placement sharing a centroid *)
  | Proximity  (** connected placement, shared well / guard ring *)

type t =
  | Leaf of int
  | Node of { name : string; kind : constraint_kind; children : t list }

val node : ?kind:constraint_kind -> string -> t list -> t
(** Internal node, default [kind] is [Free]. Raises [Invalid_argument]
    on an empty child list. *)

val leaves : t -> int list
(** Module indices in left-to-right order. *)

val size : t -> int
(** Number of leaves. *)

val depth : t -> int
(** 1 for a leaf. *)

val validate : t -> n_modules:int -> (unit, string) result
(** Check that every module index in [0..n_modules-1] occurs exactly
    once. *)

val basic_module_sets : t -> (string * constraint_kind * int list) list
(** The survey's "basic module sets": maximal internal nodes whose
    children are all leaves, in tree order. Isolated leaves directly
    under higher nodes are not included. *)

val constraint_nodes : t -> (string * constraint_kind * int list) list
(** All internal nodes with their constraint kind and leaf sets,
    pre-order. *)

val constraint_signature : t -> string
(** Canonical rendering of the constraint obligations this hierarchy
    imposes: one [kind(members);] token per non-[Free] node with
    members sorted and the tokens themselves content-sorted. Node
    names, child order and nesting of [Free] groupings do not affect
    it, so semantically equal constraint sets render identically —
    the property the placement-service cache key rests on. *)

val map_leaves : (int -> int) -> t -> t

val pp : Format.formatter -> t -> unit
val kind_to_string : constraint_kind -> string
