(** Half-perimeter wirelength (HPWL).

    The standard placement wirelength estimate: per net, the
    semi-perimeter of the bounding box of its pins' cell centers,
    weighted by the net weight. Used by every annealing cost function
    in this repository. *)

val hpwl :
  Net.t list -> center2:(int -> (int * int) option) -> float
(** [center2 m] is the doubled center of module [m]'s placed rectangle
    ([None] if unplaced; such pins are skipped). The result is in grid
    units (the doubling is compensated). *)

type flat
(** Nets flattened to CSR-style offset/pin/weight arrays, so the
    annealing hot path walks every net allocation-free. Built once per
    circuit (see {!Placer.Eval}). *)

val flatten : Net.t list -> flat

val hpwl_flat : flat -> cx2:int array -> cy2:int array -> float
(** HPWL over flattened nets; [cx2]/[cy2] hold each module's doubled
    center, indexed by cell. Every pin must be placed. Agrees exactly
    with {!hpwl} in that case (tested). *)
