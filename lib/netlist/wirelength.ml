(* Flattened nets: pin lists concatenated into one int array with a
   CSR-style offset table, so the annealing hot path can walk every net
   without touching a single list cell or allocating. *)
type flat = {
  off : int array;  (* length #nets + 1; net i owns pins off.(i) .. off.(i+1)-1 *)
  pins : int array;
  weight : float array;
}

let flatten nets =
  let nets_arr = Array.of_list nets in
  let k = Array.length nets_arr in
  let off = Array.make (k + 1) 0 in
  Array.iteri
    (fun i (net : Net.t) -> off.(i + 1) <- off.(i) + List.length net.Net.pins)
    nets_arr;
  let pins = Array.make (max 1 off.(k)) 0 in
  let weight = Array.make (max 1 k) 0.0 in
  Array.iteri
    (fun i (net : Net.t) ->
      weight.(i) <- net.Net.weight;
      List.iteri (fun j p -> pins.(off.(i) + j) <- p) net.Net.pins)
    nets_arr;
  { off; pins; weight }

(* Same accumulation order and arithmetic as [hpwl] below, so the two
   agree to the last bit when every pin is placed (tested). *)
let hpwl_flat t ~cx2 ~cy2 =
  let acc = ref 0.0 in
  let k = Array.length t.off - 1 in
  for i = 0 to k - 1 do
    let lo = t.off.(i) and hi = t.off.(i + 1) in
    if hi - lo >= 2 then begin
      let p0 = t.pins.(lo) in
      let min_x = ref cx2.(p0)
      and max_x = ref cx2.(p0)
      and min_y = ref cy2.(p0)
      and max_y = ref cy2.(p0) in
      for j = lo + 1 to hi - 1 do
        let p = t.pins.(j) in
        let x = cx2.(p) and y = cy2.(p) in
        if x < !min_x then min_x := x;
        if x > !max_x then max_x := x;
        if y < !min_y then min_y := y;
        if y > !max_y then max_y := y
      done;
      acc :=
        !acc
        +. (t.weight.(i)
            *. float_of_int (!max_x - !min_x + !max_y - !min_y)
            /. 2.0)
    end
  done;
  !acc

let hpwl nets ~center2 =
  List.fold_left
    (fun acc (net : Net.t) ->
      let centers = List.filter_map center2 net.Net.pins in
      match centers with
      | [] | [ _ ] -> acc
      | (x0, y0) :: rest ->
          let min_x, max_x, min_y, max_y =
            List.fold_left
              (fun (a, b, c, d) (x, y) ->
                (min a x, max b x, min c y, max d y))
              (x0, x0, y0, y0) rest
          in
          acc
          +. (net.Net.weight
              *. float_of_int (max_x - min_x + max_y - min_y)
              /. 2.0))
    0.0 nets
