type module_ = { name : string; w : int; h : int; device : Device.t option }
type t = { name : string; modules : module_ array; nets : Net.t list }

let make ~name ~modules ~nets =
  let modules = Array.of_list modules in
  let n = Array.length modules in
  List.iter
    (fun (net : Net.t) ->
      List.iter
        (fun pin ->
          if pin < 0 || pin >= n then
            invalid_arg
              (Printf.sprintf "Circuit.make: net %s pin %d out of range"
                 net.Net.name pin))
        net.Net.pins)
    nets;
  { name; modules; nets }

let module_of_device d =
  let w, h = Device.footprint d in
  { name = d.Device.name; w; h; device = Some d }

let block ~name ~w ~h = { name; w; h; device = None }
let size c = Array.length c.modules

let total_module_area c =
  Array.fold_left (fun acc m -> acc + (m.w * m.h)) 0 c.modules

let dims c i =
  let m = c.modules.(i) in
  (m.w, m.h)

let find_module c name =
  let rec search i =
    if i >= Array.length c.modules then raise Not_found
    else if String.equal c.modules.(i).name name then i
    else search (i + 1)
  in
  search 0

let subcircuit c ~name idxs =
  let old_of_new = Array.of_list idxs in
  let new_of_old = Hashtbl.create 16 in
  Array.iteri (fun ni oi -> Hashtbl.replace new_of_old oi ni) old_of_new;
  let modules = List.map (fun i -> c.modules.(i)) idxs in
  let nets =
    List.filter_map
      (fun (net : Net.t) ->
        let inside =
          List.filter_map (fun p -> Hashtbl.find_opt new_of_old p) net.Net.pins
        in
        if List.length inside >= 2 && List.length inside = List.length net.Net.pins
        then Some (Net.make ~weight:net.Net.weight ~name:net.Net.name ~pins:inside ())
        else None)
      c.nets
  in
  (make ~name ~modules ~nets, old_of_new)

(* FNV-1a over a canonical rendering of the circuit. The ledger keys
   regression comparisons on this: two runs are comparable only if they
   placed the same netlist, and a content hash catches silent benchmark
   edits where a name alone would not. 64-bit FNV is plenty for the
   handful of designs a ledger ever holds. *)

let fnv1a s =
  let h = ref (0xcbf29ce484222325_L |> Int64.to_int) in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x100000001b3) s;
  Printf.sprintf "%016x" (!h land max_int)

let digest c =
  (* FNV-1a 64-bit offset basis, truncated to OCaml's 63-bit int *)
  let h = ref (0xcbf29ce484222325_L |> Int64.to_int) in
  let feed_char ch =
    h := (!h lxor Char.code ch) * 0x100000001b3
  in
  let feed s = String.iter feed_char s; feed_char '\x00' in
  let feed_int i = feed (string_of_int i) in
  feed c.name;
  feed_int (Array.length c.modules);
  Array.iter
    (fun (m : module_) ->
      feed m.name;
      feed_int m.w;
      feed_int m.h;
      match m.device with
      | None -> feed "-"
      | Some d -> feed d.Device.name)
    c.modules;
  feed_int (List.length c.nets);
  List.iter
    (fun (net : Net.t) ->
      feed net.Net.name;
      feed (Printf.sprintf "%.17g" net.Net.weight);
      List.iter feed_int net.Net.pins)
    c.nets;
  Printf.sprintf "%016x" (!h land max_int)

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %s: %d modules, %d nets@,%a@]" c.name
    (size c) (List.length c.nets)
    (Format.pp_print_list (fun ppf (m : module_) ->
         Format.fprintf ppf "  %s %dx%d" m.name m.w m.h))
    (Array.to_list c.modules)
