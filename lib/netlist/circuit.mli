(** Placement-level circuits.

    A circuit is an array of placeable modules (device cells or
    pre-packed macros) plus the nets among them. Module indices are the
    identifiers all topological representations work with. *)

type module_ = {
  name : string;
  w : int;  (** intrinsic width, grid units *)
  h : int;  (** intrinsic height, grid units *)
  device : Device.t option;  (** payload when the module is one device *)
}

type t = {
  name : string;
  modules : module_ array;
  nets : Net.t list;
}

val make : name:string -> modules:module_ list -> nets:Net.t list -> t
(** Validates that every net pin indexes a module. *)

val module_of_device : Device.t -> module_
(** Module with the device's footprint. *)

val block : name:string -> w:int -> h:int -> module_
(** An opaque rectangular module. *)

val size : t -> int
(** Number of modules. *)

val total_module_area : t -> int
(** Sum of module areas — the denominator of the survey's "area usage"
    metric (Table I). *)

val dims : t -> int -> int * int
(** [(w, h)] of module [i]. *)

val find_module : t -> string -> int
(** Index of the module with the given name; raises [Not_found]. *)

val fnv1a : string -> string
(** The 64-bit FNV-1a hex hash behind {!digest}, over a raw string —
    the shared content-hash primitive for anything that wants a key in
    the same namespace (the placement service hashes its canonical
    constraint/outline rendering with it). Truncated to OCaml's 63-bit
    [int] exactly as {!digest} is. *)

val digest : t -> string
(** Deterministic 64-bit FNV-1a content hash (hex) over the circuit's
    name, modules (name, dimensions, device identity), and nets (name,
    weight, pins). The QoR ledger stores it so regression comparisons
    only ever pair runs of the same netlist. *)

val subcircuit : t -> name:string -> int list -> t * int array
(** [subcircuit c ~name idxs] extracts the modules [idxs] (in order)
    and the nets entirely inside them, with pins renumbered; also
    returns the map from new index to old index. *)

val pp : Format.formatter -> t -> unit
