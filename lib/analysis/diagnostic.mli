(** Structured diagnostics for netlist/constraint lints and runtime
    invariant checks.

    Every finding carries a stable code so tooling (CI, editors, the
    [lint] subcommand's [--json] output) can match on it regardless of
    message wording. Codes are never reused; the full table lives in
    DESIGN.md. [AL0xx] codes are static lints, [AL1xx] codes are
    representation/placement invariants raised by the sanitizer. *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable identifier, e.g. ["AL005"] *)
  severity : severity;
  subject : string;  (** what the finding is about, e.g. ["net tail"] *)
  message : string;
  hint : string option;  (** actionable fix suggestion *)
}

val make :
  ?hint:string -> code:string -> severity:severity -> subject:string ->
  string -> t

val error : ?hint:string -> code:string -> subject:string -> string -> t
val warning : ?hint:string -> code:string -> subject:string -> string -> t
val info : ?hint:string -> code:string -> subject:string -> string -> t

val severity_to_string : severity -> string

val errors : t list -> t list
(** The [Error]-severity subset. *)

val has_errors : t list -> bool

val codes : t list -> string list
(** Distinct codes present, sorted. *)

val pp : Format.formatter -> t -> unit
(** One line: [code severity subject: message (hint: ...)]. *)

val pp_list : Format.formatter -> t list -> unit
(** All diagnostics, one per line, followed by an error/warning count
    summary. *)

val json : t -> Telemetry.Json.t
(** One JSON object; [hint] is [null] when absent. Built on the shared
    {!Telemetry.Json} value layer, so [Telemetry.Json.parse (to_json d)]
    round-trips (tested). *)

val list_json : t list -> Telemetry.Json.t
(** JSON array of {!json} objects. *)

val to_json : t -> string
(** [Telemetry.Json.emit (json d)]. *)

val list_to_json : t list -> string
(** [Telemetry.Json.emit (list_json ds)]. *)
