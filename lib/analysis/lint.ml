module C = Netlist.Circuit
module G = Constraints.Symmetry_group
module D = Diagnostic

let module_name (c : C.t) i =
  if i >= 0 && i < Array.length c.C.modules then c.C.modules.(i).C.name
  else Printf.sprintf "#%d" i

(* ---- AL000: the input never became a circuit ----------------------- *)

let parse_failure ?line ~file message =
  let subject =
    match line with
    | None -> file
    | Some l -> Printf.sprintf "%s:%d" file l
  in
  D.error ~code:"AL000" ~subject message
    ~hint:"fix the netlist file; no other analysis can run until it parses"

(* ---- netlist-only lints ------------------------------------------- *)

let lint_pins (c : C.t) =
  let n = Array.length c.C.modules in
  List.concat_map
    (fun (net : Netlist.Net.t) ->
      List.filter_map
        (fun p ->
          if p >= 0 && p < n then None
          else
            Some
              (D.error ~code:"AL001"
                 ~subject:("net " ^ net.Netlist.Net.name)
                 (Printf.sprintf "pin %d indexes no module (circuit has %d)"
                    p n)
                 ~hint:"pins must be module indices in [0, size)"))
        net.Netlist.Net.pins)
    c.C.nets

let lint_duplicate_names (c : C.t) =
  let seen = Hashtbl.create 16 in
  Array.to_list c.C.modules
  |> List.filter_map (fun (m : C.module_) ->
         if Hashtbl.mem seen m.C.name then
           Some
             (D.error ~code:"AL002"
                ~subject:("module " ^ m.C.name)
                "duplicate module name"
                ~hint:"rename the device; lookups by name are ambiguous")
         else begin
           Hashtbl.replace seen m.C.name ();
           None
         end)

let lint_dims (c : C.t) =
  Array.to_list c.C.modules
  |> List.filter_map (fun (m : C.module_) ->
         if m.C.w > 0 && m.C.h > 0 then None
         else
           Some
             (D.error ~code:"AL003"
                ~subject:("module " ^ m.C.name)
                (Printf.sprintf "non-positive dimensions %dx%d" m.C.w m.C.h)
                ~hint:"check the device W/L parameters"))

let lint_net_degree (c : C.t) =
  List.filter_map
    (fun (net : Netlist.Net.t) ->
      let d = Netlist.Net.degree net in
      if d >= 2 then None
      else
        Some
          (D.warning ~code:"AL008"
             ~subject:("net " ^ net.Netlist.Net.name)
             (Printf.sprintf "net has %d pin%s and contributes no wirelength"
                d
                (if d = 1 then "" else "s"))
             ~hint:"drop the net or connect it to a second module"))
    c.C.nets

let lint_isolated (c : C.t) =
  let n = Array.length c.C.modules in
  let on_net = Array.make n false in
  List.iter
    (fun (net : Netlist.Net.t) ->
      List.iter
        (fun p -> if p >= 0 && p < n then on_net.(p) <- true)
        net.Netlist.Net.pins)
    c.C.nets;
  List.init n Fun.id
  |> List.filter_map (fun i ->
         if on_net.(i) then None
         else
           Some
             (D.info ~code:"AL012"
                ~subject:("module " ^ module_name c i)
                "module lies on no net; wirelength never constrains it"))

let circuit c =
  lint_pins c @ lint_duplicate_names c @ lint_dims c @ lint_net_degree c
  @ lint_isolated c

(* ---- symmetry-constraint lints ------------------------------------ *)

let lint_group_range (c : C.t) (g : G.t) =
  let n = C.size c in
  List.filter_map
    (fun m ->
      if m >= 0 && m < n then None
      else
        Some
          (D.error ~code:"AL004"
             ~subject:("group " ^ g.G.name)
             (Printf.sprintf "references cell %d absent from the circuit" m)
             ~hint:"symmetry annotations must name placed modules"))
    (G.members g)

let lint_group_overlap (c : C.t) gs =
  let owner = Hashtbl.create 16 in
  List.concat_map
    (fun (g : G.t) ->
      List.filter_map
        (fun m ->
          match Hashtbl.find_opt owner m with
          | Some prev when prev != g ->
              Some
                (D.error ~code:"AL005"
                   ~subject:("cell " ^ module_name c m)
                   (Printf.sprintf
                      "cell belongs to symmetry groups %s and %s"
                      prev.G.name g.G.name)
                   ~hint:
                     "symmetry groups must be disjoint; merge or split the \
                      annotations")
          | Some _ -> None
          | None ->
              Hashtbl.replace owner m g;
              None)
        (G.members g))
    gs

let lint_pair_dims (c : C.t) (g : G.t) =
  let n = C.size c in
  List.filter_map
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then None
      else
        let wa, ha = C.dims c a and wb, hb = C.dims c b in
        if wa = wb && ha = hb then None
        else
          Some
            (D.error ~code:"AL006"
               ~subject:("group " ^ g.G.name)
               (Printf.sprintf
                  "pair (%s, %s) has mismatched dimensions %dx%d vs %dx%d; \
                   exact mirroring is impossible"
                  (module_name c a) (module_name c b) wa ha wb hb)
               ~hint:"matched devices must share a footprint"))
    g.G.pairs

let lint_self_parity (c : C.t) (g : G.t) =
  let n = C.size c in
  let selfs = List.filter (fun s -> s >= 0 && s < n) g.G.selfs in
  match selfs with
  | [] | [ _ ] -> []
  | first :: rest ->
      let parity s = fst (C.dims c s) land 1 in
      let p0 = parity first in
      List.filter_map
        (fun s ->
          if parity s = p0 then None
          else
            Some
              (D.warning ~code:"AL007"
                 ~subject:("group " ^ g.G.name)
                 (Printf.sprintf
                    "self-symmetric cells %s and %s disagree in width \
                     parity; the packer will pad one by a grid unit"
                    (module_name c first) (module_name c s))
                 ~hint:"give self-symmetric cells widths of equal parity"))
        rest

let lint_trivial (g : G.t) =
  if G.cardinal g >= 2 then []
  else
    [
      D.info ~code:"AL011"
        ~subject:("group " ^ g.G.name)
        "symmetry group with fewer than two members constrains nothing";
    ]

let lint_over_constrained ~sf_threshold (c : C.t) gs =
  let n = C.size c in
  match Seqpair.Symmetry.count_upper_bound ~n gs with
  | bound when bound < sf_threshold ->
      [
        D.warning ~code:"AL010" ~subject:"symmetry constraints"
          (Printf.sprintf
             "S-F count bound is %d (< %d): the symmetry constraints \
              collapse the sequence-pair search space"
             bound sf_threshold)
          ~hint:"the annealer has almost nothing to explore; consider \
                 relaxing the annotations or placing deterministically";
      ]
  | _ -> []
  | exception Invalid_argument _ -> []

let groups ?(sf_threshold = 1000) c gs =
  List.concat_map (lint_group_range c) gs
  @ lint_group_overlap c gs
  @ List.concat_map (lint_pair_dims c) gs
  @ List.concat_map (lint_self_parity c) gs
  @ lint_over_constrained ~sf_threshold c gs
  @ List.concat_map lint_trivial gs

(* ---- hierarchy lints ---------------------------------------------- *)

(* Point symmetry about the common centroid maps each cell to a cell of
   the same size; a cell may map to itself only by sitting exactly on
   the centroid, which at most one cell can do. So at most one (w, h)
   size class may hold an odd number of cells. *)
let lint_centroid_parity (c : C.t) (name, members) =
  let n = C.size c in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if m >= 0 && m < n then begin
        let d = C.dims c m in
        Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
      end)
    members;
  let odd =
    Hashtbl.fold (fun _ cnt acc -> if cnt land 1 = 1 then acc + 1 else acc)
      counts 0
  in
  if odd <= 1 then []
  else
    [
      D.warning ~code:"AL009"
        ~subject:("common-centroid " ^ name)
        (Printf.sprintf
           "%d size classes have an odd cell count; the set cannot be \
            point-symmetric about one centroid"
           odd)
        ~hint:"matched arrays need pairwise-equal cells (or one odd cell \
               centered); split the device or fix the footprints";
    ]

let hierarchy c h =
  Netlist.Hierarchy.constraint_nodes h
  |> List.concat_map (fun (name, kind, members) ->
         match kind with
         | Netlist.Hierarchy.Common_centroid ->
             lint_centroid_parity c (name, members)
         | Netlist.Hierarchy.Free | Netlist.Hierarchy.Symmetry
         | Netlist.Hierarchy.Proximity ->
             [])

let all ?sf_threshold c h =
  circuit c
  @ groups ?sf_threshold c (G.of_hierarchy h)
  @ hierarchy c h
