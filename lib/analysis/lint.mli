(** Static lints over circuits and layout constraints.

    The placers burn annealing rounds on whatever they are given;
    these passes front-load the well-formedness conditions the
    survey's constraint model implies (symmetric-feasibility
    preconditions, disjoint symmetry groups, mirror-compatible
    dimensions, centroid parity) so that bad inputs are rejected with
    actionable diagnostics before any packing runs.

    Codes emitted here (static lints, [AL0xx]):

    - [AL000] error: the input never became a circuit — the netlist
      file failed to parse, or structure recognition rejected it
    - [AL001] error: a net pin indexes no module
    - [AL002] error: two modules share a name
    - [AL003] error: a module has non-positive dimensions
    - [AL004] error: a symmetry group references a cell absent from the
      circuit
    - [AL005] error: a cell occurs in two symmetry groups
    - [AL006] error: a symmetric pair's cell dimensions differ, so exact
      mirroring is impossible
    - [AL007] warning: self-symmetric cells of one group disagree in
      width parity (the packer will pad widths to keep the axis on the
      half-grid)
    - [AL008] warning: a net has fewer than two pins and contributes no
      wirelength
    - [AL009] warning: a common-centroid set cannot be point-symmetric
      (more than one size class with an odd cell count)
    - [AL010] warning: the S-F count bound shows the symmetry
      constraints collapse the search space below [sf_threshold]
      codes — the input is likely over-constrained
    - [AL011] info: a symmetry group with fewer than two members
      constrains nothing
    - [AL012] info: a module lies on no net, so wirelength never
      constrains its position *)

val parse_failure : ?line:int -> file:string -> string -> Diagnostic.t
(** The AL000 diagnostic for an input that never became a circuit:
    subject is [file] or [file:line] when the failing line is known
    (parse errors carry one; recognition failures do not). The lint
    driver reports it and exits with the I/O status (2), distinct from
    the lint-findings status (1). *)

val circuit : Netlist.Circuit.t -> Diagnostic.t list
(** Netlist-only lints: AL001, AL002, AL003, AL008, AL012. *)

val groups :
  ?sf_threshold:int ->
  Netlist.Circuit.t ->
  Constraints.Symmetry_group.t list ->
  Diagnostic.t list
(** Symmetry-constraint lints: AL004, AL005, AL006, AL007, AL010,
    AL011. [sf_threshold] (default 1000) is the AL010 cut-off on
    {!Seqpair.Symmetry.count_upper_bound}; the warning is suppressed
    when the bound overflows 63 bits (the space is anything but
    collapsed). *)

val hierarchy :
  Netlist.Circuit.t -> Netlist.Hierarchy.t -> Diagnostic.t list
(** Hierarchy-node lints: AL009 on every common-centroid node. *)

val all :
  ?sf_threshold:int ->
  Netlist.Circuit.t ->
  Netlist.Hierarchy.t ->
  Diagnostic.t list
(** {!circuit}, {!groups} on the hierarchy's extracted symmetry groups,
    and {!hierarchy}, concatenated in that order. *)
