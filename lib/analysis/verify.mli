(** Independent post-placement verifier.

    The sanitizer ({!Invariant}) audits the {e representations} while
    the annealers run; this pass re-checks a {e finished} placement —
    fresh from an engine, or re-hydrated from a QoR ledger record —
    against its obligations using only {!Constraints.Placement_check}
    arithmetic. It shares no code with any packer or evaluator, so an
    engine bug that survives its own invariants (a wrong contour
    update, a stale mirror axis) is still caught here, the way a DRC
    deck catches a router's mistakes.

    Codes emitted here (verification findings, [AL21x]):

    - [AL210] error: a placed cell indexes no module, or its rectangle
      matches the module's dimensions in no orientation (a
      self-symmetric cell may carry the symmetric packer's one-unit
      parity pad on its mirrored extent when [groups] are supplied)
    - [AL211] error: a module is placed zero or several times
    - [AL212] error: two placed rectangles overlap (every offending
      pair is reported, DRC style)
    - [AL213] error: a cell leaves the first quadrant or the outline
    - [AL214] error: a symmetry obligation is not exactly mirrored
    - [AL215] error: a common-centroid obligation is not
      point-symmetric
    - [AL216] error: a proximity obligation is not edge-connected
    - [AL217] warning: a recorded constraint of unknown kind could not
      be verified
    - [AL218] info: a violation the record itself disclosed (positive
      recorded count) re-confirmed — not a new finding
    - [AL219] warning: the record claims a violation the placement does
      not show; the QoR extractor and this verifier disagree *)

val placement :
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?constraint_sets:(string * string * int list) list ->
  ?recorded_sets:(string * string * int list * int) list ->
  ?outline:int * int ->
  Netlist.Circuit.t ->
  Geometry.Transform.placed list ->
  Diagnostic.t list
(** Verify a placement of [circuit]. [groups] obligations use the
    exact declared pairing ({!Constraints.Placement_check.symmetry});
    [hierarchy] contributes its proximity and common-centroid nodes
    (symmetry nodes are expected in [groups], as every placer consumes
    them); [constraint_sets] are [(name, kind, members)] triples —
    obligations the caller asserts, so failures are errors; their
    symmetry obligations use the pairing-free mirror check.
    [recorded_sets] adds a recorded violation count to each triple, as
    {!Telemetry.Ledger.constraint_sets} re-hydrates them: count 0 is a
    claim of satisfaction and re-verifies as an error, a positive count
    is a disclosed violation and re-verifies as AL218 info (or AL219
    warning when it no longer reproduces). When the multiplicity check
    (AL211) fails, obligation checks are suppressed: they would only
    echo the missing cells as lookup noise. *)

val circuit_of_entry : Telemetry.Ledger.entry -> Netlist.Circuit.t
(** Rebuild an opaque-block circuit from an entry's placed rectangles,
    one block per rect in cell order — the same re-hydration
    [analog_place report] draws from. *)

val entry :
  ?outline:int * int ->
  Telemetry.Ledger.entry ->
  (Diagnostic.t list, string) result
(** Re-hydrate a ledger entry (rectangles via {!circuit_of_entry},
    obligations via {!Telemetry.Ledger.constraint_sets}) and verify it.
    [Error] when the entry embeds no placed rectangles. *)
