type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  hint : string option;
}

let make ?hint ~code ~severity ~subject message =
  { code; severity; subject; message; hint }

let error ?hint ~code ~subject message =
  make ?hint ~code ~severity:Error ~subject message

let warning ?hint ~code ~subject message =
  make ?hint ~code ~severity:Warning ~subject message

let info ?hint ~code ~subject message =
  make ?hint ~code ~severity:Info ~subject message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let codes ds =
  List.sort_uniq String.compare (List.map (fun d -> d.code) ds)

let pp ppf d =
  Format.fprintf ppf "@[%s %s %s: %s%a@]" d.code
    (severity_to_string d.severity)
    d.subject d.message
    (fun ppf -> function
      | None -> ()
      | Some h -> Format.fprintf ppf " (hint: %s)" h)
    d.hint

let pp_list ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let n_err = List.length (errors ds) in
  let n_warn =
    List.length (List.filter (fun d -> d.severity = Warning) ds)
  in
  Format.fprintf ppf "%d error%s, %d warning%s@." n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")

(* Minimal JSON string escaping: the messages only ever hold names and
   ASCII prose, but control characters must not corrupt the stream. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\",\"hint\":%s}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape d.subject) (json_escape d.message)
    (match d.hint with
    | None -> "null"
    | Some h -> Printf.sprintf "\"%s\"" (json_escape h))

let list_to_json ds =
  "[" ^ String.concat ",\n " (List.map to_json ds) ^ "]"
