type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  hint : string option;
}

let make ?hint ~code ~severity ~subject message =
  { code; severity; subject; message; hint }

let error ?hint ~code ~subject message =
  make ?hint ~code ~severity:Error ~subject message

let warning ?hint ~code ~subject message =
  make ?hint ~code ~severity:Warning ~subject message

let info ?hint ~code ~subject message =
  make ?hint ~code ~severity:Info ~subject message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let codes ds =
  List.sort_uniq String.compare (List.map (fun d -> d.code) ds)

let pp ppf d =
  Format.fprintf ppf "@[%s %s %s: %s%a@]" d.code
    (severity_to_string d.severity)
    d.subject d.message
    (fun ppf -> function
      | None -> ()
      | Some h -> Format.fprintf ppf " (hint: %s)" h)
    d.hint

let pp_list ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let n_err = List.length (errors ds) in
  let n_warn =
    List.length (List.filter (fun d -> d.severity = Warning) ds)
  in
  Format.fprintf ppf "%d error%s, %d warning%s@." n_err
    (if n_err = 1 then "" else "s")
    n_warn
    (if n_warn = 1 then "" else "s")

(* JSON goes through the shared Telemetry.Json value layer (escaping,
   emission and the parse round-trip all live there); this module only
   states the shape of a diagnostic object. *)
module J = Telemetry.Json

let json d =
  J.Obj
    [
      ("code", J.str d.code);
      ("severity", J.str (severity_to_string d.severity));
      ("subject", J.str d.subject);
      ("message", J.str d.message);
      ("hint", match d.hint with None -> J.Null | Some h -> J.str h);
    ]

let list_json ds = J.Arr (List.map json ds)
let to_json d = J.emit (json d)
let list_to_json ds = J.emit (list_json ds)
