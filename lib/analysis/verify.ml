open Geometry
module C = Netlist.Circuit
module G = Constraints.Symmetry_group
module H = Netlist.Hierarchy
module P = Constraints.Placement_check
module D = Diagnostic

let module_name (c : C.t) i =
  if i >= 0 && i < Array.length c.C.modules then c.C.modules.(i).C.name
  else Printf.sprintf "#%d" i

(* ---- AL210/AL211: identity and multiplicity ----------------------- *)

let check_identity ?(groups = []) (c : C.t) placed =
  let n = C.size c in
  (* The symmetric packer pads a self-symmetric cell's x-extent by one
     unit when its width parity admits no exact integer mirror axis
     (see Seqpair.Symmetry); the pad is part of the contract, not an
     identity violation. *)
  let self_symmetric cell =
    List.exists
      (fun (g : Constraints.Symmetry_group.t) ->
        List.mem cell g.Constraints.Symmetry_group.selfs)
      groups
  in
  let seen = Array.make n 0 in
  let diags =
    List.filter_map
      (fun (p : Transform.placed) ->
        if p.Transform.cell < 0 || p.Transform.cell >= n then
          Some
            (D.error ~code:"AL210"
               ~subject:(Printf.sprintf "cell %d" p.Transform.cell)
               (Printf.sprintf "placed cell indexes no module (circuit has %d)"
                  n))
        else begin
          seen.(p.Transform.cell) <- seen.(p.Transform.cell) + 1;
          let w, h = C.dims c p.Transform.cell in
          let r = p.Transform.rect in
          if
            (r.Rect.w, r.Rect.h) = (w, h)
            || (r.Rect.w, r.Rect.h) = (h, w)
            || (self_symmetric p.Transform.cell
               && ((w land 1 = 1 && (r.Rect.w, r.Rect.h) = (w + 1, h))
                  || (h land 1 = 1 && (r.Rect.w, r.Rect.h) = (h + 1, w))))
          then None
          else
            Some
              (D.error ~code:"AL210"
                 ~subject:("cell " ^ module_name c p.Transform.cell)
                 (Printf.sprintf
                    "placed as %dx%d but the module is %dx%d (no orientation \
                     matches)"
                    r.Rect.w r.Rect.h w h)
                 ~hint:"the placement does not belong to this circuit")
        end)
      placed
  in
  let multiplicity =
    List.init n Fun.id
    |> List.filter_map (fun i ->
           if seen.(i) = 1 then None
           else
             Some
               (D.error ~code:"AL211"
                  ~subject:("cell " ^ module_name c i)
                  (if seen.(i) = 0 then "module was never placed"
                   else
                     Printf.sprintf "module is placed %d times" seen.(i))))
  in
  diags @ multiplicity

(* ---- AL212: overlaps ---------------------------------------------- *)

(* Every offending pair, DRC style, not just the first: a report that
   names one overlap of thirty sends the debugging round-trip through
   the verifier thirty times. *)
let check_overlaps (c : C.t) placed =
  let arr = Array.of_list placed in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if Rect.overlaps a.Transform.rect b.Transform.rect then
        out :=
          D.error ~code:"AL212"
            ~subject:
              (Printf.sprintf "cells %s, %s"
                 (module_name c a.Transform.cell)
                 (module_name c b.Transform.cell))
            (Format.asprintf "placed rectangles overlap (%a vs %a)" Rect.pp
               a.Transform.rect Rect.pp b.Transform.rect)
          :: !out
    done
  done;
  List.rev !out

(* ---- AL213: outline ----------------------------------------------- *)

let check_outline ?outline (c : C.t) placed =
  let ow, oh =
    match outline with Some (w, h) -> (w, h) | None -> (max_int, max_int)
  in
  List.filter_map
    (fun (p : Transform.placed) ->
      let r = p.Transform.rect in
      if r.Rect.x < 0 || r.Rect.y < 0 then
        Some
          (D.error ~code:"AL213"
             ~subject:("cell " ^ module_name c p.Transform.cell)
             (Format.asprintf "%a leaves the first quadrant" Rect.pp r))
      else if Rect.x_max r > ow || Rect.y_max r > oh then
        Some
          (D.error ~code:"AL213"
             ~subject:("cell " ^ module_name c p.Transform.cell)
             (Format.asprintf "%a exceeds the %dx%d outline" Rect.pp r ow oh))
      else None)
    placed

(* ---- AL214..AL216: constraint obligations ------------------------- *)

let check_groups placed gs =
  List.filter_map
    (fun (g : G.t) ->
      match P.symmetry ~group:g placed with
      | Ok _ -> None
      | Error v ->
          Some
            (D.error ~code:"AL214"
               ~subject:("group " ^ g.G.name)
               (Format.asprintf "not mirror-symmetric: %a" P.pp_violation v)))
    gs

let check_kind ~name ~members placed = function
  | "symmetry" -> (
      (* a ledger records only the member set; the pairing-free check
         accepts any mirror assignment, which is the right semantics
         for an engine-independent re-audit *)
      match P.mirror_symmetric ~members placed with
      | Ok _ -> None
      | Error v ->
          Some
            (D.error ~code:"AL214"
               ~subject:("group " ^ name)
               (Format.asprintf "not mirror-symmetric: %a" P.pp_violation v)))
  | "common-centroid" -> (
      match P.common_centroid ~members placed with
      | Ok () -> None
      | Error v ->
          Some
            (D.error ~code:"AL215"
               ~subject:("centroid " ^ name)
               (Format.asprintf "not point-symmetric: %a" P.pp_violation v)))
  | "proximity" -> (
      match P.proximity ~members placed with
      | Ok () -> None
      | Error v ->
          Some
            (D.error ~code:"AL216"
               ~subject:("proximity " ^ name)
               (Format.asprintf "not connected: %a" P.pp_violation v)))
  | other ->
      Some
        (D.warning ~code:"AL217"
           ~subject:("constraint " ^ name)
           (Printf.sprintf "unknown constraint kind %S was not verified" other)
           ~hint:"the record was written by a newer schema; re-run its tool")

let check_sets placed sets =
  List.filter_map
    (fun (name, ckind, members) ->
      if members = [] then None else check_kind ~name ~members placed ckind)
    sets

(* A ledger obligation comes with the violation count the run recorded.
   Count 0 is a claim of satisfaction — re-verify it hard. A positive
   count is a disclosed violation (unconstrained engines record the
   obligations they never enforced): confirming it is a note, and a
   record that claims a violation the placement does not show is the
   suspicious case. *)
let check_recorded_sets placed sets =
  List.filter_map
    (fun (name, ckind, members, count) ->
      if members = [] then None
      else
        match (check_kind ~name ~members placed ckind, count > 0) with
        | finding, false -> finding
        | Some (d : D.t), true when d.D.code = "AL217" -> Some d
        | Some (d : D.t), true ->
            Some
              (D.info ~code:"AL218" ~subject:d.D.subject
                 (Printf.sprintf
                    "recorded violation confirmed (run counted %d): %s" count
                    d.D.message))
        | None, true ->
            Some
              (D.warning ~code:"AL219"
                 ~subject:(Printf.sprintf "%s %s" ckind name)
                 (Printf.sprintf
                    "run recorded %d violations but the placement verifies \
                     clean"
                    count)
                 ~hint:
                   "the QoR extractor and this verifier disagree; one of \
                    them is wrong"))
    sets

let check_hierarchy placed h =
  H.constraint_nodes h
  |> List.filter_map (fun (name, kind, members) ->
         match (kind : H.constraint_kind) with
         | H.Common_centroid ->
             check_kind ~name ~members placed "common-centroid"
         | H.Proximity -> check_kind ~name ~members placed "proximity"
         | H.Symmetry | H.Free -> None)

(* ---- entry points ------------------------------------------------- *)

let placement ?(groups = []) ?hierarchy ?(constraint_sets = [])
    ?(recorded_sets = []) ?outline (c : C.t) placed =
  let identity = check_identity ~groups c placed in
  (* obligation checks look cells up by index; they would drown in
     lookup noise when the identity layer already failed *)
  let structural =
    check_overlaps c placed
    @ check_outline ?outline c placed
    @
    if List.exists (fun (d : D.t) -> d.D.code = "AL211") identity then []
    else
      check_groups placed groups
      @ (match hierarchy with
        | None -> []
        | Some h -> check_hierarchy placed h)
      @ check_sets placed constraint_sets
      @ check_recorded_sets placed recorded_sets
  in
  identity @ structural

let circuit_of_entry (e : Telemetry.Ledger.entry) =
  let modules =
    List.map
      (fun (r : Telemetry.Ledger.rect) ->
        C.block ~name:r.Telemetry.Ledger.cell ~w:r.Telemetry.Ledger.w
          ~h:r.Telemetry.Ledger.h)
      e.Telemetry.Ledger.placement
  in
  C.make ~name:e.Telemetry.Ledger.label ~modules ~nets:[]

let entry ?outline (e : Telemetry.Ledger.entry) =
  match e.Telemetry.Ledger.placement with
  | [] ->
      Error
        (Printf.sprintf
           "entry %s/%s@%s holds no placed rectangles; it predates schema \
            placements or was written without them"
           e.Telemetry.Ledger.label e.Telemetry.Ledger.engine
           e.Telemetry.Ledger.generated_at)
  | rects ->
      let c = circuit_of_entry e in
      let placed =
        List.mapi
          (fun i (r : Telemetry.Ledger.rect) ->
            Transform.place ~cell:i ~x:r.Telemetry.Ledger.x
              ~y:r.Telemetry.Ledger.y ~w:r.Telemetry.Ledger.w
              ~h:r.Telemetry.Ledger.h ~orient:Orientation.R0)
          rects
      in
      Ok
        (placement
           ~recorded_sets:(Telemetry.Ledger.constraint_sets e)
           ?outline c placed)
