(** Runtime invariant sanitizer for the topological representations.

    The annealing placers trust their move sets to preserve the
    representation invariants (S-F feasibility, B*-tree shape, exact
    symmetric packing). These checkers re-verify them independently so
    a debug mode can audit every SA move and fail fast — with a full
    diagnostic dump — at the move that broke an invariant, instead of
    returning a silently asymmetric layout.

    Checks are opt-in: the placers take [?validate] (defaulting to
    {!enabled_from_env}, the [ANALOG_VALIDATE=1] environment switch)
    and install the checkers only when it is set, so the disabled mode
    runs the exact closures it always ran — zero overhead.

    Codes emitted here (invariants, [AL1xx]):

    - [AL101] error: sequence-pair permutations inconsistent
    - [AL102] error: sequence-pair not symmetric-feasible for a group
    - [AL103] error: B*-tree malformed (cell missing, duplicated, out
      of range, or structure cyclic)
    - [AL104] error: packed placement has overlapping cells
    - [AL105] error: ASF island violates its mirror invariant
    - [AL106] error: a cell is placed a number of times other than once
    - [AL107] error: a cell lies outside the first quadrant (or given
      outline)
    - [AL108] error: a symmetry group is not exactly mirrored *)

exception Violation of string * Diagnostic.t list
(** [(context, diagnostics)]; a printer is registered, so an uncaught
    violation renders the whole dump. *)

val enabled_from_env : unit -> bool
(** True when [ANALOG_VALIDATE] is set to anything but [""], ["0"] or
    ["false"]. Read on every call (cheap), so tests can toggle it. *)

val raise_if_any : context:string -> Diagnostic.t list -> unit
(** Raise {!Violation} when the list is non-empty. *)

val check_sp : n:int -> Seqpair.Sp.t -> Diagnostic.t list
(** Both permutations have size [n] and are position/cell consistent. *)

val check_sf :
  Seqpair.Sp.t -> Constraints.Symmetry_group.t list -> Diagnostic.t list
(** Symmetric-feasibility (survey property (1)) of every group. *)

val check_bstar : n:int -> Bstar.Tree.t -> Diagnostic.t list
(** The tree holds each cell of [0..n-1] exactly once. The traversal is
    budgeted, so a (deliberately corrupted) cyclic structure is
    reported rather than looped on. *)

val check_flat : Bstar.Flat.t -> Diagnostic.t list
(** Well-formedness of a flat-array B*-tree (AL103): the cell/node
    labelings are mutually inverse, child and parent links agree, every
    node is reachable from the (single) root — budgeted, as
    {!check_bstar} — and the O(1)-draw leaf set lists exactly the
    current leaves. *)

val check_asf_island :
  group:Constraints.Symmetry_group.t -> Bstar.Asf.island -> Diagnostic.t list
(** The island is overlap-free, fits its stated [width]x[height] box,
    and mirrors the group exactly about its stated axis. *)

val audit_placed :
  ?groups:Constraints.Symmetry_group.t list ->
  ?outline:int * int ->
  n:int ->
  Geometry.Transform.placed list ->
  Diagnostic.t list
(** Full placement audit: each cell of [0..n-1] exactly once (AL106),
    inside the first quadrant and the optional [outline] (AL107), no
    overlaps (AL104), every group exactly mirrored (AL108). *)
