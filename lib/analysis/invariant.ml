open Geometry
module G = Constraints.Symmetry_group
module D = Diagnostic

exception Violation of string * Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Violation (context, ds) ->
        Some
          (Format.asprintf "@[<v>invariant violation in %s:@,%a@]" context
             D.pp_list ds)
    | _ -> None)

let enabled_from_env () =
  match Sys.getenv_opt "ANALOG_VALIDATE" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

let raise_if_any ~context = function
  | [] -> ()
  | ds -> raise (Violation (context, ds))

(* ---- representation checks ---------------------------------------- *)

let check_perm ~n ~which p =
  if Seqpair.Perm.size p <> n then
    [
      D.error ~code:"AL101" ~subject:which
        (Printf.sprintf "permutation has size %d, circuit has %d cells"
           (Seqpair.Perm.size p) n);
    ]
  else begin
    let bad = ref [] in
    for pos = 0 to n - 1 do
      let c = Seqpair.Perm.cell_at p pos in
      if c < 0 || c >= n then
        bad :=
          D.error ~code:"AL101" ~subject:which
            (Printf.sprintf "cell %d at position %d is out of range" c pos)
          :: !bad
      else if Seqpair.Perm.pos_of p c <> pos then
        bad :=
          D.error ~code:"AL101" ~subject:which
            (Printf.sprintf "pos_of (cell_at %d) = %d; inverse inconsistent"
               pos (Seqpair.Perm.pos_of p c))
          :: !bad
    done;
    List.rev !bad
  end

let check_sp ~n (sp : Seqpair.Sp.t) =
  check_perm ~n ~which:"alpha" sp.Seqpair.Sp.alpha
  @ check_perm ~n ~which:"beta" sp.Seqpair.Sp.beta

let check_sf sp groups =
  List.filter_map
    (fun (g : G.t) ->
      if Seqpair.Symmetry.is_feasible sp g then None
      else
        Some
          (D.error ~code:"AL102"
             ~subject:("group " ^ g.G.name)
             "sequence-pair is not symmetric-feasible (property (1) \
              violated)"
             ~hint:"a move escaped the S-F subspace; repair with \
                    Symmetry.make_feasible"))
    groups

let check_bstar ~n tree =
  (* Budgeted traversal: a corrupted (shared or [let rec]-cyclic)
     structure must be reported, not looped on. *)
  let budget = ref (n + 1) in
  let count = Array.make (max n 1) 0 in
  let out_of_range = ref [] in
  let rec go t =
    if !budget > 0 then begin
      decr budget;
      let c = t.Bstar.Tree.cell in
      if c < 0 || c >= n then
        out_of_range :=
          D.error ~code:"AL103" ~subject:"b*-tree"
            (Printf.sprintf "node cell %d out of range [0, %d)" c n)
          :: !out_of_range
      else count.(c) <- count.(c) + 1;
      Option.iter go t.Bstar.Tree.left;
      Option.iter go t.Bstar.Tree.right
    end
  in
  go tree;
  if !budget = 0 then
    [
      D.error ~code:"AL103" ~subject:"b*-tree"
        (Printf.sprintf
           "traversal exceeded %d nodes: structure is cyclic or holds \
            duplicated subtrees"
           n);
    ]
  else
    List.rev !out_of_range
    @ List.concat
        (List.init n (fun c ->
             if count.(c) = 1 then []
             else
               [
                 D.error ~code:"AL103" ~subject:"b*-tree"
                   (Printf.sprintf "cell %d occurs %d times" c count.(c));
               ]))

let check_flat flat =
  let module F = Bstar.Flat in
  let n = F.size flat in
  let err fmt =
    Printf.ksprintf (fun msg -> D.error ~code:"AL103" ~subject:"flat b*-tree" msg) fmt
  in
  let in_node m = m >= 0 && m < n in
  let root = F.root flat in
  let root_errs =
    if not (in_node root) then [ err "root %d out of range [0, %d)" root n ]
    else if F.parent_of flat root <> -1 then
      [ err "root %d has parent %d, expected -1" root (F.parent_of flat root) ]
    else []
  in
  let errs = ref [] in
  let add e = errs := e :: !errs in
  for m = 0 to n - 1 do
    (* cell/node labelings are mutually inverse *)
    let c = F.cell_at flat m in
    if c < 0 || c >= n then add (err "node %d holds cell %d out of range" m c)
    else if F.node_of flat c <> m then
      add (err "node_of (cell_at %d) = %d; labeling not inverse" m
             (F.node_of flat c));
    (* downward links point back up *)
    List.iter
      (fun (side, ch) ->
        if ch <> -1 then
          if not (in_node ch) then
            add (err "node %d %s child %d out of range" m side ch)
          else if F.parent_of flat ch <> m then
            add (err "node %d %s child %d has parent %d" m side ch
                   (F.parent_of flat ch)))
      [ ("left", F.left_of flat m); ("right", F.right_of flat m) ];
    (* upward links are some child slot of the parent *)
    if m <> root then begin
      let p = F.parent_of flat m in
      if not (in_node p) then add (err "node %d has parent %d out of range" m p)
      else if F.left_of flat p <> m && F.right_of flat p <> m then
        add (err "node %d claims parent %d, which does not list it" m p)
    end
  done;
  (* budgeted reachability: every node reachable from the root exactly
     once (the link checks above make over-counting impossible unless
     the structure is cyclic, which the budget catches) *)
  let reached = ref 0 and budget = ref (n + 1) in
  let rec go m =
    if m <> -1 && !budget > 0 then begin
      decr budget;
      incr reached;
      if in_node m then begin
        go (F.left_of flat m);
        go (F.right_of flat m)
      end
    end
  in
  if root_errs = [] then go root;
  let reach_errs =
    if root_errs <> [] then []
    else if !budget = 0 then
      [ err "traversal exceeded %d nodes: structure is cyclic" n ]
    else if !reached <> n then
      [ err "%d of %d nodes reachable from the root" !reached n ]
    else []
  in
  (* the leaf set drives O(1) uniform leaf draws; it must be exactly
     the current leaves *)
  let actual_leaves =
    List.filter (fun m -> F.is_leaf flat m) (List.init n Fun.id)
  in
  let listed = List.sort Int.compare (F.leaf_nodes flat) in
  let leaf_errs =
    if F.leaf_count flat <> List.length actual_leaves || listed <> actual_leaves
    then
      [
        err "leaf set lists %d nodes [%s]; tree has %d leaves"
          (F.leaf_count flat)
          (String.concat ";" (List.map string_of_int listed))
          (List.length actual_leaves);
      ]
    else []
  in
  root_errs @ List.rev !errs @ reach_errs @ leaf_errs

(* ---- placement audit ---------------------------------------------- *)

let audit_placed ?(groups = []) ?outline ~n placed =
  let count = Array.make (max n 1) 0 in
  (* two passes: the summary below must see the fully-filled [count]
     array, and [e1 @ e2] does not promise left-to-right evaluation *)
  let out_of_range =
    List.concat_map
      (fun (p : Transform.placed) ->
        let c = p.Transform.cell in
        if c < 0 || c >= n then
          [
            D.error ~code:"AL106" ~subject:"placement"
              (Printf.sprintf "placed cell %d outside the circuit" c);
          ]
        else begin
          count.(c) <- count.(c) + 1;
          []
        end)
      placed
  in
  let multiplicity =
    out_of_range
    @ List.concat
        (List.init n (fun c ->
             if count.(c) = 1 then []
             else
               [
                 D.error ~code:"AL106" ~subject:"placement"
                   (Printf.sprintf "cell %d placed %d times" c count.(c));
               ]))
  in
  let bounds =
    List.filter_map
      (fun (p : Transform.placed) ->
        let r = p.Transform.rect in
        let inside_outline =
          match outline with
          | None -> true
          | Some (ow, oh) -> Rect.x_max r <= ow && Rect.y_max r <= oh
        in
        if r.Rect.x >= 0 && r.Rect.y >= 0 && inside_outline then None
        else
          Some
            (D.error ~code:"AL107"
               ~subject:(Printf.sprintf "cell %d" p.Transform.cell)
               (Format.asprintf "rect %a outside the %s" Rect.pp r
                  (match outline with
                  | None -> "first quadrant"
                  | Some (ow, oh) -> Printf.sprintf "%dx%d outline" ow oh))))
      placed
  in
  let overlap =
    match Constraints.Placement_check.overlap_free placed with
    | Ok () -> []
    | Error v ->
        [
          D.error ~code:"AL104" ~subject:v.Constraints.Placement_check.subject
            v.Constraints.Placement_check.detail;
        ]
  in
  let symmetry =
    List.filter_map
      (fun (g : G.t) ->
        match Constraints.Placement_check.symmetry ~group:g placed with
        | Ok _ -> None
        | Error v ->
            Some
              (D.error ~code:"AL108"
                 ~subject:
                   ("group " ^ g.G.name ^ ": "
                   ^ v.Constraints.Placement_check.subject)
                 v.Constraints.Placement_check.detail))
      groups
  in
  multiplicity @ bounds @ overlap @ symmetry

let check_asf_island ~group (island : Bstar.Asf.island) =
  let members = List.sort_uniq Int.compare (G.members group) in
  let placed_cells =
    List.sort Int.compare
      (List.map (fun (p : Transform.placed) -> p.Transform.cell)
         island.Bstar.Asf.placed)
  in
  let membership =
    if placed_cells = members then []
    else
      [
        D.error ~code:"AL105" ~subject:"asf island"
          "island cells differ from the group members";
      ]
  in
  let bounds =
    List.filter_map
      (fun (p : Transform.placed) ->
        let r = p.Transform.rect in
        if
          r.Rect.x >= 0 && r.Rect.y >= 0
          && Rect.x_max r <= island.Bstar.Asf.width
          && Rect.y_max r <= island.Bstar.Asf.height
        then None
        else
          Some
            (D.error ~code:"AL105"
               ~subject:(Printf.sprintf "cell %d" p.Transform.cell)
               (Format.asprintf "rect %a outside the island box %dx%d"
                  Rect.pp r island.Bstar.Asf.width island.Bstar.Asf.height)))
      island.Bstar.Asf.placed
  in
  let overlap =
    match Constraints.Placement_check.overlap_free island.Bstar.Asf.placed with
    | Ok () -> []
    | Error v ->
        [
          D.error ~code:"AL104" ~subject:v.Constraints.Placement_check.subject
            v.Constraints.Placement_check.detail;
        ]
  in
  let mirror =
    match
      Constraints.Placement_check.symmetry ~group island.Bstar.Asf.placed
    with
    | Ok axis2 when axis2 = island.Bstar.Asf.axis2 -> []
    | Ok axis2 ->
        [
          D.error ~code:"AL105" ~subject:"asf island"
            (Printf.sprintf "island axis2 %d but cells mirror about %d"
               island.Bstar.Asf.axis2 axis2);
        ]
    | Error v ->
        [
          D.error ~code:"AL105"
            ~subject:("asf island: " ^ v.Constraints.Placement_check.subject)
            v.Constraints.Placement_check.detail;
        ]
  in
  membership @ bounds @ overlap @ mirror
