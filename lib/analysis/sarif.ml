module D = Diagnostic
module J = Telemetry.Json

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level_of = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

(* One reportingDescriptor per distinct code, in first-appearance
   order; results refer back by ruleIndex as the spec recommends. *)
let rules ds =
  List.fold_left
    (fun acc (d : D.t) ->
      if List.mem_assoc d.D.code acc then acc
      else (d.D.code, d.D.message) :: acc)
    [] ds
  |> List.rev

let result ~rule_index ?uri (d : D.t) =
  let location =
    let logical = ("logicalLocations", J.Arr [ J.Obj [ ("name", J.str d.D.subject) ] ]) in
    match uri with
    | None -> J.Obj [ logical ]
    | Some u ->
        J.Obj
          [
            ( "physicalLocation",
              J.Obj [ ("artifactLocation", J.Obj [ ("uri", J.str u) ]) ] );
            logical;
          ]
  in
  let text =
    match d.D.hint with
    | None -> Printf.sprintf "%s: %s" d.D.subject d.D.message
    | Some h -> Printf.sprintf "%s: %s (hint: %s)" d.D.subject d.D.message h
  in
  J.Obj
    [
      ("ruleId", J.str d.D.code);
      ("ruleIndex", J.int rule_index);
      ("level", J.str (level_of d.D.severity));
      ("message", J.Obj [ ("text", J.str text) ]);
      ("locations", J.Arr [ location ]);
    ]

let report ?(tool = "analog_place") ?(tool_version = "1.0") ?uri ds =
  let rule_table = rules ds in
  let rule_descriptors =
    List.map
      (fun (code, first_message) ->
        J.Obj
          [
            ("id", J.str code);
            ( "shortDescription",
              J.Obj [ ("text", J.str first_message) ] );
          ])
      rule_table
  in
  let index_of code =
    let rec go i = function
      | [] -> 0
      | (c, _) :: rest -> if String.equal c code then i else go (i + 1) rest
    in
    go 0 rule_table
  in
  let results =
    List.map (fun d -> result ~rule_index:(index_of d.D.code) ?uri d) ds
  in
  J.Obj
    [
      ("$schema", J.str schema_uri);
      ("version", J.str "2.1.0");
      ( "runs",
        J.Arr
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.str tool);
                            ("version", J.str tool_version);
                            ("rules", J.Arr rule_descriptors);
                          ] );
                    ] );
                ("results", J.Arr results);
              ];
          ] );
    ]

let to_string ?tool ?tool_version ?uri ds =
  J.emit (report ?tool ?tool_version ?uri ds)

(* Structural self-check: the emitter is hand-rolled against the spec,
   so every document is re-parsed and probed for the fields a SARIF
   consumer dereferences unconditionally before it leaves the process. *)
let check s =
  match J.parse s with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok doc -> (
      let ( let* ) = Result.bind in
      let need what = function
        | Some v -> Ok v
        | None -> Error ("missing " ^ what)
      in
      let* version = need "version" (J.member "version" doc) in
      let* () =
        if J.to_str version = Some "2.1.0" then Ok ()
        else Error "version is not 2.1.0"
      in
      let* runs = need "runs" (Option.bind (J.member "runs" doc) J.to_list) in
      match runs with
      | [] -> Error "runs is empty"
      | run :: _ ->
          let* tool = need "tool" (J.member "tool" run) in
          let* driver = need "tool.driver" (J.member "driver" tool) in
          let* _name =
            need "tool.driver.name"
              (Option.bind (J.member "name" driver) J.to_str)
          in
          let* results =
            need "results" (Option.bind (J.member "results" run) J.to_list)
          in
          let ok_result r =
            match
              ( Option.bind (J.member "ruleId" r) J.to_str,
                Option.bind (J.member "level" r) J.to_str,
                Option.bind (J.member "message" r) (J.member "text") )
            with
            | Some _, Some lv, Some _ ->
                List.mem lv [ "error"; "warning"; "note" ]
            | _ -> false
          in
          if List.for_all ok_result results then Ok ()
          else Error "a result lacks ruleId/level/message.text")
