module C = Netlist.Circuit
module G = Constraints.Symmetry_group
module H = Netlist.Hierarchy
module D = Diagnostic

let module_name (c : C.t) i =
  if i >= 0 && i < Array.length c.C.modules then c.C.modules.(i).C.name
  else Printf.sprintf "#%d" i

let in_range (c : C.t) i = i >= 0 && i < C.size c

let positive_dims (c : C.t) i =
  let w, h = C.dims c i in
  w > 0 && h > 0

(* ---- AL201: outline area ------------------------------------------ *)

let check_area ~outline:(ow, oh) (c : C.t) =
  let need = C.total_module_area c in
  let have = ow * oh in
  if need <= have then []
  else
    [
      D.error ~code:"AL201" ~subject:"outline"
        (Printf.sprintf
           "total module area %d exceeds the %dx%d outline area %d; no \
            placement exists"
           need ow oh have)
        ~hint:"grow the outline or shrink the devices; annealing cannot help";
    ]

(* ---- AL202: single-module fit ------------------------------------- *)

(* A cell fits iff some orientation does; orientations swap the two
   dimensions, so the test is over both (w, h) and (h, w). *)
let cell_fits ~outline:(ow, oh) (w, h) =
  (w <= ow && h <= oh) || (h <= ow && w <= oh)

let check_module_fit ~outline (c : C.t) =
  Array.to_list c.C.modules
  |> List.filteri (fun i _ -> positive_dims c i)
  |> List.filter_map (fun (m : C.module_) ->
         if cell_fits ~outline (m.C.w, m.C.h) then None
         else
           let ow, oh = outline in
           Some
             (D.error ~code:"AL202"
                ~subject:("module " ^ m.C.name)
                (Printf.sprintf
                   "%dx%d cannot fit the %dx%d outline in any orientation"
                   m.C.w m.C.h ow oh)
                ~hint:"the outline is smaller than a single device"))

(* ---- AL203/AL204: symmetry-pair width obligations ----------------- *)

(* A mirrored pair occupies one row: both cells share y and height, so
   a horizontal line through the pair crosses two disjoint cells of
   oriented width w — any placement needs 2w of outline width at cell
   height h, for some orientation (w, h) | (h, w). *)
let pair_fits ~outline:(ow, oh) (w, h) =
  ((2 * w) <= ow && h <= oh) || ((2 * h) <= ow && w <= oh)

(* The pairs a group obliges, with their (equal) cell dimensions. Pairs
   whose cells are out of range or dimension-mismatched are skipped —
   AL004/AL006 own those defects. *)
let group_pairs (c : C.t) (g : G.t) =
  List.filter_map
    (fun (a, b) ->
      if not (in_range c a && in_range c b) then None
      else
        let da = C.dims c a and db = C.dims c b in
        if da <> db || not (positive_dims c a) then None
        else Some ((a, b), da))
    g.G.pairs

let check_pair_fit ~outline (c : C.t) gs =
  List.concat_map
    (fun (g : G.t) ->
      List.filter_map
        (fun ((a, b), (w, h)) ->
          if pair_fits ~outline (w, h) then None
          else
            let ow, oh = outline in
            Some
              (D.error ~code:"AL203"
                 ~subject:("group " ^ g.G.name)
                 (Printf.sprintf
                    "pair (%s, %s) needs a mirrored row of width %d (or %d \
                     rotated), but the outline is %dx%d"
                    (module_name c a) (module_name c b) (2 * w) (2 * h) ow oh)
                 ~hint:
                   "a symmetric pair occupies one row of twice its cell \
                    width; no axis position can fit it"))
        (group_pairs c g))
    gs

(* Two mirrored pairs either stack (their rows are vertically disjoint:
   heights add) or share a row (a horizontal line crosses all four
   cells: widths add). If for every orientation choice both sums
   overflow the outline, the two obligations are jointly unplaceable
   even though each fits alone. *)
let pairs_coexist ~outline:(ow, oh) (w1, h1) (w2, h2) =
  (* only orientations in which the pair fits alone can occur in a real
     placement, so quantifying over just those proves strictly more
     conflicts and stays sound. A pair with no fitting orientation is
     AL203's finding, not a joint conflict. *)
  let orients (w, h) =
    List.filter
      (fun (a, b) -> (2 * a) <= ow && b <= oh)
      [ (w, h); (h, w) ]
  in
  match (orients (w1, h1), orients (w2, h2)) with
  | [], _ | _, [] -> true
  | o1, o2 ->
      List.exists
        (fun (a, b) ->
          List.exists (fun (x, y) -> (2 * a) + (2 * x) <= ow || b + y <= oh) o2)
        o1

let check_pair_conflicts ~outline (c : C.t) gs =
  let tagged =
    List.concat_map
      (fun (g : G.t) ->
        List.filter_map
          (fun (pr, dims) ->
            if pair_fits ~outline dims then Some (g.G.name, pr, dims)
            else None (* AL203 already rejected it *))
          (group_pairs c g))
      gs
  in
  let arr = Array.of_list tagged in
  let n = Array.length arr in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let g1, (a1, b1), d1 = arr.(i) and g2, (a2, b2), d2 = arr.(j) in
      if not (pairs_coexist ~outline d1 d2) then
        let ow, oh = outline in
        out :=
          D.error ~code:"AL204"
            ~subject:
              (if String.equal g1 g2 then "group " ^ g1
               else Printf.sprintf "groups %s, %s" g1 g2)
            (Printf.sprintf
               "pairs (%s, %s) and (%s, %s) cannot coexist in the %dx%d \
                outline: sharing a row exceeds its width and stacking \
                exceeds its height, in every orientation"
               (module_name c a1) (module_name c b1) (module_name c a2)
               (module_name c b2) ow oh)
            ~hint:"the outline admits each pair alone but not both"
          :: !out
    done
  done;
  List.rev !out

(* ---- AL205: basic-set shape-function lower bounds ----------------- *)

(* The exhaustive front over a module set lower-bounds ANY placement of
   those cells: a placement of the whole circuit induces one of the
   subset, compacting it left/down only shrinks its box, and compacted
   placements are exactly what the B*-tree enumeration produces. The
   front is built uncapped (no thinning), so "no front point fits" is a
   proof. Enumeration is exponential, so sets are size-limited: 4 cells
   (5376 trees) by default, [Enumerate.max_exhaustive] under [~deep]. *)
let fast_set_limit = 4

let check_basic_sets ~outline:(ow, oh) ~limit (c : C.t) h =
  H.basic_module_sets h
  |> List.filter_map (fun (name, _kind, members) ->
         let k = List.length members in
         if
           k < 2 || k > limit
           || not (List.for_all (fun m -> in_range c m && positive_dims c m) members)
         then None
         else
           let fn = Shapefn.Enumerate.free_set ~dims:(C.dims c) members in
           if Shapefn.Shape_fn.fits ~max_w:ow ~max_h:oh fn then None
           else
             Some
               (D.error ~code:"AL205"
                  ~subject:("set " ^ name)
                  (Printf.sprintf
                     "no placement of the %d-module set fits the %dx%d \
                      outline (its shape front needs width >= %d and height \
                      >= %d)"
                     k ow oh
                     (Shapefn.Shape_fn.min_width fn)
                     (Shapefn.Shape_fn.min_height fn))
                  ~hint:
                    "the bound is from exhaustive enumeration of the set \
                     alone; the full circuit only needs more room"))

(* ---- AL206: hierarchical search-space bound ----------------------- *)

(* AL010 bounds the top-level S-F sequence-pair count; this generalizes
   across hierarchy levels: each internal node arranges its children as
   units, so the tree's total search space is the product of per-node
   arrangement counts — (k!)^2 sequence-pair codes for a free or
   proximity node, k! for a symmetry node (the mirror obligation fixes
   beta, the survey's Lemma with 2p + s = k), and ceil(k/2)! for a
   common-centroid node (point symmetry pins each unit's twin). Summed
   in log10 so deep trees cannot overflow. *)
let log10_fact k =
  let acc = ref 0.0 in
  for i = 2 to k do
    acc := !acc +. log10 (float_of_int i)
  done;
  !acc

let rec log_search_space = function
  | H.Leaf _ -> 0.0
  | H.Node { kind; children; _ } ->
      let k = List.length children in
      let here =
        match kind with
        | H.Free | H.Proximity -> 2.0 *. log10_fact k
        | H.Symmetry -> log10_fact k
        | H.Common_centroid -> log10_fact ((k + 1) / 2)
      in
      List.fold_left (fun acc t -> acc +. log_search_space t) here children

let check_search_space ~sf_threshold h =
  let lg = log_search_space h in
  if lg >= log10 (float_of_int (max 1 sf_threshold)) then []
  else
    [
      D.warning ~code:"AL206" ~subject:"hierarchy"
        (Printf.sprintf
           "the hierarchical search space holds at most %.0f arrangements \
            (< %d): every level is pinned by its constraints"
           (Float.round (10.0 ** lg))
           sf_threshold)
        ~hint:
          "so constrained a tree is better served by the deterministic \
           enumeration engines (esf/rsf) than by annealing";
    ]

(* ---- AL207: deterministic-enumeration outline fit ----------------- *)

(* Evidence, not proof: above the basic sets the bottom-up combination
   keeps islands rigid, so a placement the discipline misses may still
   exist. It is exact for the esf/rsf engines themselves, hence a
   warning that names them. *)
let check_root_shape ~outline:(ow, oh) (c : C.t) h =
  match H.validate h ~n_modules:(C.size c) with
  | Error _ -> []
  | Ok () -> (
      match Shapefn.Combine.shape_function ~mode:Shapefn.Combine.Rsf c h with
      | fn when Shapefn.Shape_fn.fits ~max_w:ow ~max_h:oh fn -> []
      | fn ->
          [
            D.warning ~code:"AL207" ~subject:"hierarchy"
              (Printf.sprintf
               "hierarchical enumeration fits no placement in the %dx%d \
                  outline (root shape front: width >= %d, height >= %d); \
                  the esf/rsf engines will certainly fail"
                 ow oh
                 (Shapefn.Shape_fn.min_width fn)
                 (Shapefn.Shape_fn.min_height fn))
              ~hint:
                "stochastic engines may still fit by tearing islands apart, \
                 but the margin is thin";
          ]
      | exception Invalid_argument _ -> [])

(* ---- entry point -------------------------------------------------- *)

let check ?groups ?hierarchy ?outline ?(sf_threshold = 1000) ?(deep = false)
    (c : C.t) =
  let groups =
    match (groups, hierarchy) with
    | Some gs, _ -> gs
    | None, Some h -> G.of_hierarchy h
    | None, None -> []
  in
  let with_outline =
    match outline with
    | None -> []
    | Some ((ow, oh) as outline) ->
        if ow <= 0 || oh <= 0 then
          [
            D.error ~code:"AL201" ~subject:"outline"
              (Printf.sprintf "outline %dx%d has no interior" ow oh)
              ~hint:"outline dimensions must be positive";
          ]
        else
          check_area ~outline c
          @ check_module_fit ~outline c
          @ check_pair_fit ~outline c groups
          @ check_pair_conflicts ~outline c groups
          @ (match hierarchy with
            | None -> []
            | Some h ->
                let limit =
                  if deep then Shapefn.Enumerate.max_exhaustive
                  else fast_set_limit
                in
                check_basic_sets ~outline ~limit c h
                @ if deep then check_root_shape ~outline c h else [])
  in
  let space =
    match hierarchy with
    | None -> []
    | Some h -> check_search_space ~sf_threshold h
  in
  with_outline @ space
