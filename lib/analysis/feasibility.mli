(** Pre-anneal infeasibility prover.

    The constraint model admits inputs that are perfectly well-formed —
    every {!Lint} pass is clean — yet {e provably unplaceable}: the
    modules outgrow the outline, a mirrored pair cannot fit any axis
    position, two symmetry obligations cannot coexist. Today such a
    request burns a full annealing budget before failing; this pass
    rejects it in microseconds, with a proof.

    Severity encodes epistemic status. [Error] findings are proofs of
    infeasibility — sound for {e any} placement engine, derived from
    orientation-minimized dimension arithmetic and uncapped exhaustive
    shape fronts. [Warning] findings are strong evidence scoped to a
    discipline (the deterministic enumerators, the annealers' search
    space) but not universal proofs.

    Codes emitted here (feasibility proofs, [AL20x]):

    - [AL201] error: total module area exceeds the outline area
    - [AL202] error: a module fits the outline in no orientation
    - [AL203] error: a symmetry pair's mirrored row fits the outline in
      no orientation ([2w x h] against the outline)
    - [AL204] error: two symmetry pairs are jointly unplaceable — for
      every orientation choice, sharing a row exceeds the outline width
      {e and} stacking exceeds its height
    - [AL205] error: a basic module set's exhaustive (uncapped) shape
      front has no point inside the outline — no placement of those
      cells alone fits, so none of the whole circuit does
    - [AL206] warning: the hierarchical search-space bound (the AL010
      S-F Lemma applied per hierarchy node and multiplied across
      levels) falls below [sf_threshold]
    - [AL207] warning ([~deep] only): the root shape function of the
      hierarchy fits no point in the outline — the deterministic
      esf/rsf engines will certainly fail; stochastic engines may
      still squeeze in by tearing islands apart *)

val check :
  ?groups:Constraints.Symmetry_group.t list ->
  ?hierarchy:Netlist.Hierarchy.t ->
  ?outline:int * int ->
  ?sf_threshold:int ->
  ?deep:bool ->
  Netlist.Circuit.t ->
  Diagnostic.t list
(** Prove what can be proven about the request. [groups] defaults to
    the hierarchy's extracted symmetry groups (as every placer consumes
    them). Without [outline] only the search-space bound (AL206) can
    fire — the geometric proofs are all relative to a box. [deep]
    (default false) additionally enumerates basic sets up to
    {!Shapefn.Enumerate.max_exhaustive} cells (instead of 4) and
    combines the root shape function (AL207); the default keeps the
    pass in the microsecond range so it can gate every request.
    [sf_threshold] (default 1000) mirrors {!Lint.groups}. *)

val cell_fits : outline:int * int -> int * int -> bool
(** Does a [w x h] cell fit the outline in some orientation? *)

val pair_fits : outline:int * int -> int * int -> bool
(** Does a mirrored pair of [w x h] cells — one row of width [2w] —
    fit the outline in some orientation? *)

val pairs_coexist : outline:int * int -> int * int -> int * int -> bool
(** Can two mirrored pairs of the given cell dimensions coexist in the
    outline (sharing a row or stacking)? Only orientations in which a
    pair fits alone are quantified over — the others cannot occur in
    any placement — and a pair with no fitting orientation yields
    [true] (that defect is {!pair_fits}'s, reported as AL203). [false]
    is a proof of joint infeasibility. *)
