(** SARIF 2.1.0 emission for {!Diagnostic} lists.

    SARIF (Static Analysis Results Interchange Format, OASIS) is the
    interchange format CI hosts ingest to annotate code review with
    analysis findings. This emitter produces the minimal conforming
    subset: one [run], one [tool.driver] with a [rules] table (one
    reportingDescriptor per distinct diagnostic code, first-appearance
    order), and one [result] per diagnostic carrying [ruleId],
    [ruleIndex], [level] and a logical location named after the
    diagnostic's subject. When [uri] is given, each result also carries
    a physical location pointing at that artifact (the netlist or
    ledger file the findings are about).

    Severities map [Error] → ["error"], [Warning] → ["warning"],
    [Info] → ["note"] per the SARIF level enumeration.

    Documents are built from {!Telemetry.Json} values and re-validated
    by {!check} before anything ships to CI. *)

val report :
  ?tool:string ->
  ?tool_version:string ->
  ?uri:string ->
  Diagnostic.t list ->
  Telemetry.Json.t
(** The SARIF document as a JSON value. [tool] defaults to
    ["analog_place"], [tool_version] to ["1.0"]. *)

val to_string :
  ?tool:string ->
  ?tool_version:string ->
  ?uri:string ->
  Diagnostic.t list ->
  string
(** [Telemetry.Json.emit] of {!report}: a single-line JSON document. *)

val check : string -> (unit, string) result
(** Structural self-check over an emitted document: valid JSON, version
    ["2.1.0"], a non-empty [runs] array whose first run names a tool
    driver, and every result carrying [ruleId], a legal [level], and
    [message.text]. The CLI runs this on everything it writes. *)
