(** Skyline contours.

    The packing procedures for B*-trees (and for HB*-tree macros with
    rectilinear tops, the survey's "contour nodes") maintain the top
    profile of the partial placement: a step function mapping every
    x-position to the height of material below. Dropping a cell at a
    given x lands it on top of the maximum of the profile under its
    footprint.

    The contour is a sorted list of constant-height segments covering
    [\[0, +inf)]; the implicit initial height is 0 everywhere. *)

type t

type segment = { x0 : int; x1 : int; y : int }
(** One step of the profile: height [y] over [\[x0, x1)]. *)

val empty : t
(** The flat contour at height 0. *)

val of_segments : segment list -> t
(** Build a contour from finite segments (height 0 elsewhere). Segments
    must be disjoint; raises [Invalid_argument] otherwise. *)

val height_at : t -> int -> int
(** Profile height at a single x-position. *)

val max_height : t -> x0:int -> x1:int -> int
(** Maximum profile height over [\[x0, x1)]; 0 for empty ranges. *)

val raise_to : t -> x0:int -> x1:int -> y:int -> t
(** [raise_to c ~x0 ~x1 ~y] sets the profile over [\[x0, x1)] to exactly
    [y] (the new top of a placed cell). The profile outside the range is
    unchanged. *)

val drop : t -> x:int -> w:int -> h:int -> int * t
(** [drop c ~x ~w ~h] lands a [w]x[h] cell at horizontal position [x] on
    the contour: returns its resting [y] (the max height under its
    footprint) and the updated contour. *)

val segments : t -> segment list
(** Finite segments of the profile in increasing x order (heights > 0
    only, maximally merged). *)

val max_y : t -> int
(** Highest point of the profile. *)

val shift : t -> dx:int -> dy:int -> t
(** Translate the profile. Heights never drop below 0: a negative [dy]
    clamps at 0. Raises [Invalid_argument] if [dx] would move a segment
    to a negative x. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Mutable scratch}

    The annealing hot path packs thousands of candidate B*-trees per
    second; rebuilding a persistent segment list per placed cell is
    pure garbage-collector traffic. The scratch is a doubly-linked
    segment arena tiling [\[0, +inf)]: one is allocated per evaluation
    arena (see {!Placer.Eval}), [clear]ed before each packing, and
    queried/updated in place. Heights agree exactly with the
    persistent operations above (tested), so packings through either
    representation produce identical coordinates. *)

type scratch

val scratch : int -> scratch
(** [scratch capacity] preallocates room for [capacity] segments (a
    packing of [n] cells needs at most [2n + 1]). The arena grows
    automatically if the hint is exceeded, so the capacity only
    controls steady-state allocation. *)

val clear : scratch -> unit
(** Reset to the flat contour at height 0, recycling every segment. *)

val drop_into : scratch -> x:int -> w:int -> h:int -> int
(** In-place {!drop}: land a [w]x[h] cell at horizontal position [x],
    return its resting y and raise the profile over its footprint. *)

val max_height_into : scratch -> x0:int -> x1:int -> int
(** In-place {!max_height}. *)

val raise_into : scratch -> x0:int -> x1:int -> y:int -> unit
(** In-place {!raise_to}: set the profile over [\[x0, x1)] to exactly
    [y]. Used directly by the HB*-tree packer to raise the
    rectilinear top profile of a contour node, column by column. *)

val scratch_segments : scratch -> segment list
(** Finite positive-height steps in increasing x order, maximally
    merged — the same normal form as {!segments}, for comparison and
    debugging (allocates; not for the hot path). *)
