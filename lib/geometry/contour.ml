type segment = { x0 : int; x1 : int; y : int }

(* Invariant: segments sorted by x0, pairwise disjoint, all with y > 0
   and x1 > x0; consecutive segments that touch have different heights
   (maximally merged). Height is 0 everywhere not covered. *)
type t = segment list

let empty = []

let normalize segs =
  let segs = List.filter (fun s -> s.y > 0 && s.x1 > s.x0) segs in
  let segs = List.sort (fun a b -> Int.compare a.x0 b.x0) segs in
  let rec merge = function
    | a :: b :: rest when a.x1 = b.x0 && a.y = b.y ->
        merge ({ x0 = a.x0; x1 = b.x1; y = a.y } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge segs

let of_segments segs =
  let sorted = List.sort (fun a b -> Int.compare a.x0 b.x0) segs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.x1 > b.x0 then invalid_arg "Contour.of_segments: overlap";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  normalize sorted

let height_at c x =
  let seg = List.find_opt (fun s -> s.x0 <= x && x < s.x1) c in
  match seg with Some s -> s.y | None -> 0

let max_height c ~x0 ~x1 =
  if x1 <= x0 then 0
  else
    List.fold_left
      (fun acc s -> if max s.x0 x0 < min s.x1 x1 then max acc s.y else acc)
      0 c

let raise_to c ~x0 ~x1 ~y =
  if x1 <= x0 then c
  else
    (* Clip every existing segment against [x0, x1), then insert the new
       plateau. *)
    let clipped =
      List.concat_map
        (fun s ->
          let left =
            if s.x0 < x0 then [ { s with x1 = min s.x1 x0 } ] else []
          in
          let right =
            if s.x1 > x1 then [ { s with x0 = max s.x0 x1 } ] else []
          in
          left @ right)
        c
    in
    normalize ({ x0; x1; y } :: clipped)

let drop c ~x ~w ~h =
  let y = max_height c ~x0:x ~x1:(x + w) in
  (y, raise_to c ~x0:x ~x1:(x + w) ~y:(y + h))

let segments c = c
let max_y c = List.fold_left (fun acc s -> max acc s.y) 0 c

let shift c ~dx ~dy =
  List.iter
    (fun s ->
      if s.x0 + dx < 0 then invalid_arg "Contour.shift: negative x")
    c;
  normalize
    (List.map (fun s -> { x0 = s.x0 + dx; x1 = s.x1 + dx; y = max 0 (s.y + dy) }) c)

let equal a b = a = b

(* ------------------------------------------------------------------ *)
(* Mutable scratch: a doubly-linked segment arena for the annealing
   hot path. Segments tile [0, +inf) (zero heights included), ordered
   by x, linked through [snext]/[sprev] with slot 0 as the head
   sentinel. Freed slots chain through [snext]; the arrays double when
   the free list runs dry, so one scratch serves any packing size and
   steady-state queries allocate nothing. *)

type scratch = {
  mutable sx0 : int array;
  mutable sx1 : int array;
  mutable sy : int array;
  mutable snext : int array;
  mutable sprev : int array;
  mutable free : int;  (* head of the free-slot chain, -1 when empty *)
}

let nil = -1
let head = 0

(* Thread slots [lo, hi) onto the free chain. *)
let chain_free s lo hi tail =
  for i = lo to hi - 1 do
    s.snext.(i) <- (if i + 1 < hi then i + 1 else tail)
  done;
  if hi > lo then s.free <- lo

let clear s =
  (* slot 1 becomes the single base segment [0, +inf) at height 0 *)
  s.sx0.(1) <- 0;
  s.sx1.(1) <- max_int;
  s.sy.(1) <- 0;
  s.snext.(head) <- 1;
  s.sprev.(1) <- head;
  s.snext.(1) <- nil;
  s.free <- nil;
  chain_free s 2 (Array.length s.sx0) nil

let scratch capacity =
  let cap = max 4 (capacity + 2) in
  let s =
    {
      sx0 = Array.make cap 0;
      sx1 = Array.make cap 0;
      sy = Array.make cap 0;
      snext = Array.make cap nil;
      sprev = Array.make cap nil;
      free = nil;
    }
  in
  clear s;
  s

let grow s =
  let old = Array.length s.sx0 in
  let cap = 2 * old in
  let extend a = Array.append a (Array.make old 0) in
  s.sx0 <- extend s.sx0;
  s.sx1 <- extend s.sx1;
  s.sy <- extend s.sy;
  s.snext <- extend s.snext;
  s.sprev <- extend s.sprev;
  chain_free s old cap s.free

let alloc s =
  if s.free = nil then grow s;
  let i = s.free in
  s.free <- s.snext.(i);
  i

let release s i =
  s.snext.(i) <- s.free;
  s.free <- i

(* Insert a fresh segment [x0, x1)@y right after slot [after]. *)
let insert_after s after ~x0 ~x1 ~y =
  let i = alloc s in
  s.sx0.(i) <- x0;
  s.sx1.(i) <- x1;
  s.sy.(i) <- y;
  let nxt = s.snext.(after) in
  s.snext.(after) <- i;
  s.sprev.(i) <- after;
  s.snext.(i) <- nxt;
  if nxt <> nil then s.sprev.(nxt) <- i;
  i

let max_height_into s ~x0 ~x1 =
  if x1 <= x0 then 0
  else begin
    let best = ref 0 in
    let i = ref s.snext.(head) in
    while !i <> nil && s.sx0.(!i) < x1 do
      if s.sx1.(!i) > x0 && s.sy.(!i) > !best then best := s.sy.(!i);
      i := s.snext.(!i)
    done;
    !best
  end

let raise_into s ~x0 ~x1 ~y =
  if x1 > x0 then begin
    (* first segment overlapping [x0, x1) *)
    let i = ref s.snext.(head) in
    while s.sx1.(!i) <= x0 do
      i := s.snext.(!i)
    done;
    (* split off the uncovered left part of the first overlap *)
    if s.sx0.(!i) < x0 then begin
      let right = insert_after s !i ~x0 ~x1:s.sx1.(!i) ~y:s.sy.(!i) in
      s.sx1.(!i) <- x0;
      i := right
    end;
    (* consume segments fully inside [x0, x1); trim the last partial *)
    let before = s.sprev.(!i) in
    while !i <> nil && s.sx0.(!i) < x1 do
      if s.sx1.(!i) <= x1 then begin
        let nxt = s.snext.(!i) in
        s.snext.(s.sprev.(!i)) <- nxt;
        if nxt <> nil then s.sprev.(nxt) <- s.sprev.(!i);
        release s !i;
        i := nxt
      end
      else begin
        s.sx0.(!i) <- x1;
        i := nil (* stop: the rest lies beyond the range *)
      end
    done;
    ignore (insert_after s before ~x0 ~x1 ~y)
  end

let drop_into s ~x ~w ~h =
  let y = max_height_into s ~x0:x ~x1:(x + w) in
  raise_into s ~x0:x ~x1:(x + w) ~y:(y + h);
  y

let scratch_segments s =
  (* finite positive-height steps, maximally merged: the same normal
     form [segments] returns, so the two representations compare
     directly in tests *)
  let out = ref [] in
  let i = ref s.snext.(head) in
  while !i <> nil do
    if s.sy.(!i) > 0 && s.sx1.(!i) < max_int then
      out := { x0 = s.sx0.(!i); x1 = s.sx1.(!i); y = s.sy.(!i) } :: !out;
    i := s.snext.(!i)
  done;
  let rec merge = function
    | a :: b :: rest when a.x1 = b.x0 && a.y = b.y ->
        merge ({ x0 = a.x0; x1 = b.x1; y = a.y } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge (List.rev !out)

let pp ppf c =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf s -> Format.fprintf ppf "[%d,%d)@%d" s.x0 s.x1 s.y))
    c
