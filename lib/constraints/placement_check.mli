(** Verification of layout constraints on finished placements.

    The placers in this repository construct placements that satisfy
    their constraints {e by construction}; these independent checkers
    are what the test-suite and benchmark harness use to prove it. All
    take the placed cells as a list of {!Geometry.Transform.placed}
    and look cells up by their [cell] index. *)

type violation = { subject : string; detail : string }

val overlap_free : Geometry.Transform.placed list -> (unit, violation) result
(** No two placed cells overlap. *)

val symmetry :
  group:Symmetry_group.t ->
  Geometry.Transform.placed list ->
  (int, violation) result
(** All pairs mirror about one common vertical axis with equal [y] and
    matched dimensions; selfs are centered on it. Returns the doubled
    axis coordinate on success. *)

val mirror_symmetric :
  members:int list -> Geometry.Transform.placed list -> (int, violation) result
(** Pairing-free mirror check: the member set is mirror-symmetric about
    {e some} vertical axis — every member has a same-size, same-[y]
    member (possibly itself) mirrored about the set's bounding-box
    axis, which any mirror symmetry must fix. Returns the doubled axis
    coordinate. Weaker than {!symmetry} (it does not enforce a declared
    pairing); used by the engine-independent verifier when only the
    member set survives, e.g. in a QoR ledger record. *)

val within_outline :
  ?outline:int * int ->
  Geometry.Transform.placed list ->
  (unit, violation) result
(** Every cell sits in the first quadrant and, when [outline] is given,
    inside the [(w, h)] box anchored at the origin. *)

val proximity :
  members:int list -> Geometry.Transform.placed list -> (unit, violation) result
(** The union of the members' rectangles is edge-connected. *)

val common_centroid :
  members:int list -> Geometry.Transform.placed list -> (unit, violation) result
(** The members are point-symmetric about their common centroid: for
    every member there is a member (possibly itself) of the same size
    mirrored through the centroid. *)

val common_centroid_units :
  (int * Geometry.Rect.t) list -> (unit, violation) result
(** Unit-decomposed variant (see {!Bstar.Centroid.interdigitated}):
    units are (owner, rect) pairs; {e each owner's} unit multiset must
    be point-symmetric about the centroid of all units, and no two
    units may overlap. This is the matching property interdigitation
    exists to provide — every device sees the same linear process
    gradient. *)

val pp_violation : Format.formatter -> violation -> unit
