(** Symmetry groups (survey §II).

    A symmetry group collects cells that must be placed mirror-
    symmetrically about a common vertical axis: [pairs] of distinct
    cells that mirror each other, and [selfs] — self-symmetric cells
    centered on the axis. *)

type t = { name : string; pairs : (int * int) list; selfs : int list }

val make : ?name:string -> pairs:(int * int) list -> selfs:int list -> unit -> t
(** Validates that no cell occurs twice (across pairs and selfs) and
    that pairs relate distinct cells. *)

val members : t -> int list
(** All cells of the group. *)

val cardinal : t -> int
(** [2*p + s]: the count entering the search-space lemma. *)

val mem : t -> int -> bool

val sym : t -> int -> int option
(** [sym g c] is the symmetric counterpart of [c]: its partner for a
    paired cell, [c] itself for a self-symmetric cell, [None] if [c] is
    not in the group. *)

val signature : t -> string
(** Canonical rendering for cache fingerprints: pairs normalized
    smaller-index-first and sorted, selfs sorted, the group name
    excluded. Two groups imposing the same mirror obligations render
    identically however their pairs are listed; any membership change
    renders differently (the QCheck fingerprint-stability property
    pins both directions down). *)

val of_hierarchy : Netlist.Hierarchy.t -> t list
(** Extract flat symmetry groups from the [Symmetry] nodes of a
    hierarchy. Within a symmetry node, direct leaf children pair up
    consecutively with a trailing odd leaf self-symmetric; two-leaf
    child symmetry nodes contribute their leaves as a pair; any other
    child node is ignored here (it forms a self-symmetric island handled
    by the hierarchical placers). Nested symmetry nodes yield their own
    groups as well. *)

val pp : Format.formatter -> t -> unit
