type t = { name : string; pairs : (int * int) list; selfs : int list }

let members g =
  List.concat_map (fun (a, b) -> [ a; b ]) g.pairs @ g.selfs

let make ?(name = "sym") ~pairs ~selfs () =
  let g = { name; pairs; selfs } in
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Symmetry_group.make: pair of equal cells")
    pairs;
  let ms = members g in
  let sorted = List.sort Int.compare ms in
  let rec dup = function
    | a :: b :: _ when a = b -> true
    | _ :: rest -> dup rest
    | [] -> false
  in
  if dup sorted then invalid_arg "Symmetry_group.make: duplicate cell";
  g

let cardinal g = (2 * List.length g.pairs) + List.length g.selfs
let mem g c = List.mem c (members g)

let sym g c =
  let from_pairs =
    List.find_map
      (fun (a, b) ->
        if a = c then Some b else if b = c then Some a else None)
      g.pairs
  in
  match from_pairs with
  | Some _ as r -> r
  | None -> if List.mem c g.selfs then Some c else None

let group_of_symmetry_node name children =
  (* Two-leaf symmetry child nodes are explicit pairs; direct leaves
     pair consecutively, odd trailing leaf is self-symmetric. *)
  let explicit_pairs =
    List.filter_map
      (function
        | Netlist.Hierarchy.Node
            { kind = Netlist.Hierarchy.Symmetry;
              children = [ Netlist.Hierarchy.Leaf a; Netlist.Hierarchy.Leaf b ];
              _ } ->
            Some (a, b)
        | Netlist.Hierarchy.Node _ | Netlist.Hierarchy.Leaf _ -> None)
      children
  in
  let direct_leaves =
    List.filter_map
      (function Netlist.Hierarchy.Leaf i -> Some i | Netlist.Hierarchy.Node _ -> None)
      children
  in
  let rec pair_up = function
    | a :: b :: rest ->
        let ps, ss = pair_up rest in
        ((a, b) :: ps, ss)
    | [ a ] -> ([], [ a ])
    | [] -> ([], [])
  in
  let leaf_pairs, selfs = pair_up direct_leaves in
  make ~name ~pairs:(explicit_pairs @ leaf_pairs) ~selfs ()

let of_hierarchy tree =
  let rec go = function
    | Netlist.Hierarchy.Leaf _ -> []
    | Netlist.Hierarchy.Node { name; kind; children } ->
        let here =
          match kind with
          | Netlist.Hierarchy.Symmetry ->
              let g = group_of_symmetry_node name children in
              if g.pairs = [] && g.selfs = [] then [] else [ g ]
          | Netlist.Hierarchy.Free | Netlist.Hierarchy.Common_centroid | Netlist.Hierarchy.Proximity
            ->
              []
        in
        here @ List.concat_map go children
  in
  (* A two-leaf symmetry node already consumed as a pair by its parent
     symmetry node would otherwise also produce a singleton group; drop
     groups whose members are all covered by an ancestor group. *)
  let groups = go tree in
  let rec dedup kept = function
    | [] -> List.rev kept
    | g :: rest ->
        let covered =
          List.exists
            (fun (k : t) ->
              List.for_all (fun m -> List.mem m (members k)) (members g))
            kept
        in
        if covered then dedup kept rest else dedup (g :: kept) rest
  in
  dedup [] groups

(* Canonical rendering for cache fingerprints: the group name is a
   label, pair order and within-pair order are representation choices
   (the mirror relation is symmetric), so only the normalized member
   structure enters — pairs min-first and sorted, selfs sorted. *)
let signature g =
  let pairs =
    List.map (fun (a, b) -> if a <= b then (a, b) else (b, a)) g.pairs
    |> List.sort_uniq compare
  in
  let selfs = List.sort_uniq compare g.selfs in
  let buf = Buffer.create 32 in
  Buffer.add_string buf "sym{";
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "(%d,%d)" a b))
    pairs;
  Buffer.add_char buf '|';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int s))
    selfs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf g =
  Format.fprintf ppf "@[%s: pairs %a selfs %a@]" g.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (a, b) -> Format.fprintf ppf "(%d,%d)" a b))
    g.pairs
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    g.selfs
