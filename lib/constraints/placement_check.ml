open Geometry

type violation = { subject : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.subject v.detail

let violation subject fmt = Format.kasprintf (fun detail -> { subject; detail }) fmt

let find placements cell =
  List.find_opt (fun (p : Transform.placed) -> p.cell = cell) placements

let get placements cell =
  match find placements cell with
  | Some p -> Ok p
  | None -> Error (violation "lookup" "cell %d not placed" cell)

let rec first_error = function
  | [] -> Ok ()
  | Ok () :: rest -> first_error rest
  | (Error _ as e) :: _ -> e

let overlap_free placements =
  let arr = Array.of_list placements in
  let n = Array.length arr in
  let rec scan i j =
    if i >= n then Ok ()
    else if j >= n then scan (i + 1) (i + 2)
    else if Rect.overlaps arr.(i).Transform.rect arr.(j).Transform.rect then
      Error
        (violation "overlap" "cells %d and %d overlap (%a vs %a)"
           arr.(i).Transform.cell arr.(j).Transform.cell Rect.pp
           arr.(i).Transform.rect Rect.pp arr.(j).Transform.rect)
    else scan i (j + 1)
  in
  scan 0 1

let within_outline ?outline placements =
  let ow, oh =
    match outline with Some (w, h) -> (w, h) | None -> (max_int, max_int)
  in
  let rec scan = function
    | [] -> Ok ()
    | (p : Transform.placed) :: rest ->
        let r = p.Transform.rect in
        if r.Rect.x < 0 || r.Rect.y < 0 then
          Error
            (violation "outline" "cell %d at %a leaves the first quadrant"
               p.Transform.cell Rect.pp r)
        else if Rect.x_max r > ow || Rect.y_max r > oh then
          Error
            (violation "outline" "cell %d at %a exceeds the %dx%d outline"
               p.Transform.cell Rect.pp r ow oh)
        else scan rest
  in
  scan placements

let ( let* ) = Result.bind

(* Axis from one pair: mirrored rectangles satisfy x_a + w + x_b + w =
   ... precisely x_b = axis2 - x_a - w, i.e. axis2 = x_a + x_b + w. *)
let pair_axis (a : Transform.placed) (b : Transform.placed) =
  let ra = a.rect and rb = b.rect in
  if ra.Rect.w <> rb.Rect.w || ra.Rect.h <> rb.Rect.h then
    Error
      (violation "symmetry" "pair (%d,%d) dimension mismatch" a.cell b.cell)
  else if ra.Rect.y <> rb.Rect.y then
    Error (violation "symmetry" "pair (%d,%d) y mismatch" a.cell b.cell)
  else Ok (ra.Rect.x + rb.Rect.x + ra.Rect.w)

let symmetry ~group placements =
  let* axes =
    List.fold_left
      (fun acc (a, b) ->
        let* acc = acc in
        let* pa = get placements a in
        let* pb = get placements b in
        let* axis2 = pair_axis pa pb in
        Ok (axis2 :: acc))
      (Ok []) group.Symmetry_group.pairs
  in
  let* self_axes =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* p = get placements s in
        Ok ((2 * p.rect.Rect.x) + p.rect.Rect.w :: acc))
      (Ok []) group.Symmetry_group.selfs
  in
  match axes @ self_axes with
  | [] -> Error (violation "symmetry" "empty group %s" group.name)
  | axis2 :: rest ->
      if List.for_all (fun a -> a = axis2) rest then Ok axis2
      else
        Error
          (violation "symmetry" "group %s: inconsistent axes %a"
             group.Symmetry_group.name
             (Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
                Format.pp_print_int)
             (axis2 :: rest))

(* Pairing-free mirror check: a set of rectangles is mirror-symmetric
   about SOME vertical axis iff it is symmetric about its own bounding
   box's axis (any mirror symmetry fixes the bounding box). Used when
   the pair/self split is unavailable — e.g. re-verifying a ledger
   entry, which records only the member set. *)
let mirror_symmetric ~members placements =
  let* placed =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* p = get placements m in
        Ok (p :: acc))
      (Ok []) members
  in
  match placed with
  | [] -> Error (violation "mirror" "empty member set")
  | _ ->
      let rects = List.map (fun p -> p.Transform.rect) placed in
      let bb = Outline.bounding_box rects in
      let axis2 = (2 * bb.Rect.x) + bb.Rect.w in
      let mirrored_exists (p : Transform.placed) =
        let r = p.Transform.rect in
        List.exists
          (fun (q : Transform.placed) ->
            let s = q.Transform.rect in
            s.Rect.w = r.Rect.w && s.Rect.h = r.Rect.h
            && s.Rect.y = r.Rect.y
            && s.Rect.x = axis2 - r.Rect.x - r.Rect.w)
          placed
      in
      let* () =
        first_error
          (List.map
             (fun p ->
               if mirrored_exists p then Ok ()
               else
                 Error
                   (violation "mirror"
                      "cell %d has no mirror twin about the set's axis"
                      p.Transform.cell))
             placed)
      in
      Ok axis2

let proximity ~members placements =
  let* rects =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* p = get placements m in
        Ok (p.Transform.rect :: acc))
      (Ok []) members
  in
  if Outline.connected rects then Ok ()
  else
    Error
      (violation "proximity" "members %a not edge-connected"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
            Format.pp_print_int)
         members)

let common_centroid ~members placements =
  let* placed =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* p = get placements m in
        Ok (p :: acc))
      (Ok []) members
  in
  match placed with
  | [] -> Error (violation "centroid" "empty member set")
  | _ ->
      let k = List.length placed in
      let centers = List.map (fun p -> Rect.center2 p.Transform.rect) placed in
      let sx = List.fold_left (fun acc (x, _) -> acc + x) 0 centers in
      let sy = List.fold_left (fun acc (_, y) -> acc + y) 0 centers in
      (* centroid in units of 1/(2k): point symmetry needs, for every
         cell center c (doubled), a matching cell at (2*centroid - c),
         i.e. at (2*sx/k - cx). Scale everything by k to stay integral. *)
      let mirrored_exists p =
        let cx, cy = Rect.center2 p.Transform.rect in
        let target = ((2 * sx) - (k * cx), (2 * sy) - (k * cy)) in
        List.exists
          (fun q ->
            let qx, qy = Rect.center2 q.Transform.rect in
            (k * qx, k * qy) = target
            && q.Transform.rect.Rect.w = p.Transform.rect.Rect.w
            && q.Transform.rect.Rect.h = p.Transform.rect.Rect.h)
          placed
      in
      first_error
        (List.map
           (fun p ->
             if mirrored_exists p then Ok ()
             else
               Error
                 (violation "centroid" "cell %d has no point-symmetric twin"
                    p.Transform.cell))
           placed)

let common_centroid_units units =
  match units with
  | [] -> Error (violation "centroid-units" "no units")
  | _ ->
      let k = List.length units in
      let centers = List.map (fun (_, r) -> Rect.center2 r) units in
      let sx = List.fold_left (fun acc (x, _) -> acc + x) 0 centers in
      let sy = List.fold_left (fun acc (_, y) -> acc + y) 0 centers in
      let mirrored_exists (owner, r) =
        let cx, cy = Rect.center2 r in
        let target = ((2 * sx) - (k * cx), (2 * sy) - (k * cy)) in
        List.exists
          (fun (owner', r') ->
            let qx, qy = Rect.center2 r' in
            owner' = owner && (k * qx, k * qy) = target)
          units
      in
      let rec overlap = function
        | [] -> Ok ()
        | (_, r) :: rest ->
            if List.exists (fun (_, r') -> Rect.overlaps r r') rest then
              Error (violation "centroid-units" "units overlap")
            else overlap rest
      in
      let ( let* ) = Result.bind in
      let* () = overlap units in
      first_error
        (List.map
           (fun u ->
             if mirrored_exists u then Ok ()
             else
               Error
                 (violation "centroid-units"
                    "owner %d unit has no point-symmetric twin" (fst u)))
           units)
