(* Lock-striped elite pool. The global best lives in one Atomic slot
   holding an immutable entry record (consistent cost/state pairs by
   construction); per-origin families live under stripe mutexes.

   [publish] updates the stripe first, then CAS-loops the global slot —
   so a successful [pull] may briefly precede the striped insert of the
   same entry, which is harmless: both structures only ever improve. *)

type 'a entry = { cost : float; state : 'a; origin : int }

type 'a stripe = {
  lock : Mutex.t;
  mutable family : 'a entry list; (* cost-ascending, length <= cap *)
}

type 'a t = {
  best : 'a entry option Atomic.t;
  stripes : 'a stripe array;
  cap : int;
}

let create ?(stripes = 8) ?(per_stripe = 4) () =
  let n = max 1 stripes in
  {
    best = Atomic.make None;
    stripes = Array.init n (fun _ -> { lock = Mutex.create (); family = [] });
    cap = max 1 per_stripe;
  }

let rec insert_sorted e = function
  | [] -> [ e ]
  | x :: _ as l when e.cost < x.cost -> e :: l
  | x :: rest -> x :: insert_sorted e rest

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let publish t ~origin ~cost state =
  let e = { cost; state; origin } in
  let s = t.stripes.(origin mod Array.length t.stripes) in
  Mutex.lock s.lock;
  s.family <- take t.cap (insert_sorted e s.family);
  Mutex.unlock s.lock;
  let rec cas_best () =
    let cur = Atomic.get t.best in
    match cur with
    | Some b when b.cost <= e.cost -> false
    | _ ->
        if Atomic.compare_and_set t.best cur (Some e) then true else cas_best ()
  in
  cas_best ()

let best t = Atomic.get t.best

let pull t ~than =
  match Atomic.get t.best with
  | Some e when e.cost < than -> Some e
  | _ -> None

let entries t =
  let all =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let f = s.family in
        Mutex.unlock s.lock;
        List.rev_append f acc)
      [] t.stripes
  in
  List.sort (fun a b -> compare a.cost b.cost) all

let size t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let n = List.length s.family in
      Mutex.unlock s.lock;
      acc + n)
    0 t.stripes
