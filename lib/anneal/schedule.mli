(** Annealing temperature schedules.

    Simulated annealing (Kirkpatrick et al., survey ref [12]) was the
    exploration engine of every stochastic placer the survey discusses;
    ref [28] adds dynamic parameter adjustment. Both styles are
    provided: fixed geometric cooling, and an adaptive variant that
    speeds up cooling when almost everything is accepted (high
    temperature wasted) and slows it near the freezing point. *)

type t =
  | Geometric of float
      (** [T <- alpha * T]; [alpha] in (0,1), typically 0.9-0.99 *)
  | Adaptive of { base : float; low : float; high : float }
      (** cools by [base], but by [base*low] (faster) when the
          acceptance ratio exceeds 0.8 and by [base**high_exp]... see
          {!next}: by [min 0.999 (base +. high)] (slower) when it drops
          below 0.2 *)

val default : t
(** [Geometric 0.95]. *)

val adaptive : t
(** A reasonable adaptive schedule. *)

val next : t -> temperature:float -> acceptance:float -> float
(** New temperature given the acceptance ratio of the last round. *)

val to_string : t -> string
(** Stable rendering for ledgers and logs, e.g. ["geometric(0.95)"] or
    ["adaptive(base=0.95,low=0.8,high=0.04)"]. *)
