type 'a problem = {
  init : 'a;
  neighbor : Prelude.Rng.t -> 'a -> 'a;
  cost : 'a -> float;
}

type params = {
  initial_temperature : float option;
  final_temperature : float;
  moves_per_round : int;
  schedule : Schedule.t;
  frozen_rounds : int;
  max_rounds : int;
}

let default_params ~n =
  {
    initial_temperature = None;
    final_temperature = 1e-3;
    moves_per_round = max 64 (8 * n);
    schedule = Schedule.default;
    frozen_rounds = 5;
    max_rounds = 500;
  }

type 'a outcome = {
  best : 'a;
  best_cost : float;
  rounds : int;
  accepted : int;
  evaluated : int;
}

let estimate_t0 ~rng problem ~samples =
  let state = ref problem.init in
  let cost = ref (problem.cost !state) in
  let deltas = ref [] in
  for _ = 1 to samples do
    let next = problem.neighbor rng !state in
    let c = problem.cost next in
    deltas := Float.abs (c -. !cost) :: !deltas;
    state := next;
    cost := c
  done;
  let sd = Prelude.Stats.stddev !deltas in
  Float.max 1e-6 (if sd > 0.0 then sd else Prelude.Stats.mean !deltas)

(* A chain is the walk's full mutable state, so callers can advance it
   one temperature round at a time. [run] below is the classic closed
   loop; {!Parallel} interleaves several chains and exchanges bests at
   round boundaries. The stepwise decomposition is exact: run = start;
   step until finished. *)
type 'a chain = {
  params : params;
  problem : 'a problem;
  rng : Prelude.Rng.t;
  tel : Telemetry.Sink.t;
  acc_hist : Telemetry.Hist.t; (* resolved once; dead handle when off *)
  mutable temperature : float;
  mutable current : 'a;
  mutable current_cost : float;
  mutable best : 'a;
  mutable best_cost : float;
  mutable round : int;
  mutable frozen : int;
  mutable accepted_total : int;
  mutable evaluated : int;
}

let start ?(telemetry = Telemetry.Sink.null) ~rng params problem =
  let t0 =
    match params.initial_temperature with
    | Some t -> t
    | None -> 20.0 *. estimate_t0 ~rng problem ~samples:64
  in
  let cost = problem.cost problem.init in
  {
    params;
    problem;
    rng;
    tel = telemetry;
    acc_hist = Telemetry.Sink.histogram telemetry "sa.acceptance";
    temperature = t0;
    current = problem.init;
    current_cost = cost;
    best = problem.init;
    best_cost = cost;
    round = 0;
    frozen = 0;
    accepted_total = 0;
    evaluated = 0;
  }

let finished c =
  c.round >= c.params.max_rounds
  || c.temperature <= c.params.final_temperature
  || c.frozen >= c.params.frozen_rounds

let step_round c =
  if not (finished c) then begin
    (* Telemetry consumes no rng draws, so instrumented and bare runs
       walk identical move trajectories (tested). When the sink is the
       null sink every call below is one predictable branch. *)
    let t0 = Telemetry.Sink.span_begin c.tel in
    let mv = Telemetry.Sink.moves c.tel in
    let accepted = ref 0 and improved = ref false in
    for _ = 1 to c.params.moves_per_round do
      let next = c.problem.neighbor c.rng c.current in
      let cost = c.problem.cost next in
      c.evaluated <- c.evaluated + 1;
      let delta = cost -. c.current_cost in
      let accept =
        delta <= 0.0
        || Prelude.Rng.float c.rng 1.0 < exp (-.delta /. c.temperature)
      in
      if accept then begin
        Telemetry.Moves.accept mv;
        c.current <- next;
        c.current_cost <- cost;
        incr accepted;
        c.accepted_total <- c.accepted_total + 1;
        if cost < c.best_cost then begin
          c.best <- next;
          c.best_cost <- cost;
          improved := true
        end
      end
      else Telemetry.Moves.reject mv
    done;
    let acceptance =
      float_of_int !accepted /. float_of_int c.params.moves_per_round
    in
    Telemetry.Hist.observe c.acc_hist acceptance;
    Telemetry.Sink.sample c.tel ~round:c.round ~temperature:c.temperature
      ~acceptance ~best_cost:c.best_cost;
    c.temperature <-
      Schedule.next c.params.schedule ~temperature:c.temperature ~acceptance;
    (* frozen = the walk has effectively stopped moving AND stopped
       improving; high-temperature rounds without a new global best
       are normal and must not terminate the run *)
    c.frozen <- (if acceptance < 0.02 && not !improved then c.frozen + 1 else 0);
    c.round <- c.round + 1;
    Telemetry.Sink.span_end c.tel "sa.round" t0
  end

let best_cost c = c.best_cost
let best c = c.best

let adopt c ~state ~cost =
  if cost < c.best_cost then begin
    c.best <- state;
    c.best_cost <- cost;
    c.current <- state;
    c.current_cost <- cost
  end

let outcome_of_chain c =
  {
    best = c.best;
    best_cost = c.best_cost;
    rounds = c.round;
    accepted = c.accepted_total;
    evaluated = c.evaluated;
  }

let run ?telemetry ~rng params problem =
  let c = start ?telemetry ~rng params problem in
  while not (finished c) do
    step_round c
  done;
  outcome_of_chain c

(* ------------------------------------------------------------------ *)
(* In-place variant. The functional engine above copies a state per
   accepted move and relies on persistence for rejection (the old state
   is simply kept). Arena-backed placers ({!Placer.Eval}) want the
   opposite contract: one working state mutated by [propose], reverted
   by [undo] on rejection, and snapshotted only when a new best
   appears. Control flow — Metropolis test, schedule, freezing — is
   identical to the functional engine line for line. *)

type 'a mproblem = {
  state : 'a;
  propose : Prelude.Rng.t -> 'a -> unit;
  undo : 'a -> unit;
  cost : 'a -> float;
  copy : 'a -> 'a;
  blit : src:'a -> dst:'a -> unit;
}

let estimate_mt0 ~rng (p : 'a mproblem) ~samples =
  (* same heuristic as [estimate_t0]: walk accepting everything and
     take the spread of the cost deltas — then restore the state, which
     the functional engine gets for free from persistence *)
  let snapshot = p.copy p.state in
  let cost = ref (p.cost p.state) in
  let deltas = ref [] in
  for _ = 1 to samples do
    p.propose rng p.state;
    let c = p.cost p.state in
    deltas := Float.abs (c -. !cost) :: !deltas;
    cost := c
  done;
  p.blit ~src:snapshot ~dst:p.state;
  let sd = Prelude.Stats.stddev !deltas in
  Float.max 1e-6 (if sd > 0.0 then sd else Prelude.Stats.mean !deltas)

type 'a mchain = {
  mparams : params;
  mp : 'a mproblem;
  mrng : Prelude.Rng.t;
  mtel : Telemetry.Sink.t;
  macc_hist : Telemetry.Hist.t;
  mutable mtemperature : float;
  mutable mcurrent_cost : float;
  mbest_state : 'a;  (* private snapshot buffer, only ever blitted into *)
  mutable m_best_cost : float;
  mutable mround : int;
  mutable mfrozen : int;
  mutable maccepted_total : int;
  mutable mevaluated : int;
}

let mstart ?(telemetry = Telemetry.Sink.null) ~rng params (p : 'a mproblem) =
  let t0 =
    match params.initial_temperature with
    | Some t -> t
    | None -> 20.0 *. estimate_mt0 ~rng p ~samples:64
  in
  let cost = p.cost p.state in
  {
    mparams = params;
    mp = p;
    mrng = rng;
    mtel = telemetry;
    macc_hist = Telemetry.Sink.histogram telemetry "sa.acceptance";
    mtemperature = t0;
    mcurrent_cost = cost;
    mbest_state = p.copy p.state;
    m_best_cost = cost;
    mround = 0;
    mfrozen = 0;
    maccepted_total = 0;
    mevaluated = 0;
  }

let mfinished c =
  c.mround >= c.mparams.max_rounds
  || c.mtemperature <= c.mparams.final_temperature
  || c.mfrozen >= c.mparams.frozen_rounds

let mstep_round c =
  if not (mfinished c) then begin
    let t0 = Telemetry.Sink.span_begin c.mtel in
    let mv = Telemetry.Sink.moves c.mtel in
    let p = c.mp in
    let accepted = ref 0 and improved = ref false in
    for _ = 1 to c.mparams.moves_per_round do
      p.propose c.mrng p.state;
      let cost = p.cost p.state in
      c.mevaluated <- c.mevaluated + 1;
      let delta = cost -. c.mcurrent_cost in
      let accept =
        delta <= 0.0
        || Prelude.Rng.float c.mrng 1.0 < exp (-.delta /. c.mtemperature)
      in
      if accept then begin
        Telemetry.Moves.accept mv;
        c.mcurrent_cost <- cost;
        incr accepted;
        c.maccepted_total <- c.maccepted_total + 1;
        if cost < c.m_best_cost then begin
          p.blit ~src:p.state ~dst:c.mbest_state;
          c.m_best_cost <- cost;
          improved := true
        end
      end
      else begin
        Telemetry.Moves.reject mv;
        p.undo p.state
      end
    done;
    let acceptance =
      float_of_int !accepted /. float_of_int c.mparams.moves_per_round
    in
    Telemetry.Hist.observe c.macc_hist acceptance;
    Telemetry.Sink.sample c.mtel ~round:c.mround ~temperature:c.mtemperature
      ~acceptance ~best_cost:c.m_best_cost;
    c.mtemperature <-
      Schedule.next c.mparams.schedule ~temperature:c.mtemperature ~acceptance;
    c.mfrozen <-
      (if acceptance < 0.02 && not !improved then c.mfrozen + 1 else 0);
    c.mround <- c.mround + 1;
    Telemetry.Sink.span_end c.mtel "sa.round" t0
  end

let mbest c = c.mbest_state
let mbest_cost c = c.m_best_cost
let mbest_copy c = c.mp.copy c.mbest_state

let madopt c ~state ~cost =
  (* strict improvement only, so offering a chain its own best buffer
     never blits a buffer onto itself *)
  if cost < c.m_best_cost then begin
    c.mp.blit ~src:state ~dst:c.mbest_state;
    c.mp.blit ~src:state ~dst:c.mp.state;
    c.m_best_cost <- cost;
    c.mcurrent_cost <- cost
  end

let moutcome_of_chain c =
  {
    best = c.mp.copy c.mbest_state;
    best_cost = c.m_best_cost;
    rounds = c.mround;
    accepted = c.maccepted_total;
    evaluated = c.mevaluated;
  }

let run_mutable ?telemetry ~rng params p =
  let c = mstart ?telemetry ~rng params p in
  while not (mfinished c) do
    mstep_round c
  done;
  moutcome_of_chain c
