(* Deterministic multi-start annealing over OCaml 5 domains.

   One chain per seed, each with a private splitmix64 stream and
   private problem instance (so mutable evaluation arenas are never
   shared). Chains are partitioned over worker domains round-robin and
   advanced in slices of [exchange_every] rounds; at each slice
   boundary — a full join, so a happens-before edge — the globally best
   state is offered to every chain, which adopts it only when strictly
   better than its own best. Because the slice boundaries, the
   reduction order, and every chain's stream are all fixed by the seed
   list alone, the result is identical for any worker count: [workers]
   only chooses how much hardware the same computation uses.

   Telemetry keeps that story intact: each chain writes to a private
   child sink (tid = seed index + 1) that only its own domain touches,
   and the children are absorbed into the caller's sink after the final
   join — so recording is race-free and consumes no rng draws. *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  winner : int;
  chains : 'a Sa.outcome array;
  evaluated : int;
}

(* ANALOG_WORKERS overrides the hardware default, e.g. to pin CI to a
   known width or to share a box. Anything unparsable falls back to the
   hardware count; values below 1 clamp to 1. *)
let parse_workers s =
  match int_of_string_opt (String.trim s) with
  | Some w -> Some (max 1 w)
  | None -> None

let default_workers () =
  match Sys.getenv_opt "ANALOG_WORKERS" with
  | Some s when String.trim s <> "" -> (
      match parse_workers s with
      | Some w -> w
      | None -> Domain.recommended_domain_count ())
  | _ -> Domain.recommended_domain_count ()

(* Index of the minimum best-cost chain; ties break to the lowest
   index so the reduction is a pure function of the chain states. *)
let best_index chains =
  let bi = ref 0 in
  Array.iteri
    (fun i c -> if Sa.best_cost c < Sa.best_cost chains.(!bi) then bi := i)
    chains;
  !bi

(* One Qor.chain record per chain, written into the chain's own child
   sink just before absorb so it rides into the parent like every other
   telemetry stream. Wall time is the sum of the chain's slice spans
   (the time its domain actually spent advancing it); move tallies are
   recovered from the child's counters. *)
let record_chain_qor tel ~best_cost ~rounds ~evaluated =
  if Telemetry.Sink.live tel then begin
    let wall =
      List.fold_left
        (fun acc (s : Telemetry.Tracer.span) ->
          if String.equal s.Telemetry.Tracer.name "chain.slice" then
            acc +. s.Telemetry.Tracer.dur
          else acc)
        0.0 (Telemetry.Sink.spans tel)
    in
    let move_rates =
      Telemetry.Qor.move_rates_of_counters (Telemetry.Sink.counters tel)
    in
    Telemetry.Sink.record_qor tel
      (Telemetry.Qor.chain ~move_rates ~cost:best_cost ~wall_s:wall
         ~sa_rounds:rounds ~evaluated ())
  end

let run ?workers ?(exchange_every = 32) ?(check = ignore)
    ?(telemetry = Telemetry.Sink.null) ~seeds params problem_of =
  if seeds = [] then invalid_arg "Parallel.run: empty seed list";
  let seeds = Array.of_list seeds in
  let k = Array.length seeds in
  let workers =
    max 1 (min k (match workers with Some w -> w | None -> default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  let tels = Array.init k (fun i -> Telemetry.Sink.child telemetry ~tid:(i + 1)) in
  let exchanges = Telemetry.Sink.counter telemetry "parallel.exchanges" in
  (* Chain creation draws from each chain's own stream only, so order
     does not matter; build them up front on the spawning domain. *)
  let chains =
    Array.init k (fun i ->
        let rng = Prelude.Rng.create seeds.(i) in
        (* bind before [start]: the problem draws its initial state
           from the stream first, then [start] estimates t0 — the same
           order as the sequential placers *)
        let problem = problem_of tels.(i) rng in
        Sa.start ~telemetry:tels.(i) ~rng params problem)
  in
  let unfinished () = Array.exists (fun c -> not (Sa.finished c)) chains in
  while unfinished () do
    let t_slice = Telemetry.Sink.span_begin telemetry in
    let advance d () =
      for i = 0 to k - 1 do
        if i mod workers = d then begin
          let c = chains.(i) in
          let t_chain = Telemetry.Sink.span_begin tels.(i) in
          let budget = ref slice in
          while !budget > 0 && not (Sa.finished c) do
            Sa.step_round c;
            decr budget
          done;
          Telemetry.Sink.span_end tels.(i) "chain.slice" t_chain
        end
      done
    in
    (* The spawning domain works the last partition itself. *)
    let spawned =
      List.init (workers - 1) (fun d -> Domain.spawn (advance d))
    in
    advance (workers - 1) ();
    List.iter Domain.join spawned;
    let t_ex = Telemetry.Sink.lap telemetry "parallel.slice" t_slice in
    let b = chains.(best_index chains) in
    let state = Sa.best b and cost = Sa.best_cost b in
    check state;
    Array.iter (fun c -> Sa.adopt c ~state ~cost) chains;
    Telemetry.Counter.incr exchanges;
    Telemetry.Sink.span_end telemetry "parallel.exchange" t_ex
  done;
  let outcomes = Array.map Sa.outcome_of_chain chains in
  Array.iteri
    (fun i o ->
      record_chain_qor tels.(i) ~best_cost:o.Sa.best_cost ~rounds:o.Sa.rounds
        ~evaluated:o.Sa.evaluated)
    outcomes;
  Array.iter (Telemetry.Sink.absorb telemetry) tels;
  let winner = best_index chains in
  check outcomes.(winner).Sa.best;
  {
    best = outcomes.(winner).Sa.best;
    best_cost = outcomes.(winner).Sa.best_cost;
    winner;
    chains = outcomes;
    evaluated = Array.fold_left (fun acc o -> acc + o.Sa.evaluated) 0 outcomes;
  }

(* Same loop over in-place chains. Each chain's mproblem (and thus its
   working state, arenas included) is private to the chain; exchange
   blits the winner's best snapshot across, and strict-improvement
   adoption keeps the winner from blitting its own buffer onto itself.
   The determinism argument is unchanged: seeds fix everything. *)
let run_mutable ?workers ?(exchange_every = 32) ?(check = ignore)
    ?(telemetry = Telemetry.Sink.null) ~seeds params problem_of =
  if seeds = [] then invalid_arg "Parallel.run_mutable: empty seed list";
  let seeds = Array.of_list seeds in
  let k = Array.length seeds in
  let workers =
    max 1 (min k (match workers with Some w -> w | None -> default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  let tels = Array.init k (fun i -> Telemetry.Sink.child telemetry ~tid:(i + 1)) in
  let exchanges = Telemetry.Sink.counter telemetry "parallel.exchanges" in
  let chains =
    Array.init k (fun i ->
        let rng = Prelude.Rng.create seeds.(i) in
        let problem = problem_of tels.(i) rng in
        Sa.mstart ~telemetry:tels.(i) ~rng params problem)
  in
  let mbest_index chains =
    let bi = ref 0 in
    Array.iteri
      (fun i c -> if Sa.mbest_cost c < Sa.mbest_cost chains.(!bi) then bi := i)
      chains;
    !bi
  in
  let unfinished () = Array.exists (fun c -> not (Sa.mfinished c)) chains in
  while unfinished () do
    let t_slice = Telemetry.Sink.span_begin telemetry in
    let advance d () =
      for i = 0 to k - 1 do
        if i mod workers = d then begin
          let c = chains.(i) in
          let t_chain = Telemetry.Sink.span_begin tels.(i) in
          let budget = ref slice in
          while !budget > 0 && not (Sa.mfinished c) do
            Sa.mstep_round c;
            decr budget
          done;
          Telemetry.Sink.span_end tels.(i) "chain.slice" t_chain
        end
      done
    in
    let spawned =
      List.init (workers - 1) (fun d -> Domain.spawn (advance d))
    in
    advance (workers - 1) ();
    List.iter Domain.join spawned;
    let t_ex = Telemetry.Sink.lap telemetry "parallel.slice" t_slice in
    let b = chains.(mbest_index chains) in
    let state = Sa.mbest b and cost = Sa.mbest_cost b in
    check state;
    Array.iter (fun c -> Sa.madopt c ~state ~cost) chains;
    Telemetry.Counter.incr exchanges;
    Telemetry.Sink.span_end telemetry "parallel.exchange" t_ex
  done;
  let outcomes = Array.map Sa.moutcome_of_chain chains in
  Array.iteri
    (fun i o ->
      record_chain_qor tels.(i) ~best_cost:o.Sa.best_cost ~rounds:o.Sa.rounds
        ~evaluated:o.Sa.evaluated)
    outcomes;
  Array.iter (Telemetry.Sink.absorb telemetry) tels;
  let winner = mbest_index chains in
  check outcomes.(winner).Sa.best;
  {
    best = outcomes.(winner).Sa.best;
    best_cost = outcomes.(winner).Sa.best_cost;
    winner;
    chains = outcomes;
    evaluated = Array.fold_left (fun acc o -> acc + o.Sa.evaluated) 0 outcomes;
  }
