(* Deterministic multi-start annealing over OCaml 5 domains.

   One chain per seed, each with a private splitmix64 stream and
   private problem instance (so mutable evaluation arenas are never
   shared). Chains are partitioned over worker domains round-robin and
   advanced in slices of [exchange_every] rounds; at each slice
   boundary — a full join, so a happens-before edge — the globally best
   state is offered to every chain, which adopts it only when strictly
   better than its own best. Because the slice boundaries, the
   reduction order, and every chain's stream are all fixed by the seed
   list alone, the result is identical for any worker count: [workers]
   only chooses how much hardware the same computation uses. *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  winner : int;
  chains : 'a Sa.outcome array;
  evaluated : int;
}

let default_workers () = Domain.recommended_domain_count ()

(* Index of the minimum best-cost chain; ties break to the lowest
   index so the reduction is a pure function of the chain states. *)
let best_index chains =
  let bi = ref 0 in
  Array.iteri
    (fun i c -> if Sa.best_cost c < Sa.best_cost chains.(!bi) then bi := i)
    chains;
  !bi

let run ?workers ?(exchange_every = 32) ?(check = ignore) ~seeds params
    problem_of =
  if seeds = [] then invalid_arg "Parallel.run: empty seed list";
  let seeds = Array.of_list seeds in
  let k = Array.length seeds in
  let workers =
    max 1 (min k (match workers with Some w -> w | None -> default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  (* Chain creation draws from each chain's own stream only, so order
     does not matter; build them up front on the spawning domain. *)
  let chains =
    Array.init k (fun i ->
        let rng = Prelude.Rng.create seeds.(i) in
        (* bind before [start]: the problem draws its initial state
           from the stream first, then [start] estimates t0 — the same
           order as the sequential placers *)
        let problem = problem_of rng in
        Sa.start ~rng params problem)
  in
  let unfinished () = Array.exists (fun c -> not (Sa.finished c)) chains in
  while unfinished () do
    let advance d () =
      for i = 0 to k - 1 do
        if i mod workers = d then begin
          let c = chains.(i) in
          let budget = ref slice in
          while !budget > 0 && not (Sa.finished c) do
            Sa.step_round c;
            decr budget
          done
        end
      done
    in
    (* The spawning domain works the last partition itself. *)
    let spawned =
      List.init (workers - 1) (fun d -> Domain.spawn (advance d))
    in
    advance (workers - 1) ();
    List.iter Domain.join spawned;
    let b = chains.(best_index chains) in
    let state = Sa.best b and cost = Sa.best_cost b in
    check state;
    Array.iter (fun c -> Sa.adopt c ~state ~cost) chains
  done;
  let outcomes = Array.map Sa.outcome_of_chain chains in
  let winner = best_index chains in
  check outcomes.(winner).Sa.best;
  {
    best = outcomes.(winner).Sa.best;
    best_cost = outcomes.(winner).Sa.best_cost;
    winner;
    chains = outcomes;
    evaluated = Array.fold_left (fun acc o -> acc + o.Sa.evaluated) 0 outcomes;
  }

(* Same loop over in-place chains. Each chain's mproblem (and thus its
   working state, arenas included) is private to the chain; exchange
   blits the winner's best snapshot across, and strict-improvement
   adoption keeps the winner from blitting its own buffer onto itself.
   The determinism argument is unchanged: seeds fix everything. *)
let run_mutable ?workers ?(exchange_every = 32) ?(check = ignore) ~seeds params
    problem_of =
  if seeds = [] then invalid_arg "Parallel.run_mutable: empty seed list";
  let seeds = Array.of_list seeds in
  let k = Array.length seeds in
  let workers =
    max 1 (min k (match workers with Some w -> w | None -> default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  let chains =
    Array.init k (fun i ->
        let rng = Prelude.Rng.create seeds.(i) in
        let problem = problem_of rng in
        Sa.mstart ~rng params problem)
  in
  let mbest_index chains =
    let bi = ref 0 in
    Array.iteri
      (fun i c -> if Sa.mbest_cost c < Sa.mbest_cost chains.(!bi) then bi := i)
      chains;
    !bi
  in
  let unfinished () = Array.exists (fun c -> not (Sa.mfinished c)) chains in
  while unfinished () do
    let advance d () =
      for i = 0 to k - 1 do
        if i mod workers = d then begin
          let c = chains.(i) in
          let budget = ref slice in
          while !budget > 0 && not (Sa.mfinished c) do
            Sa.mstep_round c;
            decr budget
          done
        end
      done
    in
    let spawned =
      List.init (workers - 1) (fun d -> Domain.spawn (advance d))
    in
    advance (workers - 1) ();
    List.iter Domain.join spawned;
    let b = chains.(mbest_index chains) in
    let state = Sa.mbest b and cost = Sa.mbest_cost b in
    check state;
    Array.iter (fun c -> Sa.madopt c ~state ~cost) chains
  done;
  let outcomes = Array.map Sa.moutcome_of_chain chains in
  let winner = mbest_index chains in
  check outcomes.(winner).Sa.best;
  {
    best = outcomes.(winner).Sa.best;
    best_cost = outcomes.(winner).Sa.best_cost;
    winner;
    chains = outcomes;
    evaluated = Array.fold_left (fun acc o -> acc + o.Sa.evaluated) 0 outcomes;
  }
