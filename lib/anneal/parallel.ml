(* Multi-start annealing over a persistent domain pool.

   One chain per seed, each with a private splitmix64 stream and
   private problem instance (so mutable evaluation arenas are never
   shared). Two modes share the chain setup and differ only in how
   bests travel between chains:

   - Deterministic: chains are partitioned over workers round-robin
     and advanced in slices of [exchange_every] rounds; each slice is
     a {!Pool.run} barrier (the happens-before edge a spawn/join pair
     used to give, minus the spawn), and at the boundary the globally
     best state is offered to every chain. The slice counter is the
     logical clock: boundaries, reduction order and every chain's
     stream are fixed by the seed list alone, so the result is
     identical for any worker count.

   - Async (free-running): each chain is one pool job that runs to
     completion at its own pace, publishing its best to a shared
     {!Elite} pool and pulling the global best at its own slice
     boundaries — no round synchronization, no join barrier, so the
     slowest chain never holds the others. The result depends on
     domain interleaving (better solutions simply arrive earlier or
     later); what is guaranteed is that adoption is strictly
     improving, every published state passed [check] on its
     publishing domain, and with exchange disabled every chain
     replays its solo walk exactly.

   Telemetry keeps both stories intact: each chain writes to a private
   child sink (tid = seed index + 1) that only one domain touches at a
   time (exclusively per-slice in deterministic mode, for the whole
   job in async mode), and the children are absorbed into the caller's
   sink after the final drain — so recording is race-free and consumes
   no rng draws. *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  winner : int;
  chains : 'a Sa.outcome array;
  evaluated : int;
}

(* ANALOG_WORKERS overrides the hardware default, e.g. to pin CI to a
   known width or to share a box. Anything unparsable falls back to the
   hardware count; values below 1 clamp to 1. *)
let parse_workers s =
  match int_of_string_opt (String.trim s) with
  | Some w -> Some (max 1 w)
  | None -> None

let default_workers () =
  match Sys.getenv_opt "ANALOG_WORKERS" with
  | Some s when String.trim s <> "" -> (
      match parse_workers s with
      | Some w -> w
      | None -> Domain.recommended_domain_count ())
  | _ -> Domain.recommended_domain_count ()

(* One Qor.chain record per chain, written into the chain's own child
   sink just before absorb so it rides into the parent like every other
   telemetry stream. Wall time comes from the chain.slice_us counter
   accumulated as slices close — O(1) to read, and immune to the span
   ring overwriting old slices on long runs. *)
let record_chain_qor tel ?engine ~mode ~best_cost ~rounds ~evaluated () =
  if Telemetry.Sink.live tel then begin
    let counters = Telemetry.Sink.counters tel in
    let wall =
      match List.assoc_opt "chain.slice_us" counters with
      | Some us -> float_of_int us /. 1e6
      | None -> 0.0
    in
    let move_rates = Telemetry.Qor.move_rates_of_counters counters in
    Telemetry.Sink.record_qor tel
      (Telemetry.Qor.chain ?engine ~mode ~move_rates ~cost:best_cost
         ~wall_s:wall ~sa_rounds:rounds ~evaluated ())
  end

(* The functional/mutable split is a handful of function pointers; the
   two mode drivers below are written once against this record. *)
type ('c, 'a) ops = {
  finished : 'c -> bool;
  step : 'c -> unit;
  best_cost : 'c -> float;
  best_view : 'c -> 'a;  (* borrowed: winner's snapshot for exchange *)
  best_owned : 'c -> 'a;  (* safe to retain: immutable or fresh copy *)
  adopt : 'c -> state:'a -> cost:float -> unit;
  outcome : 'c -> 'a Sa.outcome;
}

let functional_ops =
  {
    finished = Sa.finished;
    step = Sa.step_round;
    best_cost = Sa.best_cost;
    best_view = Sa.best;
    best_owned = Sa.best;
    adopt = Sa.adopt;
    outcome = Sa.outcome_of_chain;
  }

let mutable_ops =
  {
    finished = Sa.mfinished;
    step = Sa.mstep_round;
    best_cost = Sa.mbest_cost;
    best_view = Sa.mbest;
    best_owned = Sa.mbest_copy;
    adopt = Sa.madopt;
    outcome = Sa.moutcome_of_chain;
  }

let best_index ops chains =
  let bi = ref 0 in
  Array.iteri
    (fun i c -> if ops.best_cost c < ops.best_cost chains.(!bi) then bi := i)
    chains;
  !bi

(* Advance chain [i] by up to [slice] rounds, recording the slice span
   and bumping the chain's accumulated slice wall-time counter. *)
let advance_slice ops ~slice ~tel ~slice_us c =
  let t0 = Telemetry.Sink.span_begin tel in
  let budget = ref slice in
  while !budget > 0 && not (ops.finished c) do
    ops.step c;
    decr budget
  done;
  let t1 = Telemetry.Sink.lap tel "chain.slice" t0 in
  Telemetry.Counter.add slice_us (int_of_float ((t1 -. t0) *. 1e6))

let finish ops ?engine ~mode ~check ~telemetry ~tels chains =
  let outcomes = Array.map ops.outcome chains in
  Array.iteri
    (fun i (o : _ Sa.outcome) ->
      record_chain_qor tels.(i) ?engine ~mode ~best_cost:o.Sa.best_cost
        ~rounds:o.Sa.rounds ~evaluated:o.Sa.evaluated ())
    outcomes;
  Array.iter (Telemetry.Sink.absorb telemetry) tels;
  let winner = best_index ops chains in
  check outcomes.(winner).Sa.best;
  {
    best = outcomes.(winner).Sa.best;
    best_cost = outcomes.(winner).Sa.best_cost;
    winner;
    chains = outcomes;
    evaluated = Array.fold_left (fun acc o -> acc + o.Sa.evaluated) 0 outcomes;
  }

(* Run on a caller-supplied pool (left running for its next request —
   how the placement service amortizes domain spawns across requests)
   or on a private one created and shut down here. *)
let on_pool ?pool ~workers f =
  match pool with Some p -> f p | None -> Pool.with_pool ~workers f

(* Deterministic mode: barrier slices on the persistent pool. The pool
   is created once per run (satellite of ISSUE 6: no more per-slice
   Domain.spawn/join churn); each Pool.run is a full barrier, so the
   exchange reduction happens-after every chain's slice. *)
let deterministic ops ?pool ~workers ~slice ~check ~telemetry ~tels ~slice_us
    chains =
  let k = Array.length chains in
  let exchanges = Telemetry.Sink.counter telemetry "parallel.exchanges" in
  let unfinished () = Array.exists (fun c -> not (ops.finished c)) chains in
  on_pool ?pool ~workers @@ fun pool ->
  let workers = Pool.workers pool in
  let jobs =
    Array.init workers (fun d () ->
        for i = 0 to k - 1 do
          if i mod workers = d then
            advance_slice ops ~slice ~tel:tels.(i) ~slice_us:slice_us.(i)
              chains.(i)
        done)
  in
  while unfinished () do
    let t_slice = Telemetry.Sink.span_begin telemetry in
    Pool.run pool jobs;
    let t_ex = Telemetry.Sink.lap telemetry "parallel.slice" t_slice in
    let b = chains.(best_index ops chains) in
    let state = ops.best_view b and cost = ops.best_cost b in
    check state;
    Array.iter (fun c -> ops.adopt c ~state ~cost) chains;
    Telemetry.Counter.incr exchanges;
    Telemetry.Sink.span_end telemetry "parallel.exchange" t_ex
  done

(* Async mode: one job per chain, free-running. Publishes go through
   [check] on the publishing domain (so a corrupted state aborts the
   run before any other chain can adopt it); the epilogue publish
   guarantees every chain's final best reaches the elite pool even
   when it never improved mid-run. *)
let async ops ?pool ~workers ~slice ~check ~tels ~slice_us chains =
  let k = Array.length chains in
  let elite = Elite.create ~stripes:(min 8 k) () in
  let publishes =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.publishes")
  in
  let pulls =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.pulls")
  in
  (* worker domains must not touch the parent sink: all async-mode
     tallies live in child sinks and merge by name at absorb *)
  let global_improvements =
    Array.init k (fun i ->
        Telemetry.Sink.counter tels.(i) "chain.elite_improvements")
  in
  on_pool ?pool ~workers @@ fun pool ->
  let job i () =
    let c = chains.(i) in
    let last_published = ref infinity in
    let publish () =
      let bc = ops.best_cost c in
      if bc < !last_published then begin
        last_published := bc;
        let state = ops.best_owned c in
        check state;
        let improved = Elite.publish elite ~origin:i ~cost:bc state in
        (* the parent counter is bumped only after the drain, by the
           caller — worker domains must not touch the parent sink *)
        if improved then Telemetry.Counter.incr global_improvements.(i);
        Telemetry.Counter.incr publishes.(i)
      end
    in
    while not (ops.finished c) && not (Pool.failed pool) do
      advance_slice ops ~slice ~tel:tels.(i) ~slice_us:slice_us.(i) c;
      publish ();
      match Elite.pull elite ~than:(ops.best_cost c) with
      | Some e ->
          ops.adopt c ~state:e.Elite.state ~cost:e.Elite.cost;
          Telemetry.Counter.incr pulls.(i)
      | None -> ()
    done;
    publish ()
  in
  for i = 0 to k - 1 do
    Pool.submit pool (job i)
  done;
  Pool.drain pool

let launch ops start ~mode ?pool ?workers ?(exchange_every = 32)
    ?(check = ignore) ?(telemetry = Telemetry.Sink.null) ?engine ~seeds
    problem_of =
  if seeds = [] then invalid_arg "Parallel: empty seed list";
  let seeds = Array.of_list seeds in
  let k = Array.length seeds in
  let workers =
    max 1 (min k (match workers with Some w -> w | None -> default_workers ()))
  in
  let slice = if exchange_every <= 0 then max_int else exchange_every in
  let tels =
    Array.init k (fun i -> Telemetry.Sink.child telemetry ~tid:(i + 1))
  in
  let slice_us =
    Array.init k (fun i -> Telemetry.Sink.counter tels.(i) "chain.slice_us")
  in
  (* Chain creation draws from each chain's own stream only, so order
     does not matter; build them up front on the calling domain. *)
  let chains =
    Array.init k (fun i ->
        let rng = Prelude.Rng.create seeds.(i) in
        (* bind before [start]: the problem draws its initial state
           from the stream first, then [start] estimates t0 — the same
           order as the sequential placers *)
        let problem = problem_of tels.(i) rng in
        start tels.(i) rng problem)
  in
  (match mode with
  | `Deterministic ->
      deterministic ops ?pool ~workers ~slice ~check ~telemetry ~tels
        ~slice_us chains
  | `Async -> async ops ?pool ~workers ~slice ~check ~tels ~slice_us chains);
  let mode_label =
    match mode with `Deterministic -> "deterministic" | `Async -> "async"
  in
  finish ops ?engine ~mode:mode_label ~check ~telemetry ~tels chains

let start_functional params tel rng problem =
  Sa.start ~telemetry:tel ~rng params problem

let start_mutable params tel rng problem =
  Sa.mstart ~telemetry:tel ~rng params problem

let run ?pool ?workers ?exchange_every ?check ?telemetry ?engine ~seeds params
    problem_of =
  launch functional_ops (start_functional params) ~mode:`Deterministic ?pool
    ?workers ?exchange_every ?check ?telemetry ?engine ~seeds problem_of

let run_mutable ?pool ?workers ?exchange_every ?check ?telemetry ?engine
    ~seeds params problem_of =
  launch mutable_ops (start_mutable params) ~mode:`Deterministic ?pool
    ?workers ?exchange_every ?check ?telemetry ?engine ~seeds problem_of

let run_async ?pool ?workers ?exchange_every ?check ?telemetry ?engine ~seeds
    params problem_of =
  launch functional_ops (start_functional params) ~mode:`Async ?pool ?workers
    ?exchange_every ?check ?telemetry ?engine ~seeds problem_of

let run_mutable_async ?pool ?workers ?exchange_every ?check ?telemetry ?engine
    ~seeds params problem_of =
  launch mutable_ops (start_mutable params) ~mode:`Async ?pool ?workers
    ?exchange_every ?check ?telemetry ?engine ~seeds problem_of
