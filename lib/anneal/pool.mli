(** Persistent worker-domain pool.

    {!Parallel} used to spawn fresh domains for every exchange slice
    and full-join them at each boundary; on short slices the
    spawn/join cost dominated the work (E17 showed multi-chain SA
    {e losing} wall-clock at 2 and 4 workers). A pool spawns
    [workers - 1] domains once, feeds them thunks through a
    mutex/condvar queue, and joins them once at {!shutdown} — jobs pay
    one queue handoff instead of a domain spawn.

    The calling domain is a full participant: {!drain} (and therefore
    {!run}) executes queued jobs on the caller until the queue is
    empty, then blocks until in-flight jobs finish. With
    [workers = 1] no domain is ever spawned and every job runs inline
    on the caller, in submission order — the sequential semantics
    fall out for free.

    Memory model: a job's closure (and everything it reads) is
    published to its executing domain through the queue mutex, and
    everything the job wrote is visible to the caller when {!drain}
    returns — the same happens-before edges a spawn/join pair gave,
    which is what {!Parallel}'s deterministic mode relies on at
    logical exchange points.

    Exceptions raised by jobs are caught on the worker, the first one
    is kept, and {!drain} re-raises it on the caller after the queue
    settles (remaining jobs still run; use {!failed} to poll from
    long-running jobs that want to stop early). *)

type t

val create : workers:int -> t
(** Spawn [max 0 (workers - 1)] worker domains. [workers] is clamped
    to at least 1. *)

val workers : t -> int
(** The clamped worker count (caller included). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one job. Raises [Invalid_argument] after {!shutdown}. *)

val drain : t -> unit
(** Execute and await all submitted jobs: the caller runs queued jobs
    itself, then waits for jobs running on other workers. Re-raises
    the first job exception, if any. *)

val run : t -> (unit -> unit) array -> unit
(** [run t jobs] = submit all, then {!drain} — a barrier: every job
    has finished (and its effects are visible) when it returns. *)

val failed : t -> bool
(** True once some job has raised and the exception is still pending
    delivery by {!drain}. Cheap enough to poll from slice loops. *)

val shutdown : t -> unit
(** Join all worker domains. Must be called with no jobs in flight
    (after a final {!drain}); idempotent. *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [create], run the function, and {!shutdown} even on exceptions. *)
