(* Persistent worker-domain pool: spawn once, queue thunks, join once.

   Invariants, all under [m]:
   - [pending] counts submitted-but-unfinished jobs (queued + running).
   - [nonempty] is signalled per enqueued job and broadcast at stop.
   - [idle] is broadcast when [pending] reaches 0, waking a caller
     blocked in [drain].
   - [failure] keeps the first job exception; [drain] re-raises it.
     [failed] reads the flag without the lock — it is a monotonic
     hint for early exit, not a synchronization point. *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  q : (unit -> unit) Queue.t;
  mutable pending : int;
  mutable stop : bool;
  mutable failure : exn option;
  mutable has_failure : bool; (* lock-free mirror of [failure <> None] *)
  mutable domains : unit Domain.t list;
  nworkers : int;
}

let execute t job =
  (try job ()
   with e ->
     Mutex.lock t.m;
     if t.failure = None then begin
       t.failure <- Some e;
       t.has_failure <- true
     end;
     Mutex.unlock t.m);
  Mutex.lock t.m;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.idle;
  Mutex.unlock t.m

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.stop do
    Condition.wait t.nonempty t.m
  done;
  match Queue.take_opt t.q with
  | None ->
      (* stopping and nothing queued *)
      Mutex.unlock t.m
  | Some job ->
      Mutex.unlock t.m;
      execute t job;
      worker_loop t

let create ~workers =
  let nworkers = max 1 workers in
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      q = Queue.create ();
      pending = 0;
      stop = false;
      failure = None;
      has_failure = false;
      domains = [];
      nworkers;
    }
  in
  t.domains <- List.init (nworkers - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let workers t = t.nworkers
let failed t = t.has_failure

let submit t job =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  t.pending <- t.pending + 1;
  Queue.push job t.q;
  Condition.signal t.nonempty;
  Mutex.unlock t.m

(* The caller helps: run queued jobs inline until the queue is empty,
   then wait for in-flight jobs on other domains. *)
let drain t =
  let rec help () =
    Mutex.lock t.m;
    if t.pending = 0 then Mutex.unlock t.m
    else
      match Queue.take_opt t.q with
      | Some job ->
          Mutex.unlock t.m;
          execute t job;
          help ()
      | None ->
          while t.pending > 0 do
            Condition.wait t.idle t.m
          done;
          Mutex.unlock t.m
  in
  help ();
  Mutex.lock t.m;
  let f = t.failure in
  t.failure <- None;
  t.has_failure <- false;
  Mutex.unlock t.m;
  match f with Some e -> raise e | None -> ()

let run t jobs =
  Array.iter (fun job -> submit t job) jobs;
  drain t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.m;
  List.iter Domain.join ds

let with_pool ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
