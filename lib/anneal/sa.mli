(** Generic simulated-annealing engine.

    State type, move generator and cost function are supplied by the
    caller; the engine owns the control loop: Metropolis acceptance,
    temperature schedule, best-so-far tracking and freezing detection.
    All placers in this repository (sequence-pair, B*-tree, HB*-tree,
    and the layout-aware sizing optimizer of §V) instantiate it. *)

type 'a problem = {
  init : 'a;
  neighbor : Prelude.Rng.t -> 'a -> 'a;
  cost : 'a -> float;
}

type params = {
  initial_temperature : float option;
      (** [None]: estimated from the cost spread of random moves *)
  final_temperature : float;
  moves_per_round : int;  (** Metropolis steps at each temperature *)
  schedule : Schedule.t;
  frozen_rounds : int;
      (** stop after this many consecutive rounds in which the walk is
          effectively frozen: acceptance ratio below 2% and no new
          best found *)
  max_rounds : int;
}

val default_params : n:int -> params
(** Sensible defaults scaled to problem size [n] (moves per round
    [max 64 (8n)]). *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  rounds : int;
  accepted : int;
  evaluated : int;
}

val run :
  ?telemetry:Telemetry.Sink.t -> rng:Prelude.Rng.t -> params -> 'a problem -> 'a outcome
(** [telemetry] (default {!Telemetry.Sink.null}) receives one
    ["sa.round"] span, one convergence sample (round, temperature,
    acceptance ratio, best cost) and one ["sa.acceptance"] histogram
    observation per temperature round, plus per-move accept/reject
    tallies through the problem's registered {!Telemetry.Moves.t}.
    Instrumentation draws nothing from the rng, so the walk is
    bit-identical with telemetry on or off (tested); with the null sink
    each hook is a single predictable branch. *)

(** {2 Stepwise chains}

    The same walk, advanced one temperature round at a time so several
    chains can be interleaved and coupled ({!Parallel} runs one chain
    per seed across domains and exchanges bests at round boundaries).
    The decomposition is exact: [run] is [start] followed by
    [step_round] until [finished], so stepping a single chain to
    completion reproduces [run] bit for bit (tested). *)

type 'a chain

val start :
  ?telemetry:Telemetry.Sink.t -> rng:Prelude.Rng.t -> params -> 'a problem -> 'a chain
(** Evaluate the initial state (and, when [initial_temperature] is
    [None], estimate t0 from 64 random moves, consuming the same rng
    draws [run] would). [telemetry] as in {!run}. *)

val finished : 'a chain -> bool
(** True once the round budget, final temperature, or freezing
    criterion is reached. *)

val step_round : 'a chain -> unit
(** One temperature round ([moves_per_round] Metropolis steps followed
    by one schedule update). No-op when [finished]. *)

val best : 'a chain -> 'a

val best_cost : 'a chain -> float

val adopt : 'a chain -> state:'a -> cost:float -> unit
(** Multi-start exchange: replace the chain's current and best state
    when [cost] strictly improves on the chain's own best; no-op
    otherwise — in particular, re-offering a chain its own best never
    perturbs it, so a solo chain is exactly [run]. *)

val outcome_of_chain : 'a chain -> 'a outcome
(** Snapshot of the chain's progress so far. *)

val estimate_t0 : rng:Prelude.Rng.t -> 'a problem -> samples:int -> float
(** Standard deviation of the cost change over random moves, the usual
    starting temperature heuristic. *)

(** {2 In-place chains}

    The engine above copies states; arena-backed placers want one
    working state mutated in place. An {!mproblem} supplies [propose]
    (mutate [state] into a candidate), [undo] (revert the {e last}
    propose — called exactly once per rejected move, never twice in a
    row), [cost] (evaluate [state] as it stands), and [copy]/[blit]
    for best-so-far snapshots and multi-start exchange. Control flow
    (Metropolis test, schedule, freezing) is identical to the
    functional engine, so both share [params] and ['a outcome]. *)

type 'a mproblem = {
  state : 'a;
  propose : Prelude.Rng.t -> 'a -> unit;
  undo : 'a -> unit;
  cost : 'a -> float;
  copy : 'a -> 'a;
  blit : src:'a -> dst:'a -> unit;
}

val run_mutable :
  ?telemetry:Telemetry.Sink.t ->
  rng:Prelude.Rng.t ->
  params ->
  'a mproblem ->
  'a outcome
(** [mstart] followed by [mstep_round] to completion; the outcome's
    [best] is a fresh [copy], independent of the working state.
    [telemetry] as in {!run}. *)

type 'a mchain

val mstart :
  ?telemetry:Telemetry.Sink.t -> rng:Prelude.Rng.t -> params -> 'a mproblem -> 'a mchain
(** Like {!start}; the t0 estimate walks the working state and then
    restores it through a snapshot. *)

val mfinished : 'a mchain -> bool
val mstep_round : 'a mchain -> unit

val mbest : 'a mchain -> 'a
(** The chain's internal best-snapshot buffer. Read-only: it is
    overwritten whenever the chain improves. *)

val mbest_cost : 'a mchain -> float

val mbest_copy : 'a mchain -> 'a
(** A fresh [copy] of the best snapshot, safe to keep (or publish to
    an {!Elite} pool) after the chain moves on. *)

val madopt : 'a mchain -> state:'a -> cost:float -> unit
(** Multi-start exchange, as {!adopt}: when [cost] strictly improves on
    the chain's best, [state] is blitted into both the working state
    and the best snapshot. Strictness means offering a chain its own
    {!mbest} buffer never aliases a blit. *)

val moutcome_of_chain : 'a mchain -> 'a outcome
(** Snapshot of the chain's progress; [best] is a fresh [copy]. *)

val estimate_mt0 : rng:Prelude.Rng.t -> 'a mproblem -> samples:int -> float
(** {!estimate_t0} for in-place problems; restores the working state
    before returning. *)
