(** Multi-start parallel annealing over a persistent domain pool
    (OCaml 5 domains).

    Runs one {!Sa} chain per seed on a {!Pool} spawned once per call,
    in one of two modes:

    - {b Deterministic} ({!run} / {!run_mutable}): chains advance in
      lock-step slices of [exchange_every] rounds; each slice is a
      pool barrier and at the boundary the globally best state is
      offered to every chain ({!Sa.adopt} — taken only when strictly
      better than the chain's own best). The slice counter is a
      logical clock shared by all chains, so the outcome is a pure
      function of [seeds], [params] and [exchange_every]: the worker
      count only distributes the same computation over more cores —
      [workers = 1] and [workers = 8] yield identical results, and a
      single seed with any worker count reproduces
      [Sa.run ~rng:(Rng.create seed)] exactly (both tested).

    - {b Async / free-running} ({!run_async} / {!run_mutable_async}):
      each chain is one pool job running to completion at its own
      pace; there is no join barrier. Chains publish their bests to a
      shared {!Elite} pool and pull the global best at their own slice
      boundaries, so a slow chain never stalls the rest — this is the
      throughput mode. The outcome depends on domain interleaving
      (earlier-arriving bests change adoption points), but adoption is
      strictly improving, every adopted state passed [check] when
      published, and with [exchange_every <= 0] every chain replays
      its solo walk exactly, making the result [min] over independent
      restarts — deterministic again (tested).

    [problem_of] is called once per chain with the chain's private
    telemetry sink and rng (draw the initial state from the rng,
    exactly as the sequential placers draw from theirs); any mutable
    evaluation state (e.g. {!Placer.Eval} arenas) must be created
    inside it so no two chains share buffers, and any instrumentation
    the problem wants must go through the sink it is given — that
    child sink is the only one its chain's current domain may touch. *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  winner : int;  (** index into [seeds] of the winning chain *)
  chains : 'a Sa.outcome array;  (** per-chain outcomes, seed order *)
  evaluated : int;  (** total cost evaluations across chains *)
}

val default_workers : unit -> int
(** The [ANALOG_WORKERS] environment variable when set to an integer
    (clamped to at least 1 — useful for pinning CI to a known width or
    sharing a machine), otherwise
    [Domain.recommended_domain_count ()]. Unparsable values fall back
    to the hardware count. *)

val parse_workers : string -> int option
(** The parser behind [ANALOG_WORKERS]: [int_of_string] after trimming,
    clamped to at least 1; [None] when unparsable. Exposed for
    testing. *)

val record_chain_qor :
  Telemetry.Sink.t ->
  ?engine:string ->
  mode:string ->
  best_cost:float ->
  rounds:int ->
  evaluated:int ->
  unit ->
  unit
(** Write one {!Telemetry.Qor.chain} record into a chain's child sink:
    best cost, effort, wall time read from the ["chain.slice_us"]
    counter, move tallies from the sink's counters, tagged with
    [engine] and [mode]. Exposed for {!Placer.Portfolio}, which runs
    its own race loop but reports chains the same way. *)

val run :
  ?pool:Pool.t ->
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?engine:string ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.problem) ->
  'a outcome
(** Deterministic mode over functional chains. [pool] reuses a
    caller-owned {!Pool} (left running afterwards — how a long-lived
    service amortizes domain spawns across requests; [workers] is then
    ignored in favor of the pool's width); without it a private pool
    is created and shut down per call. [workers] defaults to
    {!default_workers}, capped at the number of seeds;
    [exchange_every] defaults to 32 rounds, and any non-positive value
    disables exchange entirely (fully independent restarts). Raises
    [Invalid_argument] on an empty seed list.

    [check] is a sanitizer hook: it runs on the globally best state at
    every exchange boundary (after the barrier, before the state is
    offered to the chains) and once more on the final winner, on the
    calling domain. Raise from it to abort the run on an invariant
    violation; the default does nothing.

    [engine] tags the per-chain QoR records (see below) with the
    engine name — placers pass ["sp"], ["bstar"], ["tcg"].

    [telemetry] (default {!Telemetry.Sink.null}) receives
    ["parallel.slice"] / ["parallel.exchange"] spans and a
    ["parallel.exchanges"] counter from the coordinating domain; each
    chain records into a private child sink (tid = seed index + 1):
    per-round ["sa.round"] and per-slice ["chain.slice"] spans, a
    ["chain.slice_us"] counter accumulating slice wall time as slices
    close, and one final {!Telemetry.Qor.chain} record carrying the
    chain's best cost, rounds, evaluations, accumulated wall time,
    move-class tallies and the engine/mode tags. Children are merged
    into [telemetry] after the final drain. Telemetry draws nothing
    from any rng, so results remain a pure function of
    seeds/params/exchange and worker-count invariant. *)

val run_mutable :
  ?pool:Pool.t ->
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?engine:string ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.mproblem) ->
  'a outcome
(** {!run} over in-place chains ({!Sa.mproblem}). Same parameters and
    the same determinism guarantee. [problem_of] must create the whole
    mutable state (arenas included) per chain, so no two chains share
    buffers; exchange copies states across chains with the problem's
    [blit]. [check] receives the winner's best-snapshot buffer —
    treat it as read-only. *)

val run_async :
  ?pool:Pool.t ->
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?engine:string ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.problem) ->
  'a outcome
(** Free-running mode over functional chains: no barrier, elite-pool
    exchange at each chain's own [exchange_every]-round slice
    boundaries. [check] runs on every state {e before} it is
    published (on the publishing chain's domain) and once on the
    final winner (on the calling domain); a raise aborts the run —
    other chains notice at their next slice boundary and the first
    exception is re-raised on the caller. Each chain's child sink
    additionally counts ["chain.publishes"] / ["chain.pulls"]. *)

val run_mutable_async :
  ?pool:Pool.t ->
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  ?engine:string ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.mproblem) ->
  'a outcome
(** {!run_async} over in-place chains. Published states are fresh
    {!Sa.mbest_copy} snapshots, never mutated afterwards, so
    cross-domain adoption blits read from immutable buffers. *)
