(** Deterministic multi-start parallel annealing (OCaml 5 domains).

    Runs one {!Sa} chain per seed, partitioned over [workers] domains,
    with a periodic best-exchange: every [exchange_every] rounds all
    domains synchronize and the globally best state is offered to every
    chain ({!Sa.adopt} — taken only when strictly better than the
    chain's own best). Used by the placers' [?workers] parameter.

    Determinism: the outcome is a pure function of [seeds], [params]
    and [exchange_every]. The worker count only distributes the same
    computation over more cores — running with [workers = 1] or
    [workers = 8] yields identical results, and a single seed with any
    worker count reproduces [Sa.run ~rng:(Rng.create seed)] exactly
    (both tested).

    [problem_of] is called once per chain with the chain's private
    telemetry sink and rng (draw the initial state from the rng,
    exactly as the sequential placers draw from theirs); any mutable
    evaluation state (e.g. {!Placer.Eval} arenas) must be created
    inside it so no two chains share buffers, and any instrumentation
    the problem wants (move-class tallies, evaluation spans) must go
    through the sink it is given — that child sink is the only one its
    domain may touch. *)

type 'a outcome = {
  best : 'a;
  best_cost : float;
  winner : int;  (** index into [seeds] of the winning chain *)
  chains : 'a Sa.outcome array;  (** per-chain outcomes, seed order *)
  evaluated : int;  (** total cost evaluations across chains *)
}

val default_workers : unit -> int
(** The [ANALOG_WORKERS] environment variable when set to an integer
    (clamped to at least 1 — useful for pinning CI to a known width or
    sharing a machine), otherwise
    [Domain.recommended_domain_count ()]. Unparsable values fall back
    to the hardware count. *)

val parse_workers : string -> int option
(** The parser behind [ANALOG_WORKERS]: [int_of_string] after trimming,
    clamped to at least 1; [None] when unparsable. Exposed for
    testing. *)

val run :
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.problem) ->
  'a outcome
(** [workers] defaults to {!default_workers}, capped at the number of
    seeds; [exchange_every] defaults to 32 rounds, and any
    non-positive value disables exchange entirely (fully independent
    restarts). Raises [Invalid_argument] on an empty seed list.

    [check] is a sanitizer hook: it runs on the globally best state at
    every exchange boundary (after the join, before the state is
    offered to the chains) and once more on the final winner, on the
    spawning domain. Raise from it to abort the run on an invariant
    violation; the default does nothing.

    [telemetry] (default {!Telemetry.Sink.null}) receives
    ["parallel.slice"] / ["parallel.exchange"] spans and a
    ["parallel.exchanges"] counter from the coordinating domain; each
    chain records into a private child sink (tid = seed index + 1,
    per-round ["sa.round"] and per-slice ["chain.slice"] spans, plus
    one final {!Telemetry.Qor.chain} record carrying the chain's best
    cost, rounds, evaluations, summed slice wall time and move-class
    tallies), and the children are merged into [telemetry] after the
    final join.
    Telemetry draws nothing from any rng, so results remain a pure
    function of seeds/params/exchange and worker-count invariant. *)

val run_mutable :
  ?workers:int ->
  ?exchange_every:int ->
  ?check:('a -> unit) ->
  ?telemetry:Telemetry.Sink.t ->
  seeds:int list ->
  Sa.params ->
  (Telemetry.Sink.t -> Prelude.Rng.t -> 'a Sa.mproblem) ->
  'a outcome
(** {!run} over in-place chains ({!Sa.mproblem}). Same parameters and
    the same determinism guarantee. [problem_of] must create the whole
    mutable state (arenas included) per chain, so no two chains share
    buffers; exchange copies states across chains with the problem's
    [blit]. [check] receives the winner's best-snapshot buffer —
    treat it as read-only. *)
