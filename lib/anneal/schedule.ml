type t =
  | Geometric of float
  | Adaptive of { base : float; low : float; high : float }

let default = Geometric 0.95
let adaptive = Adaptive { base = 0.95; low = 0.8; high = 0.04 }

let to_string = function
  | Geometric alpha -> Printf.sprintf "geometric(%g)" alpha
  | Adaptive { base; low; high } ->
      Printf.sprintf "adaptive(base=%g,low=%g,high=%g)" base low high

let next sched ~temperature ~acceptance =
  match sched with
  | Geometric alpha -> alpha *. temperature
  | Adaptive { base; low; high } ->
      let alpha =
        if acceptance > 0.8 then base *. low
        else if acceptance < 0.2 then Float.min 0.999 (base +. high)
        else base
      in
      alpha *. temperature
