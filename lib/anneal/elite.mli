(** Asynchronous elite pool: the shared best-so-far structure that
    replaces {!Parallel}'s join-barrier exchange.

    Free-running chains {!publish} their bests and {!pull} the global
    best at their own slice boundaries — no round synchronization
    across domains. Two layers:

    - a single [Atomic] slot holding the global best {!entry}. Entries
      are immutable records, so a reader always sees a consistent
      (cost, state) pair — no torn reads — and {!pull} is one atomic
      load on the fast path.
    - mutex-striped per-origin {e families} of the top-[per_stripe]
      entries (Badaoui & Vemuri's multi-placement motivation: keep
      several good solutions alive as restart seeds, not one scalar
      best). Stripes are keyed by [origin mod stripes], so chains
      mostly contend on distinct locks.

    Publishing never blocks pulls and never draws from any rng, and
    published states must not be mutated afterwards (mutable-state
    chains publish a fresh [copy]). *)

type 'a entry = {
  cost : float;
  state : 'a;  (** immutable once published *)
  origin : int;  (** publishing chain index *)
}

type 'a t

val create : ?stripes:int -> ?per_stripe:int -> unit -> 'a t
(** [stripes] (default 8, clamped to ≥ 1) lock stripes; [per_stripe]
    (default 4, clamped to ≥ 1) entries kept per stripe. *)

val publish : 'a t -> origin:int -> cost:float -> 'a -> bool
(** Record a solution. Returns [true] when it strictly improved the
    global best. *)

val best : 'a t -> 'a entry option
(** The global best so far (one atomic load). *)

val pull : 'a t -> than:float -> 'a entry option
(** The global best if its cost is strictly below [than], else
    [None] — the strict test means a chain never re-adopts its own
    published best. *)

val entries : 'a t -> 'a entry list
(** Snapshot of every striped family, best-first. Takes each stripe
    lock in turn; meant for end-of-run reporting and restart seeding,
    not hot paths. *)

val size : 'a t -> int
(** Total entries currently retained across stripes. *)
