let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geo_mean = function
  | [] -> 0.0
  | xs -> exp (mean (List.map log xs))

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

(* Weighted empirical quantile with linear interpolation, defined as
   the classic sample quantile (numpy's default, "type 7") of the
   multiset in which value v with weight w appears w times — computed
   without expanding the multiset. [quantile] below is the unweighted
   special case, so there is exactly one interpolation formula in the
   codebase (the telemetry histograms and the benchmark summaries both
   delegate here). *)
let quantile_weighted pts q =
  match List.filter (fun (_, w) -> w > 0) pts with
  | [] -> 0.0
  | pts ->
      let pts = List.sort (fun (a, _) (b, _) -> Float.compare a b) pts in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 pts in
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let h = q *. float_of_int (total - 1) in
      let lo = int_of_float h in
      let frac = h -. float_of_int lo in
      (* value at expanded-multiset index i (clamped to the last value) *)
      let value_at i =
        let rec go cum = function
          | [] -> ( match List.rev pts with (v, _) :: _ -> v | [] -> 0.0)
          | (v, w) :: rest -> if i < cum + w then v else go (cum + w) rest
        in
        go 0 pts
      in
      let vlo = value_at lo in
      if frac = 0.0 then vlo
      else
        let vhi = value_at (lo + 1) in
        vlo +. (frac *. (vhi -. vlo))

let quantile xs q = quantile_weighted (List.map (fun x -> (x, 1)) xs) q
