(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geo_mean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; 0 when [whole = 0]. *)

val quantile : float list -> float -> float
(** [quantile xs q] is the linearly interpolated empirical [q]-quantile
    of the samples (numpy's default "type 7": position [(n-1)q] between
    the sorted order statistics). [q] is clamped to [0, 1]; 0 for the
    empty list. The single percentile implementation in the repository
    — the telemetry histograms and the benchmark summaries both use
    it. *)

val quantile_weighted : (float * int) list -> float -> float
(** [quantile_weighted [(v, w); ...] q] is [quantile] of the multiset
    in which each value [v] appears [w] times, computed without
    expanding it. Pairs with non-positive weight are ignored; 0 when
    nothing remains. Used by the log-bucketed telemetry histograms
    (bucket representative value, bucket count). *)
