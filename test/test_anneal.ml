let test_schedule_geometric () =
  let t =
    Anneal.Schedule.next (Anneal.Schedule.Geometric 0.9) ~temperature:100.0
      ~acceptance:0.5
  in
  Alcotest.(check (float 1e-9)) "geometric" 90.0 t

let test_schedule_adaptive () =
  let s = Anneal.Schedule.adaptive in
  let hot = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.95 in
  let mid = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.5 in
  let cold = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.05 in
  Alcotest.(check bool) "hot cools faster" true (hot < mid);
  Alcotest.(check bool) "cold cools slower" true (cold > mid)

(* A rugged 1-D landscape the walker must cross barriers on. *)
let problem =
  {
    Anneal.Sa.init = 80;
    neighbor =
      (fun rng x ->
        let step = Prelude.Rng.int_in rng (-3) 3 in
        max (-100) (min 100 (x + step)));
    cost =
      (fun x ->
        let fx = float_of_int x in
        (0.01 *. fx *. fx) +. (3.0 *. sin (fx /. 4.0)));
  }

let test_sa_minimizes () =
  let rng = Prelude.Rng.create 17 in
  let params =
    { (Anneal.Sa.default_params ~n:10) with Anneal.Sa.max_rounds = 200 }
  in
  let out = Anneal.Sa.run ~rng params problem in
  (* global minimum is near x = -6 .. 0 with cost around -2.7 *)
  Alcotest.(check bool)
    (Printf.sprintf "found near-optimum (best %d cost %.2f)" out.Anneal.Sa.best
       out.Anneal.Sa.best_cost)
    true
    (out.Anneal.Sa.best_cost < -2.0);
  Alcotest.(check bool) "improved on init" true
    (out.Anneal.Sa.best_cost < problem.Anneal.Sa.cost problem.Anneal.Sa.init);
  Alcotest.(check bool) "counted evaluations" true (out.Anneal.Sa.evaluated > 0)

let test_estimate_t0 () =
  let rng = Prelude.Rng.create 5 in
  let t0 = Anneal.Sa.estimate_t0 ~rng problem ~samples:50 in
  Alcotest.(check bool) "positive" true (t0 > 0.0)

let test_deterministic () =
  let run () =
    let rng = Prelude.Rng.create 17 in
    (Anneal.Sa.run ~rng (Anneal.Sa.default_params ~n:10) problem).Anneal.Sa.best
  in
  Alcotest.(check int) "same seed same best" (run ()) (run ())

let par_params =
  { (Anneal.Sa.default_params ~n:10) with Anneal.Sa.max_rounds = 120 }

(* A single chain with no rivals must replay [Sa.run] on the same seed
   exactly: same best, same cost, same evaluation count. *)
let test_parallel_solo_matches_run () =
  let seq = Anneal.Sa.run ~rng:(Prelude.Rng.create 17) par_params problem in
  let par =
    Anneal.Parallel.run ~workers:1 ~seeds:[ 17 ] par_params (fun _ _ -> problem)
  in
  Alcotest.(check int) "same best" seq.Anneal.Sa.best par.Anneal.Parallel.best;
  Alcotest.(check (float 0.0))
    "same cost" seq.Anneal.Sa.best_cost par.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "same evaluation count" seq.Anneal.Sa.evaluated
    par.Anneal.Parallel.evaluated

let test_parallel_worker_count_invariant () =
  let seeds = [ 3; 11; 42; 99 ] in
  let go workers =
    Anneal.Parallel.run ~workers ~exchange_every:8 ~seeds par_params (fun _ _ ->
        problem)
  in
  let a = go 1 and b = go 2 and c = go 4 in
  Alcotest.(check int)
    "1 vs 2 best" a.Anneal.Parallel.best b.Anneal.Parallel.best;
  Alcotest.(check int)
    "1 vs 4 best" a.Anneal.Parallel.best c.Anneal.Parallel.best;
  Alcotest.(check (float 0.0))
    "1 vs 2 cost" a.Anneal.Parallel.best_cost b.Anneal.Parallel.best_cost;
  Alcotest.(check (float 0.0))
    "1 vs 4 cost" a.Anneal.Parallel.best_cost c.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "1 vs 4 winner" a.Anneal.Parallel.winner c.Anneal.Parallel.winner;
  Alcotest.(check int)
    "1 vs 4 evaluations" a.Anneal.Parallel.evaluated
    c.Anneal.Parallel.evaluated

let test_parallel_deterministic () =
  let go () =
    (Anneal.Parallel.run ~workers:2 ~exchange_every:8 ~seeds:[ 5; 6; 7 ]
       par_params (fun _ _ -> problem))
      .Anneal.Parallel.best_cost
  in
  Alcotest.(check (float 0.0)) "same seeds same cost" (go ()) (go ())

let test_parallel_multistart_minimizes () =
  let out =
    Anneal.Parallel.run ~workers:2 ~seeds:[ 1; 2; 3 ] par_params (fun _ _ ->
        problem)
  in
  Alcotest.(check bool)
    "found near-optimum" true
    (out.Anneal.Parallel.best_cost < -2.0);
  Alcotest.(check int)
    "one outcome per seed" 3
    (Array.length out.Anneal.Parallel.chains);
  Alcotest.(check bool) "winner is the argmin" true
    (Array.for_all
       (fun (o : int Anneal.Sa.outcome) ->
         out.Anneal.Parallel.best_cost <= o.Anneal.Sa.best_cost)
       out.Anneal.Parallel.chains)

(* The in-place engine on the same landscape: state is [| value; prev |]
   so [undo] restores the pre-propose value. Draw-for-draw the same rng
   consumption as [problem], so the two engines must agree exactly. *)
let mproblem () =
  {
    Anneal.Sa.state = [| 80; 80 |];
    propose =
      (fun rng s ->
        let step = Prelude.Rng.int_in rng (-3) 3 in
        s.(1) <- s.(0);
        s.(0) <- max (-100) (min 100 (s.(0) + step)));
    undo = (fun s -> s.(0) <- s.(1));
    cost =
      (fun s ->
        let fx = float_of_int s.(0) in
        (0.01 *. fx *. fx) +. (3.0 *. sin (fx /. 4.0)));
    copy = Array.copy;
    blit = (fun ~src ~dst -> Array.blit src 0 dst 0 2);
  }

let test_mutable_matches_functional () =
  let seq = Anneal.Sa.run ~rng:(Prelude.Rng.create 17) par_params problem in
  let m =
    Anneal.Sa.run_mutable ~rng:(Prelude.Rng.create 17) par_params (mproblem ())
  in
  Alcotest.(check int) "same best" seq.Anneal.Sa.best m.Anneal.Sa.best.(0);
  Alcotest.(check (float 0.0))
    "same cost" seq.Anneal.Sa.best_cost m.Anneal.Sa.best_cost;
  Alcotest.(check int) "same rounds" seq.Anneal.Sa.rounds m.Anneal.Sa.rounds;
  Alcotest.(check int)
    "same acceptances" seq.Anneal.Sa.accepted m.Anneal.Sa.accepted;
  Alcotest.(check int)
    "same evaluation count" seq.Anneal.Sa.evaluated m.Anneal.Sa.evaluated

let test_parallel_mutable_matches_functional () =
  let seeds = [ 3; 11; 42; 99 ] in
  let f =
    Anneal.Parallel.run ~workers:2 ~exchange_every:8 ~seeds par_params
      (fun _ _ -> problem)
  in
  let m =
    Anneal.Parallel.run_mutable ~workers:2 ~exchange_every:8 ~seeds par_params
      (fun _ _ -> mproblem ())
  in
  Alcotest.(check int)
    "same best" f.Anneal.Parallel.best m.Anneal.Parallel.best.(0);
  Alcotest.(check (float 0.0))
    "same cost" f.Anneal.Parallel.best_cost m.Anneal.Parallel.best_cost;
  Alcotest.(check int) "same winner" f.Anneal.Parallel.winner
    m.Anneal.Parallel.winner;
  Alcotest.(check int)
    "same evaluations" f.Anneal.Parallel.evaluated m.Anneal.Parallel.evaluated

let test_parallel_mutable_worker_invariant () =
  let seeds = [ 3; 11; 42; 99 ] in
  let go workers =
    Anneal.Parallel.run_mutable ~workers ~exchange_every:8 ~seeds par_params
      (fun _ _ -> mproblem ())
  in
  let a = go 1 and b = go 2 and c = go 4 in
  Alcotest.(check int)
    "1 vs 2 best" a.Anneal.Parallel.best.(0) b.Anneal.Parallel.best.(0);
  Alcotest.(check (float 0.0))
    "1 vs 2 cost" a.Anneal.Parallel.best_cost b.Anneal.Parallel.best_cost;
  Alcotest.(check (float 0.0))
    "1 vs 4 cost" a.Anneal.Parallel.best_cost c.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "1 vs 4 winner" a.Anneal.Parallel.winner c.Anneal.Parallel.winner;
  Alcotest.(check int)
    "1 vs 4 evaluations" a.Anneal.Parallel.evaluated
    c.Anneal.Parallel.evaluated

(* ANALOG_WORKERS: parse/clamp behavior of the worker-count default.
   Unix.putenv mutates the live environment, so restore it per case. *)
let with_env value f =
  let prev = Sys.getenv_opt "ANALOG_WORKERS" in
  Unix.putenv "ANALOG_WORKERS" value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "ANALOG_WORKERS" (Option.value prev ~default:""))
    f

let test_parse_workers () =
  let check label input expected =
    Alcotest.(check (option int)) label expected (Anneal.Parallel.parse_workers input)
  in
  check "plain" "4" (Some 4);
  check "trimmed" "  8 " (Some 8);
  check "clamped to 1" "0" (Some 1);
  check "negative clamped" "-3" (Some 1);
  check "garbage" "lots" None;
  check "empty" "" None;
  check "float rejected" "2.5" None

let test_default_workers_env () =
  with_env "3" (fun () ->
      Alcotest.(check int) "env honoured" 3 (Anneal.Parallel.default_workers ()));
  with_env "-2" (fun () ->
      Alcotest.(check int)
        "clamped to at least 1" 1
        (Anneal.Parallel.default_workers ()));
  with_env "nonsense" (fun () ->
      Alcotest.(check int)
        "unparsable falls back to hardware"
        (Domain.recommended_domain_count ())
        (Anneal.Parallel.default_workers ()));
  with_env "" (fun () ->
      Alcotest.(check int)
        "empty falls back to hardware"
        (Domain.recommended_domain_count ())
        (Anneal.Parallel.default_workers ()))

let () =
  Alcotest.run "anneal"
    [
      ( "schedule",
        [
          Alcotest.test_case "geometric" `Quick test_schedule_geometric;
          Alcotest.test_case "adaptive" `Quick test_schedule_adaptive;
        ] );
      ( "sa",
        [
          Alcotest.test_case "minimizes" `Quick test_sa_minimizes;
          Alcotest.test_case "estimate t0" `Quick test_estimate_t0;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "mutable engine replays functional" `Quick
            test_mutable_matches_functional;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "workers=1 replays Sa.run" `Quick
            test_parallel_solo_matches_run;
          Alcotest.test_case "worker-count invariant" `Quick
            test_parallel_worker_count_invariant;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "multi-start minimizes" `Quick
            test_parallel_multistart_minimizes;
          Alcotest.test_case "mutable replays functional" `Quick
            test_parallel_mutable_matches_functional;
          Alcotest.test_case "mutable worker-count invariant" `Quick
            test_parallel_mutable_worker_invariant;
          Alcotest.test_case "ANALOG_WORKERS parser" `Quick test_parse_workers;
          Alcotest.test_case "ANALOG_WORKERS default" `Quick
            test_default_workers_env;
        ] );
    ]
