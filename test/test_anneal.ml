let test_schedule_geometric () =
  let t =
    Anneal.Schedule.next (Anneal.Schedule.Geometric 0.9) ~temperature:100.0
      ~acceptance:0.5
  in
  Alcotest.(check (float 1e-9)) "geometric" 90.0 t

let test_schedule_adaptive () =
  let s = Anneal.Schedule.adaptive in
  let hot = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.95 in
  let mid = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.5 in
  let cold = Anneal.Schedule.next s ~temperature:100.0 ~acceptance:0.05 in
  Alcotest.(check bool) "hot cools faster" true (hot < mid);
  Alcotest.(check bool) "cold cools slower" true (cold > mid)

(* A rugged 1-D landscape the walker must cross barriers on. *)
let problem =
  {
    Anneal.Sa.init = 80;
    neighbor =
      (fun rng x ->
        let step = Prelude.Rng.int_in rng (-3) 3 in
        max (-100) (min 100 (x + step)));
    cost =
      (fun x ->
        let fx = float_of_int x in
        (0.01 *. fx *. fx) +. (3.0 *. sin (fx /. 4.0)));
  }

let test_sa_minimizes () =
  let rng = Prelude.Rng.create 17 in
  let params =
    { (Anneal.Sa.default_params ~n:10) with Anneal.Sa.max_rounds = 200 }
  in
  let out = Anneal.Sa.run ~rng params problem in
  (* global minimum is near x = -6 .. 0 with cost around -2.7 *)
  Alcotest.(check bool)
    (Printf.sprintf "found near-optimum (best %d cost %.2f)" out.Anneal.Sa.best
       out.Anneal.Sa.best_cost)
    true
    (out.Anneal.Sa.best_cost < -2.0);
  Alcotest.(check bool) "improved on init" true
    (out.Anneal.Sa.best_cost < problem.Anneal.Sa.cost problem.Anneal.Sa.init);
  Alcotest.(check bool) "counted evaluations" true (out.Anneal.Sa.evaluated > 0)

let test_estimate_t0 () =
  let rng = Prelude.Rng.create 5 in
  let t0 = Anneal.Sa.estimate_t0 ~rng problem ~samples:50 in
  Alcotest.(check bool) "positive" true (t0 > 0.0)

let test_deterministic () =
  let run () =
    let rng = Prelude.Rng.create 17 in
    (Anneal.Sa.run ~rng (Anneal.Sa.default_params ~n:10) problem).Anneal.Sa.best
  in
  Alcotest.(check int) "same seed same best" (run ()) (run ())

let par_params =
  { (Anneal.Sa.default_params ~n:10) with Anneal.Sa.max_rounds = 120 }

(* A single chain with no rivals must replay [Sa.run] on the same seed
   exactly: same best, same cost, same evaluation count. *)
let test_parallel_solo_matches_run () =
  let seq = Anneal.Sa.run ~rng:(Prelude.Rng.create 17) par_params problem in
  let par =
    Anneal.Parallel.run ~workers:1 ~seeds:[ 17 ] par_params (fun _ _ -> problem)
  in
  Alcotest.(check int) "same best" seq.Anneal.Sa.best par.Anneal.Parallel.best;
  Alcotest.(check (float 0.0))
    "same cost" seq.Anneal.Sa.best_cost par.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "same evaluation count" seq.Anneal.Sa.evaluated
    par.Anneal.Parallel.evaluated

let test_parallel_worker_count_invariant () =
  let seeds = [ 3; 11; 42; 99 ] in
  let go workers =
    Anneal.Parallel.run ~workers ~exchange_every:8 ~seeds par_params (fun _ _ ->
        problem)
  in
  let a = go 1 and b = go 2 and c = go 4 in
  Alcotest.(check int)
    "1 vs 2 best" a.Anneal.Parallel.best b.Anneal.Parallel.best;
  Alcotest.(check int)
    "1 vs 4 best" a.Anneal.Parallel.best c.Anneal.Parallel.best;
  Alcotest.(check (float 0.0))
    "1 vs 2 cost" a.Anneal.Parallel.best_cost b.Anneal.Parallel.best_cost;
  Alcotest.(check (float 0.0))
    "1 vs 4 cost" a.Anneal.Parallel.best_cost c.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "1 vs 4 winner" a.Anneal.Parallel.winner c.Anneal.Parallel.winner;
  Alcotest.(check int)
    "1 vs 4 evaluations" a.Anneal.Parallel.evaluated
    c.Anneal.Parallel.evaluated

let test_parallel_deterministic () =
  let go () =
    (Anneal.Parallel.run ~workers:2 ~exchange_every:8 ~seeds:[ 5; 6; 7 ]
       par_params (fun _ _ -> problem))
      .Anneal.Parallel.best_cost
  in
  Alcotest.(check (float 0.0)) "same seeds same cost" (go ()) (go ())

let test_parallel_multistart_minimizes () =
  let out =
    Anneal.Parallel.run ~workers:2 ~seeds:[ 1; 2; 3 ] par_params (fun _ _ ->
        problem)
  in
  Alcotest.(check bool)
    "found near-optimum" true
    (out.Anneal.Parallel.best_cost < -2.0);
  Alcotest.(check int)
    "one outcome per seed" 3
    (Array.length out.Anneal.Parallel.chains);
  Alcotest.(check bool) "winner is the argmin" true
    (Array.for_all
       (fun (o : int Anneal.Sa.outcome) ->
         out.Anneal.Parallel.best_cost <= o.Anneal.Sa.best_cost)
       out.Anneal.Parallel.chains)

(* The in-place engine on the same landscape: state is [| value; prev |]
   so [undo] restores the pre-propose value. Draw-for-draw the same rng
   consumption as [problem], so the two engines must agree exactly. *)
let mproblem () =
  {
    Anneal.Sa.state = [| 80; 80 |];
    propose =
      (fun rng s ->
        let step = Prelude.Rng.int_in rng (-3) 3 in
        s.(1) <- s.(0);
        s.(0) <- max (-100) (min 100 (s.(0) + step)));
    undo = (fun s -> s.(0) <- s.(1));
    cost =
      (fun s ->
        let fx = float_of_int s.(0) in
        (0.01 *. fx *. fx) +. (3.0 *. sin (fx /. 4.0)));
    copy = Array.copy;
    blit = (fun ~src ~dst -> Array.blit src 0 dst 0 2);
  }

let test_mutable_matches_functional () =
  let seq = Anneal.Sa.run ~rng:(Prelude.Rng.create 17) par_params problem in
  let m =
    Anneal.Sa.run_mutable ~rng:(Prelude.Rng.create 17) par_params (mproblem ())
  in
  Alcotest.(check int) "same best" seq.Anneal.Sa.best m.Anneal.Sa.best.(0);
  Alcotest.(check (float 0.0))
    "same cost" seq.Anneal.Sa.best_cost m.Anneal.Sa.best_cost;
  Alcotest.(check int) "same rounds" seq.Anneal.Sa.rounds m.Anneal.Sa.rounds;
  Alcotest.(check int)
    "same acceptances" seq.Anneal.Sa.accepted m.Anneal.Sa.accepted;
  Alcotest.(check int)
    "same evaluation count" seq.Anneal.Sa.evaluated m.Anneal.Sa.evaluated

let test_parallel_mutable_matches_functional () =
  let seeds = [ 3; 11; 42; 99 ] in
  let f =
    Anneal.Parallel.run ~workers:2 ~exchange_every:8 ~seeds par_params
      (fun _ _ -> problem)
  in
  let m =
    Anneal.Parallel.run_mutable ~workers:2 ~exchange_every:8 ~seeds par_params
      (fun _ _ -> mproblem ())
  in
  Alcotest.(check int)
    "same best" f.Anneal.Parallel.best m.Anneal.Parallel.best.(0);
  Alcotest.(check (float 0.0))
    "same cost" f.Anneal.Parallel.best_cost m.Anneal.Parallel.best_cost;
  Alcotest.(check int) "same winner" f.Anneal.Parallel.winner
    m.Anneal.Parallel.winner;
  Alcotest.(check int)
    "same evaluations" f.Anneal.Parallel.evaluated m.Anneal.Parallel.evaluated

let test_parallel_mutable_worker_invariant () =
  let seeds = [ 3; 11; 42; 99 ] in
  let go workers =
    Anneal.Parallel.run_mutable ~workers ~exchange_every:8 ~seeds par_params
      (fun _ _ -> mproblem ())
  in
  let a = go 1 and b = go 2 and c = go 4 in
  Alcotest.(check int)
    "1 vs 2 best" a.Anneal.Parallel.best.(0) b.Anneal.Parallel.best.(0);
  Alcotest.(check (float 0.0))
    "1 vs 2 cost" a.Anneal.Parallel.best_cost b.Anneal.Parallel.best_cost;
  Alcotest.(check (float 0.0))
    "1 vs 4 cost" a.Anneal.Parallel.best_cost c.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "1 vs 4 winner" a.Anneal.Parallel.winner c.Anneal.Parallel.winner;
  Alcotest.(check int)
    "1 vs 4 evaluations" a.Anneal.Parallel.evaluated
    c.Anneal.Parallel.evaluated

(* Worker-count invariance as a property: the deterministic mode on the
   persistent pool must be a pure function of seeds/params/exchange for
   ANY worker count and ANY slice length, not just the hand-picked
   combinations above. *)
let prop_parallel_worker_invariant =
  QCheck.Test.make ~name:"deterministic mode is worker-count invariant"
    ~count:12
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 5) (int_range 0 999))
        (int_range 2 5) (int_range 1 16))
    (fun (seeds, workers, exchange_every) ->
      let go workers =
        Anneal.Parallel.run ~workers ~exchange_every ~seeds par_params
          (fun _ _ -> problem)
      in
      let a = go 1 and b = go workers in
      a.Anneal.Parallel.best = b.Anneal.Parallel.best
      && a.Anneal.Parallel.best_cost = b.Anneal.Parallel.best_cost
      && a.Anneal.Parallel.winner = b.Anneal.Parallel.winner
      && a.Anneal.Parallel.evaluated = b.Anneal.Parallel.evaluated)

(* With exchange disabled every async chain replays its solo walk
   exactly (nothing is ever pulled), so the outcome is provably the
   min over independent Sa.run restarts — regardless of interleaving. *)
let test_async_restarts_match_solo () =
  let seeds = [ 3; 11; 42; 99 ] in
  let solo =
    List.map
      (fun s -> Anneal.Sa.run ~rng:(Prelude.Rng.create s) par_params problem)
      seeds
  in
  let out =
    Anneal.Parallel.run_async ~workers:2 ~exchange_every:0 ~seeds par_params
      (fun _ _ -> problem)
  in
  let best_solo =
    List.fold_left
      (fun acc (o : int Anneal.Sa.outcome) -> min acc o.Anneal.Sa.best_cost)
      infinity solo
  in
  Alcotest.(check (float 0.0))
    "best = min over solo restarts" best_solo out.Anneal.Parallel.best_cost;
  List.iteri
    (fun i (o : int Anneal.Sa.outcome) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "chain %d replays its solo walk" i)
        o.Anneal.Sa.best_cost
        out.Anneal.Parallel.chains.(i).Anneal.Sa.best_cost)
    solo;
  Alcotest.(check int)
    "same total evaluations"
    (List.fold_left
       (fun acc (o : int Anneal.Sa.outcome) -> acc + o.Anneal.Sa.evaluated)
       0 solo)
    out.Anneal.Parallel.evaluated

(* Free-running with exchange ON: the sanitizer must fire on every
   publish, the final best must be the min over the chains' own bests
   (the elite pool retains every published cost), and the whole thing
   must hold together under real domain parallelism. *)
let test_async_exchange_sane () =
  let checks = Atomic.make 0 in
  let check x =
    Atomic.incr checks;
    if x < -100 || x > 100 then failwith "state escaped the domain"
  in
  let out =
    Anneal.Parallel.run_async ~workers:4 ~exchange_every:8 ~check
      ~seeds:[ 3; 11; 42; 99 ] par_params
      (fun _ _ -> problem)
  in
  let chain_min =
    Array.fold_left
      (fun acc (o : int Anneal.Sa.outcome) -> min acc o.Anneal.Sa.best_cost)
      infinity out.Anneal.Parallel.chains
  in
  Alcotest.(check (float 0.0))
    "best = min over chain bests" chain_min out.Anneal.Parallel.best_cost;
  Alcotest.(check bool) "sanitizer ran" true (Atomic.get checks > 0);
  Alcotest.(check bool)
    "winner holds the best" true
    (out.Anneal.Parallel.chains.(out.Anneal.Parallel.winner).Anneal.Sa.best_cost
    = out.Anneal.Parallel.best_cost);
  Alcotest.(check bool) "evaluations counted" true
    (out.Anneal.Parallel.evaluated > 0)

(* At workers:1 the async chains run sequentially in seed order, so
   even with exchange on the race is a pure function of the seeds. *)
let test_async_single_worker_deterministic () =
  let go () =
    Anneal.Parallel.run_async ~workers:1 ~exchange_every:8 ~seeds:[ 5; 6; 7 ]
      par_params
      (fun _ _ -> problem)
  in
  let a = go () and b = go () in
  Alcotest.(check (float 0.0))
    "same seeds same cost" a.Anneal.Parallel.best_cost
    b.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "same winner" a.Anneal.Parallel.winner b.Anneal.Parallel.winner

(* The draw-equivalent mutable problem must agree with the functional
   one in async mode too, where exchange publishes mbest_copy
   snapshots instead of immutable states. *)
let test_async_mutable_matches_functional () =
  let seeds = [ 3; 11; 42; 99 ] in
  let f =
    Anneal.Parallel.run_async ~workers:2 ~exchange_every:0 ~seeds par_params
      (fun _ _ -> problem)
  in
  let m =
    Anneal.Parallel.run_mutable_async ~workers:2 ~exchange_every:0 ~seeds
      par_params
      (fun _ _ -> mproblem ())
  in
  Alcotest.(check int)
    "same best" f.Anneal.Parallel.best m.Anneal.Parallel.best.(0);
  Alcotest.(check (float 0.0))
    "same cost" f.Anneal.Parallel.best_cost m.Anneal.Parallel.best_cost;
  Alcotest.(check int)
    "same evaluations" f.Anneal.Parallel.evaluated m.Anneal.Parallel.evaluated

(* ANALOG_WORKERS: parse/clamp behavior of the worker-count default.
   Unix.putenv mutates the live environment, so restore it per case. *)
let with_env value f =
  let prev = Sys.getenv_opt "ANALOG_WORKERS" in
  Unix.putenv "ANALOG_WORKERS" value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "ANALOG_WORKERS" (Option.value prev ~default:""))
    f

let test_parse_workers () =
  let check label input expected =
    Alcotest.(check (option int)) label expected (Anneal.Parallel.parse_workers input)
  in
  check "plain" "4" (Some 4);
  check "trimmed" "  8 " (Some 8);
  check "clamped to 1" "0" (Some 1);
  check "negative clamped" "-3" (Some 1);
  check "garbage" "lots" None;
  check "empty" "" None;
  check "float rejected" "2.5" None

let test_default_workers_env () =
  with_env "3" (fun () ->
      Alcotest.(check int) "env honoured" 3 (Anneal.Parallel.default_workers ()));
  with_env "-2" (fun () ->
      Alcotest.(check int)
        "clamped to at least 1" 1
        (Anneal.Parallel.default_workers ()));
  with_env "nonsense" (fun () ->
      Alcotest.(check int)
        "unparsable falls back to hardware"
        (Domain.recommended_domain_count ())
        (Anneal.Parallel.default_workers ()));
  with_env "" (fun () ->
      Alcotest.(check int)
        "empty falls back to hardware"
        (Domain.recommended_domain_count ())
        (Anneal.Parallel.default_workers ()))

(* --- the persistent worker pool ------------------------------------ *)

let test_pool_runs_all_jobs () =
  List.iter
    (fun workers ->
      Anneal.Pool.with_pool ~workers (fun pool ->
          let n = 37 in
          let hits = Array.make n 0 in
          Anneal.Pool.run pool
            (Array.init n (fun i () -> hits.(i) <- hits.(i) + 1));
          Alcotest.(check bool)
            (Printf.sprintf "every job ran once at %d workers" workers)
            true
            (Array.for_all (( = ) 1) hits)))
    [ 1; 2; 4 ]

let test_pool_persists_across_barriers () =
  Anneal.Pool.with_pool ~workers:3 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 5 do
        Anneal.Pool.run pool
          (Array.init 8 (fun _ () -> Atomic.incr total))
      done;
      Alcotest.(check int) "five barriers on one pool" 40 (Atomic.get total));
  Alcotest.(check pass) "shutdown clean" () ()

let test_pool_sequential_order () =
  (* workers:1 spawns no domain: jobs run inline in submission order *)
  Anneal.Pool.with_pool ~workers:1 (fun pool ->
      Alcotest.(check int) "clamped count" 1 (Anneal.Pool.workers pool);
      let order = ref [] in
      Anneal.Pool.run pool (Array.init 5 (fun i () -> order := i :: !order));
      Alcotest.(check (list int)) "submission order" [ 0; 1; 2; 3; 4 ]
        (List.rev !order))

exception Boom of int

let test_pool_reraises_failure () =
  List.iter
    (fun workers ->
      Anneal.Pool.with_pool ~workers (fun pool ->
          let ran = Atomic.make 0 in
          (try
             Anneal.Pool.run pool
               [|
                 (fun () -> Atomic.incr ran);
                 (fun () -> raise (Boom 1));
                 (fun () -> Atomic.incr ran);
               |];
             Alcotest.fail "drain swallowed the job exception"
           with Boom 1 -> ());
          Alcotest.(check bool)
            "failure flag cleared after drain" false
            (Anneal.Pool.failed pool);
          Alcotest.(check int)
            (Printf.sprintf "remaining jobs still ran at %d workers" workers)
            2 (Atomic.get ran);
          (* the pool survives a failed batch *)
          let ok = ref false in
          Anneal.Pool.run pool [| (fun () -> ok := true) |];
          Alcotest.(check bool) "usable after failure" true !ok))
    [ 1; 3 ]

let test_pool_submit_after_shutdown () =
  let pool = Anneal.Pool.create ~workers:2 in
  Anneal.Pool.shutdown pool;
  Anneal.Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      Anneal.Pool.submit pool (fun () -> ()))

(* --- the elite pool ------------------------------------------------- *)

let test_elite_publish_pull () =
  let e = Anneal.Elite.create () in
  Alcotest.(check bool) "empty best" true (Anneal.Elite.best e = None);
  Alcotest.(check bool) "empty pull" true (Anneal.Elite.pull e ~than:0.0 = None);
  Alcotest.(check bool) "first publish improves" true
    (Anneal.Elite.publish e ~origin:0 ~cost:5.0 "a");
  Alcotest.(check bool) "worse publish does not" false
    (Anneal.Elite.publish e ~origin:1 ~cost:7.0 "b");
  Alcotest.(check bool) "better publish does" true
    (Anneal.Elite.publish e ~origin:1 ~cost:3.0 "c");
  (match Anneal.Elite.best e with
  | Some { Anneal.Elite.cost; state; origin } ->
      Alcotest.(check (float 0.0)) "best cost" 3.0 cost;
      Alcotest.(check string) "best state" "c" state;
      Alcotest.(check int) "best origin" 1 origin
  | None -> Alcotest.fail "best lost");
  (* strict comparison: a chain sitting at the best cost pulls nothing,
     so nobody ever re-adopts their own publish *)
  Alcotest.(check bool) "pull at equal cost" true
    (Anneal.Elite.pull e ~than:3.0 = None);
  match Anneal.Elite.pull e ~than:3.5 with
  | Some { Anneal.Elite.state; _ } ->
      Alcotest.(check string) "pull below" "c" state
  | None -> Alcotest.fail "pull missed the best"

let test_elite_families () =
  let e = Anneal.Elite.create ~stripes:2 ~per_stripe:3 () in
  (* 6 publishes from one origin, capacity 3: keep the 3 best *)
  List.iter
    (fun c -> ignore (Anneal.Elite.publish e ~origin:4 ~cost:c c))
    [ 9.0; 7.0; 8.0; 2.0; 6.0; 4.0 ];
  Alcotest.(check int) "per-stripe cap" 3 (Anneal.Elite.size e);
  (match Anneal.Elite.entries e with
  | { Anneal.Elite.cost = c0; _ } :: { Anneal.Elite.cost = c1; _ }
    :: { Anneal.Elite.cost = c2; _ } :: [] ->
      Alcotest.(check (float 0.0)) "best first" 2.0 c0;
      Alcotest.(check (float 0.0)) "then 4" 4.0 c1;
      Alcotest.(check (float 0.0)) "then 6" 6.0 c2
  | l -> Alcotest.failf "expected 3 entries, got %d" (List.length l));
  (* a second origin lands on its own stripe and keeps its own family *)
  ignore (Anneal.Elite.publish e ~origin:5 ~cost:5.0 5.0);
  Alcotest.(check int) "two families" 4 (Anneal.Elite.size e);
  match Anneal.Elite.best e with
  | Some { Anneal.Elite.cost; _ } ->
      Alcotest.(check (float 0.0)) "global best survives" 2.0 cost
  | None -> Alcotest.fail "best lost"

let test_elite_concurrent_publish () =
  (* hammer one pool from several domains; the global best must end up
     as the true minimum and every retained entry must be consistent *)
  let e = Anneal.Elite.create ~stripes:4 ~per_stripe:2 () in
  Anneal.Pool.with_pool ~workers:4 (fun pool ->
      Anneal.Pool.run pool
        (Array.init 4 (fun d () ->
             for i = 0 to 99 do
               let cost = float_of_int (((d * 100) + i) mod 251) in
               ignore (Anneal.Elite.publish e ~origin:d ~cost (cost, d))
             done)));
  (match Anneal.Elite.best e with
  | Some { Anneal.Elite.cost; state = c, _; _ } ->
      Alcotest.(check (float 0.0)) "true minimum" 0.0 cost;
      Alcotest.(check (float 0.0)) "state consistent with cost" cost c
  | None -> Alcotest.fail "no best after 400 publishes");
  List.iter
    (fun { Anneal.Elite.cost; state = c, _; _ } ->
      Alcotest.(check (float 0.0)) "no torn entry" cost c)
    (Anneal.Elite.entries e)

let () =
  Alcotest.run "anneal"
    [
      ( "schedule",
        [
          Alcotest.test_case "geometric" `Quick test_schedule_geometric;
          Alcotest.test_case "adaptive" `Quick test_schedule_adaptive;
        ] );
      ( "sa",
        [
          Alcotest.test_case "minimizes" `Quick test_sa_minimizes;
          Alcotest.test_case "estimate t0" `Quick test_estimate_t0;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "mutable engine replays functional" `Quick
            test_mutable_matches_functional;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "workers=1 replays Sa.run" `Quick
            test_parallel_solo_matches_run;
          Alcotest.test_case "worker-count invariant" `Quick
            test_parallel_worker_count_invariant;
          Alcotest.test_case "deterministic" `Quick test_parallel_deterministic;
          Alcotest.test_case "multi-start minimizes" `Quick
            test_parallel_multistart_minimizes;
          Alcotest.test_case "mutable replays functional" `Quick
            test_parallel_mutable_matches_functional;
          Alcotest.test_case "mutable worker-count invariant" `Quick
            test_parallel_mutable_worker_invariant;
          Alcotest.test_case "ANALOG_WORKERS parser" `Quick test_parse_workers;
          Alcotest.test_case "ANALOG_WORKERS default" `Quick
            test_default_workers_env;
          QCheck_alcotest.to_alcotest prop_parallel_worker_invariant;
        ] );
      ( "async",
        [
          Alcotest.test_case "restarts match solo runs" `Quick
            test_async_restarts_match_solo;
          Alcotest.test_case "exchange keeps invariants" `Quick
            test_async_exchange_sane;
          Alcotest.test_case "single worker deterministic" `Quick
            test_async_single_worker_deterministic;
          Alcotest.test_case "mutable matches functional" `Quick
            test_async_mutable_matches_functional;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all jobs" `Quick test_pool_runs_all_jobs;
          Alcotest.test_case "persists across barriers" `Quick
            test_pool_persists_across_barriers;
          Alcotest.test_case "workers=1 runs inline in order" `Quick
            test_pool_sequential_order;
          Alcotest.test_case "re-raises job failures" `Quick
            test_pool_reraises_failure;
          Alcotest.test_case "shutdown" `Quick test_pool_submit_after_shutdown;
        ] );
      ( "elite",
        [
          Alcotest.test_case "publish/pull" `Quick test_elite_publish_pull;
          Alcotest.test_case "striped families" `Quick test_elite_families;
          Alcotest.test_case "concurrent publish" `Quick
            test_elite_concurrent_publish;
        ] );
    ]
