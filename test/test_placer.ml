let small_params =
  {
    Anneal.Sa.initial_temperature = None;
    final_temperature = 1e-2;
    moves_per_round = 60;
    schedule = Anneal.Schedule.default;
    frozen_rounds = 4;
    max_rounds = 40;
  }

let tiny_circuit () =
  Netlist.Circuit.make ~name:"tiny"
    ~modules:
      [
        Netlist.Circuit.block ~name:"a" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"b" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"c" ~w:4 ~h:12;
        Netlist.Circuit.block ~name:"d" ~w:8 ~h:8;
        Netlist.Circuit.block ~name:"e" ~w:6 ~h:6;
      ]
    ~nets:
      [
        Netlist.Net.make ~name:"n1" ~pins:[ 0; 1 ] ();
        Netlist.Net.make ~name:"n2" ~pins:[ 2; 3; 4 ] ();
      ]

let test_validate () =
  let c = tiny_circuit () in
  let good =
    List.mapi
      (fun i (w, h) ->
        Geometry.Transform.place ~cell:i ~x:(i * 12) ~y:0 ~w ~h
          ~orient:Geometry.Orientation.R0)
      [ (10, 6); (10, 6); (4, 12); (8, 8); (6, 6) ]
  in
  Alcotest.(check bool) "valid placement accepted" true
    (Result.is_ok (Placer.Placement.validate (Placer.Placement.make c good)));
  let missing = List.tl good in
  Alcotest.(check bool) "missing module caught" true
    (Result.is_error
       (Placer.Placement.validate (Placer.Placement.make c missing)));
  let negative =
    Geometry.Transform.place ~cell:0 ~x:(-1) ~y:0 ~w:10 ~h:6
      ~orient:Geometry.Orientation.R0
    :: List.tl good
  in
  Alcotest.(check bool) "negative coordinate caught" true
    (Result.is_error
       (Placer.Placement.validate (Placer.Placement.make c negative)))

let test_metrics () =
  let c = tiny_circuit () in
  let placed =
    List.mapi
      (fun i (w, h) ->
        Geometry.Transform.place ~cell:i ~x:(i * 12) ~y:0 ~w ~h
          ~orient:Geometry.Orientation.R0)
      [ (10, 6); (10, 6); (4, 12); (8, 8); (6, 6) ]
  in
  let p = Placer.Placement.make c placed in
  Alcotest.(check int) "width" 54 (Placer.Placement.width p);
  Alcotest.(check int) "height" 12 (Placer.Placement.height p);
  Alcotest.(check bool) "hpwl positive" true (Placer.Placement.hpwl p > 0.0);
  Alcotest.(check bool) "dead space positive" true
    (Placer.Placement.dead_space p > 0)

let test_sa_seqpair_flat () =
  let rng = Prelude.Rng.create 1 in
  let out = Placer.Sa_seqpair.place ~params:small_params ~rng (tiny_circuit ()) in
  match Placer.Placement.validate out.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_sa_seqpair_symmetric () =
  let rng = Prelude.Rng.create 2 in
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let out =
    Placer.Sa_seqpair.place ~params:small_params ~groups:[ grp ] ~rng
      (tiny_circuit ())
  in
  (match Placer.Placement.validate out.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  match
    Constraints.Placement_check.symmetry ~group:grp
      out.Placer.Sa_seqpair.placement.Placer.Placement.placed
  with
  | Ok _ -> ()
  | Error v ->
      Alcotest.failf "SA result not symmetric: %a"
        Constraints.Placement_check.pp_violation v

let test_sa_bstar () =
  let rng = Prelude.Rng.create 3 in
  let out = Placer.Sa_bstar.place ~params:small_params ~rng (tiny_circuit ()) in
  match Placer.Placement.validate out.Placer.Sa_bstar.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_slicing_normalized () =
  let open Placer.Slicing in
  Alcotest.(check bool) "valid" true
    (is_normalized [ Operand 0; Operand 1; V; Operand 2; H ]);
  Alcotest.(check bool) "balloting violated" false
    (is_normalized [ Operand 0; V; Operand 1; Operand 2; H ]);
  Alcotest.(check bool) "double operator" false
    (is_normalized [ Operand 0; Operand 1; V; Operand 2; V; V ]);
  Alcotest.(check bool) "adjacent same ops" false
    (is_normalized [ Operand 0; Operand 1; Operand 2; H; H ]);
  Alcotest.(check bool) "skewed chain with separating operand ok" true
    (is_normalized [ Operand 0; Operand 1; H; Operand 2; H ]);
  Alcotest.(check bool) "single operand" true (is_normalized [ Operand 0 ]);
  Alcotest.(check bool) "empty invalid" false (is_normalized [])

let test_slicing_place () =
  let rng = Prelude.Rng.create 4 in
  let out = Placer.Slicing.place ~params:small_params ~rng (tiny_circuit ()) in
  match Placer.Placement.validate out.Placer.Slicing.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_sa_improves () =
  (* annealing should beat the un-annealed initial packing on average *)
  let c = Netlist.Benchmarks.synthetic ~label:"s" ~n:12 ~seed:77 in
  let rng = Prelude.Rng.create 5 in
  let out =
    Placer.Sa_seqpair.place ~params:small_params ~rng
      c.Netlist.Benchmarks.circuit
  in
  let total = Netlist.Circuit.total_module_area c.Netlist.Benchmarks.circuit in
  let usage =
    float_of_int (Placer.Placement.area out.Placer.Sa_seqpair.placement)
    /. float_of_int total
  in
  Alcotest.(check bool)
    (Printf.sprintf "area usage %.2f within 2x of ideal" usage)
    true (usage < 2.0)

let test_plot_ascii () =
  let c = tiny_circuit () in
  let placed =
    List.mapi
      (fun i (w, h) ->
        Geometry.Transform.place ~cell:i ~x:(i * 12) ~y:0 ~w ~h
          ~orient:Geometry.Orientation.R0)
      [ (10, 6); (10, 6); (4, 12); (8, 8); (6, 6) ]
  in
  let p = Placer.Placement.make c placed in
  let art = Placer.Plot.ascii ~width:40 p in
  Alcotest.(check bool) "non-empty" true (String.length art > 0);
  Alcotest.(check bool) "contains module glyph" true (String.contains art 'a');
  let svg = Placer.Plot.svg p in
  Alcotest.(check bool) "svg wellformed" true
    (String.length svg > 0
    && String.sub svg 0 4 = "<svg"
    && String.length svg >= 7
    && String.sub svg (String.length svg - 7) 6 = "</svg>")

let test_sa_absolute () =
  let rng = Prelude.Rng.create 6 in
  let out =
    Placer.Sa_absolute.place ~params:small_params ~rng (tiny_circuit ())
  in
  (* legalization must always produce a valid placement *)
  (match Placer.Placement.validate out.Placer.Sa_absolute.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "overlap reported non-negative" true
    (out.Placer.Sa_absolute.raw_overlap >= 0)

let prop_absolute_legalizes =
  QCheck.Test.make ~name:"absolute placer always legalizes" ~count:30
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let b = Netlist.Benchmarks.synthetic ~label:"a" ~n ~seed in
      let rng = Prelude.Rng.create seed in
      let out =
        Placer.Sa_absolute.place ~params:small_params ~rng
          b.Netlist.Benchmarks.circuit
      in
      Result.is_ok (Placer.Placement.validate out.Placer.Sa_absolute.placement))

let test_compact_basics () =
  let c = tiny_circuit () in
  (* placement with obvious slack *)
  let placed =
    List.mapi
      (fun i (w, h) ->
        Geometry.Transform.place ~cell:i ~x:((i * 20) + 5) ~y:10 ~w ~h
          ~orient:Geometry.Orientation.R0)
      [ (10, 6); (10, 6); (4, 12); (8, 8); (6, 6) ]
  in
  let p = Placer.Placement.make c placed in
  let q = Placer.Compact.compact p in
  Alcotest.(check bool) "still valid" true
    (Result.is_ok (Placer.Placement.validate q));
  Alcotest.(check bool) "area shrank" true
    (Placer.Placement.area q < Placer.Placement.area p);
  Alcotest.(check bool) "relations preserved by x pass" true
    (Placer.Compact.preserves p (Placer.Compact.compact_x p));
  Alcotest.(check int) "row compacts to zero slack" 38
    (Placer.Placement.width (Placer.Compact.compact_x p))

let prop_compact_never_grows =
  QCheck.Test.make ~name:"compaction keeps validity, never grows" ~count:150
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Prelude.Rng.create seed in
      let b = Netlist.Benchmarks.synthetic ~label:"c" ~n ~seed in
      let c = b.Netlist.Benchmarks.circuit in
      (* random valid placement from a random sequence-pair *)
      let sp = Seqpair.Sp.random rng n in
      (* spread it out to create slack *)
      let placed =
        List.map
          (fun (p : Geometry.Transform.placed) ->
            Geometry.Transform.translate p
              ~dx:(Prelude.Rng.int rng 40)
              ~dy:(Prelude.Rng.int rng 40))
          (Seqpair.Pack.pack sp (Netlist.Circuit.dims c))
      in
      let p = Placer.Placement.make c placed in
      if Result.is_error (Placer.Placement.validate p) then true
      else
        let q = Placer.Compact.compact p in
        Result.is_ok (Placer.Placement.validate q)
        && Placer.Placement.area q <= Placer.Placement.area p)

let test_finishing_well () =
  let rects =
    [
      Geometry.Rect.make ~x:10 ~y:10 ~w:20 ~h:10;
      Geometry.Rect.make ~x:30 ~y:10 ~w:10 ~h:25;
    ]
  in
  let well = Geometry.Guard_ring.well ~clearance:5 rects in
  Alcotest.(check bool) "nonempty" true (well <> []);
  (* every cell inside the well union *)
  (* well rects are disjoint, so summed intersections measure coverage *)
  List.iter
    (fun cell ->
      let inter =
        List.fold_left
          (fun acc w -> acc + Geometry.Rect.intersection_area cell w)
          0 well
      in
      Alcotest.(check int) "cell fully in well" (Geometry.Rect.area cell) inter)
    rects

let test_rect_of_index () =
  let c = tiny_circuit () in
  let sizes = [ (10, 6); (10, 6); (4, 12); (8, 8); (6, 6) ] in
  let placed =
    List.mapi
      (fun i (w, h) ->
        Geometry.Transform.place ~cell:i ~x:(i * 12) ~y:0 ~w ~h
          ~orient:Geometry.Orientation.R0)
      sizes
  in
  let p = Placer.Placement.make c placed in
  List.iteri
    (fun i (w, _) ->
      match Placer.Placement.rect_of p i with
      | Some r ->
          Alcotest.(check int) "x" (i * 12) r.Geometry.Rect.x;
          Alcotest.(check int) "w" w r.Geometry.Rect.w
      | None -> Alcotest.failf "cell %d not indexed" i)
    sizes;
  Alcotest.(check bool) "negative id" true
    (Placer.Placement.rect_of p (-1) = None);
  Alcotest.(check bool) "past the end" true
    (Placer.Placement.rect_of p 5 = None);
  (* partial placements leave the missing cells unindexed *)
  let partial = Placer.Placement.make c (List.tl placed) in
  Alcotest.(check bool) "unplaced cell" true
    (Placer.Placement.rect_of partial 0 = None)

(* The arena must agree with the list-based cost path to the last
   bit: both delegate to Cost.compose over identical coordinates. *)
let test_eval_cost_parity () =
  let b = Netlist.Benchmarks.synthetic ~label:"e" ~n:15 ~seed:21 in
  let c = b.Netlist.Benchmarks.circuit in
  let arena = Placer.Eval.create c in
  let weights = Placer.Cost.default in
  let rng = Prelude.Rng.create 9 in
  let n = Netlist.Circuit.size c in
  for _ = 1 to 50 do
    let sp = Seqpair.Sp.random rng n in
    let rot = Array.init n (fun _ -> Prelude.Rng.int rng 2 = 0) in
    let arena_cost = Placer.Eval.cost_seqpair arena weights sp ~rot in
    let dims cell =
      let w, h = Netlist.Circuit.dims c cell in
      if rot.(cell) then (h, w) else (w, h)
    in
    let reference =
      Placer.Cost.evaluate weights
        (Placer.Placement.make c (Seqpair.Pack.pack_fast sp dims))
    in
    Alcotest.(check (float 0.0)) "arena = list cost" reference arena_cost
  done

let test_eval_cost_parity_symmetric () =
  let c = tiny_circuit () in
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let arena = Placer.Eval.create c in
  let weights = Placer.Cost.default in
  let rng = Prelude.Rng.create 10 in
  let n = Netlist.Circuit.size c in
  for _ = 1 to 50 do
    let sp = Seqpair.Symmetry.random_feasible rng ~n [ grp ] in
    let rot = Array.make n false in
    let arena_cost =
      Placer.Eval.cost_seqpair arena weights ~groups:[ grp ] sp ~rot
    in
    let placed =
      match
        Seqpair.Symmetry.pack_symmetric sp (Netlist.Circuit.dims c) [ grp ]
      with
      | Ok placed -> placed
      | Error m -> Alcotest.fail m
    in
    let reference =
      Placer.Cost.evaluate weights (Placer.Placement.make c placed)
    in
    Alcotest.(check (float 0.0))
      "symmetric arena = list cost" reference arena_cost
  done

let test_eval_cost_placed_parity () =
  let b = Netlist.Benchmarks.synthetic ~label:"p" ~n:12 ~seed:33 in
  let c = b.Netlist.Benchmarks.circuit in
  let arena = Placer.Eval.create c in
  let weights = Placer.Cost.default in
  let rng = Prelude.Rng.create 11 in
  let n = Netlist.Circuit.size c in
  for _ = 1 to 50 do
    let tree = Bstar.Tree.random rng (List.init n Fun.id) in
    let placed = Bstar.Tree.pack tree (Netlist.Circuit.dims c) in
    let arena_cost = Placer.Eval.cost_placed arena weights placed in
    let reference =
      Placer.Cost.evaluate weights (Placer.Placement.make c placed)
    in
    Alcotest.(check (float 0.0)) "placed arena = list cost" reference arena_cost
  done

let test_eval_cost_bstar_parity () =
  let b = Netlist.Benchmarks.synthetic ~label:"f" ~n:12 ~seed:44 in
  let c = b.Netlist.Benchmarks.circuit in
  let arena = Placer.Eval.create c in
  let weights = Placer.Cost.default in
  let rng = Prelude.Rng.create 12 in
  let n = Netlist.Circuit.size c in
  (* walk a flat tree through random O(1) perturbations so the parity
     covers annealing states, not just freshly converted trees *)
  let flat = Bstar.Flat.of_tree (Bstar.Tree.random rng (List.init n Fun.id)) in
  for _ = 1 to 50 do
    ignore (Bstar.Flat.perturb rng flat);
    let rot = Array.init n (fun _ -> Prelude.Rng.int rng 2 = 0) in
    let arena_cost = Placer.Eval.cost_bstar arena weights flat ~rot in
    let dims cell =
      let w, h = Netlist.Circuit.dims c cell in
      if rot.(cell) then (h, w) else (w, h)
    in
    let reference =
      Placer.Cost.evaluate weights
        (Placer.Placement.make c
           (Bstar.Tree.pack (Bstar.Flat.to_tree flat) dims))
    in
    Alcotest.(check (float 0.0)) "bstar arena = list cost" reference arena_cost
  done

let test_sa_seqpair_parallel () =
  let c = tiny_circuit () in
  let place workers =
    Placer.Sa_seqpair.place ~params:small_params ~workers ~chains:3
      ~rng:(Prelude.Rng.create 7) c
  in
  let a = place 1 and b = place 2 in
  Alcotest.(check (float 0.0))
    "worker count does not change the result" a.Placer.Sa_seqpair.cost
    b.Placer.Sa_seqpair.cost;
  (match Placer.Placement.validate a.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "chains counted" true
    (a.Placer.Sa_seqpair.evaluated > 0)

let test_sa_bstar_parallel () =
  let c = tiny_circuit () in
  let place workers =
    Placer.Sa_bstar.place ~params:small_params ~workers ~chains:2
      ~rng:(Prelude.Rng.create 8) c
  in
  let a = place 1 and b = place 2 in
  Alcotest.(check (float 0.0))
    "worker count does not change the result" a.Placer.Sa_bstar.cost
    b.Placer.Sa_bstar.cost;
  match Placer.Placement.validate a.Placer.Sa_bstar.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Async (free-running) placement. At workers:1 the first async chain
   replays the single-chain run exactly — its own publishes are never
   pulled back — so the multi-start best is provably at least as good
   as the chains:1 baseline on the same caller seed. The workers:2
   run crosses real domains with the move-level sanitizer on. *)
let test_sa_seqpair_async () =
  let c = tiny_circuit () in
  let base =
    Placer.Sa_seqpair.place ~params:small_params ~chains:1 ~workers:1
      ~rng:(Prelude.Rng.create 7) c
  in
  let solo =
    Placer.Sa_seqpair.place ~params:small_params ~mode:`Async ~chains:3
      ~workers:1 ~validate:true
      ~rng:(Prelude.Rng.create 7) c
  in
  Alcotest.(check bool)
    "multi-start at least as good as single-chain baseline" true
    (solo.Placer.Sa_seqpair.cost <= base.Placer.Sa_seqpair.cost);
  (match Placer.Placement.validate solo.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let free =
    Placer.Sa_seqpair.place ~params:small_params ~mode:`Async ~chains:4
      ~workers:2 ~validate:true
      ~rng:(Prelude.Rng.create 7) c
  in
  (match Placer.Placement.validate free.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "all chains counted" true
    (free.Placer.Sa_seqpair.evaluated > solo.Placer.Sa_seqpair.evaluated / 2)

let test_sa_seqpair_async_symmetric () =
  let c = tiny_circuit () in
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let out =
    Placer.Sa_seqpair.place ~params:small_params ~groups:[ grp ] ~mode:`Async
      ~chains:2 ~workers:2 ~validate:true
      ~rng:(Prelude.Rng.create 9) c
  in
  (* validate:true audits symmetric feasibility of every published
     state on the publishing domain; reaching here means it held *)
  match Placer.Placement.validate out.Placer.Sa_seqpair.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_sa_bstar_async () =
  let c = tiny_circuit () in
  let base =
    Placer.Sa_bstar.place ~params:small_params ~chains:1 ~workers:1
      ~rng:(Prelude.Rng.create 8) c
  in
  let solo =
    Placer.Sa_bstar.place ~params:small_params ~mode:`Async ~chains:3
      ~workers:1 ~validate:true
      ~rng:(Prelude.Rng.create 8) c
  in
  Alcotest.(check bool)
    "multi-start at least as good as single-chain baseline" true
    (solo.Placer.Sa_bstar.cost <= base.Placer.Sa_bstar.cost);
  let free =
    Placer.Sa_bstar.place ~params:small_params ~mode:`Async ~chains:4
      ~workers:2 ~validate:true
      ~rng:(Prelude.Rng.create 8) c
  in
  match Placer.Placement.validate free.Placer.Sa_bstar.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_sa_tcg_parallel () =
  let c = tiny_circuit () in
  let place workers =
    Placer.Sa_tcg.place ~params:small_params ~workers ~chains:2
      ~rng:(Prelude.Rng.create 4) c
  in
  let a = place 1 and b = place 2 in
  Alcotest.(check (float 0.0))
    "worker count does not change the result" a.Placer.Sa_tcg.cost
    b.Placer.Sa_tcg.cost;
  (match Placer.Placement.validate a.Placer.Sa_tcg.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let free =
    Placer.Sa_tcg.place ~params:small_params ~mode:`Async ~chains:2 ~workers:2
      ~validate:true
      ~rng:(Prelude.Rng.create 4) c
  in
  match Placer.Placement.validate free.Placer.Sa_tcg.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* The heterogeneous portfolio race. *)
let test_portfolio_race () =
  let b = Netlist.Benchmarks.synthetic ~label:"pf" ~n:10 ~seed:55 in
  let c = b.Netlist.Benchmarks.circuit in
  let go () =
    Placer.Portfolio.race ~params:small_params ~workers:1 ~validate:true
      ~rng:(Prelude.Rng.create 13) c
  in
  let out = go () in
  (match Placer.Placement.validate out.Placer.Portfolio.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* n = 10, no groups, no hierarchy: sp, bstar and tcg all enter *)
  Alcotest.(check int) "three engines entered" 3
    (List.length out.Placer.Portfolio.entrants);
  let entrant_min =
    List.fold_left
      (fun acc (e : Placer.Portfolio.entrant) -> min acc e.Placer.Portfolio.cost)
      infinity out.Placer.Portfolio.entrants
  in
  Alcotest.(check (float 0.0))
    "outcome is the best entrant's cost" entrant_min out.Placer.Portfolio.cost;
  Alcotest.(check bool) "winner actually entered" true
    (List.exists
       (fun (e : Placer.Portfolio.entrant) ->
         e.Placer.Portfolio.engine = out.Placer.Portfolio.winner)
       out.Placer.Portfolio.entrants);
  Alcotest.(check bool) "evaluations counted" true
    (out.Placer.Portfolio.evaluated > 0);
  (* at workers:1 the race is sequential in entrant order, so the
     outcome is a pure function of the caller seed *)
  let again = go () in
  Alcotest.(check (float 0.0))
    "deterministic at workers:1" out.Placer.Portfolio.cost
    again.Placer.Portfolio.cost

let test_portfolio_bar () =
  let b = Netlist.Benchmarks.synthetic ~label:"pb" ~n:8 ~seed:66 in
  let c = b.Netlist.Benchmarks.circuit in
  (* an infinitely generous QoR bar: the first publish wins the race —
     at workers:1 that is the first entrant, sequence-pair *)
  let out =
    Placer.Portfolio.race ~params:small_params ~workers:1 ~bar:infinity
      ~rng:(Prelude.Rng.create 3) c
  in
  Alcotest.(check bool) "first past the bar wins" true
    (out.Placer.Portfolio.winner = Placer.Portfolio.Sp);
  match Placer.Placement.validate out.Placer.Portfolio.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_portfolio_symmetric () =
  let c = tiny_circuit () in
  let grp = Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
  let out =
    Placer.Portfolio.race ~params:small_params ~groups:[ grp ] ~workers:1
      ~chains:2 ~validate:true
      ~rng:(Prelude.Rng.create 21) c
  in
  (* with symmetry groups only the sequence-pair arm may enter by
     default — the other representations cannot hold the constraint *)
  Alcotest.(check int) "sp chains only" 2
    (List.length out.Placer.Portfolio.entrants);
  Alcotest.(check bool) "sp wins by default" true
    (out.Placer.Portfolio.winner = Placer.Portfolio.Sp);
  match Placer.Placement.validate out.Placer.Portfolio.placement with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_portfolio_rejects_bad_configs () =
  let c = tiny_circuit () in
  Alcotest.check_raises "empty engine list"
    (Invalid_argument "Portfolio.race: empty engine list") (fun () ->
      ignore
        (Placer.Portfolio.race ~engines:[] ~rng:(Prelude.Rng.create 1) c));
  Alcotest.check_raises "Esf without hierarchy"
    (Invalid_argument "Portfolio.race: Esf entrant needs ?hierarchy") (fun () ->
      ignore
        (Placer.Portfolio.race ~params:small_params
           ~engines:[ Placer.Portfolio.Esf ]
           ~rng:(Prelude.Rng.create 1) c))

let prop_slicing_moves_normalized =
  QCheck.Test.make ~name:"slicing moves stay normalized" ~count:200
    QCheck.(pair (int_range 2 12) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let expr = ref (Placer.Slicing.initial n) in
      let ok = ref (Placer.Slicing.is_normalized !expr) in
      for _ = 1 to 40 do
        expr := Placer.Slicing.neighbor rng !expr;
        if not (Placer.Slicing.is_normalized !expr) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "placer"
    [
      ( "placement",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "rect_of index" `Quick test_rect_of_index;
        ] );
      ( "eval",
        [
          Alcotest.test_case "seqpair cost parity" `Quick test_eval_cost_parity;
          Alcotest.test_case "symmetric cost parity" `Quick
            test_eval_cost_parity_symmetric;
          Alcotest.test_case "placed cost parity" `Quick
            test_eval_cost_placed_parity;
          Alcotest.test_case "bstar cost parity" `Quick
            test_eval_cost_bstar_parity;
        ] );
      ( "sa",
        [
          Alcotest.test_case "seqpair flat" `Quick test_sa_seqpair_flat;
          Alcotest.test_case "seqpair symmetric" `Quick test_sa_seqpair_symmetric;
          Alcotest.test_case "seqpair parallel" `Quick test_sa_seqpair_parallel;
          Alcotest.test_case "bstar" `Quick test_sa_bstar;
          Alcotest.test_case "bstar parallel" `Quick test_sa_bstar_parallel;
          Alcotest.test_case "tcg parallel" `Quick test_sa_tcg_parallel;
          Alcotest.test_case "improves" `Quick test_sa_improves;
        ] );
      ( "async",
        [
          Alcotest.test_case "seqpair free-running" `Quick test_sa_seqpair_async;
          Alcotest.test_case "seqpair symmetric free-running" `Quick
            test_sa_seqpair_async_symmetric;
          Alcotest.test_case "bstar free-running" `Quick test_sa_bstar_async;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "race" `Quick test_portfolio_race;
          Alcotest.test_case "QoR bar" `Quick test_portfolio_bar;
          Alcotest.test_case "symmetric" `Quick test_portfolio_symmetric;
          Alcotest.test_case "bad configs" `Quick
            test_portfolio_rejects_bad_configs;
        ] );
      ( "slicing",
        [
          Alcotest.test_case "normalized" `Quick test_slicing_normalized;
          Alcotest.test_case "place" `Quick test_slicing_place;
        ] );
      ( "plot",
        [ Alcotest.test_case "ascii/svg" `Quick test_plot_ascii ] );
      ( "compact",
        [ Alcotest.test_case "basics" `Quick test_compact_basics ] );
      ( "absolute",
        [ Alcotest.test_case "legalizes" `Quick test_sa_absolute ] );
      ( "finishing",
        [ Alcotest.test_case "well generation" `Quick test_finishing_well ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_slicing_moves_normalized;
            prop_compact_never_grows;
            prop_absolute_legalizes;
          ] );
    ]
