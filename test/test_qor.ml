(* The QoR observability layer: JSON value round-trips, QoR record
   serialization, the run ledger's byte-identical write/read/re-write
   contract, the Prometheus exposition + validator pair, regression
   detection, and the Placer/Anneal extraction paths. *)

module T = Telemetry

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "qor_test_%d_%s" (Unix.getpid ()) name)

(* ---- Json ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    T.Json.Obj
      [
        ("a", T.Json.int 42);
        ("b", T.Json.float 1.5);
        ("c", T.Json.str "hi \"there\"\n");
        ("d", T.Json.Arr [ T.Json.Null; T.Json.bool true; T.Json.float 0.1 ]);
        ("e", T.Json.Obj []);
      ]
  in
  let s = T.Json.emit doc in
  (match T.Export.check_json s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emit not valid JSON: %s" e);
  match T.Json.parse s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc' ->
      Alcotest.(check string) "emit . parse . emit = emit" s (T.Json.emit doc');
      Alcotest.(check bool) "tree round-trips" true (doc = doc')

let test_json_float_lexemes () =
  let lex v = T.Json.emit (T.Json.float v) in
  Alcotest.(check string) "integral floats print as ints" "3" (lex 3.0);
  Alcotest.(check string) "negative integral" "-7" (lex (-7.0));
  Alcotest.(check string) "zero" "0" (lex 0.0);
  Alcotest.(check string) "nan clamps" "0" (lex Float.nan);
  Alcotest.(check string) "inf clamps" "1e308" (lex Float.infinity);
  (* every emitted lexeme must parse back to the same float *)
  List.iter
    (fun v ->
      match T.Json.parse (lex v) with
      | Ok j ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%h round-trips" v)
            v
            (Option.get (T.Json.to_float j))
      | Error e -> Alcotest.failf "lexeme of %h unparsable: %s" v e)
    [ 0.1; 1.0 /. 3.0; 1e-20; 123456.789; 9.007199254740993e15; 2.5e-300 ]

let test_json_parse_errors () =
  let bad s =
    match T.Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "01"; "1.2.3"; "\"unterminated"; "tru";
      "{\"a\":1} trailing"; "\"\\uD800\"" ];
  (* escapes decode *)
  match T.Json.parse "\"a\\u0041\\n\\\"\"" with
  | Ok (T.Json.Str s) -> Alcotest.(check string) "escapes" "aA\n\"" s
  | _ -> Alcotest.fail "string parse"

(* ---- Qor records ---------------------------------------------------- *)

let sample_qor () =
  T.Qor.run ~outline_fit:true
    ~violations:
      [
        { T.Qor.group = "CORE"; ckind = "symmetry"; count = 0; members = [ 0; 1 ] };
        { T.Qor.group = "CM"; ckind = "common-centroid"; count = 1; members = [ 2; 3 ] };
      ]
    ~move_rates:[ ("seqpair", 120, 80); ("rotation", 30, 70) ]
    ~cost:15345749.0 ~wall_s:0.125 ~sa_rounds:368 ~evaluated:26496
    ~area:15342200 ~width:4100 ~height:3742 ~hpwl:17745.0
    ~term_area:15342200.0 ~term_wirelength:3549.0 ~term_aspect:0.0
    ~dead_space_pct:7.975 ()

let test_qor_roundtrip () =
  let q = sample_qor () in
  let j = T.Qor.to_json q in
  let s = T.Json.emit j in
  (match T.Export.check_json s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "qor json invalid: %s" e);
  match T.Qor.of_json j with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok q' ->
      Alcotest.(check bool) "record round-trips" true (q = q');
      Alcotest.(check string) "re-emission byte-identical" s
        (T.Json.emit (T.Qor.to_json q'))

let test_qor_accessors () =
  let q = sample_qor () in
  Alcotest.(check int) "violation total" 1 (T.Qor.violation_total q);
  Alcotest.(check (float 1e-9)) "accept rate" 0.5 (T.Qor.accept_rate q);
  Alcotest.(check bool) "move rates name-sorted" true
    (q.T.Qor.move_rates = [ ("rotation", 30, 70); ("seqpair", 120, 80) ]);
  let rates =
    T.Qor.move_rates_of_counters
      [
        ("sa.moves.seqpair.accept", 7);
        ("sa.moves.seqpair.reject", 3);
        ("sa.moves.rotation.accept", 1);
        ("eval.costs", 999);
        ("sa.moves.malformed", 5);
      ]
  in
  Alcotest.(check bool) "counter extraction" true
    (rates = [ ("rotation", 1, 0); ("seqpair", 7, 3) ]);
  let bad = T.Qor.of_json (T.Json.Obj [ ("kind", T.Json.str "run") ]) in
  (match bad with
  | Error e ->
      Alcotest.(check bool) "error names the field" true (contains e "cost")
  | Ok _ -> Alcotest.fail "accepted truncated record")

let test_qor_routed_fields () =
  (* a routed run carries the router's QoR triple through JSON intact *)
  let routed =
    T.Qor.run ~routed_wl:1234 ~route_overflow:0 ~route_failed:1
      ~cost:15345749.0 ~wall_s:0.125 ~sa_rounds:368 ~evaluated:26496
      ~area:15342200 ~width:4100 ~height:3742 ~hpwl:17745.0
      ~term_area:15342200.0 ~term_wirelength:3549.0 ~term_aspect:0.0
      ~dead_space_pct:7.975 ()
  in
  (match T.Qor.of_json (T.Qor.to_json routed) with
  | Error e -> Alcotest.failf "routed of_json: %s" e
  | Ok q' ->
      Alcotest.(check bool) "routed triple preserved" true
        (q'.T.Qor.routed_wl = Some 1234
        && q'.T.Qor.route_overflow = Some 0
        && q'.T.Qor.route_failed = Some 1));
  (* a pre-router record emits no routed keys at all, so old ledgers
     and new ones are the same wire format *)
  let plain_json = T.Json.emit (T.Qor.to_json (sample_qor ())) in
  Alcotest.(check bool) "absent fields emit no keys" false
    (contains plain_json "routed_wl");
  match T.Qor.of_json (T.Qor.to_json (sample_qor ())) with
  | Error e -> Alcotest.failf "plain of_json: %s" e
  | Ok q' ->
      Alcotest.(check bool) "absent fields parse as None" true
        (q'.T.Qor.routed_wl = None
        && q'.T.Qor.route_overflow = None
        && q'.T.Qor.route_failed = None)

(* ---- Ledger --------------------------------------------------------- *)

let sample_entry ?(seed = 1) ?(qor = sample_qor ()) () =
  T.Ledger.make ~generated_at:"2026-08-05T12:00:00Z" ~git_rev:"abc1234"
    ~chain_qors:
      [ T.Qor.chain ~move_rates:[ ("seqpair", 5, 5) ] ~cost:1.5 ~wall_s:0.01
          ~sa_rounds:10 ~evaluated:100 () ]
    ~placement:
      [
        { T.Ledger.cell = "a"; x = 0; y = 0; w = 10; h = 6 };
        { T.Ledger.cell = "b"; x = 10; y = 0; w = 10; h = 6 };
      ]
    ~label:"miller" ~netlist_hash:"27086a14fdb1f99d" ~engine:"sp" ~seed
    ~schedule:"geometric(0.95)" ~workers:1 ~chains:1 ~qor ()

let test_ledger_routed_roundtrip () =
  (* a ledger line whose QoR carries routed fields must write -> read
     -> re-write byte-identically, like every other entry *)
  let routed =
    T.Qor.run ~routed_wl:831 ~route_overflow:0 ~route_failed:0
      ~cost:776881.0 ~wall_s:0.2 ~sa_rounds:0 ~evaluated:0 ~area:775971
      ~width:1017 ~height:763 ~hpwl:4550.0 ~term_area:775971.0
      ~term_wirelength:910.0 ~term_aspect:0.0 ~dead_space_pct:2.1 ()
  in
  let e = sample_entry ~qor:routed () in
  let line = T.Ledger.to_line e in
  (match T.Export.check_json line with
  | Ok () -> ()
  | Error err -> Alcotest.failf "routed line invalid JSON: %s" err);
  match T.Ledger.of_line line with
  | Error err -> Alcotest.failf "of_line: %s" err
  | Ok e' ->
      Alcotest.(check bool) "routed entry round-trips" true (e = e');
      Alcotest.(check string) "re-emission byte-identical" line
        (T.Ledger.to_line e')

let test_ledger_roundtrip () =
  let e = sample_entry () in
  let line = T.Ledger.to_line e in
  (match T.Export.check_json line with
  | Ok () -> ()
  | Error err -> Alcotest.failf "ledger line invalid JSON: %s" err);
  match T.Ledger.of_line line with
  | Error err -> Alcotest.failf "of_line: %s" err
  | Ok e' ->
      Alcotest.(check bool) "entry round-trips" true (e = e');
      Alcotest.(check string) "re-emission byte-identical" line
        (T.Ledger.to_line e')

let test_ledger_file_roundtrip () =
  let path = tmp_path "ledger.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  let e1 = sample_entry ~seed:1 () and e2 = sample_entry ~seed:2 () in
  (match T.Ledger.append path e1 with Ok () -> () | Error m -> Alcotest.fail m);
  (match T.Ledger.append path e2 with Ok () -> () | Error m -> Alcotest.fail m);
  let original = In_channel.with_open_bin path In_channel.input_all in
  (match T.Ledger.read path with
  | Error m -> Alcotest.fail m
  | Ok entries ->
      Alcotest.(check int) "both entries read" 2 (List.length entries);
      (* write -> read -> re-write must reproduce the file byte for byte *)
      let rewritten =
        String.concat ""
          (List.map (fun e -> T.Ledger.to_line e ^ "\n") entries)
      in
      Alcotest.(check string) "file round-trip byte-identical" original
        rewritten);
  (match T.Ledger.last ~n:1 path with
  | Ok [ e ] -> Alcotest.(check int) "last keeps newest" 2 e.T.Ledger.seed
  | Ok _ -> Alcotest.fail "last ~n:1 returned wrong count"
  | Error m -> Alcotest.fail m);
  (match T.Ledger.read (tmp_path "absent.jsonl") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "read of missing file succeeded");
  Sys.remove path

let test_ledger_rejects_bad_lines () =
  let path = tmp_path "bad.jsonl" in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (T.Ledger.to_line (sample_entry ()) ^ "\nnot json\n"));
  (match T.Ledger.read path with
  | Error m ->
      Alcotest.(check bool) "error carries line number" true (contains m ":2:")
  | Ok _ -> Alcotest.fail "accepted malformed line");
  Sys.remove path

(* ---- Prom ----------------------------------------------------------- *)

let test_prom_render_and_check () =
  let s = T.Sink.create ~clock:(fun () -> 0.0) () in
  T.Counter.add (T.Sink.counter s "sa.moves.seqpair.accept") 42;
  let h = T.Sink.histogram s "eval.cost" in
  List.iter (T.Hist.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let doc = T.Prom.render s in
  (match T.Prom.check doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "own exposition rejected: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains doc needle))
    [
      "# TYPE analog_sa_moves_seqpair_accept counter";
      "analog_sa_moves_seqpair_accept 42";
      "# TYPE analog_eval_cost summary";
      "analog_eval_cost{quantile=\"0.5\"}";
      "analog_eval_cost_sum";
      "analog_eval_cost_count 4";
    ];
  Alcotest.(check string) "empty sink renders empty" "" (T.Prom.render T.Sink.null)

let test_prom_check_rejects () =
  let bad doc why =
    match T.Prom.check doc with
    | Ok () -> Alcotest.failf "validator accepted %s" why
    | Error _ -> ()
  in
  bad "analog_x 1\n" "sample without # TYPE";
  bad "# TYPE analog_x counter\nanalog_x notanumber\n" "bad value";
  bad "# TYPE analog_x flavour\nanalog_x 1\n" "unknown type";
  bad "# TYPE analog_x counter\nanalog_x{open 1\n" "malformed labels";
  bad "# HELP analog_x\n# TYPE analog_x counter\nanalog_x 1\n"
    "HELP without text";
  bad "# HELP 9bad some text\n" "HELP with invalid metric name";
  match T.Prom.check "# HELP analog_x something\n# TYPE analog_x counter\nanalog_x 1\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected valid doc: %s" e

let index_of hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let test_prom_help_lines () =
  (* every rendered family leads with # HELP, HELP precedes TYPE, and
     the service/route metrics get real prose, not the fallback *)
  let s = T.Sink.create ~clock:(fun () -> 0.0) () in
  T.Counter.add (T.Sink.counter s "service.hits") 3;
  T.Counter.add (T.Sink.counter s "route.iterations") 7;
  T.Hist.observe (T.Sink.histogram s "route.iter.pres_fac") 0.5;
  let doc = T.Prom.render s in
  (match T.Prom.check doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exposition with HELP rejected: %s" e);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains doc needle))
    [
      "# HELP analog_service_hits ";
      "# HELP analog_route_iterations ";
      "# HELP analog_route_iter_pres_fac ";
    ];
  List.iter
    (fun fam ->
      match
        ( index_of doc ("# HELP " ^ fam ^ " "),
          index_of doc ("# TYPE " ^ fam ^ " ") )
      with
      | Some h, Some t ->
          Alcotest.(check bool) (fam ^ " HELP precedes TYPE") true (h < t)
      | _ -> Alcotest.failf "%s misses HELP or TYPE" fam)
    [
      "analog_service_hits"; "analog_route_iterations";
      "analog_route_iter_pres_fac";
    ];
  Alcotest.(check bool) "service.hits HELP is prose, not the fallback" false
    (contains doc "Telemetry metric service.hits")

(* ---- Regress -------------------------------------------------------- *)

let entry_with ?(seed = 1) ~hpwl ~cost () =
  let q =
    T.Qor.run ~cost ~wall_s:0.1 ~sa_rounds:100 ~evaluated:1000 ~area:1000
      ~width:40 ~height:25 ~hpwl ~term_area:1000.0 ~term_wirelength:(0.2 *. hpwl)
      ~term_aspect:0.0 ~dead_space_pct:5.0 ()
  in
  sample_entry ~seed ~qor:q ()

let test_regress_flags_hpwl () =
  (* baseline: three identical runs; candidate: injected 10% HPWL
     regression. The 2% tolerance gate must fire and nothing else. *)
  let baseline = List.init 3 (fun _ -> entry_with ~hpwl:1000.0 ~cost:1200.0 ()) in
  let candidate = [ entry_with ~hpwl:1100.0 ~cost:1200.0 () ] in
  let v = T.Regress.compare_entries ~baseline ~candidate () in
  Alcotest.(check bool) "regression detected" false (T.Regress.ok v);
  Alcotest.(check int) "exactly one metric regressed" 1 v.T.Regress.regressions;
  let c = List.hd v.T.Regress.comparisons in
  let m =
    List.find (fun m -> m.T.Regress.mname = "hpwl") c.T.Regress.metrics
  in
  Alcotest.(check bool) "it is hpwl" true m.T.Regress.regressed;
  Alcotest.(check bool) "report names it" true
    (contains (T.Regress.render v) "REGRESSION")

let test_regress_to_json () =
  let baseline =
    List.init 3 (fun _ -> entry_with ~hpwl:1000.0 ~cost:1200.0 ())
  in
  let candidate = [ entry_with ~hpwl:1100.0 ~cost:1200.0 () ] in
  let v = T.Regress.compare_entries ~baseline ~candidate () in
  let doc = T.Json.emit (T.Regress.to_json v) in
  match T.Json.parse doc with
  | Error e -> Alcotest.failf "verdict JSON does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option string))
        "verdict string" (Some "regression")
        (Option.bind (T.Json.member "verdict" j) T.Json.to_str);
      Alcotest.(check (option int))
        "regression count" (Some v.T.Regress.regressions)
        (Option.bind (T.Json.member "regressions" j) T.Json.to_int);
      let comps =
        Option.value ~default:[]
          (Option.bind (T.Json.member "comparisons" j) T.Json.to_list)
      in
      Alcotest.(check int) "one comparison" 1 (List.length comps);
      let c = List.hd comps in
      let metrics =
        Option.value ~default:[]
          (Option.bind (T.Json.member "metrics" c) T.Json.to_list)
      in
      let hpwl =
        List.find
          (fun m ->
            Option.bind (T.Json.member "name" m) T.Json.to_str = Some "hpwl")
          metrics
      in
      Alcotest.(check (option bool))
        "hpwl marked regressed" (Some true)
        (Option.bind (T.Json.member "regressed" hpwl) T.Json.to_bool)

let test_regress_identical_clean () =
  let e () = entry_with ~hpwl:1000.0 ~cost:1200.0 () in
  let v = T.Regress.compare_entries ~baseline:[ e (); e () ] ~candidate:[ e () ] () in
  Alcotest.(check bool) "identical runs diff clean" true (T.Regress.ok v);
  Alcotest.(check bool) "verdict says OK" true
    (contains (T.Regress.render v) "verdict: OK")

let test_regress_noisy_baseline_widens () =
  (* one baseline outlier above the candidate: q90 covers it, no gate *)
  let baseline =
    List.map (fun h -> entry_with ~hpwl:h ~cost:1200.0 ())
      [ 1000.0; 1000.0; 1000.0; 1000.0; 1000.0; 1000.0; 1000.0; 1000.0; 1200.0; 1200.0 ]
  in
  let candidate = [ entry_with ~hpwl:1150.0 ~cost:1200.0 () ] in
  let v = T.Regress.compare_entries ~baseline ~candidate () in
  let c = List.hd v.T.Regress.comparisons in
  let m = List.find (fun m -> m.T.Regress.mname = "hpwl") c.T.Regress.metrics in
  Alcotest.(check bool) "within baseline q90: not regressed" false
    m.T.Regress.regressed

let test_regress_keys () =
  (* different chain counts are different configurations, never compared *)
  let b = entry_with ~hpwl:1000.0 ~cost:1200.0 () in
  let cand =
    { (entry_with ~hpwl:2000.0 ~cost:2400.0 ()) with T.Ledger.chains = 4 }
  in
  let v = T.Regress.compare_entries ~baseline:[ b ] ~candidate:[ cand ] () in
  Alcotest.(check bool) "no cross-key gating" true (T.Regress.ok v);
  Alcotest.(check bool) "reported as missing baseline" true
    (List.hd v.T.Regress.comparisons).T.Regress.missing_baseline

(* ---- Export.write_file ---------------------------------------------- *)

let test_write_file () =
  let path = tmp_path "write.txt" in
  (match T.Export.write_file ~path "hello" with
  | Ok () ->
      Alcotest.(check string) "content written" "hello"
        (In_channel.with_open_bin path In_channel.input_all)
  | Error m -> Alcotest.fail m);
  Sys.remove path;
  match T.Export.write_file ~path:"/nonexistent-dir/x.txt" "y" with
  | Ok () -> Alcotest.fail "wrote through a missing directory"
  | Error msg -> Alcotest.(check bool) "message non-empty" true (msg <> "")

(* ---- extraction: Placer.Qor and Anneal.Parallel --------------------- *)

let circuit () =
  Netlist.Circuit.make ~name:"tiny"
    ~modules:
      [
        Netlist.Circuit.block ~name:"a" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"b" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"c" ~w:4 ~h:4;
        Netlist.Circuit.block ~name:"d" ~w:8 ~h:8;
      ]
    ~nets:
      [
        Netlist.Net.make ~name:"n1" ~pins:[ 0; 1 ] ();
        Netlist.Net.make ~name:"n2" ~pins:[ 1; 2; 3 ] ();
      ]

let small_params =
  {
    Anneal.Sa.initial_temperature = Some 50.0;
    final_temperature = 1e-2;
    moves_per_round = 40;
    schedule = Anneal.Schedule.default;
    frozen_rounds = 4;
    max_rounds = 25;
  }

let test_extract () =
  let c = circuit () in
  let telemetry = T.Sink.create () in
  let out =
    Placer.Sa_seqpair.place ~params:small_params ~telemetry
      ~rng:(Prelude.Rng.create 3) c
  in
  let p = out.Placer.Sa_seqpair.placement in
  let q =
    Placer.Qor.extract
      ~move_rates:(T.Qor.move_rates_of_counters (T.Sink.counters telemetry))
      ~outline:(1000, 1000) ~cost:out.Placer.Sa_seqpair.cost ~wall_s:0.1
      ~sa_rounds:out.Placer.Sa_seqpair.sa_rounds
      ~evaluated:out.Placer.Sa_seqpair.evaluated p
  in
  Alcotest.(check int) "area matches placement" (Placer.Placement.area p)
    q.T.Qor.area;
  (* terms sum back to the composed cost of the final placement *)
  let recomposed =
    q.T.Qor.term_area +. q.T.Qor.term_wirelength +. q.T.Qor.term_aspect
  in
  Alcotest.(check (float 1e-6))
    "terms sum to evaluate" (Placer.Cost.evaluate Placer.Cost.default p)
    recomposed;
  Alcotest.(check bool) "fits the huge outline" true
    (q.T.Qor.outline_fit = Some true);
  Alcotest.(check bool) "move tallies extracted" true (q.T.Qor.move_rates <> []);
  let rects = Placer.Qor.rects p in
  Alcotest.(check int) "all cells exported" 4 (List.length rects);
  Alcotest.(check bool) "cell names preserved" true
    (List.map (fun r -> r.T.Ledger.cell) rects = [ "a"; "b"; "c"; "d" ])

let test_parallel_chain_qors () =
  let telemetry = T.Sink.create () in
  let _ =
    Placer.Sa_bstar.place ~telemetry ~params:small_params ~chains:3 ~workers:2
      ~rng:(Prelude.Rng.create 11) (circuit ())
  in
  let chain_qors =
    List.filter (fun (q : T.Qor.t) -> q.T.Qor.kind = "chain")
      (T.Sink.qors telemetry)
  in
  Alcotest.(check int) "one record per chain" 3 (List.length chain_qors);
  List.iter
    (fun (q : T.Qor.t) ->
      Alcotest.(check bool) "rounds recorded" true (q.T.Qor.sa_rounds > 0);
      Alcotest.(check bool) "evaluations recorded" true (q.T.Qor.evaluated > 0);
      Alcotest.(check bool) "wall time recorded" true (q.T.Qor.wall_s > 0.0);
      Alcotest.(check bool) "move tallies recorded" true
        (q.T.Qor.move_rates <> []))
    chain_qors

let test_circuit_digest () =
  let c = circuit () in
  Alcotest.(check string) "digest deterministic" (Netlist.Circuit.digest c)
    (Netlist.Circuit.digest (circuit ()));
  let tweaked =
    Netlist.Circuit.make ~name:"tiny"
      ~modules:
        [
          Netlist.Circuit.block ~name:"a" ~w:10 ~h:7;
          Netlist.Circuit.block ~name:"b" ~w:10 ~h:6;
          Netlist.Circuit.block ~name:"c" ~w:4 ~h:4;
          Netlist.Circuit.block ~name:"d" ~w:8 ~h:8;
        ]
      ~nets:[]
  in
  Alcotest.(check bool) "content change changes digest" true
    (Netlist.Circuit.digest c <> Netlist.Circuit.digest tweaked)

let () =
  Alcotest.run "qor"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "float lexemes" `Quick test_json_float_lexemes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "qor",
        [
          Alcotest.test_case "round-trip" `Quick test_qor_roundtrip;
          Alcotest.test_case "accessors" `Quick test_qor_accessors;
          Alcotest.test_case "routed fields" `Quick test_qor_routed_fields;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "line round-trip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "routed line round-trip" `Quick
            test_ledger_routed_roundtrip;
          Alcotest.test_case "file round-trip byte-identical" `Quick
            test_ledger_file_roundtrip;
          Alcotest.test_case "bad lines rejected" `Quick
            test_ledger_rejects_bad_lines;
        ] );
      ( "prom",
        [
          Alcotest.test_case "render validates" `Quick test_prom_render_and_check;
          Alcotest.test_case "validator rejects" `Quick test_prom_check_rejects;
          Alcotest.test_case "help lines" `Quick test_prom_help_lines;
        ] );
      ( "regress",
        [
          Alcotest.test_case "flags injected hpwl regression" `Quick
            test_regress_flags_hpwl;
          Alcotest.test_case "identical runs diff clean" `Quick
            test_regress_identical_clean;
          Alcotest.test_case "noisy baseline widens band" `Quick
            test_regress_noisy_baseline_widens;
          Alcotest.test_case "chain count separates keys" `Quick
            test_regress_keys;
          Alcotest.test_case "verdict as json" `Quick test_regress_to_json;
        ] );
      ( "export",
        [ Alcotest.test_case "write_file" `Quick test_write_file ] );
      ( "extraction",
        [
          Alcotest.test_case "placer extract" `Quick test_extract;
          Alcotest.test_case "parallel chain qors" `Quick
            test_parallel_chain_qors;
          Alcotest.test_case "circuit digest" `Quick test_circuit_digest;
        ] );
    ]
