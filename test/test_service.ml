(* Placement-as-a-service: fingerprints, the multi-placement cache,
   instantiate-from-cache, verify-on-hit eviction, and the batched
   request pipeline (including the concurrent mixed-traffic stress the
   CI multicore job reruns under ANALOG_VALIDATE=1). *)

module J = Telemetry.Json
module G = Constraints.Symmetry_group

let quick_req ?outline ?(seed = 0) ?(id = "r") source =
  {
    Service.Request.id;
    source;
    outline;
    effort = Service.Fingerprint.Quick;
    seed;
  }

let result_string (resp : Service.Request.response) =
  match resp.Service.Request.body with
  | Ok body -> J.emit (Service.Request.result_json body)
  | Error e -> Alcotest.failf "expected a result, got error: %s" e

(* ---- fingerprints -------------------------------------------------- *)

let canonical_of_groups groups =
  Service.Fingerprint.canonical ~groups ~effort:Service.Fingerprint.Standard ()

let test_fingerprint_basics () =
  let c = (Netlist.Benchmarks.miller ()).Netlist.Benchmarks.circuit in
  let fp = Service.Fingerprint.make ~effort:Service.Fingerprint.Standard c in
  Alcotest.(check bool)
    "key embeds the circuit digest" true
    (String.length fp > 17
    && String.sub fp 0 16 = Netlist.Circuit.digest c);
  let fp_quick = Service.Fingerprint.make ~effort:Service.Fingerprint.Quick c in
  Alcotest.(check bool) "effort separates keys" true (fp <> fp_quick);
  let fp_seed =
    Service.Fingerprint.make ~seed:7 ~effort:Service.Fingerprint.Standard c
  in
  Alcotest.(check bool) "seed separates keys" true (fp <> fp_seed)

let test_fingerprint_outline_class () =
  let c = (Netlist.Benchmarks.miller ()).Netlist.Benchmarks.circuit in
  let key outline =
    Service.Fingerprint.make ?outline ~effort:Service.Fingerprint.Standard c
  in
  Alcotest.(check bool)
    "same class, different outline: same key" true
    (key (Some (200, 100)) = key (Some (300, 140)));
  Alcotest.(check bool)
    "wide vs square: different key" true
    (key (Some (200, 100)) <> key (Some (100, 100)));
  Alcotest.(check bool)
    "free vs fixed: different key" true
    (key None <> key (Some (100, 100)))

let test_hierarchy_signature_order_invariant () =
  let h1 =
    Netlist.Hierarchy.node "root"
      [
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Symmetry "s"
          [ Netlist.Hierarchy.Leaf 0; Netlist.Hierarchy.Leaf 1 ];
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Proximity "p"
          [ Netlist.Hierarchy.Leaf 2; Netlist.Hierarchy.Leaf 3 ];
      ]
  in
  let h2 =
    Netlist.Hierarchy.node "other-name"
      [
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Proximity "q"
          [ Netlist.Hierarchy.Leaf 3; Netlist.Hierarchy.Leaf 2 ];
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Symmetry "t"
          [ Netlist.Hierarchy.Leaf 1; Netlist.Hierarchy.Leaf 0 ];
      ]
  in
  Alcotest.(check string)
    "same obligations, same signature"
    (Netlist.Hierarchy.constraint_signature h1)
    (Netlist.Hierarchy.constraint_signature h2);
  let h3 =
    Netlist.Hierarchy.node "root"
      [
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Symmetry "s"
          [ Netlist.Hierarchy.Leaf 0; Netlist.Hierarchy.Leaf 4 ];
        Netlist.Hierarchy.node ~kind:Netlist.Hierarchy.Proximity "p"
          [ Netlist.Hierarchy.Leaf 2; Netlist.Hierarchy.Leaf 3 ];
      ]
  in
  Alcotest.(check bool)
    "member change flips the signature" true
    (Netlist.Hierarchy.constraint_signature h1
    <> Netlist.Hierarchy.constraint_signature h3)

(* Random symmetry groups over distinct cells: a prefix of a shuffled
   [0..n-1] becomes pairs and selfs. *)
let groups_gen =
  QCheck.Gen.(
    int_range 6 24 >>= fun n ->
    int_range 0 1000 >|= fun seed ->
    let rng = Prelude.Rng.create seed in
    let cells = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Prelude.Rng.int rng (i + 1) in
      let t = cells.(i) in
      cells.(i) <- cells.(j);
      cells.(j) <- t
    done;
    let n_pairs = 1 + Prelude.Rng.int rng (n / 4) in
    let n_selfs = Prelude.Rng.int rng 2 in
    let pairs =
      List.init n_pairs (fun i -> (cells.(2 * i), cells.((2 * i) + 1)))
    in
    let selfs = List.init n_selfs (fun i -> cells.((2 * n_pairs) + i)) in
    (pairs, selfs, n))

let prop_fingerprint_reorder_invariant =
  QCheck.Test.make ~name:"reordered constraint sets fingerprint equally"
    ~count:200
    (QCheck.make groups_gen)
    (fun (pairs, selfs, _n) ->
      let g1 = G.make ~name:"a" ~pairs ~selfs () in
      let g2 =
        G.make ~name:"b"
          ~pairs:(List.rev_map (fun (a, b) -> (b, a)) pairs)
          ~selfs:(List.rev selfs) ()
      in
      (* group signatures ignore naming, pair order, in-pair order *)
      G.signature g1 = G.signature g2
      && canonical_of_groups [ g1 ] = canonical_of_groups [ g2 ])

let prop_fingerprint_member_change =
  QCheck.Test.make ~name:"any member change flips the fingerprint" ~count:200
    (QCheck.make groups_gen)
    (fun (pairs, selfs, n) ->
      let g1 = G.make ~name:"a" ~pairs ~selfs () in
      let (pa, _pb), rest = (List.hd pairs, List.tl pairs) in
      (* swap one paired cell for a fresh one (n is unused by design) *)
      let g2 = G.make ~name:"a" ~pairs:((pa, n) :: rest) ~selfs () in
      G.signature g1 <> G.signature g2
      && canonical_of_groups [ g1 ] <> canonical_of_groups [ g2 ])

let prop_fingerprint_group_order =
  QCheck.Test.make ~name:"group list order never matters" ~count:100
    (QCheck.make groups_gen)
    (fun (pairs, selfs, n) ->
      let g1 = G.make ~pairs ~selfs () in
      let g2 = G.make ~pairs:[ (n, n + 1) ] ~selfs:[ n + 2 ] () in
      canonical_of_groups [ g1; g2 ] = canonical_of_groups [ g2; g1 ])

(* ---- cache --------------------------------------------------------- *)

let dummy_multi () =
  let b = Netlist.Benchmarks.miller () in
  let c = b.Netlist.Benchmarks.circuit in
  let arena = Placer.Eval.create c in
  let placed =
    Seqpair.Pack.pack_fast
      (Seqpair.Sp.random (Prelude.Rng.create 1) (Netlist.Circuit.size c))
      (Netlist.Circuit.dims c)
  in
  Service.Multi.build ~arena ~groups:[] c placed

let test_cache_lru () =
  let cache = Service.Cache.create ~capacity:2 () in
  let m = dummy_multi () in
  Service.Cache.insert cache "a" m;
  Service.Cache.insert cache "b" m;
  Alcotest.(check int) "two entries" 2 (Service.Cache.length cache);
  (* touch a so b is the LRU victim *)
  Alcotest.(check bool) "find a" true (Service.Cache.find cache "a" <> None);
  Service.Cache.insert cache "c" m;
  Alcotest.(check int) "capacity held" 2 (Service.Cache.length cache);
  Alcotest.(check bool) "a survives" true (Service.Cache.mem cache "a");
  Alcotest.(check bool) "b evicted" false (Service.Cache.mem cache "b");
  Alcotest.(check int) "one eviction" 1 (Service.Cache.evictions cache);
  Alcotest.(check bool) "explicit evict" true (Service.Cache.remove cache "c");
  Alcotest.(check bool) "absent remove" false (Service.Cache.remove cache "c")

(* ---- multi-placement structures ------------------------------------ *)

let test_multi_family () =
  let b = Netlist.Benchmarks.miller () in
  let c = b.Netlist.Benchmarks.circuit in
  let groups = G.of_hierarchy b.Netlist.Benchmarks.hierarchy in
  let arena = Placer.Eval.create c in
  let rng = Prelude.Rng.create 11 in
  let outcome =
    Placer.Portfolio.race ~groups ~workers:1 ~rng
      ~hierarchy:b.Netlist.Benchmarks.hierarchy c
  in
  let multi =
    Service.Multi.build ~arena ~groups c
      outcome.Placer.Portfolio.placement.Placer.Placement.placed
  in
  let cands = Service.Multi.candidates multi in
  Alcotest.(check bool) "family is non-empty" true (cands <> []);
  (* Pareto: no member dominated in (w, h, cost) by another *)
  List.iter
    (fun (a : Service.Multi.candidate) ->
      List.iter
        (fun (b : Service.Multi.candidate) ->
          if a != b then
            Alcotest.(check bool)
              "no dominated family member" false
              (b.Service.Multi.width <= a.Service.Multi.width
              && b.Service.Multi.height <= a.Service.Multi.height
              && b.Service.Multi.cost <= a.Service.Multi.cost
              && (b.Service.Multi.width < a.Service.Multi.width
                 || b.Service.Multi.height < a.Service.Multi.height
                 || b.Service.Multi.cost < a.Service.Multi.cost)))
        cands)
    cands;
  (* every member re-instantiates to exactly its recorded geometry *)
  List.iter
    (fun (cand : Service.Multi.candidate) ->
      let p = Service.Multi.materialize ~arena multi cand in
      Alcotest.(check int)
        "width reproduced" cand.Service.Multi.width
        (Placer.Placement.width p);
      Alcotest.(check int)
        "height reproduced" cand.Service.Multi.height
        (Placer.Placement.height p);
      Alcotest.(check (float 0.0))
        "cost reproduced" cand.Service.Multi.cost
        (Placer.Cost.evaluate Placer.Cost.default p))
    cands;
  (* selection honors a generous outline and flags a hopeless one *)
  let cand, fit = Service.Multi.select ~outline:(10_000, 10_000) multi in
  Alcotest.(check bool) "generous outline fits" true fit;
  Alcotest.(check bool)
    "fitting member honored" true
    (cand.Service.Multi.width <= 10_000 && cand.Service.Multi.height <= 10_000);
  let _, fit = Service.Multi.select ~outline:(3, 3) multi in
  Alcotest.(check bool) "hopeless outline flagged" false fit;
  Alcotest.(check bool)
    "hopeless outline provably infeasible" true
    (Service.Multi.outline_infeasible multi (3, 3))

let test_multi_deterministic () =
  let m = dummy_multi () in
  let b = Netlist.Benchmarks.miller () in
  let arena = Placer.Eval.create b.Netlist.Benchmarks.circuit in
  let cand, _ = Service.Multi.select m in
  let p1 = Service.Multi.materialize ~arena m cand in
  let cand2, _ = Service.Multi.select m in
  let p2 = Service.Multi.materialize ~arena m cand2 in
  Alcotest.(check bool)
    "repeated materialization is identical" true
    (Placer.Qor.rects p1 = Placer.Qor.rects p2)

(* ---- the service --------------------------------------------------- *)

let test_service_miss_then_hit () =
  Service.with_service ~workers:1 (fun svc ->
      let req = quick_req (Service.Request.Bench "miller") in
      let r1 = Service.submit svc req in
      Alcotest.(check string) "first is a miss" "miss" r1.Service.Request.served;
      let r2 = Service.submit svc req in
      Alcotest.(check string) "second is a hit" "hit" r2.Service.Request.served;
      Alcotest.(check int) "hits never anneal" 0 r2.Service.Request.sa_rounds;
      Alcotest.(check string)
        "byte-identical results" (result_string r1) (result_string r2);
      Alcotest.(check int)
        "hit counter" 1
        (Service.counter_value svc "service.hits");
      Alcotest.(check int)
        "miss counter" 1
        (Service.counter_value svc "service.misses");
      let prom = Service.metrics svc in
      Alcotest.(check bool)
        "hit counter exported to Prometheus" true
        (let needle = "analog_service_hits 1" in
         let rec find i =
           i + String.length needle <= String.length prom
           && (String.sub prom i (String.length needle) = needle
              || find (i + 1))
         in
         find 0);
      match Telemetry.Prom.check prom with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid Prometheus exposition: %s" e)

let test_service_varied_outline_hit () =
  Service.with_service ~workers:1 (fun svc ->
      (* both outlines are Square-class: one anneal, one instantiation *)
      let r1 =
        Service.submit svc
          (quick_req ~outline:(100_000, 80_000) (Service.Request.Bench "miller"))
      in
      let r2 =
        Service.submit svc
          (quick_req ~outline:(90_000, 95_000) (Service.Request.Bench "miller"))
      in
      Alcotest.(check string) "first misses" "miss" r1.Service.Request.served;
      Alcotest.(check string) "varied outline hits" "hit"
        r2.Service.Request.served;
      match (r1.Service.Request.body, r2.Service.Request.body) with
      | Ok b1, Ok b2 ->
          Alcotest.(check (option bool))
            "outline honored cold" (Some true) b1.Service.Request.outline_fit;
          Alcotest.(check (option bool))
            "outline honored warm" (Some true) b2.Service.Request.outline_fit;
          (* the served instantiation passes the independent verifier
             with zero violations *)
          let b = Netlist.Benchmarks.miller () in
          let groups = G.of_hierarchy b.Netlist.Benchmarks.hierarchy in
          let placed =
            List.map
              (fun (r : Telemetry.Ledger.rect) ->
                let cell =
                  Netlist.Circuit.find_module b.Netlist.Benchmarks.circuit
                    r.Telemetry.Ledger.cell
                in
                let w0, _ =
                  Netlist.Circuit.dims b.Netlist.Benchmarks.circuit cell
                in
                {
                  Geometry.Transform.cell;
                  rect =
                    {
                      Geometry.Rect.x = r.Telemetry.Ledger.x;
                      y = r.Telemetry.Ledger.y;
                      w = r.Telemetry.Ledger.w;
                      h = r.Telemetry.Ledger.h;
                    };
                  orient =
                    (if w0 = r.Telemetry.Ledger.w then Geometry.Orientation.R0
                     else Geometry.Orientation.R90);
                })
              b2.Service.Request.placement
          in
          let errors =
            Analysis.Verify.placement ~groups ~outline:(90_000, 95_000)
              b.Netlist.Benchmarks.circuit placed
            |> List.filter (fun (d : Analysis.Diagnostic.t) ->
                   d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
          in
          Alcotest.(check int) "verifier finds zero violations" 0
            (List.length errors)
      | _ -> Alcotest.fail "both requests must produce results")

let test_service_verify_evicts () =
  Service.with_service ~workers:1 (fun svc ->
      let b = Netlist.Benchmarks.miller () in
      let c = b.Netlist.Benchmarks.circuit in
      let groups = G.of_hierarchy b.Netlist.Benchmarks.hierarchy in
      let req = quick_req (Service.Request.Bench "miller") in
      (* poison the cache: a "winning placement" with every module at
         the origin builds an entry whose rigid family member overlaps
         everything — minimal bbox, so selection will pick it *)
      let overlapping =
        List.init (Netlist.Circuit.size c) (fun cell ->
            let w, h = Netlist.Circuit.dims c cell in
            {
              Geometry.Transform.cell;
              rect = { Geometry.Rect.x = 0; y = 0; w; h };
              orient = Geometry.Orientation.R0;
            })
      in
      let arena = Placer.Eval.create c in
      let poisoned = Service.Multi.build ~arena ~groups c overlapping in
      let fp =
        Service.Fingerprint.make ~groups
          ~hierarchy:b.Netlist.Benchmarks.hierarchy
          ~weights:(Service.weights_of_outline None)
          ~seed:0 ~effort:Service.Fingerprint.Quick c
      in
      Service.Cache.insert (Service.cache svc) fp poisoned;
      let r = Service.submit svc req in
      Alcotest.(check string)
        "poisoned entry evicted, request re-annealed" "evict-miss"
        r.Service.Request.served;
      Alcotest.(check int)
        "eviction counted" 1
        (Service.counter_value svc "service.verify_evictions");
      (match r.Service.Request.body with
      | Ok body ->
          (* the service only serves Verify-clean placements; the
             [violations] field additionally counts soft hierarchy QoR
             obligations, so only sanity is asserted here *)
          Alcotest.(check bool)
            "re-annealed result is a real placement" true
            (body.Service.Request.width > 0 && body.Service.Request.height > 0)
      | Error e -> Alcotest.failf "re-anneal failed: %s" e);
      (* the rebuilt entry serves hits again *)
      let r2 = Service.submit svc req in
      Alcotest.(check string) "cache healed" "hit" r2.Service.Request.served;
      Alcotest.(check string)
        "healed entry serves the re-annealed bytes" (result_string r)
        (result_string r2))

let test_service_error_request () =
  Service.with_service ~workers:1 (fun svc ->
      let r =
        Service.submit svc (quick_req (Service.Request.Bench "nope"))
      in
      Alcotest.(check string) "unknown bench errors" "error"
        r.Service.Request.served;
      match r.Service.Request.body with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "error response carries no result")

let test_service_negative_cache () =
  Service.with_service ~workers:1 (fun svc ->
      (* miller needs ~15.3M units^2 of module area: a 1000x1000 box is
         provably unplaceable, so the request must be rejected by the
         feasibility prover without burning an anneal *)
      let req =
        quick_req ~outline:(1000, 1000) (Service.Request.Bench "miller")
      in
      let r1 = Service.submit svc req in
      Alcotest.(check string) "served infeasible" "infeasible"
        r1.Service.Request.served;
      (match r1.Service.Request.body with
      | Error msg ->
          Alcotest.(check bool) "carries the proof" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "infeasible response carries no result");
      Alcotest.(check int) "proved once" 1
        (Service.counter_value svc "service.infeasible");
      Alcotest.(check int) "no anneal burned" 0
        (Service.counter_value svc "service.misses");
      (* the second identical request is answered from the negative
         cache: no prover run, no anneal, just a neg hit *)
      let r2 = Service.submit svc req in
      Alcotest.(check string) "still infeasible" "infeasible"
        r2.Service.Request.served;
      Alcotest.(check int) "negative-cache hit" 1
        (Service.counter_value svc "service.neg_hits");
      Alcotest.(check int) "prover not re-run" 1
        (Service.counter_value svc "service.infeasible");
      Alcotest.(check int) "still no anneal" 0
        (Service.counter_value svc "service.misses");
      (* proofs are salted with the exact box: one unit wider is a new
         key, so it re-proves instead of reusing the cached verdict *)
      let r3 =
        Service.submit svc
          (quick_req ~outline:(1001, 1000) (Service.Request.Bench "miller"))
      in
      Alcotest.(check string) "nearby box re-proved" "infeasible"
        r3.Service.Request.served;
      Alcotest.(check int) "second proof" 2
        (Service.counter_value svc "service.infeasible");
      Alcotest.(check int) "no stale neg hit" 1
        (Service.counter_value svc "service.neg_hits"))

let test_request_json_roundtrip () =
  let line =
    {|{"id":"q1","synthetic":{"n":9,"seed":4},"outline":[50,40],"effort":"quick","seed":3}|}
  in
  match Service.Request.of_line line with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check string) "id" "q1" r.Service.Request.id;
      Alcotest.(check bool) "outline" true (r.Service.Request.outline = Some (50, 40));
      Alcotest.(check int) "seed" 3 r.Service.Request.seed;
      let again =
        Service.Request.of_line (J.emit (Service.Request.to_json r))
      in
      Alcotest.(check bool) "round-trips" true (again = Ok r)

(* ---- concurrent mixed traffic (CI runs this under real cores) ------ *)

let test_concurrent_stress () =
  let sources =
    [
      Service.Request.Synthetic { n = 10; seed = 1 };
      Service.Request.Synthetic { n = 12; seed = 2 };
      Service.Request.Synthetic { n = 14; seed = 3 };
    ]
  in
  (* repeat-heavy mixed workload: every source queried repeatedly,
     with same-class outline variation to exercise instantiation.
     Outlines are generous: a provably-too-small box would now be
     rejected by the feasibility gate instead of served best-effort *)
  let workload =
    List.concat_map
      (fun k ->
        List.mapi
          (fun i src ->
            let outline =
              match k mod 3 with
              | 0 -> None
              | 1 -> Some (5_000 + (100 * k), 4_500)
              | _ -> Some (5_200, 4_600 + (50 * k))
            in
            quick_req ~id:(Printf.sprintf "w%d-s%d" k i) ?outline src)
          sources)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Service.with_service (fun svc ->
      List.iter
        (fun in_flight ->
          let responses = Service.run_batch ~in_flight svc workload in
          Alcotest.(check int)
            "every request answered, in order" (List.length workload)
            (List.length responses);
          List.iter2
            (fun (req : Service.Request.t) (resp : Service.Request.response) ->
              Alcotest.(check string)
                "response order preserved" req.Service.Request.id
                resp.Service.Request.request_id;
              if resp.Service.Request.served = "hit" then
                Alcotest.(check int)
                  "no cross-request annealing bleed" 0
                  resp.Service.Request.sa_rounds)
            workload responses;
          (* identical requests (same source/outline/effort/seed) must
             serve byte-identical result objects *)
          let tbl = Hashtbl.create 16 in
          List.iter2
            (fun (req : Service.Request.t) resp ->
              let key =
                ( Service.Request.source_label req.Service.Request.source,
                  req.Service.Request.outline )
              in
              let s = result_string resp in
              match Hashtbl.find_opt tbl key with
              | None -> Hashtbl.add tbl key s
              | Some prev ->
                  Alcotest.(check string)
                    "byte-identical responses for identical requests" prev s)
            workload responses)
        [ 2; 4; 8 ];
      (* zero telemetry bleed: the root counters add up exactly *)
      let v = Service.counter_value svc in
      Alcotest.(check int)
        "every request counted" (3 * List.length workload)
        (v "service.requests");
      Alcotest.(check int)
        "hits + misses = requests"
        (v "service.requests")
        (v "service.hits" + v "service.misses");
      Alcotest.(check int) "no verify evictions in clean traffic" 0
        (v "service.verify_evictions"))

let () =
  Alcotest.run "service"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "keys" `Quick test_fingerprint_basics;
          Alcotest.test_case "outline classes" `Quick
            test_fingerprint_outline_class;
          Alcotest.test_case "hierarchy signature" `Quick
            test_hierarchy_signature_order_invariant;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fingerprint_reorder_invariant;
            prop_fingerprint_member_change;
            prop_fingerprint_group_order;
          ] );
      ("cache", [ Alcotest.test_case "lru" `Quick test_cache_lru ]);
      ( "multi",
        [
          Alcotest.test_case "family" `Quick test_multi_family;
          Alcotest.test_case "deterministic" `Quick test_multi_deterministic;
        ] );
      ( "service",
        [
          Alcotest.test_case "miss then hit" `Quick test_service_miss_then_hit;
          Alcotest.test_case "varied outline" `Quick
            test_service_varied_outline_hit;
          Alcotest.test_case "verify evicts" `Quick test_service_verify_evicts;
          Alcotest.test_case "error request" `Quick test_service_error_request;
          Alcotest.test_case "negative cache" `Quick
            test_service_negative_cache;
          Alcotest.test_case "request json" `Quick test_request_json_roundtrip;
        ] );
      ( "concurrent",
        [ Alcotest.test_case "mixed traffic" `Quick test_concurrent_stress ] );
    ]
