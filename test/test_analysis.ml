open Geometry
module G = Constraints.Symmetry_group
module H = Netlist.Hierarchy
module D = Analysis.Diagnostic
module Lint = Analysis.Lint
module Inv = Analysis.Invariant

let block = Netlist.Circuit.block
let net name pins = Netlist.Net.make ~name ~pins ()

let circ ?(nets = []) mods =
  Netlist.Circuit.make ~name:"t" ~modules:mods ~nets

(* A well-formed 6-cell circuit used as the clean baseline: uniform
   4x4 blocks (so any pairing mirrors), one net over all cells. *)
let clean_circuit () =
  circ
    ~nets:[ net "all" [ 0; 1; 2; 3; 4; 5 ] ]
    (List.init 6 (fun i -> block ~name:(Printf.sprintf "m%d" i) ~w:4 ~h:4))

let has_code code ds = List.exists (fun (d : D.t) -> d.D.code = code) ds

let check_code ~trigger ~clean code =
  Alcotest.(check bool) (code ^ " triggered") true (has_code code trigger);
  Alcotest.(check bool) (code ^ " clean") false (has_code code clean)

let place cell x y w h =
  Transform.place ~cell ~x ~y ~w ~h ~orient:Orientation.R0

(* ---- diagnostics -------------------------------------------------- *)

let test_diagnostic_basics () =
  let d =
    D.warning ~code:"AL008" ~subject:"net \"x\"" ~hint:"drop it"
      "message with\nnewline"
  in
  let j = D.to_json d in
  Alcotest.(check bool) "escapes newline" true
    (String.length j > 0
    && (not (String.contains j '\n'))
    && String.length (D.list_to_json [ d; d ]) > (2 * String.length j));
  Alcotest.(check (list string)) "codes" [ "AL008" ] (D.codes [ d; d ]);
  Alcotest.(check bool) "warning is not error" false (D.has_errors [ d ]);
  let line = Format.asprintf "%a" D.pp d in
  Alcotest.(check bool) "pp mentions code and hint" true
    (Astring.String.is_infix ~affix:"AL008" line
     && Astring.String.is_infix ~affix:"drop it" line)

(* ---- static lints: trigger + clean fixture per code --------------- *)

let test_al001_pin_range () =
  (* Circuit.make rejects out-of-range pins, so corrupt the record
     directly — exactly what the lint exists to catch. *)
  let bad =
    {
      Netlist.Circuit.name = "t";
      modules = [| block ~name:"a" ~w:4 ~h:4 |];
      nets = [ { Netlist.Net.name = "n"; pins = [ 0; 3 ]; weight = 1.0 } ];
    }
  in
  check_code "AL001" ~trigger:(Lint.circuit bad)
    ~clean:(Lint.circuit (clean_circuit ()))

let test_al002_duplicate_names () =
  let bad = circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"a" ~w:4 ~h:4 ] in
  check_code "AL002" ~trigger:(Lint.circuit bad)
    ~clean:(Lint.circuit (clean_circuit ()))

let test_al003_dims () =
  let bad = circ [ block ~name:"a" ~w:0 ~h:4 ] in
  check_code "AL003" ~trigger:(Lint.circuit bad)
    ~clean:(Lint.circuit (clean_circuit ()))

let test_al004_group_range () =
  let c = clean_circuit () in
  let g = G.make ~pairs:[ (0, 9) ] ~selfs:[] () in
  check_code "AL004"
    ~trigger:(Lint.groups c [ g ])
    ~clean:(Lint.groups c [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ])

let test_al005_group_overlap () =
  let c = clean_circuit () in
  let g1 = G.make ~name:"g1" ~pairs:[ (0, 1) ] ~selfs:[] () in
  let g2 = G.make ~name:"g2" ~pairs:[ (1, 2) ] ~selfs:[] () in
  let g2' = G.make ~name:"g2" ~pairs:[ (2, 3) ] ~selfs:[] () in
  check_code "AL005"
    ~trigger:(Lint.groups c [ g1; g2 ])
    ~clean:(Lint.groups c [ g1; g2' ]);
  (* pair-member of one group, self of another *)
  let g3 = G.make ~name:"g3" ~pairs:[] ~selfs:[ 0 ] () in
  Alcotest.(check bool) "pair+self overlap" true
    (has_code "AL005" (Lint.groups c [ g1; g3 ]))

let test_al006_pair_dims () =
  let c =
    circ [ block ~name:"a" ~w:4 ~h:5; block ~name:"b" ~w:5 ~h:5 ]
  in
  let g = G.make ~pairs:[ (0, 1) ] ~selfs:[] () in
  check_code "AL006"
    ~trigger:(Lint.groups c [ g ])
    ~clean:(Lint.groups (clean_circuit ()) [ g ])

let test_al007_self_parity () =
  let c =
    circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:5 ~h:4 ]
  in
  let g = G.make ~pairs:[] ~selfs:[ 0; 1 ] () in
  let c' =
    circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:6 ~h:4 ]
  in
  check_code "AL007"
    ~trigger:(Lint.groups c [ g ])
    ~clean:(Lint.groups c' [ g ])

let test_al008_net_degree () =
  let bad =
    circ
      ~nets:[ net "dangling" [ 0 ]; net "ok" [ 0; 1 ] ]
      [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:4 ~h:4 ]
  in
  check_code "AL008" ~trigger:(Lint.circuit bad)
    ~clean:(Lint.circuit (clean_circuit ()))

let test_al009_centroid_parity () =
  let c =
    circ
      [
        block ~name:"a" ~w:4 ~h:4;
        block ~name:"b" ~w:6 ~h:4;
        block ~name:"c" ~w:8 ~h:4;
      ]
  in
  let h kind leaves = H.node ~kind "cc" (List.map (fun i -> H.Leaf i) leaves) in
  (* three distinct size classes, each odd *)
  check_code "AL009"
    ~trigger:(Lint.hierarchy c (h H.Common_centroid [ 0; 1; 2 ]))
    ~clean:
      (Lint.hierarchy
         (circ
            [
              block ~name:"a" ~w:4 ~h:4;
              block ~name:"b" ~w:4 ~h:4;
              block ~name:"c" ~w:6 ~h:4;
              block ~name:"d" ~w:6 ~h:4;
            ])
         (h H.Common_centroid [ 0; 1; 2; 3 ]));
  (* one odd class (the middle cell can sit on the centroid) is fine *)
  Alcotest.(check bool) "single odd class ok" false
    (has_code "AL009"
       (Lint.hierarchy
          (circ
             [
               block ~name:"a" ~w:4 ~h:4;
               block ~name:"b" ~w:4 ~h:4;
               block ~name:"c" ~w:6 ~h:4;
             ])
          (h H.Common_centroid [ 0; 1; 2 ])));
  (* non-centroid nodes are not checked *)
  Alcotest.(check bool) "proximity not checked" false
    (has_code "AL009" (Lint.hierarchy c (h H.Proximity [ 0; 1; 2 ])))

let test_al010_over_constrained () =
  let c =
    circ (List.init 4 (fun i -> block ~name:(string_of_int i) ~w:4 ~h:4))
  in
  (* all four cells in one group: bound = (4!)^2 / 4! = 24 codes *)
  let g = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2; 3 ] () in
  check_code "AL010"
    ~trigger:(Lint.groups c [ g ])
    ~clean:(Lint.groups (clean_circuit ()) [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ]);
  (* an overflowing bound means a huge space: never over-constrained *)
  let big =
    circ (List.init 20 (fun i -> block ~name:(string_of_int i) ~w:4 ~h:4))
  in
  Alcotest.(check bool) "overflow suppresses AL010" false
    (has_code "AL010" (Lint.groups big [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ]))

let test_al011_trivial_group () =
  let c = clean_circuit () in
  check_code "AL011"
    ~trigger:(Lint.groups c [ G.make ~pairs:[] ~selfs:[ 0 ] () ])
    ~clean:(Lint.groups c [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ])

let test_al012_isolated () =
  let bad =
    circ
      ~nets:[ net "n" [ 0; 1 ] ]
      (List.init 3 (fun i -> block ~name:(string_of_int i) ~w:4 ~h:4))
  in
  check_code "AL012" ~trigger:(Lint.circuit bad)
    ~clean:(Lint.circuit (clean_circuit ()))

let test_lint_all_clean_benchmarks () =
  List.iter
    (fun (b : Netlist.Benchmarks.bench) ->
      let ds =
        Lint.all b.Netlist.Benchmarks.circuit b.Netlist.Benchmarks.hierarchy
      in
      Alcotest.(check (list string))
        (b.Netlist.Benchmarks.label ^ " error codes")
        []
        (D.codes (D.errors ds)))
    [ Netlist.Benchmarks.miller (); Netlist.Benchmarks.fig2_design () ]

let test_lint_code_coverage () =
  (* the engine must be able to report at least 8 distinct codes *)
  let all =
    Lint.circuit
      {
        Netlist.Circuit.name = "t";
        modules =
          [|
            block ~name:"a" ~w:4 ~h:4;
            block ~name:"a" ~w:0 ~h:4;
            block ~name:"b" ~w:4 ~h:5;
            block ~name:"c" ~w:5 ~h:5;
            block ~name:"d" ~w:4 ~h:4;
            block ~name:"e" ~w:5 ~h:4;
          |];
        nets =
          [
            { Netlist.Net.name = "oob"; pins = [ 0; 9 ]; weight = 1.0 };
            { Netlist.Net.name = "dangling"; pins = [ 0 ]; weight = 1.0 };
          ];
      }
    @ Lint.groups (clean_circuit ())
        [
          G.make ~name:"g1" ~pairs:[ (0, 1) ] ~selfs:[ 2; 3 ] ();
          G.make ~name:"g2" ~pairs:[ (1, 9) ] ~selfs:[] ();
          G.make ~name:"g3" ~pairs:[] ~selfs:[ 5 ] ();
        ]
    @ Lint.groups
        (circ [ block ~name:"a" ~w:4 ~h:5; block ~name:"b" ~w:5 ~h:5 ])
        [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ]
    @ Lint.groups
        (circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:5 ~h:4 ])
        [ G.make ~pairs:[] ~selfs:[ 0; 1 ] () ]
    @ Lint.hierarchy
        (circ
           [
             block ~name:"a" ~w:4 ~h:4;
             block ~name:"b" ~w:6 ~h:4;
             block ~name:"c" ~w:8 ~h:4;
           ])
        (H.node ~kind:H.Common_centroid "cc" [ H.Leaf 0; H.Leaf 1; H.Leaf 2 ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "≥8 distinct codes (got %s)"
       (String.concat "," (D.codes all)))
    true
    (List.length (D.codes all) >= 8)

(* ---- of_hierarchy edge cases (satellite) -------------------------- *)

let uniform n =
  circ (List.init n (fun i -> block ~name:(Printf.sprintf "u%d" i) ~w:4 ~h:4))

let assert_groups_lint_clean c groups =
  let ds = Lint.groups c groups in
  Alcotest.(check (list string)) "disjointness lints clean" []
    (D.codes (D.errors ds))

let test_of_hierarchy_trailing_odd () =
  let h =
    H.node ~kind:H.Symmetry "s" [ H.Leaf 0; H.Leaf 1; H.Leaf 2 ]
  in
  match G.of_hierarchy h with
  | [ g ] ->
      Alcotest.(check (list (pair int int))) "pair" [ (0, 1) ] g.G.pairs;
      Alcotest.(check (list int)) "trailing self" [ 2 ] g.G.selfs;
      assert_groups_lint_clean (uniform 3) [ g ]
  | gs -> Alcotest.fail (Printf.sprintf "%d groups" (List.length gs))

let test_of_hierarchy_nested_pair_node () =
  (* a two-leaf symmetry child contributes an explicit pair to the
     parent group, not its own group *)
  let h =
    H.node ~kind:H.Symmetry "outer"
      [
        H.node ~kind:H.Symmetry "inner" [ H.Leaf 0; H.Leaf 1 ];
        H.Leaf 2;
        H.Leaf 3;
      ]
  in
  match G.of_hierarchy h with
  | [ g ] ->
      Alcotest.(check (list (pair int int)))
        "explicit + leaf pairs"
        [ (0, 1); (2, 3) ]
        g.G.pairs;
      Alcotest.(check (list int)) "no selfs" [] g.G.selfs;
      assert_groups_lint_clean (uniform 4) [ g ]
  | gs -> Alcotest.fail (Printf.sprintf "%d groups" (List.length gs))

let test_of_hierarchy_nested_group () =
  (* a nested symmetry node with three leaves yields its own group,
     disjoint from the outer group *)
  let h =
    H.node ~kind:H.Symmetry "outer"
      [
        H.node ~kind:H.Symmetry "inner" [ H.Leaf 0; H.Leaf 1; H.Leaf 2 ];
        H.Leaf 3;
        H.Leaf 4;
      ]
  in
  let gs = G.of_hierarchy h in
  Alcotest.(check int) "two groups" 2 (List.length gs);
  assert_groups_lint_clean (uniform 5) gs;
  let members = List.concat_map G.members gs in
  Alcotest.(check (list int)) "all cells covered" [ 0; 1; 2; 3; 4 ]
    (List.sort Int.compare members)

let test_of_hierarchy_ignores_non_leaf () =
  (* non-symmetry child nodes are ignored by the parent group (they
     become islands for the hierarchical placers) but still recursed
     into *)
  let h =
    H.node ~kind:H.Symmetry "s"
      [
        H.node ~kind:H.Proximity "p" [ H.Leaf 0; H.Leaf 1 ];
        H.node ~kind:H.Common_centroid "cc" [ H.Leaf 2; H.Leaf 3 ];
        H.Leaf 4;
        H.Leaf 5;
      ]
  in
  match G.of_hierarchy h with
  | [ g ] ->
      Alcotest.(check (list (pair int int))) "leaf pair only" [ (4, 5) ]
        g.G.pairs;
      Alcotest.(check (list int)) "no selfs" [] g.G.selfs;
      assert_groups_lint_clean (uniform 6) [ g ]
  | gs -> Alcotest.fail (Printf.sprintf "%d groups" (List.length gs))

(* ---- invariants --------------------------------------------------- *)

let fig1_sp_group () =
  let sp, mapping = Seqpair.Sp.of_strings ~alpha:"EBAFCDG" ~beta:"EBCDFAG" in
  let idx c = List.assoc c mapping in
  ( sp,
    G.make
      ~pairs:[ (idx 'C', idx 'D'); (idx 'B', idx 'G') ]
      ~selfs:[ idx 'A'; idx 'F' ] () )

let test_invariant_sp () =
  let sp, g = fig1_sp_group () in
  Alcotest.(check (list string)) "consistent sp" [] (D.codes (Inv.check_sp ~n:7 sp));
  Alcotest.(check bool) "wrong n caught" true
    (has_code "AL101" (Inv.check_sp ~n:8 sp));
  Alcotest.(check (list string)) "feasible" [] (D.codes (Inv.check_sf sp [ g ]))

let test_invariant_corrupted_sp () =
  let sp, g = fig1_sp_group () in
  (* swap two group members in alpha only: escapes the S-F subspace *)
  let bad =
    Seqpair.Sp.make
      ~alpha:(Seqpair.Perm.swap_cells sp.Seqpair.Sp.alpha 2 3)
      ~beta:sp.Seqpair.Sp.beta
  in
  Alcotest.(check bool) "AL102 reported" true
    (has_code "AL102" (Inv.check_sf bad [ g ]));
  Alcotest.(check bool) "raise_if_any raises Violation" true
    (match Inv.raise_if_any ~context:"test" (Inv.check_sf bad [ g ]) with
    | () -> false
    | exception Inv.Violation ("test", _ :: _) -> true)

let test_invariant_bstar () =
  let rng = Prelude.Rng.create 5 in
  let good = Bstar.Tree.random rng (List.init 6 Fun.id) in
  Alcotest.(check (list string)) "good tree" []
    (D.codes (Inv.check_bstar ~n:6 good));
  let dup =
    {
      Bstar.Tree.cell = 0;
      left = Some (Bstar.Tree.leaf 1);
      right = Some (Bstar.Tree.leaf 1);
    }
  in
  Alcotest.(check bool) "duplicate + missing caught" true
    (has_code "AL103" (Inv.check_bstar ~n:3 dup));
  let oob = Bstar.Tree.leaf 7 in
  Alcotest.(check bool) "out of range caught" true
    (has_code "AL103" (Inv.check_bstar ~n:2 oob));
  let rec cyclic = { Bstar.Tree.cell = 0; left = Some cyclic; right = None } in
  Alcotest.(check bool) "cyclic structure reported, not looped on" true
    (has_code "AL103" (Inv.check_bstar ~n:1 cyclic))

let test_invariant_audit_placed () =
  let good = [ place 0 0 0 4 4; place 1 4 0 4 4 ] in
  Alcotest.(check (list string)) "clean audit" []
    (D.codes (Inv.audit_placed ~n:2 good));
  Alcotest.(check bool) "overlap AL104" true
    (has_code "AL104"
       (Inv.audit_placed ~n:2 [ place 0 0 0 4 4; place 1 2 0 4 4 ]));
  Alcotest.(check bool) "duplicate cell AL106" true
    (has_code "AL106"
       (Inv.audit_placed ~n:2 [ place 0 0 0 4 4; place 0 8 0 4 4 ]));
  Alcotest.(check bool) "missing cell AL106" true
    (has_code "AL106" (Inv.audit_placed ~n:2 [ place 0 0 0 4 4 ]));
  Alcotest.(check bool) "negative coords AL107" true
    (has_code "AL107"
       (Inv.audit_placed ~n:2 [ place 0 (-1) 0 4 4; place 1 4 0 4 4 ]));
  Alcotest.(check bool) "outline AL107" true
    (has_code "AL107"
       (Inv.audit_placed ~outline:(6, 6) ~n:2 good));
  let g = G.make ~pairs:[ (0, 1) ] ~selfs:[] () in
  Alcotest.(check (list string)) "symmetric pair ok" []
    (D.codes
       (Inv.audit_placed ~groups:[ g ] ~n:2
          [ place 0 0 0 4 4; place 1 8 0 4 4 ]));
  Alcotest.(check bool) "asymmetric AL108" true
    (has_code "AL108"
       (Inv.audit_placed ~groups:[ g ] ~n:2
          [ place 0 0 0 4 4; place 1 8 1 4 4 ]))

let test_invariant_asf_island () =
  let g = G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[ 4 ] () in
  let rng = Prelude.Rng.create 11 in
  let asf = Bstar.Asf.make rng g in
  let dims c = if c = 4 then (6, 4) else (5, 3) in
  let island = Bstar.Asf.pack asf dims in
  Alcotest.(check (list string)) "packed island clean" []
    (D.codes (Inv.check_asf_island ~group:g island));
  let skewed = { island with Bstar.Asf.axis2 = island.Bstar.Asf.axis2 + 2 } in
  Alcotest.(check bool) "tampered axis AL105" true
    (has_code "AL105" (Inv.check_asf_island ~group:g skewed));
  let shifted =
    {
      island with
      Bstar.Asf.placed =
        List.map
          (fun (p : Transform.placed) ->
            if p.Transform.cell = 4 then Transform.translate p ~dx:1 ~dy:0
            else p)
          island.Bstar.Asf.placed;
    }
  in
  Alcotest.(check bool) "shifted self caught" true
    (Inv.check_asf_island ~group:g shifted <> [])

let test_env_switch () =
  Unix.putenv "ANALOG_VALIDATE" "";
  Alcotest.(check bool) "empty off" false (Inv.enabled_from_env ());
  Unix.putenv "ANALOG_VALIDATE" "0";
  Alcotest.(check bool) "0 off" false (Inv.enabled_from_env ());
  Unix.putenv "ANALOG_VALIDATE" "1";
  Alcotest.(check bool) "1 on" true (Inv.enabled_from_env ());
  Unix.putenv "ANALOG_VALIDATE" "false";
  Alcotest.(check bool) "false off" false (Inv.enabled_from_env ());
  Unix.putenv "ANALOG_VALIDATE" ""

(* ---- sanitizer-on annealing stress (satellite) -------------------- *)

let short_params ~n =
  {
    (Anneal.Sa.default_params ~n) with
    Anneal.Sa.max_rounds = 25;
    moves_per_round = 32;
  }

let test_sanitizer_stress_seqpair () =
  let circuit = Netlist.Benchmarks.fig1_circuit () in
  let pairs, selfs = Netlist.Benchmarks.fig1_symmetry in
  let groups = [ G.make ~pairs ~selfs () ] in
  let n = Netlist.Circuit.size circuit in
  let params = short_params ~n in
  List.iter
    (fun workers ->
      let o =
        Placer.Sa_seqpair.place ~groups ~params ?workers ~validate:true
          ~rng:(Prelude.Rng.create 7) circuit
      in
      Alcotest.(check bool)
        (Printf.sprintf "workers=%s placement valid"
           (match workers with None -> "-" | Some w -> string_of_int w))
        true
        (Result.is_ok
           (Placer.Placement.validate o.Placer.Sa_seqpair.placement)))
    [ None; Some 1; Some 4 ]

let test_sanitizer_stress_bstar () =
  let circuit = Netlist.Benchmarks.fig1_circuit () in
  let n = Netlist.Circuit.size circuit in
  let params = short_params ~n in
  List.iter
    (fun workers ->
      let o =
        Placer.Sa_bstar.place ~params ?workers ~validate:true
          ~rng:(Prelude.Rng.create 7) circuit
      in
      Alcotest.(check bool) "placement valid" true
        (Result.is_ok (Placer.Placement.validate o.Placer.Sa_bstar.placement)))
    [ None; Some 1; Some 4 ]

let test_sanitizer_off_is_identical () =
  (* validate must not change the annealing stream: same seed, same
     result with and without the sanitizer *)
  let circuit = Netlist.Benchmarks.fig1_circuit () in
  let pairs, selfs = Netlist.Benchmarks.fig1_symmetry in
  let groups = [ G.make ~pairs ~selfs () ] in
  let n = Netlist.Circuit.size circuit in
  let params = short_params ~n in
  let run validate =
    (Placer.Sa_seqpair.place ~groups ~params ~validate
       ~rng:(Prelude.Rng.create 3) circuit)
      .Placer.Sa_seqpair.cost
  in
  Alcotest.(check (float 1e-9)) "same best cost" (run false) (run true)

(* ---- diagnostic JSON round-trip (satellite) ----------------------- *)

let test_diagnostic_json_roundtrip () =
  let ds =
    [
      D.error ~code:"AL201" ~subject:"outline \"x\"" ~hint:"line1\nline2"
        "needs \"quotes\" and a tab\there";
      D.info ~code:"AL218" ~subject:"s" "no hint at all";
    ]
  in
  List.iter
    (fun d ->
      match Telemetry.Json.parse (D.to_json d) with
      | Ok j ->
          Alcotest.(check bool) "parse (to_json d) = json d" true (j = D.json d)
      | Error e -> Alcotest.fail e)
    ds;
  match Telemetry.Json.parse (D.list_to_json ds) with
  | Ok j ->
      Alcotest.(check bool) "list round-trips" true (j = D.list_json ds)
  | Error e -> Alcotest.fail e

let test_al000_parse_failure () =
  let d = Lint.parse_failure ~line:3 ~file:"bad.cir" "mangled card" in
  Alcotest.(check string) "code" "AL000" d.D.code;
  Alcotest.(check string) "subject carries file:line" "bad.cir:3" d.D.subject;
  Alcotest.(check bool) "is an error" true (D.has_errors [ d ]);
  let d2 = Lint.parse_failure ~file:"bad.cir" "no recognizable structure" in
  Alcotest.(check string) "subject without line" "bad.cir" d2.D.subject

(* ---- feasibility prover: trigger + clean fixture per code --------- *)

module F = Analysis.Feasibility

let test_al201_area () =
  let c = circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:4 ~h:4 ] in
  check_code "AL201"
    ~trigger:(F.check ~outline:(5, 5) c)
    ~clean:(F.check ~outline:(8, 8) c);
  Alcotest.(check bool) "degenerate outline" true
    (has_code "AL201" (F.check ~outline:(0, 5) c));
  Alcotest.(check (list string)) "no outline, no outline proofs" []
    (D.codes (F.check c))

let test_al202_module_fit () =
  let c = circ [ block ~name:"a" ~w:6 ~h:2 ] in
  check_code "AL202"
    ~trigger:(F.check ~outline:(5, 5) c)
    ~clean:(F.check ~outline:(6, 6) c);
  Alcotest.(check bool) "rotated fit accepted" false
    (has_code "AL202" (F.check ~outline:(2, 6) c))

let test_al203_pair_fit () =
  let c = circ [ block ~name:"a" ~w:3 ~h:3; block ~name:"b" ~w:3 ~h:3 ] in
  let g = [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ] in
  check_code "AL203"
    ~trigger:(F.check ~groups:g ~outline:(5, 7) c)
    ~clean:(F.check ~groups:g ~outline:(6, 7) c)

let test_al204_pair_conflict () =
  (* two pairs of 4x2 cells: each needs a mirrored row of width 8; in a
     12x3 outline they fit alone but cannot share a row (16 > 12) nor
     stack (2+2 > 3) *)
  let c =
    circ (List.init 4 (fun i -> block ~name:(Printf.sprintf "p%d" i) ~w:4 ~h:2))
  in
  let gs =
    [
      G.make ~name:"g1" ~pairs:[ (0, 1) ] ~selfs:[] ();
      G.make ~name:"g2" ~pairs:[ (2, 3) ] ~selfs:[] ();
    ]
  in
  check_code "AL204"
    ~trigger:(F.check ~groups:gs ~outline:(12, 3) c)
    ~clean:(F.check ~groups:gs ~outline:(16, 3) c);
  Alcotest.(check bool) "enough height to stack clears it" false
    (has_code "AL204" (F.check ~groups:gs ~outline:(12, 4) c));
  Alcotest.(check bool) "the trigger is not an area proof" false
    (has_code "AL201" (F.check ~groups:gs ~outline:(12, 3) c))

let test_al205_basic_set () =
  (* two 3x3 cells pack to 6x3 or 3x6, never into 5x4 — even though
     area (18 <= 20) and each cell alone are fine *)
  let c = circ [ block ~name:"a" ~w:3 ~h:3; block ~name:"b" ~w:3 ~h:3 ] in
  let h = H.node ~kind:H.Proximity "px" [ H.Leaf 0; H.Leaf 1 ] in
  check_code "AL205"
    ~trigger:(F.check ~hierarchy:h ~outline:(5, 4) c)
    ~clean:(F.check ~hierarchy:h ~outline:(6, 4) c);
  Alcotest.(check bool) "the trigger is not an area proof" false
    (has_code "AL201" (F.check ~hierarchy:h ~outline:(5, 4) c))

let test_al206_search_space () =
  let sym = H.node ~kind:H.Symmetry "s" [ H.Leaf 0; H.Leaf 1 ] in
  let free = H.node ~kind:H.Free "f" (List.init 6 (fun i -> H.Leaf i)) in
  let c = clean_circuit () in
  check_code "AL206"
    ~trigger:(F.check ~hierarchy:sym c)
    ~clean:(F.check ~hierarchy:free c);
  Alcotest.(check bool) "threshold 1 silences it" false
    (has_code "AL206" (F.check ~sf_threshold:1 ~hierarchy:sym c));
  Alcotest.(check bool) "AL206 is a warning, not an error" false
    (D.has_errors (F.check ~hierarchy:sym c))

let test_al207_root_shape () =
  let c = circ [ block ~name:"a" ~w:3 ~h:3; block ~name:"b" ~w:3 ~h:3 ] in
  let h = H.node ~kind:H.Free "root" [ H.Leaf 0; H.Leaf 1 ] in
  check_code "AL207"
    ~trigger:(F.check ~deep:true ~hierarchy:h ~outline:(5, 4) c)
    ~clean:(F.check ~deep:true ~hierarchy:h ~outline:(6, 4) c);
  Alcotest.(check bool) "shallow mode skips AL207" false
    (has_code "AL207" (F.check ~hierarchy:h ~outline:(5, 4) c))

let test_feasibility_benchmarks_feasible () =
  (* a generous outline (everything stacked in one column fits) must
     yield no infeasibility proof on any shipped benchmark *)
  List.iter
    (fun (b : Netlist.Benchmarks.bench) ->
      let side =
        Array.fold_left
          (fun acc (m : Netlist.Circuit.module_) -> acc + max m.Netlist.Circuit.w m.Netlist.Circuit.h)
          0 b.Netlist.Benchmarks.circuit.Netlist.Circuit.modules
      in
      let ds =
        F.check ~hierarchy:b.Netlist.Benchmarks.hierarchy
          ~outline:(side, side) b.Netlist.Benchmarks.circuit
      in
      Alcotest.(check (list string))
        (b.Netlist.Benchmarks.label ^ " no proofs")
        []
        (D.codes (D.errors ds)))
    (Netlist.Benchmarks.table1_suite ())

let test_feasibility_proof_speed () =
  (* the prover's whole point: rejecting a doomed input must cost
     microseconds, not an annealing run *)
  let b = List.hd (Netlist.Benchmarks.table1_suite ()) in
  let t0 = Unix.gettimeofday () in
  let ds =
    F.check ~hierarchy:b.Netlist.Benchmarks.hierarchy ~outline:(8, 8)
      b.Netlist.Benchmarks.circuit
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Alcotest.(check bool) "infeasibility proven" true (D.has_errors ds);
  Alcotest.(check bool) (Printf.sprintf "fast enough (%.3f ms)" ms) true
    (ms < 25.0)

(* ---- independent verifier: trigger + clean per code --------------- *)

module V = Analysis.Verify

let row () = List.init 6 (fun i -> place i (4 * i) 0 4 4)
let two = circ [ block ~name:"a" ~w:4 ~h:4; block ~name:"b" ~w:4 ~h:4 ]

let test_al210_identity () =
  let c = clean_circuit () in
  let bad = place 0 0 0 3 4 :: List.tl (row ()) in
  check_code "AL210" ~trigger:(V.placement c bad)
    ~clean:(V.placement c (row ()));
  Alcotest.(check bool) "unknown cell index" true
    (has_code "AL210" (V.placement c (place 9 0 24 4 4 :: row ())));
  let tall = circ [ block ~name:"a" ~w:2 ~h:6 ] in
  Alcotest.(check (list string)) "rotation accepted" []
    (D.codes (V.placement tall [ place 0 0 0 6 2 ]))

let test_al211_multiplicity () =
  let c = clean_circuit () in
  check_code "AL211"
    ~trigger:(V.placement c (List.tl (row ())))
    ~clean:(V.placement c (row ()));
  Alcotest.(check bool) "duplicate placement" true
    (has_code "AL211" (V.placement c (place 0 0 24 4 4 :: row ())))

let test_al212_overlaps () =
  check_code "AL212"
    ~trigger:(V.placement two [ place 0 0 0 4 4; place 1 2 0 4 4 ])
    ~clean:(V.placement two [ place 0 0 0 4 4; place 1 4 0 4 4 ]);
  (* DRC style: every offending pair, not just the first *)
  let c3 = circ (List.init 3 (fun i -> block ~name:(string_of_int i) ~w:4 ~h:4)) in
  let stacked = List.init 3 (fun i -> place i i 0 4 4) in
  Alcotest.(check int) "all three pairs reported" 3
    (List.length
       (List.filter (fun (d : D.t) -> d.D.code = "AL212")
          (V.placement c3 stacked)))

let test_al213_outline () =
  let fits = [ place 0 0 0 4 4; place 1 4 0 4 4 ] in
  check_code "AL213"
    ~trigger:(V.placement ~outline:(6, 6) two fits)
    ~clean:(V.placement ~outline:(8, 4) two fits);
  Alcotest.(check bool) "first quadrant enforced without outline" true
    (has_code "AL213"
       (V.placement two [ place 0 (-1) 0 4 4; place 1 4 0 4 4 ]))

let test_al214_symmetry () =
  let g = [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ] in
  check_code "AL214"
    ~trigger:(V.placement ~groups:g two [ place 0 0 0 4 4; place 1 8 1 4 4 ])
    ~clean:(V.placement ~groups:g two [ place 0 0 0 4 4; place 1 8 0 4 4 ]);
  (* the pairing-free ledger flavor: mirror about the set's own axis *)
  let sets y = [ ("s", "symmetry", [ 0; 1 ]) ] |> fun s ->
    V.placement ~constraint_sets:s two [ place 0 0 0 4 4; place 1 8 y 4 4 ]
  in
  Alcotest.(check bool) "recorded set mirrors" false (has_code "AL214" (sets 0));
  Alcotest.(check bool) "recorded set skewed" true (has_code "AL214" (sets 1))

let test_al215_centroid () =
  let c3 =
    circ (List.init 3 (fun i -> block ~name:(string_of_int i) ~w:4 ~h:4))
  in
  let sets = [ ("cc", "common-centroid", [ 0; 1; 2 ]) ] in
  check_code "AL215"
    ~trigger:
      (V.placement ~constraint_sets:sets c3
         [ place 0 0 0 4 4; place 1 4 0 4 4; place 2 12 0 4 4 ])
    ~clean:
      (V.placement ~constraint_sets:sets c3
         [ place 0 0 0 4 4; place 1 4 0 4 4; place 2 8 0 4 4 ])

let test_al216_proximity () =
  let sets = [ ("px", "proximity", [ 0; 1 ]) ] in
  check_code "AL216"
    ~trigger:
      (V.placement ~constraint_sets:sets two
         [ place 0 0 0 4 4; place 1 8 0 4 4 ])
    ~clean:
      (V.placement ~constraint_sets:sets two
         [ place 0 0 0 4 4; place 1 4 0 4 4 ]);
  (* hierarchy proximity nodes are the same obligation *)
  let h = H.node ~kind:H.Proximity "px" [ H.Leaf 0; H.Leaf 1 ] in
  Alcotest.(check bool) "hierarchy node checked" true
    (has_code "AL216"
       (V.placement ~hierarchy:h two [ place 0 0 0 4 4; place 1 8 0 4 4 ]))

let test_al217_unknown_kind () =
  let sets = [ ("th", "thermal", [ 0; 1 ]) ] in
  let ds =
    V.placement ~constraint_sets:sets two
      [ place 0 0 0 4 4; place 1 4 0 4 4 ]
  in
  Alcotest.(check bool) "AL217 emitted" true (has_code "AL217" ds);
  Alcotest.(check bool) "as a warning" false (D.has_errors ds)

let test_al218_al219_recorded () =
  let apart = [ place 0 0 0 4 4; place 1 8 0 4 4 ] in
  let close = [ place 0 0 0 4 4; place 1 4 0 4 4 ] in
  let run count placed =
    V.placement ~recorded_sets:[ ("px", "proximity", [ 0; 1 ], count) ] two
      placed
  in
  (* disclosed violation re-confirms as info, not error *)
  let confirmed = run 1 apart in
  Alcotest.(check bool) "AL218" true (has_code "AL218" confirmed);
  Alcotest.(check bool) "info only" false (D.has_errors confirmed);
  (* claim of satisfaction that fails re-verifies as the real error *)
  Alcotest.(check bool) "count 0 stays an error" true
    (has_code "AL216" (run 0 apart));
  (* recorded violation that does not reproduce: the record is suspect *)
  let vanished = run 1 close in
  Alcotest.(check bool) "AL219" true (has_code "AL219" vanished);
  Alcotest.(check bool) "warning only" false (D.has_errors vanished);
  Alcotest.(check (list string)) "clean record, clean verify" []
    (D.codes (run 0 close))

let lrect cell x y w h = { Telemetry.Ledger.cell; x; y; w; h }

let entry_of rects violations =
  Telemetry.Ledger.make ~generated_at:"2026-08-08T00:00:00Z" ~git_rev:"test"
    ~placement:rects ~label:"t" ~netlist_hash:"x" ~engine:"test" ~seed:1
    ~schedule:"s" ~workers:1 ~chains:1
    ~qor:
      (Telemetry.Qor.run ~violations ~cost:0.0 ~wall_s:0.0 ~sa_rounds:0
         ~evaluated:0 ~area:0 ~width:0 ~height:0 ~hpwl:0.0 ~term_area:0.0
         ~term_wirelength:0.0 ~term_aspect:0.0 ~dead_space_pct:0.0 ())
    ()

let test_verify_entry () =
  let viol count =
    [ { Telemetry.Qor.group = "px"; ckind = "proximity"; count; members = [ 0; 1 ] } ]
  in
  let rects = [ lrect "a" 0 0 4 4; lrect "b" 8 0 4 4 ] in
  (match V.entry (entry_of rects (viol 1)) with
  | Error m -> Alcotest.fail m
  | Ok ds ->
      Alcotest.(check bool) "disclosed violation confirmed" true
        (has_code "AL218" ds);
      Alcotest.(check bool) "no errors" false (D.has_errors ds));
  (match V.entry (entry_of rects (viol 0)) with
  | Error m -> Alcotest.fail m
  | Ok ds ->
      Alcotest.(check bool) "satisfaction claim re-checked hard" true
        (has_code "AL216" ds));
  (match V.entry ~outline:(10, 4) (entry_of rects (viol 1)) with
  | Error m -> Alcotest.fail m
  | Ok ds -> Alcotest.(check bool) "outline applies" true (has_code "AL213" ds));
  Alcotest.(check bool) "no rects is Error" true
    (Result.is_error (V.entry (entry_of [] [])))

(* ---- SARIF emitter ------------------------------------------------ *)

let test_sarif_emit_and_check () =
  let ds =
    [
      D.error ~code:"AL201" ~subject:"outline" "too small" ~hint:"grow it";
      D.warning ~code:"AL206" ~subject:"hierarchy" "pinned";
      D.error ~code:"AL201" ~subject:"outline again" "also too small";
    ]
  in
  let s = Analysis.Sarif.to_string ~uri:"runs.jsonl" ds in
  (match Analysis.Sarif.check s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Telemetry.Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let open Telemetry.Json in
      let get o = Option.get o in
      let run = List.hd (get (Option.bind (member "runs" j) to_list)) in
      let driver = get (member "driver" (get (member "tool" run))) in
      let rules = get (Option.bind (member "rules" driver) to_list) in
      Alcotest.(check int) "one rule per distinct code" 2 (List.length rules);
      let results = get (Option.bind (member "results" run) to_list) in
      Alcotest.(check int) "one result per diagnostic" 3 (List.length results);
      let levels =
        List.filter_map (fun r -> Option.bind (member "level" r) to_str) results
      in
      Alcotest.(check (list string)) "levels map severities"
        [ "error"; "warning"; "error" ] levels);
  (match Analysis.Sarif.check (Analysis.Sarif.to_string []) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "bare object rejected" true
    (Result.is_error (Analysis.Sarif.check "{}"));
  Alcotest.(check bool) "non-JSON rejected" true
    (Result.is_error (Analysis.Sarif.check "not json"))

(* ---- the verifier vs the engines (QCheck satellite) --------------- *)

(* The per-move sanitizer makes long anneals on the 65/110-cell
   benchmarks cost minutes; a handful of rounds is plenty to land in a
   non-trivial placement for the verifier to re-check. *)
let vparams ~n =
  {
    (Anneal.Sa.default_params ~n) with
    Anneal.Sa.max_rounds = (if n > 30 then 3 else 10);
    moves_per_round = (if n > 30 then 8 else 16);
  }

let verify_engine_placement (b : Netlist.Benchmarks.bench) seed =
  let circuit = b.Netlist.Benchmarks.circuit in
  let groups =
    G.of_hierarchy b.Netlist.Benchmarks.hierarchy
  in
  let n = Netlist.Circuit.size circuit in
  let params = vparams ~n in
  let o =
    Placer.Sa_seqpair.place ~groups ~params ~validate:true
      ~rng:(Prelude.Rng.create seed) circuit
  in
  V.placement ~groups circuit o.Placer.Sa_seqpair.placement.Placer.Placement.placed

let test_verify_accepts_engines_on_suite () =
  List.iter
    (fun (b : Netlist.Benchmarks.bench) ->
      Alcotest.(check (list string))
        (b.Netlist.Benchmarks.label ^ " verifies clean")
        []
        (D.codes (D.errors (verify_engine_placement b 42))))
    (Netlist.Benchmarks.table1_suite ())

let qcheck_verify_accepts_engines =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6
       ~name:"verifier accepts every sanitizer-validated sp placement"
       (* random seeds over the four sub-25-cell benchmarks; the suite
          test above covers the two large ones deterministically *)
       QCheck.(pair (int_range 0 3) small_nat)
       (fun (bi, seed) ->
         let suite = Netlist.Benchmarks.table1_suite () in
         let b = List.nth suite (bi mod List.length suite) in
         not (D.has_errors (verify_engine_placement b (seed + 1)))))

let qcheck_verify_accepts_bstar =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:6
       ~name:"verifier accepts every sanitizer-validated bstar placement"
       QCheck.small_nat
       (fun seed ->
         let circuit = Netlist.Benchmarks.fig1_circuit () in
         let n = Netlist.Circuit.size circuit in
         let o =
           Placer.Sa_bstar.place ~params:(vparams ~n) ~validate:true
             ~rng:(Prelude.Rng.create (seed + 1)) circuit
         in
         not
           (D.has_errors
              (V.placement circuit
                 o.Placer.Sa_bstar.placement.Placer.Placement.placed))))

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "basics" `Quick test_diagnostic_basics;
          Alcotest.test_case "JSON round-trip" `Quick
            test_diagnostic_json_roundtrip;
          Alcotest.test_case "AL000 parse failure" `Quick
            test_al000_parse_failure;
        ] );
      ( "feasibility codes",
        [
          Alcotest.test_case "AL201 area" `Quick test_al201_area;
          Alcotest.test_case "AL202 module fit" `Quick test_al202_module_fit;
          Alcotest.test_case "AL203 pair fit" `Quick test_al203_pair_fit;
          Alcotest.test_case "AL204 pair conflict" `Quick
            test_al204_pair_conflict;
          Alcotest.test_case "AL205 basic set" `Quick test_al205_basic_set;
          Alcotest.test_case "AL206 search space" `Quick
            test_al206_search_space;
          Alcotest.test_case "AL207 root shape" `Quick test_al207_root_shape;
          Alcotest.test_case "benchmarks feasible" `Quick
            test_feasibility_benchmarks_feasible;
          Alcotest.test_case "proof speed" `Quick test_feasibility_proof_speed;
        ] );
      ( "verify codes",
        [
          Alcotest.test_case "AL210 identity" `Quick test_al210_identity;
          Alcotest.test_case "AL211 multiplicity" `Quick
            test_al211_multiplicity;
          Alcotest.test_case "AL212 overlaps" `Quick test_al212_overlaps;
          Alcotest.test_case "AL213 outline" `Quick test_al213_outline;
          Alcotest.test_case "AL214 symmetry" `Quick test_al214_symmetry;
          Alcotest.test_case "AL215 centroid" `Quick test_al215_centroid;
          Alcotest.test_case "AL216 proximity" `Quick test_al216_proximity;
          Alcotest.test_case "AL217 unknown kind" `Quick
            test_al217_unknown_kind;
          Alcotest.test_case "AL218/AL219 recorded" `Quick
            test_al218_al219_recorded;
          Alcotest.test_case "ledger entry" `Quick test_verify_entry;
        ] );
      ( "sarif",
        [ Alcotest.test_case "emit + self-check" `Quick test_sarif_emit_and_check ] );
      ( "verifier vs engines",
        [
          Alcotest.test_case "table1 suite, sp" `Quick
            test_verify_accepts_engines_on_suite;
          qcheck_verify_accepts_engines;
          qcheck_verify_accepts_bstar;
        ] );
      ( "lint codes",
        [
          Alcotest.test_case "AL001 pin range" `Quick test_al001_pin_range;
          Alcotest.test_case "AL002 duplicate names" `Quick
            test_al002_duplicate_names;
          Alcotest.test_case "AL003 dims" `Quick test_al003_dims;
          Alcotest.test_case "AL004 group range" `Quick test_al004_group_range;
          Alcotest.test_case "AL005 group overlap" `Quick
            test_al005_group_overlap;
          Alcotest.test_case "AL006 pair dims" `Quick test_al006_pair_dims;
          Alcotest.test_case "AL007 self parity" `Quick test_al007_self_parity;
          Alcotest.test_case "AL008 net degree" `Quick test_al008_net_degree;
          Alcotest.test_case "AL009 centroid parity" `Quick
            test_al009_centroid_parity;
          Alcotest.test_case "AL010 over-constrained" `Quick
            test_al010_over_constrained;
          Alcotest.test_case "AL011 trivial group" `Quick
            test_al011_trivial_group;
          Alcotest.test_case "AL012 isolated" `Quick test_al012_isolated;
          Alcotest.test_case "benchmarks lint clean" `Quick
            test_lint_all_clean_benchmarks;
          Alcotest.test_case "≥8 distinct codes" `Quick test_lint_code_coverage;
        ] );
      ( "of_hierarchy edges",
        [
          Alcotest.test_case "trailing odd leaf" `Quick
            test_of_hierarchy_trailing_odd;
          Alcotest.test_case "nested pair node" `Quick
            test_of_hierarchy_nested_pair_node;
          Alcotest.test_case "nested group" `Quick test_of_hierarchy_nested_group;
          Alcotest.test_case "ignored non-leaf children" `Quick
            test_of_hierarchy_ignores_non_leaf;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "sequence-pair" `Quick test_invariant_sp;
          Alcotest.test_case "corrupted sp caught" `Quick
            test_invariant_corrupted_sp;
          Alcotest.test_case "b*-tree" `Quick test_invariant_bstar;
          Alcotest.test_case "placement audit" `Quick
            test_invariant_audit_placed;
          Alcotest.test_case "asf island" `Quick test_invariant_asf_island;
          Alcotest.test_case "env switch" `Quick test_env_switch;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "seqpair stress 1/4 workers" `Quick
            test_sanitizer_stress_seqpair;
          Alcotest.test_case "bstar stress 1/4 workers" `Quick
            test_sanitizer_stress_bstar;
          Alcotest.test_case "off is bit-identical" `Quick
            test_sanitizer_off_is_identical;
        ] );
    ]
