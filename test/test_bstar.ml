open Bstar

let sorted_cells t = List.sort Int.compare (Tree.cells t)

let test_row_column () =
  let r = Tree.row [ 0; 1; 2 ] in
  let placed = Tree.pack r (fun _ -> (4, 3)) in
  List.iteri
    (fun i (p : Geometry.Transform.placed) ->
      Alcotest.(check int) "row x" (4 * i) p.Geometry.Transform.rect.Geometry.Rect.x;
      Alcotest.(check int) "row y" 0 p.Geometry.Transform.rect.Geometry.Rect.y)
    placed;
  let c = Tree.column [ 0; 1; 2 ] in
  let placed = Tree.pack c (fun _ -> (4, 3)) in
  List.iteri
    (fun i (p : Geometry.Transform.placed) ->
      Alcotest.(check int) "col x" 0 p.Geometry.Transform.rect.Geometry.Rect.x;
      Alcotest.(check int) "col y" (3 * i) p.Geometry.Transform.rect.Geometry.Rect.y)
    placed

let test_left_child_abuts () =
  (* root 10x5 with left child: child starts at x=10 *)
  let t =
    { Tree.cell = 0; left = Some (Tree.leaf 1); right = Some (Tree.leaf 2) }
  in
  let dims = function 0 -> (10, 5) | 1 -> (4, 4) | _ -> (6, 2) in
  let rects = Tree.pack_rects t dims in
  let r c = List.assoc c rects in
  Alcotest.(check int) "left child x" 10 (r 1).Geometry.Rect.x;
  Alcotest.(check int) "left child on ground" 0 (r 1).Geometry.Rect.y;
  Alcotest.(check int) "right child same x" 0 (r 2).Geometry.Rect.x;
  Alcotest.(check int) "right child above" 5 (r 2).Geometry.Rect.y

let test_contour_tuck () =
  (* a tall root, a short left child, then the root's right child can
     span over the short child only where the contour allows *)
  let t =
    {
      Tree.cell = 0;
      left = Some (Tree.leaf 1);
      right = Some (Tree.leaf 2);
    }
  in
  let dims = function 0 -> (5, 10) | 1 -> (5, 2) | _ -> (12, 3) in
  let rects = Tree.pack_rects t dims in
  let r c = List.assoc c rects in
  (* cell 2 spans x=0..12 over both; rests on max(10, 2) = 10 *)
  Alcotest.(check int) "rests on tallest" 10 (r 2).Geometry.Rect.y

let test_delete_insert_swap () =
  let rng = Prelude.Rng.create 2 in
  let t = Tree.random rng [ 0; 1; 2; 3; 4; 5 ] in
  let t' = Option.get (Tree.delete t 3) in
  Alcotest.(check (list int)) "delete removes" [ 0; 1; 2; 4; 5 ] (sorted_cells t');
  let t'' = Tree.insert_random rng t' ~cell:3 in
  Alcotest.(check (list int)) "insert restores" [ 0; 1; 2; 3; 4; 5 ]
    (sorted_cells t'');
  let s = Tree.swap_cells t 0 5 in
  Alcotest.(check (list int)) "swap preserves set" (sorted_cells t) (sorted_cells s);
  Alcotest.(check bool) "delete to empty" true (Tree.delete (Tree.leaf 7) 7 = None)

let test_catalan () =
  let expect = [ 1; 1; 2; 5; 14; 42; 132; 429; 1430 ] in
  List.iteri
    (fun n c -> Alcotest.(check int) (Printf.sprintf "catalan %d" n) c (Count.catalan n))
    expect

let test_count_placements () =
  Alcotest.(check int) "survey's 8-module count" 57_657_600
    (Count.count_placements 8)

let test_enumerate_sizes () =
  for n = 1 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "shapes %d" n)
      (Count.catalan n)
      (List.length (Count.enumerate_shapes n));
    let trees = Count.enumerate_trees (List.init n Fun.id) in
    Alcotest.(check int)
      (Printf.sprintf "trees %d" n)
      (Count.count_placements n)
      (List.length trees);
    (* all distinct *)
    let rec distinct = function
      | [] -> true
      | t :: rest -> (not (List.exists (Tree.equal t) rest)) && distinct rest
    in
    Alcotest.(check bool) "distinct" true (distinct trees)
  done

let test_centroid_patterns () =
  let dims _ = (6, 4) in
  (* even *)
  (match Centroid.place ~cells:[ 0; 1; 2; 3 ] dims with
  | Error m -> Alcotest.fail m
  | Ok placed ->
      Alcotest.(check bool) "even point-symmetric" true
        (Result.is_ok
           (Constraints.Placement_check.common_centroid
              ~members:[ 0; 1; 2; 3 ] placed));
      Alcotest.(check bool) "even overlap-free" true
        (Result.is_ok (Constraints.Placement_check.overlap_free placed)));
  (* odd *)
  (match Centroid.place ~cells:[ 0; 1; 2 ] dims with
  | Error m -> Alcotest.fail m
  | Ok placed ->
      Alcotest.(check bool) "odd point-symmetric" true
        (Result.is_ok
           (Constraints.Placement_check.common_centroid ~members:[ 0; 1; 2 ]
              placed)));
  (* mismatched sizes rejected *)
  let dims c = if c = 0 then (6, 4) else (5, 4) in
  match Centroid.place ~cells:[ 0; 1 ] dims with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatch accepted"

let test_interdigitated () =
  let check ?(expect_units = None) counts =
    match Centroid.interdigitated ~counts ~unit_w:10 ~unit_h:8 with
    | Error m -> Alcotest.fail m
    | Ok units ->
        (match expect_units with
        | Some n -> Alcotest.(check int) "unit count" n (List.length units)
        | None -> ());
        (match Constraints.Placement_check.common_centroid_units units with
        | Ok () -> ()
        | Error v ->
            Alcotest.failf "units: %a" Constraints.Placement_check.pp_violation
              v);
        (* every owner got its units *)
        List.iter
          (fun (o, k) ->
            let mine =
              List.length (List.filter (fun (o', _) -> o' = o) units)
            in
            Alcotest.(check bool)
              (Printf.sprintf "owner %d units" o)
              true
              (mine = k || mine = 2 * k (* parity refinement *)))
          counts
  in
  (* the Miller bias mirror 1:2:2 *)
  check ~expect_units:(Some 5) [ (0, 1); (1, 2); (2, 2) ];
  (* classic ABBA *)
  check ~expect_units:(Some 4) [ (0, 2); (1, 2) ];
  (* a single odd owner holds the middle of an odd total: feasible as-is *)
  check ~expect_units:(Some 3) [ (0, 1); (1, 2) ];
  (* two odd owners force refinement into 2x units *)
  check ~expect_units:(Some 4) [ (0, 1); (1, 1) ];
  (* larger two-row pattern *)
  check ~expect_units:(Some 12) [ (0, 4); (1, 6); (2, 2) ];
  (* degenerate: single owner *)
  check ~expect_units:(Some 2) [ (7, 2) ];
  (* invalid input *)
  match Centroid.interdigitated ~counts:[ (0, 0) ] ~unit_w:10 ~unit_h:8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero count accepted"

let test_interdigitated_pattern_shape () =
  (* the 1:2:2 pattern must put the odd device exactly in the middle *)
  match
    Centroid.interdigitated ~counts:[ (0, 1); (1, 2); (2, 2) ] ~unit_w:10
      ~unit_h:8
  with
  | Error m -> Alcotest.fail m
  | Ok units ->
      let sorted =
        List.sort
          (fun (_, (a : Geometry.Rect.t)) (_, b) ->
            Int.compare a.Geometry.Rect.x b.Geometry.Rect.x)
          units
      in
      let owners = List.map fst sorted in
      (match owners with
      | [ _; _; middle; _; _ ] ->
          Alcotest.(check int) "odd owner centered" 0 middle
      | _ -> Alcotest.fail "expected 5 units");
      (* palindromic owner sequence *)
      Alcotest.(check (list int)) "palindrome" owners (List.rev owners)

let arb_tree_dims =
  let gen =
    QCheck.Gen.(
      int_range 1 20 >>= fun n ->
      int_bound 1_000_000 >>= fun seed ->
      let rng = Prelude.Rng.create seed in
      let t = Tree.random rng (List.init n Fun.id) in
      let dims =
        Array.init n (fun _ ->
            (1 + Prelude.Rng.int rng 30, 1 + Prelude.Rng.int rng 30))
      in
      return (t, dims))
  in
  QCheck.make gen

let prop_pack_overlap_free =
  QCheck.Test.make ~name:"pack overlap-free" ~count:300 arb_tree_dims
    (fun (t, d) ->
      Result.is_ok
        (Constraints.Placement_check.overlap_free (Tree.pack t (fun c -> d.(c)))))

let prop_root_at_origin =
  QCheck.Test.make ~name:"root at origin" ~count:300 arb_tree_dims
    (fun (t, d) ->
      match Tree.pack t (fun c -> d.(c)) with
      | root :: _ ->
          root.Geometry.Transform.rect.Geometry.Rect.x = 0
          && root.Geometry.Transform.rect.Geometry.Rect.y = 0
      | [] -> false)

let prop_perturb_preserves_cells =
  QCheck.Test.make ~name:"perturb preserves cell set" ~count:300
    QCheck.(pair (int_range 1 15) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let t = ref (Tree.random rng (List.init n Fun.id)) in
      let expected = List.init n Fun.id in
      let ok = ref true in
      for _ = 1 to 30 do
        t := Perturb.random rng !t;
        if sorted_cells !t <> expected then ok := false
      done;
      !ok)

(* flat-array trees *)

let test_nth_cell () =
  let rng = Prelude.Rng.create 5 in
  let t = Tree.random rng (List.init 9 Fun.id) in
  let cs = Tree.cells t in
  Alcotest.(check int) "size agrees" (List.length cs) (Tree.size t);
  List.iteri
    (fun i c -> Alcotest.(check int) "nth_cell agrees" c (Tree.nth_cell t i))
    cs;
  List.iter
    (fun c -> Alcotest.(check bool) "mem" true (Tree.mem t c))
    cs;
  Alcotest.(check bool) "not mem" false (Tree.mem t 9)

let prop_flat_roundtrip =
  QCheck.Test.make ~name:"flat round-trip identity" ~count:300 arb_tree_dims
    (fun (t, _) -> Tree.equal t (Flat.to_tree (Flat.of_tree t)))

let prop_flat_pack_matches =
  QCheck.Test.make ~name:"pack_into coordinates = pack (flat and pointer)"
    ~count:300 arb_tree_dims
    (fun (t, d) ->
      let n = Array.length d in
      let w = Array.map fst d and h = Array.map snd d in
      let x = Array.make n (-1) and y = Array.make n (-1) in
      let xf = Array.make n (-1) and yf = Array.make n (-1) in
      let contour = Geometry.Contour.scratch ((2 * n) + 1) in
      Tree.pack_into t contour ~w ~h ~x ~y;
      Flat.pack_into (Flat.of_tree t) contour ~w ~h ~x:xf ~y:yf;
      List.for_all
        (fun (c, (r : Geometry.Rect.t)) ->
          x.(c) = r.Geometry.Rect.x
          && y.(c) = r.Geometry.Rect.y
          && xf.(c) = r.Geometry.Rect.x
          && yf.(c) = r.Geometry.Rect.y)
        (Tree.pack_rects t (fun c -> d.(c))))

let prop_flat_perturb_undo =
  QCheck.Test.make ~name:"perturb+undo restores the flat tree exactly"
    ~count:300
    QCheck.(pair (int_range 1 15) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let flat = Flat.of_tree (Tree.random rng (List.init n Fun.id)) in
      let ok = ref true in
      for _ = 1 to 30 do
        let snapshot = Flat.copy flat in
        let u = Flat.perturb rng flat in
        Flat.undo flat u;
        if not (Flat.equal snapshot flat) then ok := false;
        (* advance the walk so later iterations test fresh shapes *)
        ignore (Flat.perturb rng flat)
      done;
      !ok)

let prop_flat_perturb_well_formed =
  QCheck.Test.make ~name:"perturbed flat trees stay well-formed" ~count:200
    QCheck.(pair (int_range 1 15) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let flat = Flat.of_tree (Tree.random rng (List.init n Fun.id)) in
      for _ = 1 to 40 do
        ignore (Flat.perturb rng flat)
      done;
      Analysis.Invariant.check_flat flat = []
      && List.sort Int.compare (Tree.cells (Flat.to_tree flat))
         = List.init n Fun.id)

let () =
  Alcotest.run "bstar"
    [
      ( "pack",
        [
          Alcotest.test_case "row/column" `Quick test_row_column;
          Alcotest.test_case "children semantics" `Quick test_left_child_abuts;
          Alcotest.test_case "contour" `Quick test_contour_tuck;
        ] );
      ( "edit",
        [
          Alcotest.test_case "delete/insert/swap" `Quick test_delete_insert_swap;
          Alcotest.test_case "nth_cell/size/mem" `Quick test_nth_cell;
        ] );
      ( "count",
        [
          Alcotest.test_case "catalan" `Quick test_catalan;
          Alcotest.test_case "8-module count" `Quick test_count_placements;
          Alcotest.test_case "enumerations" `Quick test_enumerate_sizes;
        ] );
      ( "centroid",
        [
          Alcotest.test_case "patterns" `Quick test_centroid_patterns;
          Alcotest.test_case "interdigitated" `Quick test_interdigitated;
          Alcotest.test_case "pattern shape" `Quick
            test_interdigitated_pattern_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pack_overlap_free;
            prop_root_at_origin;
            prop_perturb_preserves_cells;
            prop_flat_roundtrip;
            prop_flat_pack_matches;
            prop_flat_perturb_undo;
            prop_flat_perturb_well_formed;
          ] );
    ]
