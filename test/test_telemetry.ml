(* The observability layer: primitive semantics (counters, histograms,
   ring tracer, sinks), exporter round-trips, and the contract that
   matters most — instrumentation changes nothing about the search. *)

module T = Telemetry

(* A deterministic clock: each reading advances one millisecond. *)
let fake_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 1e-3;
    !t

let live_sink ?trace_capacity () = T.Sink.create ~clock:(fake_clock ()) ?trace_capacity ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- counters ------------------------------------------------------ *)

let test_counter_basics () =
  let s = live_sink () in
  let c = T.Sink.counter s "moves" in
  T.Counter.incr c;
  T.Counter.add c 4;
  Alcotest.(check int) "value" 5 (T.Counter.value c);
  let c' = T.Sink.counter s "moves" in
  T.Counter.incr c';
  Alcotest.(check int) "find-or-create aliases" 6 (T.Counter.value c);
  Alcotest.(check int) "null stays 0" 0 (T.Counter.value T.Counter.null);
  T.Counter.incr T.Counter.null;
  Alcotest.(check int) "null incr is no-op" 0 (T.Counter.value T.Counter.null)

let test_counter_merge_order_independent () =
  (* absorb children in two different orders: same totals *)
  let totals order =
    let parent = live_sink () in
    let kids =
      List.map
        (fun tid ->
          let k = T.Sink.child parent ~tid in
          T.Counter.add (T.Sink.counter k "a") (10 * tid);
          if tid <> 2 then T.Counter.incr (T.Sink.counter k "b");
          k)
        [ 1; 2; 3 ]
    in
    List.iter (T.Sink.absorb parent) (order kids);
    T.Sink.counters parent
  in
  Alcotest.(check (list (pair string int)))
    "forward = reverse"
    (totals (fun k -> k))
    (totals List.rev);
  Alcotest.(check (list (pair string int)))
    "totals" [ ("a", 60); ("b", 2) ]
    (totals (fun k -> k))

(* ---- histograms ---------------------------------------------------- *)

let observe_all h vs = List.iter (T.Hist.observe h) vs

let test_hist_stats () =
  let h = T.Hist.make "lat" in
  observe_all h [ 1.0; 2.0; 4.0; 8.0 ];
  Alcotest.(check int) "count" 4 (T.Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 15.0 (T.Hist.sum h);
  Alcotest.(check (float 1e-9)) "mean" 3.75 (T.Hist.mean h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (T.Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 8.0 (T.Hist.max_value h);
  (* log-bucketed: quantiles within the ~9% bucket resolution *)
  let p50 = T.Hist.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 near 3 (got %g)" p50)
    true
    (p50 > 2.0 && p50 < 4.5);
  let p100 = T.Hist.quantile h 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p100 near 8 (got %g)" p100)
    true
    (Float.abs (p100 -. 8.0) /. 8.0 < 0.1);
  T.Hist.observe h 0.0;
  Alcotest.(check int) "zero bucket counted" 5 (T.Hist.count h);
  Alcotest.(check (float 1e-9)) "zero is min" 0.0 (T.Hist.min_value h)

let test_hist_merge_associative () =
  let mk vs =
    let h = T.Hist.make "h" in
    observe_all h vs;
    h
  in
  let snapshot h =
    ( T.Hist.count h,
      T.Hist.sum h,
      List.map (T.Hist.quantile h) [ 0.1; 0.5; 0.9; 0.99 ] )
  in
  let a () = mk [ 1.0; 3.0; 9.0 ]
  and b () = mk [ 0.5; 27.0 ]
  and c () = mk [ 2.0; 2.0; 81.0 ] in
  (* (a+b)+c *)
  let left = a () in
  let bl = b () in
  T.Hist.merge bl (c ());
  T.Hist.merge left bl;
  (* a+(b+c) in the other grouping, absorbed in another order *)
  let right = c () in
  T.Hist.merge right (b ());
  T.Hist.merge right (a ());
  Alcotest.(check (triple int (float 1e-9) (list (float 1e-9))))
    "grouping and order don't matter" (snapshot left) (snapshot right)

(* ---- tracer ring --------------------------------------------------- *)

let test_tracer_drops_oldest () =
  let r = T.Tracer.create 3 in
  for i = 1 to 5 do
    T.Tracer.record r
      ~name:(Printf.sprintf "s%d" i)
      ~ts:(float_of_int i) ~dur:1.0 ~tid:0
  done;
  Alcotest.(check int) "length capped" 3 (T.Tracer.length r);
  Alcotest.(check int) "dropped counted" 2 (T.Tracer.dropped r);
  Alcotest.(check (list string))
    "newest survive, oldest first" [ "s3"; "s4"; "s5" ]
    (List.map (fun (s : T.Tracer.span) -> s.T.Tracer.name) (T.Tracer.spans r));
  T.Tracer.add_dropped r 7;
  Alcotest.(check int) "merged drop counts" 9 (T.Tracer.dropped r)

let test_sink_spans () =
  let s = live_sink ~trace_capacity:8 () in
  let t0 = T.Sink.span_begin s in
  let t1 = T.Sink.lap s "stage1" t0 in
  T.Sink.span_end s "stage2" t1;
  let r = T.Sink.time s "stage3" (fun () -> 42) in
  Alcotest.(check int) "time returns the result" 42 r;
  Alcotest.(check (list string))
    "recording order" [ "stage1"; "stage2"; "stage3" ]
    (List.map (fun (sp : T.Tracer.span) -> sp.T.Tracer.name) (T.Sink.spans s));
  List.iter
    (fun (sp : T.Tracer.span) ->
      Alcotest.(check bool) "positive duration" true (sp.T.Tracer.dur > 0.0))
    (T.Sink.spans s)

(* ---- exporters ----------------------------------------------------- *)

let test_check_json () =
  let ok s = Alcotest.(check bool) s true (Result.is_ok (T.Export.check_json s)) in
  let bad s =
    Alcotest.(check bool) s false (Result.is_ok (T.Export.check_json s))
  in
  ok {|{"a":[1,2.5,-3e2],"b":"x\ny","c":{},"d":[],"e":null,"f":true}|};
  ok {|[ ]|};
  ok {|"just a string"|};
  ok {|-0.5e-2|};
  bad {|{"a":1,}|};
  bad {|{"a" 1}|};
  bad {|[1,2|};
  bad {|{"a":01}|};
  bad {|"unterminated|};
  bad {|{"a":1} trailing|};
  bad ""

let populated_sink () =
  let s = live_sink ~trace_capacity:16 () in
  T.Counter.add (T.Sink.counter s "n\"quoted") 3;
  T.Sink.span_end s "pack" (T.Sink.span_begin s);
  T.Sink.sample s ~round:0 ~temperature:12.5 ~acceptance:0.75 ~best_cost:99.0;
  T.Sink.sample s ~round:1 ~temperature:11.0 ~acceptance:0.5 ~best_cost:90.0;
  s

let test_chrome_json_roundtrip () =
  let s = populated_sink () in
  let json = T.Export.chrome_json s in
  (match T.Export.check_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace does not parse: %s\n%s" e json);
  Alcotest.(check bool) "has X span" true (contains json {|"ph":"X"|});
  Alcotest.(check bool) "has C sample" true (contains json {|"ph":"C"|});
  Alcotest.(check bool) "span name" true (contains json {|"name":"pack"|});
  Alcotest.(check bool) "counter escaped into otherData" true
    (contains json {|"n\"quoted":3|})

let test_conv_csv () =
  let s = populated_sink () in
  let lines = String.split_on_char '\n' (String.trim (T.Export.conv_csv s)) in
  Alcotest.(check string)
    "header" "chain,round,temperature,acceptance,best_cost" (List.hd lines);
  Alcotest.(check int) "one line per sample" 3 (List.length lines);
  Alcotest.(check bool) "row shape" true
    (String.length (List.nth lines 1) > 0
    && String.sub (List.nth lines 1) 0 4 = "0,0,")

let test_text_summary () =
  let s = populated_sink () in
  let txt = T.Export.text s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains txt needle))
    [ "counters:"; "spans:"; "pack"; "convergence:" ];
  Alcotest.(check string) "empty sink prints nothing" "" (T.Export.text T.Sink.null)

(* Ring eviction must be disclosed in the text summary: the span
   statistics otherwise silently describe a truncated sample. *)
let test_text_dropped_spans () =
  let s = live_sink ~trace_capacity:4 () in
  for _ = 1 to 10 do
    let t0 = T.Sink.span_begin s in
    T.Sink.span_end s "work" t0
  done;
  Alcotest.(check int) "6 of 10 evicted" 6 (T.Sink.dropped_spans s);
  let txt = T.Export.text s in
  Alcotest.(check bool) "discloses eviction count" true
    (contains txt "spans dropped: 6");
  Alcotest.(check bool) "names the cause" true
    (contains txt "ring capacity exceeded")

(* Bucketed or not, a histogram's quantile function must be monotone in
   q — the regression report reads q50/q90/q99 side by side and an
   inversion would be nonsense. *)
let prop_hist_quantile_monotone =
  QCheck.Test.make ~name:"hist quantiles monotone in q" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
    (fun vs ->
      let h = T.Hist.make "m" in
      List.iter (T.Hist.observe h) vs;
      let vals =
        List.map (T.Hist.quantile h)
          [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

(* ---- pipeline integration ------------------------------------------ *)

let small_params =
  {
    Anneal.Sa.initial_temperature = Some 50.0;
    final_temperature = 1e-2;
    moves_per_round = 40;
    schedule = Anneal.Schedule.default;
    frozen_rounds = 4;
    max_rounds = 25;
  }

let circuit () =
  Netlist.Circuit.make ~name:"tiny"
    ~modules:
      [
        Netlist.Circuit.block ~name:"a" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"b" ~w:10 ~h:6;
        Netlist.Circuit.block ~name:"c" ~w:4 ~h:12;
        Netlist.Circuit.block ~name:"d" ~w:8 ~h:8;
        Netlist.Circuit.block ~name:"e" ~w:6 ~h:6;
      ]
    ~nets:
      [
        Netlist.Net.make ~name:"n1" ~pins:[ 0; 1 ] ();
        Netlist.Net.make ~name:"n2" ~pins:[ 2; 3; 4 ] ();
      ]

(* The load-bearing property: a live sink observes the search without
   perturbing it. *)
let test_on_off_identical () =
  let run telemetry =
    let out =
      Placer.Sa_seqpair.place ?telemetry ~params:small_params
        ~rng:(Prelude.Rng.create 42) (circuit ())
    in
    (out.Placer.Sa_seqpair.cost, out.Placer.Sa_seqpair.evaluated)
  in
  Alcotest.(check (pair (float 0.0) int))
    "seqpair identical with telemetry on"
    (run None)
    (run (Some (live_sink ())));
  let run_b telemetry =
    let out =
      Placer.Sa_bstar.place ?telemetry ~params:small_params
        ~rng:(Prelude.Rng.create 42) (circuit ())
    in
    (out.Placer.Sa_bstar.cost, out.Placer.Sa_bstar.evaluated)
  in
  Alcotest.(check (pair (float 0.0) int))
    "bstar identical with telemetry on"
    (run_b None)
    (run_b (Some (live_sink ())))

let assoc name l =
  match List.assoc_opt name l with Some v -> v | None -> 0

let test_pipeline_coverage () =
  let s = live_sink ~trace_capacity:4096 () in
  let out =
    Placer.Sa_seqpair.place ~telemetry:s ~params:small_params
      ~rng:(Prelude.Rng.create 7) (circuit ())
  in
  Alcotest.(check bool) "placement produced" true (out.Placer.Sa_seqpair.cost > 0.0);
  let counters = T.Sink.counters s in
  Alcotest.(check bool) "eval.costs counted" true (assoc "eval.costs" counters > 0);
  Alcotest.(check bool) "packs counted" true (assoc "seqpair.packs" counters > 0);
  Alcotest.(check int)
    "every evaluation packed" (assoc "eval.costs" counters)
    (assoc "seqpair.packs" counters);
  let moves =
    assoc "sa.moves.seqpair.accept" counters
    + assoc "sa.moves.seqpair.reject" counters
    + assoc "sa.moves.rotation.accept" counters
    + assoc "sa.moves.rotation.reject" counters
  in
  Alcotest.(check int)
    "move tallies = engine moves"
    (small_params.Anneal.Sa.moves_per_round * out.Placer.Sa_seqpair.sa_rounds)
    moves;
  let span_names =
    List.sort_uniq String.compare
      (List.map (fun (sp : T.Tracer.span) -> sp.T.Tracer.name) (T.Sink.spans s))
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("span " ^ n) true (List.mem n span_names))
    [ "sa.round"; "eval.cost"; "eval.pack"; "eval.hpwl"; "eval.compose" ];
  Alcotest.(check int)
    "one convergence sample per round" out.Placer.Sa_seqpair.sa_rounds
    (List.length (T.Sink.convergence s));
  let h = List.assoc "sa.acceptance" (T.Sink.histograms s) in
  Alcotest.(check int)
    "acceptance histogram fed per round" out.Placer.Sa_seqpair.sa_rounds
    (T.Hist.count h)

let test_parallel_telemetry_merged () =
  (* roomy ring: absorbing three chains' span history must not evict
     the coordinator's own parallel.* spans *)
  let s = live_sink ~trace_capacity:32768 () in
  let out =
    Placer.Sa_bstar.place ~telemetry:s ~params:small_params ~chains:3 ~workers:2
      ~rng:(Prelude.Rng.create 11) (circuit ())
  in
  let counters = T.Sink.counters s in
  Alcotest.(check bool) "exchanges counted" true
    (assoc "parallel.exchanges" counters > 0);
  (* one arena evaluation per engine move plus the initial cost of each
     of the 3 chains (t0 is given, so no estimation walk) *)
  Alcotest.(check int)
    "children's evaluation counters merged"
    (out.Placer.Sa_bstar.evaluated + 3)
    (assoc "eval.costs" counters);
  let tids =
    List.sort_uniq Int.compare
      (List.map
         (fun (c : T.Convergence.sample) -> c.T.Convergence.tid)
         (T.Sink.convergence s))
  in
  Alcotest.(check (list int)) "samples from every chain" [ 1; 2; 3 ] tids;
  let span_names =
    List.sort_uniq String.compare
      (List.map (fun (sp : T.Tracer.span) -> sp.T.Tracer.name) (T.Sink.spans s))
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("span " ^ n) true (List.mem n span_names))
    [ "parallel.slice"; "parallel.exchange"; "chain.slice" ]

let () =
  Alcotest.run "telemetry"
    [
      ( "counter",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "merge order-independent" `Quick
            test_counter_merge_order_independent;
        ] );
      ( "hist",
        [
          Alcotest.test_case "stats" `Quick test_hist_stats;
          Alcotest.test_case "merge associative" `Quick
            test_hist_merge_associative;
          QCheck_alcotest.to_alcotest prop_hist_quantile_monotone;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring drops oldest" `Quick test_tracer_drops_oldest;
          Alcotest.test_case "sink spans" `Quick test_sink_spans;
        ] );
      ( "export",
        [
          Alcotest.test_case "json checker" `Quick test_check_json;
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_json_roundtrip;
          Alcotest.test_case "convergence csv" `Quick test_conv_csv;
          Alcotest.test_case "text summary" `Quick test_text_summary;
          Alcotest.test_case "dropped spans disclosed" `Quick
            test_text_dropped_spans;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "on/off bit-identical" `Quick test_on_off_identical;
          Alcotest.test_case "span and counter coverage" `Quick
            test_pipeline_coverage;
          Alcotest.test_case "parallel sinks merge" `Quick
            test_parallel_telemetry_merged;
        ] );
    ]
