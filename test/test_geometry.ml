open Geometry

let rect = Alcotest.testable Rect.pp Rect.equal

let test_interval_basics () =
  let i = Interval.make 2 7 in
  Alcotest.(check int) "length" 5 (Interval.length i);
  Alcotest.(check bool) "contains lo" true (Interval.contains i 2);
  Alcotest.(check bool) "excludes hi" false (Interval.contains i 7);
  Alcotest.(check bool) "touching do not overlap" false
    (Interval.overlaps i (Interval.make 7 9));
  Alcotest.(check bool) "proper overlap" true
    (Interval.overlaps i (Interval.make 6 9));
  Alcotest.(check int) "intersect length" 1
    (Interval.length (Interval.intersect i (Interval.make 6 9)));
  Alcotest.(check bool) "empty intersect" true
    (Interval.is_empty (Interval.intersect i (Interval.make 9 12)))

let test_interval_mirror () =
  let i = Interval.make 2 7 in
  let m = Interval.mirror ~axis2:10 i in
  Alcotest.(check int) "mirror lo" 3 m.Interval.lo;
  Alcotest.(check int) "mirror hi" 8 m.Interval.hi;
  Alcotest.(check bool) "involutive" true
    (Interval.equal i (Interval.mirror ~axis2:10 m))

let test_interval_hull () =
  let h = Interval.hull (Interval.make 1 3) (Interval.make 8 9) in
  Alcotest.(check int) "hull lo" 1 h.Interval.lo;
  Alcotest.(check int) "hull hi" 9 h.Interval.hi;
  Alcotest.(check bool) "empty neutral" true
    (Interval.equal (Interval.make 1 3)
       (Interval.hull (Interval.make 1 3) Interval.empty))

let test_rect_overlap () =
  let a = Rect.make ~x:0 ~y:0 ~w:10 ~h:10 in
  let b = Rect.make ~x:10 ~y:0 ~w:5 ~h:5 in
  Alcotest.(check bool) "edge-touching no overlap" false (Rect.overlaps a b);
  let c = Rect.make ~x:9 ~y:9 ~w:3 ~h:3 in
  Alcotest.(check bool) "corner overlap" true (Rect.overlaps a c);
  Alcotest.(check int) "intersection area" 1 (Rect.intersection_area a c)

let test_rect_mirror () =
  let a = Rect.make ~x:3 ~y:1 ~w:4 ~h:2 in
  let m = Rect.mirror_y ~axis2:20 a in
  Alcotest.(check int) "mirrored x" 13 m.Rect.x;
  Alcotest.(check rect) "involutive" a (Rect.mirror_y ~axis2:20 m);
  (* a cell ending at the axis maps to a cell starting at it *)
  let touching = Rect.make ~x:6 ~y:0 ~w:4 ~h:1 in
  let m = Rect.mirror_y ~axis2:20 touching in
  Alcotest.(check int) "axis-adjacent" 10 m.Rect.x

let test_rect_bbox () =
  let a = Rect.make ~x:1 ~y:1 ~w:2 ~h:2 in
  let b = Rect.make ~x:5 ~y:0 ~w:1 ~h:6 in
  let bb = Rect.bbox a b in
  Alcotest.(check rect) "bbox" (Rect.make ~x:1 ~y:0 ~w:5 ~h:6) bb;
  Alcotest.(check rect) "degenerate neutral" a
    (Rect.bbox a (Rect.make ~x:100 ~y:100 ~w:0 ~h:5))

let test_contour_drop () =
  let c = Contour.empty in
  let y1, c = Contour.drop c ~x:0 ~w:10 ~h:5 in
  Alcotest.(check int) "first cell on ground" 0 y1;
  let y2, c = Contour.drop c ~x:5 ~w:10 ~h:3 in
  Alcotest.(check int) "lands on overlap" 5 y2;
  let y3, c = Contour.drop c ~x:10 ~w:2 ~h:1 in
  Alcotest.(check int) "lands on second" 8 y3;
  let y4, _ = Contour.drop c ~x:20 ~w:5 ~h:1 in
  Alcotest.(check int) "clear ground beyond" 0 y4

let test_contour_raise_to () =
  let c = Contour.raise_to Contour.empty ~x0:0 ~x1:10 ~y:4 in
  let c = Contour.raise_to c ~x0:3 ~x1:6 ~y:9 in
  Alcotest.(check int) "inside" 9 (Contour.height_at c 4);
  Alcotest.(check int) "left part" 4 (Contour.height_at c 1);
  Alcotest.(check int) "right part" 4 (Contour.height_at c 8);
  Alcotest.(check int) "max over range" 9 (Contour.max_height c ~x0:0 ~x1:10);
  Alcotest.(check int) "max_y" 9 (Contour.max_y c)

let test_contour_segments_invariant () =
  let rng = Prelude.Rng.create 11 in
  for _ = 1 to 200 do
    let c = ref Contour.empty in
    for _ = 1 to 20 do
      let x = Prelude.Rng.int rng 50
      and w = 1 + Prelude.Rng.int rng 20
      and h = 1 + Prelude.Rng.int rng 10 in
      let _, c' = Contour.drop !c ~x ~w ~h in
      c := c'
    done;
    let segs = Contour.segments !c in
    let rec check = function
      | (a : Contour.segment) :: (b : Contour.segment) :: rest ->
          Alcotest.(check bool) "sorted disjoint" true (a.x1 <= b.x0);
          Alcotest.(check bool) "merged" true (a.x1 < b.x0 || a.y <> b.y);
          check (b :: rest)
      | [ s ] -> Alcotest.(check bool) "positive" true (s.y > 0 && s.x1 > s.x0)
      | [] -> ()
    in
    check segs
  done

let test_contour_scratch_basics () =
  let s = Contour.scratch 4 in
  Alcotest.(check int) "first cell on ground" 0
    (Contour.drop_into s ~x:0 ~w:10 ~h:5);
  Alcotest.(check int) "lands on overlap" 5
    (Contour.drop_into s ~x:5 ~w:10 ~h:3);
  Alcotest.(check int) "lands on second" 8
    (Contour.drop_into s ~x:10 ~w:2 ~h:1);
  Alcotest.(check int) "clear ground beyond" 0
    (Contour.drop_into s ~x:20 ~w:5 ~h:1);
  Alcotest.(check int) "max over range" 9
    (Contour.max_height_into s ~x0:0 ~x1:30);
  Contour.clear s;
  Alcotest.(check int) "flat after clear" 0
    (Contour.max_height_into s ~x0:0 ~x1:1000);
  Alcotest.(check int) "reusable after clear" 0
    (Contour.drop_into s ~x:3 ~w:4 ~h:2)

let prop_contour_scratch_matches_persistent =
  QCheck.Test.make
    ~name:"contour scratch = persistent contour (drops, raises, segments)"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prelude.Rng.create seed in
      (* deliberately tiny capacity so the arena has to grow *)
      let s = Contour.scratch 2 in
      let c = ref Contour.empty in
      let ok = ref true in
      for _ = 1 to 30 do
        if Prelude.Rng.int rng 4 = 0 then begin
          let x0 = Prelude.Rng.int rng 40 in
          let x1 = x0 + 1 + Prelude.Rng.int rng 15 in
          let y = Prelude.Rng.int rng 12 in
          c := Contour.raise_to !c ~x0 ~x1 ~y;
          Contour.raise_into s ~x0 ~x1 ~y
        end
        else begin
          let x = Prelude.Rng.int rng 40
          and w = 1 + Prelude.Rng.int rng 15
          and h = 1 + Prelude.Rng.int rng 10 in
          let y, c' = Contour.drop !c ~x ~w ~h in
          c := c';
          ok := !ok && Contour.drop_into s ~x ~w ~h = y
        end
      done;
      !ok && Contour.scratch_segments s = Contour.segments !c)

let test_outline_covered_area () =
  let rects =
    [ Rect.make ~x:0 ~y:0 ~w:10 ~h:10; Rect.make ~x:5 ~y:5 ~w:10 ~h:10 ]
  in
  Alcotest.(check int) "union area" (100 + 100 - 25)
    (Outline.covered_area rects);
  Alcotest.(check int) "dead area" (15 * 15 - 175) (Outline.dead_area rects)

let test_outline_connected () =
  let a = Rect.make ~x:0 ~y:0 ~w:5 ~h:5 in
  let b = Rect.make ~x:5 ~y:0 ~w:5 ~h:5 in
  let c = Rect.make ~x:11 ~y:0 ~w:5 ~h:5 in
  Alcotest.(check bool) "edge-adjacent connected" true (Outline.connected [ a; b ]);
  Alcotest.(check bool) "gap disconnects" false (Outline.connected [ a; c ]);
  Alcotest.(check bool) "bridge reconnects" true
    (Outline.connected [ a; c; Rect.make ~x:4 ~y:0 ~w:8 ~h:2 ]);
  let corner = Rect.make ~x:5 ~y:5 ~w:3 ~h:3 in
  Alcotest.(check bool) "corner contact not connected" false
    (Outline.connected [ a; corner ]);
  Alcotest.(check bool) "empty trivially connected" true (Outline.connected [])

let test_outline_top_profile () =
  let rects =
    [ Rect.make ~x:0 ~y:0 ~w:4 ~h:3; Rect.make ~x:4 ~y:0 ~w:4 ~h:7 ]
  in
  let profile = Outline.top_profile rects in
  Alcotest.(check int) "two steps" 2 (List.length profile);
  (match profile with
  | [ s1; s2 ] ->
      Alcotest.(check int) "step1 height" 3 s1.Contour.y;
      Alcotest.(check int) "step2 height" 7 s2.Contour.y
  | _ -> Alcotest.fail "expected two segments")

let test_transform_mirror () =
  let p =
    Transform.place ~cell:0 ~x:2 ~y:3 ~w:4 ~h:5 ~orient:Orientation.R0
  in
  let m = Transform.mirror_y ~axis2:20 p in
  Alcotest.(check int) "mirrored x" 14 m.Transform.rect.Rect.x;
  Alcotest.(check bool) "orientation flipped" true
    (Orientation.equal m.Transform.orient Orientation.MY)

let test_orientation () =
  Alcotest.(check (pair int int)) "R90 swaps" (5, 3)
    (Orientation.dims Orientation.R90 ~w:3 ~h:5);
  Alcotest.(check (pair int int)) "MY keeps" (3, 5)
    (Orientation.dims Orientation.MY ~w:3 ~h:5);
  List.iter
    (fun o ->
      Alcotest.(check bool) "mirror_y involutive" true
        (Orientation.equal o (Orientation.mirror_y (Orientation.mirror_y o)));
      Alcotest.(check (option string)) "string roundtrip"
        (Some (Orientation.to_string o))
        (Option.map Orientation.to_string
           (Orientation.of_string (Orientation.to_string o))))
    Orientation.all

let test_guard_ring_single () =
  let cells = [ Rect.make ~x:10 ~y:10 ~w:20 ~h:12 ] in
  let ring = Guard_ring.generate ~clearance:2 ~thickness:3 cells in
  Alcotest.(check bool) "non-empty" true (ring <> []);
  List.iter
    (fun seg ->
      List.iter
        (fun cell ->
          Alcotest.(check bool) "ring clears the cell" false
            (Rect.overlaps seg cell))
        cells)
    ring;
  Alcotest.(check bool) "sealed" true (Guard_ring.encloses ~ring cells);
  (* ring area of a single rect: outer band = (w+2(c+t))(h+2(c+t)) -
     (w+2c)(h+2c) *)
  let area = List.fold_left (fun acc r -> acc + Rect.area r) 0 ring in
  Alcotest.(check int) "band area" ((30 * 22) - (24 * 16)) area

let test_guard_ring_l_shape () =
  let cells =
    [ Rect.make ~x:0 ~y:0 ~w:30 ~h:10; Rect.make ~x:0 ~y:10 ~w:10 ~h:20 ]
  in
  let ring = Guard_ring.generate ~clearance:1 ~thickness:2 cells in
  Alcotest.(check bool) "sealed L" true (Guard_ring.encloses ~ring cells);
  List.iter
    (fun seg ->
      List.iter
        (fun cell ->
          Alcotest.(check bool) "clears cells" false (Rect.overlaps seg cell))
        cells)
    ring;
  (* ring segments must not overlap each other *)
  let rec pairwise = function
    | [] -> ()
    | r :: rest ->
        List.iter
          (fun r' ->
            Alcotest.(check bool) "disjoint segments" false
              (Rect.overlaps r r'))
          rest;
        pairwise rest
  in
  pairwise ring

let test_guard_ring_not_sealed_detection () =
  let cells = [ Rect.make ~x:10 ~y:10 ~w:10 ~h:10 ] in
  (* a ring with a gap: only three sides *)
  let broken =
    [
      Rect.make ~x:5 ~y:5 ~w:20 ~h:2;
      Rect.make ~x:5 ~y:23 ~w:20 ~h:2;
      Rect.make ~x:5 ~y:7 ~w:2 ~h:16;
    ]
  in
  Alcotest.(check bool) "gap detected" false
    (Guard_ring.encloses ~ring:broken cells)

let prop_guard_ring_seals =
  QCheck.Test.make ~name:"guard ring always seals connected groups" ~count:100
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, k) ->
      let rng = Prelude.Rng.create seed in
      (* build a connected group by chaining rects *)
      let rects = ref [ Rect.make ~x:0 ~y:0 ~w:(5 + Prelude.Rng.int rng 20) ~h:(5 + Prelude.Rng.int rng 20) ] in
      for _ = 2 to k do
        match !rects with
        | last :: _ ->
            let w = 5 + Prelude.Rng.int rng 20
            and h = 5 + Prelude.Rng.int rng 20 in
            let r =
              if Prelude.Rng.bool rng then
                Rect.make ~x:(Rect.x_max last) ~y:last.Rect.y ~w ~h
              else Rect.make ~x:last.Rect.x ~y:(Rect.y_max last) ~w ~h
            in
            rects := r :: !rects
        | [] -> ()
      done;
      let ring =
        Guard_ring.generate ~clearance:(Prelude.Rng.int rng 4)
          ~thickness:(1 + Prelude.Rng.int rng 4)
          !rects
      in
      Guard_ring.encloses ~ring !rects
      && List.for_all
           (fun seg -> List.for_all (fun c -> not (Rect.overlaps seg c)) !rects)
           ring)

(* qcheck properties *)

let rect_gen =
  QCheck.Gen.(
    map
      (fun (x, y, w, h) -> Rect.make ~x ~y ~w ~h)
      (quad (int_bound 100) (int_bound 100) (int_bound 50) (int_bound 50)))

let arb_rect = QCheck.make ~print:(Format.asprintf "%a" Rect.pp) rect_gen

let prop_mirror_preserves_area =
  QCheck.Test.make ~name:"mirror_y preserves area" ~count:500 arb_rect
    (fun r -> Rect.area (Rect.mirror_y ~axis2:321 r) = Rect.area r)

let prop_covered_le_bbox =
  QCheck.Test.make ~name:"covered area <= bbox area" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 8) arb_rect)
    (fun rects ->
      let rects = List.filter (fun r -> Rect.area r > 0) rects in
      QCheck.assume (rects <> []);
      Outline.covered_area rects <= Rect.area (Outline.bounding_box rects))

let prop_intersection_symmetric =
  QCheck.Test.make ~name:"intersection area symmetric" ~count:500
    QCheck.(pair arb_rect arb_rect)
    (fun (a, b) -> Rect.intersection_area a b = Rect.intersection_area b a)

let () =
  Alcotest.run "geometry"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "mirror" `Quick test_interval_mirror;
          Alcotest.test_case "hull" `Quick test_interval_hull;
        ] );
      ( "rect",
        [
          Alcotest.test_case "overlap" `Quick test_rect_overlap;
          Alcotest.test_case "mirror" `Quick test_rect_mirror;
          Alcotest.test_case "bbox" `Quick test_rect_bbox;
        ] );
      ( "contour",
        [
          Alcotest.test_case "drop" `Quick test_contour_drop;
          Alcotest.test_case "raise_to" `Quick test_contour_raise_to;
          Alcotest.test_case "invariants" `Quick test_contour_segments_invariant;
          Alcotest.test_case "scratch" `Quick test_contour_scratch_basics;
        ] );
      ( "outline",
        [
          Alcotest.test_case "covered area" `Quick test_outline_covered_area;
          Alcotest.test_case "connected" `Quick test_outline_connected;
          Alcotest.test_case "top profile" `Quick test_outline_top_profile;
        ] );
      ( "transform",
        [
          Alcotest.test_case "mirror" `Quick test_transform_mirror;
          Alcotest.test_case "orientation" `Quick test_orientation;
        ] );
      ( "guard ring",
        [
          Alcotest.test_case "single cell" `Quick test_guard_ring_single;
          Alcotest.test_case "L shape" `Quick test_guard_ring_l_shape;
          Alcotest.test_case "gap detection" `Quick
            test_guard_ring_not_sealed_detection;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mirror_preserves_area;
            prop_covered_le_bbox;
            prop_intersection_symmetric;
            prop_guard_ring_seals;
            prop_contour_scratch_matches_persistent;
          ] );
    ]
