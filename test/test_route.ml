let test_grid_basics () =
  let g = Route.Grid.create ~cols:10 ~rows:5 in
  Alcotest.(check bool) "free initially" false (Route.Grid.blocked g (3, 3));
  Route.Grid.block g (3, 3);
  Alcotest.(check bool) "blocked after" true (Route.Grid.blocked g (3, 3));
  Alcotest.(check bool) "bounds" false (Route.Grid.in_bounds g (10, 0));
  Route.Grid.block g (99, 99) (* ignored *);
  Alcotest.(check bool) "occupancy" true
    (Route.Grid.occupancy g = 1.0 /. 50.0);
  let copy = Route.Grid.copy g in
  Route.Grid.block copy (0, 0);
  Alcotest.(check bool) "copy independent" false (Route.Grid.blocked g (0, 0))

let test_path_straight () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  match Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (5, 0) ] with
  | None -> Alcotest.fail "no path on empty grid"
  | Some pts ->
      Alcotest.(check int) "shortest length" 6 (List.length pts);
      Alcotest.(check bool) "starts at src" true (List.hd pts = (0, 0));
      Alcotest.(check bool) "ends at dst" true
        (List.nth pts (List.length pts - 1) = (5, 0))

let test_path_detour () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  (* wall across column 3 except row 9 *)
  for r = 0 to 8 do
    Route.Grid.block g (3, r)
  done;
  match Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (6, 0) ] with
  | None -> Alcotest.fail "detour exists"
  | Some pts ->
      (* must climb to row 9 and back: 6 right + 18 vertical + 1 = 25 *)
      Alcotest.(check int) "detour length" 25 (List.length pts);
      Alcotest.(check bool) "avoids wall" true
        (List.for_all (fun (c, r) -> not (c = 3 && r <= 8)) pts)

let test_path_blocked () =
  let g = Route.Grid.create ~cols:10 ~rows:10 in
  for r = 0 to 9 do
    Route.Grid.block g (3, r)
  done;
  Alcotest.(check bool) "fully walled" true
    (Route.Maze.path g ~src:[ (0, 0) ] ~dst:[ (6, 0) ] = None)

let test_multi_terminal () =
  let g = Route.Grid.create ~cols:20 ~rows:20 in
  let terminals = [ (0, 0); (10, 0); (5, 9) ] in
  match Route.Maze.route_net g ~terminals with
  | None -> Alcotest.fail "routable"
  | Some tree ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "terminal covered" true (List.mem t tree))
        terminals;
      (* tree is connected: BFS over the tree cells *)
      let tbl = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace tbl p ()) tree;
      let seen = Hashtbl.create 64 in
      let rec visit p =
        if Hashtbl.mem tbl p && not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          let c, r = p in
          List.iter visit [ (c + 1, r); (c - 1, r); (c, r + 1); (c, r - 1) ]
        end
      in
      visit (List.hd tree);
      Alcotest.(check int) "connected" (List.length tree)
        (Hashtbl.length seen)

let sym_placement () =
  (* a mirrored pair + an on-axis tail, nets mirroring each other *)
  let circuit =
    Netlist.Circuit.make ~name:"dp"
      ~modules:
        [
          Netlist.Circuit.block ~name:"l" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"r" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"tail" ~w:100 ~h:100;
          Netlist.Circuit.block ~name:"outl" ~w:60 ~h:60;
          Netlist.Circuit.block ~name:"outr" ~w:60 ~h:60;
        ]
      ~nets:
        [
          Netlist.Net.make ~name:"nl" ~pins:[ 0; 3 ] ();
          Netlist.Net.make ~name:"nr" ~pins:[ 1; 4 ] ();
        ]
  in
  let place cell x y w h =
    Geometry.Transform.place ~cell ~x ~y ~w ~h ~orient:Geometry.Orientation.R0
  in
  (* axis at x = 300 (axis2 = 600) *)
  let placed =
    [
      place 0 100 0 100 100;
      place 1 400 0 100 100;
      place 2 250 120 100 100;
      place 3 0 240 60 60;
      place 4 540 240 60 60;
    ]
  in
  (Placer.Placement.make circuit placed,
   Constraints.Symmetry_group.make ~pairs:[ (0, 1); (3, 4) ] ~selfs:[ 2 ] ())

let test_mirrored_routing () =
  let placement, grp = sym_placement () in
  let result = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  Alcotest.(check (list string)) "nothing failed" []
    (List.map
       (fun f -> f.Route.Router.failed_net)
       result.Route.Router.failed);
  Alcotest.(check int) "both nets routed" 2
    (List.length result.Route.Router.routed);
  Alcotest.(check int) "one mirrored pair" 1
    (List.length result.Route.Router.mirrored_pairs);
  (* exact mirror images *)
  let route name =
    (List.find (fun r -> r.Route.Router.net = name) result.Route.Router.routed)
      .Route.Router.points
  in
  let nl = route "nl" and nr = route "nr" in
  Alcotest.(check int) "equal lengths" (List.length nl) (List.length nr);
  (* recover the reflection constant from the outer pin pair *)
  let axis2_grid =
    let gc x = fst (Route.Grid.snap ~pitch:20 ~margin:4 (x, 0)) in
    gc 150 + gc 450
  in
  Alcotest.(check bool) "exact mirror" true
    (Route.Router.is_mirror_route ~axis2_grid nl nr)

(* A gcell holds one horizontal and one vertical track: two routes may
   legally cross in a cell, but three sharing one cell (or any residual
   overflow) means negotiation failed. *)
let test_routes_within_capacity () =
  let placement, grp = sym_placement () in
  let result = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  Alcotest.(check int) "no overflow" 0 result.Route.Router.overflow;
  let usage = Hashtbl.create 97 in
  List.iter
    (fun (r : Route.Router.route) ->
      List.iter
        (fun p ->
          Hashtbl.replace usage p
            (1 + Option.value ~default:0 (Hashtbl.find_opt usage p)))
        r.Route.Router.points)
    result.Route.Router.routed;
  let worst = Hashtbl.fold (fun _ n acc -> max n acc) usage 0 in
  Alcotest.(check bool) "within gcell capacity" true (worst <= 2)

(* Randomized mirrored fixture: [k] units of a device pair plus a load
   pair, exactly mirrored about doubled-layout axis 1200, one net per
   side connecting device to load. Geometry is derived from [seed] so
   QCheck shrinks over a compact space. *)
let random_sym_fixture ~k ~seed =
  let rng = Prelude.Rng.create (seed + 1) in
  let axis2 = 1200 in
  let modules = ref [] and nets = ref [] and placed = ref [] in
  let pairs = ref [] in
  let place cell x y w h =
    Geometry.Transform.place ~cell ~x ~y ~w ~h ~orient:Geometry.Orientation.R0
  in
  for i = 0 to k - 1 do
    let base = 4 * i in
    let w = 40 + (20 * Prelude.Rng.int rng 5)
    and h = 40 + (20 * Prelude.Rng.int rng 5)
    and xl = 20 * Prelude.Rng.int rng 15
    and y = 300 * i in
    let w2 = 40 + (20 * Prelude.Rng.int rng 3)
    and x2 = 20 * Prelude.Rng.int rng 10
    and y2 = (300 * i) + 160 in
    modules :=
      !modules
      @ [
          Netlist.Circuit.block ~name:(Printf.sprintf "dl%d" i) ~w ~h;
          Netlist.Circuit.block ~name:(Printf.sprintf "dr%d" i) ~w ~h;
          Netlist.Circuit.block ~name:(Printf.sprintf "ol%d" i) ~w:w2 ~h:40;
          Netlist.Circuit.block ~name:(Printf.sprintf "or%d" i) ~w:w2 ~h:40;
        ];
    nets :=
      !nets
      @ [
          Netlist.Net.make ~name:(Printf.sprintf "nl%d" i)
            ~pins:[ base; base + 2 ] ();
          Netlist.Net.make ~name:(Printf.sprintf "nr%d" i)
            ~pins:[ base + 1; base + 3 ] ();
        ];
    placed :=
      !placed
      @ [
          place base xl y w h;
          place (base + 1) (axis2 - xl - w) y w h;
          place (base + 2) x2 y2 w2 40;
          place (base + 3) (axis2 - x2 - w2) y2 w2 40;
        ];
    pairs := !pairs @ [ (base, base + 1); (base + 2, base + 3) ]
  done;
  let circuit =
    Netlist.Circuit.make ~name:"qsym" ~modules:!modules ~nets:!nets
  in
  let group = Constraints.Symmetry_group.make ~pairs:!pairs ~selfs:[] () in
  (Placer.Placement.make circuit !placed, group)

(* every twin pair the router reports mirrored must be an exact mirror
   image with equal per-pair wirelength — by construction, not luck *)
let prop_twin_mirror =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:25 ~name:"twin routes are exact mirrors"
       QCheck.(pair (int_range 1 3) (int_range 0 999))
       (fun (k, seed) ->
         (* the shrinker can step outside int_range; clamp to the
            fixture's domain *)
         let k = max 1 (min 3 k) and seed = abs seed in
         let placement, grp = random_sym_fixture ~k ~seed in
         let result =
           Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement
         in
         if result.Route.Router.failed <> [] then
           QCheck.Test.fail_reportf "failed nets on a sparse fixture";
         if List.length result.Route.Router.mirrored_pairs <> k then
           QCheck.Test.fail_reportf "expected %d mirrored pairs, got %d" k
             (List.length result.Route.Router.mirrored_pairs);
         (* recover the reflection constant exactly as the router does:
            from the first pair's snapped pin cells *)
         let route name =
           (List.find
              (fun r -> r.Route.Router.net = name)
              result.Route.Router.routed)
             .Route.Router.points
         in
         let gc m =
           match Placer.Placement.rect_of placement m with
           | None -> QCheck.Test.fail_reportf "unplaced module"
           | Some r ->
               fst
                 (Route.Grid.snap ~pitch:20 ~margin:Route.Router.default_margin
                    (r.Geometry.Rect.x + (r.Geometry.Rect.w / 2), 0))
         in
         let axis2_grid = gc 0 + gc 1 in
         List.for_all
           (fun i ->
             let nl = route (Printf.sprintf "nl%d" i)
             and nr = route (Printf.sprintf "nr%d" i) in
             List.length nl = List.length nr
             && Route.Router.is_mirror_route ~axis2_grid nl nr)
           (List.init k (fun i -> i))))

let test_route_deterministic () =
  (* identical inputs give byte-identical routes: same nets, points,
     wirelength, iteration count *)
  let placement, grp = sym_placement () in
  let r1 = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  let r2 = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  Alcotest.(check int) "same wirelength" r1.Route.Router.wirelength
    r2.Route.Router.wirelength;
  Alcotest.(check int) "same iterations" r1.Route.Router.iterations
    r2.Route.Router.iterations;
  Alcotest.(check bool) "identical routes" true
    (List.for_all2
       (fun (a : Route.Router.route) (b : Route.Router.route) ->
         a.Route.Router.net = b.Route.Router.net
         && a.Route.Router.points = b.Route.Router.points)
       r1.Route.Router.routed r2.Route.Router.routed);
  let b = Netlist.Benchmarks.table1_suite () |> List.hd in
  let r =
    Shapefn.Combine.place ~mode:Shapefn.Combine.Esf b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  let pl =
    Placer.Placement.make b.Netlist.Benchmarks.circuit r.Shapefn.Combine.placed
  in
  let r1 = Route.Router.route_all pl and r2 = Route.Router.route_all pl in
  Alcotest.(check int) "bench route deterministic" r1.Route.Router.wirelength
    r2.Route.Router.wirelength

let test_traced_route_identical () =
  (* the flight-recorder contract: routing under a live sink draws no
     randomness and changes nothing — routes, wirelength, overflow and
     the iteration log are bit-identical to the untraced run, and the
     sink actually observed the run *)
  let b = Netlist.Benchmarks.table1_suite () |> List.hd in
  let r =
    Shapefn.Combine.place ~mode:Shapefn.Combine.Esf b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  let pl =
    Placer.Placement.make b.Netlist.Benchmarks.circuit r.Shapefn.Combine.placed
  in
  let groups =
    Constraints.Symmetry_group.of_hierarchy b.Netlist.Benchmarks.hierarchy
  in
  let quiet = Route.Router.route_all ~symmetric:groups pl in
  let sink = Telemetry.Sink.create () in
  let traced = Route.Router.route_all ~symmetric:groups ~telemetry:sink pl in
  Alcotest.(check int) "same wirelength" quiet.Route.Router.wirelength
    traced.Route.Router.wirelength;
  Alcotest.(check int) "same overflow" quiet.Route.Router.overflow
    traced.Route.Router.overflow;
  Alcotest.(check int) "same iterations" quiet.Route.Router.iterations
    traced.Route.Router.iterations;
  Alcotest.(check bool) "identical routes" true
    (List.for_all2
       (fun (a : Route.Router.route) (b : Route.Router.route) ->
         a.Route.Router.net = b.Route.Router.net
         && a.Route.Router.points = b.Route.Router.points)
       quiet.Route.Router.routed traced.Route.Router.routed);
  Alcotest.(check bool) "identical negotiation log" true
    (quiet.Route.Router.negotiation = traced.Route.Router.negotiation);
  let counters = Telemetry.Sink.counters sink in
  let v name =
    match List.assoc_opt name counters with Some n -> n | None -> 0
  in
  Alcotest.(check int) "route.iterations counter matches"
    traced.Route.Router.iterations (v "route.iterations");
  Alcotest.(check int) "route.nets.routed counter matches"
    (List.length traced.Route.Router.routed)
    (v "route.nets.routed")

let test_negotiation_log_shape () =
  (* the per-pass log: one entry per iteration, 1-based and ordered,
     ending at the result's residual overflow *)
  let placement, grp = sym_placement () in
  let r = Route.Router.route_all ~pitch:20 ~symmetric:[ grp ] placement in
  let log = r.Route.Router.negotiation in
  Alcotest.(check int) "one entry per iteration" r.Route.Router.iterations
    (List.length log);
  List.iteri
    (fun i (it : Route.Router.iteration) ->
      Alcotest.(check int) "indices count from 1" (i + 1)
        it.Route.Router.it_index;
      Alcotest.(check bool) "pres_fac positive" true
        (it.Route.Router.it_pres_fac > 0.0);
      Alcotest.(check bool) "pops non-negative" true
        (it.Route.Router.it_pops >= 0))
    log;
  match List.rev log with
  | [] -> Alcotest.fail "empty negotiation log"
  | last :: _ ->
      Alcotest.(check int) "last pass overflow is the residual"
        r.Route.Router.overflow last.Route.Router.it_overflow

let test_occupancy_snapshot () =
  (* the heatmap export: snapshot dimensions cover the grid, rails are
     capacity-0 cells, and total present occupancy equals the routed
     wirelength exactly (each tree claims each of its cells once) *)
  let b = Netlist.Benchmarks.table1_suite () |> List.hd in
  let r =
    Shapefn.Combine.place ~mode:Shapefn.Combine.Esf b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  let pl =
    Placer.Placement.make b.Netlist.Benchmarks.circuit r.Shapefn.Combine.placed
  in
  let res = Route.Router.route_all pl in
  let s = res.Route.Router.occupancy in
  let cells =
    s.Route.Negotiate.Snapshot.cols * s.Route.Negotiate.Snapshot.rows
  in
  Alcotest.(check int) "capacity array covers the grid" cells
    (Array.length s.Route.Negotiate.Snapshot.capacity);
  Alcotest.(check int) "present array covers the grid" cells
    (Array.length s.Route.Negotiate.Snapshot.present);
  Alcotest.(check int) "history array covers the grid" cells
    (Array.length s.Route.Negotiate.Snapshot.history);
  Alcotest.(check int) "occupancy sums to routed wirelength"
    res.Route.Router.wirelength
    (Array.fold_left ( + ) 0 s.Route.Negotiate.Snapshot.present);
  if res.Route.Router.power <> [] then
    Alcotest.(check bool) "power rails appear as capacity-0 cells" true
      (Array.exists (fun c -> c = 0) s.Route.Negotiate.Snapshot.capacity)

let test_negotiation_converges () =
  (* the Buffer bench forces nets through contested gcells: negotiation
     must actually iterate (rip-up engaged) and still end overflow-free
     with every net routed *)
  let b =
    List.find
      (fun (b : Netlist.Benchmarks.bench) ->
        b.Netlist.Benchmarks.label = "Buffer")
      (Netlist.Benchmarks.table1_suite ())
  in
  let groups =
    Constraints.Symmetry_group.of_hierarchy b.Netlist.Benchmarks.hierarchy
  in
  let r =
    Shapefn.Combine.place ~mode:Shapefn.Combine.Esf b.Netlist.Benchmarks.circuit
      b.Netlist.Benchmarks.hierarchy
  in
  let pl =
    Placer.Placement.make b.Netlist.Benchmarks.circuit r.Shapefn.Combine.placed
  in
  let result = Route.Router.route_all ~symmetric:groups pl in
  Alcotest.(check bool) "negotiation engaged" true
    (result.Route.Router.iterations > 1);
  Alcotest.(check int) "zero overflow" 0 result.Route.Router.overflow;
  Alcotest.(check (list string)) "no failed nets" []
    (List.map
       (fun f -> f.Route.Router.failed_net)
       result.Route.Router.failed)

let estimate_fixture () =
  (* four routable 50x50 modules, one far 10x10 marker pinning the die
     extents so crowded and spread variants share bin geometry *)
  Netlist.Circuit.make ~name:"est"
    ~modules:
      [
        Netlist.Circuit.block ~name:"a" ~w:50 ~h:50;
        Netlist.Circuit.block ~name:"b" ~w:50 ~h:50;
        Netlist.Circuit.block ~name:"c" ~w:50 ~h:50;
        Netlist.Circuit.block ~name:"d" ~w:50 ~h:50;
        Netlist.Circuit.block ~name:"far" ~w:10 ~h:10;
      ]
    ~nets:
      [
        Netlist.Net.make ~name:"n1" ~pins:[ 0; 1 ] ();
        Netlist.Net.make ~name:"n2" ~pins:[ 2; 3 ] ();
      ]

let test_estimate_properties () =
  let place cell x y w h =
    Geometry.Transform.place ~cell ~x ~y ~w ~h ~orient:Geometry.Orientation.R0
  in
  let placement coords =
    Placer.Placement.make (estimate_fixture ())
      (List.mapi (fun i (x, y, w, h) -> place i x y w h) coords)
  in
  let far = (2000, 2000, 10, 10) in
  let est = Route.Estimate.create (estimate_fixture ()) in
  (* two identical-demand nets crowded into one region score strictly
     worse than the same nets spread across the die *)
  let crowded =
    placement
      [ (0, 0, 50, 50); (200, 0, 50, 50); (0, 100, 50, 50); (200, 100, 50, 50); far ]
  in
  let spread =
    placement
      [ (0, 0, 50, 50); (200, 0, 50, 50); (0, 1800, 50, 50); (200, 1800, 50, 50); far ]
  in
  let sc = Route.Estimate.score_placement est crowded
  and ss = Route.Estimate.score_placement est spread in
  Alcotest.(check bool) "crowding costs more" true (sc > ss);
  Alcotest.(check bool) "both positive" true (sc > 0.0 && ss > 0.0);
  (* determinism *)
  Alcotest.(check (float 0.0)) "score deterministic" sc
    (Route.Estimate.score_placement est crowded);
  (* a circuit with no multi-pin nets carries no demand *)
  let lonely =
    Netlist.Circuit.make ~name:"lonely"
      ~modules:[ Netlist.Circuit.block ~name:"a" ~w:50 ~h:50 ]
      ~nets:[ Netlist.Net.make ~name:"n" ~pins:[ 0 ] () ]
  in
  let e0 = Route.Estimate.create lonely in
  Alcotest.(check (float 0.0)) "zero demand scores zero" 0.0
    (Route.Estimate.score_placement e0
       (Placer.Placement.make lonely [ place 0 0 0 50 50 ]))

let test_route_random_circuits () =
  let rng = Prelude.Rng.create 4 in
  List.iter
    (fun seed ->
      let b = Netlist.Benchmarks.synthetic ~label:"r" ~n:12 ~seed in
      let out =
        Placer.Sa_seqpair.place
          ~params:
            {
              (Anneal.Sa.default_params ~n:12) with
              Anneal.Sa.max_rounds = 40;
            }
          ~rng b.Netlist.Benchmarks.circuit
      in
      let result = Route.Router.route_all out.Placer.Sa_seqpair.placement in
      let total =
        List.length result.Route.Router.routed
        + List.length result.Route.Router.failed
      in
      Alcotest.(check int) "every net accounted for"
        (List.length b.Netlist.Benchmarks.circuit.Netlist.Circuit.nets)
        total;
      Alcotest.(check bool) "wirelength positive" true
        (result.Route.Router.wirelength > 0))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "route"
    [
      ("grid", [ Alcotest.test_case "basics" `Quick test_grid_basics ]);
      ( "maze",
        [
          Alcotest.test_case "straight" `Quick test_path_straight;
          Alcotest.test_case "detour" `Quick test_path_detour;
          Alcotest.test_case "walled" `Quick test_path_blocked;
          Alcotest.test_case "multi-terminal" `Quick test_multi_terminal;
        ] );
      ( "router",
        [
          Alcotest.test_case "mirrored routing" `Quick test_mirrored_routing;
          prop_twin_mirror;
          Alcotest.test_case "deterministic" `Quick test_route_deterministic;
          Alcotest.test_case "traced run bit-identical" `Quick
            test_traced_route_identical;
          Alcotest.test_case "negotiation log shape" `Quick
            test_negotiation_log_shape;
          Alcotest.test_case "occupancy snapshot" `Quick
            test_occupancy_snapshot;
          Alcotest.test_case "negotiation converges" `Quick
            test_negotiation_converges;
          Alcotest.test_case "estimate properties" `Quick
            test_estimate_properties;
          Alcotest.test_case "within capacity" `Quick
            test_routes_within_capacity;
          Alcotest.test_case "random circuits" `Quick test_route_random_circuits;
        ] );
    ]
