open Seqpair
module G = Constraints.Symmetry_group
module Check = Constraints.Placement_check

let fig1 () =
  let sp, mapping = Sp.of_strings ~alpha:"EBAFCDG" ~beta:"EBCDFAG" in
  let idx c = List.assoc c mapping in
  let grp =
    G.make
      ~pairs:[ (idx 'C', idx 'D'); (idx 'B', idx 'G') ]
      ~selfs:[ idx 'A'; idx 'F' ] ()
  in
  (sp, grp)

let test_fig1_feasible () =
  let sp, grp = fig1 () in
  Alcotest.(check bool) "paper example is S-F" true
    (Symmetry.is_feasible sp grp)

let test_violating_code () =
  (* swapping C and D only in alpha breaks property (1) *)
  let sp, grp = fig1 () in
  let sp' =
    Sp.make ~alpha:(Perm.swap_cells sp.Sp.alpha 2 3) ~beta:sp.Sp.beta
  in
  Alcotest.(check bool) "broken code detected" false
    (Symmetry.is_feasible sp' grp)

let test_lemma_fig1_numbers () =
  (* the survey: n=7, one group with p=2, s=2 -> (7!)^2/6! = 35,280 *)
  let _, grp = fig1 () in
  Alcotest.(check int) "35280" 35_280 (Symmetry.count_upper_bound ~n:7 [ grp ]);
  Alcotest.(check int) "total (7!)^2" 25_401_600 (5040 * 5040)

let test_lemma_exhaustive_small () =
  let cases =
    [
      (3, [ G.make ~pairs:[ (0, 1) ] ~selfs:[] () ]);
      (4, [ G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () ]);
      (4, [ G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[] () ]);
      (5, [ G.make ~pairs:[ (0, 1) ] ~selfs:[] ();
            G.make ~pairs:[ (2, 3) ] ~selfs:[] () ]);
      (5, [ G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[ 4 ] () ]);
    ]
  in
  List.iter
    (fun (n, groups) ->
      let exact = Symmetry.count_exhaustive ~n groups in
      let bound = Symmetry.count_upper_bound ~n groups in
      Alcotest.(check int) (Printf.sprintf "n=%d exact=bound" n) bound exact)
    cases

let test_make_feasible () =
  let rng = Prelude.Rng.create 4 in
  let grp = G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[ 4 ] () in
  for _ = 1 to 200 do
    let sp = Sp.random rng 8 in
    let fixed = Symmetry.make_feasible sp [ grp ] in
    if not (Symmetry.is_feasible fixed grp) then
      Alcotest.fail "repair failed";
    (* alpha untouched *)
    if not (Perm.equal fixed.Sp.alpha sp.Sp.alpha) then
      Alcotest.fail "alpha changed"
  done

let random_group rng n =
  (* partition a random subset of 0..n-1 into pairs and selfs *)
  let cells = Array.to_list (Prelude.Rng.permutation rng n) in
  let k = min n (2 + Prelude.Rng.int rng (max 1 (n - 1))) in
  let members = List.filteri (fun i _ -> i < k) cells in
  let rec split pairs selfs = function
    | a :: b :: rest ->
        if Prelude.Rng.bool rng then split ((a, b) :: pairs) selfs rest
        else split pairs (a :: selfs) (b :: rest)
    | [ a ] -> (pairs, a :: selfs)
    | [] -> (pairs, selfs)
  in
  let pairs, selfs = split [] [] members in
  G.make ~pairs ~selfs ()

let test_pack_symmetric_random () =
  let rng = Prelude.Rng.create 99 in
  for _ = 1 to 300 do
    let n = 3 + Prelude.Rng.int rng 12 in
    let grp = random_group rng n in
    let sp = Symmetry.random_feasible rng ~n [ grp ] in
    let base =
      Array.init n (fun _ ->
          (2 + Prelude.Rng.int rng 30, 2 + Prelude.Rng.int rng 30))
    in
    (* matched dimensions for pairs *)
    List.iter (fun (a, b) -> base.(b) <- base.(a)) grp.G.pairs;
    let dims c = base.(c) in
    match Symmetry.pack_symmetric sp dims [ grp ] with
    | Error msg -> Alcotest.fail msg
    | Ok placed ->
        (match Check.overlap_free placed with
        | Ok () -> ()
        | Error v -> Alcotest.failf "overlap: %a" Check.pp_violation v);
        (match Check.symmetry ~group:grp placed with
        | Ok _ -> ()
        | Error v -> Alcotest.failf "asymmetric: %a" Check.pp_violation v);
        (match Symmetry.axis2_of placed grp with
        | Some _ -> ()
        | None -> Alcotest.fail "axis2_of failed")
  done

(* QCheck: make_feasible lands in the S-F subspace for ANY sp/groups,
   and is idempotent — repairing an already-feasible code is a no-op. *)
let arb_sp_groups =
  let gen =
    QCheck.Gen.(
      5 -- 12 >>= fun n ->
      int >>= fun seed ->
      let rng = Prelude.Rng.create seed in
      let sp = Sp.random rng n in
      let g1 = random_group rng n in
      (* optional second group over the leftover cells, when enough *)
      let used = G.members g1 in
      let free = List.filter (fun c -> not (List.mem c used)) (List.init n Fun.id) in
      let groups =
        match free with
        | a :: b :: _ -> [ g1; G.make ~pairs:[ (a, b) ] ~selfs:[] () ]
        | _ -> [ g1 ]
      in
      return (sp, groups))
  in
  let print (sp, groups) =
    Format.asprintf "groups=%d %a" (List.length groups) Sp.pp sp
  in
  QCheck.make ~print gen

let prop_make_feasible_feasible =
  QCheck.Test.make ~name:"make_feasible is feasible" ~count:500 arb_sp_groups
    (fun (sp, groups) ->
      Symmetry.is_feasible_all (Symmetry.make_feasible sp groups) groups)

let prop_make_feasible_idempotent =
  QCheck.Test.make ~name:"make_feasible is idempotent" ~count:500 arb_sp_groups
    (fun (sp, groups) ->
      let once = Symmetry.make_feasible sp groups in
      Sp.equal (Symmetry.make_feasible once groups) once)

(* The lemma's bound raises instead of silently wrapping. With no
   groups the boundary is n = 12: (12!)^2 fits 63-bit ints, (13!)^2
   does not. With a cardinality-15 group, n = 17 still fits
   (272 * 17!) while every n > 17 overflows. *)
let test_count_bound_overflow () =
  Alcotest.(check int) "n=12 plain" (479_001_600 * 479_001_600)
    (Symmetry.count_upper_bound ~n:12 []);
  Alcotest.check_raises "n=13 plain raises"
    (Invalid_argument "Symmetry.count_upper_bound: overflow") (fun () ->
      ignore (Symmetry.count_upper_bound ~n:13 []));
  let big = G.make ~pairs:(List.init 7 (fun i -> (2 * i, (2 * i) + 1)))
      ~selfs:[ 14 ] () in
  (* 17! / 15! = 272; bound = 272 * 17! = 96_746_980_442_112_000 *)
  Alcotest.(check int) "n=17 card-15 group" 96_746_980_442_112_000
    (Symmetry.count_upper_bound ~n:17 [ big ]);
  Alcotest.check_raises "n=18 card-15 group raises"
    (Invalid_argument "Symmetry.count_upper_bound: overflow") (fun () ->
      ignore (Symmetry.count_upper_bound ~n:18 [ big ]))

let test_pack_symmetric_two_groups () =
  let rng = Prelude.Rng.create 123 in
  for _ = 1 to 100 do
    let n = 8 in
    let g1 = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] () in
    let g2 = G.make ~pairs:[ (3, 4) ] ~selfs:[ 5 ] () in
    let sp = Symmetry.random_feasible rng ~n [ g1; g2 ] in
    let base =
      Array.init n (fun _ ->
          (2 + Prelude.Rng.int rng 20, 2 + Prelude.Rng.int rng 20))
    in
    base.(1) <- base.(0);
    base.(4) <- base.(3);
    let dims c = base.(c) in
    match Symmetry.pack_symmetric sp dims [ g1; g2 ] with
    | Error msg -> Alcotest.fail msg
    | Ok placed ->
        Alcotest.(check bool) "overlap-free" true
          (Result.is_ok (Check.overlap_free placed));
        Alcotest.(check bool) "g1 symmetric" true
          (Result.is_ok (Check.symmetry ~group:g1 placed));
        Alcotest.(check bool) "g2 symmetric" true
          (Result.is_ok (Check.symmetry ~group:g2 placed))
  done

let test_sf_moves_preserve () =
  let rng = Prelude.Rng.create 31 in
  let grp = G.make ~pairs:[ (0, 1); (2, 3) ] ~selfs:[ 4 ] () in
  let sp = ref (Symmetry.random_feasible rng ~n:9 [ grp ]) in
  for _ = 1 to 2000 do
    sp := Moves.random_neighbor_sf rng !sp [ grp ];
    if not (Symmetry.is_feasible !sp grp) then
      Alcotest.fail "move left the S-F subspace"
  done

let test_pack_symmetric_rejects_non_sf () =
  let sp =
    Sp.make
      ~alpha:(Perm.of_array [| 0; 1; 2 |])
      ~beta:(Perm.of_array [| 0; 1; 2 |])
  in
  (* pair (0,1) in the same order in both sequences IS S-F (they are
     left-right); force a violation with a vertical pair instead *)
  let vert =
    Sp.make
      ~alpha:(Perm.of_array [| 1; 0; 2 |])
      ~beta:(Perm.of_array [| 0; 1; 2 |])
  in
  let grp = G.make ~pairs:[ (0, 1) ] ~selfs:[] () in
  ignore sp;
  match Symmetry.pack_symmetric vert (fun _ -> (4, 4)) [ grp ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vertical pair accepted"

let test_self_padding () =
  (* selfs with odd/even width mix must still produce an exact axis *)
  let grp = G.make ~pairs:[ (0, 1) ] ~selfs:[ 2; 3 ] () in
  let rng = Prelude.Rng.create 8 in
  let sp = Symmetry.random_feasible rng ~n:4 [ grp ] in
  let dims = function
    | 0 | 1 -> (10, 5)
    | 2 -> (7, 4) (* odd *)
    | _ -> (8, 4) (* even *)
  in
  match Symmetry.pack_symmetric sp dims [ grp ] with
  | Error msg -> Alcotest.fail msg
  | Ok placed ->
      Alcotest.(check bool) "symmetric with padding" true
        (Result.is_ok (Check.symmetry ~group:grp placed))

let () =
  Alcotest.run "symmetry"
    [
      ( "property (1)",
        [
          Alcotest.test_case "fig1 feasible" `Quick test_fig1_feasible;
          Alcotest.test_case "violation detected" `Quick test_violating_code;
        ] );
      ( "lemma",
        [
          Alcotest.test_case "fig1 numbers" `Quick test_lemma_fig1_numbers;
          Alcotest.test_case "exhaustive small" `Slow test_lemma_exhaustive_small;
          Alcotest.test_case "overflow boundary" `Quick
            test_count_bound_overflow;
        ] );
      ( "repair",
        [
          Alcotest.test_case "make_feasible" `Quick test_make_feasible;
          QCheck_alcotest.to_alcotest prop_make_feasible_feasible;
          QCheck_alcotest.to_alcotest prop_make_feasible_idempotent;
        ] );
      ( "packing",
        [
          Alcotest.test_case "random groups" `Quick test_pack_symmetric_random;
          Alcotest.test_case "two groups" `Quick test_pack_symmetric_two_groups;
          Alcotest.test_case "rejects non-S-F" `Quick
            test_pack_symmetric_rejects_non_sf;
          Alcotest.test_case "self padding" `Quick test_self_padding;
        ] );
      ( "moves",
        [ Alcotest.test_case "stay S-F" `Quick test_sf_moves_preserve ] );
    ]
