let test_determinism () =
  let a = Prelude.Rng.create 7 and b = Prelude.Rng.create 7 in
  let sa = List.init 100 (fun _ -> Prelude.Rng.int a 1000) in
  let sb = List.init 100 (fun _ -> Prelude.Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" sa sb;
  let c = Prelude.Rng.create 8 in
  let sc = List.init 100 (fun _ -> Prelude.Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (sa <> sc)

let test_split_independent () =
  let a = Prelude.Rng.create 7 in
  let b = Prelude.Rng.split a in
  let sa = List.init 50 (fun _ -> Prelude.Rng.int a 1000) in
  let sb = List.init 50 (fun _ -> Prelude.Rng.int b 1000) in
  Alcotest.(check bool) "split stream differs" true (sa <> sb)

let test_int_bounds () =
  let rng = Prelude.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prelude.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.(check_raises) "zero bound"
    (Invalid_argument "Rng.int: non-positive bound") (fun () ->
      ignore (Prelude.Rng.int rng 0))

let test_int_in () =
  let rng = Prelude.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Prelude.Rng.int_in rng (-3) 4 in
    if v < -3 || v > 4 then Alcotest.fail "out of range"
  done

let test_permutation () =
  let rng = Prelude.Rng.create 9 in
  for n = 1 to 20 do
    let p = Prelude.Rng.permutation rng n in
    let sorted = Array.copy p in
    Array.sort Int.compare sorted;
    Alcotest.(check (array int)) "is a permutation" (Array.init n Fun.id) sorted
  done

let test_choose_weighted () =
  let rng = Prelude.Rng.create 12 in
  let picks =
    List.init 2000 (fun _ ->
        Prelude.Rng.choose_weighted rng [ (9.0, "a"); (1.0, "b") ])
  in
  let a_count = List.length (List.filter (String.equal "a") picks) in
  Alcotest.(check bool) "weighting respected"
    true
    (a_count > 1500 && a_count < 2000)

let test_gaussian () =
  let rng = Prelude.Rng.create 21 in
  let xs = List.init 5000 (fun _ -> Prelude.Rng.gaussian rng) in
  let m = Prelude.Stats.mean xs and sd = Prelude.Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs m < 0.1);
  Alcotest.(check bool) "sd near 1" true (Float.abs (sd -. 1.0) < 0.1)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Prelude.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Prelude.Stats.mean []);
  Alcotest.(check (float 1e-9)) "geo mean" 2.0
    (Prelude.Stats.geo_mean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-6)) "stddev" 0.816496580927726
    (Prelude.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 25.0 (Prelude.Stats.percent 1.0 4.0);
  Alcotest.(check (float 1e-9)) "percent div0" 0.0 (Prelude.Stats.percent 1.0 0.0)

(* numpy type-7 reference values: position (n-1)q, linear interpolation *)
let test_quantile () =
  let q = Prelude.Stats.quantile in
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "median of 4" 2.5 (q xs 0.5);
  Alcotest.(check (float 1e-9)) "q1 of 4" 1.75 (q xs 0.25);
  Alcotest.(check (float 1e-9)) "q3 of 4" 3.25 (q xs 0.75);
  Alcotest.(check (float 1e-9)) "min" 1.0 (q xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 4.0 (q xs 1.0);
  Alcotest.(check (float 1e-9)) "median of 5" 3.0 (q [ 5.0; 3.0; 1.0; 4.0; 2.0 ] 0.5);
  Alcotest.(check (float 1e-9)) "p90 of 1..10" 9.1
    (q (List.init 10 (fun i -> float_of_int (i + 1))) 0.9);
  Alcotest.(check (float 1e-9)) "unsorted input" 2.5 (q [ 4.0; 1.0; 3.0; 2.0 ] 0.5);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (q [ 7.0 ] 0.9);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (q [] 0.5);
  Alcotest.(check (float 1e-9)) "q clamped" 4.0 (q xs 1.5);
  (* edge cases the regression gate leans on: degenerate sample sets
     must give exact, not interpolated-garbage, answers *)
  Alcotest.(check (float 1e-9)) "empty at q=0" 0.0 (q [] 0.0);
  Alcotest.(check (float 1e-9)) "empty at q=1" 0.0 (q [] 1.0);
  Alcotest.(check (float 1e-9)) "singleton any q" 7.0 (q [ 7.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "all equal" 3.0 (q [ 3.0; 3.0; 3.0; 3.0 ] 0.9);
  Alcotest.(check (float 1e-9)) "negative q clamps" 1.0 (q xs (-0.5))

let test_quantile_weighted () =
  let qw = Prelude.Stats.quantile_weighted in
  (* weights expand to the plain multiset *)
  Alcotest.(check (float 1e-9))
    "expanded multiset"
    (Prelude.Stats.quantile [ 1.0; 1.0; 1.0; 5.0 ] 0.5)
    (qw [ (1.0, 3); (5.0, 1) ] 0.5);
  Alcotest.(check (float 1e-9))
    "interpolates across points" 3.0
    (qw [ (1.0, 1); (5.0, 1) ] 0.5);
  Alcotest.(check (float 1e-9)) "zero weights dropped" 2.0
    (qw [ (1.0, 0); (2.0, 5) ] 0.5);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (qw [] 0.5);
  Alcotest.(check (float 1e-9)) "single point" 4.0 (qw [ (4.0, 3) ] 0.99);
  Alcotest.(check (float 1e-9)) "all weights zero" 0.0
    (qw [ (1.0, 0); (2.0, 0) ] 0.5);
  (* equal weights reduce to the unweighted quantile of the values *)
  Alcotest.(check (float 1e-9))
    "all-equal weights = plain quantile"
    (Prelude.Stats.quantile [ 1.0; 2.0; 3.0; 4.0 ] 0.75)
    (qw [ (1.0, 1); (2.0, 1); (3.0, 1); (4.0, 1) ] 0.75)

let prop_quantile_weighted_expands =
  QCheck.Test.make ~name:"quantile_weighted = quantile of expansion" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 8) (pair (float_bound_exclusive 100.0) (1 -- 5)))
        (float_bound_inclusive 1.0))
    (fun (pts, q) ->
      let expanded =
        List.concat_map (fun (v, w) -> List.init w (fun _ -> v)) pts
      in
      Float.abs
        (Prelude.Stats.quantile_weighted pts q
        -. Prelude.Stats.quantile expanded q)
      < 1e-9)

let prop_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Prelude.Rng.create seed in
      let arr = Array.of_list xs in
      Prelude.Rng.shuffle rng arr;
      List.sort Int.compare (Array.to_list arr) = List.sort Int.compare xs)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "choose_weighted" `Quick test_choose_weighted;
          Alcotest.test_case "gaussian" `Quick test_gaussian;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile weighted" `Quick test_quantile_weighted;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_shuffle_permutes; prop_quantile_weighted_expands ] );
    ]
