open Seqpair

let test_perm_basics () =
  let p = Perm.of_array [| 2; 0; 1 |] in
  Alcotest.(check int) "cell_at" 2 (Perm.cell_at p 0);
  Alcotest.(check int) "pos_of" 2 (Perm.pos_of p 1);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Perm.of_array: not a permutation") (fun () ->
      ignore (Perm.of_array [| 0; 0 |]))

let test_perm_swap () =
  let p = Perm.identity 5 in
  let q = Perm.swap_cells p 1 3 in
  Alcotest.(check (list int)) "swap cells" [ 0; 3; 2; 1; 4 ] (Perm.to_list q);
  let r = Perm.swap_positions p 0 4 in
  Alcotest.(check (list int)) "swap positions" [ 4; 1; 2; 3; 0 ] (Perm.to_list r)

let test_perm_insert () =
  let p = Perm.of_array [| 0; 1; 2; 3 |] in
  let q = Perm.insert p ~cell:3 ~at:0 in
  Alcotest.(check (list int)) "insert front" [ 3; 0; 1; 2 ] (Perm.to_list q)

let test_perm_reorder () =
  let p = Perm.of_array [| 4; 1; 3; 0; 2 |] in
  (* cells 1,3,2 occupy positions 1,2,4; refill in order 2,3,1 *)
  let q = Perm.reorder_cells p ~cells:[ 1; 3; 2 ] ~order:[ 2; 3; 1 ] in
  Alcotest.(check (list int)) "reordered" [ 4; 2; 3; 0; 1 ] (Perm.to_list q)

let test_relations_paper_example () =
  let sp, mapping = Sp.of_strings ~alpha:"EBAFCDG" ~beta:"EBCDFAG" in
  let idx c = List.assoc c mapping in
  (* E before everyone in both sequences -> left of all *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "E left of %c" c)
        true
        (Sp.left_of sp (idx 'E') (idx c)))
    [ 'A'; 'B'; 'C'; 'D'; 'F'; 'G' ];
  (* C before D in both -> left; A after C in alpha? alpha: E B A F C D G;
     A before C in alpha, after C in beta -> A above C *)
  Alcotest.(check bool) "C left of D" true (Sp.left_of sp (idx 'C') (idx 'D'));
  Alcotest.(check bool) "A above C" true
    (Sp.relation sp (idx 'A') (idx 'C') = Sp.Above);
  Alcotest.(check bool) "C below A" true (Sp.below sp (idx 'C') (idx 'A'))

let test_of_strings_errors () =
  Alcotest.(check bool) "beta mismatch" true
    (match Sp.of_strings ~alpha:"AB" ~beta:"AC" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "repeat" true
    (match Sp.of_strings ~alpha:"AA" ~beta:"AA" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pack_two_cells () =
  (* (AB, AB): A left of B *)
  let sp = Sp.make ~alpha:(Perm.of_array [| 0; 1 |]) ~beta:(Perm.of_array [| 0; 1 |]) in
  let dims = function 0 -> (4, 3) | _ -> (2, 5) in
  let placed = Pack.pack sp dims in
  let r1 = (List.nth placed 1).Geometry.Transform.rect in
  Alcotest.(check int) "B abuts A" 4 r1.Geometry.Rect.x;
  Alcotest.(check int) "B on ground" 0 r1.Geometry.Rect.y;
  (* (BA, AB): wait -- alpha B A, beta A B: A after B in alpha, before in
     beta -> A below B *)
  let sp2 = Sp.make ~alpha:(Perm.of_array [| 1; 0 |]) ~beta:(Perm.of_array [| 0; 1 |]) in
  let placed2 = Pack.pack sp2 dims in
  let a = (List.nth placed2 0).Geometry.Transform.rect in
  let b = (List.nth placed2 1).Geometry.Transform.rect in
  Alcotest.(check int) "A on ground" 0 a.Geometry.Rect.y;
  Alcotest.(check int) "B above A" 3 b.Geometry.Rect.y;
  Alcotest.(check int) "B at x=0" 0 b.Geometry.Rect.x

let test_bit () =
  let rng = Prelude.Rng.create 77 in
  for _ = 1 to 100 do
    let n = 1 + Prelude.Rng.int rng 40 in
    let bit = Bit.create n in
    let naive = Array.make n 0 in
    for _ = 1 to 60 do
      let i = Prelude.Rng.int rng n and v = Prelude.Rng.int rng 1000 in
      Bit.update bit i v;
      naive.(i) <- max naive.(i) v;
      let q = Prelude.Rng.int rng n in
      let expect = Array.fold_left max 0 (Array.sub naive 0 (q + 1)) in
      if Bit.prefix_max bit q <> expect then
        Alcotest.failf "prefix_max mismatch at %d: %d vs %d" q
          (Bit.prefix_max bit q) expect
    done
  done

let test_veb_against_reference () =
  let rng = Prelude.Rng.create 13 in
  for _ = 1 to 60 do
    let u = 1 + Prelude.Rng.int rng 200 in
    let veb = Veb.create u in
    let reference = ref [] in
    for _ = 1 to 300 do
      let x = Prelude.Rng.int rng u in
      (match Prelude.Rng.int rng 3 with
      | 0 ->
          Veb.insert veb x;
          if not (List.mem x !reference) then reference := x :: !reference
      | 1 ->
          Veb.delete veb x;
          reference := List.filter (fun y -> y <> x) !reference
      | _ -> ());
      let q = Prelude.Rng.int rng u in
      let below = List.filter (fun y -> y < q) !reference in
      let above = List.filter (fun y -> y > q) !reference in
      let max_opt = function
        | [] -> None
        | l -> Some (List.fold_left max min_int l)
      in
      let min_opt = function
        | [] -> None
        | l -> Some (List.fold_left min max_int l)
      in
      if Veb.predecessor veb q <> max_opt below then
        Alcotest.failf "predecessor %d mismatch" q;
      if Veb.successor veb q <> min_opt above then
        Alcotest.failf "successor %d mismatch" q;
      if Veb.mem veb q <> List.mem q !reference then
        Alcotest.failf "mem %d mismatch" q;
      if Veb.min_elt veb <> min_opt !reference then
        Alcotest.fail "min mismatch";
      if Veb.max_elt veb <> max_opt !reference then
        Alcotest.fail "max mismatch"
    done
  done

let arb_sp_dims =
  let gen =
    QCheck.Gen.(
      int_range 1 18 >>= fun n ->
      int_bound 1_000_000 >>= fun seed ->
      let rng = Prelude.Rng.create seed in
      let sp = Sp.random rng n in
      let dims =
        Array.init n (fun _ ->
            (1 + Prelude.Rng.int rng 40, 1 + Prelude.Rng.int rng 40))
      in
      return (sp, dims))
  in
  QCheck.make gen

let prop_pack_equals_fast =
  QCheck.Test.make ~name:"pack = pack_fast" ~count:300 arb_sp_dims
    (fun (sp, d) ->
      let dims c = d.(c) in
      Pack.pack sp dims = Pack.pack_fast sp dims)

let prop_pack_equals_veb =
  QCheck.Test.make ~name:"pack = pack_veb" ~count:300 arb_sp_dims
    (fun (sp, d) ->
      let dims c = d.(c) in
      Pack.pack sp dims = Pack.pack_veb sp dims)

let prop_pack_overlap_free =
  QCheck.Test.make ~name:"pack overlap-free" ~count:300 arb_sp_dims
    (fun (sp, d) ->
      let dims c = d.(c) in
      Result.is_ok
        (Constraints.Placement_check.overlap_free (Pack.pack sp dims)))

let prop_pack_respects_relations =
  QCheck.Test.make ~name:"pack respects left-of/below" ~count:100 arb_sp_dims
    (fun (sp, d) ->
      let dims c = d.(c) in
      let placed = Array.of_list (Pack.pack sp dims) in
      let n = Array.length placed in
      let rect c = placed.(c).Geometry.Transform.rect in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then
            match Sp.relation sp a b with
            | Sp.Left_of ->
                if Geometry.Rect.x_max (rect a) > (rect b).Geometry.Rect.x then
                  ok := false
            | Sp.Below ->
                if Geometry.Rect.y_max (rect a) > (rect b).Geometry.Rect.y then
                  ok := false
            | Sp.Right_of | Sp.Above -> ()
        done
      done;
      !ok)

(* One scratch shared by every random case below: exercises the
   clear-and-reuse path of the buffer evaluators across varying sizes. *)
let shared_scratch = Pack.scratch 18

let agrees_with_pack into (sp, d) =
  let n = Array.length d in
  let dims c = d.(c) in
  let w = Array.init n (fun c -> fst d.(c))
  and h = Array.init n (fun c -> snd d.(c))
  and x = Array.make n (-1)
  and y = Array.make n (-1) in
  into sp ~w ~h ~x ~y;
  List.for_all
    (fun (p : Geometry.Transform.placed) ->
      x.(p.cell) = p.rect.Geometry.Rect.x
      && y.(p.cell) = p.rect.Geometry.Rect.y)
    (Pack.pack sp dims)

let prop_pack_into_agrees =
  QCheck.Test.make ~name:"pack_into = pack" ~count:300 arb_sp_dims
    (agrees_with_pack Pack.pack_into)

let prop_pack_fast_into_agrees =
  QCheck.Test.make ~name:"pack_fast_into = pack (scratch reused)" ~count:300
    arb_sp_dims
    (agrees_with_pack (Pack.pack_fast_into shared_scratch))

let prop_pack_veb_into_agrees =
  QCheck.Test.make ~name:"pack_veb_into = pack (scratch reused)" ~count:300
    arb_sp_dims
    (agrees_with_pack (Pack.pack_veb_into shared_scratch))

let arb_sf_sp_dims =
  let gen =
    QCheck.Gen.(
      int_range 4 14 >>= fun n ->
      int_bound 1_000_000 >>= fun seed ->
      let rng = Prelude.Rng.create seed in
      let g =
        Constraints.Symmetry_group.make ~pairs:[ (0, 1) ] ~selfs:[ 2 ] ()
      in
      let sp = Symmetry.random_feasible rng ~n [ g ] in
      let dims =
        Array.init n (fun _ ->
            (1 + Prelude.Rng.int rng 20, 1 + Prelude.Rng.int rng 20))
      in
      (* mirror pairs must share dimensions *)
      dims.(1) <- dims.(0);
      return (sp, dims, g))
  in
  QCheck.make gen

let prop_pack_symmetric_into_agrees =
  QCheck.Test.make ~name:"pack_symmetric_into = pack_symmetric" ~count:200
    arb_sf_sp_dims
    (fun (sp, d, g) ->
      let n = Array.length d in
      let dims c = d.(c) in
      let x = Array.make n (-1)
      and y = Array.make n (-1)
      and w = Array.make n (-1)
      and h = Array.make n (-1) in
      match
        ( Symmetry.pack_symmetric sp dims [ g ],
          Symmetry.pack_symmetric_into ~x ~y ~w ~h sp dims [ g ] )
      with
      | Ok placed, Ok () ->
          List.for_all
            (fun (p : Geometry.Transform.placed) ->
              let r = p.rect in
              x.(p.cell) = r.Geometry.Rect.x
              && y.(p.cell) = r.Geometry.Rect.y
              && w.(p.cell) = r.Geometry.Rect.w
              && h.(p.cell) = r.Geometry.Rect.h)
            placed
      | Error a, Error b -> a = b
      | _ -> false)

let prop_moves_preserve_permutation =
  QCheck.Test.make ~name:"moves yield valid sequence-pairs" ~count:300
    QCheck.(pair (int_range 2 15) small_int)
    (fun (n, seed) ->
      let rng = Prelude.Rng.create seed in
      let sp = ref (Sp.random rng n) in
      for _ = 1 to 20 do
        sp := Moves.random_neighbor rng !sp
      done;
      let sorted p = List.sort Int.compare (Perm.to_list p) in
      sorted !sp.Sp.alpha = List.init n Fun.id
      && sorted !sp.Sp.beta = List.init n Fun.id)

let () =
  Alcotest.run "seqpair"
    [
      ( "perm",
        [
          Alcotest.test_case "basics" `Quick test_perm_basics;
          Alcotest.test_case "swap" `Quick test_perm_swap;
          Alcotest.test_case "insert" `Quick test_perm_insert;
          Alcotest.test_case "reorder" `Quick test_perm_reorder;
        ] );
      ( "relations",
        [
          Alcotest.test_case "paper example" `Quick test_relations_paper_example;
          Alcotest.test_case "of_strings errors" `Quick test_of_strings_errors;
        ] );
      ( "pack",
        [
          Alcotest.test_case "two cells" `Quick test_pack_two_cells;
          Alcotest.test_case "bit vs naive" `Quick test_bit;
          Alcotest.test_case "veb vs reference" `Quick test_veb_against_reference;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pack_equals_fast;
            prop_pack_equals_veb;
            prop_pack_into_agrees;
            prop_pack_fast_into_agrees;
            prop_pack_veb_into_agrees;
            prop_pack_symmetric_into_agrees;
            prop_pack_overlap_free;
            prop_pack_respects_relations;
            prop_moves_preserve_permutation;
          ] );
    ]
