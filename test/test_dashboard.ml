(* The flight recorder: the hand-rolled HTML well-formedness checker,
   deterministic rendering from fixed ledger fixtures, panel
   selection, and the congestion heatmap's color policy. *)

module T = Telemetry

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- fixtures ----------------------------------------------------- *)

let fixture_qor ?(cost = 1000.0) ?(hpwl = 500.0) ?(routed = false) () =
  let routed_wl = if routed then Some 220 else None in
  let route_overflow = if routed then Some 0 else None in
  let route_failed = if routed then Some 0 else None in
  let route_iterations = if routed then Some 4 else None in
  T.Qor.run ?routed_wl ?route_overflow ?route_failed ?route_iterations
    ~move_rates:[ ("swap", 10, 20); ("rotate", 5, 15) ]
    ~cost ~wall_s:0.25 ~sa_rounds:100 ~evaluated:1000 ~area:1200 ~width:40
    ~height:30 ~hpwl ~term_area:1.0 ~term_wirelength:2.0 ~term_aspect:0.1
    ~dead_space_pct:8.5 ()

(* generated_at / git_rev pinned: entries must not depend on the clock
   or the checkout, or the byte-identical render test below lies *)
let fixture_entry ?(label = "fixture") ?(seed = 1) ?(cost = 1000.0)
    ?(hpwl = 500.0) ?(routed = false) () =
  T.Ledger.make ~generated_at:"2026-08-08T00:00:00Z" ~git_rev:"0000000"
    ~placement:[ { T.Ledger.cell = "m1"; x = 0; y = 0; w = 4; h = 4 } ]
    ~label ~netlist_hash:"cafebabe" ~engine:"sp" ~seed ~schedule:"geometric"
    ~workers:1 ~chains:1
    ~qor:(fixture_qor ~cost ~hpwl ~routed ())
    ()

let fixture_entries () =
  [
    fixture_entry ~cost:1000.0 ~hpwl:500.0 ();
    fixture_entry ~cost:980.0 ~hpwl:490.0 ();
    fixture_entry ~cost:960.0 ~hpwl:495.0 ();
    fixture_entry ~label:"routed" ~seed:2 ~cost:2000.0 ~hpwl:900.0
      ~routed:true ();
  ]

let fixture_heatmap =
  {
    T.Dashboard.hm_label = "fixture";
    hm_cols = 3;
    hm_rows = 2;
    (* row-major: (0,0) overused, (1,0) blocked, (2,0) half used,
       (0,1) free, rest empty-ish *)
    hm_capacity = [| 1; 0; 2; 2; 2; 2 |];
    hm_present = [| 2; 0; 1; 0; 0; 0 |];
    hm_history = [| 1.5; 0.0; 0.3; 0.0; 0.0; 0.0 |];
  }

let fixture_route =
  [
    {
      T.Dashboard.ri_iter = 1;
      ri_pres_fac = 0.5;
      ri_overflow = 12;
      ri_overused = 5;
      ri_ripped = 0;
      ri_pops = 900;
    };
    {
      T.Dashboard.ri_iter = 2;
      ri_pres_fac = 0.9;
      ri_overflow = 0;
      ri_overused = 0;
      ri_ripped = 3;
      ri_pops = 400;
    };
  ]

let fixture_service =
  [
    {
      T.Dashboard.sp_requests = 1;
      sp_hits = 0;
      sp_misses = 1;
      sp_evictions = 0;
      sp_neg_hits = 0;
      sp_infeasible = 0;
    };
    {
      T.Dashboard.sp_requests = 2;
      sp_hits = 1;
      sp_misses = 1;
      sp_evictions = 0;
      sp_neg_hits = 0;
      sp_infeasible = 0;
    };
  ]

(* ---- the well-formedness checker ---------------------------------- *)

let test_check_accepts () =
  let ok doc =
    match T.Html.check doc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "rejected well-formed document: %s" e
  in
  ok (T.Html.page ~title:"t" ~css:"body{margin:0}" [ "<p>hi</p>" ]);
  ok "<div><span class=\"a\">x &amp; y</span><br/></div>";
  ok "<svg viewBox=\"0 0 10 10\"><rect x=\"1\" y=\"1\"/></svg>";
  ok "<p>&#169; &lt;tag&gt;</p>";
  ok "<!-- note --><p>after</p>";
  ok "<style>a < b { }</style>"

let test_check_rejects () =
  let bad doc why =
    match T.Html.check doc with
    | Ok () -> Alcotest.failf "checker accepted %s" why
    | Error _ -> ()
  in
  bad "<div><span></div>" "mismatched close tag";
  bad "<div>" "unclosed element";
  bad "<p class=x>y</p>" "unquoted attribute value";
  bad "<p>&bad</p>" "entity without semicolon";
  bad "<p>a > b</p>" "stray raw >";
  bad "<p>a & b</p>" "raw ampersand";
  bad "</p>" "close without open";
  bad "<p><!-- unterminated</p>" "unterminated comment"

let test_check_reports_offset () =
  match T.Html.check "<div></span>" with
  | Ok () -> Alcotest.fail "accepted mismatched tags"
  | Error e ->
      Alcotest.(check bool) "error mentions a byte offset" true
        (contains e "offset" || contains e "byte")

(* ---- rendering ---------------------------------------------------- *)

let full_render () =
  let sink = T.Sink.create ~clock:(fun () -> 0.0) () in
  T.Counter.add (T.Sink.counter sink "sa.moves.swap.accept") 10;
  T.Counter.add (T.Sink.counter sink "sa.moves.swap.reject") 20;
  T.Hist.observe (T.Sink.histogram sink "eval.cost") 1.5;
  T.Dashboard.render ~title:"Test flight" ~entries:(fixture_entries ()) ~sink
    ~route:fixture_route ~heatmaps:[ fixture_heatmap ]
    ~service:fixture_service ()

let test_render_well_formed () =
  match T.Html.check (full_render ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "dashboard fails its own checker: %s" e

let test_render_deterministic () =
  (* the fixture pins every timestamp, so two renders must agree to
     the byte — the property the CI artifact diffing rests on *)
  Alcotest.(check string) "byte-identical renders" (full_render ())
    (full_render ())

let test_panels_present () =
  let doc = full_render () in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("panel " ^ id) true
        (contains doc (Printf.sprintf "id=\"%s\"" id)))
    [ "trends"; "moves"; "route"; "heatmaps"; "service"; "counters" ]

let test_panels_omitted () =
  (* no inputs: no panels, an explicit no-data note instead *)
  let doc = T.Dashboard.render () in
  (match T.Html.check doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty dashboard fails the checker: %s" e);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("no panel " ^ id) false
        (contains doc (Printf.sprintf "id=\"%s\"" id)))
    [ "trends"; "route"; "heatmaps"; "service" ];
  Alcotest.(check bool) "says no data" true (contains doc "no data")

let test_trend_groups () =
  (* two configurations in the fixture: both keys must appear *)
  let doc = T.Dashboard.render ~entries:(fixture_entries ()) () in
  Alcotest.(check bool) "fixture key shown" true (contains doc "fixture/sp/1/c1");
  Alcotest.(check bool) "routed key shown" true (contains doc "routed/sp/2/c1")

let test_heatmap_colors () =
  let doc =
    T.Dashboard.render ~heatmaps:[ fixture_heatmap ] ()
  in
  Alcotest.(check bool) "overused cell wears the status red" true
    (contains doc "#e34948");
  Alcotest.(check bool) "blocked cell wears the blocked gray" true
    (contains doc "#52514e");
  Alcotest.(check bool) "overused tooltip names the overflow" true
    (contains doc "OVERUSED 2/1")

let test_escaping () =
  (* a hostile label must come out entity-escaped, and the page must
     still satisfy the checker *)
  let e = fixture_entry ~label:"<evil> & \"co\"" () in
  let doc = T.Dashboard.render ~entries:[ e ] () in
  (match T.Html.check doc with
  | Ok () -> ()
  | Error err -> Alcotest.failf "escaped render fails the checker: %s" err);
  Alcotest.(check bool) "label is escaped" true (contains doc "&lt;evil&gt;");
  Alcotest.(check bool) "no raw label" false (contains doc "<evil>")

let test_self_contained () =
  (* one file, zero dependencies: no scripts, no external fetches *)
  let doc = full_render () in
  Alcotest.(check bool) "no script element" false (contains doc "<script");
  Alcotest.(check bool) "no external href" false (contains doc "href=\"http");
  Alcotest.(check bool) "no external src" false (contains doc "src=\"http");
  Alcotest.(check bool) "declares itself html" true
    (contains doc "<!DOCTYPE html>")

let () =
  Alcotest.run "dashboard"
    [
      ( "html-checker",
        [
          Alcotest.test_case "accepts well-formed" `Quick test_check_accepts;
          Alcotest.test_case "rejects malformed" `Quick test_check_rejects;
          Alcotest.test_case "errors carry offset" `Quick
            test_check_reports_offset;
        ] );
      ( "render",
        [
          Alcotest.test_case "well-formed" `Quick test_render_well_formed;
          Alcotest.test_case "deterministic" `Quick test_render_deterministic;
          Alcotest.test_case "panels present" `Quick test_panels_present;
          Alcotest.test_case "panels omitted" `Quick test_panels_omitted;
          Alcotest.test_case "trend groups" `Quick test_trend_groups;
          Alcotest.test_case "heatmap colors" `Quick test_heatmap_colors;
          Alcotest.test_case "labels escaped" `Quick test_escaping;
          Alcotest.test_case "self-contained" `Quick test_self_contained;
        ] );
    ]
