lib/prelude/rng.mli:
