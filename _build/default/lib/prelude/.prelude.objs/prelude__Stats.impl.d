lib/prelude/stats.ml: List
