lib/prelude/rng.ml: Array Float Fun Int64 List Stdlib
