lib/prelude/stats.mli:
