(* splitmix64: fast, well-distributed, trivially seedable. State is a
   single 64-bit counter advanced by the golden gamma. *)
type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let choose_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: no positive weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 weighted

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n Fun.id in
  shuffle t arr;
  arr

let gaussian t =
  let u1 = Stdlib.max 1e-12 (float t 1.0) and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
