(** Small statistics helpers used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geo_mean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; 0 when [whole = 0]. *)
