let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geo_mean = function
  | [] -> 0.0
  | xs -> exp (mean (List.map log xs))

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole
