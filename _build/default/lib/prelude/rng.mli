(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component in this repository — annealing moves,
    synthetic benchmark generation, property-test inputs — draws from an
    explicit, seedable generator so that experiments are reproducible
    run-to-run and independent of the global [Random] state. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent stream (for parallel or nested generators). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    on non-positive [bound]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** Pick with probability proportional to the (positive) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** A uniform random permutation of [0 .. n-1]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)
