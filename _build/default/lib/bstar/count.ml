let catalan n =
  (* C(0)=1; C(n+1) = sum C(i)C(n-i). Table-based to avoid the binomial
     overflow for mid-size n. *)
  if n < 0 then invalid_arg "Count.catalan: negative";
  if n > 33 then invalid_arg "Count.catalan: overflow";
  let table = Array.make (n + 1) 0 in
  table.(0) <- 1;
  for k = 1 to n do
    for i = 0 to k - 1 do
      table.(k) <- table.(k) + (table.(i) * table.(k - 1 - i))
    done
  done;
  table.(n)

let factorial n =
  let rec go acc k =
    if k <= 1 then acc
    else begin
      if acc > max_int / k then invalid_arg "Count.count_placements: overflow";
      go (acc * k) (k - 1)
    end
  in
  go 1 n

let count_placements n = factorial n * catalan n

(* All shapes over k nodes, cells assigned later. Represent a shape as
   a tree over dummy cell 0; sizes drive the recursion. *)
let rec shapes k =
  if k = 0 then [ None ]
  else
    List.concat_map
      (fun left_size ->
        let lefts = shapes left_size in
        let rights = shapes (k - 1 - left_size) in
        List.concat_map
          (fun l ->
            List.map (fun r -> Some { Tree.cell = 0; left = l; right = r }) rights)
          lefts)
      (List.init k Fun.id)

(* Relabel a shape's nodes with the given cells in pre-order. *)
let assign_preorder shape cells =
  let remaining = ref cells in
  let rec go t =
    match !remaining with
    | [] -> invalid_arg "Count.assign_preorder: not enough cells"
    | c :: rest ->
        remaining := rest;
        let left = Option.map go t.Tree.left in
        (* pre-order: node, then left subtree, then right subtree —
           consume the cell before recursing, then left before right *)
        let right = Option.map go t.Tree.right in
        { Tree.cell = c; left; right }
  in
  go shape

let enumerate_shapes n =
  shapes n
  |> List.filter_map Fun.id
  |> List.map (fun s -> assign_preorder s (List.init n Fun.id))

let rec permutations = function
  | [] -> [ [] ]
  | cells ->
      List.concat_map
        (fun c ->
          List.map
            (fun rest -> c :: rest)
            (permutations (List.filter (fun d -> d <> c) cells)))
        cells

let enumerate_trees cells =
  let n = List.length cells in
  let shape_list = shapes n |> List.filter_map Fun.id in
  let perms = permutations cells in
  List.concat_map
    (fun shape -> List.map (assign_preorder shape) perms)
    shape_list
