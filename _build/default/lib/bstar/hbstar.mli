(** Hierarchical B*-trees (HB*-trees, survey §III-B, ref [17]).

    One B*-tree per hierarchical sub-circuit plus one for the top
    design. Packed sub-circuits enter their parent's tree as {e macros
    carrying their top rectilinear outline} (the survey's "contour
    nodes"), so parent-level cells can settle into the valleys of a
    sub-circuit's skyline. Sub-circuits are packed according to their
    constraint:

    - symmetry nodes by ASF-B*-trees ({!Asf}) — nested sub-circuits
      become self-symmetric blocks centered on the axis (hierarchical
      symmetry, Fig. 4);
    - common-centroid nodes by the fixed interdigitated pattern
      ({!Centroid}); groups with unmatched cell sizes degrade to a free
      B*-tree (documented substitution — true unit-decomposed
      common-centroid needs device splitting);
    - proximity and free nodes by plain B*-trees; proximity
      connectivity is enforced through the annealing cost.

    Annealing perturbs {e one} of the trees per move and repacks the
    whole design — the "simultaneous optimization of all hierarchy
    levels" the survey describes, as opposed to frozen bottom-up
    integration. *)

type state
(** All per-node trees for one design. *)

val initial :
  ?halo:int -> Prelude.Rng.t -> Netlist.Circuit.t -> Netlist.Hierarchy.t -> state
(** [halo] reserves an empty margin (grid units) around every proximity
    macro so a guard ring fits afterwards (see Placer's finishing pass);
    default 0. Raises [Invalid_argument] if the hierarchy does not cover
    the circuit's modules exactly once. *)

val perturb : Prelude.Rng.t -> state -> state
(** Perturb one randomly chosen node's tree. *)

val pack : state -> Geometry.Transform.placed list
(** Deterministic bottom-up packing of the current trees; absolute
    coordinates for every module, overlap-free by construction. *)

type weights = {
  area : float;
  wirelength : float;
  proximity_penalty : float;
      (** added once per disconnected proximity group *)
}

val default_weights : weights

val cost : weights -> state -> float

type outcome = {
  placed : Geometry.Transform.placed list;
  area : int;  (** bounding-box area *)
  hpwl : float;
  state : state;
  sa_rounds : int;
}

val place :
  ?weights:weights ->
  ?params:Anneal.Sa.params ->
  ?halo:int ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  Netlist.Hierarchy.t ->
  outcome
(** Simulated-annealing placement over the HB*-tree state space. *)
