(** Perturbation operations on B*-trees.

    The classic B*-tree move set: swap the cells of two nodes, or
    delete a node and re-insert its cell at a random position. Rotation
    (the third classic move) acts on cell orientations, which live at
    the placer level, not in the tree; see {!Placer.Sa_bstar}. *)

val swap : Prelude.Rng.t -> Tree.t -> Tree.t
(** Identity on single-node trees. *)

val move : Prelude.Rng.t -> Tree.t -> Tree.t
(** Delete a random cell and re-insert it elsewhere; identity on
    single-node trees. *)

val random : Prelude.Rng.t -> Tree.t -> Tree.t
(** One of {!swap} and {!move}, uniformly. *)
