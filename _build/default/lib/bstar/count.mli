(** Counting and enumerating B*-tree placements (survey §IV).

    The survey motivates hierarchically bounded enumeration with the
    size of the flat search space: "the number of possible placements
    for 8 modules is already 57,657,600" — which is [8! * catalan 8]
    (labelled binary trees of 8 nodes). These functions verify that
    number and provide the exhaustive enumeration the deterministic
    placer runs on basic module sets. *)

val catalan : int -> int
(** [catalan n] — number of binary tree shapes with [n] nodes. Raises
    [Invalid_argument] on overflow (n > 33). *)

val count_placements : int -> int
(** [n! * catalan n]: B*-trees over [n] distinguishable modules. *)

val enumerate_shapes : int -> Tree.t list
(** All binary tree shapes over the placeholder cells [0 .. n-1]
    assigned in pre-order. [catalan n] trees; exponential — intended
    for n <= 8. *)

val enumerate_trees : int list -> Tree.t list
(** All labelled B*-trees over the given cells: every shape times every
    assignment of cells to nodes. [n! * catalan n] trees; intended for
    n <= 5 (basic module sets). *)
