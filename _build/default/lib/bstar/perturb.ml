let swap rng t =
  let cells = Tree.cells t in
  match cells with
  | [] | [ _ ] -> t
  | _ ->
      let arr = Array.of_list cells in
      let n = Array.length arr in
      let i = Prelude.Rng.int rng n in
      let j = (i + 1 + Prelude.Rng.int rng (n - 1)) mod n in
      Tree.swap_cells t arr.(i) arr.(j)

let move rng t =
  let cells = Tree.cells t in
  match cells with
  | [] | [ _ ] -> t
  | _ -> (
      let victim = Prelude.Rng.choose rng cells in
      match Tree.delete t victim with
      | None -> t
      | Some t' -> Tree.insert_random rng t' ~cell:victim)

let random rng t =
  if Prelude.Rng.bool rng then swap rng t else move rng t
