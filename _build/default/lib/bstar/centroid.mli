(** Common-centroid placement patterns (survey §III-A, Fig. 3(a)).

    Whole-module common-centroid placement: the group's cells are
    arranged so that the set of cell centers is point-symmetric about
    the common centroid, which cancels linear process gradients. Equal
    cell dimensions are required (matched devices); an even count uses
    the classic two-row interdigitated pattern, an odd count a single
    row with the middle cell on the centroid. *)

val place :
  cells:int list ->
  (int -> int * int) ->
  (Geometry.Transform.placed list, string) result
(** Placements with origin at (0,0). Fails if the cells do not share
    one dimension pair or the list is empty. The result passes
    {!Constraints.Placement_check.common_centroid} (tested). *)

val interdigitated :
  counts:(int * int) list ->
  unit_w:int ->
  unit_h:int ->
  ((int * Geometry.Rect.t) list, string) result
(** Unit-decomposed common centroid: each [(owner, k)] contributes [k]
    identical [unit_w]x[unit_h] fingers, interdigitated so that {e every
    owner's} unit multiset is point-symmetric about the common centroid
    (the classic A-B-B-A patterns, generalized to arbitrary ratios like
    the 1:2:2 of a Miller bias mirror). Unit counts are doubled
    internally when parity makes the direct assignment infeasible (more
    than one odd count). Returns (owner, rect) per unit; one or two
    rows depending on the total. Verified by
    {!Constraints.Placement_check.common_centroid_units} (tested). *)
