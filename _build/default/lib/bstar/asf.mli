(** Automatically symmetric-feasible B*-trees (ASF-B*-trees, survey
    §III-B, ref [16]).

    An ASF-B*-tree represents only the {e right half} of a symmetry
    island: one representative per symmetric pair (full size) plus the
    self-symmetric cells (half width), the latter pinned to the
    axis-adjacent chain of right children from the root so they sit at
    x = 0. Packing the half and mirroring it about x = 0 yields a
    placement that is exactly mirror-symmetric {e by construction} — a
    "symmetry island" that hierarchical placers treat as one block.

    Self-symmetric cells of odd width are padded by one grid unit so
    their half-width is integral. *)

type t

val group : t -> Constraints.Symmetry_group.t

val make : Prelude.Rng.t -> Constraints.Symmetry_group.t -> t
(** Random initial ASF-B*-tree for the group. For each pair the
    {e second} cell is the representative (placed right of the axis). *)

val of_tree : Constraints.Symmetry_group.t -> Tree.t -> t
(** Adopt an explicit half-tree (over pair representatives — the
    second cell of each pair — and the self-symmetric cells). Raises
    [Invalid_argument] unless the tree covers exactly those cells and
    every self-symmetric cell lies on the chain of right children from
    the root (i.e. at x = 0). Used by the exhaustive enumerator. *)

val perturb : Prelude.Rng.t -> t -> t
(** Random swap/move among pair representatives, preserving the
    self-cell chain invariant. *)

type island = {
  placed : Geometry.Transform.placed list;
      (** all group cells; origin at (0,0) *)
  axis2 : int;  (** doubled x-coordinate of the symmetry axis *)
  width : int;
  height : int;
}

val pack : t -> (int -> int * int) -> island
(** Pack the half-tree against the contour and mirror. The result
    passes {!Constraints.Placement_check.symmetry} and
    {!Constraints.Placement_check.overlap_free} (tested). *)

val pp : Format.formatter -> t -> unit
