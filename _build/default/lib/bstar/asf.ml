open Geometry
module G = Constraints.Symmetry_group

type t = { grp : G.t; reps : int list; half : Tree.t }

let group t = t.grp

let is_self t c = List.mem c t.grp.G.selfs

let insert_rep rng asf_grp tree cell =
  let nodes = Tree.cells tree in
  let target = Prelude.Rng.choose rng nodes in
  let side =
    if List.mem target asf_grp.G.selfs then `Left
    else if Prelude.Rng.bool rng then `Left
    else `Right
  in
  Tree.insert_at tree ~cell ~target ~side

let make rng grp =
  let reps = List.map snd grp.G.pairs in
  let base =
    match (grp.G.selfs, reps) with
    | [], [] -> invalid_arg "Asf.make: empty symmetry group"
    | [], r :: rest ->
        (* no axis cells: random tree over representatives *)
        List.fold_left
          (fun t c -> insert_rep rng grp t c)
          (Tree.leaf r) rest
    | selfs, _ ->
        let chain = Tree.column selfs in
        List.fold_left (fun t c -> insert_rep rng grp t c) chain reps
  in
  { grp; reps; half = base }

let rec right_chain t =
  t.Tree.cell
  :: (match t.Tree.right with None -> [] | Some r -> right_chain r)

let of_tree grp tree =
  let reps = List.map snd grp.G.pairs in
  let expected = List.sort Int.compare (reps @ grp.G.selfs) in
  let actual = List.sort Int.compare (Tree.cells tree) in
  if expected <> actual then
    invalid_arg "Asf.of_tree: tree cells do not match the group";
  let chain = right_chain tree in
  if not (List.for_all (fun f -> List.mem f chain) grp.G.selfs) then
    invalid_arg "Asf.of_tree: self-symmetric cell off the axis chain";
  { grp; reps; half = tree }

let perturb rng t =
  match t.reps with
  | [] -> t
  | [ only ] -> (
      (* single representative: re-insert it somewhere else *)
      match Tree.delete t.half only with
      | None -> t
      | Some rest -> { t with half = insert_rep rng t.grp rest only })
  | _ -> (
      if Prelude.Rng.bool rng then
        let arr = Array.of_list t.reps in
        let n = Array.length arr in
        let i = Prelude.Rng.int rng n in
        let j = (i + 1 + Prelude.Rng.int rng (n - 1)) mod n in
        { t with half = Tree.swap_cells t.half arr.(i) arr.(j) }
      else
        let victim = Prelude.Rng.choose rng t.reps in
        match Tree.delete t.half victim with
        | None -> t
        | Some rest -> { t with half = insert_rep rng t.grp rest victim })

type island = {
  placed : Transform.placed list;
  axis2 : int;
  width : int;
  height : int;
}

let pack t dims =
  let padded_w c =
    let w, _ = dims c in
    w + (w land 1)
  in
  let half_dims c =
    let _, h = dims c in
    if is_self t c then (padded_w c / 2, h) else dims c
  in
  let rects = Tree.pack_rects t.half half_dims in
  let rect_of c =
    match List.assoc_opt c rects with
    | Some r -> r
    | None -> invalid_arg "Asf.pack: cell missing from half tree"
  in
  (* Build the full island in axis-centered coordinates (axis at 0). *)
  let pieces =
    List.concat_map
      (fun (l, r) ->
        let rr = rect_of r in
        let w = rr.Rect.w and h = rr.Rect.h in
        [
          (l, Rect.make ~x:(-(rr.Rect.x + w)) ~y:rr.Rect.y ~w ~h, Orientation.MY);
          (r, rr, Orientation.R0);
        ])
      t.grp.G.pairs
    @ List.map
        (fun f ->
          let rf = rect_of f in
          assert (rf.Rect.x = 0);
          let w = 2 * rf.Rect.w in
          ( f,
            Rect.make ~x:(-rf.Rect.w) ~y:rf.Rect.y ~w ~h:rf.Rect.h,
            Orientation.R0 ))
        t.grp.G.selfs
  in
  let min_x =
    List.fold_left (fun acc (_, r, _) -> min acc r.Rect.x) 0 pieces
  in
  let dx = -min_x in
  let placed =
    List.map
      (fun (cell, r, orient) ->
        { Transform.cell; rect = Rect.translate r ~dx ~dy:0; orient })
      pieces
  in
  let bbox = Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed) in
  { placed; axis2 = 2 * dx; width = Rect.x_max bbox; height = Rect.y_max bbox }

let pp ppf t =
  Format.fprintf ppf "@[ASF(%s): half %a@]" t.grp.G.name Tree.pp t.half
