open Geometry

(* Interdigitated unit placement. Linearization: a single row for odd
   totals (the lone odd owner holds the middle), otherwise two rows in
   serpentine order (row 0 left-to-right, then row 1 right-to-left), so
   that linear positions p and N-1-p are always point-symmetric about
   the pattern center. *)
let interdigitated ~counts ~unit_w ~unit_h =
  let valid =
    counts <> []
    && List.for_all (fun (_, k) -> k > 0) counts
    && List.length (List.sort_uniq Int.compare (List.map fst counts))
       = List.length counts
  in
  if not valid then Error "Centroid.interdigitated: bad unit counts"
  else begin
    let odd_owners = List.filter (fun (_, k) -> k land 1 = 1) counts in
    (* more than one odd owner cannot be point-symmetric: refine units *)
    let counts, unit_w =
      if List.length odd_owners > 1 then
        (List.map (fun (o, k) -> (o, 2 * k)) counts, max 1 (unit_w / 2))
      else (counts, unit_w)
    in
    let total = List.fold_left (fun acc (_, k) -> acc + k) 0 counts in
    let middle_owner =
      match List.filter (fun (_, k) -> k land 1 = 1) counts with
      | [ (o, _) ] -> Some o
      | [] -> None
      | _ -> assert false
    in
    (* pairs per owner after the middle unit is set aside *)
    let pair_budget =
      List.map (fun (o, k) -> (o, k / 2)) counts
      |> List.filter (fun (_, p) -> p > 0)
    in
    let m = total / 2 in
    (* disperse: at each step give the pair slot to the owner with the
       largest remaining share *)
    let remaining = Array.of_list pair_budget in
    let totals = Array.map snd remaining in
    let half =
      Array.init m (fun _ ->
          let best = ref (-1) and best_share = ref (-1.0) in
          Array.iteri
            (fun i (_, r) ->
              let share =
                if r = 0 then -1.0
                else float_of_int r /. float_of_int totals.(i)
              in
              if share > !best_share then begin
                best := i;
                best_share := share
              end)
            remaining;
          let o, r = remaining.(!best) in
          remaining.(!best) <- (o, r - 1);
          o)
    in
    let owner_at p =
      if p < m then half.(p)
      else if p = m && total land 1 = 1 then Option.get middle_owner
      else half.(total - 1 - p)
    in
    (* Row-major placement: reversing the linear index then equals the
       point reflection through the pattern center (for two rows,
       p <-> N-1-p lands at mirrored column on the other row). *)
    let position p =
      if total land 1 = 1 || total <= 6 then (* single row *)
        Rect.make ~x:(p * unit_w) ~y:0 ~w:unit_w ~h:unit_h
      else
        let cols = total / 2 in
        if p < cols then Rect.make ~x:(p * unit_w) ~y:0 ~w:unit_w ~h:unit_h
        else Rect.make ~x:((p - cols) * unit_w) ~y:unit_h ~w:unit_w ~h:unit_h
    in
    Ok (List.init total (fun p -> (owner_at p, position p)))
  end

let place ~cells dims =
  match cells with
  | [] -> Error "Centroid.place: empty group"
  | first :: rest ->
      let w, h = dims first in
      if List.exists (fun c -> dims c <> (w, h)) rest then
        Error "Centroid.place: cells are not matched in size"
      else
        let k = List.length cells in
        let arr = Array.of_list cells in
        let placed =
          if k mod 2 = 0 then
            (* two rows: bottom row left-to-right, each cell's
               point-symmetric twin in the top row mirrored column *)
            let m = k / 2 in
            List.init k (fun i ->
                let col, row = if i < m then (i, 0) else (k - 1 - i, 1) in
                {
                  Transform.cell = arr.(i);
                  rect = Rect.make ~x:(col * w) ~y:(row * h) ~w ~h;
                  orient =
                    (if row = 1 then Orientation.R180 else Orientation.R0);
                })
          else
            (* single row: cell i pairs with cell k-1-i through the
               centroid; the middle cell sits on it *)
            List.init k (fun i ->
                {
                  Transform.cell = arr.(i);
                  rect = Rect.make ~x:(i * w) ~y:0 ~w ~h;
                  orient =
                    (if i > k / 2 then Orientation.R180 else Orientation.R0);
                })
        in
        Ok placed
