lib/bstar/tree.mli: Format Geometry Prelude
