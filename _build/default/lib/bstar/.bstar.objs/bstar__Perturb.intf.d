lib/bstar/perturb.mli: Prelude Tree
