lib/bstar/asf.mli: Constraints Format Geometry Prelude Tree
