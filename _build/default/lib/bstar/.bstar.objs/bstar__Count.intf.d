lib/bstar/count.mli: Tree
