lib/bstar/hbstar.mli: Anneal Geometry Netlist Prelude
