lib/bstar/hbstar.ml: Anneal Array Asf Centroid Constraints Contour Fun Geometry List Netlist Option Orientation Outline Perturb Prelude Rect Result Transform Tree
