lib/bstar/perturb.ml: Array Prelude Tree
