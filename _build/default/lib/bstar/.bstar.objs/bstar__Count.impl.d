lib/bstar/count.ml: Array Fun List Option Tree
