lib/bstar/tree.ml: Array Contour Format Geometry List Option Orientation Prelude Rect Transform
