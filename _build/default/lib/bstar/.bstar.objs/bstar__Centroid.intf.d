lib/bstar/centroid.mli: Geometry
