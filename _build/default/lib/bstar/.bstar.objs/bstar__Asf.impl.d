lib/bstar/asf.ml: Array Constraints Format Geometry Int List Orientation Prelude Rect Transform Tree
