lib/bstar/centroid.ml: Array Geometry Int List Option Orientation Rect Transform
