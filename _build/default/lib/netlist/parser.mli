(** Parser for a small SPICE-like netlist dialect.

    No public parsers exist for the benchmark formats the surveyed tools
    consumed, so this repository defines a minimal flat dialect, enough
    to describe the op-amp style circuits of the paper:

    {v
    * comment
    M1 out inp tail vss nmos W=20u L=0.5u M=4
    C1 out vss 1p
    R1 a b 10k
    .end
    v}

    Element cards start with [M] (MOS: drain gate source bulk, model
    [nmos]/[pmos], parameters [W=], [L=], optional [M=] fold count),
    [C] (cap: two nodes, value) or [R] (resistor: two nodes, value).
    Values accept the usual engineering suffixes
    ([f p n u m k meg g]). Parsing is case-insensitive; [*] and [;]
    start comments; [.end] and blank lines are ignored. *)

type error = { line : int; message : string }

val parse_value : string -> float option
(** ["2.5u"] -> [Some 2.5e-6], etc. *)

val parse_string : string -> (Device.t list, error) result

val print_netlist : ?title:string -> Device.t list -> string
(** Emit devices back in the dialect above ({!parse_string} of the
    output reproduces the devices — tested). [Block] devices have no
    card syntax and are skipped. *)

val to_circuit :
  ?ignore_nets:string list -> name:string -> Device.t list -> Circuit.t
(** One module per device; a net per net name connecting >= 2 devices.
    Nets named in [ignore_nets] (default supply/ground:
    ["vdd"; "vss"; "gnd"; "0"]) carry no wirelength and are dropped. *)

val pp_error : Format.formatter -> error -> unit
