(** Device-level circuit elements.

    Devices carry the electrical parameters the layout flow needs: MOS
    width/length/fold count (folds change both the cell footprint and
    the junction parasitics, the coupling §V of the survey exploits),
    capacitor and resistor values. Footprints are derived from these
    parameters on a 10 nm layout grid. *)

type mos_kind = Nmos | Pmos

type kind =
  | Mos of { mos : mos_kind; w_um : float; l_um : float; folds : int }
  | Cap of { farads : float }
  | Res of { ohms : float }
  | Block of { w : int; h : int }
      (** an opaque pre-sized macro (grid units) *)

type t = {
  name : string;
  kind : kind;
  pins : (string * string) list;
      (** terminal name -> net name, e.g. [("d", "out")] *)
}

val make : name:string -> kind:kind -> pins:(string * string) list -> t

val grid_per_um : int
(** Layout grid units per micrometer (100, i.e. a 10 nm grid). *)

val footprint : t -> int * int
(** [(w, h)] of the device cell in grid units. MOS cells widen with
    W/folds and stack fingers vertically; capacitors are near-square
    with area proportional to value; resistors are tall serpentines. *)

val net_of_pin : t -> string -> string option
(** Net attached to a named terminal, if any. *)

val is_mos : t -> bool
val mos_kind : t -> mos_kind option

val with_geometry : t -> w_um:float -> l_um:float -> folds:int -> t
(** Resize a MOS device (identity for non-MOS). *)

val pp : Format.formatter -> t -> unit
