type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let suffixes =
  [
    ("meg", 1e6); ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6);
    ("m", 1e-3); ("k", 1e3); ("g", 1e9);
  ]

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  let try_suffix (suf, mult) =
    if String.length s > String.length suf
       && String.ends_with ~suffix:suf s then
      let num = String.sub s 0 (String.length s - String.length suf) in
      Option.map (fun v -> v *. mult) (float_of_string_opt num)
    else None
  in
  (* "meg" must be tried before "m"; the list is ordered accordingly. *)
  let rec first = function
    | [] -> float_of_string_opt s
    | sm :: rest -> ( match try_suffix sm with Some v -> Some v | None -> first rest)
  in
  first suffixes

let tokens line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun t -> t <> "")

let keyed_param key toks =
  let prefix = key ^ "=" in
  List.find_map
    (fun t ->
      let t = String.lowercase_ascii t in
      if String.starts_with ~prefix t then
        parse_value (String.sub t (String.length prefix)
                       (String.length t - String.length prefix))
      else None)
    toks

let parse_mos ~line_no name toks =
  match toks with
  | d :: g :: s :: b :: model :: params ->
      let mos =
        match String.lowercase_ascii model with
        | "nmos" -> Ok Device.Nmos
        | "pmos" -> Ok Device.Pmos
        | other -> Error { line = line_no; message = "unknown MOS model " ^ other }
      in
      Result.bind mos (fun mos ->
          match (keyed_param "w" params, keyed_param "l" params) with
          | Some w, Some l ->
              let folds =
                match keyed_param "m" params with
                | Some m -> max 1 (int_of_float m)
                | None -> 1
              in
              Ok
                (Device.make ~name
                   ~kind:(Device.Mos { mos; w_um = w *. 1e6; l_um = l *. 1e6; folds })
                   ~pins:[ ("d", d); ("g", g); ("s", s); ("b", b) ])
          | _ -> Error { line = line_no; message = "MOS needs W= and L=" })
  | _ -> Error { line = line_no; message = "MOS card: M<name> d g s b model W= L=" }

let parse_two_pin ~line_no ~what name toks mk =
  match toks with
  | p :: n :: value :: _ -> (
      match parse_value value with
      | Some v -> Ok (Device.make ~name ~kind:(mk v) ~pins:[ ("p", p); ("n", n) ])
      | None -> Error { line = line_no; message = "bad " ^ what ^ " value " ^ value })
  | _ -> Error { line = line_no; message = what ^ " card: two nodes + value" }

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let rec go line_no acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let line = String.trim (strip_comment raw) in
        if line = "" || line.[0] = '*' || line.[0] = '.' then
          go (line_no + 1) acc rest
        else
          match tokens line with
          | [] -> go (line_no + 1) acc rest
          | name :: toks -> (
              let parsed =
                match Char.lowercase_ascii name.[0] with
                | 'm' -> parse_mos ~line_no name toks
                | 'c' ->
                    parse_two_pin ~line_no ~what:"capacitor" name toks
                      (fun v -> Device.Cap { farads = v })
                | 'r' ->
                    parse_two_pin ~line_no ~what:"resistor" name toks
                      (fun v -> Device.Res { ohms = v })
                | _ ->
                    Error
                      { line = line_no; message = "unknown element " ^ name }
              in
              match parsed with
              | Ok d -> go (line_no + 1) (d :: acc) rest
              | Error e -> Error e))
  in
  go 1 [] lines

let print_netlist ?(title = "generated netlist") devices =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("* " ^ title ^ "\n");
  List.iter
    (fun (d : Device.t) ->
      let pin p = Option.value (Device.net_of_pin d p) ~default:"0" in
      match d.Device.kind with
      | Device.Mos { mos; w_um; l_um; folds } ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %s %s %s %s W=%gu L=%gu M=%d\n"
               d.Device.name (pin "d") (pin "g") (pin "s") (pin "b")
               (match mos with Device.Nmos -> "nmos" | Device.Pmos -> "pmos")
               w_um l_um folds)
      | Device.Cap { farads } ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %s %g\n" d.Device.name (pin "p") (pin "n")
               farads)
      | Device.Res { ohms } ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s %s %g\n" d.Device.name (pin "p") (pin "n")
               ohms)
      | Device.Block _ -> ())
    devices;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let default_ignore = [ "vdd"; "vss"; "gnd"; "0" ]

let to_circuit ?(ignore_nets = default_ignore) ~name devices =
  let modules = List.map Circuit.module_of_device devices in
  let net_pins : (string, int list) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun idx (d : Device.t) ->
      List.iter
        (fun (_, net) ->
          let net = String.lowercase_ascii net in
          if not (List.mem net ignore_nets) then
            Hashtbl.replace net_pins net
              (idx :: Option.value ~default:[] (Hashtbl.find_opt net_pins net)))
        d.Device.pins)
    devices;
  let nets =
    Hashtbl.fold
      (fun net pins acc ->
        let pins = List.sort_uniq Int.compare pins in
        if List.length pins >= 2 then Net.make ~name:net ~pins () :: acc
        else acc)
      net_pins []
    |> List.sort (fun (a : Net.t) b -> String.compare a.name b.name)
  in
  Circuit.make ~name ~modules ~nets
