let connectivity (c : Circuit.t) a b =
  List.fold_left
    (fun acc (net : Net.t) ->
      if List.mem a net.Net.pins && List.mem b net.Net.pins then
        acc +. net.Net.weight
      else acc)
    0.0 c.Circuit.nets

type cluster = { tree : Hierarchy.t; members : int list }

let cluster_connectivity (c : Circuit.t) c1 c2 =
  List.fold_left
    (fun acc (net : Net.t) ->
      let touches members = List.exists (fun m -> List.mem m members) net.Net.pins in
      if touches c1.members && touches c2.members then acc +. net.Net.weight
      else acc)
    0.0 c.Circuit.nets

(* Merging two small clusters keeps basic sets flat (one node over
   leaves); larger merges become plain grouping nodes. *)
let merge ~max_cluster counter a b =
  incr counter;
  let name = Printf.sprintf "cluster%d" !counter in
  let flat_leaves t =
    match t with
    | Hierarchy.Leaf i -> Some [ i ]
    | Hierarchy.Node { children; _ }
      when List.for_all
             (function Hierarchy.Leaf _ -> true | Hierarchy.Node _ -> false)
             children ->
        Some (Hierarchy.leaves t)
    | Hierarchy.Node _ -> None
  in
  let members = a.members @ b.members in
  let tree =
    match (flat_leaves a.tree, flat_leaves b.tree) with
    | Some la, Some lb when List.length la + List.length lb <= max_cluster ->
        Hierarchy.node name
          (List.map (fun i -> Hierarchy.Leaf i) (la @ lb))
    | _ -> Hierarchy.node name [ a.tree; b.tree ]
  in
  { tree; members }

let by_connectivity ?(max_cluster = 4) (c : Circuit.t) =
  let n = Circuit.size c in
  if n = 0 then invalid_arg "Cluster.by_connectivity: empty circuit";
  let counter = ref 0 in
  let clusters =
    ref
      (List.init n (fun i -> { tree = Hierarchy.Leaf i; members = [ i ] }))
  in
  while List.length !clusters > 1 do
    (* the most-connected pair; ties and zero-connectivity fall back to
       the first pair so disconnected designs still terminate *)
    let arr = Array.of_list !clusters in
    let best = ref (0, 1) and best_w = ref neg_infinity in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let w = cluster_connectivity c arr.(i) arr.(j) in
        (* prefer small merges at equal connectivity *)
        let size =
          List.length arr.(i).members + List.length arr.(j).members
        in
        let key = w -. (1e-9 *. float_of_int size) in
        if key > !best_w then begin
          best_w := key;
          best := (i, j)
        end
      done
    done;
    let i, j = !best in
    let merged = merge ~max_cluster counter arr.(i) arr.(j) in
    clusters :=
      merged
      :: (Array.to_list arr
         |> List.filteri (fun k _ -> k <> i && k <> j))
  done;
  match !clusters with
  | [ { tree; _ } ] ->
      (match Hierarchy.validate tree ~n_modules:n with
      | Ok () -> tree
      | Error msg -> invalid_arg ("Cluster.by_connectivity: " ^ msg))
  | _ -> assert false
