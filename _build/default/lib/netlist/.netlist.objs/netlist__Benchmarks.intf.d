lib/netlist/benchmarks.mli: Circuit Hierarchy
