lib/netlist/recognize.ml: Array Circuit Device Format Fun Hashtbl Hierarchy Int List Option Printf String
