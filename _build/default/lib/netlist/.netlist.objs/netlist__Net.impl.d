lib/netlist/net.ml: Format Int List
