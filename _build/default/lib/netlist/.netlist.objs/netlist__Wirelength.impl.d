lib/netlist/wirelength.ml: List Net
