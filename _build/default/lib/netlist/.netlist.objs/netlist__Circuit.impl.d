lib/netlist/circuit.ml: Array Device Format Hashtbl List Net Printf String
