lib/netlist/parser.ml: Buffer Char Circuit Device Format Hashtbl Int List Net Option Printf Result String
