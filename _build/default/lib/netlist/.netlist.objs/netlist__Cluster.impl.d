lib/netlist/cluster.ml: Array Circuit Hierarchy List Net Printf
