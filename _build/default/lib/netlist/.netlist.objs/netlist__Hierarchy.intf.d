lib/netlist/hierarchy.mli: Format
