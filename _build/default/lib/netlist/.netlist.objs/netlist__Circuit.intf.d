lib/netlist/circuit.mli: Device Format Net
