lib/netlist/recognize.mli: Circuit Format Hierarchy
