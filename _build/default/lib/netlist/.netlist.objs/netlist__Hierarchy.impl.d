lib/netlist/hierarchy.ml: Array Format List Printf
