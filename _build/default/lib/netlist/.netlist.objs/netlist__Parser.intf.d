lib/netlist/parser.mli: Circuit Device Format
