lib/netlist/cluster.mli: Circuit Hierarchy
