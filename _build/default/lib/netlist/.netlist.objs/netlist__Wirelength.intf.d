lib/netlist/wirelength.mli: Net
