lib/netlist/device.mli: Format
