lib/netlist/benchmarks.ml: Circuit Format Hierarchy Int List Net Parser Prelude Printf Recognize
