lib/netlist/net.mli: Format
