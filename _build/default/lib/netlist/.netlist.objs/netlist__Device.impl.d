lib/netlist/device.ml: Float Format List
