(** Electrical nets at the placement level.

    A net connects a set of module indices (pins collapse to the module
    owning them). Nets drive the wirelength term of placement cost; the
    [weight] lets performance-critical nets (the differential signal
    path, say) count more, as performance-driven placers do. *)

type t = { name : string; pins : int list; weight : float }

val make : ?weight:float -> name:string -> pins:int list -> unit -> t
(** Duplicated pins are collapsed; default [weight] is 1. *)

val degree : t -> int
val pp : Format.formatter -> t -> unit
