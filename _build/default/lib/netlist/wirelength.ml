let hpwl nets ~center2 =
  List.fold_left
    (fun acc (net : Net.t) ->
      let centers = List.filter_map center2 net.Net.pins in
      match centers with
      | [] | [ _ ] -> acc
      | (x0, y0) :: rest ->
          let min_x, max_x, min_y, max_y =
            List.fold_left
              (fun (a, b, c, d) (x, y) ->
                (min a x, max b x, min c y, max d y))
              (x0, x0, y0, y0) rest
          in
          acc
          +. (net.Net.weight
              *. float_of_int (max_x - min_x + max_y - min_y)
              /. 2.0))
    0.0 nets
