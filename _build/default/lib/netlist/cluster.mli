(** Virtual hierarchy by connectivity clustering (survey §III-A).

    The layout design hierarchy "may contain both exact and virtual
    hierarchies"; the virtual one consists of "hierarchical clusters"
    of devices gathered by functionality or connectivity (refs
    [9],[21],[17]). When structure recognition finds nothing (opaque
    block designs), this module builds that virtual hierarchy
    bottom-up: repeatedly merge the pair of clusters with the highest
    net connectivity between them, bounding cluster (basic-set) sizes
    so the result suits both the HB*-tree placer and the deterministic
    enumerator. *)

val connectivity : Circuit.t -> int -> int -> float
(** Total weight of nets joining two modules. *)

val by_connectivity : ?max_cluster:int -> Circuit.t -> Hierarchy.t
(** Agglomerative clustering over the circuit's nets. Clusters are
    capped at [max_cluster] leaves (default 4, a basic-module-set
    size); merging continues above the cap into [Free] grouping nodes
    until a single root remains. Every module appears exactly once
    (validated). Isolated modules join the root. *)
