type t = { name : string; pins : int list; weight : float }

let make ?(weight = 1.0) ~name ~pins () =
  { name; pins = List.sort_uniq Int.compare pins; weight }

let degree n = List.length n.pins

let pp ppf n =
  Format.fprintf ppf "@[%s(%a)w=%.1f@]" n.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    n.pins n.weight
