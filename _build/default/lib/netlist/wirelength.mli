(** Half-perimeter wirelength (HPWL).

    The standard placement wirelength estimate: per net, the
    semi-perimeter of the bounding box of its pins' cell centers,
    weighted by the net weight. Used by every annealing cost function
    in this repository. *)

val hpwl :
  Net.t list -> center2:(int -> (int * int) option) -> float
(** [center2 m] is the doubled center of module [m]'s placed rectangle
    ([None] if unplaced; such pins are skipped). The result is in grid
    units (the doubling is compensated). *)
