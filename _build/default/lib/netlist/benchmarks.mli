(** Benchmark circuits.

    The circuits behind the survey's experiments are not public and no
    parsers exist for their formats, so this module provides:

    - the {e exact} small examples the paper draws (Fig. 1 cell set,
      Fig. 2 hierarchical design, Fig. 6 Miller op amp netlist), and
    - a seeded synthetic generator reproducing the {e scale} of the
      Table I suite (module counts 13/10/22/46/65/110) with
      analog-typical module dimensions and hierarchy shapes.

    All generation is deterministic for a given seed. *)

type bench = {
  label : string;
  circuit : Circuit.t;
  hierarchy : Hierarchy.t;
}

val fig1_circuit : unit -> Circuit.t
(** The seven cells A..G of Fig. 1, indices in alphabetical order
    (A=0 .. G=6). Symmetric counterparts have matched dimensions. *)

val fig1_symmetry : (int * int) list * int list
(** The symmetry group of Fig. 1: pairs [(C,D); (B,G)], selfs [A; F]
    as module indices of {!fig1_circuit}. *)

val fig2_design : unit -> bench
(** The Fig. 2 layout-design hierarchy: a hierarchical-symmetry
    sub-circuit (pair (D,E), self A, nested common-centroid \{H,I\} as in
    Fig. 4), a proximity sub-circuit \{G,J,K\} and free cells B, C, F. *)

val miller_netlist : string
(** SPICE-like source of the Fig. 6 Miller op amp. *)

val miller : unit -> bench
(** Fig. 6 Miller op amp: parsed from {!miller_netlist}, hierarchy
    obtained by {!Recognize.recognize} (CORE\{DP,CM1\}, CM2, N8, C). *)

val synthetic : label:string -> n:int -> seed:int -> bench
(** Synthetic analog circuit with [n] modules: basic module sets of 2-5
    matched or free devices under symmetry / common-centroid / proximity
    / free constraints, combined by a random hierarchy of fan-out 2-4,
    with intra-set and some cross-set nets. *)

val table1_suite : unit -> bench list
(** The six-circuit suite of Table I: Miller V2 (13 modules),
    Comparator V2 (10), Folded cascode (22), Buffer (46),
    biasynth (65), lnamixbias (110). *)
