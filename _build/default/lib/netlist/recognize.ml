type structure =
  | Diff_pair of int * int
  | Current_mirror of int list
  | Cascode_pair of int * int

type result = { structures : structure list; hierarchy : Hierarchy.t }

let structure_modules = function
  | Diff_pair (a, b) | Cascode_pair (a, b) -> [ a; b ]
  | Current_mirror ms -> ms

let pp_structure ppf s =
  let pins = structure_modules s in
  let label =
    match s with
    | Diff_pair _ -> "diff-pair"
    | Current_mirror _ -> "current-mirror"
    | Cascode_pair _ -> "cascode"
  in
  Format.fprintf ppf "%s(%a)" label
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    pins

type mos_info = {
  idx : int;
  mos : Device.mos_kind;
  d : string;
  g : string;
  s : string;
}

let mos_infos (c : Circuit.t) =
  Array.to_list c.modules
  |> List.mapi (fun idx (m : Circuit.module_) ->
         match m.device with
         | Some dev -> (
             match (Device.mos_kind dev,
                    Device.net_of_pin dev "d",
                    Device.net_of_pin dev "g",
                    Device.net_of_pin dev "s") with
             | Some mos, Some d, Some g, Some s -> Some { idx; mos; d; g; s }
             | _ -> None)
         | None -> None)
  |> List.filter_map Fun.id

let diode_connected m = String.equal m.d m.g

(* Current mirrors: group by (polarity, gate net, source net); keep
   groups of >= 2 containing a diode-connected device. *)
let find_mirrors infos =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let key = (m.mos, m.g, m.s) in
      Hashtbl.replace tbl key
        (m :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    infos;
  Hashtbl.fold
    (fun _ group acc ->
      if List.length group >= 2 && List.exists diode_connected group then
        List.rev_map (fun m -> m.idx) group :: acc
      else acc)
    tbl []
  |> List.map (List.sort Int.compare)
  |> List.sort compare

(* Differential pairs among the not-yet-claimed devices: common source,
   distinct gates and drains, neither diode-connected. *)
let find_diff_pairs infos =
  let rec go acc = function
    | [] -> List.rev acc
    | m :: rest -> (
        let partner =
          List.find_opt
            (fun m' ->
              m.mos = m'.mos
              && String.equal m.s m'.s
              && (not (String.equal m.g m'.g))
              && (not (String.equal m.d m'.d))
              && (not (diode_connected m))
              && not (diode_connected m'))
            rest
        in
        match partner with
        | Some m' ->
            go ((min m.idx m'.idx, max m.idx m'.idx) :: acc)
              (List.filter (fun x -> x.idx <> m'.idx) rest)
        | None -> go acc rest)
  in
  go [] infos

(* Cascode pairs among the remainder: same polarity, drain of the lower
   device is the source of the upper one. *)
let find_cascodes infos =
  let rec go acc = function
    | [] -> List.rev acc
    | m :: rest -> (
        let partner =
          List.find_opt
            (fun m' ->
              m.mos = m'.mos
              && (String.equal m.d m'.s || String.equal m'.d m.s))
            rest
        in
        match partner with
        | Some m' ->
            go ((min m.idx m'.idx, max m.idx m'.idx) :: acc)
              (List.filter (fun x -> x.idx <> m'.idx) rest)
        | None -> go acc rest)
  in
  go [] infos

let drain_nets infos idxs =
  List.filter_map
    (fun i -> List.find_opt (fun m -> m.idx = i) infos)
    idxs
  |> List.map (fun m -> m.d)

let recognize (c : Circuit.t) =
  let infos = mos_infos c in
  let mirrors = find_mirrors infos in
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun ms -> List.iter (fun i -> Hashtbl.replace claimed i ()) ms)
    mirrors;
  let free_infos =
    List.filter (fun m -> not (Hashtbl.mem claimed m.idx)) infos
  in
  let dps = find_diff_pairs free_infos in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace claimed a ();
      Hashtbl.replace claimed b ())
    dps;
  let free_infos =
    List.filter (fun m -> not (Hashtbl.mem claimed m.idx)) infos
  in
  let cascodes = find_cascodes free_infos in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace claimed a ();
      Hashtbl.replace claimed b ())
    cascodes;
  let structures =
    List.map (fun ms -> Current_mirror ms) mirrors
    @ List.map (fun (a, b) -> Diff_pair (a, b)) dps
    @ List.map (fun (a, b) -> Cascode_pair (a, b)) cascodes
  in
  (* Hierarchy: pair each diff pair with the mirror loading its drains
     into a hierarchical-symmetry CORE node (Fig. 6). *)
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let dp_nodes =
    List.map
      (fun (a, b) ->
        ((a, b), Hierarchy.node ~kind:Hierarchy.Symmetry (fresh "DP")
                   [ Hierarchy.Leaf a; Hierarchy.Leaf b ]))
      dps
  in
  let mirror_nodes =
    List.map
      (fun ms ->
        (ms, Hierarchy.node ~kind:Hierarchy.Common_centroid (fresh "CM")
               (List.map (fun i -> Hierarchy.Leaf i) ms)))
      mirrors
  in
  let cascode_nodes =
    List.map
      (fun (a, b) ->
        Hierarchy.node ~kind:Hierarchy.Proximity (fresh "CAS")
          [ Hierarchy.Leaf a; Hierarchy.Leaf b ])
      cascodes
  in
  (* CORE formation consumes each mirror at most once. *)
  let used_mirror = Hashtbl.create 4 in
  let cores, lone_dps =
    List.partition_map
      (fun ((a, b), dp_node) ->
        let dp_drains = drain_nets infos [ a; b ] in
        let load =
          List.find_opt
            (fun (ms, _) ->
              (not (Hashtbl.mem used_mirror ms))
              && List.exists (fun d -> List.mem d dp_drains)
                   (drain_nets infos ms))
            mirror_nodes
        in
        match load with
        | Some (ms, cm_node) ->
            Hashtbl.replace used_mirror ms ();
            Left
              (Hierarchy.node ~kind:Hierarchy.Symmetry (fresh "CORE")
                 [ dp_node; cm_node ])
        | None -> Right dp_node)
      dp_nodes
  in
  let unused_mirrors =
    List.filter_map
      (fun (ms, node) ->
        if Hashtbl.mem used_mirror ms then None else Some node)
      mirror_nodes
  in
  let singleton_leaves =
    List.init (Circuit.size c) Fun.id
    |> List.filter (fun i -> not (Hashtbl.mem claimed i))
    |> List.map (fun i -> Hierarchy.Leaf i)
  in
  let children =
    cores @ lone_dps @ unused_mirrors @ cascode_nodes @ singleton_leaves
  in
  let hierarchy =
    match children with
    | [ (Hierarchy.Node _ as only) ] -> only
    | _ -> Hierarchy.node c.Circuit.name children
  in
  { structures; hierarchy }
