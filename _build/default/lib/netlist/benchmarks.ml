type bench = { label : string; circuit : Circuit.t; hierarchy : Hierarchy.t }

(* ------------------------------------------------------------------ *)
(* Fig. 1: seven cells with symmetry group { (C,D), (B,G), A, F }.     *)

let fig1_circuit () =
  let m = Circuit.block in
  Circuit.make ~name:"fig1"
    ~modules:
      [
        m ~name:"A" ~w:240 ~h:100;  (* self-symmetric, wide *)
        m ~name:"B" ~w:120 ~h:160;  (* pair with G *)
        m ~name:"C" ~w:100 ~h:120;  (* pair with D *)
        m ~name:"D" ~w:100 ~h:120;
        m ~name:"E" ~w:140 ~h:380;  (* free tall cell at the left *)
        m ~name:"F" ~w:360 ~h:90;   (* self-symmetric, wide *)
        m ~name:"G" ~w:120 ~h:160;
      ]
    ~nets:
      [
        Net.make ~name:"n1" ~pins:[ 1; 2; 6; 3 ] ();
        Net.make ~name:"n2" ~pins:[ 0; 5 ] ();
        Net.make ~name:"n3" ~pins:[ 4; 1 ] ();
      ]

let fig1_symmetry = ([ (2, 3); (1, 6) ], [ 0; 5 ])

(* ------------------------------------------------------------------ *)
(* Fig. 2 / Fig. 4: hierarchical design with all three constraints.    *)

let fig2_design () =
  let m = Circuit.block in
  (* indices: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9 K=10 *)
  let circuit =
    Circuit.make ~name:"fig2"
      ~modules:
        [
          m ~name:"A" ~w:200 ~h:80;
          m ~name:"B" ~w:150 ~h:150;
          m ~name:"C" ~w:120 ~h:220;
          m ~name:"D" ~w:110 ~h:140;
          m ~name:"E" ~w:110 ~h:140;
          m ~name:"F" ~w:180 ~h:100;
          m ~name:"G" ~w:90 ~h:90;
          m ~name:"H" ~w:120 ~h:100;
          m ~name:"I" ~w:120 ~h:100;
          m ~name:"J" ~w:100 ~h:130;
          m ~name:"K" ~w:100 ~h:130;
        ]
      ~nets:
        [
          Net.make ~name:"sig" ~pins:[ 3; 4; 7; 8 ] ();
          Net.make ~name:"bias" ~pins:[ 0; 6; 9; 10 ] ();
          Net.make ~name:"misc" ~pins:[ 1; 2; 5 ] ();
        ]
  in
  let open Hierarchy in
  let hierarchy =
    node "top"
      [
        node ~kind:Symmetry "SYM"
          [
            node ~kind:Symmetry "DPDE" [ Leaf 3; Leaf 4 ];
            Leaf 0;
            node ~kind:Common_centroid "CCHI" [ Leaf 7; Leaf 8 ];
          ];
        node ~kind:Proximity "PROX" [ Leaf 6; Leaf 9; Leaf 10 ];
        Leaf 1;
        Leaf 2;
        Leaf 5;
      ]
  in
  { label = "fig2"; circuit; hierarchy }

(* ------------------------------------------------------------------ *)
(* Fig. 6: Miller op amp, recognized from a netlist.                   *)

let miller_netlist =
  "* Miller op amp (survey Fig. 6)\n\
   MP5 ibias ibias vdd vdd pmos W=10u L=1u\n\
   MP6 tail  ibias vdd vdd pmos W=20u L=1u\n\
   MP7 out   ibias vdd vdd pmos W=20u L=1u\n\
   MP1 x1 inp tail vdd pmos W=40u L=0.5u M=2\n\
   MP2 x2 inn tail vdd pmos W=40u L=0.5u M=2\n\
   MN3 x1 x1 vss vss nmos W=10u L=1u\n\
   MN4 x2 x1 vss vss nmos W=10u L=1u\n\
   MN8 out x2 vss vss nmos W=60u L=0.5u M=4\n\
   CC1 x2 out 1p\n\
   .end\n"

let miller () =
  match Parser.parse_string miller_netlist with
  | Error e ->
      invalid_arg
        (Format.asprintf "Benchmarks.miller: %a" Parser.pp_error e)
  | Ok devices ->
      let circuit = Parser.to_circuit ~name:"miller" devices in
      let { Recognize.hierarchy; _ } = Recognize.recognize circuit in
      { label = "miller"; circuit; hierarchy }

(* ------------------------------------------------------------------ *)
(* Synthetic Table-I-scale circuits.                                   *)

(* Analog module dimension archetypes (grid units; 100 units = 1 um). *)
let random_dims rng =
  match Prelude.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 ->
      (* transistor stack: wide and flat *)
      (Prelude.Rng.int_in rng 80 420, Prelude.Rng.int_in rng 50 180)
  | 4 | 5 | 6 ->
      (* folded transistor: near square *)
      let side = Prelude.Rng.int_in rng 80 260 in
      (side, side + Prelude.Rng.int_in rng 0 80)
  | 7 | 8 ->
      (* capacitor: large square *)
      let side = Prelude.Rng.int_in rng 180 550 in
      (side, side)
  | _ ->
      (* resistor: tall serpentine *)
      (Prelude.Rng.int_in rng 40 120, Prelude.Rng.int_in rng 180 420)

type set_spec = {
  kind : Hierarchy.constraint_kind;
  dims : (int * int) list;  (** per module in the set *)
}

let random_set rng ~remaining =
  let pick_size hi = min remaining (Prelude.Rng.int_in rng 2 hi) in
  match Prelude.Rng.int rng 10 with
  | 0 | 1 | 2 ->
      (* symmetric pair (+ optional self-symmetric cell) *)
      let d = random_dims rng in
      let selfs =
        if remaining >= 3 && Prelude.Rng.bool rng then [ random_dims rng ]
        else []
      in
      { kind = Hierarchy.Symmetry; dims = [ d; d ] @ selfs }
  | 3 | 4 ->
      let d = random_dims rng in
      let size = pick_size 4 in
      { kind = Hierarchy.Common_centroid; dims = List.init size (fun _ -> d) }
  | 5 | 6 ->
      let size = pick_size 4 in
      { kind = Hierarchy.Proximity;
        dims = List.init size (fun _ -> random_dims rng) }
  | _ ->
      let size = pick_size 5 in
      { kind = Hierarchy.Free;
        dims = List.init size (fun _ -> random_dims rng) }

let synthetic ~label ~n ~seed =
  let rng = Prelude.Rng.create seed in
  (* 1. basic module sets until n modules exist *)
  let rec gen_sets acc count =
    if count >= n then List.rev acc
    else
      let remaining = n - count in
      if remaining = 1 then
        List.rev ({ kind = Hierarchy.Free; dims = [ random_dims rng ] } :: acc)
      else
        let set = random_set rng ~remaining in
        gen_sets (set :: acc) (count + List.length set.dims)
  in
  let sets = gen_sets [] 0 in
  let modules = ref [] and next = ref 0 and set_nodes = ref [] in
  List.iteri
    (fun si set ->
      let idxs =
        List.mapi
          (fun j (w, h) ->
            let idx = !next in
            incr next;
            modules :=
              Circuit.block ~name:(Printf.sprintf "m%d_%d" si j) ~w ~h
              :: !modules;
            idx)
          set.dims
      in
      let node =
        match idxs with
        | [ only ] -> Hierarchy.Leaf only
        | _ ->
            Hierarchy.node ~kind:set.kind
              (Printf.sprintf "set%d" si)
              (List.map (fun i -> Hierarchy.Leaf i) idxs)
      in
      set_nodes := (node, idxs) :: !set_nodes)
    sets;
  let set_nodes = List.rev !set_nodes in
  (* 2. intra-set nets + sparse cross-set nets *)
  let nets = ref [] in
  List.iteri
    (fun si (_, idxs) ->
      if List.length idxs >= 2 then
        nets :=
          Net.make ~name:(Printf.sprintf "local%d" si) ~pins:idxs ()
          :: !nets)
    set_nodes;
  let n_cross = max 1 (n / 4) in
  for k = 0 to n_cross - 1 do
    let deg = Prelude.Rng.int_in rng 2 4 in
    let pins = List.init deg (fun _ -> Prelude.Rng.int rng n) in
    let pins = List.sort_uniq Int.compare pins in
    if List.length pins >= 2 then
      nets := Net.make ~name:(Printf.sprintf "net%d" k) ~pins () :: !nets
  done;
  (* 3. combine set nodes into a random tree of fan-out 2-4 *)
  let rec combine level nodes =
    match nodes with
    | [ only ] -> only
    | _ ->
        let rec chunk acc i = function
          | [] -> List.rev acc
          | rest ->
              let fanout = Prelude.Rng.int_in rng 2 4 in
              let taken, remainder =
                let rec take k = function
                  | [] -> ([], [])
                  | xs when k = 0 -> ([], xs)
                  | x :: xs ->
                      let t, r = take (k - 1) xs in
                      (x :: t, r)
                in
                take fanout rest
              in
              let node =
                match taken with
                | [ only ] -> only
                | _ ->
                    Hierarchy.node
                      (Printf.sprintf "h%d_%d" level i)
                      taken
              in
              chunk (node :: acc) (i + 1) remainder
        in
        combine (level + 1) (chunk [] 0 nodes)
  in
  let hierarchy = combine 0 (List.map fst set_nodes) in
  let circuit =
    Circuit.make ~name:label ~modules:(List.rev !modules) ~nets:!nets
  in
  (match Hierarchy.validate hierarchy ~n_modules:n with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Benchmarks.synthetic: " ^ msg));
  { label; circuit; hierarchy }

let table1_suite () =
  [
    synthetic ~label:"Miller V2" ~n:13 ~seed:101;
    synthetic ~label:"Comparator V2" ~n:10 ~seed:102;
    synthetic ~label:"Folded casc." ~n:22 ~seed:103;
    synthetic ~label:"Buffer" ~n:46 ~seed:104;
    synthetic ~label:"biasynth" ~n:65 ~seed:105;
    synthetic ~label:"lnamixbias" ~n:110 ~seed:106;
  ]
