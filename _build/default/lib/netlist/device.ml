type mos_kind = Nmos | Pmos

type kind =
  | Mos of { mos : mos_kind; w_um : float; l_um : float; folds : int }
  | Cap of { farads : float }
  | Res of { ohms : float }
  | Block of { w : int; h : int }

type t = { name : string; kind : kind; pins : (string * string) list }

let make ~name ~kind ~pins = { name; kind; pins }

let grid_per_um = 100

let grid_of_um um = max 1 (int_of_float (Float.round (um *. float_of_int grid_per_um)))

(* MOS cell: [folds] fingers, each of width W/folds, stacked with
   diffusion/contact pitch around each gate. Width of the cell follows
   the finger width; height grows with finger count and channel
   length. The constants model a generic 180 nm-class process. *)
let mos_footprint ~w_um ~l_um ~folds =
  let folds = max 1 folds in
  let finger_w = w_um /. float_of_int folds in
  let pitch_um = l_um +. 0.8 (* contacted gate pitch *) in
  let cell_w = grid_of_um (finger_w +. 1.2 (* well/contact margin *)) in
  let cell_h = grid_of_um ((pitch_um *. float_of_int folds) +. 0.6) in
  (cell_w, cell_h)

(* MiM cap: ~1 fF/um^2 density, near-square. *)
let cap_footprint farads =
  let area_um2 = farads /. 1e-15 in
  let side = sqrt (Float.max 1.0 area_um2) in
  (grid_of_um side, grid_of_um side)

(* Poly resistor: ~200 ohm/sq serpentine, 0.5 um track, folded to a
   roughly 1:3 aspect. *)
let res_footprint ohms =
  let squares = Float.max 1.0 (ohms /. 200.0) in
  let length_um = squares *. 0.5 in
  let strips = Float.max 1.0 (Float.round (sqrt (length_um /. 3.0))) in
  let w = grid_of_um (strips *. 1.0) in
  let h = grid_of_um (length_um /. strips) in
  (w, max w h)

let footprint d =
  match d.kind with
  | Mos { w_um; l_um; folds; _ } -> mos_footprint ~w_um ~l_um ~folds
  | Cap { farads } -> cap_footprint farads
  | Res { ohms } -> res_footprint ohms
  | Block { w; h } -> (w, h)

let net_of_pin d pin = List.assoc_opt pin d.pins
let is_mos d = match d.kind with Mos _ -> true | Cap _ | Res _ | Block _ -> false

let mos_kind d =
  match d.kind with
  | Mos { mos; _ } -> Some mos
  | Cap _ | Res _ | Block _ -> None

let with_geometry d ~w_um ~l_um ~folds =
  match d.kind with
  | Mos m -> { d with kind = Mos { m with w_um; l_um; folds } }
  | Cap _ | Res _ | Block _ -> d

let pp ppf d =
  match d.kind with
  | Mos { mos; w_um; l_um; folds } ->
      Format.fprintf ppf "%s %s W=%.2fu L=%.2fu m=%d" d.name
        (match mos with Nmos -> "nmos" | Pmos -> "pmos")
        w_um l_um folds
  | Cap { farads } -> Format.fprintf ppf "%s cap %.3gF" d.name farads
  | Res { ohms } -> Format.fprintf ppf "%s res %.3gohm" d.name ohms
  | Block { w; h } -> Format.fprintf ppf "%s block %dx%d" d.name w h
