(** Automatic structure recognition (sizing-rules method, survey refs
    [9],[21]; used in §III–§IV to obtain the layout hierarchy).

    Recognizes the basic analog building blocks from device
    connectivity:

    - {b current mirrors}: two or more same-polarity MOS sharing gate and
      source nets, at least one diode-connected — placed with a
      common-centroid constraint;
    - {b differential pairs}: two same-polarity MOS with a common source
      (tail) net and distinct gates/drains — placed with a symmetry
      constraint;
    - {b cascode pairs}: a MOS stacked on another (drain feeding source)
      with the same polarity — placed with a proximity constraint.

    A differential pair together with the current-mirror load on its
    drains forms a hierarchical-symmetry core (the survey's Fig. 6
    CORE = DP + CM1). Remaining devices become free leaves. *)

type structure =
  | Diff_pair of int * int
  | Current_mirror of int list
  | Cascode_pair of int * int

type result = {
  structures : structure list;
  hierarchy : Hierarchy.t;  (** full hierarchy over all modules *)
}

val recognize : Circuit.t -> result
(** Detection priority: mirrors, then differential pairs, then cascodes;
    every module ends up in exactly one hierarchy leaf. *)

val structure_modules : structure -> int list
val pp_structure : Format.formatter -> structure -> unit
