(** Simulated-annealing placement over transitive closure graphs
    (survey §II, ref [15]) — the third non-slicing arm of the
    representation ablation. Limited to 62 modules (see {!Seqpair.Tcg}). *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
