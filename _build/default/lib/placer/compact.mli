(** Constraint-graph compaction.

    One-dimensional compaction in the classic style: derive the
    left-of / below relations from the current placement, then shove
    every cell as far left (or down) as those relations allow — the
    longest-path positions of the induced constraint graph. Relative
    order is preserved, overlaps can never appear, and the bounding box
    never grows (all tested). Placements coming out of halo-padded or
    annealed flows often leave slack that a compaction pass reclaims. *)

val compact_x : Placement.t -> Placement.t
(** Push cells left. *)

val compact_y : Placement.t -> Placement.t
(** Push cells down. *)

val compact : Placement.t -> Placement.t
(** Alternate x and y passes until a fixpoint (at most a few
    iterations). *)

val preserves : ?frozen:int list -> Placement.t -> Placement.t -> bool
(** Do two placements agree on every pairwise left-of/below relation
    (the invariant compaction maintains)? Cells in [frozen] are
    additionally required to be unmoved. Exported for tests. *)
