(** Post-placement finishing: guard rings for proximity groups.

    §III-A: a proximity sub-circuit is placed connected so it "can
    share a connected substrate/well region or be surrounded by a
    common guard ring". This pass generates that ring for every
    proximity node of the hierarchy from the finished placement.

    Rings are legal ([clear = true]) when they avoid every cell outside
    the group — guaranteed when the placement reserved room, e.g.
    {!Bstar.Hbstar.place} with [~halo >= clearance + thickness]. *)

type ring = {
  node : string;  (** hierarchy node name *)
  members : int list;
  segments : Geometry.Rect.t list;
  clear : bool;  (** no overlap with any cell outside the group *)
  sealed : bool;  (** the ring fully encloses the group *)
}

val guard_rings :
  ?clearance:int ->
  ?thickness:int ->
  Placement.t ->
  Netlist.Hierarchy.t ->
  ring list
(** One ring per proximity node whose members are all placed. Defaults:
    clearance 10, thickness 20 grid units. *)
