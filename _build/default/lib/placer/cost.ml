type weights = {
  area : float;
  wirelength : float;
  aspect : float;
  target_aspect : float;
}

let area_only =
  { area = 1.0; wirelength = 0.0; aspect = 0.0; target_aspect = 1.0 }

let default =
  { area = 1.0; wirelength = 0.2; aspect = 0.0; target_aspect = 1.0 }

let evaluate w p =
  let area = float_of_int (Placement.area p) in
  let aspect_term =
    if w.aspect = 0.0 then 0.0
    else
      let hgt = float_of_int (Placement.height p) in
      if hgt = 0.0 then 0.0
      else
        let ratio = float_of_int (Placement.width p) /. hgt in
        (* scale by area so the term is commensurate with the others *)
        w.aspect *. area *. abs_float (log (ratio /. w.target_aspect))
  in
  (w.area *. area) +. (w.wirelength *. Placement.hpwl p) +. aspect_term
