(** Slicing-floorplan baseline (normalized Polish expressions,
    Wong–Liu moves, Stockmeyer shape-function evaluation).

    The survey recalls that ILAC used the slicing model and that
    slicing "limits the set of reachable layout topologies, degrading
    the layout density especially when cells are very different in
    size". This placer exists to reproduce that claim (ablation
    experiment E10): same annealing engine, same cost, but the
    representation can only express slicing structures. *)

type token = Operand of int | H | V
(** [H]: horizontal cut (children stacked); [V]: vertical cut (children
    side by side). *)

val is_normalized : token list -> bool
(** Balloting property plus no two equal adjacent operators — i.e. a
    well-formed normalized Polish expression. *)

val initial : int -> token list
(** The alternating-cut starting expression over [n] modules. *)

val neighbor : Prelude.Rng.t -> token list -> token list
(** One Wong–Liu move (operand swap, chain complement, or
    operand/operator swap); normalization-preserving. *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
