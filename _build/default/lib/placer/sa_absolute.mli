(** Absolute-coordinate annealing placement — the {e traditional}
    style the survey's §II describes (Jepsen–Gelatt macro placement;
    ILAC, KOAN/ANAGRAM II, PUPPY-A, LAYLA): cells move by translations
    and orientation changes in the chip plane, overlaps are allowed
    during the walk and discouraged by a penalty, so the explored space
    contains both feasible and infeasible solutions.

    §II's argument for topological representations is precisely that
    this style "may exhibit a slow convergence due to the, typically,
    huge size of the search space" — experiment E16 (bench `absolute`)
    measures that against the sequence-pair placer at equal evaluation
    budgets. A final greedy legalization (shift overlapping cells
    right) plus compaction turns the annealed configuration into a
    valid placement; the pre-legalization overlap is reported. *)

type outcome = {
  placement : Placement.t;  (** legalized, always valid *)
  raw_overlap : int;
      (** total pairwise overlap area the anneal left behind *)
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?overlap_weight:float ->
  ?params:Anneal.Sa.params ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** [overlap_weight] (default 4.0) scales the overlap-area penalty
    relative to the area term. *)
