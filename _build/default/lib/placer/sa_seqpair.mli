(** Simulated-annealing placement over sequence-pairs (survey §II).

    The state is a sequence-pair plus per-cell rotation flags. With
    symmetry groups the exploration is restricted to the
    symmetric-feasible subspace: the initial code is repaired to S-F,
    every move applies its symmetric companion (see {!Seqpair.Moves}),
    rotations flip both cells of a pair together, and evaluation uses
    the exact symmetric packing, so every visited placement keeps all
    groups mirror-symmetric. *)

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

val place :
  ?weights:Cost.weights ->
  ?params:Anneal.Sa.params ->
  ?groups:Constraints.Symmetry_group.t list ->
  rng:Prelude.Rng.t ->
  Netlist.Circuit.t ->
  outcome
(** Default weights {!Cost.default}; default SA parameters scale with
    the circuit size. *)
