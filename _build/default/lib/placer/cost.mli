(** Placement cost functions.

    The weighted sum the survey's stochastic placers minimize: chip
    area, total (weighted half-perimeter) net length, and an optional
    aspect-ratio term pulling toward a target width/height ratio. *)

type weights = {
  area : float;
  wirelength : float;
  aspect : float;  (** weight of the aspect-ratio deviation term *)
  target_aspect : float;  (** desired w/h, usually 1.0 *)
}

val area_only : weights
val default : weights
(** area 1.0, wirelength 0.2, aspect 0. *)

val evaluate : weights -> Placement.t -> float
