type token = Operand of int | H | V

let is_operator = function H | V -> true | Operand _ -> false

let is_normalized tokens =
  let rec go operands operators prev = function
    | [] -> operands = operators + 1 && operands > 0
    | t :: rest -> (
        match t with
        | Operand _ -> go (operands + 1) operators (Some t) rest
        | H | V ->
            let operators = operators + 1 in
            (* balloting: strictly more operands than operators in
               every prefix; normalization: no equal adjacent ops *)
            operands > operators
            && prev <> Some t
            && go operands operators (Some t) rest)
  in
  go 0 0 None tokens

(* Stockmeyer evaluation with regular shape functions. *)
let eval_shape_fn ~cap circuit tokens =
  let module_fn c =
    let w, h = Netlist.Circuit.dims circuit c in
    let shapes =
      if w = h then [ Shapefn.Shape.of_module ~cell:c ~w ~h ~rotated:false ]
      else
        [
          Shapefn.Shape.of_module ~cell:c ~w ~h ~rotated:false;
          Shapefn.Shape.of_module ~cell:c ~w ~h ~rotated:true;
        ]
    in
    Shapefn.Shape_fn.of_shapes shapes
  in
  let combine op f1 f2 =
    let add =
      match op with
      | H -> Shapefn.Esf.rsf_vadd (* horizontal cut stacks *)
      | V -> Shapefn.Esf.rsf_hadd
      | Operand _ -> invalid_arg "Slicing.eval: operand as operator"
    in
    let sums =
      List.concat_map
        (fun s1 ->
          List.map (fun s2 -> add s1 s2) (Shapefn.Shape_fn.shapes f2))
        (Shapefn.Shape_fn.shapes f1)
    in
    Shapefn.Shape_fn.of_shapes ~cap sums
  in
  let rec go stack = function
    | [] -> (
        match stack with
        | [ only ] -> only
        | _ -> invalid_arg "Slicing.eval: malformed expression")
    | Operand c :: rest -> go (module_fn c :: stack) rest
    | (H | V) as op :: rest -> (
        match stack with
        | f2 :: f1 :: more -> go (combine op f1 f2 :: more) rest
        | _ -> invalid_arg "Slicing.eval: malformed expression")
  in
  go [] tokens

let evaluate ~cap circuit tokens =
  let fn = eval_shape_fn ~cap circuit tokens in
  let best = Shapefn.Shape_fn.min_area fn in
  Placement.make circuit (Shapefn.Shape.realize best)

(* ---- Wong–Liu move set ------------------------------------------- *)

let operand_positions tokens =
  let arr = Array.of_list tokens in
  Array.to_list
    (Array.mapi (fun i t -> if is_operator t then None else Some i) arr)
  |> List.filter_map Fun.id

(* M1: swap two adjacent operands (adjacent within the operand
   subsequence; always stays normalized). *)
let m1 rng tokens =
  let ops = operand_positions tokens in
  match ops with
  | [] | [ _ ] -> tokens
  | _ ->
      let arr = Array.of_list tokens in
      let pairs =
        let rec go = function
          | a :: (b :: _ as rest) -> (a, b) :: go rest
          | [ _ ] | [] -> []
        in
        go ops
      in
      let i, j = Prelude.Rng.choose rng pairs in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      Array.to_list arr

(* M2: complement a maximal operator chain. *)
let m2 rng tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let chain_starts =
    List.init n Fun.id
    |> List.filter (fun i ->
           is_operator arr.(i) && (i = 0 || not (is_operator arr.(i - 1))))
  in
  match chain_starts with
  | [] -> tokens
  | _ ->
      let start = Prelude.Rng.choose rng chain_starts in
      let rec flip i =
        if i < n && is_operator arr.(i) then begin
          arr.(i) <- (match arr.(i) with H -> V | V -> H | Operand _ -> arr.(i));
          flip (i + 1)
        end
      in
      flip start;
      Array.to_list arr

(* M3: swap an adjacent operand/operator pair if the result is still a
   normalized expression. *)
let m3 rng tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let candidates =
    List.init (n - 1) Fun.id
    |> List.filter (fun i -> is_operator arr.(i) <> is_operator arr.(i + 1))
  in
  let attempt () =
    let i = Prelude.Rng.choose rng candidates in
    let arr' = Array.copy arr in
    let tmp = arr'.(i) in
    arr'.(i) <- arr'.(i + 1);
    arr'.(i + 1) <- tmp;
    let result = Array.to_list arr' in
    if is_normalized result then Some result else None
  in
  if candidates = [] then tokens
  else
    let rec retry k =
      if k = 0 then tokens
      else match attempt () with Some r -> r | None -> retry (k - 1)
    in
    retry 8

let neighbor rng tokens =
  match Prelude.Rng.int rng 3 with
  | 0 -> m1 rng tokens
  | 1 -> m2 rng tokens
  | _ -> m3 rng tokens

type outcome = {
  placement : Placement.t;
  cost : float;
  sa_rounds : int;
  evaluated : int;
}

let initial n =
  (* c0 c1 V c2 H c3 V ... alternating cut directions *)
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let op = if i mod 2 = 0 then H else V in
      go (i + 1) (op :: Operand i :: acc)
  in
  match n with
  | 0 -> invalid_arg "Slicing.place: empty circuit"
  | 1 -> [ Operand 0 ]
  | _ -> Operand 0 :: go 1 []

let place ?(weights = Cost.default) ?params ~rng circuit =
  let n = Netlist.Circuit.size circuit in
  let cap = 16 in
  let params =
    match params with Some p -> p | None -> Anneal.Sa.default_params ~n
  in
  let init = initial n in
  assert (is_normalized init);
  let cost tokens = Cost.evaluate weights (evaluate ~cap circuit tokens) in
  let problem = { Anneal.Sa.init; neighbor; cost } in
  let result = Anneal.Sa.run ~rng params problem in
  let placement = evaluate ~cap circuit result.Anneal.Sa.best in
  {
    placement;
    cost = result.Anneal.Sa.best_cost;
    sa_rounds = result.Anneal.Sa.rounds;
    evaluated = result.Anneal.Sa.evaluated;
  }
