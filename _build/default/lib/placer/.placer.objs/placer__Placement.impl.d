lib/placer/placement.ml: Array Constraints Format Geometry List Netlist Option Outline Printf Rect Result Transform
