lib/placer/finishing.ml: Geometry Guard_ring List Netlist Placement Rect Transform
