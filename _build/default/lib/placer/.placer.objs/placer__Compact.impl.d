lib/placer/compact.ml: Array Fun Geometry Int Interval List Placement Rect Transform
