lib/placer/sa_absolute.ml: Anneal Array Compact Cost Geometry List Netlist Orientation Placement Prelude Rect Transform
