lib/placer/compact.mli: Placement
