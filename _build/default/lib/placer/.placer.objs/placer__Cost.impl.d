lib/placer/cost.ml: Placement
