lib/placer/sa_bstar.ml: Anneal Array Bstar Cost Fun List Netlist Placement Prelude
