lib/placer/sa_bstar.mli: Anneal Cost Netlist Placement Prelude
