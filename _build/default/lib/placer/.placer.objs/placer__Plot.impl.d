lib/placer/plot.ml: Array Buffer Float Geometry List Netlist Option Placement Printf Rect String Transform
