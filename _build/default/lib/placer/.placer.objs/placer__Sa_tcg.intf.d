lib/placer/sa_tcg.mli: Anneal Cost Netlist Placement Prelude
