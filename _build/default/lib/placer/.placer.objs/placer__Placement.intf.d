lib/placer/placement.mli: Format Geometry Netlist
