lib/placer/sa_absolute.mli: Anneal Cost Netlist Placement Prelude
