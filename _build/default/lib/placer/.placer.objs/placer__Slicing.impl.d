lib/placer/slicing.ml: Anneal Array Cost Fun List Netlist Placement Prelude Shapefn
