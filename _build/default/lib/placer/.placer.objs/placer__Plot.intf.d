lib/placer/plot.mli: Geometry Placement
