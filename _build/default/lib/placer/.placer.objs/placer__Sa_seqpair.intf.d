lib/placer/sa_seqpair.mli: Anneal Constraints Cost Netlist Placement Prelude
