lib/placer/sa_tcg.ml: Anneal Array Cost Netlist Placement Prelude Seqpair
