lib/placer/cost.mli: Placement
