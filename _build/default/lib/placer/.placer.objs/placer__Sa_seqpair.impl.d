lib/placer/sa_seqpair.ml: Anneal Array Constraints Cost List Netlist Placement Prelude Seqpair
