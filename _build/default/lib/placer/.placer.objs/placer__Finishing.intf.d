lib/placer/finishing.mli: Geometry Netlist Placement
