lib/placer/slicing.mli: Anneal Cost Netlist Placement Prelude
