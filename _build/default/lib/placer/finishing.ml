open Geometry

type ring = {
  node : string;
  members : int list;
  segments : Rect.t list;
  clear : bool;
  sealed : bool;
}

let guard_rings ?(clearance = 10) ?(thickness = 20) placement hierarchy =
  let proximity_nodes =
    Netlist.Hierarchy.constraint_nodes hierarchy
    |> List.filter_map (fun (name, kind, members) ->
           match kind with
           | Netlist.Hierarchy.Proximity -> Some (name, members)
           | Netlist.Hierarchy.Free | Netlist.Hierarchy.Symmetry
           | Netlist.Hierarchy.Common_centroid ->
               None)
  in
  List.filter_map
    (fun (node, members) ->
      let rects =
        List.filter_map (Placement.rect_of placement) members
      in
      if List.length rects <> List.length members then None
      else
        let segments = Guard_ring.generate ~clearance ~thickness rects in
        let outsiders =
          List.filter_map
            (fun (p : Transform.placed) ->
              if List.mem p.Transform.cell members then None
              else Some p.Transform.rect)
            placement.Placement.placed
        in
        let clear =
          List.for_all
            (fun seg ->
              List.for_all (fun o -> not (Rect.overlaps seg o)) outsiders)
            segments
        in
        Some
          {
            node;
            members;
            segments;
            clear;
            sealed = Guard_ring.encloses ~ring:segments rects;
          })
    proximity_nodes
