(** Perturbation moves on sequence-pairs.

    For unconstrained placement the classic move set applies: swap two
    cells in alpha, in beta, or in both. With symmetry groups the moves
    come in "companion" form (survey §II): whenever two group cells are
    interchanged in one sequence, their symmetric counterparts are
    interchanged in the other, so property (1) is preserved and the
    whole annealing walk stays inside the symmetric-feasible
    subspace. Every generated neighbour is additionally checked and
    repaired, so the invariant holds unconditionally. *)

type t = Sp.t

val swap_alpha : Prelude.Rng.t -> t -> t
val swap_beta : Prelude.Rng.t -> t -> t
val swap_both : Prelude.Rng.t -> t -> t

val random_neighbor : Prelude.Rng.t -> t -> t
(** One of the three unconstrained moves, uniformly. *)

val random_neighbor_sf :
  Prelude.Rng.t -> t -> Constraints.Symmetry_group.t list -> t
(** A random move with symmetric companion application; the result is
    always symmetric-feasible (falls back to {!Symmetry.make_feasible}
    repair, and ultimately to the input, if a proposed move broke
    property (1)). *)
