type t = { order : int array; inv : int array }

let compute_inv order =
  let n = Array.length order in
  let inv = Array.make n (-1) in
  Array.iteri (fun pos cell -> inv.(cell) <- pos) order;
  inv

let of_array arr =
  let n = Array.length arr in
  let seen = Array.make n false in
  Array.iter
    (fun c ->
      if c < 0 || c >= n || seen.(c) then
        invalid_arg "Perm.of_array: not a permutation";
      seen.(c) <- true)
    arr;
  let order = Array.copy arr in
  { order; inv = compute_inv order }

let identity n = of_array (Array.init n Fun.id)
let random rng n = of_array (Prelude.Rng.permutation rng n)
let size p = Array.length p.order
let cell_at p pos = p.order.(pos)
let pos_of p cell = p.inv.(cell)

let swap_positions p i j =
  let order = Array.copy p.order in
  let tmp = order.(i) in
  order.(i) <- order.(j);
  order.(j) <- tmp;
  { order; inv = compute_inv order }

let swap_cells p a b = swap_positions p p.inv.(a) p.inv.(b)

let insert p ~cell ~at =
  let n = size p in
  if at < 0 || at >= n then invalid_arg "Perm.insert: position out of range";
  let without =
    Array.of_list (List.filter (fun c -> c <> cell) (Array.to_list p.order))
  in
  let order = Array.make n 0 in
  Array.blit without 0 order 0 at;
  order.(at) <- cell;
  Array.blit without at order (at + 1) (n - at - 1);
  { order; inv = compute_inv order }

let reorder_cells p ~cells ~order:new_order =
  let positions =
    List.map (fun c -> p.inv.(c)) cells |> List.sort Int.compare
  in
  if List.length positions <> List.length new_order then
    invalid_arg "Perm.reorder_cells: length mismatch";
  let order = Array.copy p.order in
  List.iter2 (fun pos cell -> order.(pos) <- cell) positions new_order;
  of_array order

let to_list p = Array.to_list p.order
let equal a b = a.order = b.order

let pp ppf p =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (to_list p)
