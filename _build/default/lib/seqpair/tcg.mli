(** Transitive closure graphs (TCG, Lin & Chang, survey ref [15]).

    The third non-slicing topological representation the survey names
    besides sequence-pairs and B*-trees: every pair of cells carries
    exactly one directed geometric relation — [Hor] ([a] left of [b])
    or [Ver] ([a] below [b]) — and the horizontal and vertical relation
    digraphs are each transitively closed and acyclic. Packing is a
    longest-path evaluation of the two closures.

    TCGs and sequence-pairs encode the same placements; {!of_seqpair} /
    {!to_seqpair} witness the bijection (tested). The perturbation
    operations {e flip} (exchange a pair's relation kind) and
    {e reverse} (swap a pair's direction) are validated against the
    closure/acyclicity invariants and rejected when they would break
    them, so annealing walks stay inside the representation.

    Relation matrices use machine-word bitsets; the cell count is
    limited to 62 (device-level placement sizes). *)

type kind = Hor | Ver

type t

val size : t -> int

val relation : t -> int -> int -> (kind * [ `Forward | `Backward ]) option
(** [relation t a b] is the edge between [a] and [b]:
    [Some (k, `Forward)] for [a -> b], [`Backward] for [b -> a];
    [None] only when [a = b]. *)

val of_seqpair : Sp.t -> t
(** Always valid. Raises [Invalid_argument] beyond 62 cells. *)

val to_seqpair : t -> Sp.t
(** The canonical sequence-pair with the same relations. *)

val validate : t -> (unit, string) result
(** Completeness, transitive closure of both digraphs, acyclicity of
    both sequence orders. Internal constructors only produce valid
    TCGs; this is exported for tests. *)

val flip : t -> int -> int -> t option
(** Exchange the relation kind of the pair (keeping its direction);
    [None] if the result would be invalid. *)

val reverse : t -> int -> int -> t option
(** Reverse the pair's direction (keeping its kind); [None] if
    invalid. *)

val swap_cells : t -> int -> int -> t
(** Exchange two cells' roles; always valid. *)

val random_neighbor : Prelude.Rng.t -> t -> t
(** One of flip / reverse / swap, retrying a few times when a proposal
    is rejected; returns the input if all proposals fail. *)

val pack : t -> Pack.dims -> Geometry.Transform.placed list
(** Longest-path packing of both closures; overlap-free (tested). *)
