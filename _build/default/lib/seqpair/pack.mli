(** Sequence-pair evaluation: topological code -> placement.

    Both evaluators compute, for every cell, the longest path to it in
    the horizontal (left-of) and vertical (below) constraint graphs
    implied by the sequence-pair, which is the minimum-area packing for
    the encoded topology.

    [pack] is the O(n^2) reference; [pack_fast] is the O(n log n)
    weighted-LCS formulation of FAST-SP (survey ref [26]) over a binary
    indexed tree. They produce identical placements (tested). *)

type dims = int -> int * int
(** Cell index -> (width, height). *)

val pack : Sp.t -> dims -> Geometry.Transform.placed list
(** Placements in cell-index order, orientation [R0]. *)

val pack_fast : Sp.t -> dims -> Geometry.Transform.placed list

val pack_veb : Sp.t -> dims -> Geometry.Transform.placed list
(** The O(n log log n) evaluation the survey cites ([13] via the
    priority-queue model of [26]): a dominance-pruned match list over a
    van Emde Boas tree keyed by beta positions. Identical output to
    {!pack} (tested). *)

val bounding_box : Geometry.Transform.placed list -> Geometry.Rect.t
(** Bounding box of the placed cells ([0x0] at the origin when empty). *)
