(** Permutations of cell indices.

    A permutation is stored as the array [order] with [order.(pos)] =
    the cell at position [pos]; its inverse gives each cell's
    position — the alpha^-1 / beta^-1 maps of the survey's property (1). *)

type t

val of_array : int array -> t
(** Validates that the array is a permutation of [0 .. n-1]; the array
    is copied. *)

val identity : int -> t
val random : Prelude.Rng.t -> int -> t
val size : t -> int

val cell_at : t -> int -> int
(** [cell_at p pos] is the cell at position [pos]. *)

val pos_of : t -> int -> int
(** [pos_of p cell] is the position of [cell] (the inverse map), O(1). *)

val swap_positions : t -> int -> int -> t
(** Exchange the cells at two positions (pure). *)

val swap_cells : t -> int -> int -> t
(** Exchange the positions of two cells (pure). *)

val insert : t -> cell:int -> at:int -> t
(** Remove [cell] and re-insert it so that it ends at position [at]. *)

val reorder_cells : t -> cells:int list -> order:int list -> t
(** [reorder_cells p ~cells ~order]: the positions currently holding
    [cells] are refilled with the cells of [order] (a permutation of
    [cells]) in increasing-position order. Used to force the relative
    order of a symmetry group. *)

val to_list : t -> int list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
