(* Classic Fenwick layout over 1-based internal indices; the max monoid
   only supports monotone (increase-only) updates, which is all the
   packing algorithm needs. *)
type t = { tree : int array; n : int }

let create n = { tree = Array.make (n + 1) 0; n }

let update t i v =
  let rec go i =
    if i <= t.n then begin
      if t.tree.(i) < v then t.tree.(i) <- v;
      go (i + (i land -i))
    end
  in
  go (i + 1)

let prefix_max t i =
  let rec go i acc =
    if i <= 0 then acc else go (i - (i land -i)) (max acc t.tree.(i))
  in
  if i < 0 then 0 else go (min (i + 1) t.n) 0
