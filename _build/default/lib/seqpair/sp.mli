(** The sequence-pair floorplan representation (Murata et al., survey
    ref [22]).

    A sequence-pair [(alpha, beta)] over [n] cells encodes the
    pairwise spatial relations of a packed placement:

    - [a] precedes [b] in both sequences iff [a] is {e left of} [b];
    - [a] follows [b] in [alpha] but precedes it in [beta] iff [a] is
      {e below} [b].

    Every pair of distinct cells is in exactly one of the four
    relations, so packing to the relation's constraint graphs yields an
    overlap-free placement. *)

type t = { alpha : Perm.t; beta : Perm.t }

type relation = Left_of | Right_of | Below | Above

val make : alpha:Perm.t -> beta:Perm.t -> t
(** Raises [Invalid_argument] if the two permutations have different
    sizes. *)

val size : t -> int
val identity : int -> t
val random : Prelude.Rng.t -> int -> t

val relation : t -> int -> int -> relation
(** [relation sp a b] is the relation of [a] to [b]; raises
    [Invalid_argument] when [a = b]. *)

val left_of : t -> int -> int -> bool
val below : t -> int -> int -> bool

val of_strings : alpha:string -> beta:string -> t * (char * int) list
(** Convenience for the paper's letter examples: cells are the distinct
    characters of [alpha] in alphabetical order, mapped to indices
    0,1,..; returns the mapping. Raises [Invalid_argument] if [beta] is
    not a permutation of [alpha]'s characters. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
