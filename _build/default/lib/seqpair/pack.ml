open Geometry

type dims = int -> int * int

let widths sp dims =
  Array.init (Sp.size sp) (fun c -> fst (dims c))

let heights sp dims =
  Array.init (Sp.size sp) (fun c -> snd (dims c))

let to_placed sp dims x y =
  List.init (Sp.size sp) (fun c ->
      let w, h = dims c in
      Transform.place ~cell:c ~x:x.(c) ~y:y.(c) ~w ~h
        ~orient:Orientation.R0)

(* O(n^2): explicit longest path over the left-of / below relations. *)
let pack sp dims =
  let n = Sp.size sp in
  let w = widths sp dims and h = heights sp dims in
  let x = Array.make n 0 and y = Array.make n 0 in
  (* x: process cells in alpha order; predecessors are earlier in both
     sequences. *)
  for pos = 0 to n - 1 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    for pos_a = 0 to pos - 1 do
      let a = Perm.cell_at sp.Sp.alpha pos_a in
      if Perm.pos_of sp.Sp.beta a < Perm.pos_of sp.Sp.beta b then
        x.(b) <- max x.(b) (x.(a) + w.(a))
    done
  done;
  (* y: a is below b iff a follows b in alpha and precedes it in beta;
     process in reverse alpha order. *)
  for pos = n - 1 downto 0 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    for pos_a = pos + 1 to n - 1 do
      let a = Perm.cell_at sp.Sp.alpha pos_a in
      if Perm.pos_of sp.Sp.beta a < Perm.pos_of sp.Sp.beta b then
        y.(b) <- max y.(b) (y.(a) + h.(a))
    done
  done;
  to_placed sp dims x y

(* O(n log n): the longest-path recurrences only ever ask for the
   maximum over a prefix of beta positions, served by a Fenwick tree. *)
let pack_fast sp dims =
  let n = Sp.size sp in
  let w = widths sp dims and h = heights sp dims in
  let x = Array.make n 0 and y = Array.make n 0 in
  let bit = Bit.create n in
  for pos = 0 to n - 1 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    let bp = Perm.pos_of sp.Sp.beta b in
    x.(b) <- Bit.prefix_max bit (bp - 1);
    Bit.update bit bp (x.(b) + w.(b))
  done;
  let bit = Bit.create n in
  for pos = n - 1 downto 0 do
    let b = Perm.cell_at sp.Sp.alpha pos in
    let bp = Perm.pos_of sp.Sp.beta b in
    y.(b) <- Bit.prefix_max bit (bp - 1);
    Bit.update bit bp (y.(b) + h.(b))
  done;
  to_placed sp dims x y

(* O(n log log n): keep only the dominant "matches" -- beta positions
   whose running coordinate strictly increases -- in a vEB tree, so the
   prefix maximum is just the value at the predecessor position. Every
   position is inserted and deleted at most once. *)
let sweep_veb n order bpos extent coord =
  let set = Veb.create (max 1 n) in
  let value = Array.make (max 1 n) 0 in
  Array.iter
    (fun b ->
      let p = bpos b in
      coord.(b) <-
        (match Veb.predecessor set p with
        | Some q -> value.(q)
        | None -> 0);
      let v = coord.(b) + extent.(b) in
      let dominated =
        match if Veb.mem set p then Some p else Veb.predecessor set p with
        | Some q -> value.(q) >= v
        | None -> false
      in
      if not dominated then begin
        Veb.insert set p;
        value.(p) <- v;
        let rec prune () =
          match Veb.successor set p with
          | Some s when value.(s) <= v ->
              Veb.delete set s;
              prune ()
          | Some _ | None -> ()
        in
        prune ()
      end)
    order

let pack_veb sp dims =
  let n = Sp.size sp in
  let w = widths sp dims and h = heights sp dims in
  let x = Array.make n 0 and y = Array.make n 0 in
  let alpha_order = Array.init n (Perm.cell_at sp.Sp.alpha) in
  let rev_alpha_order = Array.init n (fun i -> alpha_order.(n - 1 - i)) in
  let bpos c = Perm.pos_of sp.Sp.beta c in
  sweep_veb n alpha_order bpos w x;
  sweep_veb n rev_alpha_order bpos h y;
  to_placed sp dims x y

let bounding_box placed =
  match placed with
  | [] -> Rect.at_origin ~w:0 ~h:0
  | _ -> Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed)
