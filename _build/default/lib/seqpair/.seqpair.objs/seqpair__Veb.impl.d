lib/seqpair/veb.ml: Array Option
