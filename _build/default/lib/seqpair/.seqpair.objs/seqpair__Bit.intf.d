lib/seqpair/bit.mli:
