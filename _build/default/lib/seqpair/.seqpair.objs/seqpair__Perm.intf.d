lib/seqpair/perm.mli: Format Prelude
