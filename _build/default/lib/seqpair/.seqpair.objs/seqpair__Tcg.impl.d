lib/seqpair/tcg.ml: Array Geometry List Orientation Perm Prelude Printf Result Sp Transform
