lib/seqpair/bit.ml: Array
