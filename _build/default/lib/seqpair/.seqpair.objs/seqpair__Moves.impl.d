lib/seqpair/moves.ml: Constraints List Perm Prelude Sp Symmetry
