lib/seqpair/symmetry.mli: Constraints Geometry Pack Prelude Sp
