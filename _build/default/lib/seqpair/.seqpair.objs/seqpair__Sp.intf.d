lib/seqpair/sp.mli: Format Perm Prelude
