lib/seqpair/sp.ml: Array Char Format List Perm String
