lib/seqpair/perm.ml: Array Format Fun Int List Prelude
