lib/seqpair/pack.ml: Array Bit Geometry List Orientation Perm Rect Sp Transform Veb
