lib/seqpair/symmetry.ml: Array Bool Constraints Fun Geometry Hashtbl Int List Option Orientation Pack Perm Printf Rect Sp Transform
