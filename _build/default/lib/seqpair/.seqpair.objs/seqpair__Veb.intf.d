lib/seqpair/veb.mli:
