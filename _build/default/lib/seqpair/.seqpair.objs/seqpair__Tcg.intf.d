lib/seqpair/tcg.mli: Geometry Pack Prelude Sp
