lib/seqpair/moves.mli: Constraints Prelude Sp
