lib/seqpair/pack.mli: Geometry Sp
