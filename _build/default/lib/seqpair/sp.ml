type t = { alpha : Perm.t; beta : Perm.t }
type relation = Left_of | Right_of | Below | Above

let make ~alpha ~beta =
  if Perm.size alpha <> Perm.size beta then
    invalid_arg "Sp.make: size mismatch";
  { alpha; beta }

let size sp = Perm.size sp.alpha
let identity n = make ~alpha:(Perm.identity n) ~beta:(Perm.identity n)
let random rng n = make ~alpha:(Perm.random rng n) ~beta:(Perm.random rng n)

let relation sp a b =
  if a = b then invalid_arg "Sp.relation: equal cells";
  let a_first_alpha = Perm.pos_of sp.alpha a < Perm.pos_of sp.alpha b in
  let a_first_beta = Perm.pos_of sp.beta a < Perm.pos_of sp.beta b in
  match (a_first_alpha, a_first_beta) with
  | true, true -> Left_of
  | false, false -> Right_of
  | false, true -> Below
  | true, false -> Above

let left_of sp a b = relation sp a b = Left_of
let below sp a b = relation sp a b = Below

let of_strings ~alpha ~beta =
  let chars s = List.init (String.length s) (String.get s) in
  let ca = chars alpha and cb = chars beta in
  let sorted = List.sort_uniq Char.compare ca in
  if List.length sorted <> List.length ca then
    invalid_arg "Sp.of_strings: repeated character in alpha";
  if List.sort Char.compare cb <> sorted then
    invalid_arg "Sp.of_strings: beta is not a permutation of alpha";
  let mapping = List.mapi (fun i c -> (c, i)) sorted in
  let idx c = List.assoc c mapping in
  let perm_of cs = Perm.of_array (Array.of_list (List.map idx cs)) in
  (make ~alpha:(perm_of ca) ~beta:(perm_of cb), mapping)

let equal a b = Perm.equal a.alpha b.alpha && Perm.equal a.beta b.beta

let pp ppf sp =
  Format.fprintf ppf "@[(%a | %a)@]" Perm.pp sp.alpha Perm.pp sp.beta
