open Geometry

type kind = Hor | Ver

(* Adjacency bitsets: bit b of hor.(a) set iff the edge a->b with kind
   Hor exists (a left of b); similarly ver (a below b). *)
type t = { n : int; hor : int array; ver : int array }

let size t = t.n
let bit b = 1 lsl b
let mem row b = row land bit b <> 0

let relation t a b =
  if a = b then None
  else if mem t.hor.(a) b then Some (Hor, `Forward)
  else if mem t.ver.(a) b then Some (Ver, `Forward)
  else if mem t.hor.(b) a then Some (Hor, `Backward)
  else Some (Ver, `Backward)

let of_seqpair sp =
  let n = Sp.size sp in
  if n > 62 then invalid_arg "Tcg.of_seqpair: more than 62 cells";
  let hor = Array.make n 0 and ver = Array.make n 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then
        match Sp.relation sp a b with
        | Sp.Left_of -> hor.(a) <- hor.(a) lor bit b
        | Sp.Below -> ver.(a) <- ver.(a) lor bit b
        | Sp.Right_of | Sp.Above -> ()
    done
  done;
  { n; hor; ver }

(* The alpha order: a precedes b iff a is left of b or a is above b
   (i.e. the Ver edge runs b->a). The beta order: a precedes b iff a is
   left of b or below b. Both are tournaments; validity makes them
   acyclic, hence unique total orders. *)
let alpha_edges t a =
  let above = ref 0 in
  for b = 0 to t.n - 1 do
    if b <> a && mem t.ver.(b) a then above := !above lor bit b
  done;
  t.hor.(a) lor !above

let beta_edges t a = t.hor.(a) lor t.ver.(a)

(* Kahn topological sort of a tournament given successor bitsets;
   returns None on a cycle. *)
let topo_order n succ =
  let indegree = Array.make n 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if mem (succ a) b then indegree.(b) <- indegree.(b) + 1
    done
  done;
  let order = ref [] and count = ref 0 in
  let ready = ref [] in
  Array.iteri (fun v d -> if d = 0 then ready := v :: !ready) indegree;
  let rec go () =
    match !ready with
    | [] -> ()
    | v :: rest ->
        ready := rest;
        order := v :: !order;
        incr count;
        for b = 0 to n - 1 do
          if mem (succ v) b then begin
            indegree.(b) <- indegree.(b) - 1;
            if indegree.(b) = 0 then ready := b :: !ready
          end
        done;
        go ()
  in
  go ();
  if !count = n then Some (Array.of_list (List.rev !order)) else None

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    (* completeness: exactly one relation per unordered pair *)
    let rec pairs a b =
      if a >= t.n then Ok ()
      else if b >= t.n then pairs (a + 1) (a + 2)
      else
        let count =
          (if mem t.hor.(a) b then 1 else 0)
          + (if mem t.ver.(a) b then 1 else 0)
          + (if mem t.hor.(b) a then 1 else 0)
          + if mem t.ver.(b) a then 1 else 0
        in
        if count <> 1 then
          Error (Printf.sprintf "pair (%d,%d) has %d relations" a b count)
        else pairs a (b + 1)
    in
    pairs 0 1
  in
  let* () =
    (* transitive closure of each digraph: successors of a successor
       are successors *)
    let closed name rows =
      let rec go a =
        if a >= t.n then Ok ()
        else
          let rec through b =
            if b >= t.n then go (a + 1)
            else if mem rows.(a) b && rows.(b) land lnot rows.(a) <> 0 then
              Error
                (Printf.sprintf "%s not transitively closed at %d->%d" name a b)
            else through (b + 1)
          in
          through 0
      in
      go 0
    in
    let* () = closed "Ch" t.hor in
    closed "Cv" t.ver
  in
  let* () =
    match topo_order t.n (alpha_edges t) with
    | Some _ -> Ok ()
    | None -> Error "alpha order cyclic"
  in
  match topo_order t.n (beta_edges t) with
  | Some _ -> Ok ()
  | None -> Error "beta order cyclic"

let to_seqpair t =
  let order_exn label succ =
    match topo_order t.n succ with
    | Some o -> o
    | None -> invalid_arg ("Tcg.to_seqpair: invalid TCG (" ^ label ^ ")")
  in
  let alpha = order_exn "alpha" (alpha_edges t) in
  let beta = order_exn "beta" (beta_edges t) in
  Sp.make ~alpha:(Perm.of_array alpha) ~beta:(Perm.of_array beta)

let copy t = { t with hor = Array.copy t.hor; ver = Array.copy t.ver }

let clear_pair t a b =
  t.hor.(a) <- t.hor.(a) land lnot (bit b);
  t.ver.(a) <- t.ver.(a) land lnot (bit b);
  t.hor.(b) <- t.hor.(b) land lnot (bit a);
  t.ver.(b) <- t.ver.(b) land lnot (bit a)

let checked t' = match validate t' with Ok () -> Some t' | Error _ -> None

let flip t a b =
  match relation t a b with
  | None -> None
  | Some (k, dir) ->
      let src, dst = match dir with `Forward -> (a, b) | `Backward -> (b, a) in
      let t' = copy t in
      clear_pair t' a b;
      (match k with
      | Hor -> t'.ver.(src) <- t'.ver.(src) lor bit dst
      | Ver -> t'.hor.(src) <- t'.hor.(src) lor bit dst);
      checked t'

let reverse t a b =
  match relation t a b with
  | None -> None
  | Some (k, dir) ->
      let src, dst = match dir with `Forward -> (a, b) | `Backward -> (b, a) in
      let t' = copy t in
      clear_pair t' a b;
      (match k with
      | Hor -> t'.hor.(dst) <- t'.hor.(dst) lor bit src
      | Ver -> t'.ver.(dst) <- t'.ver.(dst) lor bit src);
      checked t'

let swap_bits row a b =
  let ba = if mem row a then 1 else 0 and bb = if mem row b then 1 else 0 in
  let row = row land lnot (bit a) land lnot (bit b) in
  let row = if bb = 1 then row lor bit a else row in
  if ba = 1 then row lor bit b else row

let swap_cells t a b =
  if a = b then t
  else begin
    let t' = copy t in
    let swap rows =
      let tmp = rows.(a) in
      rows.(a) <- rows.(b);
      rows.(b) <- tmp;
      for r = 0 to t.n - 1 do
        rows.(r) <- swap_bits rows.(r) a b
      done
    in
    swap t'.hor;
    swap t'.ver;
    t'
  end

let random_neighbor rng t =
  if t.n < 2 then t
  else
    let rec attempt k =
      if k = 0 then t
      else
        let a = Prelude.Rng.int rng t.n in
        let b = (a + 1 + Prelude.Rng.int rng (t.n - 1)) mod t.n in
        match Prelude.Rng.int rng 3 with
        | 0 -> swap_cells t a b
        | 1 -> ( match flip t a b with Some t' -> t' | None -> attempt (k - 1))
        | _ -> (
            match reverse t a b with
            | Some t' -> t'
            | None -> attempt (k - 1))
    in
    attempt 8

let pack t dims =
  let w = Array.init t.n (fun c -> fst (dims c)) in
  let h = Array.init t.n (fun c -> snd (dims c)) in
  let x = Array.make t.n 0 and y = Array.make t.n 0 in
  let beta =
    match topo_order t.n (beta_edges t) with
    | Some o -> o
    | None -> invalid_arg "Tcg.pack: invalid TCG"
  in
  (* x: longest path over Ch in beta order (left-of respects it) *)
  Array.iter
    (fun b ->
      for a = 0 to t.n - 1 do
        if a <> b && mem t.hor.(a) b then x.(b) <- max x.(b) (x.(a) + w.(a))
      done)
    beta;
  (* y: longest path over Cv, also in beta order (below respects it) *)
  Array.iter
    (fun b ->
      for a = 0 to t.n - 1 do
        if a <> b && mem t.ver.(a) b then y.(b) <- max y.(b) (y.(a) + h.(a))
      done)
    beta;
  List.init t.n (fun c ->
      Transform.place ~cell:c ~x:x.(c) ~y:y.(c) ~w:w.(c) ~h:h.(c)
        ~orient:Orientation.R0)
