type t = Sp.t

module G = Constraints.Symmetry_group

let two_distinct rng n =
  let a = Prelude.Rng.int rng n in
  let b = (a + 1 + Prelude.Rng.int rng (n - 1)) mod n in
  (a, b)

let swap_alpha rng sp =
  let a, b = two_distinct rng (Sp.size sp) in
  Sp.make
    ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
    ~beta:sp.Sp.beta

let swap_beta rng sp =
  let a, b = two_distinct rng (Sp.size sp) in
  Sp.make ~alpha:sp.Sp.alpha
    ~beta:(Perm.swap_cells sp.Sp.beta a b)

let swap_both rng sp =
  let a, b = two_distinct rng (Sp.size sp) in
  Sp.make
    ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
    ~beta:(Perm.swap_cells sp.Sp.beta a b)

let random_neighbor rng sp =
  match Prelude.Rng.int rng 3 with
  | 0 -> swap_alpha rng sp
  | 1 -> swap_beta rng sp
  | _ -> swap_both rng sp

let sym_of groups c =
  List.find_map (fun g -> if G.mem g c then G.sym g c else None) groups

(* Companion swaps: interchanging x and y in alpha requires
   interchanging sym(x) and sym(y) in beta (and vice versa) whenever
   both cells belong to symmetry groups. Mixed group/free swaps are
   proposed in both-sequence form; whatever a proposal breaks is caught
   by the final feasibility check and repaired. *)
let random_neighbor_sf rng sp groups =
  let n = Sp.size sp in
  let a, b = two_distinct rng n in
  let candidate =
    match Prelude.Rng.int rng 3 with
    | 0 -> (
        (* alpha swap + beta companion *)
        match (sym_of groups a, sym_of groups b) with
        | Some sa, Some sb ->
            Sp.make
              ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
              ~beta:(Perm.swap_cells sp.Sp.beta sa sb)
        | None, None ->
            Sp.make
              ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
              ~beta:sp.Sp.beta
        | Some _, None | None, Some _ ->
            Sp.make
              ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
              ~beta:(Perm.swap_cells sp.Sp.beta a b))
    | 1 -> (
        (* beta swap + alpha companion *)
        match (sym_of groups a, sym_of groups b) with
        | Some sa, Some sb ->
            Sp.make
              ~alpha:(Perm.swap_cells sp.Sp.alpha sa sb)
              ~beta:(Perm.swap_cells sp.Sp.beta a b)
        | None, None ->
            Sp.make ~alpha:sp.Sp.alpha
              ~beta:(Perm.swap_cells sp.Sp.beta a b)
        | Some _, None | None, Some _ ->
            Sp.make
              ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
              ~beta:(Perm.swap_cells sp.Sp.beta a b))
    | _ ->
        Sp.make
          ~alpha:(Perm.swap_cells sp.Sp.alpha a b)
          ~beta:(Perm.swap_cells sp.Sp.beta a b)
  in
  if Symmetry.is_feasible_all candidate groups then candidate
  else
    let repaired = Symmetry.make_feasible candidate groups in
    if Symmetry.is_feasible_all repaired groups then repaired else sp
