lib/thermal/field.ml: Float Geometry List Rect Transform
