lib/thermal/field.mli: Geometry
