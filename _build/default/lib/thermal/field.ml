open Geometry

type source = { cx : float; cy : float; power : float }

let r0 = 50.0

let center (p : Transform.placed) =
  let cx2, cy2 = Rect.center2 p.Transform.rect in
  (float_of_int cx2 /. 2.0, float_of_int cy2 /. 2.0)

let sources_of_placement ~power placed =
  List.filter_map
    (fun (p : Transform.placed) ->
      let w = power p.Transform.cell in
      if w > 0.0 then
        let cx, cy = center p in
        Some { cx; cy; power = w }
      else None)
    placed

let temperature sources ~x ~y =
  List.fold_left
    (fun acc s ->
      let dx = x -. s.cx and dy = y -. s.cy in
      acc +. (s.power /. (sqrt ((dx *. dx) +. (dy *. dy)) +. r0)))
    0.0 sources

let find placed cell =
  match
    List.find_opt (fun (p : Transform.placed) -> p.Transform.cell = cell) placed
  with
  | Some p -> p
  | None -> raise Not_found

let at_cell sources placed cell =
  let p = find placed cell in
  let x, y = center p in
  (* exclude the cell's own radiator: self-heating is common mode *)
  let others =
    List.filter (fun s -> not (s.cx = x && s.cy = y)) sources
  in
  temperature others ~x ~y

let pair_mismatch sources placed (a, b) =
  Float.abs (at_cell sources placed a -. at_cell sources placed b)

let worst_gradient sources placed =
  let temps =
    List.map
      (fun (p : Transform.placed) -> at_cell sources placed p.Transform.cell)
      placed
  in
  match temps with
  | [] -> 0.0
  | t :: rest ->
      let lo, hi =
        List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (t, t) rest
      in
      hi -. lo
