(** Steady-state thermal field over a placement.

    §II of the survey motivates symmetric placement thermally: devices
    "exhibit a strong sensitivity to ambient temperature", and placing
    a sensitive couple symmetrically about the thermally-radiating
    devices makes the couple equidistant from every radiator, so both
    see "roughly identical ambient temperatures and no temperature
    induced mismatch results".

    The field model is the standard far-field superposition of point
    sources on a die: each radiator of power [p] (watts) at distance
    [r] (grid units) contributes [p / (r + r0)] kelvins, with [r0]
    regularizing the near field. Superposition is exact for the
    steady-state heat equation; the kernel shape only scales the
    numbers, not the symmetry argument — a pair mirrored about an axis
    containing all radiators sees {e exactly} equal temperatures. *)

type source = { cx : float; cy : float; power : float }
(** A radiator: center coordinates (grid units) and dissipated power. *)

val r0 : float
(** Near-field regularization radius (50 grid units = 0.5 um). *)

val sources_of_placement :
  power:(int -> float) -> Geometry.Transform.placed list -> source list
(** One source per placed cell with positive [power] (watts), at the
    cell's center. *)

val temperature : source list -> x:float -> y:float -> float
(** Temperature rise at a point, kelvins (arbitrary conductance
    scale). *)

val at_cell : source list -> Geometry.Transform.placed list -> int -> float
(** Temperature at a placed cell's center, excluding the cell's own
    contribution (self-heating is common mode). Raises [Not_found] for
    an unplaced cell. *)

val pair_mismatch :
  source list -> Geometry.Transform.placed list -> int * int -> float
(** |T(a) - T(b)| between two cells' centers — the §II
    "temperature-difference mismatch" of a sensitive couple. *)

val worst_gradient :
  source list -> Geometry.Transform.placed list -> float
(** Largest temperature difference across any two placed cells. *)
