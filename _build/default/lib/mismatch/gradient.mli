(** Process-gradient mismatch model (Pelgrom-style).

    §III-A: the common-centroid constraint exists "to reduce
    process-induced mismatches among the devices". The standard model
    splits a matched parameter's variation into

    - a {e linear process gradient} across the die — oxide thickness,
      implant dose etc. drifting with position — and
    - a {e local} (area-dependent) random term, sigma = A / sqrt(WL).

    A device built from several unit fingers samples the gradient at
    each unit's center; the device value is the unit average. A layout
    whose devices share a common centroid cancels the gradient term
    {e exactly}, whatever the gradient direction — which is what the
    Monte-Carlo experiment (bench `mismatch`) shows against
    side-by-side and separated layouts. *)

type model = {
  slope : float;  (** gradient magnitude, parameter units per grid unit *)
  theta : float;  (** gradient direction, radians *)
  local_sigma : float;  (** local sigma for one unit *)
}

val sample_model :
  Prelude.Rng.t -> slope_mag:float -> local_sigma:float -> model
(** Random direction, slope magnitude scaled by |N(0,1)|. *)

val gradient_at : model -> float * float -> float
(** The gradient term at a point. *)

val device_value : model -> Prelude.Rng.t -> Geometry.Rect.t list -> float
(** Parameter deviation of a device realized as the given unit
    rectangles: mean gradient over unit centers plus one local random
    term scaled by [1 / sqrt #units]. Raises [Invalid_argument] on []. *)

val pair_offset :
  model -> Prelude.Rng.t -> Geometry.Rect.t list -> Geometry.Rect.t list -> float
(** Deviation difference between two devices (their mismatch). *)

val monte_carlo :
  Prelude.Rng.t ->
  trials:int ->
  slope_mag:float ->
  local_sigma:float ->
  (Geometry.Rect.t list * Geometry.Rect.t list) ->
  float
(** Standard deviation of the pair offset over random gradient
    directions and local noise. *)
