open Geometry

type model = { slope : float; theta : float; local_sigma : float }

let sample_model rng ~slope_mag ~local_sigma =
  {
    slope = slope_mag *. Float.abs (Prelude.Rng.gaussian rng);
    theta = Prelude.Rng.float rng (2.0 *. Float.pi);
    local_sigma;
  }

let gradient_at m (x, y) =
  m.slope *. ((x *. cos m.theta) +. (y *. sin m.theta))

let center (r : Rect.t) =
  let cx2, cy2 = Rect.center2 r in
  (float_of_int cx2 /. 2.0, float_of_int cy2 /. 2.0)

let device_value m rng units =
  if units = [] then invalid_arg "Gradient.device_value: no units";
  let n = float_of_int (List.length units) in
  let grad =
    List.fold_left (fun acc u -> acc +. gradient_at m (center u)) 0.0 units
    /. n
  in
  grad +. (m.local_sigma /. sqrt n *. Prelude.Rng.gaussian rng)

let pair_offset m rng a b = device_value m rng a -. device_value m rng b

let monte_carlo rng ~trials ~slope_mag ~local_sigma (a, b) =
  let offsets =
    List.init trials (fun _ ->
        let m = sample_model rng ~slope_mag ~local_sigma in
        pair_offset m rng a b)
  in
  Prelude.Stats.stddev offsets
