lib/mismatch/gradient.ml: Float Geometry List Prelude Rect
