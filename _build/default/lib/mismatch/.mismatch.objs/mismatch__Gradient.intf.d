lib/mismatch/gradient.mli: Geometry Prelude
