open Geometry

type payload =
  | Boxes of Transform.placed list
  | Btree of {
      tree : Bstar.Tree.t;
      dims : (int * (int * int)) list;
      rigid : (int * Transform.placed list) list;
    }

type t = { w : int; h : int; payload : payload }

let area s = s.w * s.h

let of_module ~cell ~w ~h ~rotated =
  let w, h = if rotated then (h, w) else (w, h) in
  {
    w;
    h;
    payload =
      Btree { tree = Bstar.Tree.leaf cell; dims = [ (cell, (w, h)) ]; rigid = [] };
  }

let normalize placed =
  match placed with
  | [] -> []
  | _ ->
      let bbox =
        Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed)
      in
      List.map
        (fun p -> Transform.translate p ~dx:(-bbox.Rect.x) ~dy:(-bbox.Rect.y))
        placed

let of_rigid placed =
  let placed = normalize placed in
  match placed with
  | [] -> { w = 0; h = 0; payload = Boxes [] }
  | _ ->
      let bbox =
        Rect.bbox_of_list (List.map (fun p -> p.Transform.rect) placed)
      in
      { w = Rect.x_max bbox; h = Rect.y_max bbox; payload = Boxes placed }

let realize s =
  match s.payload with
  | Boxes placed -> placed
  | Btree { tree; dims; rigid } ->
      let lookup c =
        match List.assoc_opt c dims with
        | Some d -> d
        | None -> invalid_arg "Shape.realize: missing cell dimensions"
      in
      let packed = Bstar.Tree.pack_rects tree lookup in
      List.concat_map
        (fun (c, (r : Rect.t)) ->
          match List.assoc_opt c rigid with
          | Some inner ->
              List.map
                (fun p -> Transform.translate p ~dx:r.Rect.x ~dy:r.Rect.y)
                inner
          | None ->
              [ { Transform.cell = c; rect = r; orient = Orientation.R0 } ])
        packed

let dominates a b = a.w <= b.w && a.h <= b.h
let pp ppf s = Format.fprintf ppf "%dx%d" s.w s.h
