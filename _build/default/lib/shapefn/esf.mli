(** Shape additions (survey §IV-A, Fig. 7).

    Combining two module groups side by side (horizontal addition) or
    stacked (vertical addition):

    - {b RSF} addition abuts the bounding rectangles:
      [(w1+w2, max h1 h2)] and [(max w1 w2, h1+h2)];
    - {b ESF} addition splices the second shape's B*-tree onto the
      first's bottom spine (horizontal) or left-column spine (vertical)
      and {e repacks}, so the placements interleave — the resulting
      width can be [w_imp] smaller than the bounding-box sum, which is
      exactly the effect of the survey's Fig. 7.

    Additions never mutate their arguments. *)

val rsf_hadd : Shape.t -> Shape.t -> Shape.t
val rsf_vadd : Shape.t -> Shape.t -> Shape.t

val esf_hadd : Shape.t -> Shape.t -> Shape.t
(** Tree-merge addition; rigid ([Boxes]) operands are wrapped as
    pseudo-cells first. The result satisfies
    [w <= w1 + w2 && h >= max h1 h2 - slack] — in general it is the
    exact packed size of the merged tree. *)

val esf_vadd : Shape.t -> Shape.t -> Shape.t

val wrap_rigid : Shape.t -> Shape.t
(** Any shape as a single rigid pseudo-cell B*-tree shape (used to
    embed symmetry islands and common-centroid patterns into ESF
    trees). *)
