module H = Netlist.Hierarchy

type mode = Esf | Rsf

type result = {
  shape_fn : Shape_fn.t;
  best : Shape.t;
  placed : Geometry.Transform.placed list;
  area_usage : float;
  seconds : float;
}

let default_cap = 32

let add_fns ~mode ~cap f1 f2 =
  (* ESF additions are a strict superset of the bounding-box sums: a
     tree merge can interleave (Fig. 7) but can also land under an
     overhang and come out worse, so the plain abutments stay in the
     candidate set and the Pareto prune picks per point. *)
  let adds s1 s2 =
    match mode with
    | Esf ->
        [
          Esf.esf_hadd s1 s2;
          Esf.esf_vadd s1 s2;
          Esf.rsf_hadd s1 s2;
          Esf.rsf_vadd s1 s2;
        ]
    | Rsf -> [ Esf.rsf_hadd s1 s2; Esf.rsf_vadd s1 s2 ]
  in
  let sums =
    List.concat_map
      (fun s1 -> List.concat_map (fun s2 -> adds s1 s2) (Shape_fn.shapes f2))
      (Shape_fn.shapes f1)
  in
  Shape_fn.of_shapes ~cap sums

let is_leaf = function H.Leaf _ -> true | H.Node _ -> false

(* In RSF mode shapes are rigid boxes all the way up. *)
let to_mode ~mode fn =
  match mode with
  | Esf -> fn
  | Rsf ->
      Shape_fn.of_shapes
        (List.map
           (fun s -> Shape.of_rigid (Shape.realize s))
           (Shape_fn.shapes fn))

let module_fn circuit c =
  let w, h = Netlist.Circuit.dims circuit c in
  let shapes =
    if w = h then [ Shape.of_module ~cell:c ~w ~h ~rotated:false ]
    else
      [
        Shape.of_module ~cell:c ~w ~h ~rotated:false;
        Shape.of_module ~cell:c ~w ~h ~rotated:true;
      ]
  in
  Shape_fn.of_shapes shapes

let shape_function ?(cap = default_cap) ~mode circuit hierarchy =
  let dims = Netlist.Circuit.dims circuit in
  let rec fn_of node =
    match node with
    | H.Leaf c -> to_mode ~mode (module_fn circuit c)
    | H.Node { kind; children; _ } when List.for_all is_leaf children ->
        let cells = H.leaves node in
        to_mode ~mode (Enumerate.of_basic_set ~cap ~dims ~kind cells)
    | H.Node { kind; children; _ } -> (
        let child_fns = List.map fn_of children in
        let combined =
          match child_fns with
          | [] -> invalid_arg "Combine.shape_function: empty node"
          | first :: rest ->
              List.fold_left (fun acc f -> add_fns ~mode ~cap acc f) first rest
        in
        (* Rigid-freeze hierarchical symmetry so later additions cannot
           tear the island apart. *)
        match kind with
        | H.Symmetry ->
            Shape_fn.of_shapes ~cap
              (List.map
                 (fun s -> Shape.of_rigid (Shape.realize s))
                 (Shape_fn.shapes combined))
        | H.Free | H.Proximity | H.Common_centroid -> combined)
  in
  fn_of hierarchy

let place ?(cap = default_cap) ~mode circuit hierarchy =
  (match
     H.validate hierarchy ~n_modules:(Netlist.Circuit.size circuit)
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Combine.place: " ^ msg));
  let t0 = Sys.time () in
  let shape_fn = shape_function ~cap ~mode circuit hierarchy in
  let best = Shape_fn.min_area shape_fn in
  let placed = Shape.realize best in
  let seconds = Sys.time () -. t0 in
  let area_usage =
    Prelude.Stats.percent
      (float_of_int (Shape.area best))
      (float_of_int (Netlist.Circuit.total_module_area circuit))
  in
  { shape_fn; best; placed; area_usage; seconds }
