lib/shapefn/enumerate.ml: Bstar Constraints Geometry List Netlist Option Outline Prelude Rect Shape Shape_fn Transform
