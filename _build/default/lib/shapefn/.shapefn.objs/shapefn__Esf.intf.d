lib/shapefn/esf.mli: Shape
