lib/shapefn/shape.mli: Bstar Format Geometry
