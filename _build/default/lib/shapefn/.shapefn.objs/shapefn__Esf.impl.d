lib/shapefn/esf.ml: Bstar Geometry List Option Rect Shape Transform
