lib/shapefn/shape_fn.mli: Format Shape
