lib/shapefn/shape_fn.ml: Array Float Format Int List Shape
