lib/shapefn/combine.ml: Enumerate Esf Geometry List Netlist Prelude Shape Shape_fn Sys
