lib/shapefn/combine.mli: Geometry Netlist Shape Shape_fn
