lib/shapefn/enumerate.mli: Constraints Netlist Shape_fn
