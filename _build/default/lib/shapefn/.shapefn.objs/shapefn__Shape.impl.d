lib/shapefn/shape.ml: Bstar Format Geometry List Orientation Rect Transform
