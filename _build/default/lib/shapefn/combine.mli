(** The deterministic hierarchically-bounded-enumeration placer
    (survey §IV, ref [25]).

    Two steps, exactly as the survey describes: (1) enumerate all
    placements of every basic module set into shape functions;
    (2) combine the shape functions bottom-up along the hierarchy tree,
    trying both addition directions for every shape pair and pruning to
    the Pareto front. The mode selects the addition algebra:

    - [Rsf]: bounding-box additions (regular shape functions);
    - [Esf]: B*-tree-merge additions (enhanced shape functions), which
      interleave placements and find more compact results at higher
      computational cost — the trade-off Table I quantifies.

    The capacity bound [cap] keeps combination polynomial; it applies
    identically to both modes so the comparison stays fair. *)

type mode = Esf | Rsf

type result = {
  shape_fn : Shape_fn.t;  (** the root shape function *)
  best : Shape.t;  (** minimum-area root shape *)
  placed : Geometry.Transform.placed list;  (** realized best placement *)
  area_usage : float;
      (** bounding-rect area of [best] / total module area, in percent
          (Table I's "area usage") *)
  seconds : float;  (** CPU time of the whole run *)
}

val default_cap : int

val shape_function :
  ?cap:int ->
  mode:mode ->
  Netlist.Circuit.t ->
  Netlist.Hierarchy.t ->
  Shape_fn.t
(** The root shape function only (used for the Fig. 8 curves). *)

val place :
  ?cap:int ->
  mode:mode ->
  Netlist.Circuit.t ->
  Netlist.Hierarchy.t ->
  result
(** Raises [Invalid_argument] if the hierarchy does not cover the
    circuit exactly once.

    Hierarchical symmetry above the basic-set level is kept rigid: a
    symmetry node's children are combined and the node's best shapes
    enter the parent as rigid blocks, so enumerated islands are never
    torn apart by later repacking. *)
