open Geometry

let rsf_add ~horizontal a b =
  let pa = Shape.realize a in
  let dx, dy = if horizontal then (a.Shape.w, 0) else (0, a.Shape.h) in
  let pb = List.map (fun p -> Transform.translate p ~dx ~dy) (Shape.realize b) in
  Shape.of_rigid (pa @ pb)

let rsf_hadd a b = rsf_add ~horizontal:true a b
let rsf_vadd a b = rsf_add ~horizontal:false a b

(* Pseudo-cell ids for rigid blocks embedded in ESF trees; real module
   indices stay far below this range. *)
let pseudo_counter = ref 1_000_000

let next_pseudo () =
  incr pseudo_counter;
  !pseudo_counter

let wrap_rigid s =
  match s.Shape.payload with
  | Shape.Btree _ -> s
  | Shape.Boxes placed ->
      let id = next_pseudo () in
      {
        s with
        Shape.payload =
          Shape.Btree
            {
              tree = Bstar.Tree.leaf id;
              dims = [ (id, (s.Shape.w, s.Shape.h)) ];
              rigid = [ (id, placed) ];
            };
      }

let rec bottom_spine_end t =
  match t.Bstar.Tree.left with
  | None -> t.Bstar.Tree.cell
  | Some l -> bottom_spine_end l

let rec left_column_end t =
  match t.Bstar.Tree.right with
  | None -> t.Bstar.Tree.cell
  | Some r -> left_column_end r

let rec graft t ~at ~sub ~side =
  if t.Bstar.Tree.cell = at then
    match side with
    | `Left ->
        assert (t.Bstar.Tree.left = None);
        { t with Bstar.Tree.left = Some sub }
    | `Right ->
        assert (t.Bstar.Tree.right = None);
        { t with Bstar.Tree.right = Some sub }
  else
    {
      t with
      Bstar.Tree.left = Option.map (fun l -> graft l ~at ~sub ~side) t.Bstar.Tree.left;
      Bstar.Tree.right = Option.map (fun r -> graft r ~at ~sub ~side) t.Bstar.Tree.right;
    }

let esf_add ~horizontal a b =
  let a = wrap_rigid a and b = wrap_rigid b in
  match (a.Shape.payload, b.Shape.payload) with
  | Shape.Btree ta, Shape.Btree tb ->
      let tree =
        if horizontal then
          graft ta.tree ~at:(bottom_spine_end ta.tree) ~sub:tb.tree ~side:`Left
        else
          graft ta.tree ~at:(left_column_end ta.tree) ~sub:tb.tree ~side:`Right
      in
      let dims = ta.dims @ tb.dims in
      let rigid = ta.rigid @ tb.rigid in
      let lookup c =
        match List.assoc_opt c dims with
        | Some d -> d
        | None -> invalid_arg "Esf.esf_add: missing cell dimensions"
      in
      let rects = Bstar.Tree.pack_rects tree lookup in
      let bbox = Rect.bbox_of_list (List.map snd rects) in
      {
        Shape.w = Rect.x_max bbox;
        h = Rect.y_max bbox;
        payload = Shape.Btree { tree; dims; rigid };
      }
  | (Shape.Boxes _ | Shape.Btree _), _ ->
      (* unreachable: wrap_rigid guarantees Btree payloads *)
      assert false

let esf_hadd a b = esf_add ~horizontal:true a b
let esf_vadd a b = esf_add ~horizontal:false a b
