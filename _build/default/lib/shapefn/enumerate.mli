(** Exhaustive enumeration of basic-module-set placements (survey §IV).

    Basic module sets are small (a differential pair, a current mirror:
    2-5 modules), so all their placements can be enumerated: every
    labelled B*-tree times every cell-rotation assignment, packed and
    collapsed into a shape function. Constrained sets enumerate only
    their feasible subspace:

    - symmetry sets enumerate ASF half-trees and mirror them, so every
      shape is an exact symmetry island;
    - common-centroid sets realize the two interdigitated patterns
      (horizontal and vertical);
    - proximity sets keep only edge-connected packings.

    Above [max_exhaustive] cells (not reached by the benchmark
    generators) a seeded random sample of trees stands in for the full
    enumeration — documented in DESIGN.md. *)

val max_exhaustive : int
(** 6: 6! x catalan 6 = 95,040 trees is still fast; 7 is not. *)

val free_set :
  ?cap:int -> dims:(int -> int * int) -> int list -> Shape_fn.t
(** All placements of an unconstrained set. *)

val proximity_set :
  ?cap:int -> dims:(int -> int * int) -> int list -> Shape_fn.t
(** Edge-connected placements only; falls back to {!free_set} if
    filtering empties the space (cannot happen for <= 2 cells). *)

val symmetric_set :
  ?cap:int ->
  dims:(int -> int * int) ->
  Constraints.Symmetry_group.t ->
  Shape_fn.t
(** Exact symmetry islands for the group (rigid shapes). *)

val centroid_set :
  ?cap:int -> dims:(int -> int * int) -> int list -> Shape_fn.t option
(** The two common-centroid patterns; [None] when the cells are not
    matched in size (callers degrade to {!free_set}). *)

val of_basic_set :
  ?cap:int ->
  dims:(int -> int * int) ->
  kind:Netlist.Hierarchy.constraint_kind ->
  int list ->
  Shape_fn.t
(** Dispatch on the set's constraint. For symmetry sets the cells pair
    consecutively with an odd trailing cell self-symmetric (the same
    convention as {!Constraints.Symmetry_group.of_hierarchy}). *)
