open Geometry

let max_exhaustive = 6

let trees_for cells =
  let n = List.length cells in
  if n <= max_exhaustive then Bstar.Count.enumerate_trees cells
  else begin
    (* sampled stand-in for very large basic sets; seeded for
       reproducibility *)
    let rng = Prelude.Rng.create (17 * n) in
    List.init 20_000 (fun _ -> Bstar.Tree.random rng cells)
  end

(* All rotation assignments for the cells: bitmask over the cells whose
   dimensions actually change under rotation. *)
let rotation_choices dims cells =
  let rotatable = List.filter (fun c -> let w, h = dims c in w <> h) cells in
  let k = List.length rotatable in
  let k = min k 12 (* cap the mask width; beyond this sets are sampled anyway *) in
  let rotatable = List.filteri (fun i _ -> i < k) rotatable in
  List.init (1 lsl k) (fun mask ->
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) rotatable)

let oriented_dims dims rotated c =
  let w, h = dims c in
  if List.mem c rotated then (h, w) else (w, h)

let shapes_of_trees ~dims cells ~keep trees =
  let rotations = rotation_choices dims cells in
  List.concat_map
    (fun tree ->
      List.filter_map
        (fun rotated ->
          let d = oriented_dims dims rotated in
          let rects = Bstar.Tree.pack_rects tree d in
          if keep rects then
            let bbox = Rect.bbox_of_list (List.map snd rects) in
            Some
              {
                Shape.w = Rect.x_max bbox;
                h = Rect.y_max bbox;
                payload =
                  Shape.Btree
                    {
                      tree;
                      dims = List.map (fun c -> (c, d c)) cells;
                      rigid = [];
                    };
              }
          else None)
        rotations)
    trees

let free_set ?cap ~dims cells =
  Shape_fn.of_shapes ?cap
    (shapes_of_trees ~dims cells ~keep:(fun _ -> true) (trees_for cells))

let proximity_set ?cap ~dims cells =
  let keep rects = Outline.connected (List.map snd rects) in
  let shapes = shapes_of_trees ~dims cells ~keep (trees_for cells) in
  match shapes with
  | [] -> free_set ?cap ~dims cells
  | _ -> Shape_fn.of_shapes ?cap shapes

(* Symmetry islands: enumerate half-trees over representatives + selfs,
   keeping those where every self lies on the root's right chain, and
   mirror. Rotations apply to representatives and selfs alike. *)
let symmetric_set ?cap ~dims (grp : Constraints.Symmetry_group.t) =
  let reps = List.map snd grp.Constraints.Symmetry_group.pairs in
  let selfs = grp.Constraints.Symmetry_group.selfs in
  let half_cells = reps @ selfs in
  let trees = trees_for half_cells in
  let rotations = rotation_choices dims half_cells in
  let shapes =
    List.concat_map
      (fun tree ->
        match Bstar.Asf.of_tree grp tree with
        | exception Invalid_argument _ -> []
        | asf ->
            List.map
              (fun rotated ->
                let d c =
                  (* a pair's left cell inherits the representative's
                     chosen orientation *)
                  let rep =
                    List.find_map
                      (fun (l, r) ->
                        if l = c then Some r else None)
                      grp.Constraints.Symmetry_group.pairs
                  in
                  oriented_dims dims rotated (Option.value rep ~default:c)
                in
                let island = Bstar.Asf.pack asf d in
                Shape.of_rigid island.Bstar.Asf.placed)
              rotations)
      trees
  in
  Shape_fn.of_shapes ?cap shapes

let centroid_set ?cap ~dims cells =
  match Bstar.Centroid.place ~cells dims with
  | Error _ -> None
  | Ok horizontal ->
      let transpose placed =
        List.map
          (fun (p : Transform.placed) ->
            let r = p.Transform.rect in
            {
              p with
              Transform.rect =
                Rect.make ~x:r.Rect.y ~y:r.Rect.x ~w:r.Rect.h ~h:r.Rect.w;
            })
          placed
      in
      Some
        (Shape_fn.of_shapes ?cap
           [ Shape.of_rigid horizontal; Shape.of_rigid (transpose horizontal) ])

let rec pair_up = function
  | a :: b :: rest ->
      let ps, ss = pair_up rest in
      ((a, b) :: ps, ss)
  | [ a ] -> ([], [ a ])
  | [] -> ([], [])

let of_basic_set ?cap ~dims ~kind cells =
  match kind with
  | Netlist.Hierarchy.Free -> free_set ?cap ~dims cells
  | Netlist.Hierarchy.Proximity -> proximity_set ?cap ~dims cells
  | Netlist.Hierarchy.Common_centroid -> (
      match centroid_set ?cap ~dims cells with
      | Some fn -> fn
      | None -> free_set ?cap ~dims cells)
  | Netlist.Hierarchy.Symmetry -> (
      let pairs, selfs = pair_up cells in
      let matched =
        List.for_all (fun (a, b) -> dims a = dims b) pairs
      in
      if not matched then free_set ?cap ~dims cells
      else
        match
          Constraints.Symmetry_group.make ~name:"basic" ~pairs ~selfs ()
        with
        | exception Invalid_argument _ -> free_set ?cap ~dims cells
        | grp -> symmetric_set ?cap ~dims grp)
