(** Shape functions: Pareto fronts of realizable shapes.

    A shape function is the set of non-redundant (width, height) points
    a module group can realize — "placements which have a greater
    height, while having the same or even a greater width than some
    other shape are redundant and therefore removed" (survey §IV-A).
    Kept sorted by increasing width (hence strictly decreasing
    height). A capacity bound thins dense fronts to keep the
    deterministic placer polynomial; the minimum-area, minimum-width
    and minimum-height shapes always survive thinning. *)

type t

val of_shapes : ?cap:int -> Shape.t list -> t
(** Prune dominated and duplicate shapes; raises [Invalid_argument] on
    the empty list. Default [cap] is unlimited. *)

val shapes : t -> Shape.t list
(** Increasing width, decreasing height. *)

val cardinal : t -> int

val min_area : t -> Shape.t

val best_within : ?max_w:int -> ?max_h:int -> t -> Shape.t option
(** Minimum-area shape honoring a fixed outline — the "pre-defined
    layout aspect ratio, or a maximum width or height" restriction of
    the survey's §V geometric constraints, applied to shape functions.
    [None] when no front point fits. *)

val points : t -> (int * int) list
(** The (w, h) Pareto points (for plotting Fig. 8). *)

val merge : ?cap:int -> t -> t -> t
(** Union of two fronts over the same module group (e.g. from the two
    addition directions), re-pruned. *)

val dominates_fn : t -> t -> bool
(** Every shape of the second front is (weakly) dominated by some shape
    of the first. *)

val pp : Format.formatter -> t -> unit
